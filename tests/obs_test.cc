// Unit tests for the obs/ structured tracing and metrics subsystem
// (DESIGN.md §11): ring wrap and overflow accounting, category masking,
// interned-name stability, span nesting, Chrome-JSON escaping, and
// metric snapshot merge ordering.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/triage.h"
#include "src/util/json.h"
#include "src/util/sim_clock.h"

namespace androne {
namespace {

// ------------------------------------------------------------- Categories.

TEST(TraceCategoryTest, NamesRoundTrip) {
  EXPECT_STREQ(TraceCategoryName(kTraceClock), "clock");
  EXPECT_STREQ(TraceCategoryName(kTraceBinder), "binder");
  EXPECT_STREQ(TraceCategoryName(kTraceFlight), "flight");
  EXPECT_STREQ(TraceCategoryName(1u << 30), "?");
}

TEST(TraceCategoryTest, ParseSingleAndList) {
  EXPECT_EQ(ParseTraceCategories("binder"), kTraceBinder);
  EXPECT_EQ(ParseTraceCategories("binder,net"), kTraceBinder | kTraceNet);
  EXPECT_EQ(ParseTraceCategories("all"), kTraceAll);
  EXPECT_EQ(ParseTraceCategories(""), 0u);
  // Unknown names are ignored, known ones still land.
  EXPECT_EQ(ParseTraceCategories("bogus,rt"), kTraceRt);
}

TEST(TraceCategoryTest, EveryCategoryBitHasAName) {
  for (uint32_t bit = 1; bit != 0 && bit <= kTraceAll; bit <<= 1) {
    if ((kTraceAll & bit) == 0) {
      continue;
    }
    std::string name = TraceCategoryName(bit);
    EXPECT_NE(name, "?") << "unnamed category bit " << bit;
    EXPECT_EQ(ParseTraceCategories(name), bit);
  }
}

// ------------------------------------------------------------------ Ring.

TEST(TraceRecorderTest, RecordsUpToCapacityWithoutDropping) {
  TraceRecorder trace(kTraceAll, /*capacity=*/4);
  uint32_t name = trace.InternName("ev");
  for (int i = 0; i < 4; ++i) {
    trace.Instant(kTraceNet, name, -1, i);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.recorded(), 4u);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_FALSE(trace.wrapped());
}

TEST(TraceRecorderTest, RingWrapsOverwritingOldestFirst) {
  TraceRecorder trace(kTraceAll, /*capacity=*/4);
  uint32_t name = trace.InternName("ev");
  for (int i = 0; i < 7; ++i) {
    trace.Instant(kTraceNet, name, -1, i);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.recorded(), 7u);
  EXPECT_EQ(trace.dropped(), 3u);
  EXPECT_TRUE(trace.wrapped());
  // Events come back oldest-first: args 3,4,5,6 survive.
  std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, static_cast<int64_t>(i + 3));
  }
}

TEST(TraceRecorderTest, ClearDropsEventsButKeepsInternedNames) {
  TraceRecorder trace(kTraceAll, /*capacity=*/8);
  uint32_t name = trace.InternName("keep.me");
  trace.Instant(kTraceRt, name);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.recorded(), 0u);
  // The cached id instrumentation holds stays valid.
  EXPECT_EQ(trace.NameOf(name), "keep.me");
  trace.Instant(kTraceRt, name, -1, 9);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.Events()[0].name_id, name);
}

TEST(TraceRecorderTest, ZeroCapacityIsClampedToOne) {
  TraceRecorder trace(kTraceAll, /*capacity=*/0);
  uint32_t name = trace.InternName("ev");
  trace.Instant(kTraceNet, name, -1, 1);
  trace.Instant(kTraceNet, name, -1, 2);
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.Events()[0].arg, 2);
}

// --------------------------------------------------------------- Masking.

TEST(TraceRecorderTest, MaskedCategoriesAreDroppedAtTheGate) {
  TraceRecorder trace(kTraceBinder, /*capacity=*/8);
  uint32_t name = trace.InternName("ev");
  trace.Instant(kTraceNet, name);      // Masked off.
  trace.Instant(kTraceBinder, name);   // Kept.
  trace.Instant(kTraceFlight, name);   // Masked off.
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.recorded(), 1u);  // Masked events never count as recorded.
  EXPECT_TRUE(trace.enabled(kTraceBinder));
  EXPECT_FALSE(trace.enabled(kTraceNet));
}

TEST(TraceRecorderTest, SetCategoriesRetargetsTheGate) {
  TraceRecorder trace(0, /*capacity=*/8);
  uint32_t name = trace.InternName("ev");
  trace.Instant(kTraceNet, name);
  EXPECT_EQ(trace.size(), 0u);
  trace.set_categories(kTraceNet);
  trace.Instant(kTraceNet, name);
  EXPECT_EQ(trace.size(), 1u);
}

// -------------------------------------------------------------- Interning.

TEST(TraceRecorderTest, InternedNamesAreStableAndDeduplicated) {
  TraceRecorder trace;
  uint32_t a1 = trace.InternName("binder.txn");
  uint32_t b = trace.InternName("net.delivered");
  uint32_t a2 = trace.InternName("binder.txn");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(trace.NameOf(a1), "binder.txn");
  EXPECT_EQ(trace.NameOf(b), "net.delivered");
  // Id 0 is the reserved unnamed slot; out-of-range maps onto it.
  EXPECT_EQ(trace.NameOf(0), "?");
  EXPECT_EQ(trace.NameOf(999999), "?");
  EXPECT_EQ(trace.interned_names(), 3u);  // "?", plus the two above.
}

// ---------------------------------------------------------------- Spans.

TEST(TraceRecorderTest, SpansNestInRecordOrder) {
  SimClock clock;
  TraceRecorder trace;
  trace.BindClock(&clock);
  uint32_t outer = trace.InternName("outer");
  uint32_t inner = trace.InternName("inner");
  trace.Begin(kTraceBinder, outer, /*container=*/1);
  trace.Begin(kTraceBinder, inner, /*container=*/1);
  trace.End(kTraceBinder, inner, /*container=*/1);
  trace.End(kTraceBinder, outer, /*container=*/1);
  std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kBegin);
  EXPECT_EQ(events[0].name_id, outer);
  EXPECT_EQ(events[1].kind, TraceEventKind::kBegin);
  EXPECT_EQ(events[1].name_id, inner);
  EXPECT_EQ(events[2].kind, TraceEventKind::kEnd);
  EXPECT_EQ(events[2].name_id, inner);
  EXPECT_EQ(events[3].kind, TraceEventKind::kEnd);
  EXPECT_EQ(events[3].name_id, outer);
}

TEST(TraceRecorderTest, EventsAreStampedWithSimTime) {
  SimClock clock;
  TraceRecorder trace;
  trace.BindClock(&clock);
  uint32_t name = trace.InternName("tick");
  clock.ScheduleAfter(Millis(5), [&] { trace.Instant(kTraceRt, name); });
  clock.ScheduleAfter(Millis(11), [&] { trace.Instant(kTraceRt, name); });
  clock.RunFor(Millis(20));
  std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts, Millis(5));
  EXPECT_EQ(events[1].ts, Millis(11));
}

// -------------------------------------------------------------- Exporters.

TEST(TraceRecorderTest, TextExportIsByteStableForIdenticalStreams) {
  auto run = [] {
    TraceRecorder trace(kTraceAll, 16);
    uint32_t name = trace.InternName("net.delivered");
    for (int i = 0; i < 20; ++i) {  // Wraps: accounting must match too.
      trace.Instant(kTraceNet, name, i % 3, i * 7);
    }
    return trace.ExportText();
  };
  std::string a = run();
  std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("# trace events=16 recorded=20 dropped=4"),
            std::string::npos);
}

TEST(TraceRecorderTest, ChromeJsonIsValidAndEscapesNames) {
  TraceRecorder trace;
  uint32_t weird = trace.InternName("we\"ird\\name\n");
  trace.Begin(kTraceBinder, weird, 2, 1);
  trace.End(kTraceBinder, weird, 2, 0);
  trace.Counter(kTraceClock, trace.InternName("clock.dispatch"), 256);
  std::string json = trace.ExportChromeJson();

  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonArray& events =
      parsed->AsObject().at("traceEvents").AsArray();
  ASSERT_EQ(events.size(), 3u);
  const JsonObject& begin = events[0].AsObject();
  EXPECT_EQ(begin.at("name").AsString(), "we\"ird\\name\n");
  EXPECT_EQ(begin.at("ph").AsString(), "B");
  EXPECT_EQ(begin.at("cat").AsString(), "binder");
  EXPECT_EQ(begin.at("tid").AsDouble(), 2.0);
  const JsonObject& counter = events[2].AsObject();
  EXPECT_EQ(counter.at("ph").AsString(), "C");
  EXPECT_EQ(counter.at("args").AsObject().at("value").AsDouble(), 256.0);
}

// --------------------------------------------------------- AttachClockTrace.

TEST(TraceRecorderTest, ClockTraceSamplesEveryNthDispatch) {
  SimClock clock;
  TraceRecorder trace(kTraceClock, 64);
  AttachClockTrace(&clock, &trace, /*sample_every=*/4);
  for (int i = 0; i < 10; ++i) {
    clock.ScheduleAfter(Millis(i + 1), [] {});
  }
  clock.RunFor(Millis(100));
  // 10 dispatches, sampled every 4th: counters at 4 and 8.
  std::vector<TraceEvent> events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kCounter);
  EXPECT_EQ(events[0].arg, 4);
  EXPECT_EQ(events[1].arg, 8);
}

TEST(TraceRecorderTest, ClockTraceIsANoOpWhenCategoryMasked) {
  SimClock clock;
  TraceRecorder trace(kTraceBinder, 64);
  AttachClockTrace(&clock, &trace, 1);
  clock.ScheduleAfter(Millis(1), [] {});
  clock.RunFor(Millis(10));
  EXPECT_EQ(trace.size(), 0u);
}

// ---------------------------------------------------------------- Metrics.

TEST(MetricsRegistryTest, CountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.Add("binder.txns", 10);
  registry.Add("binder.txns", 5);
  registry.Set("container.memory_mb", 512);
  registry.Set("container.memory_mb", 640);  // Last set wins.
  registry.Hist("latency_us").Record(100);
  registry.Hist("latency_us").Record(300);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("binder.txns"), 15);
  EXPECT_DOUBLE_EQ(snap.gauges.at("container.memory_mb"), 640);
  EXPECT_EQ(snap.histograms.at("latency_us").total_count(), 2u);
  EXPECT_FALSE(snap.empty());

  registry.Clear();
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndOverwritesGauges) {
  MetricsRegistry a;
  a.Add("events", 100);
  a.Set("memory_mb", 512);
  a.Hist("lat").Record(10);
  MetricsRegistry b;
  b.Add("events", 50);
  b.Add("only_in_b", 7);
  b.Set("memory_mb", 768);
  b.Hist("lat").Record(20);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_DOUBLE_EQ(merged.counters.at("events"), 150);
  EXPECT_DOUBLE_EQ(merged.counters.at("only_in_b"), 7);
  EXPECT_DOUBLE_EQ(merged.gauges.at("memory_mb"), 768);
  EXPECT_EQ(merged.histograms.at("lat").total_count(), 2u);
}

TEST(MetricsSnapshotTest, MergeIndexOrderIsOrderSensitiveForGauges) {
  MetricsRegistry w0;
  w0.Set("g", 1);
  MetricsRegistry w1;
  w1.Set("g", 2);

  MetricsSnapshot forward =
      MetricsRegistry::MergeIndexOrder({w0.Snapshot(), w1.Snapshot()});
  MetricsSnapshot backward =
      MetricsRegistry::MergeIndexOrder({w1.Snapshot(), w0.Snapshot()});
  // Index order defines the winner: merging must happen world 0, 1, ...
  EXPECT_DOUBLE_EQ(forward.gauges.at("g"), 2);
  EXPECT_DOUBLE_EQ(backward.gauges.at("g"), 1);
}

TEST(MetricsSnapshotTest, TextAndDigestAreDeterministic) {
  auto build = [] {
    MetricsRegistry registry;
    registry.Add("z.last", 3);
    registry.Add("a.first", 1.5);
    registry.Set("gauge", 2.25);
    registry.Hist("h").Record(50);
    return registry.Snapshot();
  };
  MetricsSnapshot one = build();
  MetricsSnapshot two = build();
  EXPECT_EQ(one.ToText(), two.ToText());
  EXPECT_EQ(one.Digest(), two.Digest());
  // Text is sorted: counters lead and are name-ordered within their kind.
  std::string text = one.ToText();
  EXPECT_LT(text.find("counter a.first"), text.find("counter z.last"));
  EXPECT_NE(text.find("gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("hist h"), std::string::npos);

  // Any value change moves the digest.
  MetricsRegistry other;
  other.Add("z.last", 4);
  EXPECT_NE(one.Digest(), other.Snapshot().Digest());
}

// --- Triage helpers (campaign failure localization) ---

TEST(TriageTest, FirstDivergentLineFindsEarliestDifference) {
  EXPECT_TRUE(FirstDivergentLine("", "").identical());
  EXPECT_TRUE(FirstDivergentLine("a\nb\nc\n", "a\nb\nc\n").identical());

  DivergencePoint mid = FirstDivergentLine("a\nb\nc\n", "a\nX\nc\n");
  EXPECT_EQ(mid.line, 2);
  EXPECT_EQ(mid.a, "b");
  EXPECT_EQ(mid.b, "X");

  // One text being a prefix of the other diverges at the first missing
  // line, reported as <eof> on the shorter side.
  DivergencePoint tail = FirstDivergentLine("a\nb\n", "a\nb\nc\n");
  EXPECT_EQ(tail.line, 3);
  EXPECT_EQ(tail.a, "<eof>");
  EXPECT_EQ(tail.b, "c");
}

TEST(TriageTest, DescribeDivergenceNamesBothSides) {
  EXPECT_EQ(DescribeDivergence("same\n", "same\n"), "texts are identical");
  std::string described =
      DescribeDivergence("a\nb\n", "a\nZ\n", "faulted", "nominal");
  EXPECT_NE(described.find("line 2"), std::string::npos);
  EXPECT_NE(described.find("faulted: b"), std::string::npos);
  EXPECT_NE(described.find("nominal: Z"), std::string::npos);
}

TEST(TriageTest, FailureBucketKeyIsOrderInvariant) {
  EXPECT_EQ(FailureBucketKey("family", {}), "family|<no-assertion>");
  EXPECT_EQ(FailureBucketKey("f", {"b >= 1", "a == 0"}),
            FailureBucketKey("f", {"a == 0", "b >= 1"}));
  EXPECT_EQ(FailureBucketKey("f", {"a == 0", "b >= 1"}),
            "f|a == 0|b >= 1");
  // Different family or different assertion set → different bucket.
  EXPECT_NE(FailureBucketKey("f", {"a == 0"}),
            FailureBucketKey("g", {"a == 0"}));
  EXPECT_NE(FailureBucketKey("f", {"a == 0"}),
            FailureBucketKey("f", {"a == 1"}));
}

}  // namespace
}  // namespace androne
