#include <gtest/gtest.h>

#include <tuple>

#include "src/rt/cyclictest.h"
#include "src/rt/disk_queue.h"
#include "src/rt/fluid_resource.h"
#include "src/rt/kernel_model.h"
#include "src/rt/load_profile.h"
#include "src/rt/passmark.h"
#include "src/util/sim_clock.h"

namespace androne {
namespace {

// ---------------------------------------------------------------- Fluid.

TEST(FluidResourceTest, SingleJobRunsAtItsDemand) {
  SimClock clock;
  FluidResource res(&clock, 4.0);
  double finished_at = -1;
  res.Submit(8.0, 2.0, [&] { finished_at = ToSecondsF(clock.now()); });
  clock.RunAll();
  EXPECT_NEAR(finished_at, 4.0, 1e-9);  // 8 units at rate 2.
}

TEST(FluidResourceTest, DemandCappedByCapacity) {
  SimClock clock;
  FluidResource res(&clock, 4.0);
  double finished_at = -1;
  res.Submit(8.0, 100.0, [&] { finished_at = ToSecondsF(clock.now()); });
  clock.RunAll();
  EXPECT_NEAR(finished_at, 2.0, 1e-9);  // Capped at capacity 4.
}

TEST(FluidResourceTest, EqualJobsShareEvenly) {
  SimClock clock;
  FluidResource res(&clock, 4.0);
  std::vector<double> finish(3, -1);
  for (int i = 0; i < 3; ++i) {
    res.Submit(4.0, 4.0,
               [&, i] { finish[static_cast<size_t>(i)] = ToSecondsF(clock.now()); });
  }
  clock.RunAll();
  for (double f : finish) {
    EXPECT_NEAR(f, 3.0, 1e-9);  // Each runs at 4/3.
  }
}

TEST(FluidResourceTest, WaterFillingSatisfiesSmallDemandsFirst) {
  SimClock clock;
  FluidResource res(&clock, 4.0);
  double small_done = -1, big_done = -1;
  // Small job demands 1 (fully satisfiable); big job takes the rest (3).
  res.Submit(2.0, 1.0, [&] { small_done = ToSecondsF(clock.now()); });
  res.Submit(9.0, 10.0, [&] { big_done = ToSecondsF(clock.now()); });
  clock.RunAll();
  EXPECT_NEAR(small_done, 2.0, 1e-9);
  // Big: 3/s for 2s (6 units), then 4/s for the rest (3 units) -> 2.75s.
  EXPECT_NEAR(big_done, 2.75, 1e-9);
}

TEST(FluidResourceTest, LateArrivalSlowsExistingJob) {
  SimClock clock;
  FluidResource res(&clock, 2.0);
  double first_done = -1;
  res.Submit(4.0, 2.0, [&] { first_done = ToSecondsF(clock.now()); });
  clock.ScheduleAt(Seconds(1), [&] {
    res.Submit(10.0, 2.0, [] {});
  });
  clock.RunAll();
  // First job: 2 units in first second, remaining 2 at rate 1 -> done at 3s.
  EXPECT_NEAR(first_done, 3.0, 1e-9);
}

TEST(FluidResourceTest, CancelStopsCallbackAndFreesCapacity) {
  SimClock clock;
  FluidResource res(&clock, 2.0);
  bool cancelled_ran = false;
  double other_done = -1;
  auto id = res.Submit(100.0, 1.0, [&] { cancelled_ran = true; });
  res.Submit(4.0, 2.0, [&] { other_done = ToSecondsF(clock.now()); });
  clock.ScheduleAt(Seconds(1), [&] { res.Cancel(id); });
  clock.RunAll();
  EXPECT_FALSE(cancelled_ran);
  // Other job: rate 1 for 1s, then rate 2 -> 1 + 3/2 = 2.5s.
  EXPECT_NEAR(other_done, 2.5, 1e-9);
}

TEST(FluidResourceTest, ZeroWorkCompletesImmediately) {
  SimClock clock;
  FluidResource res(&clock, 1.0);
  bool done = false;
  res.Submit(0.0, 1.0, [&] { done = true; });
  clock.RunAll();
  EXPECT_TRUE(done);
  EXPECT_EQ(res.active_jobs(), 0u);
}

// ---------------------------------------------------------------- Disk.

TEST(DiskQueueTest, SingleOpTakesServiceTime) {
  SimClock clock;
  DiskQueue disk(&clock, Millis(5));
  SimTime done_at = -1;
  disk.Submit([&] { done_at = clock.now(); });
  clock.RunAll();
  EXPECT_EQ(done_at, Millis(5));
  EXPECT_EQ(disk.completed_ops(), 1u);
}

TEST(DiskQueueTest, OpsSerializeFifo) {
  SimClock clock;
  DiskQueue disk(&clock, Millis(5));
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    disk.Submit([&] { done.push_back(clock.now()); });
  }
  EXPECT_EQ(disk.queue_depth(), 3u);
  clock.RunAll();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], Millis(5));
  EXPECT_EQ(done[1], Millis(10));
  EXPECT_EQ(done[2], Millis(15));
  EXPECT_FALSE(disk.busy());
}

TEST(DiskQueueTest, ServiceScaleStretchesOp) {
  SimClock clock;
  DiskQueue disk(&clock, Millis(10));
  SimTime done_at = -1;
  disk.Submit([&] { done_at = clock.now(); }, 1.5);
  clock.RunAll();
  EXPECT_EQ(done_at, Millis(15));
}

// ---------------------------------------------------------------- Kernel.

TEST(KernelModelTest, RtParamsAreStrictlyBetter) {
  for (const LoadProfile& load :
       {IdleLoad(), PassmarkLoad() + IperfLoad(), StressLoad() + IperfLoad()}) {
    auto p = DeriveLatencyParams(PreemptionModel::kPreempt, load);
    auto rt = DeriveLatencyParams(PreemptionModel::kPreemptRt, load);
    EXPECT_LT(rt.base_us, p.base_us);
    EXPECT_LT(rt.section_occupancy, p.section_occupancy);
    EXPECT_LT(rt.section_mean_us, p.section_mean_us);
    EXPECT_LT(rt.tail_max_us, p.tail_max_us);
  }
}

TEST(KernelModelTest, LoadIncreasesLatencyParams) {
  auto idle = DeriveLatencyParams(PreemptionModel::kPreempt, IdleLoad());
  auto stress = DeriveLatencyParams(PreemptionModel::kPreempt,
                                    StressLoad() + IperfLoad());
  EXPECT_LT(idle.base_us, stress.base_us);
  EXPECT_LT(idle.section_occupancy, stress.section_occupancy);
  EXPECT_LT(idle.section_mean_us, stress.section_mean_us);
  EXPECT_LT(idle.tail_max_us, stress.tail_max_us);
}

TEST(KernelModelTest, SamplerIsDeterministicForSeed) {
  WakeLatencySampler a(PreemptionModel::kPreempt, StressLoad(), 5);
  WakeLatencySampler b(PreemptionModel::kPreempt, StressLoad(), 5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(a.SampleUs(), b.SampleUs());
  }
}

TEST(KernelModelTest, SamplesNeverBelowFloor) {
  WakeLatencySampler s(PreemptionModel::kPreemptRt, IdleLoad(), 7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(s.SampleUs(), 2.0);
  }
}

struct CyclictestScenario {
  const char* name;
  PreemptionModel model;
  int which_load;  // 0 idle, 1 passmark+iperf, 2 stress+iperf.
  double avg_lo, avg_hi;
  double max_hi;
};

LoadProfile ScenarioLoad(int which) {
  switch (which) {
    case 0:
      return IdleLoad();
    case 1:
      return IdleLoad() + PassmarkLoad() + IperfLoad();
    default:
      return IdleLoad() + StressLoad() + IperfLoad();
  }
}

class CyclictestBandTest
    : public ::testing::TestWithParam<CyclictestScenario> {};

// Reproduction bands around the paper's Figure 11 numbers, run with 2M
// loops (the bench runs the full 100M).
TEST_P(CyclictestBandTest, MatchesPaperBand) {
  const auto& sc = GetParam();
  CyclictestOptions opts;
  opts.loops = 2'000'000;
  opts.seed = 99;
  CyclictestResult r = RunCyclictest(sc.model, ScenarioLoad(sc.which_load), opts);
  EXPECT_GE(r.histogram.mean(), sc.avg_lo) << sc.name;
  EXPECT_LE(r.histogram.mean(), sc.avg_hi) << sc.name;
  EXPECT_LE(r.histogram.max(), sc.max_hi) << sc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Fig11, CyclictestBandTest,
    ::testing::Values(
        CyclictestScenario{"preempt-idle", PreemptionModel::kPreempt, 0, 10,
                           30, 3000},
        CyclictestScenario{"preempt-passmark", PreemptionModel::kPreempt, 1,
                           25, 80, 25000},
        CyclictestScenario{"preempt-stress", PreemptionModel::kPreempt, 2, 80,
                           300, 30000},
        CyclictestScenario{"rt-idle", PreemptionModel::kPreemptRt, 0, 5, 15,
                           200},
        CyclictestScenario{"rt-passmark", PreemptionModel::kPreemptRt, 1, 8,
                           20, 500},
        CyclictestScenario{"rt-stress", PreemptionModel::kPreemptRt, 2, 10,
                           25, 500}),
    [](const auto& info) { return std::string(info.param.name).replace(
          std::string(info.param.name).find('-'), 1, "_"); });

TEST(CyclictestTest, RtMeetsArdupilotDeadlineUnderStress) {
  CyclictestOptions opts;
  opts.loops = 5'000'000;
  auto r = RunCyclictest(PreemptionModel::kPreemptRt,
                         IdleLoad() + StressLoad() + IperfLoad(), opts);
  EXPECT_EQ(r.missed_fast_loop_deadlines, 0u);
  EXPECT_LT(r.histogram.max(), kArdupilotFastLoopBudgetUs);
}

TEST(CyclictestTest, PreemptOccasionallyMissesDeadlineUnderStress) {
  CyclictestOptions opts;
  opts.loops = 5'000'000;
  auto r = RunCyclictest(PreemptionModel::kPreempt,
                         IdleLoad() + StressLoad() + IperfLoad(), opts);
  EXPECT_GT(r.missed_fast_loop_deadlines, 0u);
  // But rarely: the paper argues PREEMPT is "likely sufficient" too.
  EXPECT_LT(static_cast<double>(r.missed_fast_loop_deadlines) /
                static_cast<double>(r.loops),
            1e-3);
}

// ---------------------------------------------------------------- PassMark.

double Normalized(double t, double stock) { return t / stock; }

TEST(PassmarkTest, SingleVdroneOverheadUnderTwoPercent) {
  PassmarkScores stock = RunPassmark({1, PreemptionModel::kPreempt, true});
  for (PreemptionModel m :
       {PreemptionModel::kPreempt, PreemptionModel::kPreemptRt}) {
    PassmarkScores one = RunPassmark({1, m, false});
    EXPECT_LT(Normalized(one.cpu_seconds, stock.cpu_seconds), 1.08);
    EXPECT_LT(Normalized(one.disk_seconds, stock.disk_seconds), 1.05);
    EXPECT_LT(Normalized(one.memory_seconds, stock.memory_seconds), 1.05);
    EXPECT_GE(Normalized(one.cpu_seconds, stock.cpu_seconds), 1.0);
  }
}

TEST(PassmarkTest, CpuScalesRoughlyLinearly) {
  PassmarkScores stock = RunPassmark({1, PreemptionModel::kPreempt, true});
  PassmarkScores two = RunPassmark({2, PreemptionModel::kPreempt, false});
  PassmarkScores three = RunPassmark({3, PreemptionModel::kPreempt, false});
  EXPECT_NEAR(Normalized(two.cpu_seconds, stock.cpu_seconds), 2.0, 0.15);
  EXPECT_NEAR(Normalized(three.cpu_seconds, stock.cpu_seconds), 3.0, 0.2);
}

TEST(PassmarkTest, DiskAndMemoryScaleSubLinearly) {
  PassmarkScores stock = RunPassmark({1, PreemptionModel::kPreempt, true});
  PassmarkScores three = RunPassmark({3, PreemptionModel::kPreempt, false});
  double disk = Normalized(three.disk_seconds, stock.disk_seconds);
  double mem = Normalized(three.memory_seconds, stock.memory_seconds);
  EXPECT_NEAR(disk, 2.0, 0.25);  // Paper: ~2x.
  EXPECT_NEAR(mem, 1.8, 0.2);    // Paper: ~1.8x.
  EXPECT_LT(disk, 3.0);
  EXPECT_LT(mem, 3.0);
}

TEST(PassmarkTest, RtKernelCostsMoreUnderContention) {
  PassmarkScores stock = RunPassmark({1, PreemptionModel::kPreempt, true});
  PassmarkScores p3 = RunPassmark({3, PreemptionModel::kPreempt, false});
  PassmarkScores rt3 = RunPassmark({3, PreemptionModel::kPreemptRt, false});
  EXPECT_GT(rt3.cpu_seconds, p3.cpu_seconds);
  EXPECT_GT(rt3.disk_seconds, p3.disk_seconds);
  EXPECT_GT(rt3.memory_seconds, p3.memory_seconds);
  // Paper: disk 2.2x, memory 2.3x with PREEMPT_RT at 3 virtual drones.
  EXPECT_NEAR(Normalized(rt3.disk_seconds, stock.disk_seconds), 2.2, 0.25);
  EXPECT_NEAR(Normalized(rt3.memory_seconds, stock.memory_seconds), 2.3, 0.25);
}

class PassmarkMonotoneTest : public ::testing::TestWithParam<
                                 std::tuple<int, PreemptionModel>> {};

// Property: more virtual drones never make any sub-benchmark faster.
TEST_P(PassmarkMonotoneTest, MoreInstancesNeverFaster) {
  auto [n, model] = GetParam();
  if (n < 2) {
    GTEST_SKIP();
  }
  PassmarkScores fewer = RunPassmark({n - 1, model, false});
  PassmarkScores more = RunPassmark({n, model, false});
  EXPECT_GE(more.cpu_seconds, fewer.cpu_seconds - 1e-9);
  EXPECT_GE(more.disk_seconds, fewer.disk_seconds - 1e-9);
  EXPECT_GE(more.memory_seconds, fewer.memory_seconds - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PassmarkMonotoneTest,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(PreemptionModel::kPreempt,
                                         PreemptionModel::kPreemptRt)));

}  // namespace
}  // namespace androne
