#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/fleet_executor.h"
#include "src/exec/fleet_world.h"
#include "src/exec/thread_pool.h"
#include "src/exec/world_template.h"

namespace androne {
namespace {

// --- ThreadPool ---

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPoolTest, WaitReturnsOnlyAfterTasksFinish) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    done.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  // A task fans out children; Wait() must cover the whole tree, not just the
  // originally submitted roots.
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.Submit([&] {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&] {
        for (int j = 0; j < 4; ++j) {
          pool.Submit(
              [&] { leaves.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
  });
  pool.Wait();
  EXPECT_EQ(leaves.load(), 32);
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, IdleWorkersStealQueuedWork) {
  if (ThreadPool::HardwareThreads() < 2) {
    GTEST_SKIP() << "work stealing needs >1 hardware thread to be observable";
  }
  // Child tasks land on the spawning worker's own deque; with one worker
  // busy fanning out slow tasks, the other workers can only get work by
  // stealing.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.Submit([&] {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  pool.Wait();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_GT(pool.steals(), 0u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

// --- FleetExecutor ---

WorldResult CountingWorld(const WorldContext& ctx) {
  WorldResult result;
  result.completed = true;
  result.events_run = 10;
  result.digest = ctx.seed;
  result.counters["index_sum"] = ctx.index;
  Histogram h;
  h.Record(ctx.index + 1);
  result.histograms["values"] = h;
  return result;
}

TEST(FleetExecutorTest, WorldSeedDependsOnlyOnBaseSeedAndIndex) {
  EXPECT_EQ(FleetExecutor::WorldSeed(7, 3), FleetExecutor::WorldSeed(7, 3));
  EXPECT_NE(FleetExecutor::WorldSeed(7, 3), FleetExecutor::WorldSeed(7, 4));
  EXPECT_NE(FleetExecutor::WorldSeed(7, 3), FleetExecutor::WorldSeed(8, 3));
  EXPECT_NE(FleetExecutor::WorldSeed(7, 0), 7u);  // Index 0 is mixed too.
}

TEST(FleetExecutorTest, MergesCountersHistogramsAndEvents) {
  FleetOptions options;
  options.threads = 3;
  FleetExecutor executor(options);
  FleetReport report = executor.Run(6, CountingWorld);
  EXPECT_EQ(report.completed, 6);
  EXPECT_EQ(report.cancelled, 0);
  EXPECT_EQ(report.events_run, 60u);
  EXPECT_DOUBLE_EQ(report.counters.at("index_sum"), 0 + 1 + 2 + 3 + 4 + 5);
  EXPECT_EQ(report.histograms.at("values").total_count(), 6u);
  ASSERT_EQ(report.worlds.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(report.worlds[i].index, i);  // Index order, not finish order.
  }
}

TEST(FleetExecutorTest, FleetDigestIsThreadCountInvariant) {
  uint64_t digests[3];
  int thread_counts[] = {1, 2, 8};
  for (int t = 0; t < 3; ++t) {
    FleetOptions options;
    options.threads = thread_counts[t];
    options.base_seed = 99;
    FleetExecutor executor(options);
    digests[t] = executor.Run(8, CountingWorld).fleet_digest;
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST(FleetExecutorTest, WallBudgetSkipsUnstartedWorlds) {
  FleetOptions options;
  options.threads = 1;  // Serialize so later worlds start after the budget.
  options.wall_budget_ms = 20;
  FleetExecutor executor(options);
  FleetReport report = executor.Run(50, [](const WorldContext& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    WorldResult r;
    r.completed = !ctx.ShouldCancel();
    return r;
  });
  EXPECT_GT(report.cancelled, 0);
  EXPECT_LT(report.completed, 50);
  EXPECT_EQ(report.completed + report.cancelled, 50);
  // Never-ran worlds are tracked separately from started-then-cancelled
  // ones, and the per-world flags must agree with the fleet tally.
  EXPECT_GT(report.skipped, 0);
  EXPECT_LE(report.skipped, report.cancelled);
  int skipped_worlds = 0;
  for (const WorldResult& world : report.worlds) {
    if (world.skipped) {
      ++skipped_worlds;
      EXPECT_FALSE(world.completed);
    }
  }
  EXPECT_EQ(report.skipped, skipped_worlds);
  ASSERT_NE(report.metrics.counters.find("fleet.worlds_skipped"),
            report.metrics.counters.end());
  EXPECT_DOUBLE_EQ(report.metrics.counters.at("fleet.worlds_skipped"),
                   static_cast<double>(report.skipped));
}

TEST(FleetExecutorTest, RequestCancelStopsRemainingWorlds) {
  FleetOptions options;
  options.threads = 2;
  FleetExecutor executor(options);
  FleetReport report = executor.Run(40, [&](const WorldContext& ctx) {
    if (ctx.index == 0) {
      executor.RequestCancel();
    }
    WorldResult r;
    r.completed = true;
    return r;
  });
  // World 0 cancels the rest; some already-started worlds may finish, but
  // far from all 40 run.
  EXPECT_GT(report.cancelled, 0);
}

TEST(FleetExecutorTest, CancelFlagResetsBetweenRuns) {
  FleetOptions options;
  options.threads = 2;
  FleetExecutor executor(options);
  executor.RequestCancel();
  FleetReport report = executor.Run(4, CountingWorld);
  EXPECT_EQ(report.completed, 4);  // A new Run starts uncancelled.
}

// --- Fleet world determinism (the satellite check): the same fleet config
// must produce identical per-world flight-log/histogram digests at 1, 2,
// and 8 threads. ---

TEST(FleetWorldTest, DigestsAreIdenticalAcrossThreadCounts) {
  FleetWorldConfig config;
  config.tenants = 1;
  config.dwell_s = 5;
  config.annealing_iterations = 50;
  const int kWorlds = 3;

  std::vector<FleetReport> reports;
  for (int threads : {1, 2, 8}) {
    FleetOptions options;
    options.threads = threads;
    options.base_seed = 2026;
    FleetExecutor executor(options);
    reports.push_back(executor.Run(kWorlds, MakeFleetWorld(config)));
  }

  for (const FleetReport& report : reports) {
    ASSERT_EQ(report.completed, kWorlds);
  }
  for (size_t t = 1; t < reports.size(); ++t) {
    EXPECT_EQ(reports[0].fleet_digest, reports[t].fleet_digest);
    EXPECT_EQ(reports[0].events_run, reports[t].events_run);
    for (int w = 0; w < kWorlds; ++w) {
      // Per-world flight-log + downlink digest, bit-identical.
      EXPECT_EQ(reports[0].worlds[w].digest, reports[t].worlds[w].digest)
          << "world " << w << " diverged at thread count index " << t;
      EXPECT_EQ(reports[0].worlds[w].events_run,
                reports[t].worlds[w].events_run);
    }
    // Merged histogram digests match because merge order is index order.
    ASSERT_EQ(reports[0].histograms.size(), reports[t].histograms.size());
    for (const auto& [name, hist] : reports[0].histograms) {
      EXPECT_EQ(hist.Digest(), reports[t].histograms.at(name).Digest())
          << "merged histogram " << name;
    }
  }
}

TEST(FleetWorldTest, DifferentSeedsFlyDifferentWorlds) {
  FleetWorldConfig config;
  config.tenants = 1;
  config.dwell_s = 5;
  config.annealing_iterations = 50;
  FleetOptions a;
  a.base_seed = 1;
  FleetOptions b;
  b.base_seed = 2;
  FleetReport ra = FleetExecutor(a).Run(1, MakeFleetWorld(config));
  FleetReport rb = FleetExecutor(b).Run(1, MakeFleetWorld(config));
  ASSERT_EQ(ra.completed, 1);
  ASSERT_EQ(rb.completed, 1);
  EXPECT_NE(ra.worlds[0].digest, rb.worlds[0].digest);
}

TEST(FleetWorldTest, WorldReportsFlightAndDownlinkCounters) {
  FleetWorldConfig config;
  config.tenants = 2;
  config.dwell_s = 5;
  config.annealing_iterations = 50;
  FleetOptions options;
  options.base_seed = 77;
  FleetReport report = FleetExecutor(options).Run(1, MakeFleetWorld(config));
  ASSERT_EQ(report.completed, 1);
  const WorldResult& world = report.worlds[0];
  EXPECT_TRUE(world.completed);
  EXPECT_GT(world.events_run, 0u);
  EXPECT_DOUBLE_EQ(world.counters.at("waypoints_visited"), 2.0);
  EXPECT_GT(world.counters.at("flight_time_s"), 0.0);
  EXPECT_GT(world.counters.at("battery_used_j"), 0.0);
  EXPECT_GT(world.counters.at("downlink_frames"), 0.0);
  EXPECT_GT(report.histograms.at("downlink_latency_us").total_count(), 0u);
}

TEST(FleetWorldTest, TelemetryBatchingPreservesTheFlightDigest) {
  // Batching repacks datagrams; it must never move the flight itself. The
  // attitude-log digest is the invariant, while the datagram count should
  // visibly drop.
  FleetWorldConfig config;
  config.tenants = 2;
  config.dwell_s = 5;
  config.annealing_iterations = 50;
  WorldContext ctx;
  ctx.index = 0;
  ctx.seed = FleetExecutor::WorldSeed(77, 0);

  config.batch_telemetry = false;
  WorldResult unbatched = RunFleetWorld(config, ctx);
  config.batch_telemetry = true;
  WorldResult batched = RunFleetWorld(config, ctx);

  ASSERT_TRUE(unbatched.completed);
  ASSERT_TRUE(batched.completed);
  EXPECT_NE(batched.flight_digest, 0u);
  EXPECT_EQ(batched.flight_digest, unbatched.flight_digest);
  // Same telemetry stream, fewer datagrams on the wire.
  EXPECT_EQ(batched.counters.at("wire_frames"),
            unbatched.counters.at("wire_frames"));
  EXPECT_LT(batched.counters.at("downlink_flushes"),
            unbatched.counters.at("downlink_flushes"));
}

// --- World templates (boot-once/fork-many, DESIGN.md §14) ---

TEST(WorldTemplateTest, CloneEqualsColdBootAcrossSeedsThreadsAndTracing) {
  // The acceptance matrix: seed x thread count x traced/untraced. A
  // templated fleet (one cold boot per row, the rest cloned from the
  // template blob) must be bit-identical to the template-less fleet —
  // fleet digest, per-world digest/flight digest, metrics, trace export.
  const int kWorlds = 4;
  for (uint64_t base_seed : {uint64_t{2026}, uint64_t{901}}) {
    for (uint32_t categories : {uint32_t{0}, uint32_t{0xffffffffu}}) {
      FleetWorldConfig config;
      config.tenants = 1;
      config.dwell_s = 5;
      config.annealing_iterations = 50;
      config.trace_categories = categories;

      FleetOptions cold_options;
      cold_options.threads = 1;
      cold_options.base_seed = base_seed;
      FleetReport cold =
          FleetExecutor(cold_options).Run(kWorlds, MakeFleetWorld(config));
      ASSERT_EQ(cold.completed, kWorlds);

      for (int threads : {1, 2, 8}) {
        const std::string label = "seed " + std::to_string(base_seed) +
                                  (categories != 0 ? " traced" : " untraced") +
                                  " threads " + std::to_string(threads);
        WorldTemplateCache templates;
        FleetWorldConfig cloned_config = config;
        cloned_config.templates = &templates;
        FleetOptions options;
        options.threads = threads;
        options.base_seed = base_seed;
        FleetReport cloned =
            FleetExecutor(options).Run(kWorlds, MakeFleetWorld(cloned_config));
        ASSERT_EQ(cloned.completed, kWorlds) << label;
        // The blocking builder protocol makes reuse counts deterministic at
        // any thread count: exactly one miss per boot family.
        EXPECT_EQ(templates.misses(), 1u) << label;
        EXPECT_EQ(templates.hits(), static_cast<uint64_t>(kWorlds - 1))
            << label;
        EXPECT_EQ(cloned.worlds_cloned, kWorlds - 1) << label;
        EXPECT_EQ(cloned.templates_built, 1) << label;
        EXPECT_EQ(cloned.fleet_digest, cold.fleet_digest) << label;
        EXPECT_EQ(cloned.events_run, cold.events_run) << label;
        for (int w = 0; w < kWorlds; ++w) {
          const WorldResult& a = cold.worlds[w];
          const WorldResult& b = cloned.worlds[w];
          EXPECT_EQ(a.digest, b.digest) << label << " world " << w;
          EXPECT_EQ(a.flight_digest, b.flight_digest)
              << label << " world " << w;
          EXPECT_EQ(a.counters, b.counters) << label << " world " << w;
          EXPECT_EQ(a.metrics.ToText(), b.metrics.ToText())
              << label << " world " << w;
          EXPECT_EQ(a.trace_text, b.trace_text) << label << " world " << w;
        }
      }
    }
  }
}

TEST(WorldTemplateTest, BootRelevantKnobsInvalidateTheTemplate) {
  // The cache keys on boot-relevant knobs only: a config differing in one
  // must cold-boot its own template, while post-boundary mission knobs
  // (tenants, dwell) share the boot family — and the shared-template clone
  // is still digest-identical to its own cold-booted twin.
  WorldTemplateCache templates;
  WorldContext ctx;
  ctx.index = 0;
  ctx.seed = FleetExecutor::WorldSeed(77, 0);

  FleetWorldConfig base;
  base.tenants = 1;
  base.dwell_s = 5;
  base.annealing_iterations = 50;
  base.templates = &templates;

  WorldResult first = RunFleetWorld(base, ctx);
  ASSERT_TRUE(first.completed);
  EXPECT_EQ(templates.misses(), 1u);
  EXPECT_TRUE(first.provision.built_template);

  // Boot-relevant: the memory budget shapes the booted board.
  FleetWorldConfig budget = base;
  budget.memory_budget_mb = 2048;
  ASSERT_TRUE(RunFleetWorld(budget, ctx).completed);
  EXPECT_EQ(templates.misses(), 2u);

  // Boot-relevant: the legacy sensor path boots a different stack.
  FleetWorldConfig legacy = base;
  legacy.sensor_bus = false;
  legacy.batch_telemetry = false;
  ASSERT_TRUE(RunFleetWorld(legacy, ctx).completed);
  EXPECT_EQ(templates.misses(), 3u);
  EXPECT_EQ(templates.hits(), 0u);

  // Post-boundary mission shape: shares the first boot family...
  FleetWorldConfig mission = base;
  mission.tenants = 2;
  mission.dwell_s = 8;
  WorldResult cloned = RunFleetWorld(mission, ctx);
  ASSERT_TRUE(cloned.completed);
  EXPECT_EQ(templates.misses(), 3u);
  EXPECT_EQ(templates.hits(), 1u);
  EXPECT_TRUE(cloned.provision.cloned);

  // ...and the clone is exactly the world a cold boot would have flown.
  FleetWorldConfig mission_cold = mission;
  mission_cold.templates = nullptr;
  WorldResult cold = RunFleetWorld(mission_cold, ctx);
  ASSERT_TRUE(cold.completed);
  EXPECT_EQ(cloned.digest, cold.digest);
  EXPECT_EQ(cloned.flight_digest, cold.flight_digest);
  EXPECT_EQ(cloned.counters, cold.counters);
  EXPECT_EQ(cloned.metrics.ToText(), cold.metrics.ToText());
}

TEST(FleetWorldTest, LegacySensorPathStillFliesTheWorld) {
  FleetWorldConfig config;
  config.tenants = 1;
  config.dwell_s = 5;
  config.annealing_iterations = 50;
  config.sensor_bus = false;
  config.batch_telemetry = false;
  WorldContext ctx;
  ctx.index = 0;
  ctx.seed = FleetExecutor::WorldSeed(77, 0);
  WorldResult legacy = RunFleetWorld(config, ctx);
  EXPECT_TRUE(legacy.completed);
  EXPECT_GT(legacy.events_run, 0u);
}

}  // namespace
}  // namespace androne
