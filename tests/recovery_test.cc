// Crash-recovery equivalence (DESIGN.md §13): a fleet world killed
// mid-flight by the crash fault family, restored from its latest checkpoint
// and replayed, must be bit-identical to the uninterrupted run at the same
// seed — same digest, same trace export, same metrics — at any crash point,
// any checkpoint cadence, and any executor thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/exec/fleet_executor.h"
#include "src/exec/fleet_world.h"
#include "src/exec/world_template.h"
#include "src/obs/trace.h"
#include "src/snapshot/checkpoint.h"

namespace androne {
namespace {

FleetWorldConfig BaseConfig() {
  FleetWorldConfig config;
  config.tenants = 2;
  config.dwell_s = 10;
  config.annealing_iterations = 120;
  // Trace everything so the equivalence check covers the trace ring too.
  config.trace_categories = kTraceAll;
  return config;
}

WorldContext MakeContext(uint64_t seed) {
  WorldContext ctx;
  ctx.index = 0;
  ctx.seed = seed;
  return ctx;
}

// The two checkpoint cadences the acceptance matrix sweeps: phase-boundary
// captures and a pure periodic cadence.
CheckpointPolicy PhaseBoundaryCadence() {
  CheckpointPolicy policy;
  policy.period_s = 0;
  policy.at_phase_boundaries = true;
  return policy;
}

CheckpointPolicy PeriodicCadence() {
  CheckpointPolicy policy;
  policy.period_s = 4;
  policy.at_phase_boundaries = false;
  return policy;
}

void ExpectEquivalent(const WorldResult& baseline, const WorldResult& run,
                      const std::string& label) {
  EXPECT_EQ(baseline.completed, run.completed) << label;
  EXPECT_EQ(baseline.digest, run.digest) << label;
  EXPECT_EQ(baseline.flight_digest, run.flight_digest) << label;
  EXPECT_EQ(baseline.events_run, run.events_run) << label;
  EXPECT_EQ(baseline.counters, run.counters) << label;
  EXPECT_EQ(baseline.metrics.Digest(), run.metrics.Digest()) << label;
  EXPECT_EQ(baseline.metrics.ToText(), run.metrics.ToText()) << label;
  EXPECT_EQ(baseline.trace_text, run.trace_text) << label;
}

TEST(RecoveryEquivalenceTest, CheckpointingAloneDoesNotMoveTheWorld) {
  // Captures are pure reads: a world that checkpoints but never crashes is
  // byte-identical to one that never checkpoints.
  WorldResult plain = RunFleetWorld(BaseConfig(), MakeContext(11));
  ASSERT_TRUE(plain.completed);

  FleetWorldConfig config = BaseConfig();
  config.checkpoint = PhaseBoundaryCadence();
  WorldResult checkpointed = RunFleetWorld(config, MakeContext(11));
  EXPECT_GT(checkpointed.recovery.checkpoints_saved, 0);
  ExpectEquivalent(plain, checkpointed, "checkpointing on vs off");
}

TEST(RecoveryEquivalenceTest, AnyCrashPointAnyCadenceReplaysBitIdentical) {
  // >= 3 crash points x >= 2 cadences: every recovered run must match the
  // uninterrupted baseline at the same seed.
  WorldResult baseline = RunFleetWorld(BaseConfig(), MakeContext(17));
  ASSERT_TRUE(baseline.completed);

  const std::vector<double> crash_points = {6.0, 14.0, 27.0};
  const std::vector<CheckpointPolicy> cadences = {PhaseBoundaryCadence(),
                                                  PeriodicCadence()};
  for (double crash_at : crash_points) {
    for (size_t c = 0; c < cadences.size(); ++c) {
      FleetWorldConfig config = BaseConfig();
      config.checkpoint = cadences[c];
      config.crash_at_s = {crash_at};
      WorldResult recovered = RunFleetWorld(config, MakeContext(17));
      const std::string label = "crash at " + std::to_string(crash_at) +
                                "s, cadence " + std::to_string(c);
      EXPECT_EQ(recovered.recovery.crashes, 1) << label;
      EXPECT_EQ(recovered.recovery.restores, 1) << label;
      EXPECT_TRUE(recovered.recovery.fixed_point_ok) << label;
      EXPECT_FALSE(recovered.infra_failure) << label;
      ExpectEquivalent(baseline, recovered, label);
    }
  }
}

TEST(RecoveryEquivalenceTest, BackToBackCrashesRecoverBitIdentical) {
  WorldResult baseline = RunFleetWorld(BaseConfig(), MakeContext(23));
  ASSERT_TRUE(baseline.completed);

  FleetWorldConfig config = BaseConfig();
  config.checkpoint = PhaseBoundaryCadence();
  config.crash_at_s = {8.0, 18.0, 26.0};
  WorldResult recovered = RunFleetWorld(config, MakeContext(23));
  EXPECT_EQ(recovered.recovery.crashes, 3);
  EXPECT_EQ(recovered.recovery.restores, 3);
  EXPECT_TRUE(recovered.recovery.fixed_point_ok);
  EXPECT_FALSE(recovered.recovery.gave_up);
  EXPECT_GT(recovered.recovery.checkpoint_bytes, 0u);
  ExpectEquivalent(baseline, recovered, "three crashes");
}

TEST(RecoveryEquivalenceTest, ReplayFromBootWhenNoCheckpointExists) {
  // Checkpointing disabled: the only recovery is re-flying from boot, which
  // determinism makes exact.
  WorldResult baseline = RunFleetWorld(BaseConfig(), MakeContext(29));
  ASSERT_TRUE(baseline.completed);

  FleetWorldConfig config = BaseConfig();
  config.crash_at_s = {12.0};
  WorldResult recovered = RunFleetWorld(config, MakeContext(29));
  EXPECT_EQ(recovered.recovery.crashes, 1);
  EXPECT_EQ(recovered.recovery.restores, 0);
  EXPECT_EQ(recovered.recovery.replays_from_boot, 1);
  ExpectEquivalent(baseline, recovered, "replay from boot");
}

TEST(RecoveryEquivalenceTest, RecoveredWorldsUnderChaosStayEquivalent) {
  // Recovery composes with the other chaos axes: a crash-looped payload
  // container (supervised restarts with armed backoff timers in the
  // checkpoint) must survive the kill/restore cycle too.
  FleetWorldConfig chaotic = BaseConfig();
  chaotic.crash_loop.count = 3;
  chaotic.crash_loop.start_s = 4;
  chaotic.crash_loop.period_s = 6;
  WorldResult baseline = RunFleetWorld(chaotic, MakeContext(31));
  ASSERT_TRUE(baseline.completed);

  FleetWorldConfig config = chaotic;
  config.checkpoint = PhaseBoundaryCadence();
  config.crash_at_s = {9.0, 21.0};
  WorldResult recovered = RunFleetWorld(config, MakeContext(31));
  EXPECT_EQ(recovered.recovery.crashes, 2);
  EXPECT_TRUE(recovered.recovery.fixed_point_ok);
  ExpectEquivalent(baseline, recovered, "crash loop + world crashes");
}

TEST(RecoveryEquivalenceTest, ThreadCountInvariantWithCrashes) {
  // The acceptance matrix's thread axis: fleets with crashing worlds must
  // produce the same fleet digest (and per-world results) at 1/2/8 threads.
  FleetWorldConfig config = BaseConfig();
  config.checkpoint = PhaseBoundaryCadence();
  config.crash_at_s = {7.0, 19.0};

  FleetOptions options;
  options.base_seed = 5;
  options.threads = 1;
  FleetReport one = FleetExecutor(options).Run(4, MakeFleetWorld(config));
  ASSERT_EQ(one.completed, 4);

  for (int threads : {2, 8}) {
    options.threads = threads;
    FleetReport report = FleetExecutor(options).Run(4, MakeFleetWorld(config));
    EXPECT_EQ(report.completed, 4) << threads;
    EXPECT_EQ(report.fleet_digest, one.fleet_digest) << threads;
    for (int i = 0; i < 4; ++i) {
      ExpectEquivalent(one.worlds[static_cast<size_t>(i)],
                       report.worlds[static_cast<size_t>(i)],
                       "world " + std::to_string(i) + " at " +
                           std::to_string(threads) + " threads");
    }
  }

  // And a crashing fleet matches the never-crashed fleet at the same seeds.
  FleetWorldConfig plain = BaseConfig();
  options.threads = 2;
  FleetReport uninterrupted =
      FleetExecutor(options).Run(4, MakeFleetWorld(plain));
  EXPECT_EQ(uninterrupted.fleet_digest, one.fleet_digest);
}

TEST(RecoveryEquivalenceTest, ReplayFromTemplateBlobStaysBitIdentical) {
  // Crash recovery composes with world cloning (DESIGN.md §14): a templated
  // world that crashes with no checkpoint yet rebuilds its replacement
  // attempt from the template blob (a clone, not a re-boot), and the
  // recovered run must still be bit-identical to the plain cold-booted
  // uninterrupted baseline.
  WorldResult baseline = RunFleetWorld(BaseConfig(), MakeContext(41));
  ASSERT_TRUE(baseline.completed);

  WorldTemplateCache templates;
  FleetWorldConfig config = BaseConfig();
  config.templates = &templates;
  config.crash_at_s = {12.0};
  WorldResult recovered = RunFleetWorld(config, MakeContext(41));
  EXPECT_EQ(recovered.recovery.crashes, 1);
  EXPECT_EQ(recovered.recovery.restores, 0);
  EXPECT_EQ(recovered.recovery.replays_from_boot, 1);
  // The first attempt cold-boots and publishes; the post-crash replay
  // attempt clones from the published blob.
  EXPECT_EQ(templates.misses(), 1u);
  EXPECT_GE(templates.hits(), 1u);
  EXPECT_TRUE(recovered.provision.cloned);
  ExpectEquivalent(baseline, recovered, "replay from template blob");

  // Checkpointed recovery under templates stays exact too.
  FleetWorldConfig checkpointed = config;
  checkpointed.checkpoint = PhaseBoundaryCadence();
  checkpointed.crash_at_s = {8.0, 20.0};
  WorldResult restored = RunFleetWorld(checkpointed, MakeContext(41));
  EXPECT_EQ(restored.recovery.crashes, 2);
  EXPECT_EQ(restored.recovery.restores, 2);
  ExpectEquivalent(baseline, restored, "checkpoint restore under templates");
}

TEST(RecoveryEquivalenceTest, GiveUpAfterRestoreBudgetIsScenarioOutcome) {
  FleetWorldConfig config = BaseConfig();
  config.checkpoint = PhaseBoundaryCadence();
  config.crash_at_s = {6.0, 10.0, 14.0, 18.0};
  config.restore.max_restores = 2;
  WorldResult result = RunFleetWorld(config, MakeContext(37));
  EXPECT_TRUE(result.recovery.gave_up);
  EXPECT_EQ(result.recovery.restores, 2);
  EXPECT_FALSE(result.completed);
  // A spent restore budget is a scenario outcome, not an infrastructure
  // failure — the executor must not retry the whole world.
  EXPECT_FALSE(result.infra_failure);
}

// --- Checkpoint header validation ---

TEST(CheckpointHeaderTest, RejectsVersionMismatchDescriptively) {
  SnapshotWriter w;
  CheckpointHeader out;
  out.version = kSnapshotFormatVersion + 1;
  out.seed = 7;
  out.world_fingerprint = 9;
  out.sim_time = Seconds(5);
  out.Save(w);

  SnapshotReader r(w.bytes());
  CheckpointHeader in;
  Status status = in.Load(r, 7, 9);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();
}

TEST(CheckpointHeaderTest, RejectsForeignSeedAndFingerprint) {
  SnapshotWriter w;
  CheckpointHeader out;
  out.seed = 7;
  out.world_fingerprint = 9;
  out.Save(w);

  {
    SnapshotReader r(w.bytes());
    CheckpointHeader in;
    EXPECT_FALSE(in.Load(r, 8, 9).ok());  // Wrong seed.
  }
  {
    SnapshotReader r(w.bytes());
    CheckpointHeader in;
    EXPECT_FALSE(in.Load(r, 7, 10).ok());  // Wrong config fingerprint.
  }
  {
    SnapshotReader r(w.bytes());
    CheckpointHeader in;
    EXPECT_TRUE(in.Load(r, 7, 9).ok());
  }
}

TEST(CheckpointHeaderTest, RejectsGarbageMagic) {
  std::string garbage = "definitely not a checkpoint blob";
  SnapshotReader r(garbage);
  CheckpointHeader in;
  Status status = in.Load(r, 0, 0);
  EXPECT_FALSE(status.ok());
}

// --- Executor infra-failure retry ---

TEST(FleetExecutorRetryTest, RetriesInfraFailuresOnceAndCountsThem) {
  // Worlds 1 and 3 fail with an infrastructure error on their first attempt
  // and succeed on the retry; the rest succeed immediately.
  std::atomic<int> attempts[4] = {{0}, {0}, {0}, {0}};
  WorldFn fn = [&attempts](const WorldContext& ctx) {
    WorldResult result;
    result.seed = ctx.seed;
    int attempt = attempts[ctx.index].fetch_add(1) + 1;
    if ((ctx.index == 1 || ctx.index == 3) && attempt == 1) {
      result.infra_failure = true;
      return result;
    }
    result.completed = true;
    result.digest = ctx.seed;
    return result;
  };

  FleetOptions options;
  options.threads = 2;
  FleetReport report = FleetExecutor(options).Run(4, fn);
  EXPECT_EQ(report.completed, 4);
  EXPECT_EQ(report.retried, 2);
  EXPECT_EQ(report.metrics.counters.at("fleet.worlds_retried"), 2.0);
  EXPECT_EQ(attempts[1].load(), 2);
  EXPECT_EQ(attempts[3].load(), 2);
}

TEST(FleetExecutorRetryTest, PersistentInfraFailureIsNotRetriedForever) {
  std::atomic<int> attempts{0};
  WorldFn fn = [&attempts](const WorldContext&) {
    attempts.fetch_add(1);
    WorldResult result;
    result.infra_failure = true;
    return result;
  };
  FleetOptions options;
  FleetReport report = FleetExecutor(options).Run(1, fn);
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.retried, 1);
  EXPECT_EQ(attempts.load(), 2);  // Original + exactly one retry.
}

}  // namespace
}  // namespace androne
