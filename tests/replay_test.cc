// Record-once replay engine (DESIGN.md §15): a recorded world replayed from
// its log must be bit-identical to the recording run — same digest, flight
// digest, metrics, and trace — at any executor thread count; a replay run
// that records must reproduce the log byte-for-byte (the fixed point); a
// corrupted, truncated, or mismatched log must be rejected with a
// descriptive Status; fork-and-explore's control branch must continue the
// recorded timeline bit-identically; and the --speed governor must pace
// without moving a single digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/fleet_executor.h"
#include "src/exec/fleet_world.h"
#include "src/obs/trace.h"
#include "src/replay/explore.h"
#include "src/replay/replay_log.h"
#include "src/util/time_governor.h"

namespace androne {
namespace {

FleetWorldConfig SmallConfig() {
  FleetWorldConfig config;
  config.tenants = 1;
  config.dwell_s = 2;
  config.annealing_iterations = 80;
  config.trace_categories = kTraceAll;
  return config;
}

WorldContext MakeContext(uint64_t seed) {
  WorldContext ctx;
  ctx.index = 0;
  ctx.seed = seed;
  return ctx;
}

void ExpectEquivalent(const WorldResult& baseline, const WorldResult& run,
                      const std::string& label) {
  EXPECT_EQ(baseline.completed, run.completed) << label;
  EXPECT_EQ(baseline.digest, run.digest) << label;
  EXPECT_EQ(baseline.flight_digest, run.flight_digest) << label;
  EXPECT_EQ(baseline.counters, run.counters) << label;
  EXPECT_EQ(baseline.metrics.Digest(), run.metrics.Digest()) << label;
  EXPECT_EQ(baseline.metrics.ToText(), run.metrics.ToText()) << label;
  EXPECT_EQ(baseline.trace_text, run.trace_text) << label;
}

TEST(ReplayTest, RecordingDoesNotMoveTheWorld) {
  // The recorder is a pure tap at the end of every fast-loop tick; a world
  // that records must be byte-identical to one that does not.
  WorldResult plain = RunFleetWorld(SmallConfig(), MakeContext(21));
  ASSERT_TRUE(plain.completed);
  EXPECT_FALSE(plain.replay.recorded);

  ReplayLogStore store;
  FleetWorldConfig config = SmallConfig();
  config.record_into = &store;
  WorldResult recorded = RunFleetWorld(config, MakeContext(21));
  EXPECT_TRUE(recorded.replay.recorded);
  EXPECT_GT(recorded.replay.ticks, 0u);
  EXPECT_GT(recorded.replay.log_bytes, 0u);
  EXPECT_EQ(store.count(), 1u);
  ExpectEquivalent(plain, recorded, "recording on vs off");
}

TEST(ReplayTest, ReplayIsBitIdenticalToTheRecordingRun) {
  ReplayLogStore store;
  FleetWorldConfig record_config = SmallConfig();
  record_config.record_into = &store;
  WorldResult recorded = RunFleetWorld(record_config, MakeContext(33));
  ASSERT_TRUE(recorded.completed);

  FleetWorldConfig replay_config = SmallConfig();
  replay_config.replay_from = &store;
  WorldResult replayed = RunFleetWorld(replay_config, MakeContext(33));
  EXPECT_TRUE(replayed.replay.replayed);
  EXPECT_TRUE(replayed.replay.digest_match);
  EXPECT_EQ(replayed.replay.underruns, 0u);
  EXPECT_EQ(replayed.replay.ticks, recorded.replay.ticks);
  ExpectEquivalent(recorded, replayed, "record vs replay");
}

TEST(ReplayTest, FleetReplayIsThreadCountInvariant) {
  // Record a 4-world fleet once, then replay the whole fleet at 1, 2, and
  // 8 executor threads: every replay must land on the recording fleet's
  // digest (worlds are keyed by their own seeds, so scheduling is free).
  constexpr int kWorlds = 4;
  ReplayLogStore store;
  FleetOptions fleet;
  fleet.threads = 2;
  fleet.base_seed = 77;
  FleetReport recorded = FleetExecutor(fleet).Run(
      kWorlds, [&store](const WorldContext& ctx) {
        FleetWorldConfig config = SmallConfig();
        config.record_into = &store;
        return RunFleetWorld(config, ctx);
      });
  ASSERT_EQ(store.count(), static_cast<size_t>(kWorlds));

  for (int threads : {1, 2, 8}) {
    FleetOptions replay_fleet;
    replay_fleet.threads = threads;
    replay_fleet.base_seed = 77;
    FleetReport replayed = FleetExecutor(replay_fleet).Run(
        kWorlds, [&store](const WorldContext& ctx) {
          FleetWorldConfig config = SmallConfig();
          config.replay_from = &store;
          return RunFleetWorld(config, ctx);
        });
    EXPECT_EQ(recorded.fleet_digest, replayed.fleet_digest)
        << "threads=" << threads;
    for (const WorldResult& world : replayed.worlds) {
      EXPECT_TRUE(world.replay.digest_match)
          << "threads=" << threads << " seed=" << world.seed;
      EXPECT_EQ(world.replay.underruns, 0u) << "threads=" << threads;
    }
  }
}

TEST(ReplayTest, RecordReplayRecordIsAByteFixedPoint) {
  // Property: across 32 seeds, a replaying world that also records must
  // reproduce the original log byte-for-byte — what a replay tick installs
  // is exactly what the recorder captures.
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    ReplayLogStore first, second;
    FleetWorldConfig record_config = SmallConfig();
    record_config.record_into = &first;
    WorldResult recorded = RunFleetWorld(record_config, MakeContext(seed));
    ASSERT_FALSE(recorded.infra_failure) << "seed=" << seed;

    FleetWorldConfig both_config = SmallConfig();
    both_config.replay_from = &first;
    both_config.record_into = &second;
    WorldResult replayed = RunFleetWorld(both_config, MakeContext(seed));
    ASSERT_FALSE(replayed.infra_failure) << "seed=" << seed;
    EXPECT_TRUE(replayed.replay.digest_match) << "seed=" << seed;

    auto original = first.Get(seed);
    auto reproduced = second.Get(seed);
    ASSERT_NE(original, nullptr) << "seed=" << seed;
    ASSERT_NE(reproduced, nullptr) << "seed=" << seed;
    EXPECT_TRUE(*original == *reproduced)
        << "seed=" << seed << ": replay did not reproduce its own log ("
        << original->size() << " vs " << reproduced->size() << " bytes)";
  }
}

TEST(ReplayTest, ReplayAgainstMissingLogIsAnInfraFailure) {
  ReplayLogStore empty;
  FleetWorldConfig config = SmallConfig();
  config.replay_from = &empty;
  WorldResult result = RunFleetWorld(config, MakeContext(5));
  EXPECT_TRUE(result.infra_failure);
}

TEST(ReplayTest, ReplayAgainstDifferentConfigIsAnInfraFailure) {
  // The log is pinned to the recording config's fingerprint: replaying it
  // under a config that builds a different world must fail at load, not
  // produce garbage samples.
  ReplayLogStore store;
  FleetWorldConfig record_config = SmallConfig();
  record_config.record_into = &store;
  ASSERT_FALSE(RunFleetWorld(record_config, MakeContext(9)).infra_failure);

  FleetWorldConfig other = SmallConfig();
  other.dwell_s = 3;  // Different fingerprint.
  other.replay_from = &store;
  WorldResult result = RunFleetWorld(other, MakeContext(9));
  EXPECT_TRUE(result.infra_failure);
}

TEST(ReplayTest, RecordOrReplayRejectsCrashChaos) {
  // The recovery loop re-runs ticks after a restore, which would duplicate
  // (record) or desynchronize (replay) the log — the combination is
  // rejected up front as an infrastructure failure.
  ReplayLogStore store;
  FleetWorldConfig config = SmallConfig();
  config.record_into = &store;
  config.crash_at_s = {5};
  EXPECT_TRUE(RunFleetWorld(config, MakeContext(3)).infra_failure);

  FleetWorldConfig replay_config = SmallConfig();
  replay_config.replay_from = &store;
  replay_config.crash_at_s = {5};
  EXPECT_TRUE(RunFleetWorld(replay_config, MakeContext(3)).infra_failure);
}

// --- Log container validation -------------------------------------------

TEST(ReplayLogTest, WriterRoundTripsThroughFromBytes) {
  ReplayLogWriter writer(/*seed=*/42, /*config_fingerprint=*/0xabcdef);
  PlannedRoute route;
  route.drone = 1;
  route.total_energy_j = 1234.5;
  route.total_time_s = 67.8;
  route.stops.push_back(PlannedStop{/*job_index=*/2,
                                    /*arrival_energy_j=*/100.0,
                                    /*arrival_time_s=*/9.5});
  writer.SetPlan(route);

  FlightPlaneSample sample;
  sample.wake_latency_us = 57.5;
  sample.est_dead_reckoning = true;
  sample.est_gyro = {0.1, -0.2, 0.3};
  sample.truth.rotor_power_w = 250.0;
  sample.truth.airborne = true;
  writer.Append(sample);
  writer.Append(sample);
  EXPECT_EQ(writer.tick_count(), 2u);

  ReplayFooter footer;
  footer.digest = 0x1111;
  footer.flight_digest = 0x2222;
  footer.metrics_digest = 0x3333;
  footer.trace_hash = 0x4444;
  footer.completed = true;
  std::string bytes = writer.Finalize(footer);
  ASSERT_FALSE(bytes.empty());

  auto parsed = ReplayLog::FromBytes(bytes, 42, 0xabcdef);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed(), 42u);
  EXPECT_EQ(parsed->config_fingerprint(), 0xabcdefu);
  ASSERT_TRUE(parsed->have_plan());
  EXPECT_EQ(parsed->plan().drone, 1);
  ASSERT_EQ(parsed->plan().stops.size(), 1u);
  EXPECT_EQ(parsed->plan().stops[0].job_index, 2u);
  ASSERT_EQ(parsed->ticks().size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->ticks()[0].wake_latency_us, 57.5);
  EXPECT_TRUE(parsed->ticks()[0].est_dead_reckoning);
  EXPECT_DOUBLE_EQ(parsed->ticks()[1].truth.rotor_power_w, 250.0);
  EXPECT_TRUE(parsed->ticks()[1].truth.airborne);
  EXPECT_EQ(parsed->footer().digest, 0x1111u);
  EXPECT_EQ(parsed->footer().trace_hash, 0x4444u);
  EXPECT_TRUE(parsed->footer().completed);
  EXPECT_EQ(parsed->byte_size(), bytes.size());
}

std::string MakeLog(uint64_t seed, uint64_t fingerprint, int ticks = 4) {
  ReplayLogWriter writer(seed, fingerprint);
  FlightPlaneSample sample;
  sample.wake_latency_us = 10;
  for (int i = 0; i < ticks; ++i) {
    sample.truth.rotor_power_w = 100.0 + i;
    writer.Append(sample);
  }
  ReplayFooter footer;
  footer.completed = true;
  return writer.Finalize(footer);
}

TEST(ReplayLogTest, RejectsBadMagic) {
  std::string bytes = MakeLog(7, 0x99);
  bytes[0] ^= 0xff;
  auto parsed = ReplayLog::FromBytes(bytes, 7, 0x99);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("bad magic"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ReplayLogTest, RejectsWrongSeedAndFingerprint) {
  std::string bytes = MakeLog(7, 0x99);
  auto wrong_seed = ReplayLog::FromBytes(bytes, 8, 0x99);
  ASSERT_FALSE(wrong_seed.ok());
  EXPECT_NE(wrong_seed.status().message().find("seed"), std::string::npos)
      << wrong_seed.status().ToString();

  auto wrong_fp = ReplayLog::FromBytes(bytes, 7, 0x9a);
  ASSERT_FALSE(wrong_fp.ok());
  EXPECT_NE(wrong_fp.status().message().find("fingerprint"),
            std::string::npos)
      << wrong_fp.status().ToString();
}

TEST(ReplayLogTest, RejectsTruncationAtEveryLength) {
  // Every proper prefix must be rejected with a non-OK Status — never a
  // crash, never a silently short tick vector.
  std::string bytes = MakeLog(7, 0x99, /*ticks=*/2);
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto parsed = ReplayLog::FromBytes(bytes.substr(0, len), 7, 0x99);
    EXPECT_FALSE(parsed.ok()) << "prefix length " << len << " parsed";
  }
}

TEST(ReplayLogTest, RejectsCorruptedTickBytes) {
  // Flip one byte in the tick region: the footer checksum must catch it.
  std::string bytes = MakeLog(7, 0x99);
  // The header is magic(8) + version(4) + seed(8) + fingerprint(8) + plan
  // section; flip a byte comfortably inside the sample region near the
  // middle of the log.
  bytes[bytes.size() / 2] ^= 0x01;
  auto parsed = ReplayLog::FromBytes(bytes, 7, 0x99);
  ASSERT_FALSE(parsed.ok());
}

TEST(ReplayLogTest, RejectsTrailingGarbage) {
  std::string bytes = MakeLog(7, 0x99);
  bytes += "extra";
  auto parsed = ReplayLog::FromBytes(bytes, 7, 0x99);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("trailing"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ReplayLogTest, StoreIsKeyedBySeed) {
  ReplayLogStore store;
  store.Put(1, "aaaa");
  store.Put(2, "bbbbbb");
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.total_bytes(), 10u);
  ASSERT_NE(store.Get(1), nullptr);
  EXPECT_EQ(*store.Get(1), "aaaa");
  EXPECT_EQ(store.Get(3), nullptr);
}

// --- Fork-and-explore ----------------------------------------------------

TEST(ExploreTest, ControlBranchContinuesTheTimelineBitIdentically) {
  ExploreOptions options;
  options.config = SmallConfig();
  options.seed = 13;
  options.branches = 3;
  options.threads = 2;
  options.default_checkpoint_period_s = 4;
  auto report = ExploreFromDecisionPoint(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->control_match);
  ASSERT_EQ(report->branches.size(), 3u);
  EXPECT_EQ(report->branches[0].reseed, 0u);
  EXPECT_NE(report->branches[1].reseed, 0u);
  EXPECT_NE(report->branches[1].reseed, report->branches[2].reseed);
  EXPECT_GT(report->fork_blob_bytes, 0u);
  EXPECT_GT(report->fork_time, 0);
  EXPECT_FALSE(report->ToText().empty());
  for (const BranchOutcome& branch : report->branches) {
    EXPECT_FALSE(branch.infra_failure) << "branch " << branch.branch;
  }
}

TEST(ExploreTest, RejectsCrashChaosAndZeroBranches) {
  ExploreOptions options;
  options.config = SmallConfig();
  options.branches = 0;
  EXPECT_FALSE(ExploreFromDecisionPoint(options).ok());

  options.branches = 2;
  options.config.crash_at_s = {5};
  EXPECT_FALSE(ExploreFromDecisionPoint(options).ok());
}

// --- --speed governor ----------------------------------------------------

TEST(TimeGovernorTest, DisabledGovernorNeverSleeps) {
  int64_t wall = 0;
  TimeGovernor::Options options;
  options.speed = 0;
  options.wall_now_us = [&wall] { return wall; };
  options.sleep_us = [](int64_t) { FAIL() << "slept while disabled"; };
  TimeGovernor governor(options);
  EXPECT_FALSE(governor.enabled());
  governor.Start(0);
  governor.Pace(Seconds(100));
  EXPECT_EQ(governor.sleeps(), 0);
}

TEST(TimeGovernorTest, PacesSimTimeAgainstTheWallClock) {
  // speed=2: the sim earns 1 wall second per 2 sim seconds. With a frozen
  // wall clock, pacing 4 sim seconds must sleep exactly 2 wall seconds.
  int64_t wall = 1000;
  int64_t slept = 0;
  TimeGovernor::Options options;
  options.speed = 2;
  options.wall_now_us = [&wall] { return wall; };
  options.sleep_us = [&wall, &slept](int64_t us) {
    slept += us;
    wall += us;  // The fake sleep advances the fake clock.
  };
  TimeGovernor governor(options);
  governor.Start(0);
  governor.Pace(Seconds(4));
  EXPECT_EQ(slept, 2'000'000);
  EXPECT_EQ(governor.sleeps(), 1);
  EXPECT_EQ(governor.slept_us(), 2'000'000);

  // The wall clock is now exactly on time; pacing the same instant again
  // must not sleep.
  governor.Pace(Seconds(4));
  EXPECT_EQ(governor.sleeps(), 1);

  // If the wall clock runs ahead (slow hardware), the governor runs free.
  wall += 10'000'000;
  governor.Pace(Seconds(6));
  EXPECT_EQ(governor.sleeps(), 1);
}

TEST(TimeGovernorTest, RestartForgivesAccumulatedDebt) {
  int64_t wall = 0;
  int64_t slept = 0;
  TimeGovernor::Options options;
  options.speed = 1;
  options.wall_now_us = [&wall] { return wall; };
  options.sleep_us = [&wall, &slept](int64_t us) {
    slept += us;
    wall += us;
  };
  TimeGovernor governor(options);
  governor.Start(0);
  // Re-anchor at sim t=100s with the wall still at 0: the 100 sim seconds
  // of debt are forgiven (a restored world must not be charged for the
  // recovered timeline).
  governor.Start(Seconds(100));
  governor.Pace(Seconds(100));
  EXPECT_EQ(slept, 0);
  governor.Pace(Seconds(101));
  EXPECT_EQ(slept, 1'000'000);
}

TEST(TimeGovernorTest, ParseSpeedValidates) {
  double speed = -1;
  std::string error;
  EXPECT_TRUE(ParseSpeed("0", &speed, &error));
  EXPECT_EQ(speed, 0);
  EXPECT_TRUE(ParseSpeed("0.5", &speed, &error));
  EXPECT_EQ(speed, 0.5);
  EXPECT_TRUE(ParseSpeed("8", &speed, &error));
  EXPECT_EQ(speed, 8);

  EXPECT_FALSE(ParseSpeed("", &speed, &error));
  EXPECT_FALSE(ParseSpeed("fast", &speed, &error));
  EXPECT_NE(error.find("not a number"), std::string::npos);
  EXPECT_FALSE(ParseSpeed("1.5x", &speed, &error));
  EXPECT_FALSE(ParseSpeed("-1", &speed, &error));
  EXPECT_NE(error.find(">= 0"), std::string::npos);
  EXPECT_FALSE(ParseSpeed("nan", &speed, &error));
  EXPECT_FALSE(ParseSpeed("inf", &speed, &error));
}

TEST(TimeGovernorTest, GovernedWorldKeepsItsDigest) {
  // A high --speed on a small world: pacing sleeps the worker but never
  // touches the SimClock, so every digest is identical to the unthrottled
  // run. The speed is far below the world's unthrottled sim-to-wall ratio,
  // so at least one Pace() call must actually sleep.
  WorldResult plain = RunFleetWorld(SmallConfig(), MakeContext(44));
  ASSERT_TRUE(plain.completed);
  EXPECT_EQ(plain.replay.governor_sleeps, 0);

  FleetWorldConfig config = SmallConfig();
  config.speed = 500;
  WorldResult governed = RunFleetWorld(config, MakeContext(44));
  EXPECT_GT(governed.replay.governor_sleeps, 0);
  EXPECT_GT(governed.replay.governor_slept_us, 0);
  ExpectEquivalent(plain, governed, "speed=500 vs unthrottled");
}

}  // namespace
}  // namespace androne
