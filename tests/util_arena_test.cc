// Arena allocator edge cases (DESIGN.md §14): alignment, chunk growth,
// oversized requests, reset/reuse semantics, and the STL-facing
// ArenaAllocator with its heap fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/util/arena.h"

namespace androne {
namespace {

bool IsAligned(const void* p, size_t align) {
  return reinterpret_cast<uintptr_t>(p) % align == 0;
}

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1024);
  char* a = static_cast<char*>(arena.Allocate(3, 1));
  char* b = static_cast<char*>(arena.Allocate(8, 8));
  char* c = static_cast<char*>(arena.Allocate(1, 64));
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(IsAligned(b, 8));
  EXPECT_TRUE(IsAligned(c, 64));
  // Disjoint: writing each region must not clobber the others.
  a[0] = 'a';
  b[0] = 'b';
  c[0] = 'c';
  EXPECT_EQ(a[0], 'a');
  EXPECT_EQ(b[0], 'b');
  EXPECT_EQ(arena.chunks(), 1u);
}

TEST(ArenaTest, GrowsByWholeChunksAndTracksReservation) {
  Arena arena(256);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  for (int i = 0; i < 16; ++i) arena.Allocate(100, 8);
  EXPECT_GT(arena.chunks(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
  EXPECT_GE(arena.bytes_used(), 1600u);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(128);
  void* small = arena.Allocate(16, 8);
  void* big = arena.Allocate(4096, 16);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(IsAligned(big, 16));
  EXPECT_EQ(arena.chunks(), 2u);
  // The next small allocation must not be forced into a huge chunk.
  size_t reserved = arena.bytes_reserved();
  arena.Allocate(16, 8);
  EXPECT_GE(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, ResetRetainsChunksAndReusesThem) {
  Arena arena(512);
  for (int i = 0; i < 8; ++i) arena.Allocate(400, 8);
  size_t chunks = arena.chunks();
  size_t reserved = arena.bytes_reserved();
  ASSERT_GT(chunks, 1u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.chunks(), chunks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.resets(), 1u);

  // The same allocation pattern after Reset must not grow the arena:
  // that is the no-global-allocator-on-the-fly-path property.
  for (int i = 0; i < 8; ++i) arena.Allocate(400, 8);
  EXPECT_EQ(arena.chunks(), chunks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, ZeroByteAllocationIsValidAndUnique) {
  Arena arena(128);
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
}

TEST(ArenaTest, ReleaseDropsEverything) {
  Arena arena(128);
  arena.Allocate(64, 8);
  arena.Release();
  EXPECT_EQ(arena.chunks(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  // Still usable after Release.
  EXPECT_NE(arena.Allocate(8, 8), nullptr);
}

TEST(ArenaAllocatorTest, VectorUsesArenaStorage) {
  Arena arena(4096);
  std::vector<uint64_t, ArenaAllocator<uint64_t>> v{
      ArenaAllocator<uint64_t>(&arena)};
  for (uint64_t i = 0; i < 200; ++i) v.push_back(i);
  EXPECT_GT(arena.bytes_used(), 200 * sizeof(uint64_t) - 1);
  for (uint64_t i = 0; i < 200; ++i) ASSERT_EQ(v[i], i);
}

TEST(ArenaAllocatorTest, MapUsesArenaStorage) {
  Arena arena(4096);
  using Alloc = ArenaAllocator<std::pair<const uint64_t, uint64_t>>;
  std::map<uint64_t, uint64_t, std::less<uint64_t>, Alloc> m{Alloc(&arena)};
  for (uint64_t i = 0; i < 64; ++i) m[i] = i * 3;
  EXPECT_GT(arena.bytes_used(), 0u);
  EXPECT_EQ(m.at(63), 189u);
  m.erase(12);  // node "free" is a no-op into the arena
  EXPECT_EQ(m.size(), 63u);
}

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  std::vector<int, ArenaAllocator<int>> v;  // default: no arena
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v[99], 99);
}

TEST(ArenaAllocatorTest, EqualityIsArenaIdentity) {
  Arena a(128), b(128);
  EXPECT_TRUE(ArenaAllocator<int>(&a) == ArenaAllocator<char>(&a));
  EXPECT_TRUE(ArenaAllocator<int>(&a) != ArenaAllocator<int>(&b));
  EXPECT_TRUE(ArenaAllocator<int>() == ArenaAllocator<long>());
}

}  // namespace
}  // namespace androne
