#include "src/core/cli.h"

#include <gtest/gtest.h>

namespace androne {
namespace {

class CliFixture : public ::testing::Test {
 protected:
  CliFixture() {
    definition_.id = "vd-1";
    definition_.waypoints = {WaypointSpec{{43.6084298, -85.8110359, 15}, 30},
                             WaypointSpec{{43.6076409, -85.8154457, 15}, 20}};
    definition_.waypoint_devices = {"camera", "flight-control"};
    definition_.continuous_devices = {"gps"};

    AndroneSdk::Hooks hooks;
    hooks.waypoint_completed = [this] { ++completed_calls_; };
    hooks.allotted_energy_left = [] { return 12345.0; };
    hooks.allotted_time_left = [] { return 321.0; };
    hooks.flight_controller_ip = [] { return std::string("10.77.0.1:5760"); };
    hooks.mark_file_for_user = [this](const std::string& path) -> Status {
      if (path == "/missing") {
        return NotFoundError("no such file");
      }
      marked_.push_back(path);
      return OkStatus();
    };
    sdk_ = std::make_unique<AndroneSdk>(std::move(hooks));
    shell_ = std::make_unique<AndroneShell>(sdk_.get(), &definition_);
  }

  VirtualDroneDefinition definition_;
  std::unique_ptr<AndroneSdk> sdk_;
  std::unique_ptr<AndroneShell> shell_;
  int completed_calls_ = 0;
  std::vector<std::string> marked_;
};

TEST_F(CliFixture, HelpAndUnknown) {
  EXPECT_NE(shell_->Execute("help").find("energy-left"), std::string::npos);
  EXPECT_NE(shell_->Execute("").find("commands:"), std::string::npos);
  EXPECT_NE(shell_->Execute("warp").find("unknown command"),
            std::string::npos);
}

TEST_F(CliFixture, AllotmentQueries) {
  EXPECT_EQ(shell_->Execute("energy-left"), "12345 J");
  EXPECT_EQ(shell_->Execute("time-left"), "321 s");
  EXPECT_EQ(shell_->Execute("fc-address"), "10.77.0.1:5760");
}

TEST_F(CliFixture, DevicesAndWaypointsListings) {
  std::string devices = shell_->Execute("devices");
  EXPECT_NE(devices.find("camera (waypoint)"), std::string::npos);
  EXPECT_NE(devices.find("gps (continuous)"), std::string::npos);
  std::string waypoints = shell_->Execute("waypoints");
  EXPECT_NE(waypoints.find("0: (43.6084298"), std::string::npos);
  EXPECT_NE(waypoints.find("r=20m"), std::string::npos);
}

TEST_F(CliFixture, StatusTracksSdkEvents) {
  EXPECT_EQ(shell_->Execute("status"), "in-transit");
  sdk_->NotifyWaypointActive(definition_.waypoints[0]);
  EXPECT_EQ(shell_->Execute("status"), "at-waypoint");
  sdk_->NotifyGeofenceBreached();
  EXPECT_EQ(shell_->Execute("status"), "at-waypoint fence-recovery");
  sdk_->NotifyWaypointActive(definition_.waypoints[0]);  // Recovery.
  EXPECT_EQ(shell_->Execute("status"), "at-waypoint");
  sdk_->NotifyWaypointInactive(definition_.waypoints[0]);
  sdk_->NotifySuspendContinuousDevices();
  EXPECT_EQ(shell_->Execute("status"), "in-transit suspended");
  sdk_->NotifyResumeContinuousDevices();
  EXPECT_EQ(shell_->Execute("status"), "in-transit");
}

TEST_F(CliFixture, CompleteOnlyAtWaypoint) {
  EXPECT_EQ(shell_->Execute("complete"), "error: not at a waypoint");
  EXPECT_EQ(completed_calls_, 0);
  sdk_->NotifyWaypointActive(definition_.waypoints[0]);
  EXPECT_EQ(shell_->Execute("complete"), "waypoint completed");
  EXPECT_EQ(completed_calls_, 1);
}

TEST_F(CliFixture, MarkFile) {
  EXPECT_EQ(shell_->Execute("mark-file"), "usage: mark-file <path>");
  EXPECT_EQ(shell_->Execute("mark-file /data/video.mp4"),
            "marked /data/video.mp4");
  ASSERT_EQ(marked_.size(), 1u);
  EXPECT_NE(shell_->Execute("mark-file /missing").find("NOT_FOUND"),
            std::string::npos);
}

TEST_F(CliFixture, EventsLogAndTail) {
  EXPECT_EQ(shell_->Execute("events"), "no events");
  sdk_->NotifyWaypointActive(definition_.waypoints[0]);
  sdk_->NotifyLowEnergy(9000);
  sdk_->NotifyLowTime(120);
  std::string all = shell_->Execute("events");
  EXPECT_NE(all.find("waypoint-active"), std::string::npos);
  EXPECT_NE(all.find("low-energy 9000J"), std::string::npos);
  std::string tail = shell_->Execute("events 1");
  EXPECT_EQ(tail, "low-time 120s\n");
}

}  // namespace
}  // namespace androne
