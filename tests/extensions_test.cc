// Tests for extension features: MAVLink camera trigger and yaw commands,
// speaker playback through AudioFlinger, and multi-drone fleet execution.
#include <gtest/gtest.h>

#include <cmath>

#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/core/drone.h"
#include "src/flight/sitl.h"
#include "src/services/device_services.h"
#include "src/hw/gimbal.h"
#include "src/services/permissions.h"

namespace androne {
namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};

// ----------------------------------------------- MAVLink extras (flight).

TEST(MavCommandTest, ConditionYawTurnsTheDrone) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 71);
  clock.RunFor(Seconds(2));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(10.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 9.0; },
      Seconds(60)));
  CommandLong yaw;
  yaw.command = static_cast<uint16_t>(MavCmd::kConditionYaw);
  yaw.param1 = 90.0f;  // Face east.
  drone.controller().HandleFrame(PackMessage(MavMessage{yaw}));
  ASSERT_TRUE(drone.RunUntil(
      [&] {
        return std::fabs(drone.physics().truth().yaw_rad - M_PI / 2) < 0.1;
      },
      Seconds(30)));
}

TEST(MavCommandTest, DigicamControlWithoutTriggerUnsupported) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 72);
  clock.RunFor(Seconds(2));
  std::vector<CommandAck> acks;
  drone.controller().SetSender([&](const MavlinkFrame& frame) {
    auto message = UnpackMessage(frame);
    if (message.ok() && std::holds_alternative<CommandAck>(*message)) {
      acks.push_back(std::get<CommandAck>(*message));
    }
  });
  CommandLong digicam;
  digicam.command = static_cast<uint16_t>(MavCmd::kDoDigicamControl);
  drone.controller().HandleFrame(PackMessage(MavMessage{digicam}));
  ASSERT_FALSE(acks.empty());
  EXPECT_EQ(acks.back().result, static_cast<uint8_t>(MavResult::kUnsupported));
}

TEST(MavCommandTest, DigicamControlCapturesThroughDeviceContainer) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());
  // The flight controller's shutter trigger is wired to the shared
  // CameraService in the device container; a digicam command must ack
  // accepted (the trusted flight container passes the permission check).
  std::vector<CommandAck> acks;
  system.flight().SetSender([&](const MavlinkFrame& frame) {
    auto message = UnpackMessage(frame);
    if (message.ok() && std::holds_alternative<CommandAck>(*message)) {
      acks.push_back(std::get<CommandAck>(*message));
    }
  });
  CommandLong digicam;
  digicam.command = static_cast<uint16_t>(MavCmd::kDoDigicamControl);
  system.flight().HandleFrame(PackMessage(MavMessage{digicam}));
  ASSERT_FALSE(acks.empty());
  EXPECT_EQ(acks.back().result, static_cast<uint8_t>(MavResult::kAccepted));
}

// ----------------------------------------------------------- Speaker.

TEST(SpeakerTest, PlaybackThroughAudioFlinger) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());

  VirtualDroneDefinition def;
  def.id = "siren";
  def.owner = "ems";
  def.waypoints = {WaypointSpec{FromNed(kBase, NedPoint{20, 0, -15}), 30}};
  def.max_duration_s = 120;
  def.energy_allotted_j = 45000;
  def.waypoint_devices = {"microphone"};  // Audio grant.
  auto vd = system.Deploy(def);
  ASSERT_TRUE(vd.ok());
  auto proc = system.runtime().SpawnProcess((*vd)->container->id(),
                                            "com.ems.siren", 10070).value();
  (*vd)->stack.activity_manager->GrantPermission(10070, kPermMicrophone);

  auto audio = SmGetService(proc.binder, kAudioServiceName);
  ASSERT_TRUE(audio.ok());
  Parcel req;
  req.WriteInt32(44100);
  // Outside the waypoint: denied by VDC policy.
  EXPECT_EQ(proc.binder->Transact(*audio, kAudioPlay, req).status().code(),
            StatusCode::kPermissionDenied);
  // At the waypoint: playback accepted.
  ASSERT_TRUE(system.vdc().NotifyWaypointReached("siren", 0).ok());
  req.ResetReadCursor();
  auto reply = proc.binder->Transact(*audio, kAudioPlay, req);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->ReadInt32().value(), 44100);
}

// -------------------------------------------------------- Fleet flight.

TEST(FleetTest, TwoDronesServeFourTenantsConcurrently) {
  // One planner splits four tenant waypoints over a fleet of two; both
  // physical drones fly their routes on the same simulated clock.
  SimClock clock;
  AnDroneOptions options_a;
  options_a.base = kBase;
  options_a.seed = 81;
  AnDroneOptions options_b = options_a;
  options_b.seed = 82;
  AnDroneSystem drone_a(&clock, options_a);
  AnDroneSystem drone_b(&clock, options_b);
  ASSERT_TRUE(drone_a.Boot().ok());
  ASSERT_TRUE(drone_b.Boot().ok());

  // Four direct-access tenants, far apart pairwise so splitting pays off.
  std::vector<PlannerJob> jobs;
  std::vector<VirtualDroneDefinition> defs;
  for (int i = 0; i < 4; ++i) {
    VirtualDroneDefinition def;
    def.id = "tenant-" + std::to_string(i);
    def.owner = "user-" + std::to_string(i);
    double north = (i < 2) ? 300.0 + 40 * i : -300.0 - 40 * i;
    def.waypoints = {WaypointSpec{FromNed(kBase, NedPoint{north, 0, -15}),
                                  30}};
    def.max_duration_s = 12;  // Short dwells keep the test fast.
    def.energy_allotted_j = 45000;
    def.waypoint_devices = {"camera", "flight-control"};
    defs.push_back(def);
    PlannerJob job;
    job.vdrone_id = i;
    job.vdrone_ref = def.id;
    job.waypoint = def.waypoints[0].point;
    job.service_time_s = 12;
    job.service_energy_j = 170.0 * 12;
    jobs.push_back(job);
  }

  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kBase;
  pc.fleet_size = 2;
  pc.annealing_iterations = 4000;
  FlightPlanner planner(energy, pc);
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->routes.size(), 2u);
  EXPECT_FALSE(plan->routes[0].stops.empty());
  EXPECT_FALSE(plan->routes[1].stops.empty());

  // Deploy each tenant on the drone whose route serves it.
  AnDroneSystem* drones[] = {&drone_a, &drone_b};
  for (size_t r = 0; r < 2; ++r) {
    for (const PlannedStop& stop : plan->routes[r].stops) {
      ASSERT_TRUE(
          drones[r]->Deploy(defs[stop.job_index], WhitelistTemplate::kFull)
              .ok());
    }
  }

  // Fly both routes. ExecuteRoute advances the *shared* clock, so the
  // flights interleave in simulated time.
  auto report_a = drone_a.ExecuteRoute(plan->routes[0], jobs);
  auto report_b = drone_b.ExecuteRoute(plan->routes[1], jobs);
  ASSERT_TRUE(report_a.ok()) << report_a.status();
  ASSERT_TRUE(report_b.ok()) << report_b.status();
  EXPECT_EQ(report_a->waypoints_visited + report_b->waypoints_visited, 4u);
  EXPECT_FALSE(drone_a.flight().armed());
  EXPECT_FALSE(drone_b.flight().armed());
  // Fleet makespan beats a single drone doing everything: each route is
  // well under the single-route time for all four (~>360 s).
  EXPECT_LT(report_a->flight_time_s + report_b->flight_time_s, 2 * 360.0);
}


// ------------------------------------------------------------- Gimbal.

TEST(GimbalTest, MountControlMovesTheGimbal) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());
  std::vector<CommandAck> acks;
  system.flight().SetSender([&](const MavlinkFrame& frame) {
    auto message = UnpackMessage(frame);
    if (message.ok() && std::holds_alternative<CommandAck>(*message)) {
      acks.push_back(std::get<CommandAck>(*message));
    }
  });
  CommandLong mount;
  mount.command = static_cast<uint16_t>(MavCmd::kDoMountControl);
  mount.param1 = -45.0f;  // Pitch down for survey imagery.
  mount.param3 = 90.0f;   // Yaw east.
  system.flight().HandleFrame(PackMessage(MavMessage{mount}));
  ASSERT_FALSE(acks.empty());
  EXPECT_EQ(acks.back().result, static_cast<uint8_t>(MavResult::kAccepted));
}

TEST(GimbalTest, ClampsToMechanicalEnvelope) {
  Gimbal gimbal;
  ASSERT_TRUE(gimbal.Open(1).ok());
  ASSERT_TRUE(gimbal.SetOrientation(1, -180, 90, -30).ok());
  EXPECT_DOUBLE_EQ(gimbal.pitch_deg(), -90.0);  // Clamped.
  EXPECT_DOUBLE_EQ(gimbal.roll_deg(), 45.0);    // Clamped.
  EXPECT_DOUBLE_EQ(gimbal.yaw_deg(), 330.0);    // Normalized.
  EXPECT_EQ(gimbal.SetOrientation(2, 0, 0, 0).code(),
            StatusCode::kPermissionDenied);
}

// ----------------------------------------------------- APK installation.

TEST(AppInstallTest, ApkLandsInTheContainerImage) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());

  AppStore store;
  const char kManifest[] = R"(
<androne-manifest package="com.example.payload">
  <uses-permission name="camera" type="waypoint"/>
</androne-manifest>)";
  ASSERT_TRUE(store.Publish({"com.example.payload", kManifest,
                             "dex-bytecode-payload"}).ok());
  system.vdc().AttachAppStore(&store);
  class PayloadApp : public AndroneApp {
   public:
    PayloadApp() : AndroneApp("com.example.payload", 0) {}
  };
  system.vdc().RegisterAppFactory(
      "com.example.payload", [] { return std::make_unique<PayloadApp>(); },
      kManifest);

  VirtualDroneDefinition def;
  def.id = "payload";
  def.owner = "dev";
  def.waypoints = {WaypointSpec{FromNed(kBase, NedPoint{20, 0, -15}), 30}};
  def.max_duration_s = 60;
  def.energy_allotted_j = 45000;
  def.waypoint_devices = {"camera"};
  def.apps = {"com.example.payload"};
  auto vd = system.Deploy(def);
  ASSERT_TRUE(vd.ok()) << vd.status();
  // The APK is in the container filesystem...
  EXPECT_EQ((*vd)->container->ReadFile("/data/app/com.example.payload.apk")
                .value(),
            "dex-bytecode-payload");
  // ...and travels with the committed image into the VDR.
  ASSERT_TRUE(system.vdc().StoreToVdr("payload", true).ok());
  auto stored = system.vdr().Load("payload");
  ASSERT_TRUE(stored.ok());
  ImageStore other;
  auto imported = other.Import(stored->image);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(other.Flatten(*imported)->count("/data/app/com.example.payload.apk"),
            1u);
}

// ------------------------------------------ Whitelist property sweep.

class WhitelistSweepTest
    : public ::testing::TestWithParam<WhitelistTemplate> {};

// Properties that must hold for every template: arming never passes, and
// more permissive templates allow a superset of less permissive ones.
TEST_P(WhitelistSweepTest, ArmingNeverAllowed) {
  auto wl = CommandWhitelist::FromTemplate(GetParam());
  for (float p1 : {0.0f, 1.0f}) {
    CommandLong arm;
    arm.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
    arm.param1 = p1;
    EXPECT_FALSE(wl.Allows(MavMessage{arm}));
  }
}

TEST_P(WhitelistSweepTest, TelemetryNeverAllowedAsCommand) {
  auto wl = CommandWhitelist::FromTemplate(GetParam());
  EXPECT_FALSE(wl.Allows(MavMessage{Heartbeat{}}));
  EXPECT_FALSE(wl.Allows(MavMessage{Attitude{}}));
  EXPECT_FALSE(wl.Allows(MavMessage{GlobalPositionInt{}}));
  EXPECT_FALSE(wl.Allows(MavMessage{SysStatus{}}));
}

INSTANTIATE_TEST_SUITE_P(Templates, WhitelistSweepTest,
                         ::testing::Values(WhitelistTemplate::kGuidedOnly,
                                           WhitelistTemplate::kStandard,
                                           WhitelistTemplate::kFull));

TEST(WhitelistHierarchyTest, TemplatesFormASupersetChain) {
  auto guided = CommandWhitelist::FromTemplate(WhitelistTemplate::kGuidedOnly);
  auto standard = CommandWhitelist::FromTemplate(WhitelistTemplate::kStandard);
  auto full = CommandWhitelist::FromTemplate(WhitelistTemplate::kFull);
  std::vector<MavMessage> probes;
  probes.push_back(MavMessage{SetPositionTargetGlobalInt{}});
  probes.push_back(MavMessage{RcChannelsOverride{}});
  for (MavCmd cmd : {MavCmd::kDoChangeSpeed, MavCmd::kNavTakeoff,
                     MavCmd::kNavLand, MavCmd::kConditionYaw,
                     MavCmd::kDoDigicamControl, MavCmd::kDoMountControl,
                     MavCmd::kNavReturnToLaunch}) {
    CommandLong c;
    c.command = static_cast<uint16_t>(cmd);
    probes.push_back(MavMessage{c});
  }
  for (CopterMode mode : {CopterMode::kGuided, CopterMode::kLoiter,
                          CopterMode::kStabilize, CopterMode::kRtl}) {
    SetMode sm;
    sm.custom_mode = static_cast<uint32_t>(mode);
    probes.push_back(MavMessage{sm});
  }
  for (const MavMessage& probe : probes) {
    if (guided.Allows(probe)) {
      EXPECT_TRUE(standard.Allows(probe));
    }
    if (standard.Allows(probe)) {
      EXPECT_TRUE(full.Allows(probe));
    }
  }
}

}  // namespace
}  // namespace androne
