#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/binder/binder_driver.h"
#include "src/binder/parcel.h"
#include "src/binder/service_manager.h"

namespace androne {
namespace {

// A service that echoes strings and reports who called it.
class EchoService : public BinderObject {
 public:
  static constexpr uint32_t kEcho = 10;
  static constexpr uint32_t kWhoAmI = 11;

  Status OnTransact(uint32_t code, const Parcel& data, Parcel* reply,
                    const BinderCallContext& ctx) override {
    switch (code) {
      case kEcho: {
        ASSIGN_OR_RETURN(std::string s, data.ReadString());
        reply->WriteString(s);
        return OkStatus();
      }
      case kWhoAmI:
        reply->WriteInt32(ctx.calling_pid);
        reply->WriteInt32(ctx.calling_euid);
        reply->WriteInt32(ctx.calling_container);
        return OkStatus();
      default:
        return UnimplementedError("bad code");
    }
  }
  std::string descriptor() const override { return "EchoService"; }
};

TEST(ParcelTest, TypedRoundTrip) {
  Parcel p;
  p.WriteInt32(-5);
  p.WriteInt64(1LL << 40);
  p.WriteDouble(2.5);
  p.WriteBool(true);
  p.WriteString("drone");
  p.WriteFd(77);
  EXPECT_EQ(p.ReadInt32().value(), -5);
  EXPECT_EQ(p.ReadInt64().value(), 1LL << 40);
  EXPECT_DOUBLE_EQ(p.ReadDouble().value(), 2.5);
  EXPECT_TRUE(p.ReadBool().value());
  EXPECT_EQ(p.ReadString().value(), "drone");
  EXPECT_EQ(p.ReadFd().value(), 77);
  EXPECT_EQ(p.ReadInt32().status().code(), StatusCode::kOutOfRange);
}

TEST(ParcelTest, TypeMismatchFails) {
  Parcel p;
  p.WriteString("x");
  EXPECT_EQ(p.ReadInt32().status().code(), StatusCode::kInvalidArgument);
}

TEST(ParcelTest, ResetReadCursorRewinds) {
  Parcel p;
  p.WriteInt32(1);
  EXPECT_EQ(p.ReadInt32().value(), 1);
  p.ResetReadCursor();
  EXPECT_EQ(p.ReadInt32().value(), 1);
}

class BinderFixture : public ::testing::Test {
 protected:
  BinderDriver driver_;
};

TEST_F(BinderFixture, BasicTransaction) {
  BinderProc* server = driver_.CreateProcess(100, 1000, 1);
  BinderProc* client = driver_.CreateProcess(200, 1001, 1);
  // Share the service via the container's ServiceManager.
  BinderProc* sm_proc = driver_.CreateProcess(50, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "echo", h).ok());

  auto client_handle = SmGetService(client, "echo");
  ASSERT_TRUE(client_handle.ok());
  Parcel req;
  req.WriteString("hello");
  auto reply = client->Transact(*client_handle, EchoService::kEcho, req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ReadString().value(), "hello");
}

TEST_F(BinderFixture, TransactionCarriesCallerIdentity) {
  BinderProc* server = driver_.CreateProcess(100, 1000, 3);
  BinderProc* sm_proc = driver_.CreateProcess(50, 1000, 3);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "echo", h).ok());

  BinderProc* client = driver_.CreateProcess(222, 4444, 3);
  auto ch = SmGetService(client, "echo");
  ASSERT_TRUE(ch.ok());
  Parcel empty;
  auto reply = client->Transact(*ch, EchoService::kWhoAmI, empty);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ReadInt32().value(), 222);   // PID.
  EXPECT_EQ(reply->ReadInt32().value(), 4444);  // EUID.
  EXPECT_EQ(reply->ReadInt32().value(), 3);     // Container id (AnDrone).
}

TEST_F(BinderFixture, HandlesCannotBeForged) {
  BinderProc* server = driver_.CreateProcess(100, 1000, 1);
  BinderProc* outsider = driver_.CreateProcess(300, 1002, 2);
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  // The outsider never received the handle; guessing its numeric value
  // resolves against the *outsider's* empty table.
  Parcel req;
  req.WriteString("attack");
  auto reply = outsider->Transact(h, EchoService::kEcho, req);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kNotFound);
}

TEST_F(BinderFixture, ContextManagerIsPerContainer) {
  BinderProc* sm1 = driver_.CreateProcess(10, 1000, 1);
  BinderProc* sm2 = driver_.CreateProcess(20, 1000, 2);
  ASSERT_TRUE(ServiceManager::Install(sm1).ok());
  ASSERT_TRUE(ServiceManager::Install(sm2).ok());

  // Register "svc" only in container 1.
  BinderProc* server = driver_.CreateProcess(11, 1000, 1);
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "svc", h).ok());

  BinderProc* c1 = driver_.CreateProcess(12, 1000, 1);
  BinderProc* c2 = driver_.CreateProcess(22, 1000, 2);
  EXPECT_TRUE(SmGetService(c1, "svc").ok());
  // Container 2's namespace does not see container 1's service: isolation.
  EXPECT_EQ(SmGetService(c2, "svc").status().code(), StatusCode::kNotFound);
}

TEST_F(BinderFixture, OnlyOneContextManagerPerContainer) {
  BinderProc* sm1 = driver_.CreateProcess(10, 1000, 1);
  BinderProc* sm1b = driver_.CreateProcess(11, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm1).ok());
  auto second = ServiceManager::Install(sm1b);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(BinderFixture, NoContextManagerMeansUnavailable) {
  BinderProc* lonely = driver_.CreateProcess(10, 1000, 9);
  EXPECT_EQ(SmGetService(lonely, "anything").status().code(),
            StatusCode::kUnavailable);
}

TEST_F(BinderFixture, PublishToAllNamespacesRequiresDeviceContainer) {
  driver_.set_device_container(7);
  BinderProc* imposter = driver_.CreateProcess(10, 1000, 3);
  BinderHandle h = imposter->RegisterObject(std::make_shared<EchoService>());
  Status s = imposter->PublishToAllNamespaces("camera", h);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
}

// Full device-container publishing flow from the paper's Figure 6.
TEST_F(BinderFixture, DeviceContainerServicePublishing) {
  constexpr ContainerId kDev = 1, kVd1 = 2, kVd2 = 3;
  driver_.set_device_container(kDev);

  // Device container ServiceManager auto-publishes Table 1 services.
  BinderProc* dev_sm_proc = driver_.CreateProcess(10, 1000, kDev);
  ServiceManager::Options dev_opts;
  dev_opts.shared_service_names = {"media.camera", "sensorservice"};
  auto dev_sm = ServiceManager::Install(dev_sm_proc, dev_opts);
  ASSERT_TRUE(dev_sm.ok());

  // Virtual drone 1 exists before the service registers.
  BinderProc* vd1_sm_proc = driver_.CreateProcess(20, 1000, kVd1);
  ASSERT_TRUE(ServiceManager::Install(vd1_sm_proc).ok());

  // Device service registers in the device container.
  BinderProc* camera_proc = driver_.CreateProcess(11, 1047, kDev);
  BinderHandle camera =
      camera_proc->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(camera_proc, "media.camera", camera).ok());

  // An unshared service stays private to the device container.
  BinderHandle priv =
      camera_proc->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(camera_proc, "private.dev", priv).ok());

  // Virtual drone 2 is created *after* publication; it must still see it.
  BinderProc* vd2_sm_proc = driver_.CreateProcess(30, 1000, kVd2);
  ASSERT_TRUE(ServiceManager::Install(vd2_sm_proc).ok());

  BinderProc* app1 = driver_.CreateProcess(21, 10001, kVd1);
  BinderProc* app2 = driver_.CreateProcess(31, 10002, kVd2);
  auto h1 = SmGetService(app1, "media.camera");
  auto h2 = SmGetService(app2, "media.camera");
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(SmGetService(app1, "private.dev").status().code(),
            StatusCode::kNotFound);

  // Both resolve to the same node: transacting reaches the device container.
  Parcel req;
  auto who = app1->Transact(*h1, EchoService::kWhoAmI, req);
  ASSERT_TRUE(who.ok());

  // And the service can identify each calling container distinctly.
  auto who2 = app2->Transact(*h2, EchoService::kWhoAmI, req);
  ASSERT_TRUE(who2.ok());
  who->ReadInt32().value();  // pid
  who->ReadInt32().value();  // euid
  who2->ReadInt32().value();
  who2->ReadInt32().value();
  EXPECT_EQ(who->ReadInt32().value(), kVd1);
  EXPECT_EQ(who2->ReadInt32().value(), kVd2);
}

TEST_F(BinderFixture, PublishActivityManagerToDeviceContainer) {
  constexpr ContainerId kDev = 1, kVd = 5;
  driver_.set_device_container(kDev);
  BinderProc* dev_sm_proc = driver_.CreateProcess(10, 1000, kDev);
  auto dev_sm = ServiceManager::Install(dev_sm_proc);
  ASSERT_TRUE(dev_sm.ok());

  BinderProc* vd_sm_proc = driver_.CreateProcess(20, 1000, kVd);
  ServiceManager::Options vd_opts;
  vd_opts.publish_activity_manager_to_device_container = true;
  ASSERT_TRUE(ServiceManager::Install(vd_sm_proc, vd_opts).ok());

  // The vdrone's ActivityManager registers locally...
  BinderProc* am_proc = driver_.CreateProcess(21, 1000, kVd);
  BinderHandle am = am_proc->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(am_proc, kActivityManagerService, am).ok());

  // ...and becomes visible in the device container as "activity@5".
  BinderProc* dev_svc = driver_.CreateProcess(12, 1000, kDev);
  auto h = SmGetService(dev_svc, std::string(kActivityManagerService) + "@5");
  ASSERT_TRUE(h.ok());
  Parcel req;
  req.WriteString("ping");
  EXPECT_TRUE(dev_svc->Transact(*h, EchoService::kEcho, req).ok());
}

TEST_F(BinderFixture, BinderHandlePassingThroughParcels) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());

  // A service that hands out a reference to a second service.
  class Factory : public BinderObject {
   public:
    explicit Factory(BinderProc* proc) : proc_(proc) {}
    Status OnTransact(uint32_t code, const Parcel& data, Parcel* reply,
                      const BinderCallContext& ctx) override {
      (void)code;
      (void)data;
      (void)ctx;
      BinderHandle inner =
          proc_->RegisterObject(std::make_shared<EchoService>());
      reply->WriteBinderHandle(inner);
      return OkStatus();
    }

   private:
    BinderProc* proc_;
  };

  BinderProc* server = driver_.CreateProcess(11, 1000, 1);
  BinderHandle fh = server->RegisterObject(std::make_shared<Factory>(server));
  ASSERT_TRUE(SmAddService(server, "factory", fh).ok());

  BinderProc* client = driver_.CreateProcess(12, 1000, 1);
  auto factory = SmGetService(client, "factory");
  ASSERT_TRUE(factory.ok());
  Parcel req;
  auto reply = client->Transact(*factory, 1, req);
  ASSERT_TRUE(reply.ok());
  auto inner = reply->ReadBinderHandle();
  ASSERT_TRUE(inner.ok());
  Parcel echo_req;
  echo_req.WriteString("via factory");
  auto echoed = client->Transact(*inner, EchoService::kEcho, echo_req);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed->ReadString().value(), "via factory");
}

TEST_F(BinderFixture, DeadProcessNodesBecomeUnavailable) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderProc* server = driver_.CreateProcess(11, 1000, 1);
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "echo", h).ok());
  BinderProc* client = driver_.CreateProcess(12, 1000, 1);
  auto ch = SmGetService(client, "echo");
  ASSERT_TRUE(ch.ok());

  driver_.DestroyProcess(11);
  Parcel req;
  req.WriteString("x");
  auto reply = client->Transact(*ch, EchoService::kEcho, req);
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST_F(BinderFixture, DestroyContainerKillsAllItsProcesses) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 4);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  driver_.CreateProcess(11, 1000, 4);
  driver_.CreateProcess(12, 1000, 4);
  BinderProc* other = driver_.CreateProcess(13, 1000, 5);
  EXPECT_EQ(driver_.process_count(), 4u);
  driver_.DestroyContainer(4);
  EXPECT_EQ(driver_.process_count(), 1u);
  EXPECT_FALSE(driver_.HasContextManager(4));
  EXPECT_TRUE(other->alive());
}

TEST_F(BinderFixture, TransactionCountIncrements) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderProc* client = driver_.CreateProcess(12, 1000, 1);
  uint64_t before = driver_.transaction_count();
  (void)SmListServices(client);
  EXPECT_GT(driver_.transaction_count(), before);
}

TEST_F(BinderFixture, SmListServicesReturnsNames) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderProc* server = driver_.CreateProcess(11, 1000, 1);
  BinderHandle h1 = server->RegisterObject(std::make_shared<EchoService>());
  BinderHandle h2 = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "alpha", h1).ok());
  ASSERT_TRUE(SmAddService(server, "beta", h2).ok());
  auto names = SmListServices(server);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

TEST_F(BinderFixture, SmGetServiceRejectsDeadProcess) {
  // The VDC clears an app's BinderProc binding when it kills the process;
  // lookups through the dead binding must fail cleanly, not crash.
  auto result = SmGetService(nullptr, "anything");
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// ---- Lookup cache + fast-path semantics (DESIGN.md §10) ----

TEST_F(BinderFixture, ServiceCacheHitsAfterFirstLookup) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderProc* server = driver_.CreateProcess(11, 1000, 1);
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "echo", h).ok());

  BinderProc* client = driver_.CreateProcess(12, 1000, 1);
  ServiceCache cache(client);
  auto first = cache.Get("echo");
  ASSERT_TRUE(first.ok());
  uint64_t transactions = driver_.transaction_count();
  auto second = cache.Get("echo");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  // The hit resolved with zero binder transactions.
  EXPECT_EQ(driver_.transaction_count(), transactions);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // The cached handle still transacts like a fresh lookup.
  Parcel req;
  req.WriteString("ping");
  auto reply = client->Transact(*second, EchoService::kEcho, req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ReadString().value(), "ping");
}

TEST_F(BinderFixture, ServiceCacheInvalidatesOnReRegistration) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderProc* server = driver_.CreateProcess(11, 1000, 1);
  BinderHandle h1 = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "svc", h1).ok());

  BinderProc* client = driver_.CreateProcess(12, 1000, 1);
  ServiceCache cache(client);
  auto before = cache.Get("svc");
  ASSERT_TRUE(before.ok());

  // Rebinding the name bumps the lookup epoch; the next Get must go back to
  // the context manager instead of serving the stale handle.
  BinderHandle h2 = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "svc", h2).ok());
  auto after = cache.Get("svc");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*before, *after);
  auto fresh = SmGetService(client, "svc");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*after, *fresh);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(BinderFixture, ServiceCacheInvalidatesOnContextManagerChange) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 5);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderProc* server = driver_.CreateProcess(11, 1000, 5);
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "svc", h).ok());

  BinderProc* client = driver_.CreateProcess(12, 1000, 5);
  ServiceCache cache(client);
  ASSERT_TRUE(cache.Get("svc").ok());

  // The container's namespace is rebuilt: old context manager dies, a fresh
  // one (with no registrations) takes over. A stale cache hit here would
  // fabricate a service that no longer exists in the namespace.
  driver_.DestroyProcess(10);
  BinderProc* new_sm_proc = driver_.CreateProcess(20, 1000, 5);
  ASSERT_TRUE(ServiceManager::Install(new_sm_proc).ok());
  EXPECT_EQ(cache.Get("svc").status().code(), StatusCode::kNotFound);
}

TEST_F(BinderFixture, ServiceCacheFollowsPublishToAllNamespaces) {
  constexpr ContainerId kDev = 1, kVd = 2;
  driver_.set_device_container(kDev);
  BinderProc* dev_sm_proc = driver_.CreateProcess(10, 1000, kDev);
  ServiceManager::Options dev_opts;
  dev_opts.shared_service_names = {"sensorservice"};
  ASSERT_TRUE(ServiceManager::Install(dev_sm_proc, dev_opts).ok());
  BinderProc* dev_server = driver_.CreateProcess(11, 1000, kDev);
  BinderHandle h1 =
      dev_server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(dev_server, "sensorservice", h1).ok());

  // The virtual drone's namespace receives the replayed publication; its
  // cache resolves through its own context manager.
  BinderProc* vd_sm_proc = driver_.CreateProcess(20, 1000, kVd);
  ASSERT_TRUE(ServiceManager::Install(vd_sm_proc).ok());
  BinderProc* vd_client = driver_.CreateProcess(21, 1000, kVd);
  ServiceCache cache(vd_client);
  auto before = cache.Get("sensorservice");
  ASSERT_TRUE(before.ok());

  // Re-publication in the device container fans out to every namespace and
  // must invalidate caches in *other* containers too.
  BinderHandle h2 =
      dev_server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(dev_server, "sensorservice", h2).ok());
  auto after = cache.Get("sensorservice");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*before, *after);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(BinderFixture, ServiceCacheFollowsPublishToDeviceContainer) {
  constexpr ContainerId kDev = 1, kVd = 4;
  driver_.set_device_container(kDev);
  BinderProc* dev_sm_proc = driver_.CreateProcess(10, 1000, kDev);
  ASSERT_TRUE(ServiceManager::Install(dev_sm_proc).ok());

  // Virtual drone publishes its ActivityManager toward the device container
  // under the scoped name "activity@<container>".
  BinderProc* vd_sm_proc = driver_.CreateProcess(20, 1000, kVd);
  ServiceManager::Options vd_opts;
  vd_opts.publish_activity_manager_to_device_container = true;
  ASSERT_TRUE(ServiceManager::Install(vd_sm_proc, vd_opts).ok());
  BinderProc* vd_server = driver_.CreateProcess(21, 1000, kVd);
  BinderHandle h = vd_server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(vd_server, kActivityManagerService, h).ok());

  BinderProc* dev_client = driver_.CreateProcess(12, 1000, kDev);
  ServiceCache cache(dev_client);
  std::string scoped = std::string(kActivityManagerService) + "@" +
                       std::to_string(kVd);
  ASSERT_TRUE(cache.Get(scoped).ok());
  uint64_t transactions = driver_.transaction_count();
  ASSERT_TRUE(cache.Get(scoped).ok());
  EXPECT_EQ(driver_.transaction_count(), transactions);

  // Tearing down the tenant container changes the namespace: the cached
  // resolution must die with it (the node is dead even though the name may
  // linger in the device container's table).
  driver_.DestroyContainer(kVd);
  auto gone = cache.Get(scoped);
  if (gone.ok()) {
    Parcel req;
    req.WriteString("stale");
    EXPECT_FALSE(dev_client->Transact(*gone, EchoService::kEcho, req).ok());
  }
}

TEST_F(BinderFixture, ServiceCacheDoesNotCacheNegatives) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderProc* client = driver_.CreateProcess(12, 1000, 1);
  ServiceCache cache(client);
  EXPECT_EQ(cache.Get("late").status().code(), StatusCode::kNotFound);

  BinderProc* server = driver_.CreateProcess(11, 1000, 1);
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "late", h).ok());
  EXPECT_TRUE(cache.Get("late").ok());
}

TEST_F(BinderFixture, LookupEpochAdvancesOnlyOnRebindingEvents) {
  BinderProc* sm_proc = driver_.CreateProcess(10, 1000, 1);
  ASSERT_TRUE(ServiceManager::Install(sm_proc).ok());
  BinderProc* server = driver_.CreateProcess(11, 1000, 1);
  BinderHandle h = server->RegisterObject(std::make_shared<EchoService>());
  ASSERT_TRUE(SmAddService(server, "echo", h).ok());

  BinderProc* client = driver_.CreateProcess(12, 1000, 1);
  auto ch = SmGetService(client, "echo");
  ASSERT_TRUE(ch.ok());
  uint64_t epoch = driver_.lookup_epoch();
  // Plain transactions (neither registration nor namespace change) must not
  // churn the epoch, or the cache would never hit.
  Parcel req;
  req.WriteString("x");
  ASSERT_TRUE(client->Transact(*ch, EchoService::kEcho, req).ok());
  ASSERT_TRUE(SmGetService(client, "echo").ok());
  EXPECT_EQ(driver_.lookup_epoch(), epoch);
  ASSERT_TRUE(SmAddService(server, "echo2", h).ok());
  EXPECT_GT(driver_.lookup_epoch(), epoch);
}

TEST(ParcelFreelistTest, RecyclesEntryStorage) {
  size_t during = 0;
  {
    Parcel p;  // May adopt a parked vector; measure after construction.
    p.WriteInt32(7);
    p.WriteString("pooled");
    during = Parcel::FreelistSize();
  }
  // The destroyed parcel's entry vector parks on the thread-local freelist…
  EXPECT_EQ(Parcel::FreelistSize(), during + 1);
  // …and the next parcel adopts it (cleared) instead of allocating.
  Parcel reuse;
  EXPECT_EQ(Parcel::FreelistSize(), during);
  EXPECT_EQ(reuse.entry_count(), 0u);
  reuse.WriteInt32(1);
  EXPECT_EQ(reuse.ReadInt32().value(), 1);
}

TEST(ParcelFreelistTest, MovedFromParcelDoesNotDoublePool) {
  size_t during = 0;
  {
    Parcel a;
    a.WriteString("payload");
    Parcel b = std::move(a);
    EXPECT_EQ(b.ReadString().value(), "payload");
    during = Parcel::FreelistSize();
  }
  // Only b's storage had capacity to park; the move emptied a.
  EXPECT_EQ(Parcel::FreelistSize(), during + 1);
}

}  // namespace
}  // namespace androne
