#include "src/util/status.h"

#include <gtest/gtest.h>

namespace androne {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such container");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such container");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such container");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(InternalError("x"), InternalError("x"));
  EXPECT_FALSE(InternalError("x") == InternalError("y"));
  EXPECT_FALSE(InternalError("x") == AbortedError("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status UseReturnIfError(int x) {
  RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> MaybeInt(bool ok) {
  if (ok) {
    return 7;
  }
  return NotFoundError("nope");
}

Status UseAssignOrReturn(bool ok, int& out) {
  ASSIGN_OR_RETURN(out, MaybeInt(ok));
  return OkStatus();
}

TEST(StatusMacroTest, AssignOrReturnUnwraps) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(true, out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UseAssignOrReturn(false, out).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace androne
