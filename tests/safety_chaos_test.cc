// Chaos scenarios for the Simplex safety supervisor and the hardened
// estimator: sensors lie (GPS jumps, stuck gyro, baro spikes, battery sag),
// the real-time guarantee collapses (deadline-miss storms), and the flight
// must either continue the mission or end in a controlled, in-envelope
// landing. These are the acceptance scenarios for the safety subsystem.
#include <gtest/gtest.h>

#include <cmath>

#include "src/flight/estimator.h"
#include "src/flight/safety_supervisor.h"
#include "src/flight/sitl.h"
#include "src/rt/deadline_monitor.h"

namespace androne {
namespace {

const GeoPoint kHome{43.6084298, -85.8110359, 0.0};
const GeoPoint kWaypointB{43.6076409, -85.8154457, 15.0};

// ------------------------------------------------ DeadlineMonitor unit.

TEST(DeadlineMonitorTest, TripsOnlyWhenWindowFills) {
  DeadlineMonitor monitor(Seconds(1), /*threshold=*/3);
  monitor.Record(Millis(0), true);
  monitor.Record(Millis(100), true);
  EXPECT_FALSE(monitor.tripped());
  monitor.Record(Millis(200), true);
  EXPECT_TRUE(monitor.tripped());
  EXPECT_EQ(monitor.misses_in_window(), 3);
}

TEST(DeadlineMonitorTest, OldMissesAgeOut) {
  DeadlineMonitor monitor(Seconds(1), /*threshold=*/3);
  monitor.Record(Millis(0), true);
  monitor.Record(Millis(100), true);
  // 1.2 s later the first two misses are outside the window.
  monitor.Record(Millis(1200), true);
  EXPECT_FALSE(monitor.tripped());
  EXPECT_EQ(monitor.misses_in_window(), 1);
  EXPECT_EQ(monitor.total_misses(), 3u);
}

TEST(DeadlineMonitorTest, HitsDoNotCount) {
  DeadlineMonitor monitor(Seconds(1), /*threshold=*/2);
  for (int i = 0; i < 100; ++i) {
    monitor.Record(Millis(i * 10), false);
  }
  EXPECT_FALSE(monitor.tripped());
  EXPECT_EQ(monitor.misses_in_window(), 0);
}

// ------------------------------------------- SafetySupervisor unit.

SafetyInputs NominalInputs() {
  SafetyInputs in;
  in.altitude_m = 10.0;
  in.airborne = true;
  in.armed = true;
  return in;
}

TEST(SafetySupervisorTest, NominalFlightNeverOverrides) {
  SimClock clock;
  SafetySupervisor sup(&clock, SafetyEnvelope{}, 0.49);
  for (int i = 0; i < 4000; ++i) {
    SafetyInputs in = NominalInputs();
    in.roll_rad = 0.25;  // Hard manoeuvre, still inside the 0.80 envelope.
    SafetyVerdict v = sup.Tick(in, Micros(2500));
    EXPECT_FALSE(v.overriding);
    clock.RunFor(Micros(2500));
  }
  EXPECT_EQ(sup.stage(), SafetyStage::kNominal);
  EXPECT_TRUE(sup.episodes().empty());
}

TEST(SafetySupervisorTest, TransientViolationBelowTripTimeIgnored) {
  SimClock clock;
  SafetySupervisor sup(&clock, SafetyEnvelope{}, 0.49);
  // 10 bad ticks = 25 ms, under the 50 ms trip_after.
  for (int i = 0; i < 10; ++i) {
    SafetyInputs in = NominalInputs();
    in.roll_rad = 1.2;
    sup.Tick(in, Micros(2500));
    clock.RunFor(Micros(2500));
  }
  EXPECT_EQ(sup.stage(), SafetyStage::kNominal);
  // A clean tick resets the onset timer.
  sup.Tick(NominalInputs(), Micros(2500));
  for (int i = 0; i < 10; ++i) {
    clock.RunFor(Micros(2500));
    SafetyInputs in = NominalInputs();
    in.roll_rad = 1.2;
    sup.Tick(in, Micros(2500));
  }
  EXPECT_EQ(sup.stage(), SafetyStage::kNominal);
}

TEST(SafetySupervisorTest, PersistentViolationWalksTheLadder) {
  SimClock clock;
  SafetyEnvelope env;
  env.level_hold_grace = Millis(200);
  SafetySupervisor sup(&clock, env, 0.49);

  int transitions = 0;
  sup.SetStageCallback(
      [&](SafetyStage stage, uint32_t reasons) {
        (void)stage;
        (void)reasons;
        ++transitions;
      });

  SafetyInputs bad = NominalInputs();
  bad.pitch_rad = 1.0;
  bad.altitude_m = 20.0;
  // Violate until level-hold engages (>= trip_after of persistence).
  while (sup.stage() == SafetyStage::kNominal && clock.now() < Seconds(1)) {
    sup.Tick(bad, Micros(2500));
    clock.RunFor(Micros(2500));
  }
  ASSERT_EQ(sup.stage(), SafetyStage::kLevelHold);
  EXPECT_EQ(sup.latched_reasons(), kSafetyReasonAttitude);
  SafetyVerdict v = sup.Tick(bad, Micros(2500));
  EXPECT_TRUE(v.overriding);
  EXPECT_FALSE(v.cut_motors);
  EXPECT_DOUBLE_EQ(v.target.roll_rad, 0.0);
  EXPECT_DOUBLE_EQ(v.target.pitch_rad, 0.0);

  // Still violating after the grace window: commit to descent.
  while (sup.stage() == SafetyStage::kLevelHold && clock.now() < Seconds(2)) {
    sup.Tick(bad, Micros(2500));
    clock.RunFor(Micros(2500));
  }
  ASSERT_EQ(sup.stage(), SafetyStage::kDescend);
  v = sup.Tick(bad, Micros(2500));
  EXPECT_TRUE(v.overriding);
  EXPECT_LT(v.target.thrust, 0.49);  // Under-hover sink.

  // Near the ground: cutoff, then nominal once disarmed on the ground.
  SafetyInputs low = bad;
  low.altitude_m = 0.2;
  sup.Tick(low, Micros(2500));
  ASSERT_EQ(sup.stage(), SafetyStage::kCutoff);
  v = sup.Tick(low, Micros(2500));
  EXPECT_TRUE(v.cut_motors);

  SafetyInputs landed;
  landed.armed = false;
  landed.airborne = false;
  sup.Tick(landed, Micros(2500));
  EXPECT_EQ(sup.stage(), SafetyStage::kNominal);
  ASSERT_EQ(sup.episodes().size(), 1u);
  EXPECT_EQ(sup.episodes()[0].deepest, SafetyStage::kCutoff);
  EXPECT_GE(sup.episodes()[0].released, sup.episodes()[0].entered);
  EXPECT_EQ(transitions, 4);  // LevelHold, Descend, Cutoff, Nominal.
}

TEST(SafetySupervisorTest, RecoveryRequiresSustainedCleanEnvelope) {
  SimClock clock;
  SafetySupervisor sup(&clock, SafetyEnvelope{}, 0.49);
  SafetyInputs bad = NominalInputs();
  bad.roll_rate_rads = 10.0;
  while (sup.stage() == SafetyStage::kNominal && clock.now() < Seconds(1)) {
    sup.Tick(bad, Micros(2500));
    clock.RunFor(Micros(2500));
  }
  ASSERT_EQ(sup.stage(), SafetyStage::kLevelHold);
  EXPECT_EQ(sup.latched_reasons(), kSafetyReasonRate);

  // One second clean — under the 2 s clear_after — then dirty again: the
  // override must not have released in between.
  for (int i = 0; i < 400; ++i) {
    sup.Tick(NominalInputs(), Micros(2500));
    clock.RunFor(Micros(2500));
    EXPECT_EQ(sup.stage(), SafetyStage::kLevelHold);
  }
  // Now hold clean for the full clear window.
  while (sup.stage() == SafetyStage::kLevelHold && clock.now() < Seconds(10)) {
    sup.Tick(NominalInputs(), Micros(2500));
    clock.RunFor(Micros(2500));
  }
  EXPECT_EQ(sup.stage(), SafetyStage::kNominal);
  ASSERT_EQ(sup.episodes().size(), 1u);
  EXPECT_EQ(sup.episodes()[0].deepest, SafetyStage::kLevelHold);
}

TEST(SafetySupervisorTest, DisabledEnvelopeNeverTrips) {
  SimClock clock;
  SafetyEnvelope env;
  env.enabled = false;
  SafetySupervisor sup(&clock, env, 0.49);
  SafetyInputs in = NominalInputs();
  in.roll_rad = 1.5;
  in.altitude_m = 500.0;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(sup.Tick(in, Micros(2500)).overriding);
    clock.RunFor(Micros(2500));
  }
}

TEST(SafetyReasonsTest, ToStringJoinsBits) {
  EXPECT_EQ(SafetyReasonsToString(0), "none");
  EXPECT_EQ(SafetyReasonsToString(kSafetyReasonAttitude), "attitude");
  EXPECT_EQ(SafetyReasonsToString(kSafetyReasonAttitude |
                                  kSafetyReasonDeadlineMisses),
            "attitude+deadline");
}

// ------------------------------------------------ Full-stack chaos.

class SafetyChaosTest : public ::testing::Test {
 protected:
  SafetyChaosTest() : drone_(&clock_, kHome, /*seed=*/17) {
    clock_.RunFor(Seconds(2));  // Sensor warmup / GPS acquisition.
  }

  bool TakeoffTo(double alt) {
    drone_.SetModeCmd(CopterMode::kGuided);
    drone_.ArmCmd();
    drone_.TakeoffCmd(alt);
    return drone_.RunUntil(
        [&] {
          return std::fabs(drone_.physics().truth().position.altitude_m -
                           alt) < 1.0 &&
                 std::fabs(drone_.physics().truth().velocity_ms.down_m) < 0.3;
        },
        Seconds(40));
  }

  const Estimator& estimator() { return drone_.controller().estimator(); }

  SimClock clock_;
  SitlDrone drone_;
};

// Acceptance scenario 1: a GPS glitch mid-mission. The estimator's
// innovation gate excludes the jumping GPS, the safety supervisor holds a
// level attitude while the sensor is out, and when the glitch ends GPS
// re-enters the blend, the override releases, and the mission resumes and
// completes.
TEST_F(SafetyChaosTest, GpsGlitchMidMissionExcludesGpsAndMissionResumes) {
  ASSERT_TRUE(TakeoffTo(15.0));
  drone_.GotoCmd(kWaypointB);
  clock_.RunFor(Seconds(5));  // Cruise toward the waypoint.

  // The GPS teleports ~140 m for 8 s.
  drone_.sensor_faults().AddGpsJump(clock_.now(), Seconds(8), 120.0, 80.0);

  // The innovation gate rejects the jumped fixes until the sensor is
  // excluded, which engages the supervisor's level-hold.
  EXPECT_TRUE(drone_.RunUntil(
      [&] {
        return estimator().health(EstimatorSensor::kGps).health ==
               SensorHealth::kExcluded;
      },
      Seconds(6)));
  EXPECT_TRUE(drone_.RunUntil(
      [&] { return drone_.controller().safety().overriding(); }, Seconds(2)));
  EXPECT_TRUE(drone_.controller().safety().latched_reasons() &
              kSafetyReasonSensorFault);
  // The stale-GPS path flags a glitch hold too (rejected fixes never
  // advance last_fix_time, so gating surfaces as staleness).
  EXPECT_TRUE(drone_.RunUntil(
      [&] { return drone_.controller().gps_glitch(); }, Seconds(6)));

  // While glitched, the estimate dead-reckons instead of chasing the jump:
  // estimate-vs-truth error stays far below the 144 m teleport.
  clock_.RunFor(Seconds(2));
  EXPECT_LT(HaversineMeters(drone_.controller().position_estimate(),
                            drone_.physics().truth().position),
            40.0);
  // The hold keeps the drone airborne and upright.
  EXPECT_TRUE(drone_.physics().truth().airborne);
  EXPECT_LT(std::fabs(drone_.physics().truth().roll_rad), 0.5);

  // Glitch ends: GPS re-enters the blend, the override releases after its
  // clean-envelope hysteresis, and the mission can be resumed.
  EXPECT_TRUE(drone_.RunUntil(
      [&] {
        return estimator().health(EstimatorSensor::kGps).health ==
                   SensorHealth::kHealthy &&
               !drone_.controller().gps_glitch() &&
               !drone_.controller().safety().overriding();
      },
      Seconds(30)));
  ASSERT_EQ(drone_.controller().safety().episodes().size(), 1u);
  EXPECT_EQ(drone_.controller().safety().episodes()[0].deepest,
            SafetyStage::kLevelHold);
  EXPECT_GE(drone_.controller().safety().episodes()[0].released, 0);

  drone_.SetModeCmd(CopterMode::kGuided);
  drone_.GotoCmd(kWaypointB);
  EXPECT_TRUE(drone_.RunUntil(
      [&] { return drone_.DistanceTo(kWaypointB) < 3.0; }, Seconds(180)))
      << "remaining distance " << drone_.DistanceTo(kWaypointB);
}

// Acceptance scenario 2: a stuck gyro plus a deadline-miss storm. The
// estimator detects the latched IMU; the supervisor sees both the sensor
// fault and the lost real-time guarantee, engages the recovery controller,
// and rides a controlled descent to a motor cutoff on the ground — without
// the airframe ever leaving the attitude envelope.
TEST_F(SafetyChaosTest, StuckGyroAndDeadlineStormLandsInsideEnvelope) {
  ASSERT_TRUE(TakeoffTo(12.0));

  // Tighten the ladder so the test completes quickly; the limits that
  // matter (tilt) stay at their defaults.
  SafetyEnvelope env = drone_.controller().safety().envelope();
  env.level_hold_grace = Seconds(1);
  env.clear_after = Seconds(1);
  drone_.controller().safety().Configure(env);

  // The IMU latches and every other fast-loop tick blows its 2500 us
  // budget — a 50% miss rate, an order of magnitude past the threshold.
  drone_.sensor_faults().AddStuck(SensorChannel::kImu, clock_.now(),
                                  Seconds(120));
  int tick = 0;
  drone_.controller().SetLatencySource(
      [&] { return (tick++ % 2 == 0) ? 4000.0 : 100.0; });

  // The supervisor takes over.
  ASSERT_TRUE(drone_.RunUntil(
      [&] { return drone_.controller().safety().overriding(); }, Seconds(20)));
  uint32_t reasons = drone_.controller().safety().latched_reasons();
  EXPECT_TRUE(reasons & kSafetyReasonDeadlineMisses)
      << SafetyReasonsToString(reasons);

  // Track the attitude envelope through the whole recovery.
  double worst_tilt = 0.0;
  bool landed = drone_.RunUntil(
      [&] {
        worst_tilt = std::max(
            worst_tilt,
            std::max(std::fabs(drone_.physics().truth().roll_rad),
                     std::fabs(drone_.physics().truth().pitch_rad)));
        return !drone_.physics().truth().airborne &&
               !drone_.controller().armed();
      },
      Seconds(120));
  EXPECT_TRUE(landed);
  EXPECT_LT(worst_tilt, drone_.controller().safety().envelope().max_tilt_rad);

  ASSERT_FALSE(drone_.controller().safety().episodes().empty());
  const SafetyEpisode& episode =
      drone_.controller().safety().episodes().back();
  EXPECT_EQ(episode.deepest, SafetyStage::kCutoff);
  EXPECT_TRUE(episode.reasons & kSafetyReasonDeadlineMisses);

  // The estimator flagged the latched IMU.
  EXPECT_NE(estimator().health(EstimatorSensor::kImu).health,
            SensorHealth::kHealthy);
  EXPECT_GT(drone_.sensor_fault_injector().counters().stuck_reads, 0u);

  // The override ladder narrated itself over STATUSTEXT.
  bool saw_override = false, saw_cutoff = false;
  for (const std::string& text : drone_.status_texts()) {
    if (text.find("Safety override: level-hold") != std::string::npos) {
      saw_override = true;
    }
    if (text.find("motor cutoff") != std::string::npos) {
      saw_cutoff = true;
    }
  }
  EXPECT_TRUE(saw_override);
  EXPECT_TRUE(saw_cutoff);
}

// Baro spikes are rejected by the innovation gate: altitude hold stays
// tight even while the barometer reports ±25 m excursions.
TEST_F(SafetyChaosTest, BaroSpikesAreGatedOut) {
  ASSERT_TRUE(TakeoffTo(10.0));
  drone_.sensor_faults().AddBaroSpike(clock_.now(), Seconds(20),
                                      /*magnitude_m=*/25.0,
                                      /*probability=*/0.3);
  double worst_alt_error = 0.0;
  for (int i = 0; i < 200; ++i) {
    clock_.RunFor(Millis(100));
    worst_alt_error = std::max(
        worst_alt_error,
        std::fabs(drone_.physics().truth().position.altitude_m - 10.0));
  }
  EXPECT_LT(worst_alt_error, 2.0);
  EXPECT_GT(estimator().health(EstimatorSensor::kBaro).rejected, 0u);
  EXPECT_EQ(drone_.controller().safety().stage(), SafetyStage::kNominal);
}

// Battery sag: the gauge reads low while truth is fine; the controller's
// battery failsafe fires on the *sensed* fraction and brings the drone
// home, which is the conservative (safe) direction for a lying gauge.
TEST_F(SafetyChaosTest, BatterySagTriggersFailsafeRtl) {
  ASSERT_TRUE(TakeoffTo(10.0));
  ASSERT_FALSE(drone_.controller().battery_failsafe_triggered());
  drone_.sensor_faults().AddBatterySag(clock_.now(), Seconds(300),
                                       /*sag_fraction=*/0.9);
  EXPECT_TRUE(drone_.RunUntil(
      [&] { return drone_.controller().battery_failsafe_triggered(); },
      Seconds(10)));
  // RTL from directly above home falls straight through to the LAND leg.
  EXPECT_TRUE(drone_.controller().mode() == CopterMode::kRtl ||
              drone_.controller().mode() == CopterMode::kLand);
  // Truth battery is still healthy — only the gauge sagged.
  EXPECT_GT(drone_.battery().fraction_remaining(), 0.5);
}

// Sensor dropouts alone (no corruption) must not destabilise the flight:
// a 2 s IMU dropout at hover rides through on the last motor outputs and
// dead-reckoning.
TEST_F(SafetyChaosTest, BriefImuDropoutRidesThrough) {
  ASSERT_TRUE(TakeoffTo(10.0));
  drone_.sensor_faults().AddDropout(SensorChannel::kImu, clock_.now(),
                                    Seconds(2));
  clock_.RunFor(Seconds(8));
  EXPECT_TRUE(drone_.physics().truth().airborne);
  EXPECT_NEAR(drone_.physics().truth().position.altitude_m, 10.0, 3.0);
  EXPECT_GT(drone_.sensor_fault_injector().counters().dropouts, 0u);
}

}  // namespace
}  // namespace androne
