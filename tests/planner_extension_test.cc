// Tests for the flight planner's ordering/grouping extension — the paper's
// stated future work ("providing a planner algorithm that can support
// waypoint ordering and grouping").
#include <gtest/gtest.h>

#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"

namespace androne {
namespace {

const GeoPoint kDepot{43.6084298, -85.8110359, 0};

PlannerJob Job(int vdrone, int index, double north, double east,
               bool ordered = false, bool grouped = false) {
  PlannerJob job;
  job.vdrone_id = vdrone;
  job.vdrone_ref = "vd-" + std::to_string(vdrone);
  job.waypoint_index = index;
  job.waypoint = FromNed(kDepot, NedPoint{north, east, -15});
  job.service_energy_j = 3000;
  job.service_time_s = 20;
  job.ordered = ordered;
  job.grouped = grouped;
  return job;
}

PlannerConfig Config(int fleet, uint64_t seed = 1) {
  PlannerConfig config;
  config.depot = kDepot;
  config.fleet_size = fleet;
  config.annealing_iterations = 8000;
  config.seed = seed;
  return config;
}

// Positions of a tenant's jobs within one plan, in visit order.
std::vector<int> VisitOrder(const FlightPlan& plan,
                            const std::vector<PlannerJob>& jobs, int vdrone) {
  std::vector<int> indexes;
  for (const PlannedRoute& route : plan.routes) {
    for (const PlannedStop& stop : route.stops) {
      if (jobs[stop.job_index].vdrone_id == vdrone) {
        indexes.push_back(jobs[stop.job_index].waypoint_index);
      }
    }
  }
  return indexes;
}

TEST(PlannerExtensionTest, ViolationCounterDetectsOutOfOrder) {
  std::vector<PlannerJob> jobs = {Job(1, 0, 100, 0, /*ordered=*/true),
                                  Job(1, 1, 200, 0, /*ordered=*/true)};
  // Route visiting index 1 before 0: one violation.
  EXPECT_EQ(FlightPlanner::CountConstraintViolations(jobs, {{1, 0}}), 1);
  EXPECT_EQ(FlightPlanner::CountConstraintViolations(jobs, {{0, 1}}), 0);
}

TEST(PlannerExtensionTest, ViolationCounterDetectsSplitRoutes) {
  std::vector<PlannerJob> jobs = {Job(1, 0, 100, 0, /*ordered=*/true),
                                  Job(1, 1, 200, 0, /*ordered=*/true)};
  EXPECT_EQ(FlightPlanner::CountConstraintViolations(jobs, {{0}, {1}}), 1);
}

TEST(PlannerExtensionTest, ViolationCounterDetectsInterloper) {
  std::vector<PlannerJob> jobs = {
      Job(1, 0, 100, 0, false, /*grouped=*/true),
      Job(2, 0, 150, 0),
      Job(1, 1, 200, 0, false, /*grouped=*/true),
  };
  // Tenant 2 sits between tenant 1's grouped stops.
  EXPECT_EQ(FlightPlanner::CountConstraintViolations(jobs, {{0, 1, 2}}), 1);
  EXPECT_EQ(FlightPlanner::CountConstraintViolations(jobs, {{0, 2, 1}}), 0);
  EXPECT_EQ(FlightPlanner::CountConstraintViolations(jobs, {{1, 0, 2}}), 0);
}

TEST(PlannerExtensionTest, OrderedTenantVisitedInIndexOrder) {
  // Geometry tempts the planner to reverse: waypoint 1 is closer to the
  // depot than waypoint 0.
  std::vector<PlannerJob> jobs = {
      Job(1, 0, 500, 0, /*ordered=*/true),
      Job(1, 1, 100, 0, /*ordered=*/true),
      Job(1, 2, 300, 0, /*ordered=*/true),
  };
  FlightPlanner planner((EnergyModel()), Config(1));
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->constraint_violations, 0);
  EXPECT_EQ(VisitOrder(*plan, jobs, 1), (std::vector<int>{0, 1, 2}));
}

TEST(PlannerExtensionTest, UnorderedTenantMayBeReordered) {
  // Same geometry without the flag: the planner should pick the shorter
  // tour (visit the near waypoint first or last, not depot->far->near->mid).
  std::vector<PlannerJob> jobs = {
      Job(1, 0, 500, 0),
      Job(1, 1, 100, 0),
      Job(1, 2, 300, 0),
  };
  FlightPlanner planner((EnergyModel()), Config(1));
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(VisitOrder(*plan, jobs, 1), (std::vector<int>{0, 1, 2}));
}

TEST(PlannerExtensionTest, GroupedTenantNotInterleaved) {
  // Tenant 2's waypoint lies exactly between tenant 1's pair, so the
  // unconstrained optimum interleaves; grouping must prevent that.
  std::vector<PlannerJob> jobs = {
      Job(1, 0, 100, 0, false, /*grouped=*/true),
      Job(1, 1, 300, 0, false, /*grouped=*/true),
      Job(2, 0, 200, 0),
  };
  FlightPlanner planner((EnergyModel()), Config(1));
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->constraint_violations, 0);
  // Verify tenant 1's stops are adjacent in the single route.
  const PlannedRoute& route = plan->routes[0];
  ASSERT_EQ(route.stops.size(), 3u);
  int first = -1, last = -1;
  for (size_t pos = 0; pos < route.stops.size(); ++pos) {
    if (jobs[route.stops[pos].job_index].vdrone_id == 1) {
      if (first < 0) {
        first = static_cast<int>(pos);
      }
      last = static_cast<int>(pos);
    }
  }
  EXPECT_EQ(last - first, 1);
}

TEST(PlannerExtensionTest, UnconstrainedInterleavesWhenShorter) {
  // The faithful baseline behaviour (paper §4 limitation): with no flags,
  // the middle waypoint is visited between the outer pair.
  std::vector<PlannerJob> jobs = {
      Job(1, 0, 100, 0),
      Job(1, 1, 300, 0),
      Job(2, 0, 200, 0),
  };
  FlightPlanner planner((EnergyModel()), Config(1));
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok());
  const PlannedRoute& route = plan->routes[0];
  std::vector<int> tenants;
  for (const PlannedStop& stop : route.stops) {
    tenants.push_back(jobs[stop.job_index].vdrone_id);
  }
  EXPECT_EQ(tenants, (std::vector<int>{1, 2, 1}));
}

class OrderedSweepTest : public ::testing::TestWithParam<uint64_t> {};

// Property: across seeds and random geometries, plans returned with
// ordering constraints never violate them.
TEST_P(OrderedSweepTest, PlansNeverViolateConstraints) {
  Rng rng(GetParam());
  std::vector<PlannerJob> jobs;
  int tenants = 2 + static_cast<int>(rng.NextU64Below(3));
  for (int t = 0; t < tenants; ++t) {
    int waypoints = 1 + static_cast<int>(rng.NextU64Below(3));
    bool ordered = rng.Bernoulli(0.6);
    bool grouped = rng.Bernoulli(0.4);
    for (int w = 0; w < waypoints; ++w) {
      jobs.push_back(Job(t, w, rng.Uniform(-400, 400), rng.Uniform(-400, 400),
                         ordered, grouped));
    }
  }
  FlightPlanner planner((EnergyModel()),
                        Config(1 + static_cast<int>(rng.NextU64Below(2)),
                               GetParam()));
  auto plan = planner.Plan(jobs);
  if (plan.ok()) {
    EXPECT_EQ(plan->constraint_violations, 0);
    // Re-derive the routes and recount violations independently.
    std::vector<std::vector<size_t>> routes;
    for (const PlannedRoute& route : plan->routes) {
      std::vector<size_t> order;
      for (const PlannedStop& stop : route.stops) {
        order.push_back(stop.job_index);
      }
      routes.push_back(std::move(order));
    }
    EXPECT_EQ(FlightPlanner::CountConstraintViolations(jobs, routes), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedSweepTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace androne
