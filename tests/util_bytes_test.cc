#include "src/util/bytes.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace androne {
namespace {

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter w;
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 6u);
  EXPECT_EQ(d[0], 0x34);
  EXPECT_EQ(d[1], 0x12);
  EXPECT_EQ(d[2], 0xEF);
  EXPECT_EQ(d[3], 0xBE);
  EXPECT_EQ(d[4], 0xAD);
  EXPECT_EQ(d[5], 0xDE);
}

TEST(BytesTest, RoundTripAllTypes) {
  ByteWriter w;
  w.PutU8(250);
  w.PutI8(-3);
  w.PutU16(65000);
  w.PutI16(-12345);
  w.PutU32(4000000000u);
  w.PutI32(-2000000000);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-5000000000LL);
  w.PutFloat(3.14f);
  w.PutDouble(-2.718281828);
  w.PutFixedString("drone", 8);

  ByteReader r(w.data());
  uint8_t u8;
  int8_t i8;
  uint16_t u16;
  int16_t i16;
  uint32_t u32;
  int32_t i32;
  uint64_t u64;
  int64_t i64;
  float f;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(u8));
  ASSERT_TRUE(r.GetI8(i8));
  ASSERT_TRUE(r.GetU16(u16));
  ASSERT_TRUE(r.GetI16(i16));
  ASSERT_TRUE(r.GetU32(u32));
  ASSERT_TRUE(r.GetI32(i32));
  ASSERT_TRUE(r.GetU64(u64));
  ASSERT_TRUE(r.GetI64(i64));
  ASSERT_TRUE(r.GetFloat(f));
  ASSERT_TRUE(r.GetDouble(d));
  ASSERT_TRUE(r.GetFixedString(s, 8));
  EXPECT_EQ(u8, 250);
  EXPECT_EQ(i8, -3);
  EXPECT_EQ(u16, 65000);
  EXPECT_EQ(i16, -12345);
  EXPECT_EQ(u32, 4000000000u);
  EXPECT_EQ(i32, -2000000000);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -5000000000LL);
  EXPECT_FLOAT_EQ(f, 3.14f);
  EXPECT_DOUBLE_EQ(d, -2.718281828);
  EXPECT_EQ(s, "drone");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, UnderflowPoisonsReader) {
  ByteWriter w;
  w.PutU16(7);
  ByteReader r(w.data());
  uint32_t v32 = 99;
  EXPECT_FALSE(r.GetU32(v32));
  EXPECT_EQ(v32, 99u);  // Untouched on failure.
  EXPECT_TRUE(r.failed());
  uint8_t v8;
  EXPECT_FALSE(r.GetU8(v8));  // Poisoned: even in-bounds reads fail.
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, FixedStringTruncatesAndPads) {
  ByteWriter w;
  w.PutFixedString("toolongvalue", 4);
  w.PutFixedString("ab", 4);
  ByteReader r(w.data());
  std::string a, b;
  ASSERT_TRUE(r.GetFixedString(a, 4));
  ASSERT_TRUE(r.GetFixedString(b, 4));
  EXPECT_EQ(a, "tool");
  EXPECT_EQ(b, "ab");
}

class BytesFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// Property: any random write sequence reads back identically.
TEST_P(BytesFuzzTest, RandomSequencesRoundTrip) {
  Rng rng(GetParam());
  ByteWriter w;
  std::vector<uint64_t> values;
  std::vector<int> kinds;
  size_t n = 1 + rng.NextU64Below(64);
  for (size_t i = 0; i < n; ++i) {
    int kind = static_cast<int>(rng.NextU64Below(4));
    uint64_t v = rng.NextU64();
    kinds.push_back(kind);
    values.push_back(v);
    switch (kind) {
      case 0:
        w.PutU8(static_cast<uint8_t>(v));
        break;
      case 1:
        w.PutU16(static_cast<uint16_t>(v));
        break;
      case 2:
        w.PutU32(static_cast<uint32_t>(v));
        break;
      default:
        w.PutU64(v);
        break;
    }
  }
  ByteReader r(w.data());
  for (size_t i = 0; i < n; ++i) {
    switch (kinds[i]) {
      case 0: {
        uint8_t v;
        ASSERT_TRUE(r.GetU8(v));
        EXPECT_EQ(v, static_cast<uint8_t>(values[i]));
        break;
      }
      case 1: {
        uint16_t v;
        ASSERT_TRUE(r.GetU16(v));
        EXPECT_EQ(v, static_cast<uint16_t>(values[i]));
        break;
      }
      case 2: {
        uint32_t v;
        ASSERT_TRUE(r.GetU32(v));
        EXPECT_EQ(v, static_cast<uint32_t>(values[i]));
        break;
      }
      default: {
        uint64_t v;
        ASSERT_TRUE(r.GetU64(v));
        EXPECT_EQ(v, values[i]);
        break;
      }
    }
  }
  EXPECT_EQ(r.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesFuzzTest,
                         ::testing::Range<uint64_t>(1, 17));

TEST(Fnv1a64Test, KnownVectorsAndChaining) {
  // Standard FNV-1a reference values.
  EXPECT_EQ(Fnv1a64("", 0), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a", 1), 12638187200555641996ULL);
  // Chaining via the seed equals hashing the concatenation.
  uint64_t part = Fnv1a64("ab", 2);
  EXPECT_EQ(Fnv1a64("cd", 2, part), Fnv1a64("abcd", 4));
  // Value helper hashes the raw bytes.
  uint32_t v = 0x01020304;
  EXPECT_EQ(Fnv1a64Value(v), Fnv1a64(&v, sizeof(v)));
}

}  // namespace
}  // namespace androne
