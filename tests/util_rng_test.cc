#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace androne {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextU64BelowRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextU64Below(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextU64Below(0), 0u);
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    double e = rng.Exponential(3.0);
    EXPECT_GE(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng forked = a.Fork();
  // The fork and parent should not track each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == forked.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

}  // namespace
}  // namespace androne
