// Determinism harness (DESIGN.md §11): the same traced world, run
// repeatedly and across executor thread counts, must produce byte-identical
// trace exports and metric snapshots. On a mismatch the failure message
// pinpoints the first divergent trace event (simulated time + category +
// name), which localizes the nondeterminism to one instrumented layer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/ctrl/router.h"
#include "src/ctrl/tenant_mix.h"
#include "src/exec/fleet_executor.h"
#include "src/exec/fleet_world.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/triage.h"

namespace androne {
namespace {

constexpr uint64_t kSeed = 7041776;

FleetWorldConfig TracedConfig() {
  FleetWorldConfig config;
  config.tenants = 2;
  config.dwell_s = 5;
  config.annealing_iterations = 100;
  config.trace_categories = kTraceAll;
  config.trace_capacity = 4096;
  return config;
}

// First line where the two exports differ — the first divergent trace
// event, since ExportText is one event per line after the header.
std::string FirstDivergentEvent(const std::string& a, const std::string& b) {
  return DescribeDivergence(a, b, "run A", "run B");
}

TEST(DeterminismTest, RepeatedWorldsExportIdenticalTracesAndMetrics) {
  const FleetWorldConfig config = TracedConfig();
  WorldContext ctx;
  ctx.index = 0;
  ctx.seed = FleetExecutor::WorldSeed(kSeed, 0);

  WorldResult reference = RunFleetWorld(config, ctx);
  ASSERT_TRUE(reference.completed);
  ASSERT_FALSE(reference.trace_text.empty());
  ASSERT_FALSE(reference.metrics.empty());

  const int repeats = 3;
  for (int rep = 0; rep < repeats; ++rep) {
    WorldResult run = RunFleetWorld(config, ctx);
    EXPECT_EQ(reference.trace_text, run.trace_text)
        << "repeat " << rep << ": "
        << FirstDivergentEvent(reference.trace_text, run.trace_text);
    EXPECT_EQ(reference.metrics.Digest(), run.metrics.Digest())
        << "repeat " << rep << " metric snapshots diverged:\n--- reference\n"
        << reference.metrics.ToText() << "--- run\n" << run.metrics.ToText();
    EXPECT_EQ(reference.digest, run.digest);
    EXPECT_EQ(reference.flight_digest, run.flight_digest);
  }
}

TEST(DeterminismTest, TracedFleetIsThreadCountInvariant) {
  const FleetWorldConfig config = TracedConfig();
  const int worlds = 4;

  FleetReport reference;
  bool have_reference = false;
  for (int threads : {1, 2, 8}) {
    FleetOptions options;
    options.threads = threads;
    options.base_seed = kSeed;
    FleetExecutor executor(options);
    FleetReport report = executor.Run(worlds, MakeFleetWorld(config));
    ASSERT_EQ(report.completed, worlds) << "threads=" << threads;

    if (!have_reference) {
      reference = std::move(report);
      have_reference = true;
      continue;
    }
    EXPECT_EQ(reference.fleet_digest, report.fleet_digest)
        << "fleet digest diverged at threads=" << threads;
    EXPECT_EQ(reference.metrics.Digest(), report.metrics.Digest())
        << "merged metrics diverged at threads=" << threads
        << ":\n--- 1 thread\n" << reference.metrics.ToText()
        << "--- " << threads << " threads\n" << report.metrics.ToText();
    ASSERT_EQ(reference.worlds.size(), report.worlds.size());
    for (size_t i = 0; i < reference.worlds.size(); ++i) {
      EXPECT_EQ(reference.worlds[i].trace_text, report.worlds[i].trace_text)
          << "world " << i << " at threads=" << threads << ": "
          << FirstDivergentEvent(reference.worlds[i].trace_text,
                                 report.worlds[i].trace_text);
      EXPECT_EQ(reference.worlds[i].metrics.Digest(),
                report.worlds[i].metrics.Digest())
          << "world " << i << " metrics diverged at threads=" << threads;
    }
  }
}

TEST(DeterminismTest, TracingDoesNotPerturbTheFlight) {
  // The zero-overhead contract's semantic half: a traced world must fly
  // the bit-identical flight of an untraced one.
  FleetWorldConfig untraced = TracedConfig();
  untraced.trace_categories = 0;

  WorldContext ctx;
  ctx.index = 0;
  ctx.seed = FleetExecutor::WorldSeed(kSeed, 0);

  WorldResult with_trace = RunFleetWorld(TracedConfig(), ctx);
  WorldResult without_trace = RunFleetWorld(untraced, ctx);
  ASSERT_TRUE(with_trace.completed);
  ASSERT_TRUE(without_trace.completed);
  EXPECT_EQ(with_trace.flight_digest, without_trace.flight_digest);
  EXPECT_EQ(with_trace.digest, without_trace.digest);
  EXPECT_EQ(with_trace.events_run, without_trace.events_run);
  EXPECT_TRUE(without_trace.trace_text.empty());
}

TEST(DeterminismTest, MetricSnapshotsMergeInIndexOrder) {
  // Two worlds whose gauges differ: the merged gauge must be world N-1's
  // value at every thread count (last index wins), proving the merge is
  // index-ordered rather than completion-ordered.
  FleetOptions options;
  options.threads = 2;
  options.base_seed = kSeed;
  FleetExecutor executor(options);
  FleetReport report = executor.Run(3, MakeFleetWorld(TracedConfig()));
  ASSERT_EQ(report.completed, 3);

  const auto& last = report.worlds.back().metrics;
  ASSERT_NE(last.gauges.find("container.memory_mb"), last.gauges.end());
  EXPECT_DOUBLE_EQ(report.metrics.gauges.at("container.memory_mb"),
                   last.gauges.at("container.memory_mb"));

  double counter_sum = 0;
  for (const WorldResult& world : report.worlds) {
    counter_sum += world.metrics.counters.at("binder.txns");
  }
  EXPECT_DOUBLE_EQ(report.metrics.counters.at("binder.txns"), counter_sum);
}

// The control-plane serving path (DESIGN.md §16) inherits the executor's
// determinism contract end to end: the merged report text — terminal-state
// counts, settlement ledger, stage percentiles, digests — must be
// byte-identical across repeats and at 1, 2, or 8 router threads. The CI
// TSan leg runs this test, so the thread sweep is also a data-race probe.
TEST(DeterminismTest, ControlPlaneReportIsThreadCountInvariant) {
  ControlPlaneConfig config;
  config.shards = 4;
  config.seed = kSeed;
  config.load.sessions = 160;
  config.load.arrival_window_s = 25;

  config.threads = 1;
  const ControlPlaneReport reference =
      ControlPlaneRouter(config).Serve(BuiltinTenantMix());
  const std::string reference_text = reference.ToText();
  ASSERT_EQ(reference.settlement_errors, 0);
  ASSERT_EQ(reference.admission_violations, 0u);

  // Straight repeat at the same thread count.
  const ControlPlaneReport repeat =
      ControlPlaneRouter(config).Serve(BuiltinTenantMix());
  EXPECT_EQ(repeat.ToText(), reference_text)
      << DescribeDivergence(reference_text, repeat.ToText(), "run A",
                            "run B");

  for (int threads : {2, 8}) {
    config.threads = threads;
    const ControlPlaneReport run =
        ControlPlaneRouter(config).Serve(BuiltinTenantMix());
    EXPECT_EQ(run.ToText(), reference_text)
        << threads << " router threads: "
        << DescribeDivergence(reference_text, run.ToText(), "1 thread",
                              "swept");
    EXPECT_EQ(run.Digest(), reference.Digest());
  }
}

}  // namespace
}  // namespace androne
