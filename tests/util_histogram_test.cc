#include "src/util/histogram.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace androne {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_TRUE(h.NonEmptyBuckets().empty());
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_NEAR(h.stddev(), 10.0, 1e-9);
}

TEST(HistogramTest, WeightedRecord) {
  Histogram h;
  h.Record(5, 100);
  EXPECT_EQ(h.total_count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  h.Record(5, 0);  // No-op.
  EXPECT_EQ(h.total_count(), 100u);
}

TEST(HistogramTest, PercentileBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i);
  }
  // Log buckets make percentiles conservative (upper bucket bound), but they
  // must be ordered and within [min, max].
  int64_t p50 = h.Percentile(0.50);
  int64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, 500);
  EXPECT_LE(p50, 650);
}

TEST(HistogramTest, NonEmptyBucketsAscendAndSumToCount) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextU64Below(100000)) + 1);
  }
  auto buckets = h.NonEmptyBuckets();
  ASSERT_FALSE(buckets.empty());
  uint64_t total = 0;
  int64_t prev = -1;
  for (const auto& [bound, count] : buckets) {
    EXPECT_GT(bound, prev);
    prev = bound;
    total += count;
  }
  EXPECT_EQ(total, h.total_count());
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  Histogram h(10, 8);
  h.Record(static_cast<int64_t>(1e18));
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_EQ(h.NonEmptyBuckets().size(), 1u);
}

TEST(HistogramTest, ToStringMentionsStats) {
  Histogram h;
  h.Record(100);
  std::string s = h.ToString("us");
  EXPECT_NE(s.find("samples=1"), std::string::npos);
  EXPECT_NE(s.find("100us"), std::string::npos);
}

TEST(HistogramTest, MergeMatchesSingleStreamRecording) {
  Histogram a(10, 6);
  Histogram b(10, 6);
  Histogram combined(10, 6);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    int64_t v = static_cast<int64_t>(rng.LogNormal(5.0, 1.5));
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.total_count(), combined.total_count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_EQ(a.NonEmptyBuckets(), combined.NonEmptyBuckets());
  EXPECT_EQ(a.Percentile(0.99), combined.Percentile(0.99));
}

TEST(HistogramTest, MergeEmptySidesAreNoOps) {
  Histogram a(10, 6);
  Histogram empty(10, 6);
  a.Record(42);
  uint64_t before = a.Digest();
  a.Merge(empty);
  EXPECT_EQ(a.Digest(), before);
  empty.Merge(a);
  EXPECT_EQ(empty.Digest(), before);
}

TEST(HistogramTest, DigestDistinguishesStreams) {
  Histogram a(10, 6);
  Histogram b(10, 6);
  a.Record(100);
  b.Record(101);
  EXPECT_NE(a.Digest(), b.Digest());
  Histogram c(10, 6);
  c.Record(100);
  EXPECT_EQ(a.Digest(), c.Digest());
}

TEST(HistogramTest, MergeAcrossLayoutsKeepsCount) {
  Histogram fine(20, 8);
  Histogram coarse(5, 6);
  for (int i = 1; i <= 100; ++i) {
    fine.Record(i * 7);
  }
  coarse.Merge(fine);
  EXPECT_EQ(coarse.total_count(), 100u);
}

}  // namespace
}  // namespace androne
