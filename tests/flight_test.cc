#include <gtest/gtest.h>

#include <cmath>

#include "src/flight/controllers.h"
#include "src/flight/estimator.h"
#include "src/flight/flight_log.h"
#include "src/flight/quad_physics.h"
#include "src/flight/sitl.h"

namespace androne {
namespace {

const GeoPoint kHome{43.6084298, -85.8110359, 0.0};

// ------------------------------------------------------------ Physics.

TEST(QuadPhysicsTest, RestsOnGroundWhenDisarmed) {
  QuadPhysics quad(kHome);
  MotorSet motors;
  ASSERT_TRUE(motors.Open(0).ok());
  for (int i = 0; i < 400; ++i) {
    quad.Step(Millis(2) + Micros(500), motors);
  }
  EXPECT_FALSE(quad.truth().airborne);
  EXPECT_NEAR(quad.truth().position.altitude_m, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(quad.total_rotor_power_w(), 0.0);
}

TEST(QuadPhysicsTest, HoverThrottleIsReasonable) {
  QuadPhysics quad(kHome);
  // 1.6 kg at 8 N/motor: hover around 49%.
  EXPECT_NEAR(quad.hover_throttle(), 0.49, 0.02);
}

TEST(QuadPhysicsTest, FullThrottleClimbs) {
  QuadPhysics quad(kHome);
  MotorSet motors;
  ASSERT_TRUE(motors.Open(0).ok());
  ASSERT_TRUE(motors.Arm(0).ok());
  ASSERT_TRUE(motors.SetThrottles(0, {0.8, 0.8, 0.8, 0.8}).ok());
  for (int i = 0; i < 800; ++i) {
    quad.Step(Micros(2500), motors);
  }
  EXPECT_TRUE(quad.truth().airborne);
  EXPECT_GT(quad.truth().position.altitude_m, 1.0);
  EXPECT_GT(quad.total_rotor_power_w(), 100.0);  // Flight is expensive.
}

TEST(QuadPhysicsTest, HoverPowerNear170W) {
  QuadPhysics quad(kHome);
  MotorSet motors;
  ASSERT_TRUE(motors.Open(0).ok());
  ASSERT_TRUE(motors.Arm(0).ok());
  double h = quad.hover_throttle();
  ASSERT_TRUE(motors.SetThrottles(0, {h, h, h, h}).ok());
  quad.Step(Micros(2500), motors);
  EXPECT_NEAR(quad.total_rotor_power_w(), 170.0, 25.0);
}

TEST(QuadPhysicsTest, DifferentialThrustRolls) {
  QuadPhysics quad(kHome);
  MotorSet motors;
  ASSERT_TRUE(motors.Open(0).ok());
  ASSERT_TRUE(motors.Arm(0).ok());
  // Climb first.
  ASSERT_TRUE(motors.SetThrottles(0, {0.8, 0.8, 0.8, 0.8}).ok());
  for (int i = 0; i < 400; ++i) {
    quad.Step(Micros(2500), motors);
  }
  // Left motors up -> roll right (positive).
  ASSERT_TRUE(motors.SetThrottles(0, {0.55, 0.65, 0.65, 0.55}).ok());
  for (int i = 0; i < 100; ++i) {
    quad.Step(Micros(2500), motors);
  }
  EXPECT_GT(quad.truth().roll_rad, 0.01);
}

// ------------------------------------------------------------ Estimator.

TEST(EstimatorTest, ConvergesToStaticAttitude) {
  Estimator est(kHome);
  ImuSample sample;
  sample.gyro_rads = {0, 0, 0};
  // Constant 0.1 rad pitch: accel reads g*sin(pitch) on x.
  sample.accel_mss = {9.80665 * std::sin(0.1), 0.0, -9.80665};
  for (int i = 0; i < 2000; ++i) {
    est.UpdateImu(sample, Micros(2500));
  }
  EXPECT_NEAR(est.attitude().pitch_rad, 0.1, 0.01);
  EXPECT_NEAR(est.attitude().roll_rad, 0.0, 0.01);
}

TEST(EstimatorTest, GyroIntegration) {
  Estimator est(kHome);
  ImuSample sample;
  sample.gyro_rads = {0.5, 0, 0};
  sample.accel_mss = {0, 0, -30.0};  // Out of the 1g window: no leveling.
  for (int i = 0; i < 400; ++i) {
    sample.timestamp += Micros(2500);  // Live sensor: timestamps advance.
    est.UpdateImu(sample, Micros(2500));
  }
  EXPECT_NEAR(est.attitude().roll_rad, 0.5, 0.01);
}

TEST(EstimatorTest, GpsAndBaroBlend) {
  Estimator est(kHome);
  GpsFix fix;
  fix.position = GeoPoint{43.609, -85.812, 30.0};
  fix.has_fix = true;
  est.UpdateGps(fix);
  EXPECT_TRUE(est.position().valid);
  EXPECT_NEAR(est.position().position.latitude_deg, 43.609, 1e-9);
  for (int i = 0; i < 100; ++i) {
    est.UpdateBaro(12.0);
  }
  EXPECT_NEAR(est.position().position.altitude_m, 12.0, 0.1);
}

TEST(EstimatorTest, NoFixIgnored) {
  Estimator est(kHome);
  GpsFix fix;
  fix.position = GeoPoint{1.0, 2.0, 3.0};
  fix.has_fix = false;
  est.UpdateGps(fix);
  EXPECT_FALSE(est.position().valid);
}

// ------------------------------------------------------------- AED.

TEST(FlightLogTest, AedFlagsSustainedDivergence) {
  FlightLog log;
  for (int i = 0; i < 100; ++i) {
    FlightLogEntry e;
    e.time = Millis(i * 40);
    e.est_roll_rad = 0.0;
    e.true_roll_rad = (i > 20 && i < 60) ? 0.2 : 0.0;  // ~11 deg for 1.6 s.
    log.Record(e);
  }
  AedResult r = AnalyzeAttitudeDivergence(log);
  EXPECT_TRUE(r.unstable);
  EXPECT_GT(r.worst_divergence_deg, 5.0);
}

TEST(FlightLogTest, AedAcceptsBriefDivergence) {
  FlightLog log;
  for (int i = 0; i < 100; ++i) {
    FlightLogEntry e;
    e.time = Millis(i * 40);
    e.est_pitch_rad = (i >= 50 && i < 58) ? 0.15 : 0.0;  // ~0.3 s only.
    log.Record(e);
  }
  AedResult r = AnalyzeAttitudeDivergence(log);
  EXPECT_FALSE(r.unstable);
}

// --------------------------------------------------------- Full stack.

class SitlTest : public ::testing::Test {
 protected:
  SitlTest() : drone_(&clock_, kHome, /*seed=*/7) {
    // Let sensors warm up and the estimator acquire GPS.
    clock_.RunFor(Seconds(2));
  }

  // Arms and takes off to |alt| m; returns true when stable at altitude.
  bool TakeoffTo(double alt) {
    drone_.SetModeCmd(CopterMode::kGuided);
    drone_.ArmCmd();
    drone_.TakeoffCmd(alt);
    return drone_.RunUntil(
        [&] {
          return std::fabs(drone_.physics().truth().position.altitude_m -
                           alt) < 1.0 &&
                 std::fabs(drone_.physics().truth().velocity_ms.down_m) < 0.3;
        },
        Seconds(40));
  }

  SimClock clock_;
  SitlDrone drone_;
};

TEST_F(SitlTest, ArmRequiresGpsFix) {
  // A drone with no GPS warmup: inject arm immediately on a fresh clock.
  SimClock fresh;
  SitlDrone cold(&fresh, kHome, 9);
  cold.ArmCmd();  // Estimator has no position yet.
  EXPECT_FALSE(cold.controller().armed());
}

TEST_F(SitlTest, TakeoffReachesAltitudeStably) {
  ASSERT_TRUE(TakeoffTo(15.0));
  EXPECT_TRUE(drone_.controller().armed());
  EXPECT_TRUE(drone_.physics().truth().airborne);
  // Attitude estimation stayed within the AED stability bound (paper §6.2).
  AedResult aed = AnalyzeAttitudeDivergence(drone_.controller().flight_log());
  EXPECT_FALSE(aed.unstable)
      << "worst divergence " << aed.worst_divergence_deg << " deg for "
      << ToMillis(aed.worst_span) << " ms";
}

TEST_F(SitlTest, HoverHoldsPosition) {
  ASSERT_TRUE(TakeoffTo(10.0));
  GeoPoint before = drone_.physics().truth().position;
  clock_.RunFor(Seconds(20));
  GeoPoint after = drone_.physics().truth().position;
  EXPECT_LT(HaversineMeters(before, after), 3.0);
  EXPECT_NEAR(after.altitude_m, 10.0, 1.5);
}

TEST_F(SitlTest, GuidedGotoReachesWaypoint) {
  ASSERT_TRUE(TakeoffTo(15.0));
  GeoPoint target{43.6076409, -85.8154457, 15.0};  // Fig. 2 waypoint B.
  drone_.GotoCmd(target);
  EXPECT_TRUE(drone_.RunUntil([&] { return drone_.DistanceTo(target) < 3.0; },
                              Seconds(180)))
      << "remaining distance " << drone_.DistanceTo(target);
}

TEST_F(SitlTest, SpeedIsLimited) {
  ASSERT_TRUE(TakeoffTo(15.0));
  GeoPoint target{43.6076409, -85.8154457, 15.0};
  drone_.GotoCmd(target);
  double max_speed = 0;
  for (int i = 0; i < 200; ++i) {
    clock_.RunFor(Millis(100));
    const NedPoint& v = drone_.physics().truth().velocity_ms;
    max_speed = std::max(max_speed, std::hypot(v.north_m, v.east_m));
  }
  EXPECT_LT(max_speed, 7.5);  // Default envelope is 6 m/s.
  EXPECT_GT(max_speed, 2.0);  // But it does actually move.
}

TEST_F(SitlTest, VelocityCommandMoves) {
  ASSERT_TRUE(TakeoffTo(10.0));
  drone_.VelocityCmd(2.0, 0.0, 0.0);  // North at 2 m/s.
  GeoPoint start = drone_.physics().truth().position;
  clock_.RunFor(Seconds(10));
  NedPoint moved = ToNed(start, drone_.physics().truth().position);
  EXPECT_GT(moved.north_m, 10.0);
  EXPECT_LT(std::fabs(moved.east_m), 4.0);
}

TEST_F(SitlTest, LandDisarms) {
  ASSERT_TRUE(TakeoffTo(8.0));
  drone_.LandCmd();
  EXPECT_TRUE(drone_.RunUntil(
      [&] { return !drone_.controller().armed(); }, Seconds(60)));
  EXPECT_FALSE(drone_.physics().truth().airborne);
}

TEST_F(SitlTest, RtlReturnsHomeAndLands) {
  ASSERT_TRUE(TakeoffTo(15.0));
  GeoPoint away{43.6080, -85.8125, 15.0};
  drone_.GotoCmd(away);
  ASSERT_TRUE(drone_.RunUntil([&] { return drone_.DistanceTo(away) < 3.0; },
                              Seconds(120)));
  drone_.RtlCmd();
  ASSERT_TRUE(drone_.RunUntil(
      [&] { return !drone_.controller().armed(); }, Seconds(180)));
  GeoPoint home_ground = kHome;
  EXPECT_LT(HaversineMeters(drone_.physics().truth().position, home_ground),
            5.0);
}

TEST_F(SitlTest, GeofenceBreachRecoversToLoiter) {
  ASSERT_TRUE(TakeoffTo(15.0));
  GeofenceConfig fence;
  fence.enabled = true;
  fence.center = drone_.physics().truth().position;
  fence.radius_m = 40.0;
  fence.max_altitude_m = 30.0;
  drone_.controller().SetGeofence(fence);
  bool breached = false, recovered = false;
  drone_.controller().SetFenceCallbacks([&] { breached = true; },
                                        [&] { recovered = true; });
  // Command a target far outside the fence.
  GeoPoint outside = FromNed(fence.center, NedPoint{200, 0, 0});
  drone_.GotoCmd(outside);
  ASSERT_TRUE(drone_.RunUntil([&] { return breached; }, Seconds(120)));
  ASSERT_TRUE(drone_.RunUntil([&] { return recovered; }, Seconds(120)));
  EXPECT_EQ(drone_.controller().mode(), CopterMode::kLoiter);
  // Stays inside after recovery.
  clock_.RunFor(Seconds(10));
  EXPECT_LT(HaversineMeters(drone_.physics().truth().position, fence.center),
            fence.radius_m + 5.0);
  // The drone kept flying: no failsafe landing (paper's key change).
  EXPECT_TRUE(drone_.controller().armed());
  EXPECT_TRUE(drone_.physics().truth().airborne);
}

TEST_F(SitlTest, BatteryDrainsInFlight) {
  double before = drone_.battery().consumed_joules();
  ASSERT_TRUE(TakeoffTo(10.0));
  clock_.RunFor(Seconds(30));
  double consumed = drone_.battery().consumed_joules() - before;
  // ~170 W for >= 30 s of hover (plus climb).
  EXPECT_GT(consumed, 170.0 * 30 * 0.8);
}

TEST_F(SitlTest, RtKernelLatencyDoesNotDestabilize) {
  // Run the fast loop under the PREEMPT_RT stress latency model: no missed
  // deadlines, stable flight (paper §6.2's headline claim).
  WakeLatencySampler sampler(PreemptionModel::kPreemptRt,
                             IdleLoad() + StressLoad() + IperfLoad(), 3);
  drone_.controller().SetLatencySampler(&sampler);
  ASSERT_TRUE(TakeoffTo(12.0));
  clock_.RunFor(Seconds(30));
  EXPECT_EQ(drone_.controller().missed_deadlines(), 0u);
  AedResult aed = AnalyzeAttitudeDivergence(drone_.controller().flight_log());
  EXPECT_FALSE(aed.unstable);
}

TEST_F(SitlTest, PreemptKernelMissesSomeDeadlinesButStillFlies) {
  WakeLatencySampler sampler(PreemptionModel::kPreempt,
                             IdleLoad() + StressLoad() + IperfLoad(), 3);
  drone_.controller().SetLatencySampler(&sampler);
  ASSERT_TRUE(TakeoffTo(12.0));
  clock_.RunFor(Seconds(60));
  // Occasional misses occur but are rare enough not to destabilize
  // (paper: "occasionally missing ArduPilot's fast loop deadline will not
  // cause significant stability issues").
  EXPECT_GT(drone_.controller().fast_loop_count(), 20000u);
  double miss_rate =
      static_cast<double>(drone_.controller().missed_deadlines()) /
      static_cast<double>(drone_.controller().fast_loop_count());
  EXPECT_LT(miss_rate, 0.001);
  AedResult aed = AnalyzeAttitudeDivergence(drone_.controller().flight_log());
  EXPECT_FALSE(aed.unstable);
}

TEST_F(SitlTest, StatusTextsNarrateTheFlight) {
  ASSERT_TRUE(TakeoffTo(10.0));
  bool saw_arming = false;
  for (const std::string& text : drone_.status_texts()) {
    if (text.find("Arming") != std::string::npos) {
      saw_arming = true;
    }
  }
  EXPECT_TRUE(saw_arming);
}

TEST_F(SitlTest, AutoMissionFliesWaypoints) {
  ASSERT_TRUE(TakeoffTo(15.0));
  std::vector<GeoPoint> mission{
      FromNed(kHome, NedPoint{40, 0, -15}),
      FromNed(kHome, NedPoint{40, 40, -15}),
  };
  drone_.controller().SetMission(mission);
  SetMode sm;
  sm.custom_mode = static_cast<uint32_t>(CopterMode::kAuto);
  drone_.controller().HandleFrame(PackMessage(MavMessage{sm}));
  EXPECT_TRUE(drone_.RunUntil(
      [&] { return drone_.controller().mode() == CopterMode::kLoiter; },
      Seconds(180)));
  EXPECT_LT(drone_.DistanceTo(mission.back()), 5.0);
}

}  // namespace
}  // namespace androne
