#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/hw/camera.h"
#include "src/hw/device.h"
#include "src/hw/ground_truth.h"
#include "src/hw/motors.h"
#include "src/hw/power.h"
#include "src/hw/sensor_bus.h"
#include "src/hw/sensors.h"

namespace androne {
namespace {

constexpr ContainerId kDevCon = 1;
constexpr ContainerId kOther = 2;

class HwFixture : public ::testing::Test {
 protected:
  HwFixture() {
    truth_.position = GeoPoint{43.6084298, -85.8110359, 15.0};
    truth_.yaw_rad = 1.0;
  }

  SimClock clock_;
  DroneGroundTruth truth_;
};

TEST_F(HwFixture, ExclusiveOpenSemantics) {
  GpsReceiver gps(&clock_, &truth_, 1);
  EXPECT_TRUE(gps.Open(kDevCon).ok());
  EXPECT_EQ(gps.Open(kOther).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(gps.Close(kOther).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(gps.Close(kDevCon).ok());
  EXPECT_TRUE(gps.Open(kOther).ok());
}

TEST_F(HwFixture, ReadWithoutOpenDenied) {
  GpsReceiver gps(&clock_, &truth_, 1);
  EXPECT_EQ(gps.ReadFix(kDevCon).status().code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(gps.Open(kDevCon).ok());
  EXPECT_EQ(gps.ReadFix(kOther).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(gps.ReadFix(kDevCon).ok());
}

TEST_F(HwFixture, GpsFixNearTruth) {
  GpsReceiver gps(&clock_, &truth_, 42);
  ASSERT_TRUE(gps.Open(kDevCon).ok());
  double worst = 0;
  for (int i = 0; i < 200; ++i) {
    auto fix = gps.ReadFix(kDevCon);
    ASSERT_TRUE(fix.ok());
    EXPECT_TRUE(fix->has_fix);
    worst = std::max(worst, HaversineMeters(fix->position, truth_.position));
  }
  EXPECT_LT(worst, 10.0);  // ~1.2 m sigma noise.
  EXPECT_GT(worst, 0.01);  // But not noiseless.
}

TEST_F(HwFixture, GpsLosesFixWithFewSatellites) {
  GpsReceiver gps(&clock_, &truth_, 42);
  ASSERT_TRUE(gps.Open(kDevCon).ok());
  gps.set_satellites(3);
  EXPECT_FALSE(gps.ReadFix(kDevCon)->has_fix);
}

TEST_F(HwFixture, ImuReadsRatesAndGravity) {
  truth_.roll_rate_rads = 0.5;
  truth_.pitch_rad = 0.1;
  Imu imu(&clock_, &truth_, 7);
  ASSERT_TRUE(imu.Open(kDevCon).ok());
  double gyro_x = 0, acc_x = 0, acc_z = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    auto s = imu.ReadSample(kDevCon);
    ASSERT_TRUE(s.ok());
    gyro_x += s->gyro_rads[0];
    acc_x += s->accel_mss[0];
    acc_z += s->accel_mss[2];
  }
  EXPECT_NEAR(gyro_x / n, 0.5, 0.01);
  EXPECT_NEAR(acc_x / n, 9.80665 * std::sin(0.1), 0.02);
  EXPECT_NEAR(acc_z / n, -9.80665, 0.05);  // Level hover: -1 g.
}

TEST_F(HwFixture, BarometerTracksAltitude) {
  Barometer baro(&clock_, &truth_, 3);
  ASSERT_TRUE(baro.Open(kDevCon).ok());
  double sum = 0;
  for (int i = 0; i < 200; ++i) {
    sum += baro.ReadAltitudeM(kDevCon).value();
  }
  EXPECT_NEAR(sum / 200, 15.0, 0.1);
}

TEST_F(HwFixture, MagnetometerNormalizedHeading) {
  truth_.yaw_rad = -0.5;  // Negative heading must normalize.
  Magnetometer mag(&clock_, &truth_, 3);
  ASSERT_TRUE(mag.Open(kDevCon).ok());
  for (int i = 0; i < 100; ++i) {
    double h = mag.ReadHeadingRad(kDevCon).value();
    EXPECT_GE(h, 0.0);
    EXPECT_LT(h, 6.2832);
  }
}

TEST_F(HwFixture, CameraFramesAreSequencedAndStamped) {
  Camera cam(&clock_, &truth_);
  ASSERT_TRUE(cam.Open(kDevCon).ok());
  auto f0 = cam.Capture(kDevCon);
  clock_.RunFor(Millis(33));
  auto f1 = cam.Capture(kDevCon);
  ASSERT_TRUE(f0.ok());
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f0->sequence, 0u);
  EXPECT_EQ(f1->sequence, 1u);
  EXPECT_EQ(f1->timestamp - f0->timestamp, Millis(33));
  EXPECT_NE(f0->content_hash, f1->content_hash);
  EXPECT_EQ(f0->width, 3280);
  EXPECT_EQ(f0->camera_position, truth_.position);
}

TEST_F(HwFixture, MicrophoneProducesAudio) {
  Microphone mic(&clock_);
  ASSERT_TRUE(mic.Open(kDevCon).ok());
  auto pcm = mic.Record(kDevCon, 441);
  ASSERT_TRUE(pcm.ok());
  EXPECT_EQ(pcm->size(), 441u);
  bool nonzero = false;
  for (int16_t s : *pcm) {
    nonzero |= s != 0;
  }
  EXPECT_TRUE(nonzero);
}

TEST_F(HwFixture, MotorsRequireArming) {
  MotorSet motors;
  ASSERT_TRUE(motors.Open(kDevCon).ok());
  EXPECT_EQ(motors.SetThrottles(kDevCon, {0.5, 0.5, 0.5, 0.5}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(motors.Arm(kDevCon).ok());
  EXPECT_TRUE(motors.SetThrottles(kDevCon, {0.5, 0.5, 0.5, 0.5}).ok());
  EXPECT_DOUBLE_EQ(motors.throttles()[0], 0.5);
}

TEST_F(HwFixture, MotorThrottlesClamped) {
  MotorSet motors;
  ASSERT_TRUE(motors.Open(kDevCon).ok());
  ASSERT_TRUE(motors.Arm(kDevCon).ok());
  ASSERT_TRUE(motors.SetThrottles(kDevCon, {-1.0, 2.0, 0.3, 0.7}).ok());
  EXPECT_DOUBLE_EQ(motors.throttles()[0], 0.0);
  EXPECT_DOUBLE_EQ(motors.throttles()[1], 1.0);
}

TEST_F(HwFixture, EmergencyStopAlwaysWorks) {
  MotorSet motors;
  ASSERT_TRUE(motors.Open(kDevCon).ok());
  ASSERT_TRUE(motors.Arm(kDevCon).ok());
  ASSERT_TRUE(motors.SetThrottles(kDevCon, {1, 1, 1, 1}).ok());
  motors.EmergencyStop();
  EXPECT_FALSE(motors.armed());
  EXPECT_DOUBLE_EQ(motors.throttles()[0], 0.0);
}

TEST_F(HwFixture, HardwareBusRegistryAndLookup) {
  HardwareBus bus;
  bus.Register(std::make_unique<Camera>(&clock_, &truth_));
  bus.Register(std::make_unique<MotorSet>());
  EXPECT_TRUE(bus.Find(kCameraDeviceName).ok());
  EXPECT_TRUE(bus.Find(kMotorsDeviceName).ok());
  EXPECT_FALSE(bus.Find("lidar").ok());
  EXPECT_EQ(bus.DeviceNames().size(), 2u);
}

TEST(PowerModelTest, MatchesFig13Calibration) {
  ComputePowerModel model;
  // Stock idle (launcher screen).
  double stock_idle = model.Watts(0.02, 0, 0);
  // AnDrone idle with device+flight containers and 3 virtual drones.
  double androne_idle = model.Watts(0.02, 5, 3);
  EXPECT_NEAR(androne_idle, 1.7, 0.08);
  // Within 3% of stock (Figure 13).
  EXPECT_LT(androne_idle / stock_idle, 1.03);
  // Fully stressed: ~3.4 W regardless of configuration.
  EXPECT_NEAR(model.Watts(1.0, 0, 0), 3.4, 0.1);
  EXPECT_NEAR(model.Watts(1.0, 5, 3), 3.4, 0.15);
}

TEST(BatteryTest, DrainsAndReportsEnergy) {
  Battery battery(1000.0);  // 1 kJ for easy math.
  battery.Drain(100.0, Seconds(2));  // 200 J.
  EXPECT_DOUBLE_EQ(battery.consumed_joules(), 200.0);
  EXPECT_DOUBLE_EQ(battery.remaining_joules(), 800.0);
  EXPECT_FALSE(battery.depleted());
  battery.Drain(1000.0, Seconds(10));  // Over-drain clamps at 0.
  EXPECT_TRUE(battery.depleted());
  EXPECT_DOUBLE_EQ(battery.remaining_joules(), 0.0);
}

TEST(BatteryTest, VoltageSagsWithDischarge) {
  Battery battery(1000.0);
  double full = battery.voltage();
  battery.Drain(100.0, Seconds(5));
  double half = battery.voltage();
  EXPECT_GT(full, half);
  EXPECT_NEAR(full, 12.6, 0.01);
  battery.Drain(1000.0, Seconds(10));
  EXPECT_NEAR(battery.voltage(), 10.5, 0.01);
}

TEST(BatteryTest, NegativeDrawIgnored) {
  Battery battery(1000.0);
  battery.Drain(-50.0, Seconds(10));
  EXPECT_DOUBLE_EQ(battery.consumed_joules(), 0.0);
}

TEST(BatteryTest, RealPackLastsRealisticHoverTime) {
  // Paper: >100 W rotor draw over a ~20 minute flight. 170 W hover on a
  // 199.8 kJ pack -> ~19.6 minutes.
  Battery battery;
  double minutes = battery.capacity_joules() / 170.0 / 60.0;
  EXPECT_GT(minutes, 15.0);
  EXPECT_LT(minutes, 25.0);
}

// ---- Sensor snapshot bus (DESIGN.md §10) ----

TEST(SensorBusTest, VersionsAreEvenAndAdvancePerPublish) {
  SensorBus bus;
  EXPECT_EQ(bus.version(), 0u);  // Never published.
  SensorSnapshot* slot = bus.BeginPublish();
  slot->baro_altitude_m = 12.5;
  // Mid-publish the sequence is odd: a concurrent reader would retry.
  EXPECT_EQ(bus.version() % 2, 1u);
  bus.EndPublish();
  EXPECT_EQ(bus.version() % 2, 0u);
  EXPECT_EQ(bus.publishes(), 1u);

  SensorSnapshot copy;
  uint64_t v1 = bus.Read(&copy);
  EXPECT_EQ(v1, bus.version());
  EXPECT_DOUBLE_EQ(copy.baro_altitude_m, 12.5);

  bus.BeginPublish()->baro_altitude_m = 13.0;
  bus.EndPublish();
  uint64_t v2 = bus.Read(&copy);
  EXPECT_GT(v2, v1);  // The version doubles as a freshness token.
  EXPECT_DOUBLE_EQ(copy.baro_altitude_m, 13.0);
  EXPECT_DOUBLE_EQ(bus.latest().baro_altitude_m, 13.0);
}

class SensorHubFixture : public HwFixture {
 protected:
  SensorHubFixture()
      : gps_(&clock_, &truth_, 11),
        imu_(&clock_, &truth_, 12),
        baro_(&clock_, &truth_, 13),
        mag_(&clock_, &truth_, 14) {
    EXPECT_TRUE(gps_.Open(kDevCon).ok());
    EXPECT_TRUE(imu_.Open(kDevCon).ok());
    EXPECT_TRUE(baro_.Open(kDevCon).ok());
    EXPECT_TRUE(mag_.Open(kDevCon).ok());
  }

  GpsReceiver gps_;
  Imu imu_;
  Barometer baro_;
  Magnetometer mag_;
};

TEST_F(SensorHubFixture, SharedSnapshotCostsOneDrawPerInstant) {
  SensorHub hub(&clock_, &gps_, &imu_, &baro_, &mag_, kDevCon);
  const SensorSnapshot& first = hub.Sample();
  uint64_t drawn = hub.samples_drawn();
  EXPECT_EQ(drawn, 4u);  // All four sensors due on the first refresh.
  EXPECT_EQ(first.publish_time, clock_.now());

  // N more consumers at the same instant share the snapshot: zero draws.
  for (int i = 0; i < 8; ++i) {
    hub.Sample();
  }
  EXPECT_EQ(hub.samples_drawn(), drawn);
  EXPECT_EQ(hub.bus().publishes(), 1u);
}

TEST_F(SensorHubFixture, RespectsPerSensorCadence) {
  SensorHub hub(&clock_, &gps_, &imu_, &baro_, &mag_, kDevCon);
  hub.Sample();  // t=0: imu + baro/mag + gps -> 4 draws.
  ASSERT_EQ(hub.samples_drawn(), 4u);

  clock_.RunFor(Millis(3));  // One 400 Hz tick later: IMU only.
  hub.Sample();
  EXPECT_EQ(hub.samples_drawn(), 5u);

  clock_.RunFor(Millis(37));  // t=40ms: IMU + baro + mag due, GPS not.
  hub.Sample();
  EXPECT_EQ(hub.samples_drawn(), 8u);

  clock_.RunFor(Millis(160));  // t=200ms: everything due again.
  hub.Sample();
  EXPECT_EQ(hub.samples_drawn(), 12u);
  EXPECT_EQ(hub.bus().publishes(), 4u);
}

TEST_F(SensorHubFixture, SnapshotTracksTruthThroughTheBus) {
  truth_.yaw_rad = 0.75;
  SensorHub hub(&clock_, &gps_, &imu_, &baro_, &mag_, kDevCon);
  const SensorSnapshot& snap = hub.Sample();
  EXPECT_TRUE(snap.gps.has_fix);
  EXPECT_LT(HaversineMeters(snap.gps.position, truth_.position), 30.0);
  EXPECT_NEAR(snap.mag_heading_rad, 0.75, 0.2);
  EXPECT_NEAR(snap.baro_altitude_m, truth_.position.altitude_m, 5.0);
}

}  // namespace
}  // namespace androne
