#include "src/util/xml.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "src/util/rng.h"

namespace androne {
namespace {

TEST(XmlTest, ParsesSimpleElement) {
  auto root = ParseXml("<manifest/>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->name, "manifest");
  EXPECT_TRUE(root.value()->children.empty());
}

TEST(XmlTest, ParsesAttributes) {
  auto root = ParseXml(R"(<uses-permission name="camera" type='waypoint'/>)");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->Attr("name"), "camera");
  EXPECT_EQ(root.value()->Attr("type"), "waypoint");
  EXPECT_EQ(root.value()->Attr("missing", "dflt"), "dflt");
}

TEST(XmlTest, ParsesNestedChildrenAndText) {
  auto root = ParseXml(
      "<manifest>"
      "  <uses-permission name=\"camera\" type=\"waypoint\"/>"
      "  <uses-permission name=\"gps\" type=\"continuous\"/>"
      "  <argument name=\"survey-areas\" type=\"polygon\" required=\"true\"/>"
      "  <label> Survey App </label>"
      "</manifest>");
  ASSERT_TRUE(root.ok());
  const XmlElement& m = *root.value();
  EXPECT_EQ(m.Children("uses-permission").size(), 2u);
  ASSERT_NE(m.FirstChild("argument"), nullptr);
  EXPECT_EQ(m.FirstChild("argument")->Attr("required"), "true");
  ASSERT_NE(m.FirstChild("label"), nullptr);
  EXPECT_EQ(m.FirstChild("label")->text, "Survey App");
  EXPECT_EQ(m.FirstChild("nope"), nullptr);
}

TEST(XmlTest, SkipsDeclarationAndComments) {
  auto root = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- AnDrone manifest -->\n"
      "<manifest><!-- inner --><a/></manifest>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->children.size(), 1u);
}

TEST(XmlTest, DecodesEntities) {
  auto root = ParseXml("<a v=\"&lt;&amp;&gt;\">x &quot;y&quot; &apos;z&apos;</a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->Attr("v"), "<&>");
  EXPECT_EQ(root.value()->text, "x \"y\" 'z'");
}

TEST(XmlTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a b></a>").ok());
  EXPECT_FALSE(ParseXml("<a b=c/>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());
}

TEST(XmlTest, DumpRoundTrips) {
  auto root = ParseXml(
      "<manifest package=\"com.example.survey\">"
      "<uses-permission name=\"camera\" type=\"waypoint\"/>"
      "<argument name=\"area\" type=\"polygon\" required=\"false\"/>"
      "</manifest>");
  ASSERT_TRUE(root.ok());
  auto again = ParseXml(root.value()->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->name, "manifest");
  EXPECT_EQ(again.value()->Attr("package"), "com.example.survey");
  EXPECT_EQ(again.value()->children.size(), 2u);
}

// Property test: randomly generated manifest-like trees survive
// dump -> parse -> dump. Text content is generated without surrounding
// whitespace (the parser trims it by design), but attribute values and text
// deliberately include every escapable character.
std::string RandomXmlName(Rng& rng) {
  static const char* kNames[] = {"manifest", "uses-permission", "argument",
                                 "label",    "service",         "intent"};
  return kNames[rng.NextU64Below(6)];
}

std::string RandomXmlValue(Rng& rng) {
  static const char kAlphabet[] = "abcXYZ019<>&\"'-._";
  std::string out;
  size_t len = rng.NextU64Below(10);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.NextU64Below(sizeof(kAlphabet) - 1)];
  }
  return out;
}

// Words joined by single spaces: internal whitespace survives the
// round-trip, surrounding whitespace would not (ParseXml trims it).
std::string RandomXmlText(Rng& rng) {
  std::string out;
  size_t words = rng.NextU64Below(3);
  for (size_t i = 0; i < words; ++i) {
    if (!out.empty()) {
      out += ' ';
    }
    std::string word = RandomXmlValue(rng);
    out += word.empty() ? "w" : word;
  }
  return out;
}

std::unique_ptr<XmlElement> RandomXmlTree(Rng& rng, int depth) {
  auto el = std::make_unique<XmlElement>();
  el->name = RandomXmlName(rng);
  size_t attrs = rng.NextU64Below(4);
  for (size_t i = 0; i < attrs; ++i) {
    el->attributes["a" + std::to_string(i)] = RandomXmlValue(rng);
  }
  size_t kids = depth >= 3 ? 0 : rng.NextU64Below(4);
  for (size_t i = 0; i < kids; ++i) {
    el->children.push_back(RandomXmlTree(rng, depth + 1));
  }
  el->text = RandomXmlText(rng);
  return el;
}

::testing::AssertionResult SameXml(const XmlElement& a, const XmlElement& b,
                                   const std::string& path) {
  if (a.name != b.name) {
    return ::testing::AssertionFailure()
           << path << ": name " << a.name << " vs " << b.name;
  }
  if (a.attributes != b.attributes) {
    return ::testing::AssertionFailure() << path << ": attributes differ";
  }
  if (a.text != b.text) {
    return ::testing::AssertionFailure()
           << path << ": text \"" << a.text << "\" vs \"" << b.text << "\"";
  }
  if (a.children.size() != b.children.size()) {
    return ::testing::AssertionFailure()
           << path << ": " << a.children.size() << " vs " << b.children.size()
           << " children";
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    auto child = SameXml(*a.children[i], *b.children[i],
                         path + "/" + a.name + "[" + std::to_string(i) + "]");
    if (!child) {
      return child;
    }
  }
  return ::testing::AssertionSuccess();
}

class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripTest, DumpParseDumpIsStable) {
  Rng rng(GetParam());
  std::unique_ptr<XmlElement> tree = RandomXmlTree(rng, 0);
  std::string once = tree->Dump();
  auto parsed = ParseXml(once);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message() << "\n" << once;
  EXPECT_TRUE(SameXml(*tree, *parsed.value(), ""));
  EXPECT_EQ(parsed.value()->Dump(), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace androne
