#include "src/util/xml.h"

#include <gtest/gtest.h>

namespace androne {
namespace {

TEST(XmlTest, ParsesSimpleElement) {
  auto root = ParseXml("<manifest/>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->name, "manifest");
  EXPECT_TRUE(root.value()->children.empty());
}

TEST(XmlTest, ParsesAttributes) {
  auto root = ParseXml(R"(<uses-permission name="camera" type='waypoint'/>)");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->Attr("name"), "camera");
  EXPECT_EQ(root.value()->Attr("type"), "waypoint");
  EXPECT_EQ(root.value()->Attr("missing", "dflt"), "dflt");
}

TEST(XmlTest, ParsesNestedChildrenAndText) {
  auto root = ParseXml(
      "<manifest>"
      "  <uses-permission name=\"camera\" type=\"waypoint\"/>"
      "  <uses-permission name=\"gps\" type=\"continuous\"/>"
      "  <argument name=\"survey-areas\" type=\"polygon\" required=\"true\"/>"
      "  <label> Survey App </label>"
      "</manifest>");
  ASSERT_TRUE(root.ok());
  const XmlElement& m = *root.value();
  EXPECT_EQ(m.Children("uses-permission").size(), 2u);
  ASSERT_NE(m.FirstChild("argument"), nullptr);
  EXPECT_EQ(m.FirstChild("argument")->Attr("required"), "true");
  ASSERT_NE(m.FirstChild("label"), nullptr);
  EXPECT_EQ(m.FirstChild("label")->text, "Survey App");
  EXPECT_EQ(m.FirstChild("nope"), nullptr);
}

TEST(XmlTest, SkipsDeclarationAndComments) {
  auto root = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- AnDrone manifest -->\n"
      "<manifest><!-- inner --><a/></manifest>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->children.size(), 1u);
}

TEST(XmlTest, DecodesEntities) {
  auto root = ParseXml("<a v=\"&lt;&amp;&gt;\">x &quot;y&quot; &apos;z&apos;</a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value()->Attr("v"), "<&>");
  EXPECT_EQ(root.value()->text, "x \"y\" 'z'");
}

TEST(XmlTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a b></a>").ok());
  EXPECT_FALSE(ParseXml("<a b=c/>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());
}

TEST(XmlTest, DumpRoundTrips) {
  auto root = ParseXml(
      "<manifest package=\"com.example.survey\">"
      "<uses-permission name=\"camera\" type=\"waypoint\"/>"
      "<argument name=\"area\" type=\"polygon\" required=\"false\"/>"
      "</manifest>");
  ASSERT_TRUE(root.ok());
  auto again = ParseXml(root.value()->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->name, "manifest");
  EXPECT_EQ(again.value()->Attr("package"), "com.example.survey");
  EXPECT_EQ(again.value()->children.size(), 2u);
}

}  // namespace
}  // namespace androne
