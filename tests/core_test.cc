#include <gtest/gtest.h>

#include <cmath>

#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/core/drone.h"
#include "src/core/sdk.h"
#include "src/core/vdc.h"
#include "src/services/device_services.h"
#include "src/services/permissions.h"

namespace androne {
namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};
const GeoPoint kWaypointA{43.6084298, -85.8110359, 15};
const GeoPoint kWaypointB{43.6076409, -85.8154457, 15};

const char kSurveyManifest[] = R"(
<androne-manifest package="com.example.survey">
  <uses-permission name="camera" type="waypoint"/>
  <uses-permission name="flight-control" type="waypoint"/>
  <argument name="passes" type="number" required="false"/>
</androne-manifest>)";

const char kTrafficManifest[] = R"(
<androne-manifest package="com.example.traffic">
  <uses-permission name="camera" type="continuous"/>
  <uses-permission name="gps" type="continuous"/>
</androne-manifest>)";

// A well-behaved survey app: on waypointActive it captures frames through
// the shared CameraService, writes a report, marks it for the user, and
// completes the waypoint. It releases the camera on waypointInactive.
class SurveyApp : public AndroneApp {
 public:
  SurveyApp() : AndroneApp("com.example.survey", 0) {}

  int frames_captured = 0;
  int activations = 0;
  bool saw_inactive = false;

  void WaypointActive(const WaypointSpec& waypoint) override {
    (void)waypoint;
    ++activations;
    auto camera = SmGetService(proc(), kCameraServiceName);
    if (!camera.ok()) {
      return;
    }
    camera_handle_ = *camera;
    Parcel req;
    if (!proc()->Transact(camera_handle_, kCamConnect, req).ok()) {
      return;
    }
    int passes = static_cast<int>(args().GetIntOr("passes", 3));
    for (int i = 0; i < passes; ++i) {
      auto frame = proc()->Transact(camera_handle_, kCamCapture, req);
      if (frame.ok()) {
        ++frames_captured;
      }
    }
    container()->WriteFile("/data/data/com.example.survey/report.json",
                           "{\"frames\":" + std::to_string(frames_captured) +
                               "}");
    (void)sdk()->MarkFileForUser(
        "/data/data/com.example.survey/report.json");
    sdk()->WaypointCompleted();
  }

  void WaypointInactive(const WaypointSpec& waypoint) override {
    (void)waypoint;
    saw_inactive = true;
    Parcel req;
    (void)proc()->Transact(camera_handle_, kCamDisconnect, req);
  }

 protected:
  JsonValue OnSaveInstanceState() override {
    JsonObject state;
    state["frames"] = frames_captured;
    return JsonValue(std::move(state));
  }
  void OnRestoreInstanceState(const JsonValue& state) override {
    frames_captured = static_cast<int>(state.GetIntOr("frames", 0));
  }

 private:
  BinderHandle camera_handle_ = 0;
};

// A rogue app that keeps the camera connected after revocation.
class RogueApp : public AndroneApp {
 public:
  RogueApp() : AndroneApp("com.example.rogue", 0) {}

  void WaypointActive(const WaypointSpec&) override {
    auto camera = SmGetService(proc(), kCameraServiceName);
    if (camera.ok()) {
      Parcel req;
      (void)proc()->Transact(*camera, kCamConnect, req);
    }
  }
  // Deliberately ignores WaypointInactive: never disconnects.
};

const char kRogueManifest[] = R"(
<androne-manifest package="com.example.rogue">
  <uses-permission name="camera" type="waypoint"/>
</androne-manifest>)";

VirtualDroneDefinition SurveyDefinition(const std::string& id) {
  VirtualDroneDefinition def;
  def.id = id;
  def.owner = "alice";
  def.waypoints = {WaypointSpec{kWaypointA, 40}};
  def.max_duration_s = 300;
  def.energy_allotted_j = 45000;
  def.waypoint_devices = {"camera", "flight-control"};
  def.apps = {"com.example.survey"};
  JsonObject args;
  JsonObject survey;
  survey["passes"] = 4;
  args["com.example.survey"] = JsonValue(survey);
  def.app_args = JsonValue(std::move(args));
  return def;
}

class DroneFixture : public ::testing::Test {
 protected:
  DroneFixture() : system_(&clock_, MakeOptions()) {
    Status boot = system_.Boot();
    EXPECT_TRUE(boot.ok()) << boot;
    system_.vdc().RegisterAppFactory(
        "com.example.survey", [] { return std::make_unique<SurveyApp>(); },
        kSurveyManifest);
    system_.vdc().RegisterAppFactory(
        "com.example.rogue", [] { return std::make_unique<RogueApp>(); },
        kRogueManifest);
  }

  static AnDroneOptions MakeOptions() {
    AnDroneOptions options;
    options.base = kBase;
    options.seed = 11;
    return options;
  }

  SimClock clock_;
  AnDroneSystem system_;
};

TEST_F(DroneFixture, BootBringsUpTheArchitecture) {
  EXPECT_TRUE(system_.runtime().FindByName("device").ok());
  EXPECT_TRUE(system_.runtime().FindByName("flight").ok());
  // Flight controller reads sensors through the Binder HAL bridge; its
  // estimator should have a GPS fix after warmup.
  EXPECT_TRUE(system_.flight().estimator().position().valid);
  // Memory matches the base + dev/flight configuration band.
  EXPECT_NEAR(system_.runtime().MemoryUsageMb(), 245, 25);
}

TEST_F(DroneFixture, DeployCreatesContainerAppsAndVfc) {
  auto vd = system_.Deploy(SurveyDefinition("vd-1"));
  ASSERT_TRUE(vd.ok()) << vd.status();
  EXPECT_EQ((*vd)->container->state(), ContainerState::kRunning);
  EXPECT_EQ((*vd)->apps.size(), 1u);
  EXPECT_NE(system_.VfcOf("vd-1"), nullptr);
  // Shared services visible in the tenant's namespace.
  EXPECT_TRUE((*vd)->stack.service_manager->HasService(kCameraServiceName));
}

TEST_F(DroneFixture, DeployUnknownAppFails) {
  VirtualDroneDefinition def = SurveyDefinition("vd-x");
  def.apps = {"com.example.unregistered"};
  def.app_args = JsonValue(JsonObject{});
  EXPECT_EQ(system_.Deploy(def).status().code(), StatusCode::kNotFound);
}

TEST_F(DroneFixture, DevicePolicyFollowsWaypointState) {
  auto vd = system_.Deploy(SurveyDefinition("vd-1"));
  ASSERT_TRUE(vd.ok());
  ContainerId cid = (*vd)->container->id();
  // Before the waypoint: no camera.
  EXPECT_FALSE(system_.vdc().AllowsDevicePermission(cid, kPermCamera));
  EXPECT_FALSE(system_.vdc().AllowsFlightControl("vd-1"));
  // At the waypoint: both (the survey app auto-completes, so check state
  // inside the notification via a probe listener instead).
  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-1", 0).ok());
  // The app already completed and requested tenancy end, but access stays
  // until NotifyWaypointLeft.
  EXPECT_TRUE(system_.vdc().AllowsDevicePermission(cid, kPermCamera));
  EXPECT_TRUE(system_.vdc().AllowsFlightControl("vd-1"));
  ASSERT_TRUE(system_.vdc()
                  .NotifyWaypointLeft("vd-1", TenancyEndReason::kCompleted)
                  .ok());
  EXPECT_FALSE(system_.vdc().AllowsDevicePermission(cid, kPermCamera));
  EXPECT_FALSE(system_.vdc().AllowsFlightControl("vd-1"));
}

TEST_F(DroneFixture, SurveyAppCapturesAndMarksFiles) {
  auto vd = system_.Deploy(SurveyDefinition("vd-1"));
  ASSERT_TRUE(vd.ok());
  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-1", 0).ok());
  auto* app = static_cast<SurveyApp*>((*vd)->apps[0].get());
  EXPECT_EQ(app->frames_captured, 4);  // "passes" argument honored.
  EXPECT_EQ((*vd)->files_for_user.size(), 1u);
  ASSERT_TRUE(system_.vdc()
                  .NotifyWaypointLeft("vd-1", TenancyEndReason::kCompleted)
                  .ok());
  EXPECT_TRUE(app->saw_inactive);
  // Offload lands in per-user cloud storage.
  ASSERT_TRUE(system_.vdc().OffloadFiles("vd-1").ok());
  auto files = system_.cloud_storage().ListUserFiles("alice");
  ASSERT_EQ(files.size(), 1u);
  auto content = system_.cloud_storage().Get("alice", files[0]);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("\"frames\":4"), std::string::npos);
}

TEST_F(DroneFixture, RogueAppProcessIsTerminated) {
  VirtualDroneDefinition def;
  def.id = "vd-rogue";
  def.owner = "mallory";
  def.waypoints = {WaypointSpec{kWaypointA, 40}};
  def.max_duration_s = 300;
  def.energy_allotted_j = 45000;
  def.waypoint_devices = {"camera"};
  def.apps = {"com.example.rogue"};
  auto vd = system_.Deploy(def);
  ASSERT_TRUE(vd.ok()) << vd.status();
  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-rogue", 0).ok());
  Pid rogue_pid = (*vd)->app_pids["com.example.rogue"];
  // Rogue holds the camera.
  EXPECT_FALSE(
      system_.device_stack().camera_service->ActivePids((*vd)->container->id())
          .empty());
  ASSERT_TRUE(system_.vdc()
                  .NotifyWaypointLeft("vd-rogue", TenancyEndReason::kCompleted)
                  .ok());
  // The VDC killed the process that refused to let go (paper §4.4).
  bool still_running = false;
  for (const ContainerProcess& p : (*vd)->container->processes()) {
    still_running |= p.pid == rogue_pid;
  }
  EXPECT_FALSE(still_running);
  EXPECT_TRUE(system_.device_stack()
                  .camera_service->ActivePids((*vd)->container->id())
                  .empty());
}

TEST_F(DroneFixture, ContinuousDevicesSuspendedDuringOtherTenancy) {
  // Traffic tenant with continuous camera+gps over two waypoints.
  system_.vdc().RegisterAppFactory(
      "com.example.traffic", [] { return std::make_unique<RogueApp>(); },
      kTrafficManifest);
  VirtualDroneDefinition traffic;
  traffic.id = "vd-traffic";
  traffic.owner = "bob";
  traffic.waypoints = {WaypointSpec{kWaypointA, 40},
                       WaypointSpec{kWaypointB, 40}};
  traffic.max_duration_s = 600;
  traffic.energy_allotted_j = 90000;
  traffic.continuous_devices = {"camera", "gps"};
  auto tvd = system_.Deploy(traffic);
  ASSERT_TRUE(tvd.ok()) << tvd.status();
  ContainerId tcid = (*tvd)->container->id();

  auto svd = system_.Deploy(SurveyDefinition("vd-1"));
  ASSERT_TRUE(svd.ok());

  // Before its first waypoint: no continuous access yet.
  EXPECT_FALSE(system_.vdc().AllowsDevicePermission(tcid, kPermGps));
  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-traffic", 0).ok());
  EXPECT_TRUE(system_.vdc().AllowsDevicePermission(tcid, kPermGps));
  ASSERT_TRUE(system_.vdc()
                  .NotifyWaypointLeft("vd-traffic",
                                      TenancyEndReason::kCompleted)
                  .ok());
  // Between its waypoints: continuous access persists.
  EXPECT_TRUE(system_.vdc().AllowsDevicePermission(tcid, kPermCamera));

  // While the *other* tenant operates at its waypoint, continuous access is
  // suspended (privacy default, paper §2).
  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-1", 0).ok());
  EXPECT_FALSE(system_.vdc().AllowsDevicePermission(tcid, kPermCamera));
  EXPECT_TRUE((*tvd)->suspended);
  ASSERT_TRUE(system_.vdc()
                  .NotifyWaypointLeft("vd-1", TenancyEndReason::kCompleted)
                  .ok());
  EXPECT_TRUE(system_.vdc().AllowsDevicePermission(tcid, kPermCamera));
  EXPECT_FALSE((*tvd)->suspended);

  // After its last waypoint: continuous access ends.
  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-traffic", 1).ok());
  ASSERT_TRUE(system_.vdc()
                  .NotifyWaypointLeft("vd-traffic",
                                      TenancyEndReason::kCompleted)
                  .ok());
  EXPECT_FALSE(system_.vdc().AllowsDevicePermission(tcid, kPermCamera));
}

TEST_F(DroneFixture, OnlyOneActiveTenancyAtATime) {
  auto a = system_.Deploy(SurveyDefinition("vd-1"));
  VirtualDroneDefinition def2 = SurveyDefinition("vd-2");
  auto b = system_.Deploy(def2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-1", 0).ok());
  EXPECT_EQ(system_.vdc().NotifyWaypointReached("vd-2", 0).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DroneFixture, AccountingWarnsAndExhausts) {
  VirtualDroneDefinition def = SurveyDefinition("vd-1");
  def.apps.clear();
  def.app_args = JsonValue(JsonObject{});
  def.energy_allotted_j = 170.0 * 30;  // 30 seconds of tenancy power.
  def.max_duration_s = 1000;
  auto vd = system_.Deploy(def);
  ASSERT_TRUE(vd.ok());

  struct Probe : WaypointListener {
    double low_energy = -1;
    void LowEnergyWarning(double remaining) override { low_energy = remaining; }
  } probe;
  (*vd)->sdk->RegisterWaypointListener(&probe);

  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-1", 0).ok());
  std::string ended;
  TenancyEndReason reason = TenancyEndReason::kCompleted;
  system_.vdc().SetTenancyEndCallback(
      [&](const std::string& id, TenancyEndReason r) {
        ended = id;
        reason = r;
      });
  // The boot-installed 1 Hz accounting tick drains the allotment.
  system_.RunClockUntil([&] { return !ended.empty(); }, Seconds(60));
  EXPECT_EQ(ended, "vd-1");
  EXPECT_EQ(reason, TenancyEndReason::kEnergyExhausted);
  EXPECT_GE(probe.low_energy, 0);  // Warning fired on the way down.
  EXPECT_TRUE((*vd)->exhausted);
  EXPECT_FALSE(system_.vdc().AllowsFlightControl("vd-1"));
}

TEST_F(DroneFixture, StoreToVdrAndResumeOnNewDrone) {
  auto vd = system_.Deploy(SurveyDefinition("vd-1"));
  ASSERT_TRUE(vd.ok());
  ASSERT_TRUE(system_.vdc().NotifyWaypointReached("vd-1", 0).ok());
  ASSERT_TRUE(system_.vdc()
                  .NotifyWaypointLeft("vd-1", TenancyEndReason::kInterrupted)
                  .ok());
  ASSERT_TRUE(system_.vdc().StoreToVdr("vd-1", /*resumable=*/true).ok());
  auto stored = system_.vdr().Load("vd-1");
  ASSERT_TRUE(stored.ok());
  EXPECT_TRUE(stored->resumable);
  EXPECT_FALSE(stored->image.empty());

  // "Another physical drone": a fresh system sharing the same VDR would
  // import the image; here we verify the image re-imports with app state.
  auto imported = system_.runtime().images()->Import(stored->image);
  ASSERT_TRUE(imported.ok());
  auto view = system_.runtime().images()->Flatten(*imported);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->count("/data/data/com.example.survey/saved_state.json"),
            1u);
}

// ---------------- The §6.6 multi-waypoint flight simulation ----------------

TEST_F(DroneFixture, MultiTenantFlightEndToEnd) {
  // Tenant 1: autonomous survey app (camera + flight control at waypoint A).
  auto survey = system_.Deploy(SurveyDefinition("vd-1"));
  ASSERT_TRUE(survey.ok());

  // Tenant 2: direct access at waypoint B (flight control, no apps).
  VirtualDroneDefinition direct;
  direct.id = "vd-2";
  direct.owner = "carol";
  direct.waypoints = {WaypointSpec{kWaypointB, 30}};
  direct.max_duration_s = 40;  // Short tenancy; never calls completed.
  direct.energy_allotted_j = 90000;
  direct.waypoint_devices = {"camera", "flight-control"};
  auto direct_vd = system_.Deploy(direct, WhitelistTemplate::kFull);
  ASSERT_TRUE(direct_vd.ok());

  // Plan the flight over both tenants' waypoints.
  PlannerConfig pc;
  pc.depot = kBase;
  pc.fleet_size = 1;
  pc.annealing_iterations = 2000;
  FlightPlanner planner((EnergyModel()), pc);
  std::vector<PlannerJob> jobs;
  PlannerJob j1;
  j1.vdrone_id = 1;
  j1.vdrone_ref = "vd-1";
  j1.waypoint_index = 0;
  j1.waypoint = kWaypointA;
  j1.service_energy_j = 45000;
  j1.service_time_s = 30;
  PlannerJob j2 = j1;
  j2.vdrone_id = 2;
  j2.vdrone_ref = "vd-2";
  j2.waypoint = kWaypointB;
  j2.service_time_s = 40;
  jobs = {j1, j2};
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->routes.size(), 1u);
  ASSERT_EQ(plan->routes[0].stops.size(), 2u);

  // Fly it.
  auto report = system_.ExecuteRoute(plan->routes[0], jobs);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->waypoints_visited, 2u);
  EXPECT_GT(report->flight_time_s, 30);
  EXPECT_GT(report->battery_used_j, 10000);  // Flight is expensive.

  // The survey app ran at its waypoint and its file reached the cloud.
  auto* app = static_cast<SurveyApp*>((*survey)->apps[0].get());
  EXPECT_EQ(app->activations, 1);
  EXPECT_EQ(app->frames_captured, 4);
  EXPECT_FALSE(system_.cloud_storage().ListUserFiles("alice").empty());

  // Both tenants were saved to the VDR.
  EXPECT_TRUE(system_.vdr().Contains("vd-1"));
  EXPECT_TRUE(system_.vdr().Contains("vd-2"));

  // The drone is back on the ground at base, disarmed.
  EXPECT_FALSE(system_.flight().armed());
  EXPECT_LT(HaversineMeters(system_.physics().truth().position, kBase), 5.0);

  // Flight stability: the AED analyzer finds no sustained divergence.
  AedResult aed = AnalyzeAttitudeDivergence(system_.flight().flight_log());
  EXPECT_FALSE(aed.unstable);
}

TEST_F(DroneFixture, FourthVirtualDroneFailsToDeploy) {
  for (int i = 1; i <= 3; ++i) {
    VirtualDroneDefinition def = SurveyDefinition("vd-" + std::to_string(i));
    ASSERT_TRUE(system_.Deploy(def).ok()) << i;
  }
  VirtualDroneDefinition def4 = SurveyDefinition("vd-4");
  auto result = system_.Deploy(def4);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // The existing three are untouched (paper §6.3).
  for (int i = 1; i <= 3; ++i) {
    auto vd = system_.vdc().Find("vd-" + std::to_string(i));
    ASSERT_TRUE(vd.ok());
    EXPECT_EQ((*vd)->container->state(), ContainerState::kRunning);
  }
}

}  // namespace
}  // namespace androne
