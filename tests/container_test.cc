#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/container/image_store.h"
#include "src/container/runtime.h"

namespace androne {
namespace {

LayerFiles BaseFiles() {
  return LayerFiles{
      {"/system/build.prop", {"android-things-1.0.3", false}},
      {"/system/framework.jar", {std::string(1000, 'f'), false}},
  };
}

class ImageStoreTest : public ::testing::Test {
 protected:
  ImageStore store_;
};

TEST_F(ImageStoreTest, CreateAndFlatten) {
  LayerId base = store_.AddLayer(BaseFiles());
  auto image = store_.CreateImage("things-base", {base});
  ASSERT_TRUE(image.ok());
  auto view = store_.Flatten(*image);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->at("/system/build.prop"), "android-things-1.0.3");
}

TEST_F(ImageStoreTest, UpperLayersOverrideAndTombstone) {
  LayerId base = store_.AddLayer(BaseFiles());
  LayerId upper = store_.AddLayer(LayerFiles{
      {"/system/build.prop", {"patched", false}},
      {"/system/framework.jar", {"", true}},  // Deleted.
      {"/data/app.apk", {"apk-bytes", false}},
  });
  auto image = store_.CreateImage("patched", {base, upper});
  ASSERT_TRUE(image.ok());
  auto view = store_.Flatten(*image);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->at("/system/build.prop"), "patched");
  EXPECT_EQ(view->count("/system/framework.jar"), 0u);
  EXPECT_EQ(view->at("/data/app.apk"), "apk-bytes");
}

TEST_F(ImageStoreTest, DuplicateNameRejected) {
  LayerId base = store_.AddLayer(BaseFiles());
  ASSERT_TRUE(store_.CreateImage("img", {base}).ok());
  EXPECT_EQ(store_.CreateImage("img", {base}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ImageStoreTest, UnknownLayerRejected) {
  EXPECT_EQ(store_.CreateImage("img", {999}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ImageStoreTest, SharedBaseCountedOnce) {
  LayerId base = store_.AddLayer(BaseFiles());
  auto base_img = store_.CreateImage("base", {base});
  ASSERT_TRUE(base_img.ok());
  // Three virtual drones, each a small diff on the same base.
  std::vector<ImageId> images;
  for (int i = 0; i < 3; ++i) {
    auto img = store_.CommitDiff(*base_img,
                                 LayerFiles{{"/data/vd" + std::to_string(i),
                                             {"state", false}}},
                                 "vd" + std::to_string(i));
    ASSERT_TRUE(img.ok());
    images.push_back(*img);
  }
  auto unique = store_.UniqueStorageBytes(images);
  ASSERT_TRUE(unique.ok());
  auto base_size = store_.LayerSizeBytes(base);
  ASSERT_TRUE(base_size.ok());
  // Far smaller than 3x the base: base shared, diffs tiny.
  EXPECT_LT(*unique, *base_size + 300);
  EXPECT_GE(*unique, *base_size);
}

TEST_F(ImageStoreTest, ExportImportRoundTrip) {
  LayerId base = store_.AddLayer(BaseFiles());
  auto img = store_.CreateImage("base", {base});
  ASSERT_TRUE(img.ok());
  auto vd = store_.CommitDiff(
      *img, LayerFiles{{"/data/state.json", {"{\"x\":1}", false}}}, "vd");
  ASSERT_TRUE(vd.ok());

  auto bytes = store_.Export(*vd);
  ASSERT_TRUE(bytes.ok());

  ImageStore other;  // A different physical drone.
  auto imported = other.Import(*bytes);
  ASSERT_TRUE(imported.ok());
  auto view = other.Flatten(*imported);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->at("/data/state.json"), "{\"x\":1}");
  EXPECT_EQ(view->at("/system/build.prop"), "android-things-1.0.3");
}

TEST_F(ImageStoreTest, ImportRejectsGarbage) {
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5};
  EXPECT_FALSE(store_.Import(garbage).ok());
}

TEST_F(ImageStoreTest, ImportDisambiguatesNames) {
  LayerId base = store_.AddLayer(BaseFiles());
  auto img = store_.CreateImage("base", {base});
  ASSERT_TRUE(img.ok());
  auto bytes = store_.Export(*img);
  ASSERT_TRUE(bytes.ok());
  auto again = store_.Import(*bytes);  // Same store: name collision.
  ASSERT_TRUE(again.ok());
  EXPECT_NE(*again, *img);
}

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : runtime_(&driver_, &store_) {
    LayerId base = store_.AddLayer(BaseFiles());
    image_ = store_.CreateImage("things-base", {base}).value();
  }

  BinderDriver driver_;
  ImageStore store_;
  ContainerRuntime runtime_;
  ImageId image_;
};

TEST_F(RuntimeTest, LifecycleAndProcesses) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->state(), ContainerState::kCreated);
  EXPECT_DOUBLE_EQ((*c)->MemoryUsageMb(), 0.0);

  ASSERT_TRUE(runtime_.StartContainer((*c)->id()).ok());
  EXPECT_EQ((*c)->state(), ContainerState::kRunning);
  EXPECT_EQ((*c)->processes().size(), 5u);  // Android Things boot set.
  EXPECT_TRUE((*c)->FindProcess("system_server").ok());

  ASSERT_TRUE(runtime_.StopContainer((*c)->id()).ok());
  EXPECT_EQ((*c)->state(), ContainerState::kStopped);
  EXPECT_TRUE((*c)->processes().empty());
  EXPECT_EQ(driver_.process_count(), 0u);
}

TEST_F(RuntimeTest, MemoryModelMatchesFig12) {
  // Base system.
  EXPECT_NEAR(runtime_.MemoryUsageMb(), 95, 10);

  auto dev = runtime_.CreateContainer("device", ContainerKind::kDevice, image_);
  auto flight = runtime_.CreateContainer("flight", ContainerKind::kFlight,
                                         image_);
  ASSERT_TRUE(runtime_.StartContainer((*dev)->id()).ok());
  ASSERT_TRUE(runtime_.StartContainer((*flight)->id()).ok());
  // Dev + flight add ~150 MB.
  EXPECT_NEAR(runtime_.MemoryUsageMb(), 95 + 150, 20);

  double before = runtime_.MemoryUsageMb();
  auto vd = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                     image_);
  ASSERT_TRUE(runtime_.StartContainer((*vd)->id()).ok());
  // Each virtual drone adds ~185 MB.
  EXPECT_NEAR(runtime_.MemoryUsageMb() - before, 185, 15);
}

TEST_F(RuntimeTest, FourthVirtualDroneFailsWithoutDisturbingOthers) {
  auto dev = runtime_.CreateContainer("device", ContainerKind::kDevice, image_);
  auto flight = runtime_.CreateContainer("flight", ContainerKind::kFlight,
                                         image_);
  ASSERT_TRUE(runtime_.StartContainer((*dev)->id()).ok());
  ASSERT_TRUE(runtime_.StartContainer((*flight)->id()).ok());
  std::vector<Container*> vds;
  for (int i = 1; i <= 3; ++i) {
    auto vd = runtime_.CreateContainer("vd" + std::to_string(i),
                                       ContainerKind::kVirtualDrone, image_);
    ASSERT_TRUE(vd.ok());
    ASSERT_TRUE(runtime_.StartContainer((*vd)->id()).ok()) << i;
    vds.push_back(*vd);
  }
  // The 4th exceeds the 880 MB budget (paper §6.3).
  auto vd4 = runtime_.CreateContainer("vd4", ContainerKind::kVirtualDrone,
                                      image_);
  ASSERT_TRUE(vd4.ok());
  Status s = runtime_.StartContainer((*vd4)->id());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  for (Container* vd : vds) {
    EXPECT_EQ(vd->state(), ContainerState::kRunning);
  }
  EXPECT_LE(runtime_.MemoryUsageMb(), kUsableMemoryMb);
}

TEST_F(RuntimeTest, CopyOnWriteFilesystem) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  ASSERT_TRUE(c.ok());
  Container* vd = *c;
  // Reads fall through to the image.
  EXPECT_EQ(vd->ReadFile("/system/build.prop").value(),
            "android-things-1.0.3");
  // Writes go to the writable layer only.
  vd->WriteFile("/data/prefs.xml", "<prefs/>");
  EXPECT_EQ(vd->ReadFile("/data/prefs.xml").value(), "<prefs/>");
  // Deleting an image file hides it.
  vd->DeleteFile("/system/framework.jar");
  EXPECT_FALSE(vd->ReadFile("/system/framework.jar").ok());
  // The base image itself is untouched.
  EXPECT_EQ(store_.Flatten(image_)->count("/system/framework.jar"), 1u);
}

TEST_F(RuntimeTest, CommitPersistsWritableLayer) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  Container* vd = *c;
  vd->WriteFile("/data/state.json", "{\"progress\":0.4}");
  auto committed = runtime_.Commit(vd->id(), "vd1-checkpoint");
  ASSERT_TRUE(committed.ok());
  auto view = store_.Flatten(*committed);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->at("/data/state.json"), "{\"progress\":0.4}");
}

TEST_F(RuntimeTest, SpawnAndKillProcess) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  ASSERT_TRUE(runtime_.StartContainer((*c)->id()).ok());
  auto app = runtime_.SpawnProcess((*c)->id(), "com.example.survey", 10001);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ((*c)->processes().size(), 6u);
  EXPECT_TRUE(app->binder->alive());

  ASSERT_TRUE(runtime_.KillProcess(app->pid).ok());
  EXPECT_EQ((*c)->processes().size(), 5u);
  EXPECT_FALSE(runtime_.KillProcess(app->pid).ok());
}

TEST_F(RuntimeTest, SpawnInStoppedContainerFails) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  auto app = runtime_.SpawnProcess((*c)->id(), "app", 10001);
  EXPECT_EQ(app.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeTest, RemoveRequiresStopped) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  const ContainerId id = (*c)->id();
  ASSERT_TRUE(runtime_.StartContainer(id).ok());
  EXPECT_EQ(runtime_.RemoveContainer(id).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(runtime_.StopContainer(id).ok());
  EXPECT_TRUE(runtime_.RemoveContainer(id).ok());
  EXPECT_FALSE(runtime_.Find(id).ok());
}

TEST_F(RuntimeTest, DuplicateContainerNameRejected) {
  ASSERT_TRUE(runtime_.CreateContainer("x", ContainerKind::kVirtualDrone,
                                       image_).ok());
  EXPECT_EQ(runtime_.CreateContainer("x", ContainerKind::kVirtualDrone, image_)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RuntimeTest, FindByName) {
  auto c = runtime_.CreateContainer("flight", ContainerKind::kFlight, image_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(runtime_.FindByName("flight").value(), *c);
  EXPECT_FALSE(runtime_.FindByName("nope").ok());
}

}  // namespace
}  // namespace androne
