#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/container/image_store.h"
#include "src/container/runtime.h"
#include "src/container/supervisor.h"

namespace androne {
namespace {

LayerFiles BaseFiles() {
  return LayerFiles{
      {"/system/build.prop", {"android-things-1.0.3", false}},
      {"/system/framework.jar", {std::string(1000, 'f'), false}},
  };
}

class ImageStoreTest : public ::testing::Test {
 protected:
  ImageStore store_;
};

TEST_F(ImageStoreTest, CreateAndFlatten) {
  LayerId base = store_.AddLayer(BaseFiles());
  auto image = store_.CreateImage("things-base", {base});
  ASSERT_TRUE(image.ok());
  auto view = store_.Flatten(*image);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->at("/system/build.prop"), "android-things-1.0.3");
}

TEST_F(ImageStoreTest, UpperLayersOverrideAndTombstone) {
  LayerId base = store_.AddLayer(BaseFiles());
  LayerId upper = store_.AddLayer(LayerFiles{
      {"/system/build.prop", {"patched", false}},
      {"/system/framework.jar", {"", true}},  // Deleted.
      {"/data/app.apk", {"apk-bytes", false}},
  });
  auto image = store_.CreateImage("patched", {base, upper});
  ASSERT_TRUE(image.ok());
  auto view = store_.Flatten(*image);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->at("/system/build.prop"), "patched");
  EXPECT_EQ(view->count("/system/framework.jar"), 0u);
  EXPECT_EQ(view->at("/data/app.apk"), "apk-bytes");
}

TEST_F(ImageStoreTest, DuplicateNameRejected) {
  LayerId base = store_.AddLayer(BaseFiles());
  ASSERT_TRUE(store_.CreateImage("img", {base}).ok());
  EXPECT_EQ(store_.CreateImage("img", {base}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ImageStoreTest, UnknownLayerRejected) {
  EXPECT_EQ(store_.CreateImage("img", {999}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ImageStoreTest, SharedBaseCountedOnce) {
  LayerId base = store_.AddLayer(BaseFiles());
  auto base_img = store_.CreateImage("base", {base});
  ASSERT_TRUE(base_img.ok());
  // Three virtual drones, each a small diff on the same base.
  std::vector<ImageId> images;
  for (int i = 0; i < 3; ++i) {
    auto img = store_.CommitDiff(*base_img,
                                 LayerFiles{{"/data/vd" + std::to_string(i),
                                             {"state", false}}},
                                 "vd" + std::to_string(i));
    ASSERT_TRUE(img.ok());
    images.push_back(*img);
  }
  auto unique = store_.UniqueStorageBytes(images);
  ASSERT_TRUE(unique.ok());
  auto base_size = store_.LayerSizeBytes(base);
  ASSERT_TRUE(base_size.ok());
  // Far smaller than 3x the base: base shared, diffs tiny.
  EXPECT_LT(*unique, *base_size + 300);
  EXPECT_GE(*unique, *base_size);
}

TEST_F(ImageStoreTest, ExportImportRoundTrip) {
  LayerId base = store_.AddLayer(BaseFiles());
  auto img = store_.CreateImage("base", {base});
  ASSERT_TRUE(img.ok());
  auto vd = store_.CommitDiff(
      *img, LayerFiles{{"/data/state.json", {"{\"x\":1}", false}}}, "vd");
  ASSERT_TRUE(vd.ok());

  auto bytes = store_.Export(*vd);
  ASSERT_TRUE(bytes.ok());

  ImageStore other;  // A different physical drone.
  auto imported = other.Import(*bytes);
  ASSERT_TRUE(imported.ok());
  auto view = other.Flatten(*imported);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->at("/data/state.json"), "{\"x\":1}");
  EXPECT_EQ(view->at("/system/build.prop"), "android-things-1.0.3");
}

TEST_F(ImageStoreTest, ImportRejectsGarbage) {
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5};
  EXPECT_FALSE(store_.Import(garbage).ok());
}

TEST_F(ImageStoreTest, ImportDisambiguatesNames) {
  LayerId base = store_.AddLayer(BaseFiles());
  auto img = store_.CreateImage("base", {base});
  ASSERT_TRUE(img.ok());
  auto bytes = store_.Export(*img);
  ASSERT_TRUE(bytes.ok());
  auto again = store_.Import(*bytes);  // Same store: name collision.
  ASSERT_TRUE(again.ok());
  EXPECT_NE(*again, *img);
}

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : runtime_(&driver_, &store_) {
    LayerId base = store_.AddLayer(BaseFiles());
    image_ = store_.CreateImage("things-base", {base}).value();
  }

  BinderDriver driver_;
  ImageStore store_;
  ContainerRuntime runtime_;
  ImageId image_;
};

TEST_F(RuntimeTest, LifecycleAndProcesses) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->state(), ContainerState::kCreated);
  EXPECT_DOUBLE_EQ((*c)->MemoryUsageMb(), 0.0);

  ASSERT_TRUE(runtime_.StartContainer((*c)->id()).ok());
  EXPECT_EQ((*c)->state(), ContainerState::kRunning);
  EXPECT_EQ((*c)->processes().size(), 5u);  // Android Things boot set.
  EXPECT_TRUE((*c)->FindProcess("system_server").ok());

  ASSERT_TRUE(runtime_.StopContainer((*c)->id()).ok());
  EXPECT_EQ((*c)->state(), ContainerState::kStopped);
  EXPECT_TRUE((*c)->processes().empty());
  EXPECT_EQ(driver_.process_count(), 0u);
}

TEST_F(RuntimeTest, MemoryModelMatchesFig12) {
  // Base system.
  EXPECT_NEAR(runtime_.MemoryUsageMb(), 95, 10);

  auto dev = runtime_.CreateContainer("device", ContainerKind::kDevice, image_);
  auto flight = runtime_.CreateContainer("flight", ContainerKind::kFlight,
                                         image_);
  ASSERT_TRUE(runtime_.StartContainer((*dev)->id()).ok());
  ASSERT_TRUE(runtime_.StartContainer((*flight)->id()).ok());
  // Dev + flight add ~150 MB.
  EXPECT_NEAR(runtime_.MemoryUsageMb(), 95 + 150, 20);

  double before = runtime_.MemoryUsageMb();
  auto vd = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                     image_);
  ASSERT_TRUE(runtime_.StartContainer((*vd)->id()).ok());
  // Each virtual drone adds ~185 MB.
  EXPECT_NEAR(runtime_.MemoryUsageMb() - before, 185, 15);
}

TEST_F(RuntimeTest, FourthVirtualDroneFailsWithoutDisturbingOthers) {
  auto dev = runtime_.CreateContainer("device", ContainerKind::kDevice, image_);
  auto flight = runtime_.CreateContainer("flight", ContainerKind::kFlight,
                                         image_);
  ASSERT_TRUE(runtime_.StartContainer((*dev)->id()).ok());
  ASSERT_TRUE(runtime_.StartContainer((*flight)->id()).ok());
  std::vector<Container*> vds;
  for (int i = 1; i <= 3; ++i) {
    auto vd = runtime_.CreateContainer("vd" + std::to_string(i),
                                       ContainerKind::kVirtualDrone, image_);
    ASSERT_TRUE(vd.ok());
    ASSERT_TRUE(runtime_.StartContainer((*vd)->id()).ok()) << i;
    vds.push_back(*vd);
  }
  // The 4th exceeds the 880 MB budget (paper §6.3).
  auto vd4 = runtime_.CreateContainer("vd4", ContainerKind::kVirtualDrone,
                                      image_);
  ASSERT_TRUE(vd4.ok());
  Status s = runtime_.StartContainer((*vd4)->id());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  for (Container* vd : vds) {
    EXPECT_EQ(vd->state(), ContainerState::kRunning);
  }
  EXPECT_LE(runtime_.MemoryUsageMb(), kUsableMemoryMb);
}

TEST_F(RuntimeTest, CopyOnWriteFilesystem) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  ASSERT_TRUE(c.ok());
  Container* vd = *c;
  // Reads fall through to the image.
  EXPECT_EQ(vd->ReadFile("/system/build.prop").value(),
            "android-things-1.0.3");
  // Writes go to the writable layer only.
  vd->WriteFile("/data/prefs.xml", "<prefs/>");
  EXPECT_EQ(vd->ReadFile("/data/prefs.xml").value(), "<prefs/>");
  // Deleting an image file hides it.
  vd->DeleteFile("/system/framework.jar");
  EXPECT_FALSE(vd->ReadFile("/system/framework.jar").ok());
  // The base image itself is untouched.
  EXPECT_EQ(store_.Flatten(image_)->count("/system/framework.jar"), 1u);
}

TEST_F(RuntimeTest, CommitPersistsWritableLayer) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  Container* vd = *c;
  vd->WriteFile("/data/state.json", "{\"progress\":0.4}");
  auto committed = runtime_.Commit(vd->id(), "vd1-checkpoint");
  ASSERT_TRUE(committed.ok());
  auto view = store_.Flatten(*committed);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->at("/data/state.json"), "{\"progress\":0.4}");
}

TEST_F(RuntimeTest, SpawnAndKillProcess) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  ASSERT_TRUE(runtime_.StartContainer((*c)->id()).ok());
  auto app = runtime_.SpawnProcess((*c)->id(), "com.example.survey", 10001);
  ASSERT_TRUE(app.ok());
  EXPECT_EQ((*c)->processes().size(), 6u);
  EXPECT_TRUE(app->binder->alive());

  ASSERT_TRUE(runtime_.KillProcess(app->pid).ok());
  EXPECT_EQ((*c)->processes().size(), 5u);
  EXPECT_FALSE(runtime_.KillProcess(app->pid).ok());
}

TEST_F(RuntimeTest, SpawnInStoppedContainerFails) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  auto app = runtime_.SpawnProcess((*c)->id(), "app", 10001);
  EXPECT_EQ(app.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeTest, RemoveRequiresStopped) {
  auto c = runtime_.CreateContainer("vd1", ContainerKind::kVirtualDrone,
                                    image_);
  const ContainerId id = (*c)->id();
  ASSERT_TRUE(runtime_.StartContainer(id).ok());
  EXPECT_EQ(runtime_.RemoveContainer(id).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(runtime_.StopContainer(id).ok());
  EXPECT_TRUE(runtime_.RemoveContainer(id).ok());
  EXPECT_FALSE(runtime_.Find(id).ok());
}

TEST_F(RuntimeTest, DuplicateContainerNameRejected) {
  ASSERT_TRUE(runtime_.CreateContainer("x", ContainerKind::kVirtualDrone,
                                       image_).ok());
  EXPECT_EQ(runtime_.CreateContainer("x", ContainerKind::kVirtualDrone, image_)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RuntimeTest, FindByName) {
  auto c = runtime_.CreateContainer("flight", ContainerKind::kFlight, image_);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(runtime_.FindByName("flight").value(), *c);
  EXPECT_FALSE(runtime_.FindByName("nope").ok());
}

// --- RestoreSupervisor: restore-with-backoff for crashed worlds ---

RestorePolicy NoJitterPolicy(int max_restores) {
  RestorePolicy policy;
  policy.backoff = BackoffPolicy{Millis(500), 2.0, Seconds(30), 0.0};
  policy.max_restores = max_restores;
  return policy;
}

TEST(RestoreSupervisorTest, BackoffGrowsAcrossRapidCrashesAndCaps) {
  RestoreSupervisor supervisor(NoJitterPolicy(/*max_restores=*/12),
                               /*seed=*/7);
  // Twelve back-to-back crashes with no stable life in between: the streak
  // never resets, so the recorded backoff climbs the geometric ladder and
  // pins at the cap.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(supervisor.BeginRestore(SecondsF(i)));
    supervisor.FinishRestore();
  }
  const std::vector<RestoreEpisode>& episodes = supervisor.episodes();
  ASSERT_EQ(episodes.size(), 12u);
  EXPECT_EQ(episodes[0].backoff_delay, Millis(500));
  EXPECT_EQ(episodes[1].backoff_delay, Millis(1000));
  EXPECT_EQ(episodes[2].backoff_delay, Millis(2000));
  for (size_t i = 1; i < episodes.size(); ++i) {
    EXPECT_GE(episodes[i].backoff_delay, episodes[i - 1].backoff_delay);
    EXPECT_LE(episodes[i].backoff_delay, Seconds(30));
  }
  // 500ms * 2^6 = 32s would pass the 30s cap: episode 6 on is pinned.
  EXPECT_EQ(episodes[6].backoff_delay, Seconds(30));
  EXPECT_EQ(episodes.back().backoff_delay, Seconds(30));
}

TEST(RestoreSupervisorTest, BackoffFloorsAtOneMicrosecond) {
  RestorePolicy policy;
  policy.backoff = BackoffPolicy{/*base=*/0, 2.0, Seconds(1), 0.0};
  policy.max_restores = 4;
  RestoreSupervisor supervisor(policy, /*seed=*/7);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(supervisor.BeginRestore(-1));
    supervisor.FinishRestore();
  }
  for (const RestoreEpisode& episode : supervisor.episodes()) {
    EXPECT_GE(episode.backoff_delay, Micros(1));
  }
}

TEST(RestoreSupervisorTest, EpisodeCountersAreMonotoneUnderRapidCrashes) {
  RestoreSupervisor supervisor(NoJitterPolicy(/*max_restores=*/8),
                               /*seed=*/11);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(supervisor.restores(), i);
    ASSERT_TRUE(supervisor.BeginRestore(SecondsF(2 * i)));
    supervisor.FinishRestore();
    EXPECT_EQ(supervisor.restores(), i + 1);
  }
  const std::vector<RestoreEpisode>& episodes = supervisor.episodes();
  for (size_t i = 0; i < episodes.size(); ++i) {
    EXPECT_EQ(episodes[i].ordinal, static_cast<int>(i));
    EXPECT_EQ(episodes[i].streak, static_cast<int>(i));
    EXPECT_EQ(episodes[i].checkpoint_time, SecondsF(2 * static_cast<int>(i)));
  }
}

TEST(RestoreSupervisorTest, NoDoubleRestoreWhileOneIsInProgress) {
  RestoreSupervisor supervisor(NoJitterPolicy(/*max_restores=*/4),
                               /*seed=*/13);
  ASSERT_TRUE(supervisor.BeginRestore(SecondsF(5)));
  EXPECT_TRUE(supervisor.restore_in_progress());
  // A second crash landing mid-restore must not open a second episode.
  EXPECT_FALSE(supervisor.BeginRestore(SecondsF(5)));
  EXPECT_FALSE(supervisor.BeginRestore(SecondsF(6)));
  EXPECT_EQ(supervisor.restores(), 1);
  EXPECT_FALSE(supervisor.gave_up());  // Refused for progress, not budget.
  supervisor.FinishRestore();
  EXPECT_TRUE(supervisor.BeginRestore(SecondsF(6)));
  supervisor.FinishRestore();
  EXPECT_EQ(supervisor.restores(), 2);
}

TEST(RestoreSupervisorTest, GivesUpWhenBudgetSpentAndStaysDown) {
  RestoreSupervisor supervisor(NoJitterPolicy(/*max_restores=*/2),
                               /*seed=*/17);
  ASSERT_TRUE(supervisor.BeginRestore(-1));  // Replay from boot.
  supervisor.FinishRestore();
  ASSERT_TRUE(supervisor.BeginRestore(SecondsF(4)));
  supervisor.FinishRestore();
  EXPECT_FALSE(supervisor.gave_up());

  EXPECT_FALSE(supervisor.BeginRestore(SecondsF(8)));
  EXPECT_TRUE(supervisor.gave_up());
  // Give-up is terminal: no episode sneaks in afterwards.
  EXPECT_FALSE(supervisor.BeginRestore(SecondsF(9)));
  EXPECT_EQ(supervisor.restores(), 2);
  EXPECT_EQ(supervisor.episodes()[0].checkpoint_time, -1);
}

}  // namespace
}  // namespace androne
