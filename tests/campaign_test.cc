// Campaign engine tests: verdict accounting (pass/fail/unexpected), failure
// bucketing with first-divergence triage against the nominal twin, report
// determinism across repeats and thread counts, and the repro path. Worlds
// here are deliberately tiny (1 tenant, short dwell, light annealing) so
// the whole file stays in test-suite time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/fault_injector.h"
#include "src/scenario/campaign.h"
#include "src/scenario/generator.h"
#include "src/scenario/scenario.h"
#include "src/util/logging.h"

namespace androne {
namespace {

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMinLogLevel(LogLevel::kWarning); }
  void TearDown() override { SetMinLogLevel(LogLevel::kInfo); }

  static ScenarioTemplate SmallTemplate(const std::string& name) {
    ScenarioTemplate tmpl;
    tmpl.name = name;
    tmpl.tenants_min = 1;
    tmpl.tenants_max = 1;
    tmpl.dwell_s = 2;
    tmpl.spread_m = 60;
    tmpl.annealing = 40;
    return tmpl;
  }

  static std::vector<ScenarioSpec> Expand(const CampaignSpec& campaign) {
    auto scenarios = ExpandScenarios(campaign);
    EXPECT_TRUE(scenarios.ok()) << scenarios.status().message();
    return std::move(scenarios).value();
  }
};

TEST_F(CampaignTest, CountsPassFailAndUnexpectedVerdicts) {
  CampaignSpec campaign;
  campaign.name = "verdicts";
  campaign.seed = 5;

  ScenarioTemplate pass = SmallTemplate("pass");
  pass.repeat = 2;
  pass.assertions = {*ParseAssertion("completed == 1")};
  campaign.templates.push_back(pass);

  // Failing is this family's contract: it must not count as unexpected.
  ScenarioTemplate seeded = SmallTemplate("seeded");
  seeded.expect_fail = true;
  seeded.assertions = {*ParseAssertion("waypoints_visited >= 100")};
  campaign.templates.push_back(seeded);

  // Fails without expect_fail: the contract violation the CI gate counts.
  ScenarioTemplate broken = SmallTemplate("broken");
  broken.assertions = {*ParseAssertion("downlink_frames >= 1000000000")};
  campaign.templates.push_back(broken);

  std::vector<ScenarioSpec> scenarios = Expand(campaign);
  ASSERT_EQ(scenarios.size(), 4u);

  CampaignOptions options;
  options.name = campaign.name;
  options.triage = false;  // Bucketing only; triage covered separately.
  CampaignReport report = CampaignRunner(options).Run(scenarios);

  EXPECT_EQ(report.scenarios, 4);
  EXPECT_EQ(report.passed, 2);
  EXPECT_EQ(report.failed, 2);
  EXPECT_EQ(report.skipped, 0);
  EXPECT_EQ(report.unexpected, 1);  // Only "broken".
  ASSERT_EQ(report.buckets.size(), 2u);
  // Buckets sort by key: family first.
  EXPECT_EQ(report.buckets[0].key,
            "broken|downlink_frames >= 1000000000");
  EXPECT_FALSE(report.buckets[0].expected);
  EXPECT_EQ(report.buckets[0].representative, "broken/t1#0");
  EXPECT_EQ(report.buckets[1].key, "seeded|waypoints_visited >= 100");
  EXPECT_TRUE(report.buckets[1].expected);
  EXPECT_EQ(report.buckets[1].count, 1);
  // Triage was off: no divergence analysis ran.
  EXPECT_TRUE(report.buckets[0].first_divergence.empty());
}

TEST_F(CampaignTest, TriagePinsFirstDivergentEventForChaosFailures) {
  CampaignSpec campaign;
  campaign.name = "triage";
  campaign.seed = 11;

  // Chaos + impossible assertion: a link outage drops deliveries, so the
  // faulted trace must diverge from the fault-stripped nominal twin.
  ScenarioTemplate chaotic = SmallTemplate("chaotic");
  chaotic.expect_fail = true;
  JitteredWindow outage;
  outage.window.kind = static_cast<int>(FaultKind::kOutage);
  outage.window.scope = kFaultScopeAll;
  outage.window.start = SecondsF(5);
  outage.window.end = SecondsF(15);
  chaotic.net_windows.push_back(outage);
  chaotic.assertions = {*ParseAssertion("waypoints_visited >= 100")};
  campaign.templates.push_back(chaotic);

  // No chaos, just a miscalibrated assertion: faulted and nominal runs are
  // the same world, so triage must report "identical".
  ScenarioTemplate miscalibrated = SmallTemplate("miscalibrated");
  miscalibrated.expect_fail = true;
  miscalibrated.assertions = {*ParseAssertion("waypoints_visited >= 100")};
  campaign.templates.push_back(miscalibrated);

  CampaignOptions options;
  options.name = campaign.name;
  std::vector<ScenarioSpec> scenarios = Expand(campaign);
  CampaignReport report = CampaignRunner(options).Run(scenarios);

  ASSERT_EQ(report.buckets.size(), 2u);
  const FailureBucket& chaos_bucket = report.buckets[0];
  ASSERT_EQ(chaos_bucket.key, "chaotic|waypoints_visited >= 100");
  EXPECT_NE(chaos_bucket.first_divergence, "identical");
  EXPECT_NE(chaos_bucket.first_divergence.find("event line"),
            std::string::npos)
      << chaos_bucket.first_divergence;

  const FailureBucket& calm_bucket = report.buckets[1];
  ASSERT_EQ(calm_bucket.key, "miscalibrated|waypoints_visited >= 100");
  EXPECT_EQ(calm_bucket.first_divergence, "identical");
}

TEST_F(CampaignTest, ReportIsByteIdenticalAcrossRepeatsAndThreadCounts) {
  CampaignSpec campaign;
  campaign.name = "determinism";
  campaign.seed = 17;
  ScenarioTemplate tmpl = SmallTemplate("mixed");
  tmpl.repeat = 5;
  tmpl.assertions = {*ParseAssertion("completed == 1")};
  campaign.templates.push_back(tmpl);
  ScenarioTemplate seeded = SmallTemplate("seeded");
  seeded.expect_fail = true;
  seeded.assertions = {*ParseAssertion("waypoints_visited >= 100")};
  campaign.templates.push_back(seeded);
  std::vector<ScenarioSpec> scenarios = Expand(campaign);

  std::string reference;
  for (int threads : {1, 1, 2, 8}) {
    CampaignOptions options;
    options.name = campaign.name;
    options.threads = threads;
    CampaignReport report = CampaignRunner(options).Run(scenarios);
    if (reference.empty()) {
      reference = report.ToText();
      EXPECT_EQ(report.unexpected, 0);
    } else {
      EXPECT_EQ(report.ToText(), reference) << "threads=" << threads;
    }
  }
  // The digest is a pure function of the text.
  EXPECT_NE(reference.find("campaign determinism"), std::string::npos);
}

TEST_F(CampaignTest, ReproReplaysOneScenarioWithFullTracing) {
  CampaignSpec campaign;
  campaign.seed = 23;
  ScenarioTemplate tmpl = SmallTemplate("replay");
  JitteredWindow noise;
  noise.window.kind = static_cast<int>(SensorFaultKind::kNoiseInflation);
  noise.window.scope = static_cast<int>(SensorChannel::kImu);
  noise.window.start = SecondsF(5);
  noise.window.end = SecondsF(20);
  noise.window.p0 = 0.03;
  tmpl.sensor_windows.push_back(noise);
  campaign.templates.push_back(tmpl);
  std::vector<ScenarioSpec> scenarios = Expand(campaign);

  auto first = CampaignRunner::Repro(scenarios, "replay/t1#0");
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_EQ(first->scenario, "replay/t1#0");
  EXPECT_EQ(first->seed, scenarios[0].seed);
  EXPECT_FALSE(first->trace_text.empty());
  EXPECT_TRUE(first->failed_assertions.empty());

  // Bit-identical replay: same digest, same trace bytes.
  auto second = CampaignRunner::Repro(scenarios, "replay/t1#0");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->digest, first->digest);
  EXPECT_EQ(second->trace_text, first->trace_text);

  auto missing = CampaignRunner::Repro(scenarios, "replay/t9#9");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("no scenario named"),
            std::string::npos);
}

TEST_F(CampaignTest, CrashFamilyRecoversAndPassesRecoveryAssertions) {
  CampaignSpec campaign;
  campaign.seed = 41;
  ScenarioTemplate tmpl = SmallTemplate("crashrec");
  tmpl.crash.at_s = {4};
  tmpl.crash.checkpoint_s = 2;
  tmpl.assertions = {*ParseAssertion("completed == 1"),
                     *ParseAssertion("recovery.crashes >= 1"),
                     *ParseAssertion("recovery.restores >= 1"),
                     *ParseAssertion("recovery.fixed_point_ok == 1"),
                     *ParseAssertion("recovery.gave_up == 0")};
  campaign.templates.push_back(tmpl);
  std::vector<ScenarioSpec> scenarios = Expand(campaign);

  CampaignOptions options;
  options.triage = false;
  CampaignReport report = CampaignRunner(options).Run(scenarios);
  EXPECT_EQ(report.passed, 1);
  EXPECT_EQ(report.unexpected, 0) << report.ToText();
  // Recovery bookkeeping must stay out of the merged metrics — a recovered
  // world merges identically to an uninterrupted one.
  EXPECT_EQ(report.metrics.counters.count("recovery.crashes"), 0u);
  EXPECT_EQ(report.metrics.counters.count("recovery.restores"), 0u);
}

TEST_F(CampaignTest, DigestAssertionPinsAWorldAndCatchesDrift) {
  CampaignSpec campaign;
  campaign.seed = 43;
  campaign.templates.push_back(SmallTemplate("pinned"));
  std::vector<ScenarioSpec> scenarios = Expand(campaign);

  // Learn the world's digest once, then pin it: the assertion must pass.
  auto probe = CampaignRunner::Repro(scenarios, "pinned/t1#0");
  ASSERT_TRUE(probe.ok()) << probe.status().message();
  AssertionSpec pin;
  pin.metric = "digest";
  pin.op = CompareOp::kEq;
  pin.is_digest = true;
  pin.digest_value = probe->digest;
  scenarios[0].assertions = {pin};

  CampaignOptions options;
  options.triage = false;
  CampaignReport pinned = CampaignRunner(options).Run(scenarios);
  EXPECT_EQ(pinned.passed, 1);
  EXPECT_EQ(pinned.unexpected, 0) << pinned.ToText();

  // One bit of drift fails with the canonical hex signature in the bucket.
  pin.digest_value = probe->digest ^ 1;
  scenarios[0].assertions = {pin};
  CampaignReport drifted = CampaignRunner(options).Run(scenarios);
  EXPECT_EQ(drifted.failed, 1);
  ASSERT_EQ(drifted.buckets.size(), 1u);
  EXPECT_EQ(drifted.buckets[0].key, "pinned|" + pin.ToExpr());
}

TEST_F(CampaignTest, CrashLoopScenarioExportsSupervisorCounters) {
  CampaignSpec campaign;
  campaign.seed = 31;
  ScenarioTemplate tmpl = SmallTemplate("crashy");
  tmpl.crash_loop.count = 2;
  tmpl.crash_loop.start_s = 2;
  tmpl.crash_loop.period_s = 3;
  tmpl.assertions = {*ParseAssertion("completed == 1"),
                     *ParseAssertion("supervisor.restarts >= 1")};
  campaign.templates.push_back(tmpl);
  std::vector<ScenarioSpec> scenarios = Expand(campaign);

  CampaignOptions options;
  CampaignReport report = CampaignRunner(options).Run(scenarios);
  EXPECT_EQ(report.passed, 1);
  EXPECT_EQ(report.unexpected, 0);
  auto restarts = report.metrics.counters.find("supervisor.restarts");
  ASSERT_NE(restarts, report.metrics.counters.end());
  EXPECT_GE(restarts->second, 1.0);
  EXPECT_GE(report.metrics.counters.at("supervisor.episodes"), 1.0);
}

}  // namespace
}  // namespace androne
