#include <gtest/gtest.h>

#include "src/net/channel.h"
#include "src/net/link_model.h"

namespace androne {
namespace {

TEST(LinkModelTest, LteLatencyDistributionMatchesSec65) {
  CellularLteModel lte;
  Rng rng(2026);
  Histogram ms_hist(10, 6);
  uint64_t lost = 0;
  const int n = 150000;  // The paper's ~150k command experiment scale.
  for (int i = 0; i < n; ++i) {
    if (lte.SampleLoss(rng)) {
      ++lost;
      continue;
    }
    ms_hist.Record(ToMillis(lte.SampleLatency(rng)));
  }
  EXPECT_NEAR(ms_hist.mean(), 70.0, 3.0);       // Paper: avg 70 ms.
  EXPECT_LE(ms_hist.max(), 360);                 // Paper: max 356 ms.
  EXPECT_GT(ms_hist.max(), 150);                 // Tail spikes exist.
  EXPECT_NEAR(ms_hist.stddev(), 7.2, 3.5);       // Paper: stddev 7.2 ms.
  EXPECT_GE(lost, 1u);                           // Paper: 6 packets lost.
  EXPECT_LE(lost, 20u);
}

TEST(LinkModelTest, RfLatencyInHobbyRange) {
  RfRemoteModel rf;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t ms = ToMillis(rf.SampleLatency(rng));
    EXPECT_GE(ms, 8);
    EXPECT_LE(ms, 85);
  }
}

TEST(LinkModelTest, WiredIsFastAndLossless) {
  WiredModel wired;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(ToMillis(wired.SampleLatency(rng)), 3);
    EXPECT_FALSE(wired.SampleLoss(rng));
  }
}

TEST(ChannelTest, DeliversAfterLatency) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  std::vector<uint8_t> received;
  ch.SetReceiver([&](const std::vector<uint8_t>& d) { received = d; });
  ch.Send({1, 2, 3});
  EXPECT_TRUE(received.empty());  // Not yet delivered.
  clock.RunAll();
  EXPECT_EQ(received, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(ch.delivered(), 1u);
  EXPECT_GT(clock.now(), 0);
}

TEST(ChannelTest, CountsLosses) {
  // A lossy link: use LTE with many sends and verify sent = delivered+lost.
  SimClock clock;
  CellularLteModel lte;
  NetworkChannel ch(&clock, &lte, 3);
  int received = 0;
  ch.SetReceiver([&](const std::vector<uint8_t>&) { ++received; });
  for (int i = 0; i < 50000; ++i) {
    ch.Send({0});
  }
  clock.RunAll();
  EXPECT_EQ(ch.sent(), 50000u);
  EXPECT_EQ(ch.delivered() + ch.lost(), ch.sent());
  EXPECT_EQ(static_cast<uint64_t>(received), ch.delivered());
}

TEST(ChannelTest, LatencyHistogramPopulated) {
  SimClock clock;
  CellularLteModel lte;
  NetworkChannel ch(&clock, &lte, 5);
  ch.SetReceiver([](const std::vector<uint8_t>&) {});
  for (int i = 0; i < 1000; ++i) {
    ch.Send({9});
  }
  clock.RunAll();
  EXPECT_NEAR(ch.latency_us().mean(), 70000, 5000);
}

TEST(ChannelTest, NoReceiverCountsAsDropNotDelivery) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  ch.Send({1, 2, 3});  // No receiver attached at delivery time.
  clock.RunAll();
  EXPECT_EQ(ch.sent(), 1u);
  EXPECT_EQ(ch.delivered(), 0u);
  EXPECT_EQ(ch.dropped_no_receiver(), 1u);
  EXPECT_EQ(ch.latency_us().total_count(), 0u);
  // Attaching a receiver afterwards resumes normal delivery.
  int received = 0;
  ch.SetReceiver([&](const std::vector<uint8_t>&) { ++received; });
  ch.Send({4});
  clock.RunAll();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(ch.delivered(), 1u);
  EXPECT_EQ(ch.dropped_no_receiver(), 1u);
}

TEST(ChannelTest, DuplexDirectionsUseIndependentStreams) {
  // The reverse direction's RNG is derived with a SplitMix64 mix; the two
  // directions must not replay the same latency sequence even though they
  // share one seed and one link model.
  SimClock clock;
  CellularLteModel lte;
  DuplexChannel duplex(&clock, &lte, 77);
  duplex.a_to_b.SetReceiver([](const std::vector<uint8_t>&) {});
  duplex.b_to_a.SetReceiver([](const std::vector<uint8_t>&) {});
  for (int i = 0; i < 500; ++i) {
    duplex.a_to_b.Send({1});
    duplex.b_to_a.Send({2});
  }
  clock.RunAll();
  EXPECT_EQ(duplex.a_to_b.delivered() + duplex.a_to_b.lost(), 500u);
  EXPECT_EQ(duplex.b_to_a.delivered() + duplex.b_to_a.lost(), 500u);
  EXPECT_NE(duplex.a_to_b.latency_us().mean(),
            duplex.b_to_a.latency_us().mean());
}

TEST(VpnTest, RoundTripThroughTunnel) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  VpnTunnel tx(&ch, 42);
  VpnTunnel rx(&ch, 42);  // Same tunnel id on the receive side.
  std::vector<uint8_t> got;
  rx.SetReceiver([&](const std::vector<uint8_t>& d) { got = d; });
  tx.Send({7, 8, 9});
  clock.RunAll();
  EXPECT_EQ(got, (std::vector<uint8_t>{7, 8, 9}));
  EXPECT_EQ(rx.rejected_datagrams(), 0u);
}

TEST(VpnTest, CrossTenantTrafficRejected) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  VpnTunnel attacker(&ch, 666);
  VpnTunnel victim(&ch, 42);
  bool received = false;
  victim.SetReceiver([&](const std::vector<uint8_t>&) { received = true; });
  attacker.Send({0xde, 0xad});
  clock.RunAll();
  EXPECT_FALSE(received);
  EXPECT_EQ(victim.rejected_datagrams(), 1u);
}

TEST(VpnTest, CrossTenantInjectionUnderLossRejectsEveryDeliveredDatagram) {
  // Cross-tenant injection over a heavily lossy link: the datagrams the
  // link drops never reach the victim, and every one that survives is
  // rejected by the tunnel-id check — none are delivered to the receiver.
  class VeryLossyLte : public CellularLteModel {
   public:
    bool SampleLoss(Rng& rng) const override { return rng.Bernoulli(0.3); }
  };
  SimClock clock;
  VeryLossyLte lossy;
  NetworkChannel ch(&clock, &lossy, 17);
  VpnTunnel attacker(&ch, 666);
  VpnTunnel victim(&ch, 42);
  int received = 0;
  victim.SetReceiver([&](const std::vector<uint8_t>&) { ++received; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    attacker.Send({0xde, 0xad});
  }
  clock.RunAll();
  EXPECT_EQ(received, 0);
  EXPECT_GT(ch.lost(), 0u);
  EXPECT_LT(ch.delivered(), static_cast<uint64_t>(n));
  EXPECT_EQ(victim.rejected_datagrams(), ch.delivered());
}

TEST(ChannelTest, DeliveryIsZeroCopy) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  // The receiver must observe the very buffer the sender handed to Send():
  // the payload moves into shared ownership and is never copied on the way
  // through the delivery closure.
  std::vector<uint8_t> payload(1024, 0xAB);
  const uint8_t* sent_data = payload.data();
  const uint8_t* seen_data = nullptr;
  ch.SetReceiver(
      [&](const std::vector<uint8_t>& d) { seen_data = d.data(); });
  ch.Send(std::move(payload));
  clock.RunAll();
  ASSERT_NE(seen_data, nullptr);
  EXPECT_EQ(seen_data, sent_data);
}

TEST(ChannelTest, SharedPayloadFanOutReusesOneBuffer) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel a(&clock, &wired, 1);
  NetworkChannel b(&clock, &wired, 2);
  auto payload = std::make_shared<const std::vector<uint8_t>>(
      std::vector<uint8_t>{9, 9, 9});
  const uint8_t* shared_data = payload->data();
  int hits = 0;
  auto assert_same_buffer = [&](const std::vector<uint8_t>& d) {
    EXPECT_EQ(d.data(), shared_data);
    ++hits;
  };
  a.SetReceiver(assert_same_buffer);
  b.SetReceiver(assert_same_buffer);
  a.SendShared(payload);
  b.SendShared(payload);
  clock.RunAll();
  EXPECT_EQ(hits, 2);
}

TEST(ChannelTest, SharedPayloadOutlivesSender) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  std::vector<uint8_t> got;
  ch.SetReceiver([&](const std::vector<uint8_t>& d) { got = d; });
  {
    auto payload =
        std::make_shared<const std::vector<uint8_t>>(std::vector<uint8_t>{5});
    ch.SendShared(payload);
    // Sender's reference dies here; the in-flight closure keeps the buffer.
  }
  clock.RunAll();
  EXPECT_EQ(got, (std::vector<uint8_t>{5}));
}

TEST(VpnTest, ShortDatagramRejected) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  VpnTunnel rx(&ch, 42);
  bool received = false;
  rx.SetReceiver([&](const std::vector<uint8_t>&) { received = true; });
  ch.Send({1, 2});  // Too short for a tunnel header.
  clock.RunAll();
  EXPECT_FALSE(received);
  EXPECT_EQ(rx.rejected_datagrams(), 1u);
}

TEST(ChannelTest, SendCopyDeliversTheBytes) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  std::vector<uint8_t> received;
  ch.SetReceiver([&](const std::vector<uint8_t>& d) { received = d; });

  std::vector<uint8_t> scratch = {9, 8, 7};
  ch.SendCopy(scratch.data(), scratch.size());
  scratch.assign({0, 0, 0});  // Sender reuses its scratch immediately.
  clock.RunAll();
  EXPECT_EQ(received, (std::vector<uint8_t>{9, 8, 7}));
}

TEST(ChannelTest, SendCopyRecyclesDeliveredBuffers) {
  SimClock clock;
  WiredModel wired;
  NetworkChannel ch(&clock, &wired, 1);
  int received = 0;
  const std::vector<uint8_t>* first_buffer = nullptr;
  ch.SetReceiver([&](const std::vector<uint8_t>& d) {
    if (received == 0) {
      first_buffer = &d;
    } else {
      // Sequential sends drain the one-deep pool: the same heap buffer
      // carries every datagram instead of a fresh allocation each.
      EXPECT_EQ(&d, first_buffer);
    }
    ++received;
  });
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  for (int i = 0; i < 5; ++i) {
    ch.SendCopy(payload.data(), payload.size());
    clock.RunAll();  // Deliver before the next send so the buffer returns.
  }
  EXPECT_EQ(received, 5);
}

TEST(ChannelTest, PooledBufferSurvivesChannelTeardown) {
  // A channel destroyed with an undelivered SendCopy datagram: the event
  // closure is torn down later (when the clock dies), so the payload's
  // deleter runs after the pool is gone — it must free, not recycle.
  SimClock clock;
  WiredModel wired;
  {
    NetworkChannel ch(&clock, &wired, 1);
    std::vector<uint8_t> payload = {5, 6};
    ch.SendCopy(payload.data(), payload.size());
    // Never run the clock: the datagram stays queued past the channel.
  }
}

}  // namespace
}  // namespace androne
