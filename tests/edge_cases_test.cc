// Edge cases and adversarial property tests across modules: altitude
// geofence breaches, executor corner paths, Binder isolation under random
// operation sequences, and layered-image algebra.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/binder/service_manager.h"
#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/container/image_store.h"
#include "src/core/drone.h"
#include "src/flight/sitl.h"

namespace androne {
namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};

// ----------------------------------------------- Altitude geofence breach.

TEST(GeofenceAltitudeTest, ClimbingPastMaxAltitudeRecovers) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 61);
  clock.RunFor(Seconds(2));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(15.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 14.0; },
      Seconds(60)));
  GeofenceConfig fence;
  fence.enabled = true;
  fence.center = drone.physics().truth().position;
  fence.radius_m = 200.0;       // Wide horizontally...
  fence.max_altitude_m = 25.0;  // ...but capped vertically.
  drone.controller().SetGeofence(fence);
  bool breached = false, recovered = false;
  drone.controller().SetFenceCallbacks([&] { breached = true; },
                                       [&] { recovered = true; });
  // Climb to 60 m: only the altitude limit is violated.
  drone.GotoCmd(FromNed(fence.center, NedPoint{0, 0, -45}));
  ASSERT_TRUE(drone.RunUntil([&] { return breached; }, Seconds(120)));
  ASSERT_TRUE(drone.RunUntil([&] { return recovered; }, Seconds(120)));
  clock.RunFor(Seconds(5));
  EXPECT_LT(drone.physics().truth().position.altitude_m,
            fence.max_altitude_m + 2.0);
  EXPECT_EQ(drone.controller().mode(), CopterMode::kLoiter);
}

// ------------------------------------------------------ Executor corners.

const char kNoopManifest[] = R"(
<androne-manifest package="com.example.noop">
  <uses-permission name="gps" type="waypoint"/>
</androne-manifest>)";

class NoopApp : public AndroneApp {
 public:
  NoopApp() : AndroneApp("com.example.noop", 0) {}
  // Never calls waypointCompleted(): exercises the no-control dwell limit.
};

TEST(ExecutorTest, NoControlTenantDwellsThenMovesOn) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  options.no_control_dwell_s = 8.0;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());
  system.vdc().RegisterAppFactory(
      "com.example.noop", [] { return std::make_unique<NoopApp>(); },
      kNoopManifest);

  VirtualDroneDefinition def;
  def.id = "noop";
  def.owner = "zoe";
  def.waypoints = {WaypointSpec{FromNed(kBase, NedPoint{40, 0, -15}), 30}};
  def.max_duration_s = 500;
  def.energy_allotted_j = 90000;
  def.waypoint_devices = {"gps"};  // No flight control.
  def.apps = {"com.example.noop"};
  ASSERT_TRUE(system.Deploy(def).ok());

  PlannerJob job;
  job.vdrone_ref = "noop";
  job.waypoint = def.waypoints[0].point;
  job.service_time_s = 8;
  job.service_energy_j = 2000;
  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kBase;
  pc.annealing_iterations = 500;
  FlightPlanner planner(energy, pc);
  auto plan = planner.Plan({job});
  ASSERT_TRUE(plan.ok());
  SimTime start = clock.now();
  auto report = system.ExecuteRoute(plan->routes[0], {job});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->completed);
  // Dwell was bounded by the configured limit, not the 500 s allotment.
  EXPECT_LT(ToSecondsF(clock.now() - start), 120.0);
}

TEST(ExecutorTest, ExhaustedTenantWaypointsAreSkipped) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());

  VirtualDroneDefinition def;
  def.id = "tiny";
  def.owner = "bob";
  def.waypoints = {WaypointSpec{FromNed(kBase, NedPoint{40, 0, -15}), 30},
                   WaypointSpec{FromNed(kBase, NedPoint{80, 0, -15}), 30}};
  def.max_duration_s = 6;  // Exhausts during the first tenancy.
  def.energy_allotted_j = 90000;
  def.waypoint_devices = {"camera", "flight-control"};
  ASSERT_TRUE(system.Deploy(def, WhitelistTemplate::kFull).ok());

  std::vector<PlannerJob> jobs;
  for (int i = 0; i < 2; ++i) {
    PlannerJob job;
    job.vdrone_ref = "tiny";
    job.waypoint_index = i;
    job.waypoint = def.waypoints[static_cast<size_t>(i)].point;
    job.service_time_s = 6;
    job.service_energy_j = 1000;
    jobs.push_back(job);
  }
  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kBase;
  pc.annealing_iterations = 500;
  FlightPlanner planner(energy, pc);
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok());
  auto report = system.ExecuteRoute(plan->routes[0], jobs);
  ASSERT_TRUE(report.ok()) << report.status();
  // Only the first waypoint was served; the second was skipped because the
  // tenant exhausted its time there.
  bool skipped = false;
  for (const std::string& event : report->events) {
    skipped |= event.find("skipping waypoint") != std::string::npos;
  }
  EXPECT_TRUE(skipped);
  auto vd = system.vdc().Find("tiny");
  ASSERT_TRUE(vd.ok());
  EXPECT_TRUE((*vd)->exhausted);
}

// -------------------------------------------- Binder isolation fuzzing.

class EchoService : public BinderObject {
 public:
  Status OnTransact(uint32_t code, const Parcel& data, Parcel* reply,
                    const BinderCallContext& ctx) override {
    (void)code;
    (void)data;
    (void)ctx;
    reply->WriteInt32(1);
    return OkStatus();
  }
};

class BinderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

// Property: across random operation sequences, a process never reaches a
// service registered in another container's namespace (unless published by
// the device container), and forged handles never resolve.
TEST_P(BinderFuzzTest, IsolationHoldsUnderRandomOperations) {
  Rng rng(GetParam());
  BinderDriver driver;
  constexpr int kContainers = 3;
  std::vector<BinderProc*> sm_procs;
  std::vector<std::vector<BinderProc*>> procs(kContainers);
  Pid next_pid = 1;
  for (int c = 0; c < kContainers; ++c) {
    BinderProc* sm = driver.CreateProcess(next_pid++, 1000, c + 1);
    ASSERT_TRUE(ServiceManager::Install(sm).ok());
    sm_procs.push_back(sm);
    for (int p = 0; p < 3; ++p) {
      const Pid pid = next_pid++;
      procs[static_cast<size_t>(c)].push_back(
          driver.CreateProcess(pid, 10000 + pid, c + 1));
    }
  }
  // Each container registers a private service named after itself.
  for (int c = 0; c < kContainers; ++c) {
    BinderProc* owner = procs[static_cast<size_t>(c)][0];
    BinderHandle handle = owner->RegisterObject(std::make_shared<EchoService>());
    ASSERT_TRUE(
        SmAddService(owner, "svc" + std::to_string(c), handle).ok());
  }

  for (int step = 0; step < 2000; ++step) {
    int c = static_cast<int>(rng.NextU64Below(kContainers));
    BinderProc* proc = procs[static_cast<size_t>(c)][rng.NextU64Below(3)];
    switch (rng.NextU64Below(3)) {
      case 0: {
        // Own-container lookup must succeed; foreign must fail.
        int target = static_cast<int>(rng.NextU64Below(kContainers));
        auto handle = SmGetService(proc, "svc" + std::to_string(target));
        if (target == c) {
          EXPECT_TRUE(handle.ok());
        } else {
          EXPECT_FALSE(handle.ok()) << "container " << c << " reached svc"
                                    << target;
        }
        break;
      }
      case 1: {
        // Forged handle numbers never resolve to anything usable.
        BinderHandle forged =
            static_cast<BinderHandle>(1 + rng.NextU64Below(64));
        Parcel req;
        auto reply = proc->Transact(forged, 1, req);
        if (reply.ok()) {
          // It may only succeed if this process legitimately owns the
          // handle (it got it via a prior GetService).
          auto legit = SmGetService(proc, "svc" + std::to_string(c));
          ASSERT_TRUE(legit.ok());
          EXPECT_EQ(forged, *legit);
        }
        break;
      }
      default: {
        // Legitimate use keeps working.
        auto handle = SmGetService(proc, "svc" + std::to_string(c));
        ASSERT_TRUE(handle.ok());
        Parcel req;
        EXPECT_TRUE(proc->Transact(*handle, 1, req).ok());
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinderFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

// ------------------------------------------------ Image store algebra.

class ImageAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

// Property: flattening layer-by-layer incrementally equals flattening the
// whole stack, and committing a diff then flattening equals applying the
// diff to the flattened base.
TEST_P(ImageAlgebraTest, FlattenIsFoldOfLayers) {
  Rng rng(GetParam());
  ImageStore store;
  std::vector<LayerId> layers;
  std::map<std::string, std::string> expected;
  int n_layers = 1 + static_cast<int>(rng.NextU64Below(6));
  for (int l = 0; l < n_layers; ++l) {
    LayerFiles files;
    int n_files = 1 + static_cast<int>(rng.NextU64Below(8));
    for (int f = 0; f < n_files; ++f) {
      std::string path = "/f" + std::to_string(rng.NextU64Below(12));
      bool tombstone = rng.Bernoulli(0.25);
      std::string content = tombstone ? "" : "v" + std::to_string(l);
      files[path] = LayerFile{content, tombstone};
    }
    // Fold into the reference model.
    for (const auto& [path, file] : files) {
      if (file.tombstone) {
        expected.erase(path);
      } else {
        expected[path] = file.content;
      }
    }
    layers.push_back(store.AddLayer(std::move(files)));
  }
  auto image = store.CreateImage("img", layers);
  ASSERT_TRUE(image.ok());
  auto view = store.Flatten(*image);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(*view, expected);

  // Export/import preserves the flattened view exactly.
  auto bytes = store.Export(*image);
  ASSERT_TRUE(bytes.ok());
  ImageStore other;
  auto imported = other.Import(*bytes);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(other.Flatten(*imported).value(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageAlgebraTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace androne
