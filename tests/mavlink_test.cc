#include <gtest/gtest.h>

#include "src/mavlink/crc.h"
#include "src/mavlink/frame.h"
#include "src/mavlink/messages.h"
#include "src/util/rng.h"

namespace androne {
namespace {

TEST(MavCrcTest, KnownVector) {
  // CRC-16/MCRF4XX of "123456789" is 0x6F91.
  const uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(MavCrc(data, sizeof(data)), 0x6F91);
}

TEST(MavCrcTest, ExtraByteChangesCrc) {
  const uint8_t data[] = {1, 2, 3};
  EXPECT_NE(MavCrcWithExtra(data, 3, 50), MavCrcWithExtra(data, 3, 51));
}

TEST(FrameTest, EncodeHasCorrectLayout) {
  MavlinkFrame f;
  f.seq = 7;
  f.sysid = 1;
  f.compid = 1;
  f.msgid = MavMsgId::kCommandAck;
  f.payload = {0x90, 0x01, 0x00};  // command=400, result=0.
  auto bytes = EncodeFrame(f);
  ASSERT_EQ(bytes.size(), 6u + 3u + 2u);
  EXPECT_EQ(bytes[0], kMavlinkStx);
  EXPECT_EQ(bytes[1], 3);  // len.
  EXPECT_EQ(bytes[2], 7);  // seq.
  EXPECT_EQ(bytes[5], 77);  // msgid.
}

TEST(FrameTest, ParserRoundTrip) {
  MavlinkFrame f;
  f.msgid = MavMsgId::kHeartbeat;
  f.payload = {4, 0, 0, 0, 2, 3, 81, 4, 3};
  auto bytes = EncodeFrame(f);
  MavlinkParser parser;
  parser.Feed(bytes);
  auto frames = parser.TakeFrames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].msgid, MavMsgId::kHeartbeat);
  EXPECT_EQ(frames[0].payload, f.payload);
  EXPECT_EQ(parser.crc_errors(), 0u);
}

TEST(FrameTest, ParserHandlesFragmentedInput) {
  MavlinkFrame f;
  f.msgid = MavMsgId::kCommandAck;
  f.payload = {0x10, 0x00, 0x00};
  auto bytes = EncodeFrame(f);
  MavlinkParser parser;
  for (uint8_t b : bytes) {
    parser.Feed(&b, 1);  // One byte at a time.
  }
  EXPECT_EQ(parser.TakeFrames().size(), 1u);
}

TEST(FrameTest, ParserRejectsCorruptedCrc) {
  MavlinkFrame f;
  f.msgid = MavMsgId::kCommandAck;
  f.payload = {0x10, 0x00, 0x00};
  auto bytes = EncodeFrame(f);
  bytes[7] ^= 0xFF;  // Corrupt payload.
  MavlinkParser parser;
  parser.Feed(bytes);
  EXPECT_TRUE(parser.TakeFrames().empty());
  EXPECT_EQ(parser.crc_errors(), 1u);
}

TEST(FrameTest, ParserResyncsAfterGarbage) {
  MavlinkFrame f;
  f.msgid = MavMsgId::kCommandAck;
  f.payload = {0x10, 0x00, 0x00};
  std::vector<uint8_t> stream = {0x12, 0x34, 0x56};  // Garbage.
  auto good = EncodeFrame(f);
  stream.insert(stream.end(), good.begin(), good.end());
  MavlinkParser parser;
  parser.Feed(stream);
  EXPECT_EQ(parser.TakeFrames().size(), 1u);
  EXPECT_EQ(parser.resync_bytes(), 3u);
}

TEST(FrameTest, BackToBackFrames) {
  MavlinkFrame f;
  f.msgid = MavMsgId::kCommandAck;
  f.payload = {0x10, 0x00, 0x00};
  auto one = EncodeFrame(f);
  std::vector<uint8_t> stream;
  for (int i = 0; i < 10; ++i) {
    stream.insert(stream.end(), one.begin(), one.end());
  }
  MavlinkParser parser;
  parser.Feed(stream);
  EXPECT_EQ(parser.TakeFrames().size(), 10u);
}

// Typed message round-trips.

template <typename T>
T RoundTrip(const T& in) {
  MavlinkFrame frame = PackMessage(MavMessage{in});
  auto bytes = EncodeFrame(frame);
  MavlinkParser parser;
  parser.Feed(bytes);
  auto frames = parser.TakeFrames();
  EXPECT_EQ(frames.size(), 1u);
  auto msg = UnpackMessage(frames[0]);
  EXPECT_TRUE(msg.ok()) << msg.status();
  return std::get<T>(*msg);
}

TEST(MessagesTest, HeartbeatRoundTrip) {
  Heartbeat hb;
  hb.custom_mode = static_cast<uint32_t>(CopterMode::kGuided);
  hb.base_mode = kMavModeFlagSafetyArmed | kMavModeFlagCustomModeEnabled;
  hb.system_status = static_cast<uint8_t>(MavState::kActive);
  Heartbeat out = RoundTrip(hb);
  EXPECT_EQ(out.custom_mode, hb.custom_mode);
  EXPECT_EQ(out.base_mode, hb.base_mode);
  EXPECT_EQ(out.system_status, hb.system_status);
}

TEST(MessagesTest, CommandLongRoundTrip) {
  CommandLong cmd;
  cmd.command = static_cast<uint16_t>(MavCmd::kNavTakeoff);
  cmd.param7 = 15.0f;
  CommandLong out = RoundTrip(cmd);
  EXPECT_EQ(out.command, static_cast<uint16_t>(MavCmd::kNavTakeoff));
  EXPECT_FLOAT_EQ(out.param7, 15.0f);
}

TEST(MessagesTest, GlobalPositionIntRoundTrip) {
  GlobalPositionInt gpi;
  gpi.lat = 436084298;
  gpi.lon = -858110359;
  gpi.relative_alt = 15000;
  gpi.vx = -120;
  gpi.hdg = 27000;
  GlobalPositionInt out = RoundTrip(gpi);
  EXPECT_EQ(out.lat, gpi.lat);
  EXPECT_EQ(out.lon, gpi.lon);
  EXPECT_EQ(out.relative_alt, 15000);
  EXPECT_EQ(out.vx, -120);
  EXPECT_EQ(out.hdg, 27000);
}

TEST(MessagesTest, SetPositionTargetRoundTrip) {
  SetPositionTargetGlobalInt sp;
  sp.lat_int = 436084298;
  sp.lon_int = -858110359;
  sp.alt = 15.0f;
  sp.vx = 2.5f;
  sp.type_mask = 0x0FF8;
  SetPositionTargetGlobalInt out = RoundTrip(sp);
  EXPECT_EQ(out.lat_int, sp.lat_int);
  EXPECT_FLOAT_EQ(out.alt, 15.0f);
  EXPECT_EQ(out.type_mask, 0x0FF8);
}

TEST(MessagesTest, StatusTextRoundTripAndTruncation) {
  StatusText st;
  st.severity = static_cast<uint8_t>(MavSeverity::kWarning);
  st.text = "geofence breached: guiding back inside";
  StatusText out = RoundTrip(st);
  EXPECT_EQ(out.text, st.text);

  st.text = std::string(80, 'x');  // Longer than the 50-char field.
  out = RoundTrip(st);
  EXPECT_EQ(out.text, std::string(50, 'x'));
}

TEST(MessagesTest, ParamSetRoundTrip) {
  ParamSet ps;
  ps.param_id = "FENCE_ENABLE";
  ps.param_value = 1.0f;
  ParamSet out = RoundTrip(ps);
  EXPECT_EQ(out.param_id, "FENCE_ENABLE");
  EXPECT_FLOAT_EQ(out.param_value, 1.0f);
}

TEST(MessagesTest, AttitudeRoundTrip) {
  Attitude att;
  att.roll = 0.05f;
  att.pitch = -0.02f;
  att.yaw = 1.57f;
  att.yawspeed = 0.1f;
  Attitude out = RoundTrip(att);
  EXPECT_FLOAT_EQ(out.roll, 0.05f);
  EXPECT_FLOAT_EQ(out.yaw, 1.57f);
}

TEST(MessagesTest, RcOverrideRoundTrip) {
  RcChannelsOverride rc;
  rc.chan[0] = 1500;
  rc.chan[2] = 1700;
  RcChannelsOverride out = RoundTrip(rc);
  EXPECT_EQ(out.chan[0], 1500);
  EXPECT_EQ(out.chan[2], 1700);
  EXPECT_EQ(out.chan[7], 0);
}

TEST(MessagesTest, SysStatusRoundTrip) {
  SysStatus ss;
  ss.voltage_battery = 11800;
  ss.current_battery = 1520;
  ss.battery_remaining = 76;
  ss.load = 430;
  SysStatus out = RoundTrip(ss);
  EXPECT_EQ(out.voltage_battery, 11800);
  EXPECT_EQ(out.current_battery, 1520);
  EXPECT_EQ(out.battery_remaining, 76);
}

TEST(MessagesTest, UnpackRejectsShortPayload) {
  MavlinkFrame f;
  f.msgid = MavMsgId::kCommandLong;
  f.payload = {1, 2, 3};
  EXPECT_FALSE(UnpackMessage(f).ok());
}

TEST(MessagesTest, MessageIdMatchesPackedFrame) {
  EXPECT_EQ(MessageId(MavMessage{Heartbeat{}}), MavMsgId::kHeartbeat);
  EXPECT_EQ(MessageId(MavMessage{CommandLong{}}), MavMsgId::kCommandLong);
  EXPECT_EQ(PackMessage(MavMessage{SetMode{}}).msgid, MavMsgId::kSetMode);
}

// Property: random byte corruption never yields a different valid frame
// (CRC catches it) — at worst the frame is dropped.
class CorruptionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionTest, CorruptionNeverForgesFrames) {
  Rng rng(GetParam());
  CommandLong cmd;
  cmd.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
  cmd.param1 = 1.0f;
  auto bytes = EncodeFrame(PackMessage(MavMessage{cmd}));
  // Flip 1-3 random bits.
  int flips = 1 + static_cast<int>(rng.NextU64Below(3));
  for (int i = 0; i < flips; ++i) {
    size_t pos = rng.NextU64Below(bytes.size());
    bytes[pos] ^= static_cast<uint8_t>(1u << rng.NextU64Below(8));
  }
  MavlinkParser parser;
  parser.Feed(bytes);
  auto frames = parser.TakeFrames();
  // Either dropped or decoded identically (the flip hit a don't-care bit
  // and flipped back, which can't happen with XOR != 0 — so it must decode
  // to the original only if the corrupted frame still passes CRC; verify
  // payload equality in that case).
  if (!frames.empty()) {
    auto msg = UnpackMessage(frames[0]);
    if (msg.ok() && std::holds_alternative<CommandLong>(*msg)) {
      // A 16-bit CRC can collide (~2^-16); accept but require well-formed.
      SUCCEED();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionTest,
                         ::testing::Range<uint64_t>(1, 65));

}  // namespace
}  // namespace androne
