#include <gtest/gtest.h>

#include <memory>

#include "src/container/runtime.h"
#include "src/hw/camera.h"
#include "src/hw/ground_truth.h"
#include "src/hw/sensors.h"
#include "src/services/activity_manager.h"
#include "src/services/app.h"
#include "src/services/device_services.h"
#include "src/services/permissions.h"
#include "src/services/system_server.h"

namespace androne {
namespace {

// End-to-end fixture: device container + two virtual drones over real
// Binder, services, and hardware models.
class ServicesFixture : public ::testing::Test {
 protected:
  ServicesFixture() : runtime_(&driver_, &store_) {
    truth_.position = GeoPoint{43.6084298, -85.8110359, 15.0};

    bus_.Register(std::make_unique<Camera>(&clock_, &truth_));
    bus_.Register(std::make_unique<GpsReceiver>(&clock_, &truth_, 11));
    bus_.Register(std::make_unique<Imu>(&clock_, &truth_, 12));
    bus_.Register(std::make_unique<Barometer>(&clock_, &truth_, 13));
    bus_.Register(std::make_unique<Magnetometer>(&clock_, &truth_, 14));
    bus_.Register(std::make_unique<Microphone>(&clock_));

    LayerId base = store_.AddLayer(LayerFiles{
        {"/system/build.prop", {"android-things", false}}});
    image_ = store_.CreateImage("base", {base}).value();

    device_ = runtime_.CreateContainer("device", ContainerKind::kDevice,
                                       image_).value();
    EXPECT_TRUE(runtime_.StartContainer(device_->id()).ok());
    device_stack_ = BootDeviceContainer(runtime_, device_->id(), bus_,
                                        /*trusted_container=*/-1).value();
  }

  // Boots a virtual drone container and returns its stack.
  std::pair<Container*, VirtualDroneStack> MakeVdrone(const std::string& name) {
    Container* c = runtime_.CreateContainer(name,
                                            ContainerKind::kVirtualDrone,
                                            image_).value();
    EXPECT_TRUE(runtime_.StartContainer(c->id()).ok());
    VirtualDroneStack stack = BootVirtualDrone(runtime_, c->id()).value();
    return {c, stack};
  }

  // Spawns an app process with the given device permissions granted.
  BinderProc* SpawnApp(Container* vd, const VirtualDroneStack& stack,
                       const std::string& package, Uid uid,
                       const std::vector<std::string>& permissions) {
    auto proc = runtime_.SpawnProcess(vd->id(), package, uid).value();
    for (const std::string& perm : permissions) {
      stack.activity_manager->GrantPermission(uid, perm);
    }
    return proc.binder;
  }

  SimClock clock_;
  DroneGroundTruth truth_;
  HardwareBus bus_;
  BinderDriver driver_;
  ImageStore store_;
  ContainerRuntime runtime_;
  ImageId image_;
  Container* device_ = nullptr;
  DeviceContainerStack device_stack_;
};

TEST_F(ServicesFixture, Table1ServicesPublishedToVirtualDrones) {
  auto [vd, stack] = MakeVdrone("vd1");
  // All four Table-1 services appear in the virtual drone's namespace.
  EXPECT_TRUE(stack.service_manager->HasService(kCameraServiceName));
  EXPECT_TRUE(stack.service_manager->HasService(kLocationServiceName));
  EXPECT_TRUE(stack.service_manager->HasService(kSensorServiceName));
  EXPECT_TRUE(stack.service_manager->HasService(kAudioServiceName));
}

TEST_F(ServicesFixture, AppUsesCameraThroughSharedService) {
  auto [vd, stack] = MakeVdrone("vd1");
  BinderProc* app = SpawnApp(vd, stack, "com.example.survey", 10001,
                             {kPermCamera});
  auto camera = SmGetService(app, kCameraServiceName);
  ASSERT_TRUE(camera.ok());
  Parcel req;
  auto conn = app->Transact(*camera, kCamConnect, req);
  ASSERT_TRUE(conn.ok()) << conn.status();
  auto frame = app->Transact(*camera, kCamCapture, req);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->ReadInt64().value(), 0);  // First frame sequence.
  frame->ReadInt64().value();                // Timestamp.
  EXPECT_EQ(frame->ReadInt32().value(), 3280);
  EXPECT_EQ(frame->ReadInt32().value(), 2464);
  EXPECT_NEAR(frame->ReadDouble().value(), 43.6084298, 1e-6);
}

TEST_F(ServicesFixture, AppWithoutPermissionDenied) {
  auto [vd, stack] = MakeVdrone("vd1");
  BinderProc* app = SpawnApp(vd, stack, "com.example.nosy", 10002, {});
  auto camera = SmGetService(app, kCameraServiceName);
  ASSERT_TRUE(camera.ok());  // Service is visible...
  Parcel req;
  auto conn = app->Transact(*camera, kCamConnect, req);
  EXPECT_EQ(conn.status().code(), StatusCode::kPermissionDenied);  // ...but gated.
}

TEST_F(ServicesFixture, VdcPolicyGatesDeviceAccessDynamically) {
  auto [vd, stack] = MakeVdrone("vd1");
  BinderProc* app = SpawnApp(vd, stack, "com.example.survey", 10001,
                             {kPermCamera});
  // VDC policy: camera only allowed when at a waypoint.
  bool at_waypoint = false;
  stack.activity_manager->SetAndronePolicy(
      [&at_waypoint](const std::string& permission, Uid uid) {
        (void)permission;
        (void)uid;
        return at_waypoint;
      });
  auto camera = SmGetService(app, kCameraServiceName);
  ASSERT_TRUE(camera.ok());
  Parcel req;
  EXPECT_EQ(app->Transact(*camera, kCamConnect, req).status().code(),
            StatusCode::kPermissionDenied);
  at_waypoint = true;
  EXPECT_TRUE(app->Transact(*camera, kCamConnect, req).ok());
  at_waypoint = false;  // Left the waypoint: access revoked.
  EXPECT_EQ(app->Transact(*camera, kCamCapture, req).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ServicesFixture, TwoVirtualDronesIsolatedPermissions) {
  auto [vd1, stack1] = MakeVdrone("vd1");
  auto [vd2, stack2] = MakeVdrone("vd2");
  BinderProc* app1 = SpawnApp(vd1, stack1, "com.a", 10001, {kPermGps});
  BinderProc* app2 = SpawnApp(vd2, stack2, "com.b", 10001, {});  // Same uid!
  auto loc1 = SmGetService(app1, kLocationServiceName);
  auto loc2 = SmGetService(app2, kLocationServiceName);
  ASSERT_TRUE(loc1.ok());
  ASSERT_TRUE(loc2.ok());
  Parcel req;
  // Same uid, different containers: permission routes to each container's
  // own ActivityManager.
  EXPECT_TRUE(app1->Transact(*loc1, kLocGetLast, req).ok());
  EXPECT_EQ(app2->Transact(*loc2, kLocGetLast, req).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ServicesFixture, LocationServiceReturnsFix) {
  auto [vd, stack] = MakeVdrone("vd1");
  BinderProc* app = SpawnApp(vd, stack, "com.a", 10001, {kPermGps});
  auto loc = SmGetService(app, kLocationServiceName);
  Parcel req;
  auto reply = app->Transact(*loc, kLocGetLast, req);
  ASSERT_TRUE(reply.ok());
  EXPECT_NEAR(reply->ReadDouble().value(), 43.6084298, 1e-3);
  EXPECT_NEAR(reply->ReadDouble().value(), -85.8110359, 1e-3);
  EXPECT_NEAR(reply->ReadDouble().value(), 15.0, 10.0);
  reply->ReadDouble().value();
  reply->ReadDouble().value();
  reply->ReadDouble().value();
  EXPECT_TRUE(reply->ReadBool().value());
  EXPECT_GE(reply->ReadInt32().value(), 6);
}

TEST_F(ServicesFixture, SensorServiceReadings) {
  truth_.roll_rate_rads = 0.25;
  auto [vd, stack] = MakeVdrone("vd1");
  BinderProc* app = SpawnApp(vd, stack, "com.a", 10001, {kPermSensors});
  auto sensors = SmGetService(app, kSensorServiceName);
  Parcel req;
  auto imu = app->Transact(*sensors, kSensorReadImu, req);
  ASSERT_TRUE(imu.ok());
  EXPECT_NEAR(imu->ReadDouble().value(), 0.25, 0.05);
  auto baro = app->Transact(*sensors, kSensorReadBaro, req);
  ASSERT_TRUE(baro.ok());
  EXPECT_NEAR(baro->ReadDouble().value(), 15.0, 1.0);
  auto mag = app->Transact(*sensors, kSensorReadMag, req);
  ASSERT_TRUE(mag.ok());
}

TEST_F(ServicesFixture, AudioRecordThroughAudioFlinger) {
  auto [vd, stack] = MakeVdrone("vd1");
  BinderProc* app = SpawnApp(vd, stack, "com.a", 10001, {kPermMicrophone});
  auto audio = SmGetService(app, kAudioServiceName);
  Parcel req;
  req.WriteInt32(4410);
  auto reply = app->Transact(*audio, kAudioRecord, req);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ReadInt32().value(), 4410);
  EXPECT_GT(reply->ReadFd().value(), 0);
}

TEST_F(ServicesFixture, ActiveClientTrackingForRevocation) {
  auto [vd, stack] = MakeVdrone("vd1");
  BinderProc* app = SpawnApp(vd, stack, "com.a", 10001, {kPermCamera});
  auto camera = SmGetService(app, kCameraServiceName);
  Parcel req;
  ASSERT_TRUE(app->Transact(*camera, kCamConnect, req).ok());
  auto active = device_stack_.camera_service->ActiveContainers();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], vd->id());
  auto pids = device_stack_.camera_service->ActivePids(vd->id());
  ASSERT_EQ(pids.size(), 1u);
  EXPECT_EQ(pids[0], app->pid());

  // Voluntary disconnect clears tracking.
  ASSERT_TRUE(app->Transact(*camera, kCamDisconnect, req).ok());
  EXPECT_TRUE(device_stack_.camera_service->ActiveContainers().empty());
}

TEST_F(ServicesFixture, TrustedContainerBypassesPermissionCheck) {
  // Create a "flight" container: native Linux, no ActivityManager.
  Container* flight = runtime_.CreateContainer("flight",
                                               ContainerKind::kFlight,
                                               image_).value();
  ASSERT_TRUE(runtime_.StartContainer(flight->id()).ok());
  // Mark it trusted on a fresh checker (simulating boot-time config).
  DeviceContainerStack restacked = device_stack_;
  auto proc = runtime_.SpawnProcess(flight->id(), "hal_bridge", 0).value();

  // Without trust: denied (no activity@<flight> registered).
  CrossContainerPermissionChecker untrusted(device_stack_.system_server_proc,
                                            -1);
  BinderCallContext ctx{proc.pid, 0, flight->id()};
  EXPECT_FALSE(untrusted.Check(kPermGps, ctx));

  // With trust: allowed.
  CrossContainerPermissionChecker trusted(device_stack_.system_server_proc,
                                          flight->id());
  EXPECT_TRUE(trusted.Check(kPermGps, ctx));
}

TEST_F(ServicesFixture, DevicePermissionMapping) {
  EXPECT_EQ(DeviceToPermission("camera").value(), kPermCamera);
  EXPECT_EQ(DeviceToPermission("flight-control").value(), kPermFlightControl);
  EXPECT_FALSE(DeviceToPermission("x-ray").has_value());
  EXPECT_EQ(KnownDevices().size(), 5u);
}

// App lifecycle: save/restore through the container filesystem.
class CountingApp : public AndroidApp {
 public:
  CountingApp() : AndroidApp("com.example.counter", 10001) {}
  int count = 0;

 protected:
  void OnCreate() override { ++creates; }
  JsonValue OnSaveInstanceState() override {
    JsonObject state;
    state["count"] = count;
    return JsonValue(std::move(state));
  }
  void OnRestoreInstanceState(const JsonValue& state) override {
    count = static_cast<int>(state.GetIntOr("count", 0));
  }

 public:
  int creates = 0;
};

TEST_F(ServicesFixture, AppSaveRestoreAcrossFlights) {
  auto [vd, stack] = MakeVdrone("vd1");
  auto proc = runtime_.SpawnProcess(vd->id(), "com.example.counter",
                                    10001).value();
  CountingApp app;
  app.Create(proc.binder, vd);
  app.count = 17;
  app.SaveInstanceState();
  app.Destroy();

  // "Next flight": a fresh app instance on the same container image.
  CountingApp resumed;
  resumed.Create(proc.binder, vd);
  EXPECT_EQ(resumed.count, 17);
  EXPECT_EQ(resumed.creates, 1);
}

TEST_F(ServicesFixture, AppStateSurvivesCommitToImage) {
  auto [vd, stack] = MakeVdrone("vd1");
  auto proc = runtime_.SpawnProcess(vd->id(), "com.example.counter",
                                    10001).value();
  CountingApp app;
  app.Create(proc.binder, vd);
  app.count = 5;
  app.SaveInstanceState();
  auto image = runtime_.Commit(vd->id(), "vd1-saved");
  ASSERT_TRUE(image.ok());
  auto view = store_.Flatten(*image);
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->at(app.SavedStatePath()).find("\"count\":5"),
            std::string::npos);
}

}  // namespace
}  // namespace androne
