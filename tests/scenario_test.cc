// Scenario DSL tests: assertion expression parsing, manifest loading (XML
// and JSON) with descriptive errors on every malformed construct, the
// canonical-dump round-trip contract, and deterministic template expansion.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/scenario/campaign.h"
#include "src/scenario/generator.h"
#include "src/scenario/manifest.h"
#include "src/scenario/scenario.h"

namespace androne {
namespace {

// --- Assertion expressions ---

TEST(AssertionTest, ParsesEveryOperator) {
  struct Case {
    const char* expr;
    CompareOp op;
  };
  const Case cases[] = {
      {"x <= 3", CompareOp::kLe}, {"x >= 3", CompareOp::kGe},
      {"x == 3", CompareOp::kEq}, {"x != 3", CompareOp::kNe},
      {"x < 3", CompareOp::kLt},  {"x > 3", CompareOp::kGt},
  };
  for (const Case& c : cases) {
    auto parsed = ParseAssertion(c.expr);
    ASSERT_TRUE(parsed.ok()) << c.expr;
    EXPECT_EQ(parsed->op, c.op);
    EXPECT_EQ(parsed->metric, "x");
    EXPECT_DOUBLE_EQ(parsed->value, 3.0);
  }
}

TEST(AssertionTest, ToExprIsCanonicalAndReparses) {
  auto parsed = ParseAssertion("  tenants_rejected   >=    1.0 ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToExpr(), "tenants_rejected >= 1");
  auto again = ParseAssertion(parsed->ToExpr());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToExpr(), parsed->ToExpr());
}

TEST(AssertionTest, RejectsMalformedExpressions) {
  EXPECT_FALSE(ParseAssertion("").ok());
  EXPECT_FALSE(ParseAssertion("completed ==").ok());
  EXPECT_FALSE(ParseAssertion("completed == 1 extra").ok());
  auto bad_op = ParseAssertion("completed ~= 1");
  ASSERT_FALSE(bad_op.ok());
  EXPECT_NE(bad_op.status().message().find("unknown operator"),
            std::string::npos);
  auto bad_number = ParseAssertion("completed == one");
  ASSERT_FALSE(bad_number.ok());
}

TEST(AssertionTest, EvaluationResolvesAcrossResultLayers) {
  WorldResult result;
  result.completed = true;
  result.counters["waypoints_visited"] = 4;
  result.metrics.counters["supervisor.restarts"] = 2;
  result.metrics.gauges["container.memory_mb"] = 512;

  std::vector<AssertionSpec> assertions = {
      *ParseAssertion("completed == 1"),
      *ParseAssertion("waypoints_visited >= 4"),
      *ParseAssertion("supervisor.restarts >= 1"),
      *ParseAssertion("container.memory_mb <= 1024"),
  };
  EXPECT_TRUE(EvaluateAssertions(assertions, result).empty());

  // A missing metric fails with a distinct signature, never passes
  // vacuously.
  std::vector<AssertionSpec> missing = {*ParseAssertion("no.such.metric > 0")};
  auto failed = EvaluateAssertions(missing, result);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "no.such.metric > 0 [missing]");
}

TEST(AssertionTest, DigestGrammarParsesToCanonicalHex) {
  auto parsed = ParseAssertion("digest == 0x42");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(parsed->is_digest);
  EXPECT_EQ(parsed->digest_value, 0x42u);
  EXPECT_EQ(parsed->ToExpr(), "digest == 0x0000000000000042");
  auto again = ParseAssertion(parsed->ToExpr());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToExpr(), parsed->ToExpr());

  // Uppercase hex is accepted and canonicalized to lowercase.
  auto upper = ParseAssertion("flight_digest != 0XDEADBEEF");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(upper->ToExpr(), "flight_digest != 0x00000000deadbeef");
}

TEST(AssertionTest, DigestAssertionsCompareExact64Bits) {
  WorldResult result;
  result.completed = true;
  // A value past 2^53: a round-trip through double would lose the low
  // bits and make the == pass against a corrupted digest.
  result.digest = 0x1f00badc0ffee123ull;
  result.flight_digest = 0x42;

  std::vector<AssertionSpec> good = {
      *ParseAssertion("digest == 0x1f00badc0ffee123"),
      *ParseAssertion("flight_digest == 0x42"),
      *ParseAssertion("digest != 0x1f00badc0ffee124"),
  };
  EXPECT_TRUE(EvaluateAssertions(good, result).empty());

  // One low bit off must fail — and the failure signature is canonical.
  std::vector<AssertionSpec> off_by_a_bit = {
      *ParseAssertion("digest == 0x1f00badc0ffee122")};
  auto failed = EvaluateAssertions(off_by_a_bit, result);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "digest == 0x1f00badc0ffee122");
}

TEST(AssertionTest, RejectsMalformedDigestAssertions) {
  auto ordered = ParseAssertion("digest >= 0x1");
  ASSERT_FALSE(ordered.ok());
  EXPECT_NE(ordered.status().message().find("== and !="), std::string::npos);
  auto decimal = ParseAssertion("digest == 123");
  ASSERT_FALSE(decimal.ok());
  EXPECT_NE(decimal.status().message().find("0x-prefixed"),
            std::string::npos);
  EXPECT_FALSE(ParseAssertion("digest == 0x").ok());
  EXPECT_FALSE(ParseAssertion("flight_digest == 0xg1").ok());
  auto too_long = ParseAssertion("digest == 0x12345678123456789");
  ASSERT_FALSE(too_long.ok());
  EXPECT_NE(too_long.status().message().find("16 hex"), std::string::npos);
}

TEST(AssertionTest, RecoveryBookkeepingResolvesThroughVirtualNames) {
  WorldResult result;
  result.completed = true;
  result.recovery.crashes = 2;
  result.recovery.restores = 1;
  result.recovery.replays_from_boot = 1;
  result.recovery.checkpoints_saved = 5;
  result.recovery.fixed_point_ok = true;
  result.recovery.gave_up = false;

  std::vector<AssertionSpec> assertions = {
      *ParseAssertion("recovery.crashes == 2"),
      *ParseAssertion("recovery.restores >= 1"),
      *ParseAssertion("recovery.replays_from_boot == 1"),
      *ParseAssertion("recovery.checkpoints_saved >= 5"),
      *ParseAssertion("recovery.fixed_point_ok == 1"),
      *ParseAssertion("recovery.gave_up == 0"),
  };
  EXPECT_TRUE(EvaluateAssertions(assertions, result).empty());

  // The virtual names never leak into counters/metrics — they resolve even
  // though the maps are empty — and a gave-up world flips two of them.
  result.recovery.gave_up = true;
  result.recovery.fixed_point_ok = false;
  auto failed = EvaluateAssertions(assertions, result);
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[0], "recovery.fixed_point_ok == 1");
  EXPECT_EQ(failed[1], "recovery.gave_up == 0");
}

TEST(AssertionTest, EmptyListGetsImplicitCompletedContract) {
  WorldResult incomplete;
  incomplete.completed = false;
  auto failed = EvaluateAssertions({}, incomplete);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "completed == 1");

  WorldResult complete;
  complete.completed = true;
  EXPECT_TRUE(EvaluateAssertions({}, complete).empty());
}

// --- Stage-latency SLO sugar: "latency.<stage>.p<N>" ---

TEST(AssertionTest, LatencyStageGrammarParsesAndCanonicalizes) {
  auto parsed = ParseAssertion("latency.plan.p99 <= 250");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->metric, "latency.plan.p99");
  EXPECT_EQ(parsed->ToExpr(), "latency.plan.p99 <= 250");
  // Multi-segment stage names keep everything before the percentile.
  auto nested = ParseAssertion("latency.fly.cohort.p50 <= 1");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->metric, "latency.fly.cohort.p50");
  // Percentile bounds are inclusive at both ends.
  EXPECT_TRUE(ParseAssertion("latency.plan.p1 <= 1").ok());
  EXPECT_TRUE(ParseAssertion("latency.plan.p100 <= 1").ok());
}

TEST(AssertionTest, RejectsMalformedLatencyMetrics) {
  // The latency.* namespace is validated at parse time: a malformed
  // percentile suffix is a parse error, never a vacuous "[missing]".
  const char* bad[] = {
      "latency.plan.p0 <= 1",    // Percentile below 1.
      "latency.plan.p101 <= 1",  // Percentile above 100.
      "latency.plan.p9x <= 1",   // Non-digit in the suffix.
      "latency.plan.p <= 1",     // Empty suffix.
      "latency.plan <= 1",       // No percentile at all.
      "latency..p99 <= 1",       // Empty stage name.
  };
  for (const char* expr : bad) {
    auto parsed = ParseAssertion(expr);
    EXPECT_FALSE(parsed.ok()) << expr;
    if (!parsed.ok()) {
      EXPECT_NE(parsed.status().message().find("latency.<stage>.p<N>"),
                std::string::npos)
          << expr << ": " << parsed.status().message();
    }
  }
}

TEST(AssertionTest, LatencyStageResolvesMergedHistogramsInMilliseconds) {
  WorldResult result;
  result.completed = true;
  Histogram& hist = result.metrics.histograms["latency.plan_us"];
  for (int64_t us : {40000, 50000, 250000}) {
    hist.Record(us);
  }
  // The evaluated value is the conservative bucket upper bound, in
  // milliseconds: <= holds exactly at the percentile, strict < trips.
  const double p99_ms = static_cast<double>(hist.Percentile(0.99)) / 1000.0;
  char at_bound[64];
  std::snprintf(at_bound, sizeof(at_bound), "latency.plan.p99 <= %.9f",
                p99_ms);
  char below_bound[64];
  std::snprintf(below_bound, sizeof(below_bound), "latency.plan.p99 < %.9f",
                p99_ms);
  std::vector<AssertionSpec> assertions = {*ParseAssertion(at_bound)};
  EXPECT_TRUE(EvaluateAssertions(assertions, result).empty());
  std::vector<AssertionSpec> strict = {*ParseAssertion(below_bound)};
  EXPECT_EQ(EvaluateAssertions(strict, result).size(), 1u);

  // A bare "latency.<stage>" histogram (already in µs) is the fallback
  // spelling for the same stage grammar.
  WorldResult bare;
  bare.completed = true;
  bare.metrics.histograms["latency.fly"].Record(900);
  std::vector<AssertionSpec> fallback = {
      *ParseAssertion("latency.fly.p50 <= 1.1")};
  EXPECT_TRUE(EvaluateAssertions(fallback, bare).empty());
}

TEST(AssertionTest, LatencyStageWithoutSamplesReportsMissing) {
  WorldResult result;
  result.completed = true;
  // Absent histogram.
  std::vector<AssertionSpec> absent = {
      *ParseAssertion("latency.bill.p99 <= 100")};
  auto failed = EvaluateAssertions(absent, result);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "latency.bill.p99 <= 100 [missing]");
  // Present but empty histogram: nothing to hold an SLO against.
  result.metrics.histograms["latency.bill_us"];
  failed = EvaluateAssertions(absent, result);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], "latency.bill.p99 <= 100 [missing]");
}

// --- Manifest loading: the good path ---

constexpr char kFullManifest[] = R"(
<campaign name="chaos" seed="7">
  <scenario name="link" repeat="3" tenants_min="2" tenants_max="4"
            dwell_s="5" spread_m="90" annealing="120" profile="rf">
    <net_fault kind="outage" dir="forward" start_s="20" dur_s="6"
               jitter_s="8"/>
    <net_fault kind="burst_loss" start_s="40" dur_s="20" p0="0.35"/>
    <net_fault kind="latency" dir="reverse" start_s="15" dur_s="30"
               p0="2" d0_ms="80"/>
    <assert expr="completed == 1"/>
  </scenario>
  <scenario name="sensors" tenants="2" expect_fail="true">
    <sensor_fault kind="gps_jump" start_s="15" dur_s="10" p0="80" p1="60"/>
    <sensor_fault kind="noise_inflation" channel="imu" start_s="10"
                  dur_s="50" p0="0.05"/>
    <crash_loop count="3" start_s="8" period_s="6"/>
    <assert expr="waypoints_visited >= 100"/>
  </scenario>
  <scenario name="memory" tenants_min="4" tenants_max="5"
            memory_mb="0" tolerate_rejection="true">
    <assert expr="tenants_rejected >= 1"/>
  </scenario>
  <scenario name="recovery" tenants="1">
    <crash at_s="9,22" checkpoint_s="4" jitter_s="5"/>
    <assert expr="completed == 1"/>
    <assert expr="recovery.crashes >= 1"/>
    <assert expr="digest == 0xc0ffee"/>
  </scenario>
</campaign>
)";

TEST(ManifestTest, ParsesFullFeaturedXmlManifest) {
  auto campaign = ParseCampaignManifest(kFullManifest);
  ASSERT_TRUE(campaign.ok()) << campaign.status().message();
  EXPECT_EQ(campaign->name, "chaos");
  EXPECT_EQ(campaign->seed, 7u);
  ASSERT_EQ(campaign->templates.size(), 4u);

  const ScenarioTemplate& link = campaign->templates[0];
  EXPECT_EQ(link.repeat, 3);
  EXPECT_EQ(link.tenants_min, 2);
  EXPECT_EQ(link.tenants_max, 4);
  EXPECT_EQ(link.profile, LinkProfile::kRfRemote);
  ASSERT_EQ(link.net_windows.size(), 3u);
  EXPECT_DOUBLE_EQ(link.net_windows[0].start_jitter_s, 8.0);
  EXPECT_EQ(link.net_windows[1].window.scope, kFaultScopeAll);
  EXPECT_EQ(link.instance_count(), 9);  // 3 repeats x tenants {2,3,4}.

  const ScenarioTemplate& sensors = campaign->templates[1];
  EXPECT_TRUE(sensors.expect_fail);
  EXPECT_TRUE(sensors.crash_loop.enabled());
  EXPECT_EQ(sensors.crash_loop.count, 3);
  ASSERT_EQ(sensors.sensor_windows.size(), 2u);
  // gps_jump's channel is pinned; the manifest may omit it.
  EXPECT_EQ(sensors.sensor_windows[0].window.scope,
            static_cast<int>(SensorChannel::kGps));
  ASSERT_EQ(sensors.assertions.size(), 1u);
  EXPECT_EQ(sensors.assertions[0].ToExpr(), "waypoints_visited >= 100");

  EXPECT_TRUE(campaign->templates[2].tolerate_rejection);

  const ScenarioTemplate& recovery = campaign->templates[3];
  ASSERT_TRUE(recovery.crash.enabled());
  ASSERT_EQ(recovery.crash.at_s.size(), 2u);
  EXPECT_DOUBLE_EQ(recovery.crash.at_s[0], 9.0);
  EXPECT_DOUBLE_EQ(recovery.crash.at_s[1], 22.0);
  EXPECT_DOUBLE_EQ(recovery.crash.checkpoint_s, 4.0);
  EXPECT_TRUE(recovery.crash.phase_checkpoints);  // Default stays on.
  EXPECT_DOUBLE_EQ(recovery.crash.jitter_s, 5.0);
  EXPECT_EQ(recovery.crash.max_restores, 3);
  ASSERT_EQ(recovery.assertions.size(), 3u);
  EXPECT_TRUE(recovery.assertions[2].is_digest);
  EXPECT_EQ(recovery.assertions[2].ToExpr(),
            "digest == 0x0000000000c0ffee");

  EXPECT_EQ(campaign->instance_count(), 9 + 1 + 2 + 1);
}

TEST(ManifestTest, JsonManifestParsesToSameCampaignAsXml) {
  const char* json = R"({
    "name": "chaos",
    "seed": 7,
    "scenarios": [
      {
        "name": "link", "repeat": 3, "tenants_min": 2, "tenants_max": 4,
        "dwell_s": 5, "spread_m": 90, "annealing": 120, "profile": "rf",
        "net_faults": [
          {"kind": "outage", "dir": "forward", "start_s": 20, "dur_s": 6,
           "jitter_s": 8},
          {"kind": "burst_loss", "start_s": 40, "dur_s": 20, "p0": 0.35},
          {"kind": "latency", "dir": "reverse", "start_s": 15, "dur_s": 30,
           "p0": 2, "d0_ms": 80}
        ],
        "asserts": ["completed == 1"]
      },
      {
        "name": "sensors", "tenants": 2, "expect_fail": true,
        "sensor_faults": [
          {"kind": "gps_jump", "start_s": 15, "dur_s": 10, "p0": 80,
           "p1": 60},
          {"kind": "noise_inflation", "channel": "imu", "start_s": 10,
           "dur_s": 50, "p0": 0.05}
        ],
        "crash_loop": {"count": 3, "start_s": 8, "period_s": 6},
        "asserts": ["waypoints_visited >= 100"]
      },
      {
        "name": "memory", "tenants_min": 4, "tenants_max": 5,
        "memory_mb": 0, "tolerate_rejection": true,
        "asserts": ["tenants_rejected >= 1"]
      },
      {
        "name": "recovery", "tenants": 1,
        "crash": {"at_s": "9,22", "checkpoint_s": 4, "jitter_s": 5},
        "asserts": ["completed == 1", "recovery.crashes >= 1",
                    "digest == 0xc0ffee"]
      }
    ]
  })";
  auto from_json = ParseCampaignManifest(json);
  ASSERT_TRUE(from_json.ok()) << from_json.status().message();
  auto from_xml = ParseCampaignManifest(kFullManifest);
  ASSERT_TRUE(from_xml.ok());
  // Equivalence through the canonical dump.
  EXPECT_EQ(DumpCampaignManifest(*from_json), DumpCampaignManifest(*from_xml));
}

// --- Manifest loading: every error path is a descriptive Status ---

void ExpectManifestError(const std::string& text, const char* needle) {
  auto campaign = ParseCampaignManifest(text);
  ASSERT_FALSE(campaign.ok()) << "accepted: " << text;
  EXPECT_NE(campaign.status().message().find(needle), std::string::npos)
      << "error was: " << campaign.status().message();
}

TEST(ManifestTest, RejectsMalformedDocuments) {
  ExpectManifestError("", "empty");
  ExpectManifestError("   \n\t ", "empty");
  EXPECT_FALSE(ParseCampaignManifest("<campaign><scenario></campaign>").ok());
  EXPECT_FALSE(ParseCampaignManifest("{\"name\": }").ok());
  ExpectManifestError("<fleet/>", "root must be <campaign>");
  ExpectManifestError("[1, 2]", "root must be an object");
}

TEST(ManifestTest, RejectsUnknownConstructs) {
  ExpectManifestError("<campaign><mission/></campaign>",
                      "unknown element <mission>");
  ExpectManifestError(
      "<campaign><scenario name=\"x\" color=\"red\"/></campaign>",
      "unknown attribute \"color\"");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><warp/></scenario></campaign>",
      "unknown element <warp>");
  ExpectManifestError("<campaign><scenario/></campaign>",
                      "missing name attribute");
  ExpectManifestError("<campaign><scenario name=\"x\">text</scenario>"
                      "</campaign>",
                      "unexpected text content");
}

TEST(ManifestTest, RejectsBadFaultWindows) {
  // Misspelled kind.
  ExpectManifestError(
      "<campaign><scenario name=\"x\">"
      "<net_fault kind=\"outtage\" start_s=\"1\" dur_s=\"1\"/>"
      "</scenario></campaign>",
      "outtage");
  // Misspelled scope.
  ExpectManifestError(
      "<campaign><scenario name=\"x\">"
      "<sensor_fault kind=\"dropout\" channel=\"sonar\" start_s=\"1\" "
      "dur_s=\"1\"/></scenario></campaign>",
      "sonar");
  // Pinned-channel conflict: a gps_jump is never an imu fault.
  ExpectManifestError(
      "<campaign><scenario name=\"x\">"
      "<sensor_fault kind=\"gps_jump\" channel=\"imu\" start_s=\"1\" "
      "dur_s=\"1\" p0=\"10\"/></scenario></campaign>",
      "gps");
  // Negative start / inverted window / negative jitter.
  ExpectManifestError(
      "<campaign><scenario name=\"x\">"
      "<net_fault kind=\"outage\" start_s=\"-1\" dur_s=\"1\"/>"
      "</scenario></campaign>",
      "negative");
  ExpectManifestError(
      "<campaign><scenario name=\"x\">"
      "<net_fault kind=\"outage\" start_s=\"5\" dur_s=\"-2\"/>"
      "</scenario></campaign>",
      "duration");
  ExpectManifestError(
      "<campaign><scenario name=\"x\">"
      "<net_fault kind=\"outage\" start_s=\"5\" dur_s=\"2\" "
      "jitter_s=\"-1\"/></scenario></campaign>",
      "jitter");
  // Kind-specific parameter range (burst-loss probability).
  ExpectManifestError(
      "<campaign><scenario name=\"x\">"
      "<net_fault kind=\"burst_loss\" start_s=\"1\" dur_s=\"1\" "
      "p0=\"1.5\"/></scenario></campaign>",
      "probability");
}

TEST(ManifestTest, RejectsBadScalarsAndConflicts) {
  ExpectManifestError(
      "<campaign><scenario name=\"x\" repeat=\"2.5\"/></campaign>",
      "not an integer");
  ExpectManifestError(
      "<campaign><scenario name=\"x\" repeat=\"0\"/></campaign>",
      "out of range");
  ExpectManifestError(
      "<campaign><scenario name=\"x\" expect_fail=\"yes\"/></campaign>",
      "not a boolean");
  ExpectManifestError(
      "<campaign><scenario name=\"x\" tenants=\"2\" tenants_min=\"2\"/>"
      "</campaign>",
      "not both");
  ExpectManifestError(
      "<campaign><scenario name=\"x\" tenants_min=\"3\" tenants_max=\"2\"/>"
      "</campaign>",
      "tenants_max < tenants_min");
  ExpectManifestError("<campaign seed=\"-4\"><scenario name=\"x\"/>"
                      "</campaign>",
                      "seed");
  ExpectManifestError(
      "<campaign><scenario name=\"x\" dwell_s=\"oops\"/></campaign>",
      "dwell_s");
}

TEST(ManifestTest, RejectsBadCrashLoopAndAssertions) {
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash_loop/></scenario></campaign>",
      "missing count");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash_loop count=\"2\" "
      "period_s=\"0\"/></scenario></campaign>",
      "period_s");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash_loop count=\"1\"/>"
      "<crash_loop count=\"1\"/></scenario></campaign>",
      "more than one");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><assert/></scenario></campaign>",
      "missing expr");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><assert expr=\"completed ~ 1\"/>"
      "</scenario></campaign>",
      "unknown operator");
}

TEST(ManifestTest, RejectsBadCrashElements) {
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash/></scenario></campaign>",
      "missing at_s");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash at_s=\"oops\"/>"
      "</scenario></campaign>",
      "at_s");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash at_s=\"22,9\"/>"
      "</scenario></campaign>",
      "ascending");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash at_s=\"0\"/>"
      "</scenario></campaign>",
      "positive");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash at_s=\"5\" "
      "checkpoint_s=\"-1\"/></scenario></campaign>",
      "checkpoint_s");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash at_s=\"5\" "
      "jitter_s=\"-1\"/></scenario></campaign>",
      "jitter");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash at_s=\"5\" "
      "max_restores=\"-1\"/></scenario></campaign>",
      "out of range");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash at_s=\"5\"/>"
      "<crash at_s=\"9\"/></scenario></campaign>",
      "more than one <crash>");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><crash at_s=\"5\" "
      "phase_checkpoints=\"maybe\"/></scenario></campaign>",
      "not a boolean");
  ExpectManifestError(
      "<campaign><scenario name=\"x\"><assert expr=\"digest == 99\"/>"
      "</scenario></campaign>",
      "0x-prefixed");
}

TEST(ManifestTest, RejectsBadJsonShapes) {
  ExpectManifestError("{\"scenarios\": 4}", "must be an array");
  ExpectManifestError("{\"scenarios\": [{\"name\": \"x\", \"asserts\": "
                      "[42]}]}",
                      "expected a string expression");
  ExpectManifestError("{\"scenarios\": [{\"name\": \"x\", \"net_faults\": "
                      "{}}]}",
                      "expected an array");
  ExpectManifestError("{\"scenarios\": [{\"name\": \"x\", \"crash_loop\": "
                      "[1]}]}",
                      "expected an object");
}

// --- The round-trip contract: dump o parse is idempotent, byte-for-byte ---

TEST(ManifestTest, DumpParseRoundTripIsByteStable) {
  auto campaign = ParseCampaignManifest(kFullManifest);
  ASSERT_TRUE(campaign.ok());
  std::string canonical = DumpCampaignManifest(*campaign);

  auto reparsed = ParseCampaignManifest(canonical);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(DumpCampaignManifest(*reparsed), canonical);

  // Twice more for good measure: the canonical form is a fixed point.
  auto again = ParseCampaignManifest(DumpCampaignManifest(*reparsed));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(DumpCampaignManifest(*again), canonical);
}

TEST(ManifestTest, DumpOmitsDefaultsAndEnablesMinimalManifests) {
  CampaignSpec campaign;
  ScenarioTemplate tmpl;
  tmpl.name = "plain";
  campaign.templates.push_back(tmpl);
  // Only the campaign wrapper (the dump must re-parse, and the loader
  // requires a <campaign> root) and the scenario name survive; every
  // defaulted attribute is omitted.
  std::string text = DumpCampaignManifest(campaign);
  EXPECT_EQ(text, "<campaign>\n  <scenario name=\"plain\"/>\n</campaign>\n");

  auto parsed = ParseCampaignManifest("<campaign><scenario name=\"plain\"/>"
                                      "</campaign>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->templates[0].dwell_s, tmpl.dwell_s);
  EXPECT_EQ(parsed->templates[0].annealing, tmpl.annealing);
}

// --- Generator expansion ---

CampaignSpec TwoTemplateCampaign() {
  CampaignSpec campaign;
  campaign.seed = 99;
  ScenarioTemplate a;
  a.name = "alpha";
  a.repeat = 3;
  a.tenants_min = 1;
  a.tenants_max = 2;
  JitteredWindow w;
  w.window.kind = static_cast<int>(FaultKind::kOutage);
  w.window.scope = static_cast<int>(LinkDirection::kForward);
  w.window.start = SecondsF(20);
  w.window.end = SecondsF(26);
  w.start_jitter_s = 8;
  a.net_windows.push_back(w);
  campaign.templates.push_back(a);
  ScenarioTemplate b;
  b.name = "beta";
  b.repeat = 2;
  campaign.templates.push_back(b);
  return campaign;
}

TEST(GeneratorTest, ExpandsTemplatesInStableOrderWithUniqueSeeds) {
  auto scenarios = ExpandScenarios(TwoTemplateCampaign());
  ASSERT_TRUE(scenarios.ok());
  ASSERT_EQ(scenarios->size(), 3u * 2u + 2u);
  EXPECT_EQ((*scenarios)[0].name, "alpha/t1#0");
  EXPECT_EQ((*scenarios)[2].name, "alpha/t1#2");
  EXPECT_EQ((*scenarios)[3].name, "alpha/t2#0");
  EXPECT_EQ((*scenarios)[6].name, "beta/t2#0");
  EXPECT_EQ((*scenarios)[6].family, "beta");
  EXPECT_EQ((*scenarios)[3].world.tenants, 2);

  for (size_t i = 0; i < scenarios->size(); ++i) {
    EXPECT_NE((*scenarios)[i].seed, 0u);
    for (size_t j = i + 1; j < scenarios->size(); ++j) {
      EXPECT_NE((*scenarios)[i].seed, (*scenarios)[j].seed)
          << (*scenarios)[i].name << " vs " << (*scenarios)[j].name;
    }
  }
}

TEST(GeneratorTest, ExpansionIsDeterministic) {
  auto first = ExpandScenarios(TwoTemplateCampaign());
  auto second = ExpandScenarios(TwoTemplateCampaign());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].seed, (*second)[i].seed);
    ASSERT_EQ((*first)[i].net_faults.schedule().windows().size(),
              (*second)[i].net_faults.schedule().windows().size());
    for (size_t w = 0; w < (*first)[i].net_faults.schedule().windows().size();
         ++w) {
      EXPECT_EQ((*first)[i].net_faults.schedule().windows()[w].start,
                (*second)[i].net_faults.schedule().windows()[w].start);
    }
  }
}

TEST(GeneratorTest, JitterShiftsWindowsPerInstanceButPreservesDuration) {
  auto scenarios = ExpandScenarios(TwoTemplateCampaign());
  ASSERT_TRUE(scenarios.ok());
  const SimDuration expected = SecondsF(6);
  bool any_shifted = false;
  for (size_t i = 0; i < 6; ++i) {  // The alpha instances.
    const auto& windows = (*scenarios)[i].net_faults.schedule().windows();
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_GE(windows[0].start, 0);
    EXPECT_EQ(windows[0].end - windows[0].start, expected);
    if (windows[0].start != SecondsF(20)) {
      any_shifted = true;
    }
  }
  EXPECT_TRUE(any_shifted);  // Jitter actually engages across the sweep.
}

TEST(GeneratorTest, RejectsStructurallyInvalidTemplates) {
  CampaignSpec campaign;
  ScenarioTemplate bad;
  bad.name = "bad";
  bad.repeat = 0;
  campaign.templates.push_back(bad);
  EXPECT_FALSE(ExpandScenarios(campaign).ok());

  campaign.templates[0].repeat = 1;
  campaign.templates[0].tenants_min = 3;
  campaign.templates[0].tenants_max = 2;
  EXPECT_FALSE(ExpandScenarios(campaign).ok());

  campaign.templates[0].name = "";
  campaign.templates[0].tenants_max = 3;
  EXPECT_FALSE(ExpandScenarios(campaign).ok());
}

TEST(GeneratorTest, CrashFamilyExpandsIntoWorldConfigWithSharedShift) {
  CampaignSpec campaign;
  campaign.seed = 7;
  ScenarioTemplate tmpl;
  tmpl.name = "crashrec";
  tmpl.repeat = 8;
  tmpl.crash.at_s = {9, 22};
  tmpl.crash.checkpoint_s = 4;
  tmpl.crash.jitter_s = 5;
  tmpl.crash.max_restores = 2;
  campaign.templates.push_back(tmpl);

  auto scenarios = ExpandScenarios(campaign);
  ASSERT_TRUE(scenarios.ok()) << scenarios.status().message();
  ASSERT_EQ(scenarios->size(), 8u);
  bool any_shifted = false;
  for (const ScenarioSpec& spec : *scenarios) {
    ASSERT_EQ(spec.world.crash_at_s.size(), 2u);
    EXPECT_GE(spec.world.crash_at_s[0], 0.0);
    // One shift for the whole schedule: the inter-crash gap is invariant.
    EXPECT_DOUBLE_EQ(spec.world.crash_at_s[1] - spec.world.crash_at_s[0],
                     13.0);
    EXPECT_DOUBLE_EQ(spec.world.checkpoint.period_s, 4.0);
    EXPECT_TRUE(spec.world.checkpoint.at_phase_boundaries);
    EXPECT_EQ(spec.world.restore.max_restores, 2);
    if (spec.world.crash_at_s[0] != 9.0) {
      any_shifted = true;
    }
  }
  EXPECT_TRUE(any_shifted);  // Jitter actually engages across the sweep.

  // Same campaign, same expansion: crash schedules replay exactly.
  auto again = ExpandScenarios(campaign);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < scenarios->size(); ++i) {
    EXPECT_EQ((*scenarios)[i].world.crash_at_s,
              (*again)[i].world.crash_at_s);
  }
}

TEST(GeneratorTest, RejectsInvalidCrashPlans) {
  CampaignSpec campaign;
  ScenarioTemplate tmpl;
  tmpl.name = "bad";
  tmpl.crash.at_s = {5, 5};  // Not strictly ascending.
  campaign.templates.push_back(tmpl);
  EXPECT_FALSE(ExpandScenarios(campaign).ok());

  campaign.templates[0].crash.at_s = {5, 9};
  campaign.templates[0].crash.checkpoint_s = -1;
  EXPECT_FALSE(ExpandScenarios(campaign).ok());

  campaign.templates[0].crash.checkpoint_s = 0;
  campaign.templates[0].crash.max_restores = -1;
  EXPECT_FALSE(ExpandScenarios(campaign).ok());

  campaign.templates[0].crash.max_restores = 3;
  EXPECT_TRUE(ExpandScenarios(campaign).ok());
}

TEST(GeneratorTest, ScenarioWorldConfigPinsOnlyNonEmptyPlans) {
  auto scenarios = ExpandScenarios(TwoTemplateCampaign());
  ASSERT_TRUE(scenarios.ok());
  FleetWorldConfig with_faults = ScenarioWorldConfig((*scenarios)[0]);
  EXPECT_EQ(with_faults.net_faults, &(*scenarios)[0].net_faults);
  EXPECT_EQ(with_faults.sensor_faults, nullptr);
  FleetWorldConfig plain = ScenarioWorldConfig((*scenarios)[6]);
  EXPECT_EQ(plain.net_faults, nullptr);
  EXPECT_EQ(plain.sensor_faults, nullptr);
}

// --- Link profile vocabulary (the scenario DSL's profile attribute) ---

TEST(LinkProfileTest, NamesRoundTrip) {
  for (LinkProfile profile : {LinkProfile::kCellularLte,
                              LinkProfile::kRfRemote,
                              LinkProfile::kWired}) {
    auto back = LinkProfileFromName(LinkProfileName(profile));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, profile);
  }
  EXPECT_FALSE(LinkProfileFromName("carrier-pigeon").ok());
}

}  // namespace
}  // namespace androne
