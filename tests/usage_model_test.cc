// Usage-model tests (paper §2): flight abort on inclement weather with
// resume on a later flight, estimated operating windows, and per-tenant
// energy-based invoices.
#include <gtest/gtest.h>

#include "src/cloud/billing.h"
#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/core/drone.h"

namespace androne {
namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};

VirtualDroneDefinition TwoWaypointDefinition(const std::string& id) {
  VirtualDroneDefinition def;
  def.id = id;
  def.owner = "alice";
  def.waypoints = {WaypointSpec{FromNed(kBase, NedPoint{60, 0, -15}), 30},
                   WaypointSpec{FromNed(kBase, NedPoint{120, 0, -15}), 30}};
  def.max_duration_s = 600;
  def.energy_allotted_j = 90000;
  def.waypoint_devices = {"camera", "flight-control"};
  return def;
}

std::vector<PlannerJob> JobsFor(const VirtualDroneDefinition& def,
                                double dwell_s) {
  std::vector<PlannerJob> jobs;
  for (size_t i = 0; i < def.waypoints.size(); ++i) {
    PlannerJob job;
    job.vdrone_ref = def.id;
    job.waypoint_index = static_cast<int>(i);
    job.waypoint = def.waypoints[i].point;
    job.service_time_s = dwell_s;
    job.service_energy_j = 170.0 * dwell_s;
    job.ordered = true;  // Deterministic visit order for the test.
    jobs.push_back(job);
  }
  return jobs;
}

TEST(AbortTest, WeatherAbortSavesResumableAndReturnsHome) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  options.no_control_dwell_s = 30;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());
  VirtualDroneDefinition def = TwoWaypointDefinition("vd-weather");
  def.apps.clear();
  ASSERT_TRUE(system.Deploy(def, WhitelistTemplate::kFull).ok());

  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kBase;
  pc.annealing_iterations = 1000;
  FlightPlanner planner(energy, pc);
  auto jobs = JobsFor(def, 60);
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok()) << plan.status();

  // Storm front arrives 40 s into the flight (during the first tenancy).
  clock.ScheduleAfter(Seconds(40),
                      [&system] { system.RequestAbort("inclement weather"); });

  auto report = system.ExecuteRoute(plan->routes[0], jobs);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->completed);
  EXPECT_LT(report->waypoints_visited, 2u);
  bool aborted_event = false;
  for (const std::string& event : report->events) {
    aborted_event |= event.find("aborted") != std::string::npos;
  }
  EXPECT_TRUE(aborted_event);
  // The drone still returned to base and landed.
  EXPECT_FALSE(system.flight().armed());
  EXPECT_LT(HaversineMeters(system.physics().truth().position, kBase), 6.0);
  // The tenant is saved resumable with its progress intact.
  auto stored = system.vdr().Load("vd-weather");
  ASSERT_TRUE(stored.ok());
  EXPECT_TRUE(stored->resumable);

  // --- Later flight on another drone: only the unserved waypoint flies.
  SimClock clock2;
  AnDroneOptions options2 = options;
  options2.seed = 7;
  AnDroneSystem second(&clock2, options2);
  ASSERT_TRUE(second.Boot().ok());
  second.vdr().Save("vd-weather", *stored);
  auto resumed = second.Deploy(def, WhitelistTemplate::kFull);
  ASSERT_TRUE(resumed.ok());
  size_t already_served = (*resumed)->waypoints_served;
  std::vector<PlannerJob> remaining;
  for (size_t i = already_served; i < def.waypoints.size(); ++i) {
    remaining.push_back(jobs[i]);
    remaining.back().ordered = false;
  }
  ASSERT_FALSE(remaining.empty());
  auto plan2 = planner.Plan(remaining);
  ASSERT_TRUE(plan2.ok());
  auto report2 = second.ExecuteRoute(plan2->routes[0], remaining);
  ASSERT_TRUE(report2.ok()) << report2.status();
  EXPECT_TRUE(report2->completed);
  auto vd2 = second.vdc().Find("vd-weather");
  ASSERT_TRUE(vd2.ok());
  EXPECT_EQ((*vd2)->waypoints_served, def.waypoints.size());
  EXPECT_TRUE((*vd2)->finished_last_waypoint);
}

TEST(EtaTest, PlanReportsOperatingWindows) {
  VirtualDroneDefinition def = TwoWaypointDefinition("vd-eta");
  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kBase;
  pc.annealing_iterations = 1000;
  FlightPlanner planner(energy, pc);
  auto jobs = JobsFor(def, 45);
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok());
  auto eta0 = plan->EtaSecondsFor(jobs, "vd-eta", 0);
  auto eta1 = plan->EtaSecondsFor(jobs, "vd-eta", 1);
  ASSERT_TRUE(eta0.ok());
  ASSERT_TRUE(eta1.ok());
  // Ordered jobs: waypoint 1's window starts after waypoint 0's dwell.
  EXPECT_GT(*eta1, *eta0 + 44.0);
  // Travel at ~6 m/s over 60 m plus climb: the first window is plausible.
  EXPECT_GT(*eta0, 5.0);
  EXPECT_LT(*eta0, 60.0);
  EXPECT_FALSE(plan->EtaSecondsFor(jobs, "vd-eta", 9).ok());
  EXPECT_FALSE(plan->EtaSecondsFor(jobs, "nobody", 0).ok());
}

TEST(InvoiceTest, EnergyAndStorageBilled) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());
  VirtualDroneDefinition def = TwoWaypointDefinition("vd-bill");
  auto vd = system.Deploy(def, WhitelistTemplate::kFull);
  ASSERT_TRUE(vd.ok());

  // Simulate a 30 s tenancy plus a 2 MB video marked for the user.
  ASSERT_TRUE(system.vdc().NotifyWaypointReached("vd-bill", 0).ok());
  for (int i = 0; i < 30; ++i) {
    system.vdc().AccountActiveTenant(Seconds(1));
  }
  (*vd)->container->WriteFile("/data/video.bin", std::string(2'000'000, 'v'));
  (*vd)->files_for_user.push_back("/data/video.bin");
  ASSERT_TRUE(system.vdc()
                  .NotifyWaypointLeft("vd-bill", TenancyEndReason::kCompleted)
                  .ok());

  Billing billing;
  auto invoice = system.vdc().InvoiceFor("vd-bill", billing);
  ASSERT_TRUE(invoice.ok());
  EXPECT_EQ(invoice->owner, "alice");
  EXPECT_NEAR(invoice->energy_used_j, 170.0 * 30, 200.0);
  EXPECT_NEAR(invoice->energy_cost,
              invoice->energy_used_j / 1e6 * 2.50, 1e-6);
  EXPECT_EQ(invoice->storage_bytes, 2'000'000u);
  EXPECT_NEAR(invoice->storage_cost, 2e6 / 1e9 * 0.10, 1e-9);
  EXPECT_NEAR(invoice->total, invoice->energy_cost + invoice->storage_cost,
              1e-12);
  // The invoice stays under what the allotment would have cost: the user
  // is billed for usage, bounded by their maximum charge.
  Billing bounding;
  EXPECT_LT(invoice->total,
            bounding.Estimate(def.energy_allotted_j, 170).total_cost + 0.01);
}

}  // namespace
}  // namespace androne
