#include "src/util/sim_clock.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/time.h"

namespace androne {
namespace {

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  EXPECT_TRUE(clock.empty());
}

TEST(SimClockTest, RunNextAdvancesToEventTime) {
  SimClock clock;
  bool ran = false;
  clock.ScheduleAt(Millis(5), [&] { ran = true; });
  EXPECT_TRUE(clock.RunNext());
  EXPECT_TRUE(ran);
  EXPECT_EQ(clock.now(), Millis(5));
  EXPECT_FALSE(clock.RunNext());
}

TEST(SimClockTest, EventsRunInTimeOrder) {
  SimClock clock;
  std::vector<int> order;
  clock.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  clock.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  clock.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  clock.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimClockTest, EqualTimesRunFifo) {
  SimClock clock;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.ScheduleAt(Millis(1), [&order, i] { order.push_back(i); });
  }
  clock.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimClockTest, ScheduleAfterUsesCurrentTime) {
  SimClock clock;
  clock.ScheduleAt(Millis(10), [] {});
  clock.RunNext();
  SimTime fired_at = -1;
  clock.ScheduleAfter(Millis(5), [&] { fired_at = clock.now(); });
  clock.RunNext();
  EXPECT_EQ(fired_at, Millis(15));
}

TEST(SimClockTest, PastDeadlinesClampToNow) {
  SimClock clock;
  clock.ScheduleAt(Millis(10), [] {});
  clock.RunNext();
  SimTime fired_at = -1;
  clock.ScheduleAt(Millis(1), [&] { fired_at = clock.now(); });
  clock.RunNext();
  EXPECT_EQ(fired_at, Millis(10));  // Not earlier than now.
}

TEST(SimClockTest, CancelPreventsExecution) {
  SimClock clock;
  bool ran = false;
  EventId id = clock.ScheduleAt(Millis(1), [&] { ran = true; });
  EXPECT_TRUE(clock.Cancel(id));
  EXPECT_TRUE(clock.empty());
  clock.RunAll();
  EXPECT_FALSE(ran);
}

TEST(SimClockTest, CancelOfRunEventReturnsFalse) {
  SimClock clock;
  EventId id = clock.ScheduleAt(Millis(1), [] {});
  clock.RunNext();
  EXPECT_FALSE(clock.Cancel(id));
}

TEST(SimClockTest, CancelUnknownIdReturnsFalse) {
  SimClock clock;
  EXPECT_FALSE(clock.Cancel(12345));
}

TEST(SimClockTest, RunUntilAdvancesClockEvenWhenIdle) {
  SimClock clock;
  clock.RunUntil(Seconds(3));
  EXPECT_EQ(clock.now(), Seconds(3));
}

TEST(SimClockTest, RunUntilRunsOnlyDueEvents) {
  SimClock clock;
  int ran = 0;
  clock.ScheduleAt(Millis(10), [&] { ++ran; });
  clock.ScheduleAt(Millis(20), [&] { ++ran; });
  clock.RunUntil(Millis(15));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(clock.now(), Millis(15));
  EXPECT_EQ(clock.pending_events(), 1u);
}

TEST(SimClockTest, EventsMayScheduleMoreEvents) {
  SimClock clock;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      clock.ScheduleAfter(Millis(1), chain);
    }
  };
  clock.ScheduleAfter(Millis(1), chain);
  clock.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(clock.now(), Millis(5));
}

TEST(SimClockTest, RunForAdvancesRelative) {
  SimClock clock;
  clock.RunFor(Seconds(1));
  clock.RunFor(Seconds(1));
  EXPECT_EQ(clock.now(), Seconds(2));
}

TEST(SimClockTest, RunAllGuardStopsRunawayLoops) {
  SimClock clock;
  uint64_t ran = 0;
  std::function<void()> forever = [&] {
    ++ran;
    clock.ScheduleAfter(Millis(1), forever);
  };
  clock.ScheduleAfter(Millis(1), forever);
  clock.RunAll(/*max_events=*/1000);
  EXPECT_EQ(ran, 1000u);
}

TEST(SimClockTest, CancelledPendingTracksTombstones) {
  SimClock clock;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(clock.ScheduleAt(Millis(i + 1), [] {}));
  }
  EXPECT_EQ(clock.cancelled_pending(), 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(clock.Cancel(ids[i]));
  }
  EXPECT_EQ(clock.cancelled_pending(), 4u);
  EXPECT_EQ(clock.pending_events(), 6u);
  clock.RunAll();
  EXPECT_EQ(clock.cancelled_pending(), 0u);  // Tombstones shed by the pops.
  EXPECT_EQ(clock.pending_events(), 0u);
  EXPECT_EQ(clock.events_run(), 6u);
}

TEST(SimClockTest, CompactionBoundsTombstoneAccumulation) {
  SimClock clock;
  // A retry-timer workload: schedule far-future timers and cancel nearly all
  // of them. Without compaction the heap would hold every tombstone until
  // the end of time.
  std::vector<EventId> ids;
  for (int i = 0; i < 512; ++i) {
    ids.push_back(clock.ScheduleAt(Seconds(1000 + i), [] {}));
  }
  for (int i = 0; i < 512; ++i) {
    if (i % 8 != 0) {
      EXPECT_TRUE(clock.Cancel(ids[i]));
    }
  }
  EXPECT_EQ(clock.pending_events(), 64u);
  EXPECT_GE(clock.compactions(), 1u);
  // Compaction keeps tombstones at no more than half the heap.
  EXPECT_LE(clock.cancelled_pending(), clock.pending_events());
  int ran = 0;
  clock.ScheduleAt(Millis(1), [&] { ++ran; });
  clock.RunAll();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(clock.events_run(), 65u);
  EXPECT_EQ(clock.cancelled_pending(), 0u);
}

TEST(SimClockTest, SlotReuseAfterCancelKeepsIdsDistinct) {
  SimClock clock;
  bool a_ran = false;
  bool b_ran = false;
  EventId a = clock.ScheduleAt(Millis(1), [&] { a_ran = true; });
  EXPECT_TRUE(clock.Cancel(a));
  // b may recycle a's slot, but a's id must stay dead.
  EventId b = clock.ScheduleAt(Millis(2), [&] { b_ran = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(clock.Cancel(a));
  clock.RunAll();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
}

TEST(SimClockTest, EventIdsAreNeverZero) {
  SimClock clock;
  for (int i = 0; i < 100; ++i) {
    EventId id = clock.ScheduleAfter(Millis(1), [] {});
    EXPECT_NE(id, 0u);  // 0 is the "no event" sentinel for callers.
    clock.Cancel(id);
  }
}

TEST(SimClockTest, RunUntilDoesNotOverrunPastCancelledFront) {
  SimClock clock;
  int ran = 0;
  EventId early = clock.ScheduleAt(Millis(10), [&] { ++ran; });
  clock.ScheduleAt(Millis(20), [&] { ++ran; });
  clock.Cancel(early);
  // The tombstone at 10 ms must not let the 20 ms event run at 15 ms.
  clock.RunUntil(Millis(15));
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(clock.now(), Millis(15));
  clock.RunUntil(Millis(25));
  EXPECT_EQ(ran, 1);
}

TEST(TimeTest, ConversionHelpers) {
  EXPECT_EQ(Micros(1), 1000);
  EXPECT_EQ(Millis(1), 1000000);
  EXPECT_EQ(Seconds(1), 1000000000);
  EXPECT_EQ(SecondsF(0.0025), 2500000);
  EXPECT_DOUBLE_EQ(ToSecondsF(Seconds(2)), 2.0);
  EXPECT_EQ(ToMicros(Millis(3)), 3000);
  EXPECT_EQ(ToMillis(Seconds(4)), 4000);
}

}  // namespace
}  // namespace androne
