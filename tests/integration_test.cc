// Cross-module integration and failure-injection tests: battery failsafe,
// virtual drone resume on a different physical drone, lossy-network control,
// sensor degradation, and the kernel-latency/flight coupling.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/drone.h"
#include "src/core/reference_apps.h"
#include "src/flight/sitl.h"
#include "src/net/channel.h"
#include "src/services/device_services.h"

namespace androne {
namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};
const GeoPoint kWaypointA{43.6084298, -85.8110359, 15};
const GeoPoint kWaypointB{43.6076409, -85.8154457, 15};

// ------------------------------------------------------- Battery failsafe.

TEST(FailsafeTest, LowBatteryForcesRtlAndLanding) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 21);
  clock.RunFor(Seconds(2));
  // Drain the pack to just above the failsafe line, then hover.
  drone.battery().Drain(170.0,
                        SecondsF(drone.battery().capacity_joules() / 170.0 *
                                 0.82));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(12.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 11.0; },
      Seconds(60)));
  // Fly away; the failsafe must bring it home regardless.
  GeoPoint away = FromNed(kBase, NedPoint{60, 0, -12});
  drone.GotoCmd(away);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.controller().battery_failsafe_triggered(); },
      Seconds(300)));
  EXPECT_TRUE(drone.RunUntil([&] { return !drone.controller().armed(); },
                             Seconds(300)));
  EXPECT_LT(HaversineMeters(drone.physics().truth().position, kBase), 6.0);
  bool saw_failsafe_text = false;
  for (const std::string& text : drone.status_texts()) {
    saw_failsafe_text |= text.find("Battery failsafe") != std::string::npos;
  }
  EXPECT_TRUE(saw_failsafe_text);
}

TEST(FailsafeTest, FailsafeDisabledWhenConfiguredOff) {
  SimClock clock;
  // Build a SITL drone and switch the failsafe off via its config... the
  // SITL harness uses defaults, so construct the controller directly.
  QuadPhysics physics(kBase);
  MotorSet motors;
  (void)motors.Open(0);
  GpsReceiver gps(&clock, physics.mutable_truth(), 1);
  Imu imu(&clock, physics.mutable_truth(), 2);
  Barometer baro(&clock, physics.mutable_truth(), 3);
  Magnetometer mag(&clock, physics.mutable_truth(), 4);
  (void)gps.Open(0);
  (void)imu.Open(0);
  (void)baro.Open(0);
  (void)mag.Open(0);
  DirectSensorSource sensors(&gps, &imu, &baro, &mag, 0);
  Battery battery;
  FlightControllerConfig config;
  config.home = kBase;
  config.battery_failsafe_fraction = 0.0;  // Disabled.
  FlightController controller(&clock, &physics, &motors, &sensors, &battery,
                              config);
  controller.Start();
  clock.RunFor(Seconds(2));
  battery.Drain(170.0, SecondsF(battery.capacity_joules() / 170.0 * 0.95));
  SetMode guided;
  guided.custom_mode = static_cast<uint32_t>(CopterMode::kGuided);
  controller.HandleFrame(PackMessage(MavMessage{guided}));
  CommandLong arm;
  arm.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
  arm.param1 = 1;
  controller.HandleFrame(PackMessage(MavMessage{arm}));
  CommandLong takeoff;
  takeoff.command = static_cast<uint16_t>(MavCmd::kNavTakeoff);
  takeoff.param7 = 10;
  controller.HandleFrame(PackMessage(MavMessage{takeoff}));
  clock.RunFor(Seconds(30));
  EXPECT_FALSE(controller.battery_failsafe_triggered());
  EXPECT_EQ(controller.mode(), CopterMode::kGuided);
}

// --------------------------------------------- Resume on another drone.

const char kCounterManifest[] = R"(
<androne-manifest package="com.example.counter">
  <uses-permission name="camera" type="waypoint"/>
</androne-manifest>)";

class CounterApp : public AndroneApp {
 public:
  CounterApp() : AndroneApp("com.example.counter", 0) {}
  int waypoints_done = 0;

  void WaypointActive(const WaypointSpec&) override {
    ++waypoints_done;
    SaveInstanceState();
    sdk()->WaypointCompleted();
  }

 protected:
  JsonValue OnSaveInstanceState() override {
    JsonObject state;
    state["done"] = waypoints_done;
    return JsonValue(std::move(state));
  }
  void OnRestoreInstanceState(const JsonValue& state) override {
    waypoints_done = static_cast<int>(state.GetIntOr("done", 0));
  }
};

TEST(ResumeTest, InterruptedVirtualDroneResumesOnAnotherDrone) {
  VirtualDroneDefinition def;
  def.id = "vd-resume";
  def.owner = "alice";
  def.waypoints = {WaypointSpec{kWaypointA, 30}, WaypointSpec{kWaypointB, 30}};
  def.max_duration_s = 600;
  def.energy_allotted_j = 90000;
  def.waypoint_devices = {"camera"};
  def.apps = {"com.example.counter"};

  StoredVirtualDrone saved;
  {
    // Flight 1, drone A: serve waypoint 0, then weather interrupts.
    SimClock clock;
    AnDroneOptions options;
    options.base = kBase;
    AnDroneSystem drone_a(&clock, options);
    ASSERT_TRUE(drone_a.Boot().ok());
    CounterApp* app = nullptr;
    drone_a.vdc().RegisterAppFactory(
        "com.example.counter",
        [&app] {
          auto a = std::make_unique<CounterApp>();
          app = a.get();
          return a;
        },
        kCounterManifest);
    ASSERT_TRUE(drone_a.Deploy(def).ok());
    ASSERT_TRUE(drone_a.vdc().NotifyWaypointReached("vd-resume", 0).ok());
    ASSERT_TRUE(drone_a.vdc()
                    .NotifyWaypointLeft("vd-resume",
                                        TenancyEndReason::kInterrupted)
                    .ok());
    EXPECT_EQ(app->waypoints_done, 1);
    ASSERT_TRUE(drone_a.vdc().StoreToVdr("vd-resume", /*resumable=*/true).ok());
    saved = drone_a.vdr().Load("vd-resume").value();
  }
  ASSERT_TRUE(saved.resumable);

  // Flight 2, drone B: a different physical drone pulls the virtual drone
  // from the (shared) VDR; the app resumes with its saved count.
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  options.seed = 99;
  AnDroneSystem drone_b(&clock, options);
  ASSERT_TRUE(drone_b.Boot().ok());
  drone_b.vdr().Save("vd-resume", saved);
  CounterApp* resumed = nullptr;
  drone_b.vdc().RegisterAppFactory(
      "com.example.counter",
      [&resumed] {
        auto a = std::make_unique<CounterApp>();
        resumed = a.get();
        return a;
      },
      kCounterManifest);
  ASSERT_TRUE(drone_b.Deploy(def).ok());
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->waypoints_done, 1);  // State carried across drones.
  // Serve the remaining waypoint.
  ASSERT_TRUE(drone_b.vdc().NotifyWaypointReached("vd-resume", 1).ok());
  ASSERT_TRUE(drone_b.vdc()
                  .NotifyWaypointLeft("vd-resume",
                                      TenancyEndReason::kCompleted)
                  .ok());
  EXPECT_EQ(resumed->waypoints_done, 2);
  auto vd = drone_b.vdc().Find("vd-resume");
  ASSERT_TRUE(vd.ok());
  EXPECT_TRUE((*vd)->finished_last_waypoint);
}

// ----------------------------------------------- Lossy cellular control.

TEST(NetworkRobustnessTest, GuidedFlightSurvivesLossyLink) {
  // Drive the drone over a link with 100x the LTE loss rate; guided-mode
  // position targets are idempotent, so control still converges.
  class LossyLte : public CellularLteModel {
   public:
    bool SampleLoss(Rng& rng) const override { return rng.Bernoulli(0.004); }
  };
  SimClock clock;
  SitlDrone drone(&clock, kBase, 31);
  clock.RunFor(Seconds(2));
  LossyLte lossy;
  NetworkChannel uplink(&clock, &lossy, 5);
  MavlinkParser parser;
  uplink.SetReceiver([&](const std::vector<uint8_t>& datagram) {
    parser.Feed(datagram);
    for (const MavlinkFrame& frame : parser.TakeFrames()) {
      drone.controller().HandleFrame(frame);
    }
  });
  auto send = [&uplink](const MavMessage& message) {
    uplink.Send(EncodeFrame(PackMessage(message)));
  };

  SetMode guided;
  guided.custom_mode = static_cast<uint32_t>(CopterMode::kGuided);
  send(MavMessage{guided});
  CommandLong arm;
  arm.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
  arm.param1 = 1;
  send(MavMessage{arm});
  clock.RunFor(Seconds(1));
  CommandLong takeoff;
  takeoff.command = static_cast<uint16_t>(MavCmd::kNavTakeoff);
  takeoff.param7 = 15;
  send(MavMessage{takeoff});
  GeoPoint target = kWaypointB;
  // A GCS keeps re-sending the current target at 1 Hz, as real ones do.
  SetPositionTargetGlobalInt sp;
  sp.lat_int = static_cast<int32_t>(target.latitude_deg * 1e7);
  sp.lon_int = static_cast<int32_t>(target.longitude_deg * 1e7);
  sp.alt = 15;
  sp.type_mask = 0x0FF8;
  bool arrived = false;
  for (int i = 0; i < 240 && !arrived; ++i) {
    send(MavMessage{sp});
    clock.RunFor(Seconds(1));
    arrived = drone.DistanceTo(target) < 3.0;
  }
  EXPECT_TRUE(arrived) << "remaining " << drone.DistanceTo(target);
}

// ------------------------------------------------- Sensor degradation.

TEST(SensorFailureTest, GpsOutageIsToleratedInHover) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 41);
  clock.RunFor(Seconds(2));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(12.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 11.0; },
      Seconds(60)));
  // GPS drops to 3 satellites for 10 s mid-hover: the estimator keeps the
  // last fix, baro holds altitude, and the drone must not diverge.
  GeoPoint before = drone.physics().truth().position;
  drone.gps().set_satellites(3);  // No fix.
  clock.RunFor(Seconds(10));
  drone.gps().set_satellites(11);  // Reacquired.
  clock.RunFor(Seconds(5));
  GeoPoint after = drone.physics().truth().position;
  EXPECT_LT(HaversineMeters(before, after), 4.0);
  AedResult aed = AnalyzeAttitudeDivergence(drone.controller().flight_log());
  EXPECT_FALSE(aed.unstable);
}

// -------------------------------------- Kernel latency vs flight safety.

class KernelFlightTest : public ::testing::TestWithParam<PreemptionModel> {};

TEST_P(KernelFlightTest, FlightStableUnderAnyKernelAtIdle) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 51);
  WakeLatencySampler sampler(GetParam(), IdleLoad(), 7);
  drone.controller().SetLatencySampler(&sampler);
  clock.RunFor(Seconds(2));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(10.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 9.0; },
      Seconds(60)));
  clock.RunFor(Seconds(30));
  AedResult aed = AnalyzeAttitudeDivergence(drone.controller().flight_log());
  EXPECT_FALSE(aed.unstable);
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelFlightTest,
                         ::testing::Values(PreemptionModel::kPreempt,
                                           PreemptionModel::kPreemptRt));

}  // namespace
}  // namespace androne
