// Coverage for remaining behaviour: manual RC flight (Stabilize/AltHold),
// VFC telemetry during the landing animation, fluid-model conservation
// properties, VDC error paths, and retry/fault-plan edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/drone.h"
#include "src/flight/sitl.h"
#include "src/mavproxy/mavproxy.h"
#include "src/rt/fluid_resource.h"
#include "src/util/backoff.h"
#include "src/util/fault_plan.h"

namespace androne {
namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};

// ------------------------------------------------- Manual (RC) flight.

TEST(ManualFlightTest, StabilizeRespondsToRcSticks) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 91);
  clock.RunFor(Seconds(2));
  // Take off in guided, then hand the sticks over in stabilize.
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(15.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 14.0; },
      Seconds(60)));
  drone.SetModeCmd(CopterMode::kStabilize);

  // Pitch stick forward (nose down = fly north) with hover throttle.
  RcChannelsOverride rc;
  rc.chan[0] = 1500;  // Roll centered.
  rc.chan[1] = 1300;  // Pitch forward.
  rc.chan[2] = 1500;  // Mid throttle ~ hover.
  rc.chan[3] = 1500;  // Yaw centered.
  drone.controller().HandleFrame(PackMessage(MavMessage{rc}));
  GeoPoint start = drone.physics().truth().position;
  clock.RunFor(Seconds(8));
  NedPoint moved = ToNed(start, drone.physics().truth().position);
  EXPECT_GT(moved.north_m, 5.0);  // Flew forward.
  EXPECT_LT(std::fabs(moved.east_m), 6.0);

  // Centering the stick levels out.
  rc.chan[1] = 1500;
  drone.controller().HandleFrame(PackMessage(MavMessage{rc}));
  clock.RunFor(Seconds(5));
  EXPECT_LT(std::fabs(drone.physics().truth().pitch_rad), 0.08);
}

TEST(ManualFlightTest, AltHoldMaintainsAltitudeHandsOff) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 92);
  clock.RunFor(Seconds(2));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(12.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 11.0; },
      Seconds(60)));
  drone.SetModeCmd(CopterMode::kAltHold);
  RcChannelsOverride rc;  // All centered: hold.
  rc.chan[0] = rc.chan[1] = rc.chan[2] = rc.chan[3] = 1500;
  drone.controller().HandleFrame(PackMessage(MavMessage{rc}));
  clock.RunFor(Seconds(15));
  EXPECT_NEAR(drone.physics().truth().position.altitude_m, 12.0, 2.5);

  // Raising the throttle stick climbs.
  rc.chan[2] = 1800;
  drone.controller().HandleFrame(PackMessage(MavMessage{rc}));
  clock.RunFor(Seconds(6));
  EXPECT_GT(drone.physics().truth().position.altitude_m, 13.5);
}

// ---------------------------------------------- VFC landing animation.

TEST(VfcViewTest, LandingAnimationDescendsToGround) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 93);
  MavProxy proxy(&clock);
  proxy.SetMasterSink([&](const MavlinkFrame& f) {
    drone.controller().HandleFrame(f);
  });
  drone.controller().SetSender([&](const MavlinkFrame& f) {
    proxy.HandleMasterFrame(f);
  });
  auto* vfc = proxy.CreateVfc(
      1, CommandWhitelist::FromTemplate(WhitelistTemplate::kStandard), false);
  std::vector<GlobalPositionInt> views;
  vfc->SetClientSink([&](const MavlinkFrame& f) {
    auto m = UnpackMessage(f);
    if (m.ok() && std::holds_alternative<GlobalPositionInt>(*m)) {
      views.push_back(std::get<GlobalPositionInt>(*m));
    }
  });
  vfc->SetAssignedWaypoint(GeoPoint{kBase.latitude_deg, kBase.longitude_deg,
                                    15});
  clock.RunFor(Seconds(2));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(15.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 14.0; },
      Seconds(60)));
  vfc->GrantControl();
  clock.RunFor(Seconds(2));
  vfc->RevokeControl();
  ASSERT_EQ(vfc->state(), VfcState::kLanding);
  views.clear();
  clock.RunFor(Seconds(3));
  ASSERT_GE(views.size(), 2u);
  // Altitude decreases monotonically toward the ground while the real
  // drone stays at 15 m.
  EXPECT_GT(views.front().relative_alt, views.back().relative_alt);
  EXPECT_GT(drone.physics().truth().position.altitude_m, 13.0);
  clock.RunFor(Seconds(10));
  EXPECT_GE(views.back().vz, 0);  // Descending or settled.
}

// -------------------------------------------------- Fluid properties.

TEST(FluidPropertyTest, WorkConservation) {
  // Total throughput never exceeds capacity and completes exactly the
  // submitted work: finish time of the last job >= total_work / capacity.
  SimClock clock;
  FluidResource res(&clock, 3.0);
  double total_work = 0;
  Rng rng(5);
  double last_finish = 0;
  int remaining = 12;
  for (int i = 0; i < 12; ++i) {
    double work = rng.Uniform(1.0, 10.0);
    total_work += work;
    res.Submit(work, rng.Uniform(0.5, 4.0), [&] {
      last_finish = ToSecondsF(clock.now());
      --remaining;
    });
  }
  clock.RunAll();
  EXPECT_EQ(remaining, 0);
  EXPECT_GE(last_finish + 1e-6, total_work / 3.0);
}

TEST(FluidPropertyTest, IdenticalJobsFinishTogether) {
  SimClock clock;
  FluidResource res(&clock, 2.0);
  std::vector<double> finishes;
  for (int i = 0; i < 5; ++i) {
    res.Submit(10.0, 2.0, [&] { finishes.push_back(ToSecondsF(clock.now())); });
  }
  clock.RunAll();
  ASSERT_EQ(finishes.size(), 5u);
  for (double f : finishes) {
    EXPECT_NEAR(f, finishes[0], 1e-6);
  }
  // 5 jobs x 10 units at capacity 2 = 25 s.
  EXPECT_NEAR(finishes[0], 25.0, 1e-6);
}

// ----------------------------------------------------- VDC error paths.

TEST(VdcErrorTest, MiscErrorPaths) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());

  // Unknown ids everywhere.
  EXPECT_FALSE(system.vdc().Find("ghost").ok());
  EXPECT_FALSE(system.vdc().NotifyWaypointReached("ghost", 0).ok());
  EXPECT_FALSE(
      system.vdc().NotifyWaypointLeft("ghost", TenancyEndReason::kCompleted)
          .ok());
  EXPECT_FALSE(system.vdc().StoreToVdr("ghost", true).ok());
  EXPECT_FALSE(system.vdc().OffloadFiles("ghost").ok());
  EXPECT_FALSE(system.vdc().Teardown("ghost").ok());
  EXPECT_FALSE(system.vdc().AllowsFlightControl("ghost"));
  EXPECT_FALSE(system.vdc().AllowsDevicePermission(999, "androne.device.gps"));

  // Deployment validation.
  VirtualDroneDefinition bad;
  bad.id = "";  // Missing id.
  bad.waypoints = {WaypointSpec{kBase, 30}};
  EXPECT_FALSE(system.Deploy(bad).ok());

  // Accounting with no active tenant is a no-op that reports "continue".
  EXPECT_TRUE(system.vdc().AccountActiveTenant(Seconds(5)));

  // Waypoint index out of range.
  VirtualDroneDefinition ok_def;
  ok_def.id = "ok";
  ok_def.owner = "o";
  ok_def.waypoints = {WaypointSpec{kBase, 30}};
  ok_def.max_duration_s = 60;
  ok_def.energy_allotted_j = 1000;
  ok_def.waypoint_devices = {"gps"};
  ASSERT_TRUE(system.Deploy(ok_def).ok());
  EXPECT_EQ(system.vdc().NotifyWaypointReached("ok", 5).code(),
            StatusCode::kOutOfRange);
  // Leaving without arriving.
  EXPECT_EQ(system.vdc()
                .NotifyWaypointLeft("ok", TenancyEndReason::kCompleted)
                .code(),
            StatusCode::kFailedPrecondition);
  // Teardown works and is final.
  EXPECT_TRUE(system.vdc().Teardown("ok").ok());
  EXPECT_FALSE(system.vdc().Find("ok").ok());
}

// ------------------------------------------------ Backoff edge cases.

TEST(BackoffPolicyTest, GrowsGeometricallyThenCaps) {
  BackoffPolicy policy;  // base=250ms, multiplier=2, max=8s, no jitter.
  Rng rng(1);
  EXPECT_EQ(policy.DelayFor(0, rng), Millis(250));
  EXPECT_EQ(policy.DelayFor(1, rng), Millis(500));
  EXPECT_EQ(policy.DelayFor(2, rng), Millis(1000));
  EXPECT_EQ(policy.DelayFor(5, rng), Millis(8000));   // 250ms * 32 = cap.
  EXPECT_EQ(policy.DelayFor(20, rng), Seconds(8));    // Stays at cap.
  EXPECT_EQ(policy.DelayFor(-3, rng), Millis(250));   // Clamped to attempt 0.
}

TEST(BackoffPolicyTest, NeverReturnsLessThanOneMicrosecond) {
  BackoffPolicy policy;
  policy.base = 0;
  policy.max = 0;
  Rng rng(2);
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_GE(policy.DelayFor(attempt, rng), Micros(1)) << attempt;
  }
  // A shrinking multiplier decays toward zero but still floors at 1 us.
  policy.base = Micros(4);
  policy.max = Seconds(1);
  policy.multiplier = 0.5;
  EXPECT_EQ(policy.DelayFor(10, rng), Micros(1));
}

TEST(BackoffPolicyTest, JitterStaysWithinFractionAndIsSeedDeterministic) {
  BackoffPolicy policy;
  policy.jitter_fraction = 0.25;
  Rng rng(42);
  for (int attempt = 0; attempt < 8; ++attempt) {
    SimDuration d = policy.DelayFor(attempt, rng);
    double nominal = std::min(static_cast<double>(policy.base) *
                                  std::pow(policy.multiplier, attempt),
                              static_cast<double>(policy.max));
    EXPECT_GE(d, static_cast<SimDuration>(nominal * 0.75) - 1) << attempt;
    EXPECT_LE(d, static_cast<SimDuration>(nominal * 1.25) + 1) << attempt;
  }
  // Same seed, same schedule: retry timelines replay deterministically.
  Rng rng_a(7);
  Rng rng_b(7);
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(policy.DelayFor(attempt, rng_a), policy.DelayFor(attempt, rng_b));
  }
}

// ---------------------------------------------- Fault-plan edge cases.

FaultWindowSpec Window(int kind, int scope, SimTime start, SimTime end,
                       double p0 = 0.0) {
  FaultWindowSpec w;
  w.kind = kind;
  w.scope = scope;
  w.start = start;
  w.end = end;
  w.p0 = p0;
  return w;
}

TEST(FaultScheduleTest, ZeroDurationWindowIsNeverActive) {
  // start == end with a half-open [start, end) interval: active nowhere,
  // not even at its own start instant.
  FaultSchedule schedule;
  schedule.Add(Window(1, kFaultScopeAll, Seconds(5), Seconds(5)));
  EXPECT_FALSE(schedule.AnyActive(Seconds(5) - 1, 1, 0));
  EXPECT_FALSE(schedule.AnyActive(Seconds(5), 1, 0));
  EXPECT_FALSE(schedule.AnyActive(Seconds(5) + 1, 1, 0));
  // It still counts toward last_end: the scenario runs out to it.
  EXPECT_EQ(schedule.last_end(), Seconds(5));
}

TEST(FaultScheduleTest, BoundariesAreHalfOpen) {
  FaultSchedule schedule;
  schedule.Add(Window(1, kFaultScopeAll, Seconds(2), Seconds(4)));
  EXPECT_FALSE(schedule.AnyActive(Seconds(2) - 1, 1, 0));
  EXPECT_TRUE(schedule.AnyActive(Seconds(2), 1, 0));    // Start inclusive.
  EXPECT_TRUE(schedule.AnyActive(Seconds(4) - 1, 1, 0));
  EXPECT_FALSE(schedule.AnyActive(Seconds(4), 1, 0));   // End exclusive.
}

TEST(FaultScheduleTest, OverlappingWindowsComposeInInsertionOrder) {
  FaultSchedule schedule;
  schedule.Add(Window(1, kFaultScopeAll, Seconds(1), Seconds(10), 0.25));
  schedule.Add(Window(1, kFaultScopeAll, Seconds(5), Seconds(8), 0.75));
  schedule.Add(Window(2, kFaultScopeAll, Seconds(5), Seconds(8), 0.99));

  // FirstActive returns the earliest-added covering window of that kind.
  const FaultWindowSpec* first = schedule.FirstActive(Seconds(6), 1, 0);
  ASSERT_NE(first, nullptr);
  EXPECT_DOUBLE_EQ(first->p0, 0.25);

  // ForEachActive visits both kind-1 windows, insertion order, and skips
  // the kind-2 window covering the same instant.
  std::vector<double> seen;
  schedule.ForEachActive(Seconds(6), 1, 0,
                         [&](const FaultWindowSpec& w) { seen.push_back(w.p0); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 0.25);
  EXPECT_DOUBLE_EQ(seen[1], 0.75);

  // Outside the overlap only the long window remains.
  seen.clear();
  schedule.ForEachActive(Seconds(9), 1, 0,
                         [&](const FaultWindowSpec& w) { seen.push_back(w.p0); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_DOUBLE_EQ(seen[0], 0.25);
}

TEST(FaultScheduleTest, ScopeMatchingAndLastEnd) {
  FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.last_end(), 0);

  schedule.Add(Window(1, /*scope=*/3, Seconds(0), Seconds(10)));
  schedule.Add(Window(1, kFaultScopeAll, Seconds(0), Seconds(2)));
  EXPECT_FALSE(schedule.empty());

  // Scoped window matches only its scope; the wildcard matches every scope.
  EXPECT_TRUE(schedule.AnyActive(Seconds(5), 1, 3));
  EXPECT_FALSE(schedule.AnyActive(Seconds(5), 1, 4));
  EXPECT_TRUE(schedule.AnyActive(Seconds(1), 1, 4));
  // Wrong kind never matches, regardless of scope or time.
  EXPECT_FALSE(schedule.AnyActive(Seconds(5), 2, 3));

  EXPECT_EQ(schedule.last_end(), Seconds(10));
}

}  // namespace
}  // namespace androne
