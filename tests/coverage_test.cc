// Coverage for remaining behaviour: manual RC flight (Stabilize/AltHold),
// VFC telemetry during the landing animation, fluid-model conservation
// properties, and VDC error paths.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/drone.h"
#include "src/flight/sitl.h"
#include "src/mavproxy/mavproxy.h"
#include "src/rt/fluid_resource.h"

namespace androne {
namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};

// ------------------------------------------------- Manual (RC) flight.

TEST(ManualFlightTest, StabilizeRespondsToRcSticks) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 91);
  clock.RunFor(Seconds(2));
  // Take off in guided, then hand the sticks over in stabilize.
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(15.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 14.0; },
      Seconds(60)));
  drone.SetModeCmd(CopterMode::kStabilize);

  // Pitch stick forward (nose down = fly north) with hover throttle.
  RcChannelsOverride rc;
  rc.chan[0] = 1500;  // Roll centered.
  rc.chan[1] = 1300;  // Pitch forward.
  rc.chan[2] = 1500;  // Mid throttle ~ hover.
  rc.chan[3] = 1500;  // Yaw centered.
  drone.controller().HandleFrame(PackMessage(MavMessage{rc}));
  GeoPoint start = drone.physics().truth().position;
  clock.RunFor(Seconds(8));
  NedPoint moved = ToNed(start, drone.physics().truth().position);
  EXPECT_GT(moved.north_m, 5.0);  // Flew forward.
  EXPECT_LT(std::fabs(moved.east_m), 6.0);

  // Centering the stick levels out.
  rc.chan[1] = 1500;
  drone.controller().HandleFrame(PackMessage(MavMessage{rc}));
  clock.RunFor(Seconds(5));
  EXPECT_LT(std::fabs(drone.physics().truth().pitch_rad), 0.08);
}

TEST(ManualFlightTest, AltHoldMaintainsAltitudeHandsOff) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 92);
  clock.RunFor(Seconds(2));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(12.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 11.0; },
      Seconds(60)));
  drone.SetModeCmd(CopterMode::kAltHold);
  RcChannelsOverride rc;  // All centered: hold.
  rc.chan[0] = rc.chan[1] = rc.chan[2] = rc.chan[3] = 1500;
  drone.controller().HandleFrame(PackMessage(MavMessage{rc}));
  clock.RunFor(Seconds(15));
  EXPECT_NEAR(drone.physics().truth().position.altitude_m, 12.0, 2.5);

  // Raising the throttle stick climbs.
  rc.chan[2] = 1800;
  drone.controller().HandleFrame(PackMessage(MavMessage{rc}));
  clock.RunFor(Seconds(6));
  EXPECT_GT(drone.physics().truth().position.altitude_m, 13.5);
}

// ---------------------------------------------- VFC landing animation.

TEST(VfcViewTest, LandingAnimationDescendsToGround) {
  SimClock clock;
  SitlDrone drone(&clock, kBase, 93);
  MavProxy proxy(&clock);
  proxy.SetMasterSink([&](const MavlinkFrame& f) {
    drone.controller().HandleFrame(f);
  });
  drone.controller().SetSender([&](const MavlinkFrame& f) {
    proxy.HandleMasterFrame(f);
  });
  auto* vfc = proxy.CreateVfc(
      1, CommandWhitelist::FromTemplate(WhitelistTemplate::kStandard), false);
  std::vector<GlobalPositionInt> views;
  vfc->SetClientSink([&](const MavlinkFrame& f) {
    auto m = UnpackMessage(f);
    if (m.ok() && std::holds_alternative<GlobalPositionInt>(*m)) {
      views.push_back(std::get<GlobalPositionInt>(*m));
    }
  });
  vfc->SetAssignedWaypoint(GeoPoint{kBase.latitude_deg, kBase.longitude_deg,
                                    15});
  clock.RunFor(Seconds(2));
  drone.SetModeCmd(CopterMode::kGuided);
  drone.ArmCmd();
  drone.TakeoffCmd(15.0);
  ASSERT_TRUE(drone.RunUntil(
      [&] { return drone.physics().truth().position.altitude_m > 14.0; },
      Seconds(60)));
  vfc->GrantControl();
  clock.RunFor(Seconds(2));
  vfc->RevokeControl();
  ASSERT_EQ(vfc->state(), VfcState::kLanding);
  views.clear();
  clock.RunFor(Seconds(3));
  ASSERT_GE(views.size(), 2u);
  // Altitude decreases monotonically toward the ground while the real
  // drone stays at 15 m.
  EXPECT_GT(views.front().relative_alt, views.back().relative_alt);
  EXPECT_GT(drone.physics().truth().position.altitude_m, 13.0);
  clock.RunFor(Seconds(10));
  EXPECT_EQ(views.back().vz >= 0, true);  // Descending or settled.
}

// -------------------------------------------------- Fluid properties.

TEST(FluidPropertyTest, WorkConservation) {
  // Total throughput never exceeds capacity and completes exactly the
  // submitted work: finish time of the last job >= total_work / capacity.
  SimClock clock;
  FluidResource res(&clock, 3.0);
  double total_work = 0;
  Rng rng(5);
  double last_finish = 0;
  int remaining = 12;
  for (int i = 0; i < 12; ++i) {
    double work = rng.Uniform(1.0, 10.0);
    total_work += work;
    res.Submit(work, rng.Uniform(0.5, 4.0), [&] {
      last_finish = ToSecondsF(clock.now());
      --remaining;
    });
  }
  clock.RunAll();
  EXPECT_EQ(remaining, 0);
  EXPECT_GE(last_finish + 1e-6, total_work / 3.0);
}

TEST(FluidPropertyTest, IdenticalJobsFinishTogether) {
  SimClock clock;
  FluidResource res(&clock, 2.0);
  std::vector<double> finishes;
  for (int i = 0; i < 5; ++i) {
    res.Submit(10.0, 2.0, [&] { finishes.push_back(ToSecondsF(clock.now())); });
  }
  clock.RunAll();
  ASSERT_EQ(finishes.size(), 5u);
  for (double f : finishes) {
    EXPECT_NEAR(f, finishes[0], 1e-6);
  }
  // 5 jobs x 10 units at capacity 2 = 25 s.
  EXPECT_NEAR(finishes[0], 25.0, 1e-6);
}

// ----------------------------------------------------- VDC error paths.

TEST(VdcErrorTest, MiscErrorPaths) {
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem system(&clock, options);
  ASSERT_TRUE(system.Boot().ok());

  // Unknown ids everywhere.
  EXPECT_FALSE(system.vdc().Find("ghost").ok());
  EXPECT_FALSE(system.vdc().NotifyWaypointReached("ghost", 0).ok());
  EXPECT_FALSE(
      system.vdc().NotifyWaypointLeft("ghost", TenancyEndReason::kCompleted)
          .ok());
  EXPECT_FALSE(system.vdc().StoreToVdr("ghost", true).ok());
  EXPECT_FALSE(system.vdc().OffloadFiles("ghost").ok());
  EXPECT_FALSE(system.vdc().Teardown("ghost").ok());
  EXPECT_FALSE(system.vdc().AllowsFlightControl("ghost"));
  EXPECT_FALSE(system.vdc().AllowsDevicePermission(999, "androne.device.gps"));

  // Deployment validation.
  VirtualDroneDefinition bad;
  bad.id = "";  // Missing id.
  bad.waypoints = {WaypointSpec{kBase, 30}};
  EXPECT_FALSE(system.Deploy(bad).ok());

  // Accounting with no active tenant is a no-op that reports "continue".
  EXPECT_TRUE(system.vdc().AccountActiveTenant(Seconds(5)));

  // Waypoint index out of range.
  VirtualDroneDefinition ok_def;
  ok_def.id = "ok";
  ok_def.owner = "o";
  ok_def.waypoints = {WaypointSpec{kBase, 30}};
  ok_def.max_duration_s = 60;
  ok_def.energy_allotted_j = 1000;
  ok_def.waypoint_devices = {"gps"};
  ASSERT_TRUE(system.Deploy(ok_def).ok());
  EXPECT_EQ(system.vdc().NotifyWaypointReached("ok", 5).code(),
            StatusCode::kOutOfRange);
  // Leaving without arriving.
  EXPECT_EQ(system.vdc()
                .NotifyWaypointLeft("ok", TenancyEndReason::kCompleted)
                .code(),
            StatusCode::kFailedPrecondition);
  // Teardown works and is final.
  EXPECT_TRUE(system.vdc().Teardown("ok").ok());
  EXPECT_FALSE(system.vdc().Find("ok").ok());
}

}  // namespace
}  // namespace androne
