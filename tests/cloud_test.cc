#include <gtest/gtest.h>

#include "src/cloud/billing.h"
#include "src/cloud/conflicts.h"
#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/cloud/ground_control.h"
#include "src/cloud/portal.h"
#include "src/cloud/vdr.h"
#include "src/core/definition.h"
#include "src/core/manifest.h"

namespace androne {
namespace {

const GeoPoint kDepot{43.6084298, -85.8110359, 0};

// ------------------------------------------------------------- Energy.

TEST(EnergyModelTest, HoverPowerMatchesAirframe) {
  EnergyModel model;
  // The prototype airframe hovers at ~170 W.
  EXPECT_NEAR(model.HoverPowerW(), 170.0, 25.0);
}

TEST(EnergyModelTest, PayloadIncreasesPower) {
  EnergyModel model;
  EXPECT_GT(model.HoverPowerW(0.5), model.HoverPowerW(0.0));
  // Superlinear in total mass (exponent 1.5).
  double p0 = model.HoverPowerW(0.0);
  double p1 = model.HoverPowerW(1.6);  // Double the mass.
  EXPECT_GT(p1 / p0, 2.0);
  EXPECT_LT(p1 / p0, 3.2);
}

TEST(EnergyModelTest, TravelEnergyScalesWithDistance) {
  EnergyModel model;
  double e1 = model.TravelEnergyJ(100, 6);
  double e2 = model.TravelEnergyJ(200, 6);
  EXPECT_NEAR(e2, 2 * e1, 1e-6);
}

TEST(EnergyModelTest, FasterTravelUsesLessEnergyPerDistance) {
  EnergyModel model;
  // Hover-dominated regime: flying faster spends less time airborne.
  EXPECT_LT(model.TravelEnergyJ(500, 8), model.TravelEnergyJ(500, 3));
}

TEST(EnergyModelTest, TwentyMinuteFlightFitsBattery) {
  EnergyModel model;
  double twenty_min_j = model.HoverPowerW() * 20 * 60;
  EXPECT_NEAR(twenty_min_j, 199800, 60000);  // ~the 5 Ah 3S pack.
}

// ------------------------------------------------------------- Planner.

PlannerJob MakeJob(int vdrone, int index, const NedPoint& offset,
                   double energy_j, double time_s) {
  PlannerJob job;
  job.vdrone_id = vdrone;
  job.vdrone_ref = "vd-" + std::to_string(vdrone);
  job.waypoint_index = index;
  job.waypoint = FromNed(kDepot, offset);
  job.service_energy_j = energy_j;
  job.service_time_s = time_s;
  return job;
}

PlannerConfig TestConfig(int fleet) {
  PlannerConfig config;
  config.depot = kDepot;
  config.fleet_size = fleet;
  config.annealing_iterations = 6000;
  return config;
}

TEST(FlightPlannerTest, EmptyPlan) {
  FlightPlanner planner(EnergyModel(), TestConfig(1));
  auto plan = planner.Plan({});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->feasible);
  EXPECT_EQ(plan->routes.size(), 1u);
  EXPECT_TRUE(plan->routes[0].stops.empty());
}

TEST(FlightPlannerTest, SingleJobRoundTrip) {
  FlightPlanner planner(EnergyModel(), TestConfig(1));
  auto plan = planner.Plan({MakeJob(1, 0, {200, 0, -15}, 10000, 60)});
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->routes[0].stops.size(), 1u);
  // Energy = out + service + back; service was 10 kJ.
  EXPECT_GT(plan->routes[0].total_energy_j, 10000);
  EXPECT_LT(plan->routes[0].total_energy_j, 50000);
  EXPECT_TRUE(plan->feasible);
}

TEST(FlightPlannerTest, AllJobsScheduledExactlyOnce) {
  FlightPlanner planner(EnergyModel(), TestConfig(2));
  std::vector<PlannerJob> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(MakeJob(i, 0, {50.0 * (i + 1), 30.0 * i, -15}, 5000, 30));
  }
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::vector<int> seen(jobs.size(), 0);
  for (const PlannedRoute& route : plan->routes) {
    for (const PlannedStop& stop : route.stops) {
      seen[stop.job_index]++;
    }
  }
  for (int count : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(FlightPlannerTest, RespectsBatteryCapacity) {
  // Jobs whose combined energy needs more than one battery must split
  // across the fleet.
  PlannerConfig config = TestConfig(3);
  FlightPlanner planner(EnergyModel(), config);
  std::vector<PlannerJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob(i, 0, {100.0 + 20 * i, 0, -15}, 60000, 300));
  }
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  double usable = config.battery_capacity_j *
                  (1 - config.energy_reserve_fraction);
  int used_routes = 0;
  for (const PlannedRoute& route : plan->routes) {
    EXPECT_LE(route.total_energy_j, usable);
    used_routes += route.stops.empty() ? 0 : 1;
  }
  EXPECT_GE(used_routes, 2);
}

TEST(FlightPlannerTest, InfeasibleSingleJobRejected) {
  FlightPlanner planner(EnergyModel(), TestConfig(1));
  // Service energy alone exceeds the battery.
  auto plan = planner.Plan({MakeJob(1, 0, {100, 0, -15}, 500000, 60)});
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FlightPlannerTest, AnnealingImprovesOnBadSeed) {
  // Clustered jobs: a good plan visits each cluster on one route.
  FlightPlanner planner(EnergyModel(), TestConfig(2));
  std::vector<PlannerJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(MakeJob(i, 0, {400.0 + 10 * i, 0, -15}, 2000, 20));
    jobs.push_back(MakeJob(10 + i, 0, {-400.0 - 10 * i, 0, -15}, 2000, 20));
  }
  auto plan = planner.Plan(jobs);
  ASSERT_TRUE(plan.ok());
  // Round-robin seeding mixes clusters (~3.3 km of travel); annealing
  // should find the clustered split (~1.7 km -> makespan < 400 s with
  // service time).
  EXPECT_LT(plan->makespan_s, 400.0);
}

TEST(FlightPlannerTest, PlanIsDeterministicForSeed) {
  FlightPlanner planner(EnergyModel(), TestConfig(2));
  std::vector<PlannerJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob(i, 0, {60.0 * i + 30, -40.0 * i, -15}, 4000, 25));
  }
  auto a = planner.Plan(jobs);
  auto b = planner.Plan(jobs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->makespan_s, b->makespan_s);
}

// ----------------------------------------------------------- VDR et al.

TEST(VdrTest, SaveLoadRemove) {
  VirtualDroneRepository vdr;
  vdr.Save("vd-1", StoredVirtualDrone{"{}", {1, 2, 3}, true});
  EXPECT_TRUE(vdr.Contains("vd-1"));
  auto loaded = vdr.Load("vd-1");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->resumable);
  EXPECT_EQ(loaded->image.size(), 3u);
  EXPECT_EQ(vdr.List().size(), 1u);
  EXPECT_GT(vdr.StorageBytes(), 0u);
  EXPECT_TRUE(vdr.Remove("vd-1").ok());
  EXPECT_FALSE(vdr.Load("vd-1").ok());
  EXPECT_FALSE(vdr.Remove("vd-1").ok());
}

TEST(CloudStorageTest, PerUserFiles) {
  CloudStorage storage;
  storage.Put("alice", "/flight1/video.mp4", "bytes");
  storage.Put("alice", "/flight1/report.json", "{}");
  storage.Put("bob", "/x", "y");
  EXPECT_EQ(storage.Get("alice", "/flight1/video.mp4").value(), "bytes");
  EXPECT_EQ(storage.ListUserFiles("alice").size(), 2u);
  EXPECT_EQ(storage.ListUserFiles("carol").size(), 0u);
  EXPECT_FALSE(storage.Get("bob", "/flight1/video.mp4").ok());
}

TEST(AppStoreTest, PublishAndFetch) {
  AppStore store;
  EXPECT_FALSE(store.Publish(AppPackage{}).ok());
  ASSERT_TRUE(store.Publish({"com.example.survey", "<androne-manifest/>",
                             "apk"}).ok());
  EXPECT_TRUE(store.Fetch("com.example.survey").ok());
  EXPECT_FALSE(store.Fetch("com.example.absent").ok());
  EXPECT_EQ(store.List().size(), 1u);
}

// ------------------------------------------------------------- Billing.

TEST(BillingTest, EstimateAndInverse) {
  Billing billing;
  BillingEstimate est = billing.Estimate(45000, 170);
  EXPECT_NEAR(est.flight_time_estimate_s, 45000.0 / 170.0, 1e-6);
  EXPECT_NEAR(est.energy_cost, 45000.0 / 1e6 * 2.50, 1e-9);
  double energy = billing.MaxEnergyForCharge(0.25);
  EXPECT_NEAR(billing.Estimate(energy, 170).energy_cost, 0.25, 1e-9);
}

// ------------------------------------------------------------ Definition.

const char kFig2Json[] = R"({
  "waypoints": [
    { "latitude": 43.6084298, "longitude": -85.8110359,
      "altitude": 15, "max-radius": 30 },
    { "latitude": 43.6076409, "longitude": -85.8154457,
      "altitude": 15, "max-radius": 20 }
  ],
  "max-duration": 600,
  "energy-allotted": 45000,
  "continuous-devices": [],
  "waypoint-devices": ["camera", "flight-control"],
  "apps": ["com.example.survey"],
  "app-args": {
    "com.example.survey": {
      "survey-areas": [[43.6087619, -85.8104110], [43.6087968, -85.8109877]]
    }
  }
})";

TEST(DefinitionTest, ParsesFig2Example) {
  auto def = VirtualDroneDefinition::FromJson(kFig2Json);
  ASSERT_TRUE(def.ok()) << def.status();
  EXPECT_EQ(def->waypoints.size(), 2u);
  EXPECT_NEAR(def->waypoints[0].point.latitude_deg, 43.6084298, 1e-9);
  EXPECT_DOUBLE_EQ(def->waypoints[1].max_radius_m, 20);
  EXPECT_DOUBLE_EQ(def->max_duration_s, 600);
  EXPECT_DOUBLE_EQ(def->energy_allotted_j, 45000);
  EXPECT_TRUE(def->WantsFlightControl());
  EXPECT_TRUE(def->WantsDevice("camera"));
  EXPECT_FALSE(def->WantsDeviceContinuously("camera"));
  EXPECT_EQ(def->apps.size(), 1u);
  EXPECT_NE(def->app_args.Find("com.example.survey"), nullptr);
}

TEST(DefinitionTest, JsonRoundTrip) {
  auto def = VirtualDroneDefinition::FromJson(kFig2Json);
  ASSERT_TRUE(def.ok());
  def->id = "vd-1";
  def->owner = "alice";
  auto again = VirtualDroneDefinition::FromJson(def->ToJson());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->id, "vd-1");
  EXPECT_EQ(again->waypoints.size(), 2u);
  EXPECT_EQ(again->waypoint_devices, def->waypoint_devices);
  EXPECT_EQ(again->app_args, def->app_args);
}

TEST(DefinitionTest, RejectsInvalidDefinitions) {
  EXPECT_FALSE(VirtualDroneDefinition::FromJson("[]").ok());
  EXPECT_FALSE(VirtualDroneDefinition::FromJson("{}").ok());  // No waypoints.
  // Flight control as continuous device is forbidden (paper §3).
  const char kBad[] = R"({
    "waypoints": [{"latitude": 0, "longitude": 0, "altitude": 10}],
    "continuous-devices": ["flight-control"]
  })";
  auto def = VirtualDroneDefinition::FromJson(kBad);
  EXPECT_FALSE(def.ok());
  // Unknown device.
  const char kUnknown[] = R"({
    "waypoints": [{"latitude": 0, "longitude": 0, "altitude": 10}],
    "waypoint-devices": ["x-ray"]
  })";
  EXPECT_FALSE(VirtualDroneDefinition::FromJson(kUnknown).ok());
  // Bad coordinates.
  const char kBadCoord[] = R"({
    "waypoints": [{"latitude": 91, "longitude": 0, "altitude": 10}]
  })";
  EXPECT_FALSE(VirtualDroneDefinition::FromJson(kBadCoord).ok());
}

// ------------------------------------------------------------- Manifest.

const char kSurveyManifest[] = R"(
<androne-manifest package="com.example.survey">
  <uses-permission name="camera" type="waypoint"/>
  <uses-permission name="gps" type="continuous"/>
  <uses-permission name="flight-control" type="waypoint"/>
  <argument name="survey-areas" type="polygon" required="true"/>
  <argument name="resolution" type="number" required="false"/>
</androne-manifest>)";

TEST(ManifestTest, ParsesAndQueries) {
  auto manifest = AndroneManifest::Parse(kSurveyManifest);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->package, "com.example.survey");
  EXPECT_EQ(manifest->permissions.size(), 3u);
  EXPECT_TRUE(manifest->RequestsDevice("camera"));
  EXPECT_TRUE(manifest->RequestsDeviceContinuously("gps"));
  EXPECT_FALSE(manifest->RequestsDeviceContinuously("camera"));
  EXPECT_EQ(manifest->arguments.size(), 2u);
  EXPECT_TRUE(manifest->arguments[0].required);
}

TEST(ManifestTest, ValidateArgs) {
  auto manifest = AndroneManifest::Parse(kSurveyManifest);
  ASSERT_TRUE(manifest.ok());
  JsonObject good;
  good["survey-areas"] = JsonArray{};
  EXPECT_TRUE(manifest->ValidateArgs(JsonValue(good)).ok());
  JsonObject missing;  // Required argument absent.
  EXPECT_FALSE(manifest->ValidateArgs(JsonValue(missing)).ok());
  JsonObject undeclared = good;
  undeclared["bogus"] = 1;
  EXPECT_FALSE(manifest->ValidateArgs(JsonValue(undeclared)).ok());
}

TEST(ManifestTest, RejectsBadManifests) {
  EXPECT_FALSE(AndroneManifest::Parse("<manifest/>").ok());  // Wrong root.
  EXPECT_FALSE(AndroneManifest::Parse("<androne-manifest/>").ok());  // No pkg.
  EXPECT_FALSE(AndroneManifest::Parse(
                   R"(<androne-manifest package="x">
                      <uses-permission name="warp-drive" type="waypoint"/>
                      </androne-manifest>)")
                   .ok());
  EXPECT_FALSE(AndroneManifest::Parse(
                   R"(<androne-manifest package="x">
                      <uses-permission name="flight-control" type="continuous"/>
                      </androne-manifest>)")
                   .ok());
}

TEST(ManifestTest, XmlRoundTrip) {
  auto manifest = AndroneManifest::Parse(kSurveyManifest);
  ASSERT_TRUE(manifest.ok());
  auto again = AndroneManifest::Parse(manifest->ToXml());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->package, manifest->package);
  EXPECT_EQ(again->permissions.size(), manifest->permissions.size());
  EXPECT_EQ(again->arguments.size(), manifest->arguments.size());
}

// -------------------------------------------------------------- Portal.

class PortalTest : public ::testing::Test {
 protected:
  PortalTest()
      : portal_(&app_store_, &vdr_, EnergyModel(), Billing()) {
    app_store_.Publish({"com.example.survey", kSurveyManifest, "apk"});
  }

  OrderRequest BasicRequest() {
    OrderRequest request;
    request.user = "alice";
    request.waypoints = {WaypointSpec{{43.6084298, -85.8110359, 15}, 0}};
    request.apps = {"com.example.survey"};
    JsonObject args;
    JsonObject survey_args;
    survey_args["survey-areas"] = JsonArray{};
    args["com.example.survey"] = JsonValue(survey_args);
    request.app_args = JsonValue(args);
    return request;
  }

  AppStore app_store_;
  VirtualDroneRepository vdr_;
  Portal portal_;
};

TEST_F(PortalTest, OrderProducesValidDefinitionInVdr) {
  auto confirmation = portal_.OrderVirtualDrone(BasicRequest());
  ASSERT_TRUE(confirmation.ok()) << confirmation.status();
  EXPECT_FALSE(confirmation->vdrone_id.empty());
  // Device requirements merged from the app manifest.
  const VirtualDroneDefinition& def = confirmation->definition;
  EXPECT_TRUE(def.WantsDevice("camera"));
  EXPECT_TRUE(def.WantsDeviceContinuously("gps"));
  EXPECT_TRUE(def.WantsFlightControl());
  EXPECT_EQ(def.owner, "alice");
  // Default geofence radius applied.
  EXPECT_DOUBLE_EQ(def.waypoints[0].max_radius_m, 100.0);
  // Stored in the VDR, parseable.
  auto stored = vdr_.Load(confirmation->vdrone_id);
  ASSERT_TRUE(stored.ok());
  EXPECT_TRUE(
      VirtualDroneDefinition::FromJson(stored->definition_json).ok());
  // Billing estimate present.
  EXPECT_GT(confirmation->estimate.energy_j, 0);
  EXPECT_GT(confirmation->estimate.flight_time_estimate_s, 0);
}

TEST_F(PortalTest, RejectsMissingRequiredArgs) {
  OrderRequest request = BasicRequest();
  request.app_args = JsonValue(JsonObject{});
  EXPECT_FALSE(portal_.OrderVirtualDrone(request).ok());
}

TEST_F(PortalTest, RejectsUnknownApp) {
  OrderRequest request = BasicRequest();
  request.apps = {"com.example.absent"};
  EXPECT_EQ(portal_.OrderVirtualDrone(request).status().code(),
            StatusCode::kNotFound);
}

TEST_F(PortalTest, RejectsOversizedGeofence) {
  OrderRequest request = BasicRequest();
  request.geofence_radius_m = 10000;
  EXPECT_FALSE(portal_.OrderVirtualDrone(request).ok());
}

TEST_F(PortalTest, MaxChargeBoundsEnergy) {
  OrderRequest request = BasicRequest();
  request.max_billing_dollars = 0.10;
  auto confirmation = portal_.OrderVirtualDrone(request);
  ASSERT_TRUE(confirmation.ok());
  EXPECT_NEAR(confirmation->definition.energy_allotted_j, 40000, 1);
}

TEST_F(PortalTest, AdvancedUsersGetExtraDevices) {
  OrderRequest request = BasicRequest();
  request.apps.clear();
  request.app_args = JsonValue(JsonObject{});
  request.extra_waypoint_devices = {"flight-control", "camera"};
  request.extra_continuous_devices = {"gps"};
  auto confirmation = portal_.OrderVirtualDrone(request);
  ASSERT_TRUE(confirmation.ok()) << confirmation.status();
  EXPECT_TRUE(confirmation->definition.WantsFlightControl());
  EXPECT_TRUE(confirmation->definition.WantsDeviceContinuously("gps"));
}

TEST_F(PortalTest, OrderIdsAreUnique) {
  auto a = portal_.OrderVirtualDrone(BasicRequest());
  auto b = portal_.OrderVirtualDrone(BasicRequest());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->vdrone_id, b->vdrone_id);
  EXPECT_EQ(vdr_.List().size(), 2u);
}

TEST_F(PortalTest, OverrideNoticesReachTheRightTenants) {
  // A drone-wide safety override (empty vdrone id) is visible to every
  // tenant; a tenant-scoped notice only to its addressee.
  portal_.PostOverrideNotice(Seconds(10), "",
                             "Safety override: level-hold (sensor)");
  portal_.PostOverrideNotice(Seconds(12), "vd-1", "Geofence breached");
  portal_.PostOverrideNotice(Seconds(20), "",
                             "Safety release: control returned (sensor)");

  std::vector<OverrideNotice> for_vd1 = portal_.NoticesFor("vd-1");
  ASSERT_EQ(for_vd1.size(), 3u);
  std::vector<OverrideNotice> for_vd2 = portal_.NoticesFor("vd-2");
  ASSERT_EQ(for_vd2.size(), 2u);
  EXPECT_EQ(for_vd2[0].reason, "Safety override: level-hold (sensor)");
  EXPECT_EQ(for_vd2[1].reason, "Safety release: control returned (sensor)");
  EXPECT_EQ(portal_.override_notices().size(), 3u);
}

// The telemetry path into the portal: GroundControl surfaces downlink
// STATUSTEXTs through its callback, which the provider wires to
// PostOverrideNotice so tenants learn why their virtual drone went quiet.
TEST_F(PortalTest, StatusTextCallbackFeedsOverrideNotices) {
  SimClock clock;
  GroundControl gcs(&clock, GroundControlConfig{}, 7);
  gcs.SetStatusTextCallback([&](uint8_t severity, const std::string& text) {
    if (text.find("Safety override") != std::string::npos ||
        text.find("Safety release") != std::string::npos) {
      portal_.PostOverrideNotice(clock.now(), "", text);
    }
    (void)severity;
  });

  StatusText st;
  st.severity = static_cast<uint8_t>(MavSeverity::kWarning);
  st.text = "Safety override: level-hold (deadline)";
  gcs.HandleDownlinkFrame(PackMessage(MavMessage{st}));
  st.text = "Mode LOITER";  // Ordinary chatter: recorded, not a notice.
  gcs.HandleDownlinkFrame(PackMessage(MavMessage{st}));

  EXPECT_EQ(gcs.status_texts().size(), 2u);
  ASSERT_EQ(portal_.override_notices().size(), 1u);
  EXPECT_EQ(portal_.override_notices()[0].reason,
            "Safety override: level-hold (deadline)");
}


// ------------------------------------------------ Device conflicts (§5).

TEST(ConflictTest, ContinuousDeviceOverlapsDetected) {
  VirtualDroneDefinition a;
  a.id = "vd-a";
  a.waypoints = {WaypointSpec{kDepot, 30}};
  a.continuous_devices = {"camera", "gps"};
  VirtualDroneDefinition b = a;
  b.id = "vd-b";
  b.continuous_devices = {"camera"};
  VirtualDroneDefinition c = a;
  c.id = "vd-c";
  c.continuous_devices = {};
  c.waypoint_devices = {"camera"};  // Waypoint-only: no conflict.

  auto conflicts = FindContinuousDeviceConflicts({a, b, c});
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].vdrone_a, "vd-a");
  EXPECT_EQ(conflicts[0].vdrone_b, "vd-b");
  EXPECT_EQ(conflicts[0].device, "camera");
  EXPECT_NE(conflicts[0].ToString().find("camera"), std::string::npos);
  EXPECT_FALSE(ConflictFree({a, b}));
  EXPECT_TRUE(ConflictFree({a, c}));
  EXPECT_TRUE(ConflictFree({}));
}

}  // namespace
}  // namespace androne
