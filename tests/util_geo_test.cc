#include "src/util/geo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace androne {
namespace {

// The two construction-site waypoints from the paper's Figure 2.
const GeoPoint kWaypointA{43.6084298, -85.8110359, 15};
const GeoPoint kWaypointB{43.6076409, -85.8154457, 15};

TEST(GeoTest, HaversineZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(HaversineMeters(kWaypointA, kWaypointA), 0.0);
}

TEST(GeoTest, HaversineKnownDistance) {
  // The Figure 2 waypoints are ~365 m apart on the ground.
  double d = HaversineMeters(kWaypointA, kWaypointB);
  EXPECT_NEAR(d, 365.0, 15.0);
}

TEST(GeoTest, HaversineIsSymmetric) {
  EXPECT_DOUBLE_EQ(HaversineMeters(kWaypointA, kWaypointB),
                   HaversineMeters(kWaypointB, kWaypointA));
}

TEST(GeoTest, Distance3dIncludesAltitude) {
  GeoPoint up = kWaypointA;
  up.altitude_m += 30;
  EXPECT_DOUBLE_EQ(Distance3dMeters(kWaypointA, up), 30.0);
  double ground = HaversineMeters(kWaypointA, kWaypointB);
  GeoPoint high_b = kWaypointB;
  high_b.altitude_m = kWaypointA.altitude_m + 40;
  EXPECT_NEAR(Distance3dMeters(kWaypointA, high_b),
              std::sqrt(ground * ground + 40 * 40), 1e-6);
}

TEST(GeoTest, BearingCardinalDirections) {
  GeoPoint origin{40.0, -74.0, 0};
  GeoPoint north{40.01, -74.0, 0};
  GeoPoint east{40.0, -73.99, 0};
  GeoPoint south{39.99, -74.0, 0};
  GeoPoint west{40.0, -74.01, 0};
  EXPECT_NEAR(BearingDeg(origin, north), 0.0, 0.5);
  EXPECT_NEAR(BearingDeg(origin, east), 90.0, 0.5);
  EXPECT_NEAR(BearingDeg(origin, south), 180.0, 0.5);
  EXPECT_NEAR(BearingDeg(origin, west), 270.0, 0.5);
}

TEST(GeoTest, NedRoundTrip) {
  NedPoint ned{120.0, -40.0, -15.0};
  GeoPoint p = FromNed(kWaypointA, ned);
  NedPoint back = ToNed(kWaypointA, p);
  EXPECT_NEAR(back.north_m, ned.north_m, 1e-6);
  EXPECT_NEAR(back.east_m, ned.east_m, 1e-6);
  EXPECT_NEAR(back.down_m, ned.down_m, 1e-6);
}

TEST(GeoTest, NedMatchesHaversineLocally) {
  NedPoint ned = ToNed(kWaypointA, kWaypointB);
  double ned_ground = std::hypot(ned.north_m, ned.east_m);
  EXPECT_NEAR(ned_ground, HaversineMeters(kWaypointA, kWaypointB), 0.5);
}

TEST(GeoTest, MoveTowardReachesTarget) {
  GeoPoint p = MoveToward(kWaypointA, kWaypointB, 1e9);
  EXPECT_EQ(p, kWaypointB);
}

TEST(GeoTest, MoveTowardPartialStepShrinksDistance) {
  double total = Distance3dMeters(kWaypointA, kWaypointB);
  GeoPoint p = MoveToward(kWaypointA, kWaypointB, total / 4);
  EXPECT_NEAR(Distance3dMeters(kWaypointA, p), total / 4, 0.5);
  EXPECT_NEAR(Distance3dMeters(p, kWaypointB), 3 * total / 4, 0.5);
}

// Property: repeatedly stepping toward a target always terminates at it.
class GeoMoveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeoMoveTest, SteppingConvergesToTarget) {
  Rng rng(GetParam());
  GeoPoint from{rng.Uniform(-60, 60), rng.Uniform(-179, 179),
                rng.Uniform(0, 100)};
  GeoPoint to{from.latitude_deg + rng.Uniform(-0.01, 0.01),
              from.longitude_deg + rng.Uniform(-0.01, 0.01),
              rng.Uniform(0, 100)};
  double step = rng.Uniform(5.0, 50.0);
  GeoPoint p = from;
  int guard = 0;
  while (Distance3dMeters(p, to) > 1e-6 && guard++ < 10000) {
    double before = Distance3dMeters(p, to);
    p = MoveToward(p, to, step);
    double after = Distance3dMeters(p, to);
    EXPECT_LT(after, before + 1e-9);
  }
  EXPECT_LT(Distance3dMeters(p, to), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoMoveTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace androne
