// Control-plane tests (DESIGN.md §16): the order lifecycle state machine
// (declared-transition table, terminal absorption, exactly-once settlement
// under 64 seeded random event walks), admission-control packing against
// the Figure 12 board budget (exact-fit boundary, one-MB-over rejection,
// release-on-completion re-admission, snapshot byte fixed point), the
// tenant-mix manifest round trip, the deterministic load generator, and an
// end-to-end router sweep whose audit counters must all be zero.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/ctrl/admission.h"
#include "src/ctrl/lifecycle.h"
#include "src/ctrl/load_gen.h"
#include "src/ctrl/router.h"
#include "src/ctrl/tenant_mix.h"
#include "src/snapshot/snapshot.h"
#include "src/util/rng.h"

namespace androne {
namespace {

// --- Lifecycle state machine ---

TEST(LifecycleTest, HappyPathChargesExactlyOnce) {
  OrderLifecycle order;
  EXPECT_EQ(order.state(), OrderState::kSubmitted);
  ASSERT_TRUE(order.Apply(OrderEvent::kPlanReady).ok());
  ASSERT_TRUE(order.Apply(OrderEvent::kAdmit).ok());
  ASSERT_TRUE(order.Apply(OrderEvent::kLaunch).ok());
  ASSERT_TRUE(order.Apply(OrderEvent::kComplete).ok());
  EXPECT_EQ(order.state(), OrderState::kBilled);
  EXPECT_TRUE(order.terminal());
  EXPECT_EQ(order.settlement(), Settlement::kCharged);
  EXPECT_EQ(order.transitions(), 4);
}

TEST(LifecycleTest, CrashRecoveryArcResumesTheFlight) {
  OrderLifecycle order;
  ASSERT_TRUE(order.Apply(OrderEvent::kPlanReady).ok());
  ASSERT_TRUE(order.Apply(OrderEvent::kQueue).ok());
  ASSERT_TRUE(order.Apply(OrderEvent::kAdmit).ok());
  ASSERT_TRUE(order.Apply(OrderEvent::kLaunch).ok());
  ASSERT_TRUE(order.Apply(OrderEvent::kCrash).ok());
  EXPECT_EQ(order.state(), OrderState::kRecovering);
  ASSERT_TRUE(order.Apply(OrderEvent::kRecover).ok());
  EXPECT_EQ(order.state(), OrderState::kFlying);
  ASSERT_TRUE(order.Apply(OrderEvent::kComplete).ok());
  EXPECT_EQ(order.settlement(), Settlement::kCharged);
}

TEST(LifecycleTest, NonBilledTerminalsRefund) {
  struct Arc {
    std::vector<OrderEvent> events;
    OrderState terminal;
  };
  const Arc arcs[] = {
      {{OrderEvent::kPlanFail}, OrderState::kFailed},
      {{OrderEvent::kPlanReady, OrderEvent::kReject}, OrderState::kRejected},
      {{OrderEvent::kPlanReady, OrderEvent::kQueue, OrderEvent::kReject},
       OrderState::kRejected},
      {{OrderEvent::kCancel}, OrderState::kCancelled},
      {{OrderEvent::kPlanReady, OrderEvent::kAdmit, OrderEvent::kLaunch,
        OrderEvent::kCrash, OrderEvent::kGiveUp},
       OrderState::kFailed},
  };
  for (const Arc& arc : arcs) {
    OrderLifecycle order;
    for (OrderEvent event : arc.events) {
      ASSERT_TRUE(order.Apply(event).ok()) << OrderEventName(event);
    }
    EXPECT_EQ(order.state(), arc.terminal);
    EXPECT_EQ(order.settlement(), Settlement::kRefunded);
  }
}

TEST(LifecycleTest, TerminalStatesDeclareNothing) {
  const OrderState terminals[] = {OrderState::kBilled, OrderState::kRejected,
                                  OrderState::kCancelled, OrderState::kFailed};
  for (OrderState state : terminals) {
    ASSERT_TRUE(IsTerminalOrderState(state));
    for (int e = 0; e < kOrderEventCount; ++e) {
      EXPECT_FALSE(
          DeclaredTransition(state, static_cast<OrderEvent>(e), nullptr))
          << OrderStateName(state) << " declared "
          << OrderEventName(static_cast<OrderEvent>(e));
    }
  }
}

TEST(LifecycleTest, CancelIsLegalInEveryLiveState) {
  for (int s = 0; s < kOrderStateCount; ++s) {
    OrderState state = static_cast<OrderState>(s);
    OrderState to;
    if (IsTerminalOrderState(state)) {
      continue;
    }
    ASSERT_TRUE(DeclaredTransition(state, OrderEvent::kCancel, &to))
        << OrderStateName(state);
    EXPECT_EQ(to, OrderState::kCancelled);
  }
}

// Satellite 2: 64 seeded random event walks. An undeclared transition must
// never land (Apply refuses and leaves the machine untouched), and every
// walk that reaches a terminal state settles exactly once — charged iff
// billed, refunded otherwise — after which the state is absorbing.
TEST(LifecycleTest, RandomWalksNeverLandUndeclaredAndSettleOnce) {
  for (uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(SplitMix64(seed + 1));
    OrderLifecycle order;
    int settlements_observed = 0;
    // Random events until terminal; the walk always terminates because
    // kCancel is legal in every live state (and the cap below forces it).
    for (int step = 0; step < 4096 && !order.terminal(); ++step) {
      OrderEvent event =
          step < 4000
              ? static_cast<OrderEvent>(rng.NextU64Below(kOrderEventCount))
              : OrderEvent::kCancel;
      const OrderState before = order.state();
      OrderState declared_to;
      const bool declared =
          DeclaredTransition(before, event, &declared_to);
      const Status status = order.Apply(event);
      ASSERT_EQ(status.ok(), declared)
          << "seed " << seed << ": " << OrderEventName(event) << " in "
          << OrderStateName(before);
      if (status.ok()) {
        ASSERT_EQ(order.state(), declared_to);
        if (order.terminal()) {
          ++settlements_observed;
          ASSERT_EQ(order.settlement(),
                    order.state() == OrderState::kBilled
                        ? Settlement::kCharged
                        : Settlement::kRefunded)
              << "seed " << seed;
        }
      } else {
        ASSERT_EQ(order.state(), before) << "failed Apply mutated the state";
        ASSERT_EQ(order.settlement(),
                  order.terminal() ? order.settlement() : Settlement::kNone);
      }
    }
    ASSERT_TRUE(order.terminal()) << "seed " << seed;
    ASSERT_EQ(settlements_observed, 1) << "seed " << seed;
    // Terminal is absorbing: every further event is refused and the
    // settlement ledger never moves again.
    const OrderState final_state = order.state();
    const Settlement final_settlement = order.settlement();
    for (int e = 0; e < kOrderEventCount; ++e) {
      EXPECT_FALSE(order.Apply(static_cast<OrderEvent>(e)).ok());
      EXPECT_EQ(order.state(), final_state);
      EXPECT_EQ(order.settlement(), final_settlement);
    }
  }
}

// --- Admission control ---

// The paper's Figure 12 arithmetic: an 880 MB board minus the host base
// and the device+flight container overhead leaves room for exactly three
// default virtual drones; the fourth fails harmlessly.
TEST(AdmissionTest, FigureTwelvePacksThreeVdronesPerBoard) {
  AdmissionConfig config;
  config.boards = 1;
  config.queue_capacity = 0;  // Reject outright: no queue to hide in.
  AdmissionController admission(config);
  EXPECT_DOUBLE_EQ(admission.board_budget_mb(), 880.0);
  EXPECT_DOUBLE_EQ(admission.usable_mb(), 880.0 - BoardOverheadMb());

  const double footprint = VdroneFootprintMb();
  for (uint64_t order = 1; order <= 3; ++order) {
    AdmitResult result = admission.Request(order, footprint);
    EXPECT_EQ(result.outcome, AdmitOutcome::kAdmitted) << "order " << order;
    EXPECT_EQ(result.board, 0);
  }
  EXPECT_TRUE(admission.BoardFull(0, footprint));
  AdmitResult fourth = admission.Request(4, footprint);
  EXPECT_EQ(fourth.outcome, AdmitOutcome::kRejected);
  EXPECT_EQ(admission.rejected_total(), 1u);
  EXPECT_EQ(admission.violations(), 0u);
}

// Satellite 3 boundary pair: a footprint that lands exactly on the budget
// admits; one megabyte more can never fit and is rejected immediately.
TEST(AdmissionTest, ExactlyAtBudgetAdmitsOneMbOverRejects) {
  AdmissionConfig config;
  config.boards = 1;
  config.board_budget_mb = BoardOverheadMb() + 200.0;
  config.queue_capacity = 8;
  {
    AdmissionController admission(config);
    EXPECT_DOUBLE_EQ(admission.usable_mb(), 200.0);
    AdmitResult exact = admission.Request(1, 200.0);
    EXPECT_EQ(exact.outcome, AdmitOutcome::kAdmitted);
    EXPECT_DOUBLE_EQ(admission.BoardFreeMb(0), 0.0);
    EXPECT_EQ(admission.violations(), 0u);
  }
  {
    AdmissionController admission(config);
    // One MB over budget: can never fit even an empty board, so it is
    // rejected outright instead of parking in (and forever blocking) the
    // queue.
    AdmitResult over = admission.Request(1, 201.0);
    EXPECT_EQ(over.outcome, AdmitOutcome::kRejected);
    EXPECT_EQ(admission.queue_size(), 0u);
    EXPECT_EQ(admission.violations(), 0u);
  }
}

TEST(AdmissionTest, QueueIsStrictFifoWithNoOvertaking) {
  AdmissionConfig config;
  config.boards = 1;
  config.board_budget_mb = BoardOverheadMb() + 100.0;
  config.queue_capacity = 2;
  AdmissionController admission(config);
  EXPECT_EQ(admission.Request(1, 100.0).outcome, AdmitOutcome::kAdmitted);
  // Head needs 80, which fits nowhere right now; the 10 MB order behind it
  // must wait its turn rather than overtake.
  EXPECT_EQ(admission.Request(2, 80.0).outcome, AdmitOutcome::kQueued);
  EXPECT_EQ(admission.Request(3, 10.0).outcome, AdmitOutcome::kQueued);
  // Queue full: the next order is rejected.
  EXPECT_EQ(admission.Request(4, 10.0).outcome, AdmitOutcome::kRejected);

  admission.Launch(0);
  std::vector<DrainedAdmit> drained = admission.ReleaseBoard(0);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].order, 2u);
  EXPECT_EQ(drained[1].order, 3u);
  EXPECT_DOUBLE_EQ(admission.BoardUsedMb(0), 90.0);
  EXPECT_EQ(admission.violations(), 0u);
}

// Satellite 3: release-on-completion re-admits the queued order.
TEST(AdmissionTest, ReleaseOnCompletionReadmitsQueuedOrder) {
  AdmissionConfig config;
  config.boards = 1;
  config.queue_capacity = 4;
  AdmissionController admission(config);
  const double footprint = VdroneFootprintMb();
  EXPECT_EQ(admission.Request(1, footprint).outcome, AdmitOutcome::kAdmitted);
  EXPECT_EQ(admission.Request(2, footprint).outcome, AdmitOutcome::kAdmitted);
  EXPECT_EQ(admission.Request(3, footprint).outcome, AdmitOutcome::kAdmitted);
  EXPECT_EQ(admission.Request(4, footprint).outcome, AdmitOutcome::kQueued);

  admission.Launch(0);
  EXPECT_FALSE(admission.BoardAccepting(0));
  // While flying, the board accepts nothing and the queue holds.
  EXPECT_EQ(admission.Request(5, footprint).outcome, AdmitOutcome::kQueued);

  std::vector<DrainedAdmit> drained = admission.ReleaseBoard(0);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].order, 4u);
  EXPECT_EQ(drained[1].order, 5u);
  EXPECT_EQ(drained[0].board, 0);
  EXPECT_TRUE(admission.BoardAccepting(0));
  EXPECT_DOUBLE_EQ(admission.BoardUsedMb(0), 2 * footprint);
  EXPECT_EQ(admission.queue_size(), 0u);
  EXPECT_EQ(admission.violations(), 0u);
}

TEST(AdmissionTest, RemoveFreesBoardingFootprintAndDrains) {
  AdmissionConfig config;
  config.boards = 1;
  config.queue_capacity = 4;
  AdmissionController admission(config);
  const double footprint = VdroneFootprintMb();
  admission.Request(1, footprint);
  admission.Request(2, footprint);
  admission.Request(3, footprint);
  ASSERT_EQ(admission.Request(4, footprint).outcome, AdmitOutcome::kQueued);

  // Cancelling a boarding order frees its slot and the queue drains in.
  std::vector<DrainedAdmit> drained = admission.Remove(2);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].order, 4u);
  EXPECT_DOUBLE_EQ(admission.BoardUsedMb(0), 3 * footprint);
  // Removing an unknown order is a harmless no-op.
  EXPECT_TRUE(admission.Remove(99).empty());
  EXPECT_EQ(admission.violations(), 0u);
}

// Satellite 3: the complete accounting state survives a checkpoint
// bit-exactly — save → restore → save is a byte fixed point.
TEST(AdmissionTest, SaveRestoreSaveIsByteFixedPoint) {
  AdmissionConfig config;
  config.boards = 2;
  config.queue_capacity = 4;
  AdmissionController admission(config);
  const double footprint = VdroneFootprintMb();
  for (uint64_t order = 1; order <= 7; ++order) {
    admission.Request(order, footprint);
  }
  admission.Launch(0);
  admission.Request(8, footprint + 0.125);  // A non-integral footprint.

  SnapshotWriter first;
  admission.SaveState(&first);
  ASSERT_FALSE(first.bytes().empty());

  AdmissionController restored(config);
  SnapshotReader reader(first.bytes());
  ASSERT_TRUE(restored.RestoreState(&reader).ok());
  EXPECT_EQ(reader.remaining(), 0u);

  SnapshotWriter second;
  restored.SaveState(&second);
  EXPECT_EQ(first.bytes(), second.bytes());

  // The restored controller behaves identically, not just serializes
  // identically: the flying board still refuses and the queue still holds.
  EXPECT_FALSE(restored.BoardAccepting(0));
  EXPECT_EQ(restored.queue_size(), admission.queue_size());
  EXPECT_EQ(restored.admitted_total(), admission.admitted_total());
  EXPECT_DOUBLE_EQ(restored.BoardUsedMb(1), admission.BoardUsedMb(1));
  EXPECT_EQ(restored.violations(), 0u);
}

// --- Tenant-mix manifests ---

TEST(TenantMixTest, BuiltinMixRoundTripsByteStable) {
  const TenantMixSpec mix = BuiltinTenantMix();
  ASSERT_EQ(mix.classes.size(), 3u);
  ASSERT_FALSE(mix.slos.empty());
  const std::string dumped = DumpTenantMix(mix);
  StatusOr<TenantMixSpec> parsed = ParseTenantMix(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(DumpTenantMix(*parsed), dumped);
}

TEST(TenantMixTest, JsonAndXmlParseToTheSameMix) {
  const std::string xml =
      "<tenant_mix name=\"m\">\n"
      "  <class name=\"a\" weight=\"2\" waypoints=\"4\" dwell_s=\"15\"/>\n"
      "  <slo expr=\"latency.plan.p99 &lt;= 50\"/>\n"
      "</tenant_mix>\n";
  const std::string json =
      "{\"name\": \"m\", \"classes\": [{\"name\": \"a\", \"weight\": 2, "
      "\"waypoints\": 4, \"dwell_s\": 15}], "
      "\"slos\": [\"latency.plan.p99 <= 50\"]}";
  StatusOr<TenantMixSpec> from_xml = ParseTenantMix(xml);
  StatusOr<TenantMixSpec> from_json = ParseTenantMix(json);
  ASSERT_TRUE(from_xml.ok()) << from_xml.status().message();
  ASSERT_TRUE(from_json.ok()) << from_json.status().message();
  EXPECT_EQ(DumpTenantMix(*from_xml), DumpTenantMix(*from_json));
  EXPECT_EQ(from_xml->classes[0].weight, 2);
  EXPECT_EQ(from_xml->slos[0].ToExpr(), "latency.plan.p99 <= 50");
}

TEST(TenantMixTest, RejectsInvalidMixes) {
  // No classes.
  EXPECT_FALSE(ParseTenantMix("<tenant_mix name=\"m\"/>").ok());
  // Non-positive weight.
  EXPECT_FALSE(ParseTenantMix("<tenant_mix name=\"m\">"
                              "<class name=\"a\" weight=\"0\"/>"
                              "</tenant_mix>")
                   .ok());
  // Rate outside [0, 1].
  EXPECT_FALSE(ParseTenantMix("<tenant_mix name=\"m\">"
                              "<class name=\"a\" crash_rate=\"1.5\"/>"
                              "</tenant_mix>")
                   .ok());
  // Malformed SLO expression.
  EXPECT_FALSE(ParseTenantMix("<tenant_mix name=\"m\">"
                              "<class name=\"a\"/>"
                              "<slo expr=\"latency.plan.p999 &lt;= 1\"/>"
                              "</tenant_mix>")
                   .ok());
  // Unknown attribute.
  EXPECT_FALSE(ParseTenantMix("<tenant_mix name=\"m\">"
                              "<class name=\"a\" wieght=\"1\"/>"
                              "</tenant_mix>")
                   .ok());
}

// --- Load generator ---

TEST(LoadGenTest, IsDeterministicAndCoversEveryClass) {
  const TenantMixSpec mix = BuiltinTenantMix();
  LoadSpec load;
  load.sessions = 500;
  load.arrival_window_s = 30;
  load.base_seed = 42;
  const std::vector<SessionSpec> a = GenerateLoad(mix, load);
  const std::vector<SessionSpec> b = GenerateLoad(mix, load);
  ASSERT_EQ(a.size(), 500u);
  std::set<int> classes_seen;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i + 1);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].class_index, b[i].class_index);
    EXPECT_LE(ToSecondsF(a[i].arrival), 30.0);
    EXPECT_DOUBLE_EQ(a[i].footprint_mb, VdroneFootprintMb(a[i].processes));
    classes_seen.insert(a[i].class_index);
  }
  EXPECT_EQ(classes_seen.size(), mix.classes.size());

  // A different seed draws a different load.
  load.base_seed = 43;
  const std::vector<SessionSpec> c = GenerateLoad(mix, load);
  bool any_difference = false;
  for (size_t i = 0; i < c.size(); ++i) {
    any_difference = any_difference || c[i].seed != a[i].seed;
  }
  EXPECT_TRUE(any_difference);
}

// --- End-to-end serving path ---

TEST(ControlPlaneTest, SweepSettlesEveryOrderWithZeroViolations) {
  ControlPlaneConfig config;
  config.shards = 2;
  config.threads = 2;
  config.seed = 7;
  config.load.sessions = 120;
  config.load.arrival_window_s = 20;
  ControlPlaneRouter router(config);
  const ControlPlaneReport report = router.Serve(BuiltinTenantMix());

  EXPECT_EQ(report.sessions, 120);
  EXPECT_EQ(report.billed + report.rejected + report.cancelled + report.failed,
            report.sessions);
  EXPECT_GT(report.billed, 0);
  EXPECT_EQ(report.settlement_errors, 0);
  EXPECT_EQ(report.admission_violations, 0u);
  EXPECT_GT(report.peak_concurrency, 0);
  EXPECT_GT(report.makespan_s, 0.0);
  EXPECT_GT(report.charged_ud, 0);
  // Every stage line is present and the money lines are integers in the
  // canonical text.
  ASSERT_EQ(report.stages.size(), 6u);
  EXPECT_NE(report.ToText().find("charged_ud"), std::string::npos);
}

}  // namespace
}  // namespace androne
