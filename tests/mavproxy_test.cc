#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include "src/flight/sitl.h"
#include "src/mavproxy/mavproxy.h"
#include "src/mavproxy/vfc.h"
#include "src/mavproxy/whitelist.h"

namespace androne {
namespace {

const GeoPoint kHome{43.6084298, -85.8110359, 0.0};
const GeoPoint kWaypointA{43.6084298, -85.8110359, 15.0};

MavlinkFrame GotoFrame(const GeoPoint& target) {
  SetPositionTargetGlobalInt sp;
  sp.lat_int = static_cast<int32_t>(target.latitude_deg * 1e7);
  sp.lon_int = static_cast<int32_t>(target.longitude_deg * 1e7);
  sp.alt = static_cast<float>(target.altitude_m);
  sp.type_mask = 0x0FF8;
  return PackMessage(MavMessage{sp});
}

MavlinkFrame CommandFrame(MavCmd cmd, float p1 = 0, float p7 = 0) {
  CommandLong c;
  c.command = static_cast<uint16_t>(cmd);
  c.param1 = p1;
  c.param7 = p7;
  return PackMessage(MavMessage{c});
}

MavlinkFrame ModeFrame(CopterMode mode) {
  SetMode sm;
  sm.custom_mode = static_cast<uint32_t>(mode);
  return PackMessage(MavMessage{sm});
}

// ------------------------------------------------------------ Whitelist.

TEST(WhitelistTest, GuidedOnlyAllowsOnlyTargetsAndSpeed) {
  auto wl = CommandWhitelist::FromTemplate(WhitelistTemplate::kGuidedOnly);
  EXPECT_TRUE(wl.Allows(MavMessage{SetPositionTargetGlobalInt{}}));
  CommandLong speed;
  speed.command = static_cast<uint16_t>(MavCmd::kDoChangeSpeed);
  EXPECT_TRUE(wl.Allows(MavMessage{speed}));
  EXPECT_FALSE(wl.Allows(MavMessage{SetMode{}}));
  EXPECT_FALSE(wl.Allows(MavMessage{RcChannelsOverride{}}));
  CommandLong takeoff;
  takeoff.command = static_cast<uint16_t>(MavCmd::kNavTakeoff);
  EXPECT_FALSE(wl.Allows(MavMessage{takeoff}));
}

TEST(WhitelistTest, StandardAllowsRestrictedModes) {
  auto wl = CommandWhitelist::FromTemplate(WhitelistTemplate::kStandard);
  SetMode guided;
  guided.custom_mode = static_cast<uint32_t>(CopterMode::kGuided);
  EXPECT_TRUE(wl.Allows(MavMessage{guided}));
  SetMode auto_mode;
  auto_mode.custom_mode = static_cast<uint32_t>(CopterMode::kAuto);
  EXPECT_FALSE(wl.Allows(MavMessage{auto_mode}));  // Planner owns AUTO.
  EXPECT_FALSE(wl.Allows(MavMessage{RcChannelsOverride{}}));
}

TEST(WhitelistTest, FullAllowsRcButNeverArming) {
  auto wl = CommandWhitelist::FromTemplate(WhitelistTemplate::kFull);
  EXPECT_TRUE(wl.Allows(MavMessage{RcChannelsOverride{}}));
  SetMode rtl;
  rtl.custom_mode = static_cast<uint32_t>(CopterMode::kRtl);
  EXPECT_TRUE(wl.Allows(MavMessage{rtl}));
  CommandLong arm;
  arm.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
  arm.param1 = 1;
  EXPECT_FALSE(wl.Allows(MavMessage{arm}));  // No template allows arming.
}

TEST(WhitelistTest, CustomizationOverridesTemplate) {
  auto wl = CommandWhitelist::FromTemplate(WhitelistTemplate::kGuidedOnly);
  wl.AllowCommand(MavCmd::kNavTakeoff);
  CommandLong takeoff;
  takeoff.command = static_cast<uint16_t>(MavCmd::kNavTakeoff);
  EXPECT_TRUE(wl.Allows(MavMessage{takeoff}));
  wl.DenyCommand(MavCmd::kDoChangeSpeed);
  CommandLong speed;
  speed.command = static_cast<uint16_t>(MavCmd::kDoChangeSpeed);
  EXPECT_FALSE(wl.Allows(MavMessage{speed}));
}

// ------------------------------------------------------------ VFC + proxy.

class VfcFixture : public ::testing::Test {
 protected:
  VfcFixture() : drone_(&clock_, kHome, 5), proxy_(&clock_) {
    // Wire proxy <-> flight controller.
    proxy_.SetMasterSink([this](const MavlinkFrame& f) {
      drone_.controller().HandleFrame(f);
    });
    drone_.controller().SetSender([this](const MavlinkFrame& f) {
      proxy_.HandleMasterFrame(f);
    });
    vfc_ = proxy_.CreateVfc(
        /*tenant_id=*/1,
        CommandWhitelist::FromTemplate(WhitelistTemplate::kStandard),
        /*continuous_position=*/false);
    vfc_->SetClientSink([this](const MavlinkFrame& f) {
      auto m = UnpackMessage(f);
      if (m.ok()) {
        client_rx_.push_back(*m);
      }
    });
    vfc_->SetAssignedWaypoint(kWaypointA);
    clock_.RunFor(Seconds(2));  // GPS warmup.
  }

  // Finds the latest message of type T received by the client.
  template <typename T>
  std::optional<T> LatestClientMessage() {
    for (auto it = client_rx_.rbegin(); it != client_rx_.rend(); ++it) {
      if (const T* m = std::get_if<T>(&*it)) {
        return *m;
      }
    }
    return std::nullopt;
  }

  void TakeOffViaPlanner(double alt) {
    proxy_.HandlePlannerFrame(ModeFrame(CopterMode::kGuided));
    proxy_.HandlePlannerFrame(
        CommandFrame(MavCmd::kComponentArmDisarm, /*p1=*/1));
    proxy_.HandlePlannerFrame(CommandFrame(MavCmd::kNavTakeoff, 0,
                                           static_cast<float>(alt)));
    ASSERT_TRUE(drone_.RunUntil(
        [&] {
          return std::fabs(drone_.physics().truth().position.altitude_m -
                           alt) < 1.0;
        },
        Seconds(60)));
  }

  SimClock clock_;
  SitlDrone drone_;
  MavProxy proxy_;
  VirtualFlightController* vfc_ = nullptr;
  std::vector<MavMessage> client_rx_;
};

TEST_F(VfcFixture, PlannerHasUnrestrictedAccess) {
  TakeOffViaPlanner(15.0);
  EXPECT_TRUE(drone_.controller().armed());
  EXPECT_EQ(drone_.controller().mode(), CopterMode::kGuided);
}

TEST_F(VfcFixture, IdleVfcPresentsDroneParkedAtWaypoint) {
  clock_.RunFor(Seconds(3));  // Telemetry flows.
  auto view = LatestClientMessage<GlobalPositionInt>();
  ASSERT_TRUE(view.has_value());
  // The real drone sits at home; the tenant's view is parked at *their*
  // waypoint, on the ground.
  EXPECT_NEAR(view->lat / 1e7, kWaypointA.latitude_deg, 1e-6);
  EXPECT_EQ(view->relative_alt, 0);
  auto hb = LatestClientMessage<Heartbeat>();
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->system_status, static_cast<uint8_t>(MavState::kStandby));
  EXPECT_EQ(hb->base_mode & kMavModeFlagSafetyArmed, 0);
}

TEST_F(VfcFixture, CommandsDeclinedUntilControlGranted) {
  TakeOffViaPlanner(15.0);
  vfc_->HandleClientFrame(CommandFrame(MavCmd::kNavLand));
  auto ack = LatestClientMessage<CommandAck>();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->result, static_cast<uint8_t>(MavResult::kDenied));
  EXPECT_EQ(vfc_->commands_declined(), 1u);
  EXPECT_EQ(drone_.controller().mode(), CopterMode::kGuided);  // Unchanged.
}

TEST_F(VfcFixture, ActiveVfcForwardsWhitelistedCommands) {
  TakeOffViaPlanner(15.0);
  vfc_->GrantControl();
  GeoPoint target = FromNed(kHome, NedPoint{30, 10, -15});
  vfc_->HandleClientFrame(GotoFrame(target));
  EXPECT_EQ(vfc_->commands_forwarded(), 1u);
  EXPECT_TRUE(drone_.RunUntil([&] { return drone_.DistanceTo(target) < 3.0; },
                              Seconds(120)));
}

TEST_F(VfcFixture, ActiveVfcStillFiltersByWhitelist) {
  TakeOffViaPlanner(15.0);
  vfc_->GrantControl();
  // RC override is not in the standard template.
  vfc_->HandleClientFrame(PackMessage(MavMessage{RcChannelsOverride{}}));
  EXPECT_EQ(vfc_->commands_forwarded(), 0u);
  EXPECT_EQ(vfc_->commands_declined(), 1u);
  // Arming never passes.
  vfc_->HandleClientFrame(CommandFrame(MavCmd::kComponentArmDisarm, 0));
  EXPECT_EQ(vfc_->commands_forwarded(), 0u);
}

TEST_F(VfcFixture, VdcControlQueryHasFinalSay) {
  TakeOffViaPlanner(15.0);
  bool allowed = false;
  vfc_->SetControlQuery([&] { return allowed; });
  vfc_->GrantControl();
  vfc_->HandleClientFrame(GotoFrame(kWaypointA));
  EXPECT_EQ(vfc_->commands_forwarded(), 0u);  // VDC said no.
  allowed = true;
  vfc_->HandleClientFrame(GotoFrame(kWaypointA));
  EXPECT_EQ(vfc_->commands_forwarded(), 1u);
}

TEST_F(VfcFixture, ApproachTriggersVirtualTakeoff) {
  TakeOffViaPlanner(15.0);
  // The drone is already within the approach threshold of kWaypointA (home
  // == waypoint A's ground position), so telemetry drives the animation.
  clock_.RunFor(Seconds(4));
  EXPECT_EQ(vfc_->state(), VfcState::kTakingOffToMeet);
  auto view = LatestClientMessage<GlobalPositionInt>();
  ASSERT_TRUE(view.has_value());
  EXPECT_GT(view->relative_alt, 0);  // Climbing virtually.
  EXPECT_LE(view->relative_alt, 16000);
}

TEST_F(VfcFixture, RevokeControlLandsTheVirtualView) {
  TakeOffViaPlanner(15.0);
  vfc_->GrantControl();
  clock_.RunFor(Seconds(2));
  vfc_->RevokeControl();
  EXPECT_EQ(vfc_->state(), VfcState::kLanding);
  // The view descends to the ground over time.
  clock_.RunFor(Seconds(10));
  auto view = LatestClientMessage<GlobalPositionInt>();
  ASSERT_TRUE(view.has_value());
  EXPECT_LT(view->relative_alt, 15000);
  vfc_->HandleClientFrame(CommandFrame(MavCmd::kNavLand));
  EXPECT_EQ(drone_.controller().mode(), CopterMode::kGuided);  // Declined.
}

TEST_F(VfcFixture, ContinuousPositionTenantSeesRealPosition) {
  VirtualFlightController* continuous = proxy_.CreateVfc(
      /*tenant_id=*/2,
      CommandWhitelist::FromTemplate(WhitelistTemplate::kGuidedOnly),
      /*continuous_position=*/true);
  std::vector<GlobalPositionInt> rx;
  continuous->SetClientSink([&](const MavlinkFrame& f) {
    auto m = UnpackMessage(f);
    if (m.ok() && std::holds_alternative<GlobalPositionInt>(*m)) {
      rx.push_back(std::get<GlobalPositionInt>(*m));
    }
  });
  continuous->SetAssignedWaypoint(FromNed(kHome, NedPoint{500, 500, -15}));
  TakeOffViaPlanner(15.0);
  clock_.RunFor(Seconds(2));
  ASSERT_FALSE(rx.empty());
  // Far from its waypoint, yet it sees the *real* position (altitude ~15 m).
  EXPECT_NEAR(rx.back().relative_alt / 1000.0, 15.0, 2.0);
  // But commands are still declined before its waypoint.
  continuous->HandleClientFrame(GotoFrame(kWaypointA));
  EXPECT_EQ(continuous->commands_forwarded(), 0u);
}

TEST_F(VfcFixture, FenceRecoverySuspendsAndRestoresCommands) {
  TakeOffViaPlanner(15.0);
  vfc_->GrantControl();
  // Wire fence callbacks the way the drone integration does.
  drone_.controller().SetFenceCallbacks(
      [&] { proxy_.OnFenceBreach(1); }, [&] { proxy_.OnFenceRecovered(1); });
  GeofenceConfig fence;
  fence.enabled = true;
  fence.center = drone_.physics().truth().position;
  fence.radius_m = 40;
  drone_.controller().SetGeofence(fence);

  // Tenant pushes the drone out of the fence.
  GeoPoint outside = FromNed(fence.center, NedPoint{300, 0, 0});
  vfc_->HandleClientFrame(GotoFrame(outside));
  ASSERT_TRUE(drone_.RunUntil(
      [&] { return !vfc_->commands_enabled(); }, Seconds(120)));
  // While recovering, commands are declined.
  uint64_t declined_before = vfc_->commands_declined();
  vfc_->HandleClientFrame(GotoFrame(outside));
  EXPECT_EQ(vfc_->commands_declined(), declined_before + 1);
  // Control returns after recovery.
  ASSERT_TRUE(drone_.RunUntil([&] { return vfc_->commands_enabled(); },
                              Seconds(120)));
  EXPECT_EQ(drone_.controller().mode(), CopterMode::kLoiter);
}

TEST_F(VfcFixture, InactiveTenantSeesNoForeignTelemetry) {
  TakeOffViaPlanner(15.0);
  // Tenant 1 is idle; another tenant (the planner here) flies around. The
  // idle tenant must not receive attitude/statustext of the shared drone.
  client_rx_.clear();
  clock_.RunFor(Seconds(5));
  for (const MavMessage& m : client_rx_) {
    EXPECT_FALSE(std::holds_alternative<Attitude>(m));
    EXPECT_FALSE(std::holds_alternative<StatusText>(m));
    EXPECT_FALSE(std::holds_alternative<SysStatus>(m));
  }
}

TEST_F(VfcFixture, ProxyFanOutReachesPlannerAndVfcs) {
  uint64_t planner_rx = 0;
  proxy_.SetPlannerSink([&](const MavlinkFrame&) { ++planner_rx; });
  clock_.RunFor(Seconds(3));
  EXPECT_GT(planner_rx, 0u);
  EXPECT_GT(proxy_.master_frames(), 0u);
  EXPECT_FALSE(client_rx_.empty());
}

// ------------------------------------------- Telemetry batching (§10).

class BatchFixture : public ::testing::Test {
 protected:
  BatchFixture() : proxy_(&clock_) {
    proxy_.SetPlannerWireSink([this](const std::vector<uint8_t>& bytes) {
      ++datagrams_;
      bytes_ += bytes.size();
      parser_.Feed(bytes);
      for (const MavlinkFrame& f : parser_.TakeFrames()) {
        (void)f;
        ++parsed_frames_;
      }
    });
  }

  MavlinkFrame TelemetryFrame() {
    Heartbeat hb;
    MavlinkFrame f = PackMessage(MavMessage{hb});
    f.seq = seq_++;
    return f;
  }

  SimClock clock_;
  MavProxy proxy_;
  MavlinkParser parser_;
  uint8_t seq_ = 0;
  uint64_t datagrams_ = 0;
  uint64_t bytes_ = 0;
  uint64_t parsed_frames_ = 0;
};

TEST_F(BatchFixture, UnbatchedWireEmitsOneDatagramPerFrame) {
  for (int i = 0; i < 5; ++i) {
    proxy_.HandleMasterFrame(TelemetryFrame());
  }
  EXPECT_EQ(datagrams_, 5u);
  EXPECT_EQ(parsed_frames_, 5u);
  EXPECT_EQ(proxy_.wire_frames(), 5u);
  EXPECT_EQ(proxy_.wire_flushes(), 5u);
}

TEST_F(BatchFixture, BatchingCoalescesFramesUntilWatermark) {
  std::vector<uint8_t> one;
  EncodeFrameInto(TelemetryFrame(), &one);
  TelemetryBatchConfig config;
  config.flush_bytes = 3 * one.size();  // Watermark reached on frame 3.
  config.flush_after = Seconds(10);     // Deadline never fires here.
  proxy_.EnableTelemetryBatching(config);

  proxy_.HandleMasterFrame(TelemetryFrame());
  proxy_.HandleMasterFrame(TelemetryFrame());
  EXPECT_EQ(datagrams_, 0u);  // Below watermark: nothing on the wire yet.
  proxy_.HandleMasterFrame(TelemetryFrame());
  EXPECT_EQ(datagrams_, 1u);  // One datagram carries all three frames…
  EXPECT_EQ(parsed_frames_, 3u);  // …and self-framing parses each of them.
  EXPECT_EQ(bytes_, 3 * one.size());
  EXPECT_EQ(proxy_.wire_frames(), 3u);
  EXPECT_EQ(proxy_.wire_flushes(), 1u);
}

TEST_F(BatchFixture, BatchFlushesOnDeadline) {
  TelemetryBatchConfig config;
  config.flush_bytes = 1 << 20;  // Watermark unreachable.
  config.flush_after = Millis(25);
  proxy_.EnableTelemetryBatching(config);

  proxy_.HandleMasterFrame(TelemetryFrame());
  proxy_.HandleMasterFrame(TelemetryFrame());
  EXPECT_EQ(datagrams_, 0u);
  clock_.RunFor(Millis(25));  // Deadline measured from the first frame.
  EXPECT_EQ(datagrams_, 1u);
  EXPECT_EQ(parsed_frames_, 2u);

  // The deadline re-arms per batch, not per frame.
  proxy_.HandleMasterFrame(TelemetryFrame());
  clock_.RunFor(Millis(25));
  EXPECT_EQ(datagrams_, 2u);
  EXPECT_EQ(parsed_frames_, 3u);
}

TEST_F(BatchFixture, ExplicitFlushDrainsAndCancelsDeadline) {
  TelemetryBatchConfig config;
  config.flush_bytes = 1 << 20;
  config.flush_after = Millis(25);
  proxy_.EnableTelemetryBatching(config);

  proxy_.HandleMasterFrame(TelemetryFrame());
  proxy_.FlushTelemetryBatch();
  EXPECT_EQ(datagrams_, 1u);
  // The cancelled deadline must not fire a second, empty flush.
  clock_.RunFor(Millis(100));
  EXPECT_EQ(datagrams_, 1u);
  EXPECT_EQ(proxy_.wire_flushes(), 1u);

  // Flushing an empty batch is a no-op, not an empty datagram.
  proxy_.FlushTelemetryBatch();
  EXPECT_EQ(datagrams_, 1u);
}

}  // namespace
}  // namespace androne
