#include "src/util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>

#include "src/util/rng.h"

namespace androne {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_EQ(ParseJson("true").value().AsBool(), true);
  EXPECT_EQ(ParseJson("false").value().AsBool(), false);
  EXPECT_DOUBLE_EQ(ParseJson("3.25").value().AsDouble(), 3.25);
  EXPECT_EQ(ParseJson("-17").value().AsInt(), -17);
  EXPECT_EQ(ParseJson("\"hi\"").value().AsString(), "hi");
  EXPECT_DOUBLE_EQ(ParseJson("1e3").value().AsDouble(), 1000.0);
}

TEST(JsonParseTest, NestedStructures) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(v.ok());
  const JsonValue& root = v.value();
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[0].AsInt(), 1);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->AsBool());
  EXPECT_TRUE(root.Find("c")->is_null());
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsString(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, UnicodeSurrogatePair) {
  auto v = ParseJson(R"("😀")");  // U+1F600 grinning face.
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} extra").ok());
  EXPECT_FALSE(ParseJson("\"\\u12\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ud800\"").ok());  // Unpaired surrogate.
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonDumpTest, CompactRoundTrip) {
  const std::string doc =
      R"({"apps":["com.example.survey.apk"],"energy-allotted":45000,)"
      R"("waypoints":[{"altitude":15,"latitude":43.6084298}]})";
  auto v = ParseJson(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().Dump(), doc);
}

TEST(JsonDumpTest, PrettyOutputReparses) {
  JsonObject obj;
  obj["list"] = JsonArray{1, 2, 3};
  obj["name"] = "drone";
  JsonValue v{std::move(obj)};
  auto re = ParseJson(v.DumpPretty());
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re.value(), v);
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  JsonValue v{std::string("a\x01z")};
  EXPECT_EQ(v.Dump(), "\"a\\u0001z\"");
}

TEST(JsonValueTest, TypedLookupsWithDefaults) {
  auto v = ParseJson(R"({"n": 4.5, "s": "x", "b": true})").value();
  EXPECT_DOUBLE_EQ(v.GetNumberOr("n", 0), 4.5);
  EXPECT_DOUBLE_EQ(v.GetNumberOr("missing", 7.0), 7.0);
  EXPECT_EQ(v.GetIntOr("n", 0), 4);
  EXPECT_EQ(v.GetStringOr("s", ""), "x");
  EXPECT_EQ(v.GetStringOr("n", "fallback"), "fallback");  // Wrong type.
  EXPECT_TRUE(v.GetBoolOr("b", false));
  EXPECT_TRUE(v.GetBoolOr("missing", true));
}

// Property test: randomly generated documents survive dump -> parse -> dump.
JsonValue RandomJson(Rng& rng, int depth) {
  int pick = depth > 3 ? static_cast<int>(rng.NextU64Below(4))
                       : static_cast<int>(rng.NextU64Below(6));
  switch (pick) {
    case 0:
      return JsonValue(nullptr);
    case 1:
      return JsonValue(rng.Bernoulli(0.5));
    case 2:
      return JsonValue(static_cast<int64_t>(rng.NextU64Below(1'000'000)) -
                       500'000);
    case 3: {
      std::string s;
      size_t len = rng.NextU64Below(12);
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.NextU64Below(26));
      }
      return JsonValue(std::move(s));
    }
    case 4: {
      JsonArray arr;
      size_t len = rng.NextU64Below(4);
      for (size_t i = 0; i < len; ++i) {
        arr.push_back(RandomJson(rng, depth + 1));
      }
      return JsonValue(std::move(arr));
    }
    default: {
      JsonObject obj;
      size_t len = rng.NextU64Below(4);
      for (size_t i = 0; i < len; ++i) {
        obj["k" + std::to_string(i)] = RandomJson(rng, depth + 1);
      }
      return JsonValue(std::move(obj));
    }
  }
}

class JsonRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundTripTest, DumpParseDumpIsStable) {
  Rng rng(GetParam());
  JsonValue v = RandomJson(rng, 0);
  std::string once = v.Dump();
  auto parsed = ParseJson(once);
  ASSERT_TRUE(parsed.ok()) << once;
  EXPECT_EQ(parsed.value(), v);
  EXPECT_EQ(parsed.value().Dump(), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest,
                         ::testing::Range<uint64_t>(1, 33));

TEST_P(JsonRoundTripTest, ExtremeDoublesRoundTripBitExact) {
  // Doubles drawn from random bit patterns (denormals, huge exponents,
  // 17-significant-digit values): the shortest-round-trip serializer must
  // reproduce each one bit-exactly through dump -> parse.
  Rng rng(GetParam() ^ 0x5ca1ab1eULL);
  for (int i = 0; i < 64; ++i) {
    uint64_t bits = rng.NextU64();
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    if (!std::isfinite(d)) {
      continue;  // JSON has no NaN/Inf encoding.
    }
    JsonValue v(d);
    std::string dumped = v.Dump();
    auto parsed = ParseJson(dumped);
    ASSERT_TRUE(parsed.ok()) << dumped;
    ASSERT_TRUE(parsed.value().is_number()) << dumped;
    double back = parsed.value().AsDouble();
    uint64_t back_bits;
    std::memcpy(&back_bits, &back, sizeof(back));
    // Normalize -0.0 vs 0.0: both are exact parses of "-0"/"0".
    if (d == 0.0 && back == 0.0) {
      continue;
    }
    EXPECT_EQ(bits, back_bits) << dumped << " reparsed as " << back;
  }
}

}  // namespace
}  // namespace androne
