// Trace-golden test: flies the canonical 2-tenant FleetWorld at a fixed
// seed with full tracing and compares the byte-stable text export against
// the checked-in golden at tests/goldens/fleet_world_trace.txt.
//
// The golden pins the trace event model: any change to instrumentation
// points, event ordering, or the text format shows up as a diff here and
// must be reviewed (and the golden regenerated) deliberately.
//
// Regenerate with one command from the repo root after an intentional
// change:
//
//   ANDRONE_REGEN_GOLDENS=1 ./build/tests/trace_golden_test
//
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/exec/fleet_executor.h"
#include "src/exec/fleet_world.h"
#include "src/obs/trace.h"
#include "src/obs/triage.h"

namespace androne {
namespace {

constexpr uint64_t kGoldenSeed = 2026;

std::string GoldenPath() {
  return std::string(ANDRONE_SOURCE_DIR) +
         "/tests/goldens/fleet_world_trace.txt";
}

// The golden world: small enough to run in tens of milliseconds, rich
// enough to exercise every instrumented layer. The ring is sized so the
// buffer wraps — the golden then also pins the overflow accounting.
std::string RunGoldenWorld() {
  FleetWorldConfig config;
  config.tenants = 2;
  config.dwell_s = 5;
  config.annealing_iterations = 100;
  config.trace_categories = kTraceAll;
  config.trace_capacity = 512;

  WorldContext ctx;
  ctx.index = 0;
  ctx.seed = FleetExecutor::WorldSeed(kGoldenSeed, 0);
  WorldResult result = RunFleetWorld(config, ctx);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.trace_text.empty());
  return result.trace_text;
}

std::string FirstDivergence(const std::string& expected,
                            const std::string& actual) {
  return DescribeDivergence(expected, actual, "golden", "actual");
}

TEST(TraceGoldenTest, CanonicalWorldMatchesCheckedInGolden) {
  std::string actual = RunGoldenWorld();

  if (std::getenv("ANDRONE_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << actual;
    out.close();
    std::printf("regenerated %s (%zu bytes)\n", GoldenPath().c_str(),
                actual.size());
    return;
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << GoldenPath()
      << " — regenerate with ANDRONE_REGEN_GOLDENS=1 ./tests/trace_golden_test";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string expected = buffer.str();

  EXPECT_EQ(expected, actual)
      << FirstDivergence(expected, actual)
      << "\nif the instrumentation change is intentional, regenerate with "
         "ANDRONE_REGEN_GOLDENS=1 ./tests/trace_golden_test";
}

TEST(TraceGoldenTest, GoldenWorldIsRepeatable) {
  // The golden contract is only meaningful if two in-process runs agree.
  std::string first = RunGoldenWorld();
  std::string second = RunGoldenWorld();
  EXPECT_EQ(first, second) << FirstDivergence(first, second);
}

}  // namespace
}  // namespace androne
