// Chaos tests: scripted network faults against the full control chain
// (GroundControl -> faulty duplex LTE channel -> MAVProxy -> flight
// controller) plus crash-injection and supervised restart of containers.
// Every scenario runs on the simulated clock with fixed seeds, so the
// whole chaos schedule replays deterministically.
#include <gtest/gtest.h>

#include "src/cloud/ground_control.h"
#include "src/container/container.h"
#include "src/container/image_store.h"
#include "src/container/runtime.h"
#include "src/container/supervisor.h"
#include "src/flight/sitl.h"
#include "src/mavlink/frame.h"
#include "src/mavproxy/mavproxy.h"
#include "src/net/channel.h"
#include "src/net/fault_injector.h"

namespace androne {
namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};
const GeoPoint kWaypointB{43.6076409, -85.8154457, 15};

// ----------------------------------------------------- FaultPlan mechanics.

TEST(FaultPlanTest, OutageWindowsRespectTimeAndDirection) {
  FaultPlan plan;
  plan.AddOutage(Seconds(10), Seconds(5));
  plan.AddPartition(Seconds(30), Seconds(5), LinkDirection::kReverse);

  EXPECT_FALSE(plan.InOutage(Seconds(9), LinkDirection::kForward));
  EXPECT_TRUE(plan.InOutage(Seconds(10), LinkDirection::kForward));
  EXPECT_TRUE(plan.InOutage(Seconds(12), LinkDirection::kReverse));
  EXPECT_FALSE(plan.InOutage(Seconds(15), LinkDirection::kForward));  // End.

  // The partition blacks out only the reverse direction.
  EXPECT_FALSE(plan.InOutage(Seconds(32), LinkDirection::kForward));
  EXPECT_TRUE(plan.InOutage(Seconds(32), LinkDirection::kReverse));
}

TEST(FaultPlanTest, OverlappingBurstLossCombines) {
  FaultPlan plan;
  plan.AddBurstLoss(Seconds(0), Seconds(10), 0.5);
  plan.AddBurstLoss(Seconds(5), Seconds(10), 0.5);

  EXPECT_DOUBLE_EQ(plan.BurstLossProbability(Seconds(1),
                                             LinkDirection::kForward), 0.5);
  // Both windows cover t=6: survive probability 0.25.
  EXPECT_DOUBLE_EQ(plan.BurstLossProbability(Seconds(6),
                                             LinkDirection::kForward), 0.75);
  EXPECT_DOUBLE_EQ(plan.BurstLossProbability(Seconds(20),
                                             LinkDirection::kForward), 0.0);
}

TEST(FaultPlanTest, LatencyInflationScalesAndAdds) {
  FaultPlan plan;
  plan.AddLatencyInflation(Seconds(0), Seconds(10), 3.0, Millis(50));
  EXPECT_EQ(plan.InflateLatency(Seconds(1), LinkDirection::kForward,
                                Millis(10)),
            Millis(80));
  EXPECT_EQ(plan.InflateLatency(Seconds(11), LinkDirection::kForward,
                                Millis(10)),
            Millis(10));
}

TEST(FaultyLinkModelTest, OutageDropsEverythingAndCounts) {
  SimClock clock;
  WiredModel wired;
  FaultPlan plan;
  plan.AddOutage(Seconds(1), Seconds(1));
  FaultyLinkModel faulty(&wired, &plan, &clock);
  Rng rng(7);

  EXPECT_FALSE(faulty.SampleLoss(rng));  // t=0: healthy.
  clock.RunFor(SecondsF(1.5));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(faulty.SampleLoss(rng));
  }
  EXPECT_EQ(faulty.counters().outage_losses, 20u);
  clock.RunFor(Seconds(1));
  EXPECT_FALSE(faulty.SampleLoss(rng));  // t=2.5: window over.
}

TEST(FaultyLinkModelTest, ChannelOverFaultyLinkLosesOnlyInWindow) {
  SimClock clock;
  WiredModel wired;
  FaultPlan plan;
  plan.AddOutage(Seconds(1), Seconds(1));
  FaultyLinkModel faulty(&wired, &plan, &clock);
  NetworkChannel channel(&clock, &faulty, 11);
  uint64_t received = 0;
  channel.SetReceiver([&](const std::vector<uint8_t>&) { ++received; });

  auto send_burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      channel.Send({0xAB});
    }
  };
  send_burst(10);
  clock.RunFor(SecondsF(1.5));  // Into the outage.
  send_burst(10);
  clock.RunFor(Seconds(2));
  send_burst(10);
  clock.RunAll();

  EXPECT_EQ(received, 20u);
  EXPECT_EQ(channel.lost(), 10u);
  EXPECT_EQ(faulty.counters().outage_losses, 10u);
}

// ------------------------------------------------ Chaos mission harness.

// Full control chain: GroundControl <-> faulty duplex LTE <-> MAVProxy
// <-> SITL flight stack, with the proxy's link failsafe armed.
class ChaosHarness {
 public:
  explicit ChaosHarness(uint64_t seed)
      : drone_(&clock_, kBase, seed),
        proxy_(&clock_),
        forward_(&lte_, &plan_, &clock_, LinkDirection::kForward),
        reverse_(&lte_, &plan_, &clock_, LinkDirection::kReverse),
        channel_(&clock_, &forward_, &reverse_, seed + 1),
        gcs_(&clock_, GroundControlConfig{}, seed + 2) {
    // Drone side: proxy fronts the flight controller.
    proxy_.SetMasterSink([this](const MavlinkFrame& frame) {
      drone_.controller().HandleFrame(frame);
    });
    drone_.controller().SetSender([this](const MavlinkFrame& frame) {
      proxy_.HandleMasterFrame(frame);
    });
    // Uplink: ground -> drone planner endpoint.
    channel_.a_to_b.SetReceiver([this](const std::vector<uint8_t>& datagram) {
      up_parser_.Feed(datagram);
      for (const MavlinkFrame& frame : up_parser_.TakeFrames()) {
        proxy_.HandlePlannerFrame(frame);
      }
    });
    gcs_.SetUplink([this](const MavlinkFrame& frame) {
      channel_.a_to_b.Send(EncodeFrame(frame));
    });
    // Downlink: drone -> ground.
    proxy_.SetPlannerSink([this](const MavlinkFrame& frame) {
      channel_.b_to_a.Send(EncodeFrame(frame));
    });
    channel_.b_to_a.SetReceiver([this](const std::vector<uint8_t>& datagram) {
      down_parser_.Feed(datagram);
      for (const MavlinkFrame& frame : down_parser_.TakeFrames()) {
        gcs_.HandleDownlinkFrame(frame);
      }
    });
    clock_.RunFor(Seconds(2));  // Sensor warmup.
    gcs_.Start();
  }

  bool RunUntil(const std::function<bool()>& predicate, SimDuration timeout) {
    SimTime deadline = clock_.now() + timeout;
    while (clock_.now() < deadline) {
      if (predicate()) {
        return true;
      }
      clock_.RunUntil(clock_.now() + Millis(100));
    }
    return predicate();
  }

  // Flies to cruise altitude under reliable command delivery.
  void TakeoffTo(double altitude_m) {
    gcs_.SendMode(CopterMode::kGuided);
    CommandLong arm;
    arm.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
    arm.param1 = 1;
    gcs_.SendCommand(arm);
    ASSERT_TRUE(RunUntil([this] { return drone_.controller().armed(); },
                         Seconds(10)));
    CommandLong takeoff;
    takeoff.command = static_cast<uint16_t>(MavCmd::kNavTakeoff);
    takeoff.param7 = static_cast<float>(altitude_m);
    gcs_.SendCommand(takeoff);
    ASSERT_TRUE(RunUntil(
        [this, altitude_m] {
          return drone_.physics().truth().position.altitude_m >
                 altitude_m - 1.0;
        },
        Seconds(60)));
  }

  SimClock clock_;
  SitlDrone drone_;
  MavProxy proxy_;
  CellularLteModel lte_;
  FaultPlan plan_;
  FaultyLinkModel forward_;
  FaultyLinkModel reverse_;
  DuplexChannel channel_;
  GroundControl gcs_;
  MavlinkParser up_parser_;
  MavlinkParser down_parser_;
};

// The acceptance scenario: a 10 s total outage mid-mission must drive the
// drone through the Loiter -> RTL failsafe ladder while every tenant's
// commands are refused; the first post-outage heartbeat restores tenant
// control and the ground side re-establishes the mission.
TEST(ChaosMissionTest, TotalOutageTriggersFailsafeLadderAndRecovery) {
  ChaosHarness h(101);
  LinkWatchdogConfig wd;  // Loiter after 2.5 s, RTL after 8 s.
  h.proxy_.EnableLinkFailsafe(wd);
  VirtualFlightController* vfc =
      h.proxy_.CreateVfc(7, CommandWhitelist::FromTemplate(
                                WhitelistTemplate::kStandard),
                         /*continuous_position=*/false);
  vfc->GrantControl();
  ASSERT_TRUE(vfc->commands_enabled());

  h.TakeoffTo(15.0);
  // Cruise toward the waypoint; the GCS re-sends the target at 1 Hz.
  for (int i = 0; i < 5; ++i) {
    h.gcs_.SendPositionTarget(kWaypointB.latitude_deg,
                              kWaypointB.longitude_deg, 15.0);
    h.clock_.RunFor(Seconds(1));
  }
  ASSERT_TRUE(h.drone_.controller().armed());
  uint64_t heartbeats_before = h.proxy_.link_watchdog()->heartbeats_seen();
  EXPECT_GT(heartbeats_before, 0u);

  // Script a 10 s blackout of both directions, starting now.
  SimTime outage_start = h.clock_.now();
  h.plan_.AddOutage(outage_start, Seconds(10));

  // 2.5 s of silence: Loiter.
  ASSERT_TRUE(h.RunUntil(
      [&] { return h.drone_.controller().mode() == CopterMode::kLoiter; },
      Seconds(5)));
  EXPECT_EQ(h.proxy_.link_watchdog()->stage(), LinkFailsafeStage::kLoiter);
  EXPECT_FALSE(vfc->commands_enabled());  // Tenant control refused.

  // 8 s of silence: RTL.
  ASSERT_TRUE(h.RunUntil(
      [&] { return h.drone_.controller().mode() == CopterMode::kRtl; },
      Seconds(10)));
  EXPECT_EQ(h.proxy_.link_watchdog()->stage(), LinkFailsafeStage::kRtl);
  EXPECT_FALSE(vfc->commands_enabled());

  // The outage ends; the next GCS heartbeat recovers the link and tenant
  // control resumes.
  ASSERT_TRUE(h.RunUntil(
      [&] { return h.proxy_.link_watchdog()->link_healthy(); }, Seconds(10)));
  EXPECT_TRUE(vfc->commands_enabled());
  ASSERT_EQ(h.proxy_.link_watchdog()->episodes().size(), 1u);
  const FailsafeEpisode& episode = h.proxy_.link_watchdog()->episodes()[0];
  EXPECT_EQ(episode.deepest, LinkFailsafeStage::kRtl);
  EXPECT_GT(episode.recovered, episode.entered);

  // Ground side re-establishes the mission: back to guided, same target.
  h.gcs_.SendMode(CopterMode::kGuided);
  bool arrived = false;
  for (int i = 0; i < 240 && !arrived; ++i) {
    h.gcs_.SendPositionTarget(kWaypointB.latitude_deg,
                              kWaypointB.longitude_deg, 15.0);
    h.clock_.RunFor(Seconds(1));
    arrived = h.drone_.DistanceTo(kWaypointB) < 3.0;
  }
  EXPECT_TRUE(arrived) << "remaining " << h.drone_.DistanceTo(kWaypointB);
  // Attribute the blackout: the faulty links dropped traffic in both
  // directions during the window.
  EXPECT_GT(h.forward_.counters().outage_losses, 0u);
  EXPECT_GT(h.reverse_.counters().outage_losses, 0u);
}

// An asymmetric partition that blacks out only the drone->ground direction:
// commands are delivered but every ack is lost, forcing retransmissions.
// The receive-side deduper must suppress the duplicates, so the camera
// command executes exactly once even though the wire carried it many times.
TEST(ChaosMissionTest, AckBlackoutRetriesExecuteExactlyOnce) {
  ChaosHarness h(202);
  int camera_triggers = 0;
  h.drone_.controller().SetCameraTrigger([&camera_triggers] {
    ++camera_triggers;
    return OkStatus();
  });

  // Black out the downlink (acks) for 3 s, starting now; the uplink stays up.
  h.plan_.AddPartition(h.clock_.now(), Seconds(3), LinkDirection::kReverse);
  CommandLong shoot;
  shoot.command = static_cast<uint16_t>(MavCmd::kDoDigicamControl);
  shoot.param5 = 1;
  h.gcs_.SendCommand(shoot);

  ASSERT_TRUE(h.RunUntil([&] { return h.gcs_.sender().acked() == 1; },
                         Seconds(30)));
  EXPECT_EQ(camera_triggers, 1);
  EXPECT_GE(h.gcs_.sender().retransmissions(), 1u);
  EXPECT_GE(h.drone_.controller().duplicate_commands(), 1u);
  EXPECT_EQ(h.gcs_.sender().gave_up(), 0u);
  EXPECT_GT(h.reverse_.counters().outage_losses, 0u);
  EXPECT_EQ(h.forward_.counters().outage_losses, 0u);
}

// With no recovery before max_attempts the sender reports the command
// undeliverable instead of retrying forever.
TEST(ReliableDeliveryTest, SenderGivesUpAfterMaxAttempts) {
  ChaosHarness h(303);
  // Permanent blackout from here on.
  h.plan_.AddOutage(h.clock_.now(), Seconds(3600));
  bool resolved = false;
  bool delivered = true;
  h.gcs_.SetCompletionCallback(
      [&](const CommandLong&, bool ok) { resolved = true; delivered = ok; });
  CommandLong arm;
  arm.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
  arm.param1 = 1;
  h.gcs_.SendCommand(arm);
  ASSERT_TRUE(h.RunUntil([&] { return resolved; }, Seconds(120)));
  EXPECT_FALSE(delivered);
  EXPECT_EQ(h.gcs_.sender().gave_up(), 1u);
  EXPECT_EQ(h.gcs_.sender().pending(), 0u);
  EXPECT_FALSE(h.drone_.controller().armed());
}

// A combined chaos script — link *and* sensor fault windows composed on
// the same simulated time base via the shared util/fault_plan vocabulary.
// A GPS glitch engages the onboard safety supervisor (tenant commands
// suspended, STATUSTEXT up the telemetry path, GPS health bit dropped from
// SYS_STATUS), an overlapping uplink outage trips the link failsafe, and
// after both clear the tenant gets control back.
TEST(ChaosMissionTest, CombinedLinkAndSensorChaosSurfacesToGroundControl) {
  ChaosHarness h(202);
  h.proxy_.EnableLinkFailsafe(LinkWatchdogConfig{});
  h.drone_.controller().SetSafetyCallbacks(
      [&] { h.proxy_.OnSafetyOverride(); },
      [&] { h.proxy_.OnSafetyRelease(); });
  VirtualFlightController* vfc =
      h.proxy_.CreateVfc(3, CommandWhitelist::FromTemplate(
                                WhitelistTemplate::kStandard),
                         /*continuous_position=*/false);
  vfc->GrantControl();
  h.TakeoffTo(12.0);
  ASSERT_TRUE(vfc->commands_enabled());

  // One chaos script, two layers, one timeline.
  SimTime now = h.clock_.now();
  h.drone_.sensor_faults().AddGpsJump(now, Seconds(8), 100.0, 60.0);
  h.plan_.AddOutage(now + Seconds(2), Seconds(4));

  // The jumping GPS gets excluded, which engages the safety override and
  // suspends tenant control through the proxy.
  ASSERT_TRUE(h.RunUntil(
      [&] { return h.drone_.controller().safety().overriding(); },
      Seconds(5)));
  EXPECT_FALSE(vfc->commands_enabled());

  // The degraded sensor reaches the ground as a dropped GPS health bit in
  // SYS_STATUS (sent before the outage window opens).
  ASSERT_TRUE(h.RunUntil(
      [&] {
        return h.gcs_.sensors_present() != 0 &&
               (h.gcs_.sensors_health() & kSensorGps) == 0;
      },
      Seconds(5)));

  // Both fault layers clear; the supervisor releases after its hysteresis
  // and the link failsafe recovers on the first post-outage heartbeat.
  ASSERT_TRUE(h.RunUntil(
      [&] {
        return !h.drone_.controller().safety().overriding() &&
               h.proxy_.link_watchdog()->link_healthy();
      },
      Seconds(30)));
  EXPECT_TRUE(vfc->commands_enabled());

  // The override narrated itself down the telemetry path.
  bool saw_override = false, saw_release = false;
  for (const ReceivedStatusText& st : h.gcs_.status_texts()) {
    if (st.text.find("Safety override: level-hold") != std::string::npos) {
      saw_override = true;
    }
    if (st.text.find("Safety release") != std::string::npos) {
      saw_release = true;
    }
  }
  EXPECT_TRUE(saw_override);
  EXPECT_TRUE(saw_release);

  // Both injectors actually fired.
  EXPECT_GT(h.forward_.counters().outage_losses, 0u);
  EXPECT_GT(h.drone_.sensor_fault_injector().counters().corrupted_reads, 0u);
}

// ------------------------------------------- Container crash supervision.

LayerFiles BaseFiles() {
  return LayerFiles{
      {"/system/build.prop", {"android-things-1.0.3", false}},
  };
}

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest() : runtime_(&driver_, &store_) {
    LayerId base = store_.AddLayer(BaseFiles());
    image_ = store_.CreateImage("things-base", {base}).value();
  }

  Container* StartedContainer(const std::string& name) {
    Container* c = runtime_
                       .CreateContainer(name, ContainerKind::kVirtualDrone,
                                        image_)
                       .value();
    EXPECT_TRUE(runtime_.StartContainer(c->id()).ok());
    return c;
  }

  SimClock clock_;
  BinderDriver driver_;
  ImageStore store_;
  ContainerRuntime runtime_;
  ImageId image_;
};

TEST_F(SupervisorTest, CrashKillsProcessesButNotSiblings) {
  Container* victim = StartedContainer("vd1");
  Container* sibling = StartedContainer("vd2");
  size_t sibling_procs = sibling->processes().size();

  ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
  EXPECT_EQ(victim->state(), ContainerState::kCrashed);
  EXPECT_TRUE(victim->processes().empty());
  EXPECT_EQ(victim->crash_count(), 1u);
  EXPECT_DOUBLE_EQ(victim->MemoryUsageMb(), 0.0);
  // Siblings keep flying.
  EXPECT_EQ(sibling->state(), ContainerState::kRunning);
  EXPECT_EQ(sibling->processes().size(), sibling_procs);

  // Crashing a non-running container is refused.
  EXPECT_EQ(runtime_.CrashContainer(victim->id()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SupervisorTest, SupervisorRestartsCrashedContainerWithBackoff) {
  ContainerSupervisor supervisor(&clock_, &runtime_, SupervisorPolicy{}, 41);
  Container* victim = StartedContainer("vd1");
  Container* sibling = StartedContainer("vd2");
  supervisor.Watch(victim->id());

  clock_.RunFor(Seconds(5));
  ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
  EXPECT_EQ(victim->state(), ContainerState::kCrashed);
  SimTime crashed_at = clock_.now();

  // The restart happens after the first backoff delay, not instantly.
  clock_.RunFor(Millis(100));
  EXPECT_EQ(victim->state(), ContainerState::kCrashed);
  clock_.RunFor(Seconds(2));
  EXPECT_EQ(victim->state(), ContainerState::kRunning);
  EXPECT_EQ(supervisor.restarts(), 1u);
  ASSERT_EQ(supervisor.episodes().size(), 1u);
  EXPECT_GT(supervisor.episodes()[0].restarted_at, crashed_at);
  EXPECT_EQ(sibling->state(), ContainerState::kRunning);

  // A second crash after a long stable life restarts with a reset streak.
  clock_.RunFor(Seconds(60));
  ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
  clock_.RunFor(Seconds(2));
  EXPECT_EQ(victim->state(), ContainerState::kRunning);
  EXPECT_EQ(supervisor.episodes()[1].streak, 0);
}

TEST_F(SupervisorTest, SupervisorGivesUpAfterRepeatedCrashes) {
  SupervisorPolicy policy;
  policy.max_consecutive_restarts = 3;
  ContainerSupervisor supervisor(&clock_, &runtime_, policy, 43);
  Container* victim = StartedContainer("vd1");
  supervisor.Watch(victim->id());

  // Crash-loop: kill it again shortly after it comes back, always inside
  // the stability window so the failure streak keeps growing.
  for (int i = 0; i < 10 && !supervisor.GaveUpOn(victim->id()); ++i) {
    if (victim->state() == ContainerState::kRunning) {
      ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
    }
    clock_.RunFor(Seconds(10));
  }
  EXPECT_TRUE(supervisor.GaveUpOn(victim->id()));
  EXPECT_EQ(supervisor.gave_up(), 1u);
  EXPECT_EQ(victim->state(), ContainerState::kCrashed);
  EXPECT_EQ(supervisor.restarts(), 3u);

  // Unwatched crashes never restart.
  Container* loner = StartedContainer("vd2");
  ASSERT_TRUE(runtime_.CrashContainer(loner->id()).ok());
  clock_.RunFor(Seconds(120));
  EXPECT_EQ(loner->state(), ContainerState::kCrashed);
}

// The give-up threshold is exact: with max_consecutive_restarts = 2 the
// supervisor performs exactly two restarts; the third crash of the streak
// is abandoned without a restart being scheduled.
TEST_F(SupervisorTest, GiveUpThresholdBoundaryIsExact) {
  SupervisorPolicy policy;
  policy.max_consecutive_restarts = 2;
  ContainerSupervisor supervisor(&clock_, &runtime_, policy, 47);
  Container* victim = StartedContainer("vd1");
  supervisor.Watch(victim->id());

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(victim->state(), ContainerState::kRunning);
    ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
    clock_.RunFor(Seconds(10));  // Short of stable_after: streak grows.
  }
  EXPECT_TRUE(supervisor.GaveUpOn(victim->id()));
  EXPECT_EQ(supervisor.restarts(), 2u);
  EXPECT_EQ(supervisor.gave_up(), 1u);
  EXPECT_EQ(victim->state(), ContainerState::kCrashed);
  ASSERT_EQ(supervisor.episodes().size(), 3u);
  EXPECT_LT(supervisor.episodes()[2].restarted_at, 0);  // Never restarted.

  // Give-up is terminal: a fresh crash listener event for this id (none
  // will come — it is already crashed) and time passing change nothing.
  clock_.RunFor(Seconds(120));
  EXPECT_EQ(victim->state(), ContainerState::kCrashed);
  EXPECT_EQ(supervisor.restarts(), 2u);
}

// Shutdown race: the operator removes the crashed container while the
// supervisor's restart is still pending in the backoff window. Every
// restart attempt then fails (the id is gone); the supervisor treats each
// failed start as an immediate crash of the new life and gives up cleanly
// instead of retrying forever.
TEST_F(SupervisorTest, RestartDuringShutdownFailsCleanlyAndGivesUp) {
  SupervisorPolicy policy;
  policy.max_consecutive_restarts = 2;
  ContainerSupervisor supervisor(&clock_, &runtime_, policy, 53);
  Container* victim = StartedContainer("vd1");
  ContainerId id = victim->id();
  supervisor.Watch(id);

  ASSERT_TRUE(runtime_.CrashContainer(id).ok());
  // Tear the container down during the pending-restart window.
  ASSERT_TRUE(runtime_.RemoveContainer(id).ok());

  clock_.RunFor(Seconds(60));
  EXPECT_TRUE(supervisor.GaveUpOn(id));
  EXPECT_EQ(supervisor.restarts(), 0u);  // No attempt ever succeeded.
  EXPECT_EQ(supervisor.gave_up(), 1u);
  for (const RestartEpisode& episode : supervisor.episodes()) {
    EXPECT_LT(episode.restarted_at, 0);
  }
}

// Unwatch while a restart is pending cancels it: the scheduled attempt
// finds the container untracked and does nothing.
TEST_F(SupervisorTest, UnwatchWhileRestartPendingCancelsIt) {
  ContainerSupervisor supervisor(&clock_, &runtime_, SupervisorPolicy{}, 59);
  Container* victim = StartedContainer("vd1");
  supervisor.Watch(victim->id());

  ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
  supervisor.Unwatch(victim->id());
  clock_.RunFor(Seconds(120));
  EXPECT_EQ(victim->state(), ContainerState::kCrashed);
  EXPECT_EQ(supervisor.restarts(), 0u);
  EXPECT_FALSE(supervisor.GaveUpOn(victim->id()));
}

// A healthy interval resets the backoff schedule itself, not just the
// give-up counter: after a stable life the next restart uses the base
// delay again rather than the grown exponential one.
TEST_F(SupervisorTest, BackoffDelayResetsAfterStableLife) {
  SupervisorPolicy policy;
  policy.backoff.jitter_fraction = 0.0;  // Deterministic delays.
  policy.max_consecutive_restarts = 10;
  ContainerSupervisor supervisor(&clock_, &runtime_, policy, 61);
  Container* victim = StartedContainer("vd1");
  supervisor.Watch(victim->id());

  // Two quick crashes: the second restart waits base * multiplier = 1 s.
  ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
  clock_.RunFor(Seconds(5));
  ASSERT_EQ(victim->state(), ContainerState::kRunning);
  ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
  clock_.RunFor(Millis(700));  // Past base (500 ms), short of 1 s.
  EXPECT_EQ(victim->state(), ContainerState::kCrashed);
  clock_.RunFor(Millis(500));
  ASSERT_EQ(victim->state(), ContainerState::kRunning);

  // A stable life (>= 30 s) forgives the streak; the next crash restarts
  // after the base delay again.
  clock_.RunFor(Seconds(60));
  ASSERT_TRUE(runtime_.CrashContainer(victim->id()).ok());
  clock_.RunFor(Millis(700));
  EXPECT_EQ(victim->state(), ContainerState::kRunning);
  ASSERT_EQ(supervisor.episodes().size(), 3u);
  EXPECT_EQ(supervisor.episodes()[2].streak, 0);
}

}  // namespace
}  // namespace androne
