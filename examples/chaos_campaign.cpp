// Chaos campaign: load a declarative scenario manifest, expand it into a
// seeded sweep, run the sweep through the fleet executor, and triage any
// failures down to the first trace event where chaos bent the run.
//
//   ./examples/chaos_campaign [manifest.xml]
//
// Without an argument a small built-in campaign is used (the same families
// as examples/campaign_smoke.xml, shrunk to run in a few seconds). With a
// manifest path, that file is loaded instead — XML or JSON, the loader
// sniffs the format.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/scenario/campaign.h"
#include "src/scenario/generator.h"
#include "src/scenario/manifest.h"
#include "src/util/logging.h"

using namespace androne;

namespace {

// A three-family campaign built in code: the same CampaignSpec a manifest
// parses into, so everything below works identically for loaded files.
CampaignSpec BuiltinCampaign() {
  CampaignSpec campaign;
  campaign.name = "example-chaos";
  campaign.seed = 404;

  ScenarioTemplate baseline;
  baseline.name = "baseline";
  baseline.repeat = 2;
  baseline.tenants_min = 1;
  baseline.tenants_max = 2;
  baseline.dwell_s = 3;
  baseline.annealing = 60;
  baseline.assertions = {*ParseAssertion("completed == 1"),
                         *ParseAssertion("downlink_frames >= 1")};
  campaign.templates.push_back(baseline);

  // A forward-link outage with per-instance start jitter: every expanded
  // scenario hits the blackout at a slightly different point in the flight.
  ScenarioTemplate link = baseline;
  link.name = "link_outage";
  link.repeat = 3;
  link.assertions = {*ParseAssertion("completed == 1")};
  JitteredWindow outage;
  outage.window.kind = 0;  // outage
  outage.window.scope = kFaultScopeAll;
  outage.window.start = SecondsF(15);
  outage.window.end = SecondsF(21);
  outage.start_jitter_s = 5;
  link.net_windows.push_back(outage);
  campaign.templates.push_back(link);

  // A family that is EXPECTED to fail: a large unguarded GPS jump stalls
  // the mission, and the assertion is deliberately unreachable. The triage
  // pass pins where its trace first diverges from a fault-free twin.
  ScenarioTemplate seeded = baseline;
  seeded.name = "seeded_failure";
  seeded.repeat = 1;
  seeded.expect_fail = true;
  seeded.assertions = {*ParseAssertion("waypoints_visited >= 100")};
  JitteredWindow jump;
  jump.window.kind = 4;   // gps_jump
  jump.window.scope = 0;  // gps (pinned)
  jump.window.start = SecondsF(15);
  jump.window.end = SecondsF(25);
  jump.window.p0 = 80;  // north offset, meters
  jump.window.p1 = 60;  // east offset, meters
  seeded.sensor_windows.push_back(jump);
  campaign.templates.push_back(seeded);

  return campaign;
}

}  // namespace

int main(int argc, char** argv) {
  SetMinLogLevel(LogLevel::kWarning);

  CampaignSpec campaign;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto loaded = ParseCampaignManifest(text.str());
    if (!loaded.ok()) {
      std::fprintf(stderr, "manifest error: %s\n",
                   loaded.status().message().c_str());
      return 1;
    }
    campaign = std::move(*loaded);
  } else {
    campaign = BuiltinCampaign();
  }

  auto scenarios = ExpandScenarios(campaign);
  if (!scenarios.ok()) {
    std::fprintf(stderr, "expansion error: %s\n",
                 scenarios.status().message().c_str());
    return 1;
  }
  std::printf("campaign %s: %zu scenarios from %zu templates\n\n",
              campaign.name.c_str(), scenarios->size(),
              campaign.templates.size());

  CampaignOptions options;
  options.name = campaign.name;
  options.threads = 2;
  CampaignReport report = CampaignRunner(options).Run(*scenarios);
  std::printf("%s\n", report.ToText().c_str());

  // Replay one failing representative with full tracing — the same path
  // `campaign_sweep --repro <name>` takes.
  for (const FailureBucket& bucket : report.buckets) {
    auto repro = CampaignRunner::Repro(*scenarios, bucket.representative);
    if (!repro.ok()) {
      continue;
    }
    std::printf("repro %s: completed=%d digest=%016llx trace_lines=%zu\n",
                bucket.representative.c_str(), repro->completed ? 1 : 0,
                static_cast<unsigned long long>(repro->digest),
                static_cast<size_t>(
                    std::count(repro->trace_text.begin(),
                               repro->trace_text.end(), '\n')));
  }

  // The CI contract: every failure must be an expected one.
  return report.unexpected == 0 ? 0 : 1;
}
