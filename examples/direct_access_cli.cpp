// Direct access via the AnDrone command-line utility (paper §5: "for
// advanced end users, who may not be using an app, AnDrone's SDK
// functionality is also made available to them via a command line
// utility"). A scripted user session drives the shell against a live
// tenancy: querying allotments and status, steering the drone through the
// VFC, staging a file, and completing the waypoint.
//
//   ./examples/direct_access_cli
#include <cstdio>

#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/core/cli.h"
#include "src/core/drone.h"
#include "src/util/logging.h"

using namespace androne;

namespace {

const GeoPoint kBase{51.5074, -0.1278, 0};
const GeoPoint kWorkSite{51.5080, -0.1270, 15};

void RunCmd(AndroneShell& shell, const std::string& command) {
  std::printf("androne> %s\n%s\n", command.c_str(),
              shell.Execute(command).c_str());
}

}  // namespace

int main() {
  SetMinLogLevel(LogLevel::kWarning);
  std::printf("== Direct access with the AnDrone CLI ==\n\n");

  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem drone(&clock, options);
  if (Status status = drone.Boot(); !status.ok()) {
    std::printf("boot failed: %s\n", status.ToString().c_str());
    return 1;
  }

  VirtualDroneDefinition def;
  def.id = "direct";
  def.owner = "operator";
  def.waypoints = {WaypointSpec{kWorkSite, 60}};
  def.max_duration_s = 300;
  def.energy_allotted_j = 45000;
  def.waypoint_devices = {"camera", "gps", "flight-control"};
  auto deployed = drone.Deploy(def, WhitelistTemplate::kStandard);
  if (!deployed.ok()) {
    std::printf("deploy failed: %s\n", deployed.status().ToString().c_str());
    return 1;
  }

  AndroneShell shell((*deployed)->sdk.get(), &(*deployed)->definition);

  // Pre-flight: the user inspects the rental from their terminal.
  RunCmd(shell, "help");
  RunCmd(shell, "waypoints");
  RunCmd(shell, "devices");
  RunCmd(shell, "status");

  // Scripted session once the tenancy starts.
  struct Session : WaypointListener {
    AnDroneSystem* drone;
    AndroneShell* shell;
    VirtualDroneInstance* vd;
    void WaypointActive(const WaypointSpec& waypoint) override {
      RunCmd(*shell, "status");
      RunCmd(*shell, "energy-left");
      RunCmd(*shell, "time-left");
      RunCmd(*shell, "fc-address");
      // Steer via the VFC (what a GCS pointed at fc-address would do).
      GeoPoint spot = FromNed(waypoint.point, NedPoint{25, 10, 0});
      SetPositionTargetGlobalInt sp;
      sp.lat_int = static_cast<int32_t>(spot.latitude_deg * 1e7);
      sp.lon_int = static_cast<int32_t>(spot.longitude_deg * 1e7);
      sp.alt = static_cast<float>(spot.altitude_m);
      sp.type_mask = 0x0FF8;
      drone->VfcOf("direct")->HandleClientFrame(PackMessage(MavMessage{sp}));
      drone->RunClockUntil(
          [&] {
            return Distance3dMeters(drone->physics().truth().position, spot) <
                   3.0;
          },
          Seconds(60));
      std::printf("  (flew to the inspection point)\n");
      vd->container->WriteFile("/data/inspection/notes.txt",
                               "north facade OK; crane pad flooded");
      RunCmd(*shell, "mark-file /data/inspection/notes.txt");
      RunCmd(*shell, "events 3");
      RunCmd(*shell, "complete");
    }

  } session;
  session.drone = &drone;
  session.shell = &shell;
  session.vd = *deployed;
  (*deployed)->sdk->RegisterWaypointListener(&session);

  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kBase;
  pc.annealing_iterations = 500;
  FlightPlanner planner(energy, pc);
  PlannerJob job;
  job.vdrone_ref = "direct";
  job.waypoint = kWorkSite;
  job.service_energy_j = 170.0 * 60;
  job.service_time_s = 60;
  auto plan = planner.Plan({job});
  if (!plan.ok()) {
    std::printf("planning failed\n");
    return 1;
  }
  auto report = drone.ExecuteRoute(plan->routes[0], {job});
  if (!report.ok()) {
    std::printf("flight failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  RunCmd(shell, "status");
  RunCmd(shell, "events");
  auto files = drone.cloud_storage().ListUserFiles("operator");
  std::printf("operator's cloud files: %zu\n", files.size());
  return files.size() == 1 ? 0 : 1;
}
