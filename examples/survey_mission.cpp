// Construction-site survey mission — the paper's Figure 2 walkthrough.
//
// Reproduces the example virtual drone definition from §3 verbatim (two
// waypoints near 43.608N, -85.811W, a 600 s / 45 kJ allotment, camera +
// flight-control waypoint devices, and the survey app with per-waypoint
// survey areas), then deploys and flies it with the reference SurveyApp.
//
//   ./examples/survey_mission
#include <cstdio>

#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/core/drone.h"
#include "src/core/reference_apps.h"
#include "src/util/logging.h"

using namespace androne;

namespace {

const GeoPoint kBase{43.6080000, -85.8130000, 0};

// The paper's Figure 2 definition, as shipped by the portal.
constexpr char kFig2Definition[] = R"({
  "id": "vd-survey",
  "owner": "construction-co",
  "waypoints": [
    { "latitude": 43.6084298, "longitude": -85.8110359,
      "altitude": 15, "max-radius": 30 },
    { "latitude": 43.6076409, "longitude": -85.8154457,
      "altitude": 15, "max-radius": 20 }
  ],
  "max-duration": 600,
  "energy-allotted": 45000,
  "continuous-devices": [],
  "waypoint-devices": ["camera", "gps", "flight-control"],
  "apps": ["com.example.survey"],
  "app-args": {
    "com.example.survey": { "passes": 3, "pass-spacing-m": 6 }
  }
})";

}  // namespace

int main() {
  SetMinLogLevel(LogLevel::kWarning);
  std::printf("== Construction site survey (paper Figure 2) ==\n\n");

  auto definition = VirtualDroneDefinition::FromJson(kFig2Definition);
  if (!definition.ok()) {
    std::printf("bad definition: %s\n",
                definition.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed virtual drone definition '%s': %zu waypoints, "
              "%.0f s / %.0f kJ allotted\n",
              definition->id.c_str(), definition->waypoints.size(),
              definition->max_duration_s,
              definition->energy_allotted_j / 1000.0);

  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  options.default_whitelist = WhitelistTemplate::kGuidedOnly;
  AnDroneSystem drone(&clock, options);
  if (Status status = drone.Boot(); !status.ok()) {
    std::printf("boot failed: %s\n", status.ToString().c_str());
    return 1;
  }

  SurveyApp* survey_app = nullptr;
  drone.vdc().RegisterAppFactory(
      kSurveyAppPackage,
      [&drone, &survey_app] {
        SurveyApp::Environment env;
        env.send_to_vfc = [&drone](const MavlinkFrame& frame) {
          if (auto* vfc = drone.VfcOf("vd-survey")) {
            vfc->HandleClientFrame(frame);
          }
        };
        env.wait_until = [&drone](const std::function<bool()>& predicate,
                                  SimDuration timeout) {
          return drone.RunClockUntil(predicate, timeout);
        };
        env.position = [&drone] { return drone.physics().truth().position; };
        auto app = std::make_unique<SurveyApp>(env);
        survey_app = app.get();
        return app;
      },
      kSurveyAppManifest);

  if (auto deployed = drone.Deploy(*definition); !deployed.ok()) {
    std::printf("deploy failed: %s\n", deployed.status().ToString().c_str());
    return 1;
  }

  // Plan both waypoints onto one flight.
  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kBase;
  pc.annealing_iterations = 2000;
  FlightPlanner planner(energy, pc);
  std::vector<PlannerJob> jobs;
  for (size_t i = 0; i < definition->waypoints.size(); ++i) {
    PlannerJob job;
    job.vdrone_ref = definition->id;
    job.waypoint_index = static_cast<int>(i);
    job.waypoint = definition->waypoints[i].point;
    job.service_energy_j = definition->energy_allotted_j /
                           static_cast<double>(definition->waypoints.size());
    job.service_time_s = 60;
    jobs.push_back(job);
  }
  auto plan = planner.Plan(jobs);
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", plan->ToString().c_str());

  auto report = drone.ExecuteRoute(plan->routes[0], jobs);
  if (!report.ok()) {
    std::printf("flight failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  for (const std::string& event : report->events) {
    std::printf("  %s\n", event.c_str());
  }

  std::printf("\nsurvey results: %d legs flown, %d frames captured\n",
              survey_app->legs_flown(), survey_app->frames_captured());
  auto files = drone.cloud_storage().ListUserFiles("construction-co");
  for (const std::string& file : files) {
    auto content = drone.cloud_storage().Get("construction-co", file);
    std::printf("  %s -> %s\n", file.c_str(),
                content.ok() ? content->c_str() : "?");
  }
  std::printf("flight: %.0f s, %.0f kJ; virtual drone saved to VDR: %s\n",
              report->flight_time_s, report->battery_used_j / 1000.0,
              drone.vdr().Contains("vd-survey") ? "yes" : "no");
  return survey_app->frames_captured() > 0 ? 0 : 1;
}
