// Multi-tenant delivery flight — the paper's introduction use case.
//
// A delivery drone flies a package to a drop-off point. AnDrone sells the
// same flight to two third parties: a news company's traffic-survey tenant
// with *continuous* camera+GPS access that watches the highway the whole
// way (suspended, per the privacy default, while other tenants operate at
// their waypoints), and a real-estate tenant that photographs a property
// along the route. Three tasks, one battery.
//
//   ./examples/multi_tenant_flight
#include <cstdio>

#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/core/drone.h"
#include "src/services/device_services.h"
#include "src/util/logging.h"

using namespace androne;

namespace {

const GeoPoint kWarehouse{40.7000, -74.0000, 0};
const GeoPoint kDropoff{40.7060, -74.0010, 20};
// On the route between the highway anchor and the drop-off, so the planner
// interleaves the realty visit inside the traffic tenant's waypoint pair
// (the paper's §2 suspension scenario; the planner orders waypoints purely
// by travel cost — ordering cannot be prescribed).
const GeoPoint kProperty{40.7036, -74.0004, 15};

constexpr char kTrafficManifest[] = R"(
<androne-manifest package="com.news.traffic">
  <uses-permission name="camera" type="continuous"/>
  <uses-permission name="gps" type="continuous"/>
</androne-manifest>)";

constexpr char kRealtyManifest[] = R"(
<androne-manifest package="com.realty.photo">
  <uses-permission name="camera" type="waypoint"/>
</androne-manifest>)";

// Samples the camera continuously whenever access is live.
class TrafficApp : public AndroneApp {
 public:
  TrafficApp() : AndroneApp("com.news.traffic", 0) {}

  int frames = 0;
  int suspensions = 0;

  // Polled by the example's main loop: one camera sample if permitted.
  void SampleHighway() {
    auto camera = SmGetService(proc(), kCameraServiceName);
    if (!camera.ok()) {
      return;
    }
    Parcel req;
    auto frame = proc()->Transact(*camera, kCamCapture, req);
    if (frame.ok()) {
      ++frames;
      Parcel conn;  // Keep the connection registered.
      (void)proc()->Transact(*camera, kCamConnect, conn);
    }
  }

  void WaypointActive(const WaypointSpec&) override {
    sdk()->WaypointCompleted();  // Its "waypoints" are just route anchors.
  }
  void SuspendContinuousDevices() override {
    ++suspensions;
    auto camera = SmGetService(proc(), kCameraServiceName);
    if (camera.ok()) {
      Parcel req;
      (void)proc()->Transact(*camera, kCamDisconnect, req);
    }
  }
};

class RealtyApp : public AndroneApp {
 public:
  RealtyApp() : AndroneApp("com.realty.photo", 0) {}
  int photos = 0;

  void WaypointActive(const WaypointSpec& waypoint) override {
    auto camera = SmGetService(proc(), kCameraServiceName);
    if (camera.ok()) {
      Parcel req;
      (void)proc()->Transact(*camera, kCamConnect, req);
      for (int i = 0; i < 6; ++i) {  // Orbit shots of the property.
        if (proc()->Transact(*camera, kCamCapture, req).ok()) {
          ++photos;
        }
      }
      (void)proc()->Transact(*camera, kCamDisconnect, req);
    }
    container()->WriteFile("/data/data/com.realty.photo/listing.json",
                           "{\"photos\":" + std::to_string(photos) + "}");
    (void)sdk()->MarkFileForUser("/data/data/com.realty.photo/listing.json");
    (void)waypoint;
    sdk()->WaypointCompleted();
  }
};

}  // namespace

int main() {
  SetMinLogLevel(LogLevel::kWarning);
  std::printf("== Multi-tenant delivery flight ==\n\n");

  SimClock clock;
  AnDroneOptions options;
  options.base = kWarehouse;
  AnDroneSystem drone(&clock, options);
  if (Status status = drone.Boot(); !status.ok()) {
    std::printf("boot failed: %s\n", status.ToString().c_str());
    return 1;
  }

  TrafficApp* traffic_app = nullptr;
  RealtyApp* realty_app = nullptr;
  drone.vdc().RegisterAppFactory(
      "com.news.traffic",
      [&traffic_app] {
        auto app = std::make_unique<TrafficApp>();
        traffic_app = app.get();
        return app;
      },
      kTrafficManifest);
  drone.vdc().RegisterAppFactory(
      "com.realty.photo",
      [&realty_app] {
        auto app = std::make_unique<RealtyApp>();
        realty_app = app.get();
        return app;
      },
      kRealtyManifest);

  // Tenant 1: the news company, continuous camera over two route anchors.
  VirtualDroneDefinition traffic;
  traffic.id = "traffic";
  traffic.owner = "news-co";
  traffic.waypoints = {WaypointSpec{FromNed(kWarehouse, {150, 0, -20}), 40},
                       WaypointSpec{kDropoff, 40}};
  traffic.max_duration_s = 600;
  traffic.energy_allotted_j = 60000;
  traffic.continuous_devices = {"camera", "gps"};
  traffic.apps = {"com.news.traffic"};

  // Tenant 2: the real-estate agent at the property.
  VirtualDroneDefinition realty;
  realty.id = "realty";
  realty.owner = "realty-co";
  realty.waypoints = {WaypointSpec{kProperty, 30}};
  realty.max_duration_s = 120;
  realty.energy_allotted_j = 30000;
  realty.waypoint_devices = {"camera"};
  realty.apps = {"com.realty.photo"};

  if (!drone.Deploy(traffic).ok() || !drone.Deploy(realty).ok()) {
    std::printf("deployment failed\n");
    return 1;
  }
  std::printf("deployed tenants: traffic (continuous camera), realty "
              "(waypoint camera)\n");

  // Sample the highway every 2 s whenever the tenant's access is live.
  auto sampler = std::make_shared<std::function<void()>>();
  *sampler = [&] {
    if (traffic_app != nullptr) {
      traffic_app->SampleHighway();
    }
    clock.ScheduleAfter(Seconds(2), *sampler);
  };
  clock.ScheduleAfter(Seconds(2), *sampler);

  // Plan the delivery: both tenants' waypoints on one route.
  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kWarehouse;
  pc.annealing_iterations = 3000;
  FlightPlanner planner(energy, pc);
  std::vector<PlannerJob> jobs;
  struct Spec {
    const char* ref;
    int index;
    GeoPoint waypoint;
    double dwell;
  } specs[] = {
      {"traffic", 0, traffic.waypoints[0].point, 5},
      {"traffic", 1, kDropoff, 5},
      {"realty", 0, kProperty, 30},
  };
  for (const Spec& spec : specs) {
    PlannerJob job;
    job.vdrone_ref = spec.ref;
    job.waypoint_index = spec.index;
    job.waypoint = spec.waypoint;
    job.service_energy_j = 170.0 * spec.dwell;
    job.service_time_s = spec.dwell;
    jobs.push_back(job);
  }
  auto plan = planner.Plan(jobs);
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto report = drone.ExecuteRoute(plan->routes[0], jobs);
  if (!report.ok()) {
    std::printf("flight failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  for (const std::string& event : report->events) {
    std::printf("  %s\n", event.c_str());
  }

  std::printf("\nresults:\n");
  std::printf("  traffic tenant: %d highway frames, suspended %d time(s) "
              "while other tenants operated\n",
              traffic_app->frames, traffic_app->suspensions);
  std::printf("  realty tenant: %d property photos -> %zu cloud file(s)\n",
              realty_app->photos,
              drone.cloud_storage().ListUserFiles("realty-co").size());
  std::printf("  one flight, %.0f s, %.0f kJ — three tasks served\n",
              report->flight_time_s, report->battery_used_j / 1000.0);
  return (traffic_app->frames > 0 && realty_app->photos > 0) ? 0 : 1;
}
