// Quickstart: the smallest end-to-end AnDrone program.
//
// A user orders a virtual drone through the cloud portal, the drone boots
// its virtualization stack, the virtual drone is deployed from the VDR
// definition, and one waypoint is flown with a tiny camera app that
// captures a photo and uploads it for the user.
//
//   ./examples/quickstart
#include <cstdio>

#include "src/cloud/billing.h"
#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/cloud/portal.h"
#include "src/core/drone.h"
#include "src/services/device_services.h"
#include "src/util/logging.h"

using namespace androne;

namespace {

const GeoPoint kBase{43.6084298, -85.8110359, 0};
const GeoPoint kPhotoSpot{43.6087619, -85.8104110, 15};

constexpr char kPhotoManifest[] = R"(
<androne-manifest package="com.example.photo">
  <uses-permission name="camera" type="waypoint"/>
</androne-manifest>)";

// A one-shot aerial photo app.
class PhotoApp : public AndroneApp {
 public:
  PhotoApp() : AndroneApp("com.example.photo", 0) {}

  void WaypointActive(const WaypointSpec& waypoint) override {
    auto camera = SmGetService(proc(), kCameraServiceName);
    if (!camera.ok()) {
      return;
    }
    Parcel req;
    (void)proc()->Transact(*camera, kCamConnect, req);
    auto frame = proc()->Transact(*camera, kCamCapture, req);
    if (frame.ok()) {
      std::printf("  [app] captured photo at %s\n",
                  waypoint.point.ToString().c_str());
      container()->WriteFile("/data/data/com.example.photo/photo.jpg",
                             "jpeg-bytes");
      (void)sdk()->MarkFileForUser("/data/data/com.example.photo/photo.jpg");
    }
    (void)proc()->Transact(*camera, kCamDisconnect, req);
    sdk()->WaypointCompleted();
  }
};

}  // namespace

int main() {
  SetMinLogLevel(LogLevel::kWarning);
  std::printf("== AnDrone quickstart ==\n\n");

  // 1. Cloud side: publish the app and order a virtual drone.
  AppStore app_store;
  (void)app_store.Publish({"com.example.photo", kPhotoManifest, "apk"});
  VirtualDroneRepository vdr;
  EnergyModel energy;
  Billing billing;
  Portal portal(&app_store, &vdr, energy, billing);

  OrderRequest order;
  order.user = "alice";
  order.waypoints = {WaypointSpec{kPhotoSpot, 0}};
  order.apps = {"com.example.photo"};
  order.max_billing_dollars = 0.25;
  auto confirmation = portal.OrderVirtualDrone(order);
  if (!confirmation.ok()) {
    std::printf("order failed: %s\n", confirmation.status().ToString().c_str());
    return 1;
  }
  std::printf("ordered virtual drone %s — estimated flight budget %.0f s, "
              "cost $%.2f\n",
              confirmation->vdrone_id.c_str(),
              confirmation->estimate.flight_time_estimate_s,
              confirmation->estimate.total_cost);

  // 2. Drone side: boot the virtualization stack and deploy the tenant.
  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem drone(&clock, options);
  if (Status status = drone.Boot(); !status.ok()) {
    std::printf("boot failed: %s\n", status.ToString().c_str());
    return 1;
  }
  drone.vdc().RegisterAppFactory(
      "com.example.photo", [] { return std::make_unique<PhotoApp>(); },
      kPhotoManifest);
  auto deployed = drone.Deploy(confirmation->definition);
  if (!deployed.ok()) {
    std::printf("deploy failed: %s\n", deployed.status().ToString().c_str());
    return 1;
  }
  std::printf("deployed %s into its own Android Things container\n",
              confirmation->vdrone_id.c_str());

  // 3. Plan and fly.
  PlannerConfig pc;
  pc.depot = kBase;
  pc.annealing_iterations = 1000;
  FlightPlanner planner(energy, pc);
  PlannerJob job;
  job.vdrone_ref = confirmation->vdrone_id;
  job.waypoint = kPhotoSpot;
  job.service_energy_j = 5000;
  job.service_time_s = 10;
  auto plan = planner.Plan({job});
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto report = drone.ExecuteRoute(plan->routes[0], {job});
  if (!report.ok()) {
    std::printf("flight failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  for (const std::string& event : report->events) {
    std::printf("  %s\n", event.c_str());
  }

  // 4. The user fetches their photo from cloud storage.
  auto files = drone.cloud_storage().ListUserFiles("alice");
  std::printf("\nalice's cloud files after the flight:\n");
  for (const std::string& file : files) {
    std::printf("  %s\n", file.c_str());
  }
  std::printf("\nflight took %.0f s and used %.0f kJ of battery\n",
              report->flight_time_s, report->battery_used_j / 1000.0);
  return files.empty() ? 1 : 0;
}
