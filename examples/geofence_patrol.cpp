// Geofenced direct access over cellular — the paper's advanced usage model.
//
// A power user rents direct (no-app) access to a virtual drone with the
// *full* command whitelist and flies it manually from a ground station over
// a simulated LTE link (VPN-tunneled MAVLink, §6.5 latencies). The drone is
// geofenced to the rented volume: when the user pushes past the fence,
// AnDrone's recovery sequence kicks in — the breach is reported, commands
// are refused, the drone is guided back inside, parked in LOITER, and
// control is returned — without ever interrupting the flight.
//
//   ./examples/geofence_patrol
#include <cstdio>

#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/core/drone.h"
#include "src/net/channel.h"
#include "src/util/logging.h"

using namespace androne;

namespace {

const GeoPoint kBase{37.4220, -122.0840, 0};
const GeoPoint kPatrolPoint{37.4228, -122.0835, 15};

}  // namespace

int main() {
  SetMinLogLevel(LogLevel::kWarning);
  std::printf("== Geofenced direct access over LTE ==\n\n");

  SimClock clock;
  AnDroneOptions options;
  options.base = kBase;
  AnDroneSystem drone(&clock, options);
  if (Status status = drone.Boot(); !status.ok()) {
    std::printf("boot failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Direct-access tenant: no apps, full whitelist, 50 m geofence.
  VirtualDroneDefinition def;
  def.id = "patrol";
  def.owner = "poweruser";
  def.waypoints = {WaypointSpec{kPatrolPoint, 50}};
  def.max_duration_s = 180;
  def.energy_allotted_j = 45000;
  def.waypoint_devices = {"camera", "gps", "flight-control"};
  auto deployed = drone.Deploy(def, WhitelistTemplate::kFull);
  if (!deployed.ok()) {
    std::printf("deploy failed: %s\n", deployed.status().ToString().c_str());
    return 1;
  }

  // Ground station <-> VFC over VPN-tunneled cellular (the §6.5 path).
  CellularLteModel lte;
  NetworkChannel uplink(&clock, &lte, 7);
  NetworkChannel downlink(&clock, &lte, 8);
  VpnTunnel gcs_tx(&uplink, 1001), drone_rx(&uplink, 1001);
  VpnTunnel drone_tx(&downlink, 1001), gcs_rx(&downlink, 1001);

  VirtualFlightController* vfc = drone.VfcOf("patrol");
  MavlinkParser uplink_parser;
  drone_rx.SetReceiver([&](const std::vector<uint8_t>& datagram) {
    uplink_parser.Feed(datagram);
    for (const MavlinkFrame& frame : uplink_parser.TakeFrames()) {
      vfc->HandleClientFrame(frame);
    }
  });
  vfc->SetClientSink([&](const MavlinkFrame& frame) {
    drone_tx.Send(EncodeFrame(frame));
  });
  int telemetry_frames = 0;
  std::string last_status;
  MavlinkParser downlink_parser;
  gcs_rx.SetReceiver([&](const std::vector<uint8_t>& datagram) {
    downlink_parser.Feed(datagram);
    for (const MavlinkFrame& frame : downlink_parser.TakeFrames()) {
      ++telemetry_frames;
      auto message = UnpackMessage(frame);
      if (message.ok() && std::holds_alternative<StatusText>(*message)) {
        last_status = std::get<StatusText>(*message).text;
        std::printf("  [gcs] STATUSTEXT: %s\n", last_status.c_str());
      }
    }
  });
  auto gcs_send = [&](const MavMessage& message) {
    gcs_tx.Send(EncodeFrame(PackMessage(message)));
  };

  bool breached = false, recovered = false;

  // Plan a single-stop flight and fly to the rented volume.
  EnergyModel energy;
  PlannerConfig pc;
  pc.depot = kBase;
  pc.annealing_iterations = 500;
  FlightPlanner planner(energy, pc);
  PlannerJob job;
  job.vdrone_ref = "patrol";
  job.waypoint = kPatrolPoint;
  job.service_energy_j = 170.0 * 60;
  job.service_time_s = 60;
  auto plan = planner.Plan({job});
  if (!plan.ok()) {
    std::printf("planning failed\n");
    return 1;
  }

  // Script the user's session once control arrives: a legal move, then a
  // deliberate fence bust, then done.
  struct UserSession : WaypointListener {
    AnDroneSystem* drone;
    std::function<void(const MavMessage&)> send;
    bool* breached;
    int phase = 0;
    void WaypointActive(const WaypointSpec& waypoint) override {
      if (phase == 0) {
        phase = 1;
        // Legal: hop 20 m north inside the 50 m fence.
        GeoPoint inside = FromNed(waypoint.point, NedPoint{20, 0, 0});
        SetPositionTargetGlobalInt sp;
        sp.lat_int = static_cast<int32_t>(inside.latitude_deg * 1e7);
        sp.lon_int = static_cast<int32_t>(inside.longitude_deg * 1e7);
        sp.alt = static_cast<float>(inside.altitude_m);
        sp.type_mask = 0x0FF8;
        send(MavMessage{sp});
        drone->RunClockUntil(
            [&] {
              return Distance3dMeters(drone->physics().truth().position,
                                      inside) < 3.0;
            },
            Seconds(60));
        std::printf("  [user] legal hop inside the fence complete\n");
        // Now push 150 m east, well past the fence.
        GeoPoint outside = FromNed(waypoint.point, NedPoint{0, 150, 0});
        sp.lat_int = static_cast<int32_t>(outside.latitude_deg * 1e7);
        sp.lon_int = static_cast<int32_t>(outside.longitude_deg * 1e7);
        send(MavMessage{sp});
        std::printf("  [user] pushing past the fence...\n");
      } else if (*breached) {
        *recovered = true;
        std::printf("  [user] control returned after recovery; done.\n");
        if (drone->vdc().Find("patrol").ok()) {
          (*drone->vdc().Find("patrol"))->sdk->WaypointCompleted();
        }
      }
    }
    void GeofenceBreached() override {
      *breached = true;
      std::printf("  [user] geofence breach notification received\n");
    }
    bool* recovered;
  } session;
  session.drone = &drone;
  session.send = gcs_send;
  session.breached = &breached;
  session.recovered = &recovered;
  (*deployed)->sdk->RegisterWaypointListener(&session);

  auto report = drone.ExecuteRoute(plan->routes[0], {job});
  if (!report.ok()) {
    std::printf("flight failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  for (const std::string& event : report->events) {
    std::printf("  %s\n", event.c_str());
  }

  std::printf("\nsession summary:\n");
  std::printf("  telemetry frames over LTE: %d (uplink lost %llu, downlink "
              "lost %llu)\n",
              telemetry_frames,
              static_cast<unsigned long long>(uplink.lost()),
              static_cast<unsigned long long>(downlink.lost()));
  std::printf("  mean downlink latency: %.0f ms\n",
              downlink.latency_us().mean() / 1000.0);
  std::printf("  geofence: breach %s, recovery %s\n",
              breached ? "detected" : "NOT detected",
              recovered ? "confirmed (control returned)" : "not confirmed");
  std::printf("  flight: %.0f s, %.0f kJ\n", report->flight_time_s,
              report->battery_used_j / 1000.0);
  return breached && recovered ? 0 : 1;
}
