// Camera gimbal model. The paper lists camera gimbals among the devices a
// virtual drone can be conditionally granted (§1); control arrives via
// MAVLink MAV_CMD_DO_MOUNT_CONTROL through the flight controller, and the
// pointing state is stamped into captured frames by callers that care.
#ifndef SRC_HW_GIMBAL_H_
#define SRC_HW_GIMBAL_H_

#include <algorithm>

#include "src/hw/device.h"

namespace androne {

inline constexpr char kGimbalDeviceName[] = "gimbal";

class Gimbal : public HardwareDevice {
 public:
  Gimbal() : HardwareDevice(kGimbalDeviceName) {}

  // Commands the mount; angles clamp to the mechanical envelope
  // (pitch -90..+30 deg, yaw free, roll +-45 deg).
  Status SetOrientation(ContainerId caller, double pitch_deg, double roll_deg,
                        double yaw_deg);

  double pitch_deg() const { return pitch_deg_; }
  double roll_deg() const { return roll_deg_; }
  double yaw_deg() const { return yaw_deg_; }

  // Checkpoint restore: overwrites the pointing state directly.
  void RestoreOrientation(double pitch_deg, double roll_deg, double yaw_deg) {
    pitch_deg_ = pitch_deg;
    roll_deg_ = roll_deg;
    yaw_deg_ = yaw_deg;
  }

 private:
  double pitch_deg_ = 0;
  double roll_deg_ = 0;
  double yaw_deg_ = 0;
};

}  // namespace androne

#endif  // SRC_HW_GIMBAL_H_
