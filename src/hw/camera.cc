#include "src/hw/camera.h"

namespace androne {

Camera::Camera(SimClock* clock, const DroneGroundTruth* truth, int width,
               int height)
    : HardwareDevice(kCameraDeviceName), clock_(clock), truth_(truth),
      width_(width), height_(height) {}

StatusOr<CameraFrame> Camera::Capture(ContainerId caller) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  CameraFrame frame;
  frame.sequence = next_sequence_++;
  frame.width = width_;
  frame.height = height_;
  frame.timestamp = clock_->now();
  frame.camera_position = truth_->position;
  // Deterministic content fingerprint derived from pose + time (FNV-1a mix).
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(frame.sequence);
  mix(static_cast<uint64_t>(frame.timestamp));
  mix(static_cast<uint64_t>(truth_->position.latitude_deg * 1e7));
  mix(static_cast<uint64_t>(truth_->position.longitude_deg * 1e7));
  mix(static_cast<uint64_t>(truth_->position.altitude_m * 100));
  frame.content_hash = h;
  return frame;
}

}  // namespace androne
