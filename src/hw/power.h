// Compute power model and battery. Stands in for the paper's Monsoon Power
// Monitor measurements (§6.4, Figure 13): compute power is ~1.7 W idle with
// 3 virtual drones and ~3.4 W fully stressed — insignificant next to the
// >100 W rotor draw, which is the paper's core "computation is cheap,
// flight is expensive" argument.
#ifndef SRC_HW_POWER_H_
#define SRC_HW_POWER_H_

#include <algorithm>

#include "src/util/time.h"

namespace androne {

// Compute (SBC) power model, calibrated to Figure 13:
//   idle stock           ~1.64 W
//   idle + 3 vdrones     ~1.70 W (within ~3% of stock)
//   fully stressed       ~3.4 W regardless of configuration (CPU-bound).
struct ComputePowerModel {
  double soc_idle_watts = 1.63;          // SoC + RAM + daughterboard idle.
  double per_container_watts = 0.002;    // cgroup/bridge bookkeeping.
  double per_vdrone_watts = 0.011;       // Idle Android Things instance.
  double cpu_dynamic_watts = 1.72;       // Full-load dynamic power.

  double Watts(double cpu_utilization, int containers, int vdrones) const {
    double util = std::clamp(cpu_utilization, 0.0, 1.0);
    return soc_idle_watts + per_container_watts * containers +
           per_vdrone_watts * vdrones + cpu_dynamic_watts * util;
  }
};

// LiPo battery model (Turnigy 5000 mAh 3S analog): integrates energy and
// exposes the billing-relevant joule counter (paper §2 bills virtual drones
// by energy).
class Battery {
 public:
  // 5000 mAh at 11.1 V nominal = ~199.8 kJ.
  explicit Battery(double capacity_joules = 199800.0)
      : capacity_j_(capacity_joules), remaining_j_(capacity_joules) {}

  // Integrates |watts| drawn over |dt|.
  void Drain(double watts, SimDuration dt);

  double capacity_joules() const { return capacity_j_; }
  double remaining_joules() const { return remaining_j_; }
  double consumed_joules() const { return capacity_j_ - remaining_j_; }
  double fraction_remaining() const { return remaining_j_ / capacity_j_; }
  bool depleted() const { return remaining_j_ <= 0.0; }

  // Pack voltage sags linearly from 12.6 V (full) to 10.5 V (empty) — a
  // first-order LiPo discharge model.
  double voltage() const {
    return 10.5 + 2.1 * std::max(0.0, fraction_remaining());
  }

  // Checkpoint hook: the remaining charge is the battery's only dynamic
  // state (capacity is config).
  void RestoreRemaining(double remaining_j) { remaining_j_ = remaining_j; }

 private:
  double capacity_j_;
  double remaining_j_;
};

}  // namespace androne

#endif  // SRC_HW_POWER_H_
