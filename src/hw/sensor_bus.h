// Single-writer sensor snapshot bus. The device container samples each
// sensor at its native cadence and publishes one versioned snapshot; the
// flight stack, the estimator, and every virtual-drone tenant read the
// snapshot by reference instead of drawing their own copies through
// per-read device I/O (paper Figure 3's device container fanning sensor
// data out to N consumers).
//
// Concurrency model: a seqlock. The writer bumps the sequence to odd,
// mutates the slot, and bumps it to even; readers copy the slot and retry
// if the sequence was odd or moved underneath them. Within one simulated
// world everything runs on that world's SimClock thread, so the retry loop
// never spins in practice — the seqlock is there so the protocol stays
// correct (and TSan-explainable) if a snapshot consumer is ever moved off
// the world thread, and so the version counter doubles as a freshness
// token readers can use to skip work when nothing changed.
#ifndef SRC_HW_SENSOR_BUS_H_
#define SRC_HW_SENSOR_BUS_H_

#include <atomic>
#include <cstdint>

#include "src/hw/sensor_io.h"
#include "src/hw/sensors.h"
#include "src/snapshot/snapshot.h"
#include "src/util/sim_clock.h"
#include "src/util/status.h"

namespace androne {

// One coherent view of every flight sensor. Field timestamps are the sim
// times the underlying devices stamped at sampling, so consumers see each
// sensor's native cadence even though the snapshot itself may republish.
struct SensorSnapshot {
  ImuSample imu;
  GpsFix gps;
  double baro_altitude_m = 0;
  double mag_heading_rad = 0;
  SimTime baro_mag_time = 0;  // When baro/mag were last sampled.
  SimTime publish_time = 0;   // When this snapshot was published.
};

class SensorBus {
 public:
  SensorBus() = default;
  SensorBus(const SensorBus&) = delete;
  SensorBus& operator=(const SensorBus&) = delete;

  // --- Writer side (single writer: the device container's sampler) ---

  // Opens a write section: returns the mutable slot after bumping the
  // sequence to odd. Must be paired with EndPublish on the same thread.
  SensorSnapshot* BeginPublish();
  // Closes the write section (sequence becomes even = stable).
  void EndPublish();

  // --- Reader side ---

  // Copies the latest stable snapshot into |out| and returns the (even)
  // version it carried. Retries while the writer is mid-publish.
  uint64_t Read(SensorSnapshot* out) const;

  // Borrow the slot without copying — valid only on the writer's thread
  // (the single-threaded per-world hot path; this is the "read by
  // reference" fast path).
  const SensorSnapshot& latest() const { return slot_; }

  // Version of the latest stable snapshot (even; 0 = never published).
  uint64_t version() const {
    return sequence_.load(std::memory_order_acquire);
  }

  uint64_t publishes() const { return publishes_; }
  uint64_t reader_retries() const {
    return reader_retries_.load(std::memory_order_relaxed);
  }

  // Checkpoint/restore (DESIGN.md §13). Saved between publishes, so the
  // sequence is always even at capture time.
  void SaveState(SnapshotWriter& w) const {
    w.Section("SBUS");
    w.U64(sequence_.load(std::memory_order_acquire));
    SaveImuSample(w, slot_.imu);
    SaveGpsFix(w, slot_.gps);
    w.F64(slot_.baro_altitude_m);
    w.F64(slot_.mag_heading_rad);
    w.I64(slot_.baro_mag_time);
    w.I64(slot_.publish_time);
    w.U64(publishes_);
    w.U64(reader_retries_.load(std::memory_order_relaxed));
  }

  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("SBUS"));
    uint64_t sequence;
    RETURN_IF_ERROR(r.U64(&sequence));
    RETURN_IF_ERROR(RestoreImuSample(r, slot_.imu));
    RETURN_IF_ERROR(RestoreGpsFix(r, slot_.gps));
    RETURN_IF_ERROR(r.F64(&slot_.baro_altitude_m));
    RETURN_IF_ERROR(r.F64(&slot_.mag_heading_rad));
    RETURN_IF_ERROR(r.I64(&slot_.baro_mag_time));
    RETURN_IF_ERROR(r.I64(&slot_.publish_time));
    RETURN_IF_ERROR(r.U64(&publishes_));
    uint64_t retries;
    RETURN_IF_ERROR(r.U64(&retries));
    reader_retries_.store(retries, std::memory_order_relaxed);
    sequence_.store(sequence, std::memory_order_release);
    return OkStatus();
  }

 private:
  std::atomic<uint64_t> sequence_{0};  // Odd while a publish is in flight.
  SensorSnapshot slot_;
  uint64_t publishes_ = 0;
  mutable std::atomic<uint64_t> reader_retries_{0};
};

// Cadence for the hub below; defaults mirror the flight controller's sensor
// schedule (IMU every tick at 400 Hz, baro/mag 25 Hz, GPS 5 Hz).
struct SensorHubConfig {
  SimDuration slow_period = Millis(40);  // Barometer + magnetometer.
  SimDuration gps_period = Millis(200);
};

// The device container's sampler: owns the bus, draws each sensor at its
// native rate, and publishes one snapshot per sim instant at most. All
// consumers (SensorService, LocationManagerService, the flight stack's
// BusSensorSource) call Refresh() and read the same snapshot — N tenants
// cost one device sample instead of N.
class SensorHub {
 public:
  SensorHub(SimClock* clock, GpsReceiver* gps, Imu* imu, Barometer* baro,
            Magnetometer* mag, ContainerId opener,
            SensorHubConfig config = {});

  // Samples whatever is due at the current sim time and publishes. Cheap
  // when nothing is due (one time compare). Returns the first device error
  // encountered; later sensors are still attempted.
  Status Refresh();

  SensorBus& bus() { return bus_; }
  const SensorBus& bus() const { return bus_; }

  // Refresh() + borrow the published snapshot (single-threaded fast path).
  const SensorSnapshot& Sample() {
    (void)Refresh();
    return bus_.latest();
  }

  uint64_t samples_drawn() const { return samples_drawn_; }

  // Checkpoint/restore: the cadence bookkeeping plus the published slot.
  void SaveState(SnapshotWriter& w) const {
    w.Section("SHUB");
    bus_.SaveState(w);
    w.I64(last_imu_time_);
    w.I64(last_slow_time_);
    w.I64(last_gps_time_);
    w.U64(samples_drawn_);
  }

  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("SHUB"));
    RETURN_IF_ERROR(bus_.RestoreState(r));
    RETURN_IF_ERROR(r.I64(&last_imu_time_));
    RETURN_IF_ERROR(r.I64(&last_slow_time_));
    RETURN_IF_ERROR(r.I64(&last_gps_time_));
    return r.U64(&samples_drawn_);
  }

 private:
  SimClock* clock_;
  GpsReceiver* gps_;
  Imu* imu_;
  Barometer* baro_;
  Magnetometer* mag_;
  ContainerId opener_;
  SensorHubConfig config_;
  SensorBus bus_;
  SimTime last_imu_time_ = -Seconds(1);
  SimTime last_slow_time_ = -Seconds(1);
  SimTime last_gps_time_ = -Seconds(1);
  uint64_t samples_drawn_ = 0;
};

}  // namespace androne

#endif  // SRC_HW_SENSOR_BUS_H_
