#include "src/hw/power.h"

namespace androne {

void Battery::Drain(double watts, SimDuration dt) {
  if (watts < 0) {
    return;
  }
  remaining_j_ -= watts * ToSecondsF(dt);
  if (remaining_j_ < 0) {
    remaining_j_ = 0;
  }
}

}  // namespace androne
