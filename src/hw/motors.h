// Quadcopter motor/ESC bank: the actuator side of the hardware seam. The
// flight controller writes normalized throttles; the physics simulation
// reads them each step.
#ifndef SRC_HW_MOTORS_H_
#define SRC_HW_MOTORS_H_

#include <array>

#include "src/hw/device.h"

namespace androne {

inline constexpr char kMotorsDeviceName[] = "motors";
inline constexpr int kNumMotors = 4;

class MotorSet : public HardwareDevice {
 public:
  MotorSet() : HardwareDevice(kMotorsDeviceName) {}

  // Throttles in [0, 1], clamped. Motor order: front-right, back-left,
  // front-left, back-right (ArduPilot quad-X convention).
  Status SetThrottles(ContainerId caller,
                      const std::array<double, kNumMotors>& throttles);

  // Cuts all motors (failsafe path; no open check so the kernel-side
  // watchdog can always stop the props).
  void EmergencyStop();

  const std::array<double, kNumMotors>& throttles() const { return throttles_; }
  bool armed() const { return armed_; }
  Status Arm(ContainerId caller);
  Status Disarm(ContainerId caller);

  // Checkpoint restore: overwrites the actuator state directly (bypasses
  // the open check — the restoring world rebuilt the same opener).
  void RestoreActuatorState(const std::array<double, kNumMotors>& throttles,
                            bool armed) {
    throttles_ = throttles;
    armed_ = armed;
  }

 private:
  std::array<double, kNumMotors> throttles_{0, 0, 0, 0};
  bool armed_ = false;
};

}  // namespace androne

#endif  // SRC_HW_MOTORS_H_
