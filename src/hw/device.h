// Hardware device base and bus. Physical devices are single-opener: AnDrone
// gives exclusive access to the device container, which multiplexes them at
// the Android system-service level (paper §4.2). Keeping the exclusive-open
// illusion at the hardware layer preserves compatibility with drone device
// stacks that were never designed for concurrent users.
#ifndef SRC_HW_DEVICE_H_
#define SRC_HW_DEVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/binder/binder_driver.h"  // For ContainerId.
#include "src/util/status.h"

namespace androne {

class HardwareDevice {
 public:
  explicit HardwareDevice(std::string name) : name_(std::move(name)) {}
  virtual ~HardwareDevice() = default;

  const std::string& name() const { return name_; }

  // Exclusive open: a second opener gets FAILED_PRECONDITION until Close.
  Status Open(ContainerId opener);
  Status Close(ContainerId opener);
  bool is_open() const { return open_; }
  ContainerId opener() const { return opener_; }

 protected:
  // Fails unless the caller currently holds the device open.
  Status CheckOpenBy(ContainerId caller) const;

 private:
  std::string name_;
  bool open_ = false;
  ContainerId opener_ = -1;
};

// Registry of the drone's physical devices.
class HardwareBus {
 public:
  // Registers a device; the bus owns it. Returns the raw pointer for
  // convenience.
  template <typename T>
  T* Register(std::unique_ptr<T> device) {
    T* raw = device.get();
    devices_[raw->name()] = std::move(device);
    return raw;
  }

  StatusOr<HardwareDevice*> Find(const std::string& name) const;
  std::vector<std::string> DeviceNames() const;

 private:
  std::map<std::string, std::unique_ptr<HardwareDevice>> devices_;
};

}  // namespace androne

#endif  // SRC_HW_DEVICE_H_
