// Snapshot adapters for the hw-layer sensor value types (DESIGN.md §13).
// Shared by the sensor devices, the snapshot bus, and the fault injector's
// stuck-value latches.
#ifndef SRC_HW_SENSOR_IO_H_
#define SRC_HW_SENSOR_IO_H_

#include "src/hw/sensors.h"
#include "src/snapshot/snapshot.h"
#include "src/util/geo.h"

namespace androne {

inline void SaveGeoPoint(SnapshotWriter& w, const GeoPoint& p) {
  w.F64(p.latitude_deg);
  w.F64(p.longitude_deg);
  w.F64(p.altitude_m);
}

inline Status RestoreGeoPoint(SnapshotReader& r, GeoPoint& p) {
  RETURN_IF_ERROR(r.F64(&p.latitude_deg));
  RETURN_IF_ERROR(r.F64(&p.longitude_deg));
  return r.F64(&p.altitude_m);
}

inline void SaveNedPoint(SnapshotWriter& w, const NedPoint& p) {
  w.F64(p.north_m);
  w.F64(p.east_m);
  w.F64(p.down_m);
}

inline Status RestoreNedPoint(SnapshotReader& r, NedPoint& p) {
  RETURN_IF_ERROR(r.F64(&p.north_m));
  RETURN_IF_ERROR(r.F64(&p.east_m));
  return r.F64(&p.down_m);
}

inline void SaveGpsFix(SnapshotWriter& w, const GpsFix& fix) {
  SaveGeoPoint(w, fix.position);
  SaveNedPoint(w, fix.velocity_ms);
  w.U32(static_cast<uint32_t>(fix.satellites));
  w.Bool(fix.has_fix);
  w.I64(fix.timestamp);
}

inline Status RestoreGpsFix(SnapshotReader& r, GpsFix& fix) {
  RETURN_IF_ERROR(RestoreGeoPoint(r, fix.position));
  RETURN_IF_ERROR(RestoreNedPoint(r, fix.velocity_ms));
  uint32_t satellites;
  RETURN_IF_ERROR(r.U32(&satellites));
  fix.satellites = static_cast<int>(satellites);
  RETURN_IF_ERROR(r.Bool(&fix.has_fix));
  return r.I64(&fix.timestamp);
}

inline void SaveImuSample(SnapshotWriter& w, const ImuSample& s) {
  for (double v : s.gyro_rads) {
    w.F64(v);
  }
  for (double v : s.accel_mss) {
    w.F64(v);
  }
  w.I64(s.timestamp);
}

inline Status RestoreImuSample(SnapshotReader& r, ImuSample& s) {
  for (double& v : s.gyro_rads) {
    RETURN_IF_ERROR(r.F64(&v));
  }
  for (double& v : s.accel_mss) {
    RETURN_IF_ERROR(r.F64(&v));
  }
  return r.I64(&s.timestamp);
}

}  // namespace androne

#endif  // SRC_HW_SENSOR_IO_H_
