#include "src/hw/sensor_faults.h"

#include <algorithm>
#include <string>

#include "src/util/geo.h"

namespace androne {

namespace {
constexpr double kNsPerSecond = 1e9;

double WindowAgeSeconds(const FaultWindowSpec& w, SimTime now) {
  return static_cast<double>(now - w.start) / kNsPerSecond;
}
}  // namespace

const char* SensorChannelName(SensorChannel channel) {
  switch (channel) {
    case SensorChannel::kGps:
      return "gps";
    case SensorChannel::kImu:
      return "imu";
    case SensorChannel::kBaro:
      return "baro";
    case SensorChannel::kMag:
      return "mag";
    case SensorChannel::kBattery:
      return "battery";
  }
  return "unknown";
}

std::optional<SensorChannel> PinnedChannelOf(SensorFaultKind kind) {
  switch (kind) {
    case SensorFaultKind::kGpsJump:
      return SensorChannel::kGps;
    case SensorFaultKind::kBaroSpike:
      return SensorChannel::kBaro;
    case SensorFaultKind::kBatterySag:
      return SensorChannel::kBattery;
    default:
      return std::nullopt;
  }
}

Status SensorFaultPlan::Add(SensorFaultKind kind, SensorChannel sensor,
                            SimTime start, SimDuration duration, double p0,
                            double p1) {
  FaultWindowSpec w;
  w.kind = static_cast<int>(kind);
  w.scope = static_cast<int>(sensor);
  w.start = start;
  w.end = start + duration;
  w.p0 = p0;
  w.p1 = p1;
  return AddWindow(w);
}

Status SensorFaultPlan::AddDropout(SensorChannel sensor, SimTime start,
                                   SimDuration duration) {
  return Add(SensorFaultKind::kDropout, sensor, start, duration);
}

Status SensorFaultPlan::AddStuck(SensorChannel sensor, SimTime start,
                                 SimDuration duration) {
  return Add(SensorFaultKind::kStuck, sensor, start, duration);
}

Status SensorFaultPlan::AddBiasDrift(SensorChannel sensor, SimTime start,
                                     SimDuration duration, double rate_per_s) {
  return Add(SensorFaultKind::kBiasDrift, sensor, start, duration,
             rate_per_s);
}

Status SensorFaultPlan::AddNoiseInflation(SensorChannel sensor, SimTime start,
                                          SimDuration duration,
                                          double extra_stddev) {
  return Add(SensorFaultKind::kNoiseInflation, sensor, start, duration,
             extra_stddev);
}

Status SensorFaultPlan::AddGpsJump(SimTime start, SimDuration duration,
                                   double north_m, double east_m) {
  return Add(SensorFaultKind::kGpsJump, SensorChannel::kGps, start, duration,
             north_m, east_m);
}

Status SensorFaultPlan::AddBaroSpike(SimTime start, SimDuration duration,
                                     double magnitude_m, double probability) {
  return Add(SensorFaultKind::kBaroSpike, SensorChannel::kBaro, start,
             duration, magnitude_m, probability);
}

Status SensorFaultPlan::AddBatterySag(SimTime start, SimDuration duration,
                                      double sag_fraction) {
  return Add(SensorFaultKind::kBatterySag, SensorChannel::kBattery, start,
             duration, sag_fraction);
}

Status SensorFaultPlan::AddWindow(const FaultWindowSpec& window) {
  RETURN_IF_ERROR(FaultSchedule::ValidateWindow(window, kMaxSensorFaultKind,
                                                kMaxSensorChannel));
  const auto kind = static_cast<SensorFaultKind>(window.kind);
  std::optional<SensorChannel> pinned = PinnedChannelOf(kind);
  if (pinned.has_value() && window.scope != static_cast<int>(*pinned) &&
      window.scope != kFaultScopeAll) {
    return InvalidArgumentError(
        std::string("sensor fault window: kind is pinned to channel ") +
        SensorChannelName(*pinned) + " but scope names " +
        SensorChannelName(static_cast<SensorChannel>(window.scope)));
  }
  switch (kind) {
    case SensorFaultKind::kNoiseInflation:
      if (window.p0 < 0) {
        return InvalidArgumentError(
            "noise-inflation window: negative stddev");
      }
      break;
    case SensorFaultKind::kBaroSpike:
      if (window.p1 < 0 || window.p1 > 1) {
        return InvalidArgumentError(
            "baro-spike window: probability outside [0, 1]");
      }
      break;
    case SensorFaultKind::kBatterySag:
      if (window.p0 < 0 || window.p0 > 1) {
        return InvalidArgumentError(
            "battery-sag window: sag fraction outside [0, 1]");
      }
      break;
    default:
      break;
  }
  FaultWindowSpec w = window;
  if (pinned.has_value()) {
    w.scope = static_cast<int>(*pinned);  // Canonicalize "all" to the pin.
  }
  schedule_.Add(w);
  return OkStatus();
}

bool SensorFaultInjector::Dropped(SensorChannel channel) {
  if (plan_->schedule().AnyActive(clock_->now(),
                                  static_cast<int>(SensorFaultKind::kDropout),
                                  static_cast<int>(channel))) {
    ++counters_.dropouts;
    return true;
  }
  return false;
}

const FaultWindowSpec* SensorFaultInjector::StuckWindow(
    SensorChannel channel) {
  return plan_->schedule().FirstActive(
      clock_->now(), static_cast<int>(SensorFaultKind::kStuck),
      static_cast<int>(channel));
}

double SensorFaultInjector::BiasNow(SensorChannel channel) const {
  double bias = 0.0;
  SimTime now = clock_->now();
  plan_->schedule().ForEachActive(
      now, static_cast<int>(SensorFaultKind::kBiasDrift),
      static_cast<int>(channel), [&bias, now](const FaultWindowSpec& w) {
        bias += w.p0 * WindowAgeSeconds(w, now);
      });
  return bias;
}

double SensorFaultInjector::ExtraNoiseStddev(SensorChannel channel) const {
  double stddev = 0.0;
  plan_->schedule().ForEachActive(
      clock_->now(), static_cast<int>(SensorFaultKind::kNoiseInflation),
      static_cast<int>(channel), [&stddev](const FaultWindowSpec& w) {
        stddev += w.p0;
      });
  return stddev;
}

bool SensorFaultInjector::ApplyGps(GpsFix* fix) {
  if (Dropped(SensorChannel::kGps)) {
    return false;
  }
  if (StuckWindow(SensorChannel::kGps) != nullptr) {
    if (!stuck_gps_.has_value()) {
      stuck_gps_ = *fix;
    }
    *fix = *stuck_gps_;
    ++counters_.stuck_reads;
    return true;
  }
  stuck_gps_.reset();

  double north = BiasNow(SensorChannel::kGps);
  double east = 0.0;
  SimTime now = clock_->now();
  plan_->schedule().ForEachActive(
      now, static_cast<int>(SensorFaultKind::kGpsJump),
      static_cast<int>(SensorChannel::kGps),
      [&north, &east](const FaultWindowSpec& w) {
        north += w.p0;
        east += w.p1;
      });
  double stddev = ExtraNoiseStddev(SensorChannel::kGps);
  if (stddev > 0.0) {
    north += rng_.Gaussian(0.0, stddev);
    east += rng_.Gaussian(0.0, stddev);
  }
  if (north != 0.0 || east != 0.0) {
    fix->position = FromNed(fix->position, NedPoint{north, east, 0.0});
    ++counters_.corrupted_reads;
  }
  return true;
}

bool SensorFaultInjector::ApplyImu(ImuSample* sample) {
  if (Dropped(SensorChannel::kImu)) {
    return false;
  }
  if (StuckWindow(SensorChannel::kImu) != nullptr) {
    if (!stuck_imu_.has_value()) {
      stuck_imu_ = *sample;
    }
    *sample = *stuck_imu_;
    ++counters_.stuck_reads;
    return true;
  }
  stuck_imu_.reset();

  bool corrupted = false;
  double bias = BiasNow(SensorChannel::kImu);
  if (bias != 0.0) {
    for (double& rate : sample->gyro_rads) {
      rate += bias;
    }
    corrupted = true;
  }
  double stddev = ExtraNoiseStddev(SensorChannel::kImu);
  if (stddev > 0.0) {
    for (double& rate : sample->gyro_rads) {
      rate += rng_.Gaussian(0.0, stddev);
    }
    for (double& accel : sample->accel_mss) {
      accel += rng_.Gaussian(0.0, stddev);
    }
    corrupted = true;
  }
  if (corrupted) {
    ++counters_.corrupted_reads;
  }
  return true;
}

bool SensorFaultInjector::ApplyBaro(double* altitude_m) {
  if (Dropped(SensorChannel::kBaro)) {
    return false;
  }
  if (StuckWindow(SensorChannel::kBaro) != nullptr) {
    if (!stuck_baro_.has_value()) {
      stuck_baro_ = *altitude_m;
    }
    *altitude_m = *stuck_baro_;
    ++counters_.stuck_reads;
    return true;
  }
  stuck_baro_.reset();

  bool corrupted = false;
  double bias = BiasNow(SensorChannel::kBaro);
  if (bias != 0.0) {
    *altitude_m += bias;
    corrupted = true;
  }
  double stddev = ExtraNoiseStddev(SensorChannel::kBaro);
  if (stddev > 0.0) {
    *altitude_m += rng_.Gaussian(0.0, stddev);
    corrupted = true;
  }
  SimTime now = clock_->now();
  double spike = 0.0;
  plan_->schedule().ForEachActive(
      now, static_cast<int>(SensorFaultKind::kBaroSpike),
      static_cast<int>(SensorChannel::kBaro),
      [this, &spike](const FaultWindowSpec& w) {
        if (rng_.Bernoulli(w.p1)) {
          spike += rng_.Bernoulli(0.5) ? w.p0 : -w.p0;
        }
      });
  if (spike != 0.0) {
    *altitude_m += spike;
    corrupted = true;
  }
  if (corrupted) {
    ++counters_.corrupted_reads;
  }
  return true;
}

bool SensorFaultInjector::ApplyMag(double* heading_rad) {
  if (Dropped(SensorChannel::kMag)) {
    return false;
  }
  if (StuckWindow(SensorChannel::kMag) != nullptr) {
    if (!stuck_mag_.has_value()) {
      stuck_mag_ = *heading_rad;
    }
    *heading_rad = *stuck_mag_;
    ++counters_.stuck_reads;
    return true;
  }
  stuck_mag_.reset();

  bool corrupted = false;
  double bias = BiasNow(SensorChannel::kMag);
  if (bias != 0.0) {
    *heading_rad += bias;
    corrupted = true;
  }
  double stddev = ExtraNoiseStddev(SensorChannel::kMag);
  if (stddev > 0.0) {
    *heading_rad += rng_.Gaussian(0.0, stddev);
    corrupted = true;
  }
  if (corrupted) {
    ++counters_.corrupted_reads;
  }
  return true;
}

double SensorFaultInjector::ApplyBatteryFraction(double fraction) {
  plan_->schedule().ForEachActive(
      clock_->now(), static_cast<int>(SensorFaultKind::kBatterySag),
      static_cast<int>(SensorChannel::kBattery),
      [&fraction](const FaultWindowSpec& w) { fraction *= 1.0 - w.p0; });
  return std::clamp(fraction, 0.0, 1.0);
}

}  // namespace androne
