// Ground-truth physical state of the drone, produced by the flight physics
// simulation and consumed by the sensor device models. This is the seam that
// replaces real hardware: sensors read (noisy views of) this state exactly
// where real drivers would read registers.
#ifndef SRC_HW_GROUND_TRUTH_H_
#define SRC_HW_GROUND_TRUTH_H_

#include "src/util/geo.h"

namespace androne {

struct DroneGroundTruth {
  GeoPoint position;          // Geodetic position; altitude above home.
  NedPoint velocity_ms;       // NED velocity, m/s.
  double roll_rad = 0.0;
  double pitch_rad = 0.0;
  double yaw_rad = 0.0;       // Heading, 0 = north, positive east.
  double roll_rate_rads = 0.0;
  double pitch_rate_rads = 0.0;
  double yaw_rate_rads = 0.0;
  double accel_up_mss = 0.0;  // Vertical specific force minus gravity.
  double rotor_power_w = 0.0; // Total electrical power drawn by the rotors.
  bool airborne = false;
};

}  // namespace androne

#endif  // SRC_HW_GROUND_TRUTH_H_
