#include "src/hw/sensors.h"

#include <cmath>

namespace androne {

namespace {
// Horizontal GPS noise, ~consumer-module CEP.
constexpr double kGpsNoiseM = 1.2;
constexpr double kGpsAltNoiseM = 2.0;
constexpr double kGyroNoiseRads = 0.002;
constexpr double kAccelNoiseMss = 0.05;
constexpr double kBaroNoiseM = 0.1;
constexpr double kMagNoiseRad = 0.01;
constexpr double kGravityMss = 9.80665;
}  // namespace

GpsReceiver::GpsReceiver(SimClock* clock, const DroneGroundTruth* truth,
                         uint64_t seed)
    : HardwareDevice(kGpsDeviceName), clock_(clock), truth_(truth),
      rng_(seed) {}

StatusOr<GpsFix> GpsReceiver::ReadFix(ContainerId caller) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  GpsFix fix;
  NedPoint noise{rng_.Gaussian(0, kGpsNoiseM), rng_.Gaussian(0, kGpsNoiseM),
                 rng_.Gaussian(0, kGpsAltNoiseM)};
  fix.position = FromNed(truth_->position, noise);
  fix.velocity_ms = truth_->velocity_ms;
  fix.satellites = satellites_;
  fix.has_fix = satellites_ >= 6;
  fix.timestamp = clock_->now();
  return fix;
}

Imu::Imu(SimClock* clock, const DroneGroundTruth* truth, uint64_t seed)
    : HardwareDevice(kImuDeviceName), clock_(clock), truth_(truth),
      rng_(seed) {}

StatusOr<ImuSample> Imu::ReadSample(ContainerId caller) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  ImuSample s;
  s.gyro_rads = {truth_->roll_rate_rads + rng_.Gaussian(0, kGyroNoiseRads),
                 truth_->pitch_rate_rads + rng_.Gaussian(0, kGyroNoiseRads),
                 truth_->yaw_rate_rads + rng_.Gaussian(0, kGyroNoiseRads)};
  // Body-frame specific force: at hover this reads -g on the z axis plus
  // the tilt components on x/y (small-angle approximation).
  double fz = -(kGravityMss + truth_->accel_up_mss);
  s.accel_mss = {
      kGravityMss * std::sin(truth_->pitch_rad) +
          rng_.Gaussian(0, kAccelNoiseMss),
      -kGravityMss * std::sin(truth_->roll_rad) +
          rng_.Gaussian(0, kAccelNoiseMss),
      fz + rng_.Gaussian(0, kAccelNoiseMss),
  };
  s.timestamp = clock_->now();
  return s;
}

Barometer::Barometer(SimClock* clock, const DroneGroundTruth* truth,
                     uint64_t seed)
    : HardwareDevice(kBarometerDeviceName), clock_(clock), truth_(truth),
      rng_(seed) {}

StatusOr<double> Barometer::ReadAltitudeM(ContainerId caller) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  return truth_->position.altitude_m + rng_.Gaussian(0, kBaroNoiseM);
}

Magnetometer::Magnetometer(SimClock* clock, const DroneGroundTruth* truth,
                           uint64_t seed)
    : HardwareDevice(kMagnetometerDeviceName), clock_(clock), truth_(truth),
      rng_(seed) {}

StatusOr<double> Magnetometer::ReadHeadingRad(ContainerId caller) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  double heading = truth_->yaw_rad + rng_.Gaussian(0, kMagNoiseRad);
  // Normalize to [0, 2*pi).
  constexpr double kTwoPi = 6.283185307179586;
  heading = std::fmod(heading, kTwoPi);
  if (heading < 0) {
    heading += kTwoPi;
  }
  return heading;
}

Microphone::Microphone(SimClock* clock)
    : HardwareDevice(kMicrophoneDeviceName), clock_(clock) {}

Status Speaker::Play(ContainerId caller, size_t samples) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  samples_played_ += samples;
  return OkStatus();
}

StatusOr<std::vector<int16_t>> Microphone::Record(ContainerId caller,
                                                  size_t samples) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  (void)clock_;
  std::vector<int16_t> pcm(samples);
  for (size_t i = 0; i < samples; ++i) {
    // Synthetic rotor hum: 200 Hz tone at 44.1 kHz sample rate.
    pcm[i] = static_cast<int16_t>(
        8000.0 * std::sin(2 * 3.14159265 * 200.0 *
                          static_cast<double>(phase_++) / 44100.0));
  }
  return pcm;
}

}  // namespace androne
