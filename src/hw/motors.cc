#include "src/hw/motors.h"

#include <algorithm>

namespace androne {

Status MotorSet::SetThrottles(
    ContainerId caller, const std::array<double, kNumMotors>& throttles) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  if (!armed_) {
    return FailedPreconditionError("motors are not armed");
  }
  for (int i = 0; i < kNumMotors; ++i) {
    throttles_[static_cast<size_t>(i)] =
        std::clamp(throttles[static_cast<size_t>(i)], 0.0, 1.0);
  }
  return OkStatus();
}

void MotorSet::EmergencyStop() {
  throttles_ = {0, 0, 0, 0};
  armed_ = false;
}

Status MotorSet::Arm(ContainerId caller) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  armed_ = true;
  return OkStatus();
}

Status MotorSet::Disarm(ContainerId caller) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  armed_ = false;
  throttles_ = {0, 0, 0, 0};
  return OkStatus();
}

}  // namespace androne
