// Camera device model standing in for the Raspberry Pi Camera Module v2.
// Produces deterministic synthetic frames; exclusive-open like the real
// device node — the device container opens it once and CameraService
// multiplexes frames to virtual drones.
#ifndef SRC_HW_CAMERA_H_
#define SRC_HW_CAMERA_H_

#include <cstdint>
#include <vector>

#include "src/hw/device.h"
#include "src/hw/ground_truth.h"
#include "src/util/sim_clock.h"

namespace androne {

inline constexpr char kCameraDeviceName[] = "camera";

struct CameraFrame {
  uint64_t sequence = 0;
  int width = 0;
  int height = 0;
  SimTime timestamp = 0;
  // Where the camera was pointing when the frame was captured (stamped from
  // ground truth so survey apps can geo-reference imagery).
  GeoPoint camera_position;
  // Compact synthetic payload: a content checksum standing in for pixels.
  uint64_t content_hash = 0;
};

class Camera : public HardwareDevice {
 public:
  Camera(SimClock* clock, const DroneGroundTruth* truth, int width = 3280,
         int height = 2464);

  // Captures one frame now.
  StatusOr<CameraFrame> Capture(ContainerId caller);

  uint64_t frames_captured() const { return next_sequence_; }

 private:
  SimClock* clock_;
  const DroneGroundTruth* truth_;
  int width_;
  int height_;
  uint64_t next_sequence_ = 0;
};

}  // namespace androne

#endif  // SRC_HW_CAMERA_H_
