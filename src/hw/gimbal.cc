#include "src/hw/gimbal.h"

#include <cmath>

namespace androne {

Status Gimbal::SetOrientation(ContainerId caller, double pitch_deg,
                              double roll_deg, double yaw_deg) {
  RETURN_IF_ERROR(CheckOpenBy(caller));
  pitch_deg_ = std::clamp(pitch_deg, -90.0, 30.0);
  roll_deg_ = std::clamp(roll_deg, -45.0, 45.0);
  yaw_deg_ = std::fmod(yaw_deg, 360.0);
  if (yaw_deg_ < 0) {
    yaw_deg_ += 360.0;
  }
  return OkStatus();
}

}  // namespace androne
