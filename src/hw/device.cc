#include "src/hw/device.h"

namespace androne {

Status HardwareDevice::Open(ContainerId opener) {
  if (open_) {
    return FailedPreconditionError("device '" + name_ +
                                   "' is already open (exclusive)");
  }
  open_ = true;
  opener_ = opener;
  return OkStatus();
}

Status HardwareDevice::Close(ContainerId opener) {
  if (!open_ || opener_ != opener) {
    return FailedPreconditionError("device '" + name_ +
                                   "' is not open by this container");
  }
  open_ = false;
  opener_ = -1;
  return OkStatus();
}

Status HardwareDevice::CheckOpenBy(ContainerId caller) const {
  if (!open_ || opener_ != caller) {
    return PermissionDeniedError("device '" + name_ +
                                 "' is not open by container " +
                                 std::to_string(caller));
  }
  return OkStatus();
}

StatusOr<HardwareDevice*> HardwareBus::Find(const std::string& name) const {
  auto it = devices_.find(name);
  if (it == devices_.end()) {
    return NotFoundError("no device '" + name + "' on the bus");
  }
  return it->second.get();
}

std::vector<std::string> HardwareBus::DeviceNames() const {
  std::vector<std::string> names;
  names.reserve(devices_.size());
  for (const auto& [name, device] : devices_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace androne
