#include "src/hw/sensor_bus.h"

namespace androne {

SensorSnapshot* SensorBus::BeginPublish() {
  // Relaxed is enough for the odd store on the single writer thread; the
  // release on EndPublish orders the slot writes for readers.
  uint64_t seq = sequence_.load(std::memory_order_relaxed);
  sequence_.store(seq + 1, std::memory_order_release);
  return &slot_;
}

void SensorBus::EndPublish() {
  uint64_t seq = sequence_.load(std::memory_order_relaxed);
  sequence_.store(seq + 1, std::memory_order_release);
  ++publishes_;
}

uint64_t SensorBus::Read(SensorSnapshot* out) const {
  while (true) {
    uint64_t before = sequence_.load(std::memory_order_acquire);
    if (before & 1) {
      // Writer mid-publish; retry.
      reader_retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    *out = slot_;
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t after = sequence_.load(std::memory_order_acquire);
    if (before == after) {
      return after;
    }
    reader_retries_.fetch_add(1, std::memory_order_relaxed);
  }
}

SensorHub::SensorHub(SimClock* clock, GpsReceiver* gps, Imu* imu,
                     Barometer* baro, Magnetometer* mag, ContainerId opener,
                     SensorHubConfig config)
    : clock_(clock),
      gps_(gps),
      imu_(imu),
      baro_(baro),
      mag_(mag),
      opener_(opener),
      config_(config) {}

Status SensorHub::Refresh() {
  SimTime now = clock_->now();
  bool imu_due = imu_ != nullptr && now != last_imu_time_;
  bool slow_due = (baro_ != nullptr || mag_ != nullptr) &&
                  now - last_slow_time_ >= config_.slow_period;
  bool gps_due = gps_ != nullptr && now - last_gps_time_ >= config_.gps_period;
  if (!imu_due && !slow_due && !gps_due) {
    return OkStatus();
  }

  Status first_error = OkStatus();
  auto note = [&first_error](const Status& s) {
    if (first_error.ok() && !s.ok()) {
      first_error = s;
    }
  };

  SensorSnapshot* slot = bus_.BeginPublish();
  if (imu_due) {
    last_imu_time_ = now;
    auto sample = imu_->ReadSample(opener_);
    note(sample.status());
    if (sample.ok()) {
      slot->imu = *sample;
      ++samples_drawn_;
    }
  }
  if (slow_due) {
    last_slow_time_ = now;
    auto altitude = baro_ != nullptr ? baro_->ReadAltitudeM(opener_)
                                     : StatusOr<double>(slot->baro_altitude_m);
    note(altitude.status());
    if (altitude.ok()) {
      slot->baro_altitude_m = *altitude;
      ++samples_drawn_;
    }
    auto heading = mag_ != nullptr ? mag_->ReadHeadingRad(opener_)
                                   : StatusOr<double>(slot->mag_heading_rad);
    note(heading.status());
    if (heading.ok()) {
      slot->mag_heading_rad = *heading;
      ++samples_drawn_;
    }
    slot->baro_mag_time = now;
  }
  if (gps_due) {
    last_gps_time_ = now;
    auto fix = gps_->ReadFix(opener_);
    note(fix.status());
    if (fix.ok()) {
      slot->gps = *fix;
      ++samples_drawn_;
    }
  }
  slot->publish_time = now;
  bus_.EndPublish();
  return first_error;
}

}  // namespace androne
