// Scripted sensor fault injection, the hw-layer twin of the network chaos
// layer (src/net/fault_injector.h). A SensorFaultPlan is a typed facade over
// the shared util/fault_plan FaultSchedule — dropout, stuck value, bias
// drift, noise inflation, GPS jump, barometer spike, battery sag — so one
// chaos script composes sensor and link fault windows on a single time base
// and replays deterministically under a fixed seed. A SensorFaultInjector
// applies the plan to individual sensor reads; the flight stack sees it
// through FaultySensorSource (src/flight/sensor_source.h), which is the
// point of the exercise: the estimator and safety supervisor must survive
// sensors lying to them, not just sensors going quiet.
#ifndef SRC_HW_SENSOR_FAULTS_H_
#define SRC_HW_SENSOR_FAULTS_H_

#include <optional>

#include "src/hw/sensor_io.h"
#include "src/hw/sensors.h"
#include "src/snapshot/snapshot.h"
#include "src/snapshot/state_io.h"
#include "src/util/fault_plan.h"
#include "src/util/rng.h"
#include "src/util/sim_clock.h"

namespace androne {

// Scope values for sensor fault windows.
enum class SensorChannel {
  kGps = 0,
  kImu = 1,
  kBaro = 2,
  kMag = 3,
  kBattery = 4,
};

const char* SensorChannelName(SensorChannel channel);

enum class SensorFaultKind {
  kDropout = 0,         // Reads fail (UNAVAILABLE) for the window.
  kStuck = 1,           // First read in the window latches; all later reads
                        // return the latched value, timestamps frozen.
  kBiasDrift = 2,       // Additive bias ramping at p0 units/second.
  kNoiseInflation = 3,  // Extra zero-mean Gaussian noise, stddev p0.
  kGpsJump = 4,         // Position teleports by (p0 north, p1 east) meters.
  kBaroSpike = 5,       // With probability p1 per read, altitude off by ±p0.
  kBatterySag = 6,      // Sensed fraction scaled by (1 - p0); truth untouched.
};

inline constexpr int kMaxSensorFaultKind =
    static_cast<int>(SensorFaultKind::kBatterySag);
inline constexpr int kMaxSensorChannel =
    static_cast<int>(SensorChannel::kBattery);

// The channel a kind is pinned to, or nullopt for channel-free kinds
// (dropout/stuck/bias/noise apply to whatever channel the window names; a
// GPS jump is only ever a GPS fault). Manifest loading rejects windows
// whose named channel conflicts with the kind's pinned channel.
std::optional<SensorChannel> PinnedChannelOf(SensorFaultKind kind);

// Typed schedule builder. All windows are [start, start + duration). Every
// builder validates its window (FaultSchedule::ValidateWindow plus
// kind-specific parameter ranges) and returns a descriptive error instead
// of silently accepting a malformed one; on error the plan is unchanged.
class SensorFaultPlan {
 public:
  Status AddDropout(SensorChannel sensor, SimTime start, SimDuration duration);
  Status AddStuck(SensorChannel sensor, SimTime start, SimDuration duration);
  Status AddBiasDrift(SensorChannel sensor, SimTime start,
                      SimDuration duration, double rate_per_s);
  Status AddNoiseInflation(SensorChannel sensor, SimTime start,
                           SimDuration duration, double extra_stddev);
  Status AddGpsJump(SimTime start, SimDuration duration, double north_m,
                    double east_m);
  Status AddBaroSpike(SimTime start, SimDuration duration, double magnitude_m,
                      double probability);
  Status AddBatterySag(SimTime start, SimDuration duration,
                       double sag_fraction);

  // Generic validated append — the manifest-loading path (fault windows
  // deserialized by util/fault_plan_io land here). Rejects windows whose
  // scope conflicts with the kind's pinned channel.
  Status AddWindow(const FaultWindowSpec& window);

  const FaultSchedule& schedule() const { return schedule_; }

 private:
  Status Add(SensorFaultKind kind, SensorChannel sensor, SimTime start,
             SimDuration duration, double p0 = 0.0, double p1 = 0.0);

  FaultSchedule schedule_;
};

struct SensorFaultCounters {
  uint64_t dropouts = 0;
  uint64_t stuck_reads = 0;
  uint64_t corrupted_reads = 0;  // Bias/noise/jump/spike-affected reads.
};

// Applies a SensorFaultPlan to sensor reads. Stateful only for stuck-value
// latches (and the noise stream), so it must be consulted on every read of
// the channels it covers. Apply* return false when the read is dropped;
// otherwise they mutate the sample in place.
//
// Precedence per read: dropout beats stuck beats corruption — a stuck
// sensor repeats its latched value exactly (that bit-identity is what the
// estimator's stuck detector keys on), so bias/noise never touch it.
class SensorFaultInjector {
 public:
  SensorFaultInjector(const SensorFaultPlan* plan, const SimClock* clock,
                      uint64_t seed)
      : plan_(plan), clock_(clock), rng_(SplitMix64(seed ^ 0x5ef5u)) {}

  bool ApplyGps(GpsFix* fix);
  bool ApplyImu(ImuSample* sample);
  bool ApplyBaro(double* altitude_m);
  bool ApplyMag(double* heading_rad);

  // Battery has no dropout path — gauges report *something* — only sag.
  double ApplyBatteryFraction(double fraction);

  const SensorFaultCounters& counters() const { return counters_; }
  Rng& checkpoint_rng() { return rng_; }
  // Replay fast path (DESIGN.md §15): a replaying world never consults the
  // injector (the FC's sensor reads are skipped), so the recorded run's
  // final tallies are installed from the replay-log footer to keep the
  // sensor.* metrics — and the metrics digest — identical.
  void RestoreCounters(const SensorFaultCounters& counters) {
    counters_ = counters;
  }

  // Checkpoint/restore: the noise stream, fault counters, and stuck-value
  // latches are the injector's only dynamic state (the plan is config).
  void SaveState(SnapshotWriter& w) const {
    w.Section("SFLT");
    SaveRng(w, rng_);
    w.U64(counters_.dropouts);
    w.U64(counters_.stuck_reads);
    w.U64(counters_.corrupted_reads);
    w.Bool(stuck_gps_.has_value());
    if (stuck_gps_.has_value()) SaveGpsFix(w, *stuck_gps_);
    w.Bool(stuck_imu_.has_value());
    if (stuck_imu_.has_value()) SaveImuSample(w, *stuck_imu_);
    w.Bool(stuck_baro_.has_value());
    if (stuck_baro_.has_value()) w.F64(*stuck_baro_);
    w.Bool(stuck_mag_.has_value());
    if (stuck_mag_.has_value()) w.F64(*stuck_mag_);
  }

  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("SFLT"));
    RETURN_IF_ERROR(RestoreRng(r, rng_));
    RETURN_IF_ERROR(r.U64(&counters_.dropouts));
    RETURN_IF_ERROR(r.U64(&counters_.stuck_reads));
    RETURN_IF_ERROR(r.U64(&counters_.corrupted_reads));
    bool present = false;
    RETURN_IF_ERROR(r.Bool(&present));
    stuck_gps_.reset();
    if (present) {
      stuck_gps_.emplace();
      RETURN_IF_ERROR(RestoreGpsFix(r, *stuck_gps_));
    }
    RETURN_IF_ERROR(r.Bool(&present));
    stuck_imu_.reset();
    if (present) {
      stuck_imu_.emplace();
      RETURN_IF_ERROR(RestoreImuSample(r, *stuck_imu_));
    }
    RETURN_IF_ERROR(r.Bool(&present));
    stuck_baro_.reset();
    if (present) {
      double v;
      RETURN_IF_ERROR(r.F64(&v));
      stuck_baro_ = v;
    }
    RETURN_IF_ERROR(r.Bool(&present));
    stuck_mag_.reset();
    if (present) {
      double v;
      RETURN_IF_ERROR(r.F64(&v));
      stuck_mag_ = v;
    }
    return OkStatus();
  }

 private:
  // Returns the active stuck window for |channel|, clearing the latch when
  // no window covers now.
  const FaultWindowSpec* StuckWindow(SensorChannel channel);
  double BiasNow(SensorChannel channel) const;
  double ExtraNoiseStddev(SensorChannel channel) const;
  bool Dropped(SensorChannel channel);

  const SensorFaultPlan* plan_;
  const SimClock* clock_;
  Rng rng_;
  SensorFaultCounters counters_;

  std::optional<GpsFix> stuck_gps_;
  std::optional<ImuSample> stuck_imu_;
  std::optional<double> stuck_baro_;
  std::optional<double> stuck_mag_;
};

}  // namespace androne

#endif  // SRC_HW_SENSOR_FAULTS_H_
