// Sensor device models: GPS, IMU (gyro + accelerometer), barometer,
// magnetometer, microphone. Each reads the shared DroneGroundTruth with
// sensor-appropriate noise, standing in for the Navio2 daughterboard's
// sensor suite (paper §6).
#ifndef SRC_HW_SENSORS_H_
#define SRC_HW_SENSORS_H_

#include <array>

#include "src/hw/device.h"
#include "src/hw/ground_truth.h"
#include "src/util/rng.h"
#include "src/util/sim_clock.h"

namespace androne {

// Canonical device names on the bus.
inline constexpr char kGpsDeviceName[] = "gps";
inline constexpr char kImuDeviceName[] = "imu";
inline constexpr char kBarometerDeviceName[] = "barometer";
inline constexpr char kMagnetometerDeviceName[] = "magnetometer";
inline constexpr char kMicrophoneDeviceName[] = "microphone";

struct GpsFix {
  GeoPoint position;
  NedPoint velocity_ms;
  int satellites = 0;
  bool has_fix = false;
  SimTime timestamp = 0;
};

class GpsReceiver : public HardwareDevice {
 public:
  GpsReceiver(SimClock* clock, const DroneGroundTruth* truth, uint64_t seed);

  // Latest fix as of now; position noise ~1.2 m horizontal CEP.
  StatusOr<GpsFix> ReadFix(ContainerId caller);

  void set_satellites(int n) { satellites_ = n; }
  int satellites() const { return satellites_; }

  // Checkpoint access: the noise stream is world state — a restored world
  // must continue drawing the same sensor noise sequence.
  Rng& checkpoint_rng() { return rng_; }

 private:
  SimClock* clock_;
  const DroneGroundTruth* truth_;
  Rng rng_;
  int satellites_ = 11;
};

struct ImuSample {
  std::array<double, 3> gyro_rads;   // roll, pitch, yaw rates.
  std::array<double, 3> accel_mss;   // body-frame specific force.
  SimTime timestamp = 0;
};

class Imu : public HardwareDevice {
 public:
  Imu(SimClock* clock, const DroneGroundTruth* truth, uint64_t seed);
  StatusOr<ImuSample> ReadSample(ContainerId caller);

  Rng& checkpoint_rng() { return rng_; }

 private:
  SimClock* clock_;
  const DroneGroundTruth* truth_;
  Rng rng_;
};

class Barometer : public HardwareDevice {
 public:
  Barometer(SimClock* clock, const DroneGroundTruth* truth, uint64_t seed);
  // Altitude above home, meters, with ~0.1 m noise.
  StatusOr<double> ReadAltitudeM(ContainerId caller);

  Rng& checkpoint_rng() { return rng_; }

 private:
  SimClock* clock_;
  const DroneGroundTruth* truth_;
  Rng rng_;
};

class Magnetometer : public HardwareDevice {
 public:
  Magnetometer(SimClock* clock, const DroneGroundTruth* truth, uint64_t seed);
  // Heading in radians (0 = north), with small noise.
  StatusOr<double> ReadHeadingRad(ContainerId caller);

  Rng& checkpoint_rng() { return rng_; }

 private:
  SimClock* clock_;
  const DroneGroundTruth* truth_;
  Rng rng_;
};

class Microphone : public HardwareDevice {
 public:
  explicit Microphone(SimClock* clock);
  // Returns |samples| synthetic PCM samples.
  StatusOr<std::vector<int16_t>> Record(ContainerId caller, size_t samples);

  uint64_t checkpoint_phase() const { return phase_; }
  void RestorePhase(uint64_t phase) { phase_ = phase; }

 private:
  SimClock* clock_;
  uint64_t phase_ = 0;
};

inline constexpr char kSpeakerDeviceName[] = "speaker";

// Output side of AudioFlinger's device pair (drones use it for sirens and
// voice prompts in e.g. emergency-assist apps).
class Speaker : public HardwareDevice {
 public:
  Speaker() : HardwareDevice(kSpeakerDeviceName) {}

  // "Plays" |samples| PCM samples (accounted, not rendered).
  Status Play(ContainerId caller, size_t samples);

  uint64_t samples_played() const { return samples_played_; }
  void RestoreSamplesPlayed(uint64_t n) { samples_played_ = n; }

 private:
  uint64_t samples_played_ = 0;
};

}  // namespace androne

#endif  // SRC_HW_SENSORS_H_
