#include "src/exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace androne {

namespace {

// Identifies the pool + worker slot of the current thread so Submit can
// push depth-first onto the submitting worker's own deque.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_worker = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();  // Outstanding work (and anything it spawns) finishes first.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(Task task) {
  size_t target;
  if (tl_pool == this) {
    target = tl_worker;  // Child task: keep it on the spawning worker.
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    target = next_worker_;
    next_worker_ = (next_worker_ + 1) % workers_.size();
  }
  {
    // Count before publishing: a worker that claims the task the instant it
    // lands must find the counters already covering it.
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
    ++queued_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->deque.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

ThreadPool::Task ThreadPool::FindWork(size_t index) {
  // Own deque: newest first (the task most likely still warm in cache).
  {
    Worker& own = *workers_[index];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.deque.empty()) {
      Task task = std::move(own.deque.back());
      own.deque.pop_back();
      std::lock_guard<std::mutex> count_lock(mu_);
      --queued_;
      return task;
    }
  }
  // Steal: oldest first from the next peer over (round the ring), which
  // takes the work its owner would touch last.
  for (size_t k = 1; k < workers_.size(); ++k) {
    Worker& peer = *workers_[(index + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(peer.mu);
    if (!peer.deque.empty()) {
      Task task = std::move(peer.deque.front());
      peer.deque.pop_front();
      std::lock_guard<std::mutex> count_lock(mu_);
      --queued_;
      ++steals_;
      return task;
    }
  }
  return {};
}

void ThreadPool::WorkerLoop(size_t index) {
  tl_pool = this;
  tl_worker = index;
  for (;;) {
    Task task = FindWork(index);
    if (task) {
      task();
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) {
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    if (stopping_ && queued_ == 0) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

uint64_t ThreadPool::steals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steals_;
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::CurrentWorkerIndex() {
  return tl_pool != nullptr ? static_cast<int>(tl_worker) : -1;
}

}  // namespace androne
