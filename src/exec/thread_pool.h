// Work-stealing thread pool for the fleet executor. Each worker owns a
// deque: it pushes/pops its own work LIFO (cache-warm) and steals FIFO from
// other workers when its deque drains (oldest work first, the classic
// Blumofe–Leiserson discipline). Simulation worlds are coarse-grained tasks,
// so per-deque mutexes — not lock-free Chase–Lev deques — are plenty: the
// lock is taken once per task, not per simulated event, and keeps the pool
// trivially TSan-clean.
#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace androne {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Spawns |num_threads| workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();  // Waits for queued work, then joins the workers.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. From a worker thread the task lands on that worker's
  // own deque (depth-first, stealable by idle peers); from outside it is
  // distributed round-robin.
  void Submit(Task task);

  // Blocks until every submitted task (including tasks submitted by tasks)
  // has finished. The pool remains usable afterwards.
  void Wait();

  int size() const { return static_cast<int>(workers_.size()); }

  // Tasks stolen from another worker's deque (visibility into how much the
  // pool actually load-balances).
  uint64_t steals() const;

  // std::thread::hardware_concurrency with a >= 1 guarantee.
  static int HardwareThreads();

  // Index of the pool worker running the current thread, or -1 when called
  // off-pool (e.g. from the submitting thread). Lets the fleet executor map
  // a task to per-worker resources (arena slabs) without threading an index
  // through every task signature.
  static int CurrentWorkerIndex();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
  };

  void WorkerLoop(size_t index);
  // Pops from own deque back, else steals from peers' fronts. Returns an
  // empty function when no work is available anywhere.
  Task FindWork(size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Guards sleep/wake and the outstanding-task count.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Signaled when work arrives / stop.
  std::condition_variable idle_cv_;  // Signaled when outstanding_ hits 0.
  size_t outstanding_ = 0;           // Submitted but not yet finished.
  size_t queued_ = 0;                // Sitting in a deque, not yet claimed.
  size_t next_worker_ = 0;           // Round-robin cursor for external Submit.
  uint64_t steals_ = 0;
  bool stopping_ = false;
};

}  // namespace androne

#endif  // SRC_EXEC_THREAD_POOL_H_
