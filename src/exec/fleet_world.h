// The canonical world the fleet executor runs: one full AnDrone stack
// (device + flight containers, Binder, physics, MAVProxy, VFCs) flying a
// planned multi-tenant route, with the planner downlink pumped as encoded
// MAVLink bytes through a VPN tunnel over a simulated LTE channel. Each
// world is closed over its own SimClock and derives every random choice
// from WorldContext::seed, so a world's digest depends only on
// (config, seed) — never on which thread ran it.
#ifndef SRC_EXEC_FLEET_WORLD_H_
#define SRC_EXEC_FLEET_WORLD_H_

#include "src/exec/fleet_executor.h"

namespace androne {

struct FleetWorldConfig {
  // Direct-access tenants deployed per world, each with one waypoint placed
  // pseudo-randomly (from the world seed) around the base.
  int tenants = 2;
  double dwell_s = 20;          // Planner service time per stop.
  double waypoint_spread_m = 120;  // Max NED offset of tenant waypoints.
  int annealing_iterations = 600;  // Planner effort (sec66 uses 4000).
};

// Runs one world to completion (or early abort on fleet cancellation) and
// returns its result: events_run from the world SimClock, a digest mixing
// the flight log with the downlink latency histogram, per-world counters
// (waypoints, battery, downlink frames/bytes), and the downlink latency
// histogram keyed "downlink_latency_us".
WorldResult RunFleetWorld(const FleetWorldConfig& config,
                          const WorldContext& ctx);

// Convenience adapter for FleetExecutor::Run.
WorldFn MakeFleetWorld(const FleetWorldConfig& config = {});

}  // namespace androne

#endif  // SRC_EXEC_FLEET_WORLD_H_
