// The canonical world the fleet executor runs: one full AnDrone stack
// (device + flight containers, Binder, physics, MAVProxy, VFCs) flying a
// planned multi-tenant route, with the planner downlink pumped as encoded
// MAVLink bytes through a VPN tunnel over a simulated LTE channel. Each
// world is closed over its own SimClock and derives every random choice
// from WorldContext::seed, so a world's digest depends only on
// (config, seed) — never on which thread ran it.
#ifndef SRC_EXEC_FLEET_WORLD_H_
#define SRC_EXEC_FLEET_WORLD_H_

#include "src/exec/fleet_executor.h"

namespace androne {

class TraceRecorder;

struct FleetWorldConfig {
  // Direct-access tenants deployed per world, each with one waypoint placed
  // pseudo-randomly (from the world seed) around the base.
  int tenants = 2;
  double dwell_s = 20;          // Planner service time per stop.
  double waypoint_spread_m = 120;  // Max NED offset of tenant waypoints.
  int annealing_iterations = 600;  // Planner effort (sec66 uses 4000).
  // Data-path fast paths (DESIGN.md §10). Defaults are the production
  // configuration; the legacy paths stay selectable for A/B benches.
  bool sensor_bus = true;       // Flight stack reads the snapshot bus.
  bool batch_telemetry = true;  // Coalesce planner downlink datagrams.
  size_t batch_flush_bytes = 512;
  int batch_flush_ms = 25;
  // 0 = board default (admits 3 virtual drones, per paper Figure 12);
  // tenant sweeps past 3 raise it to model a larger cloud host.
  double memory_budget_mb = 0;
  // Structured tracing (DESIGN.md §11): OR of kTrace* category bits; 0
  // runs the world untraced (the production default — every site then
  // costs one branch). When nonzero the world owns a private
  // TraceRecorder and returns its text export in WorldResult::trace_text.
  uint32_t trace_categories = 0;
  size_t trace_capacity = 1 << 14;  // Ring slots per traced world.
  // Caller-owned recorder for single-world runs (benches exporting Chrome
  // JSON). When set it overrides trace_categories/trace_capacity, the world
  // binds it to its clock, and the caller does its own exports. Never share
  // one recorder across concurrent worlds — recorders are not thread-safe.
  TraceRecorder* trace = nullptr;
};

// Runs one world to completion (or early abort on fleet cancellation) and
// returns its result: events_run from the world SimClock, a digest mixing
// the flight log with the downlink latency histogram, per-world counters
// (waypoints, battery, downlink frames/bytes), and the downlink latency
// histogram keyed "downlink_latency_us".
WorldResult RunFleetWorld(const FleetWorldConfig& config,
                          const WorldContext& ctx);

// Convenience adapter for FleetExecutor::Run.
WorldFn MakeFleetWorld(const FleetWorldConfig& config = {});

}  // namespace androne

#endif  // SRC_EXEC_FLEET_WORLD_H_
