// The canonical world the fleet executor runs: one full AnDrone stack
// (device + flight containers, Binder, physics, MAVProxy, VFCs) flying a
// planned multi-tenant route, with the planner downlink pumped as encoded
// MAVLink bytes through a VPN tunnel over a simulated LTE channel. Each
// world is closed over its own SimClock and derives every random choice
// from WorldContext::seed, so a world's digest depends only on
// (config, seed) — never on which thread ran it.
#ifndef SRC_EXEC_FLEET_WORLD_H_
#define SRC_EXEC_FLEET_WORLD_H_

#include <vector>

#include "src/container/supervisor.h"
#include "src/exec/fleet_executor.h"
#include "src/hw/sensor_faults.h"
#include "src/net/fault_injector.h"
#include "src/net/link_model.h"
#include "src/snapshot/checkpoint.h"

namespace androne {

class ReplayLogStore;
class TraceRecorder;
class WorldTemplateCache;

// Scripted crash-loop chaos: a payload virtual-drone container is crashed
// |count| times, the first at |start_s| then every |period_s|, while a
// world-owned ContainerSupervisor restarts it with backoff and gives up
// after |max_restarts| consecutive failures. The container is a bystander
// (no tenant runs in it) — the axis exercises supervision and isolation,
// not the flight.
struct CrashLoopConfig {
  int count = 0;  // 0 disables the axis.
  double start_s = 5;
  double period_s = 10;
  int max_restarts = 5;

  bool enabled() const { return count > 0; }
};

// One tenant's explicit waypoint placement for cohort flights (DESIGN.md
// §16): NED offset from the fleet base plus the planner dwell at the stop.
struct TenantPlacement {
  double north_m = 0;
  double east_m = 0;
  double dwell_s = 20;
};

struct FleetWorldConfig {
  // Direct-access tenants deployed per world, each with one waypoint placed
  // pseudo-randomly (from the world seed) around the base.
  int tenants = 2;
  double dwell_s = 20;          // Planner service time per stop.
  double waypoint_spread_m = 120;  // Max NED offset of tenant waypoints.
  // Explicit per-tenant waypoint placements (the control plane's cohort
  // flights, DESIGN.md §16). Empty (the default) keeps the seed-drawn
  // scatter above; when non-empty the size must equal |tenants| and tenant
  // i flies to placements[i] with placements[i].dwell_s, so a shard fleet
  // manager can fly the waypoints its tenants actually ordered.
  std::vector<TenantPlacement> tenant_placements;
  int annealing_iterations = 600;  // Planner effort (sec66 uses 4000).
  // Data-path fast paths (DESIGN.md §10). Defaults are the production
  // configuration; the legacy paths stay selectable for A/B benches.
  bool sensor_bus = true;       // Flight stack reads the snapshot bus.
  bool batch_telemetry = true;  // Coalesce planner downlink datagrams.
  size_t batch_flush_bytes = 512;
  int batch_flush_ms = 25;
  // 0 = board default (admits 3 virtual drones, per paper Figure 12);
  // tenant sweeps past 3 raise it to model a larger cloud host.
  double memory_budget_mb = 0;
  // Structured tracing (DESIGN.md §11): OR of kTrace* category bits; 0
  // runs the world untraced (the production default — every site then
  // costs one branch). When nonzero the world owns a private
  // TraceRecorder and returns its text export in WorldResult::trace_text.
  uint32_t trace_categories = 0;
  size_t trace_capacity = 1 << 14;  // Ring slots per traced world.
  // Caller-owned recorder for single-world runs (benches exporting Chrome
  // JSON). When set it overrides trace_categories/trace_capacity, the world
  // binds it to its clock, and the caller does its own exports. Never share
  // one recorder across concurrent worlds — recorders are not thread-safe.
  TraceRecorder* trace = nullptr;

  // --- Chaos axes (the scenario DSL's fault surface) ---
  // Which link regime carries the planner downlink.
  LinkProfile downlink_profile = LinkProfile::kCellularLte;
  // Scripted network faults applied to the downlink (forward direction).
  // Borrowed; must outlive the run. nullptr = no network chaos.
  const FaultPlan* net_faults = nullptr;
  // Scripted sensor faults applied to every flight-stack sensor read.
  // Borrowed; must outlive the run. nullptr = no sensor chaos.
  const SensorFaultPlan* sensor_faults = nullptr;
  // Crash-loop chaos on a payload container (see CrashLoopConfig).
  CrashLoopConfig crash_loop;
  // --- Checkpoint/restore + crash recovery (DESIGN.md §13) ---
  // When the world captures checkpoints of its complete state. Disabled by
  // default (captures are pure reads of world state, but plain benches
  // shouldn't pay for serialization they never restore from).
  CheckpointPolicy checkpoint{/*period_s=*/0, /*at_phase_boundaries=*/false};
  // The crash fault family: at each listed sim-time (seconds) the world
  // process dies mid-flight — the mission driver stops at the next 100 ms
  // chunk boundary and the recovery loop rebuilds the world, restores the
  // latest checkpoint, and replays (or replays from boot when no
  // checkpoint exists yet). The recovered world's digest, trace, and
  // metrics are bit-identical to the uninterrupted run at the same seed.
  // Crashes land only while the mission driver is pumping (checkpoints and
  // crash detection both live in the mission pulse).
  std::vector<double> crash_at_s;
  // Restore-with-backoff discipline for crashed worlds. Backoff delays are
  // recorded per episode, never slept — sleeping simulated time inside the
  // restored timeline would break the bit-identical-replay guarantee.
  RestorePolicy restore;
  // Deploy rejections (memory admission) become the tenants_rejected
  // counter instead of failing the world — the memory-pressure scenarios
  // assert on the admitted/rejected split (paper Figure 12), so a rejected
  // tenant is data, not an error.
  bool tolerate_deploy_rejection = false;

  // --- Boot-once/fork-many world cloning (DESIGN.md §14) ---
  // Shared template cache (borrowed, may be null; must outlive the run).
  // When set, the first world per boot-fingerprint cold-boots the stack,
  // snapshots it at the post-boot/pre-deploy boundary, and publishes the
  // blob; every later world with the same fingerprint restores from the
  // blob instead of re-running boot + sensor warmup. Per-world RNG streams
  // are re-seeded from WorldContext::seed at that boundary on BOTH paths,
  // so a cloned world is digest-identical to a cold-booted one.
  WorldTemplateCache* templates = nullptr;
  // Publish per-world provisioning metrics (world.boot_ns, world.clone_ns,
  // arena.bytes_reserved, arena.chunks) into WorldResult::metrics. Off by
  // default: these are wall-clock/placement values, and per-world metrics
  // must stay deterministic for the cross-thread-count digest contract.
  bool provision_metrics = false;

  // --- Record-once replay engine (DESIGN.md §15) ---
  // Record: each world serializes its continuous flight plane (per-tick
  // estimator outputs + ground truth + wake latency), the planned route,
  // and an expected-outcome footer into this store, keyed by the world's
  // own seed. Borrowed, thread-safe, must outlive the run.
  ReplayLogStore* record_into = nullptr;
  // Replay: each world loads its log by seed and runs the fast path —
  // sensor synthesis, estimator filtering, the attitude cascade, physics
  // integration, and planner annealing are all skipped; the discrete layer
  // re-executes live and the result is asserted bit-identical via the
  // footer (WorldResult::Replay::digest_match). A missing log or a
  // seed/fingerprint mismatch is an infrastructure failure. Both stores
  // may be set at once (record-during-replay reproduces the log bytes —
  // the fixed-point property). Incompatible with crash_at_s: a recovery
  // loop re-runs ticks, which would duplicate or desynchronize the log.
  const ReplayLogStore* replay_from = nullptr;
  // Fork-and-explore: restore this checkpoint blob (borrowed; captured by
  // an earlier run of the SAME config + seed) on top of the freshly built
  // world and resume the mission from it. fork_reseed != 0 re-seeds every
  // RNG stream at the fork point for a divergent what-if branch; 0 keeps
  // the original streams, making the continuation bit-identical to the
  // recorded run's tail (the control branch).
  const std::string* fork_blob = nullptr;
  uint64_t fork_reseed = 0;
  // Caller-owned checkpoint store. When set, checkpoints persist here (so
  // fork-and-explore can harvest decision-point blobs after the run)
  // instead of a run-local store. Borrowed; must outlive the run.
  CheckpointStore* checkpoint_sink = nullptr;
  // --speed governor: sim seconds per wall second, paced at the mission
  // pulse. 0 (default) = unthrottled. Pacing only ever sleeps the worker;
  // it never touches the SimClock, so digests are identical at any speed.
  double speed = 0;
};

// Runs one world to completion (or early abort on fleet cancellation) and
// returns its result: events_run from the world SimClock, a digest mixing
// the flight log with the downlink latency histogram, per-world counters
// (waypoints, battery, downlink frames/bytes), and the downlink latency
// histogram keyed "downlink_latency_us".
WorldResult RunFleetWorld(const FleetWorldConfig& config,
                          const WorldContext& ctx);

// Convenience adapter for FleetExecutor::Run.
WorldFn MakeFleetWorld(const FleetWorldConfig& config = {});

}  // namespace androne

#endif  // SRC_EXEC_FLEET_WORLD_H_
