// FleetExecutor: runs N independent simulation worlds across a work-stealing
// thread pool. AnDrone's single-drone stack is deterministic on one SimClock;
// fleets of device+virtual-drone worlds are embarrassingly parallel (cf.
// ArduPilot SITL farms and batched RL simulators), so the executor's job is
// purely (a) distributing whole worlds to workers, (b) guaranteeing that
// per-world results are bit-identical regardless of thread count, and
// (c) merging per-world histograms/counters into one fleet report.
//
// Determinism contract:
//   - every world receives a seed derived only from (base_seed, world index)
//     via SplitMix64, never from scheduling order or thread identity;
//   - a world owns its entire stack — SimClock, RNGs, containers, flight
//     stack — and shares nothing mutable with other worlds;
//   - the merge stage folds results in world-index order after all worlds
//     finish, so merged histograms and the fleet digest are thread-count
//     invariant too.
#ifndef SRC_EXEC_FLEET_EXECUTOR_H_
#define SRC_EXEC_FLEET_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/histogram.h"

namespace androne {

class Arena;

// Everything a world function receives. Worlds must derive all randomness
// from |seed| and poll |cancelled| at convenient boundaries (e.g. a periodic
// sim-clock event) to honor the fleet's wall-clock budget.
struct WorldContext {
  int index = 0;
  uint64_t seed = 0;
  const std::atomic<bool>* cancelled = nullptr;
  // Per-worker bump allocator (borrowed, may be null): the executor resets
  // it between the worlds a worker runs, so world-lifetime containers
  // (event heap, trace ring, in-flight registries, parcel scratch) can
  // carve from warm slabs instead of the global allocator (DESIGN.md §14).
  // Never simulation-visible: allocation placement must not affect digests.
  Arena* arena = nullptr;

  bool ShouldCancel() const {
    return cancelled != nullptr && cancelled->load(std::memory_order_relaxed);
  }
};

// What a world hands back. Histograms are keyed by name so heterogeneous
// worlds can still merge; counters are plain name -> value sums.
struct WorldResult {
  int index = 0;
  uint64_t seed = 0;
  // False when the world was skipped (budget exhausted before start) or
  // bailed out early on cancellation.
  bool completed = false;
  // True only for budget-skipped worlds that never ran; distinguishes them
  // from worlds that started and cancelled mid-flight (both have
  // completed == false, but a skipped world produced no data at all).
  bool skipped = false;
  // True when the world failed to come up at all — boot, chaos-payload
  // start, a non-tolerated deploy rejection, a planner failure, or a
  // checkpoint that would not restore. Infrastructure failures are not
  // scenario outcomes: the executor retries such worlds once (with a short
  // wall-clock backoff) and counts the retry in "fleet.worlds_retried"
  // instead of folding the world into the skipped bucket.
  bool infra_failure = false;
  // Crash-recovery bookkeeping (DESIGN.md §13). Deliberately kept out of
  // |counters|, |metrics|, and both digests: a crashed-and-recovered world
  // must be bit-identical to its uninterrupted twin everywhere that merges
  // or digests, so recovery telemetry rides in this side struct only.
  struct Recovery {
    int crashes = 0;            // Scheduled crash events that landed.
    int restores = 0;           // Checkpoint restores performed.
    int replays_from_boot = 0;  // Crashes recovered with no checkpoint yet.
    int checkpoints_saved = 0;  // Checkpoints captured across all attempts.
    uint64_t checkpoint_bytes = 0;  // Size of the latest checkpoint blob.
    bool fixed_point_ok = true;     // save→restore→save byte equality held.
    bool gave_up = false;           // Restore budget exhausted; world down.
  };
  Recovery recovery;
  // Boot-provisioning bookkeeping (DESIGN.md §14). Same discipline as
  // |Recovery|: wall-clock timings and template-placement attribution are
  // scheduling-dependent, so they ride in a side struct that is excluded
  // from |counters|, |metrics|, and both digests. The deterministic
  // aggregate (template hits/misses per fleet) is published by the caller
  // that owns the WorldTemplateCache, not per world.
  struct Provision {
    bool cloned = false;       // Restored from a world template blob.
    bool built_template = false;  // This world cold-booted + published it.
    uint64_t boot_ns = 0;      // Wall time to a deployed, mission-ready world.
    uint64_t fly_ns = 0;       // Wall time spent flying the mission.
    uint64_t arena_bytes_reserved = 0;  // Worker arena footprint after run.
    uint64_t arena_chunks = 0;
  };
  Provision provision;
  // Record/replay bookkeeping (DESIGN.md §15). Same discipline as
  // |Recovery| and |Provision|: a replayed world must be bit-identical to
  // the run that recorded it everywhere that merges or digests, so replay
  // telemetry (log sizes, tick counts, the digest-match verdict, governor
  // pacing) rides in this side struct only.
  struct Replay {
    bool recorded = false;   // This run produced a replay log.
    bool replayed = false;   // This run was driven from a replay log.
    // Replay only: digest, flight digest, metrics digest, trace hash, and
    // completion all matched the recording run's footer.
    bool digest_match = false;
    uint64_t log_bytes = 0;
    uint64_t ticks = 0;       // Ticks recorded (record) / installed (replay).
    uint64_t underruns = 0;   // Replay ticks the log ran dry (live fallback).
    // --speed governor pacing (0 when unthrottled).
    int64_t governor_slept_us = 0;
    int64_t governor_sleeps = 0;
  };
  Replay replay;
  // Scenario identity and per-assertion failures, filled by campaign runs
  // (empty for plain fleet benches). Assertions are canonical expression
  // strings — triage buckets key on them.
  std::string scenario;
  std::vector<std::string> failed_assertions;
  uint64_t events_run = 0;  // SimClock events the world executed.
  uint64_t digest = 0;      // World-defined determinism digest.
  // Digest of the physical flight alone (attitude log), excluding transport
  // counters: telemetry batching repacks datagrams, which legitimately moves
  // |digest|, but must never move the flight itself.
  uint64_t flight_digest = 0;
  std::map<std::string, double> counters;
  std::map<std::string, Histogram> histograms;
  // Structured per-world metrics (DESIGN.md §11); empty unless the world
  // filled a MetricsRegistry. Merged fleet-wide in index order.
  MetricsSnapshot metrics;
  // Deterministic text export of the world's trace ring; empty when the
  // world ran with tracing off.
  std::string trace_text;
};

using WorldFn = std::function<WorldResult(const WorldContext&)>;

// The merged fleet outcome. |worlds| is always indexed 0..n-1 in world
// order, independent of completion order.
struct FleetReport {
  std::vector<WorldResult> worlds;
  int completed = 0;
  int cancelled = 0;  // Skipped or early-exited worlds.
  // Subset of |cancelled| that never ran at all (budget spent before their
  // turn). Also published as the "fleet.worlds_skipped" counter in
  // |metrics| so downstream consumers can't conflate "ran 200 worlds" with
  // "ran 120 and silently dropped 80".
  int skipped = 0;
  // Worlds that reported an infrastructure failure and were re-run once.
  // Also published as the "fleet.worlds_retried" counter in |metrics|.
  int retried = 0;
  // Provisioning rollup across |worlds| (from the Provision side structs;
  // wall-clock, excluded from |metrics| and the digest like |wall_seconds|).
  int worlds_cloned = 0;
  int templates_built = 0;
  double boot_seconds = 0;  // Summed across worlds (not wall-parallel time).
  double fly_seconds = 0;
  uint64_t events_run = 0;
  std::map<std::string, double> counters;
  std::map<std::string, Histogram> histograms;
  // Per-world metric snapshots folded in world-index order (counters sum,
  // gauges last-world-wins, histograms merge).
  MetricsSnapshot metrics;
  // FNV chain over (index, digest) of completed worlds in index order:
  // equal fleet configs must produce equal fleet digests at any thread
  // count.
  uint64_t fleet_digest = 0;
  double wall_seconds = 0;
};

struct FleetOptions {
  int threads = 1;          // Worker threads (clamped to >= 1).
  uint64_t base_seed = 1;   // Root of every per-world seed.
  // Wall-clock budget for the whole fleet, milliseconds; 0 = unlimited.
  // When it expires the cancel flag trips: unstarted worlds are skipped,
  // running worlds see ShouldCancel() and wind down early.
  int64_t wall_budget_ms = 0;
};

class FleetExecutor {
 public:
  explicit FleetExecutor(FleetOptions options);

  // The seed world |index| gets under |base_seed| — exposed so tests and
  // single-world reproductions can replay one world of a fleet.
  static uint64_t WorldSeed(uint64_t base_seed, int index);

  // Runs |num_worlds| invocations of |fn| across the pool and merges the
  // results. Blocking; reusable (each Run is independent).
  FleetReport Run(int num_worlds, const WorldFn& fn);

  // Trips the cancel flag of the Run in progress (callable from any thread,
  // e.g. an operator abort). The flag is also tripped by the wall budget.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

 private:
  FleetOptions options_;
  std::atomic<bool> cancel_{false};
};

}  // namespace androne

#endif  // SRC_EXEC_FLEET_EXECUTOR_H_
