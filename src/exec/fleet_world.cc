#include "src/exec/fleet_world.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/container/supervisor.h"
#include "src/core/drone.h"
#include "src/flight/flight_log.h"
#include "src/net/channel.h"
#include "src/net/link_model.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/bytes.h"

namespace androne {

namespace {

// All worlds launch from the same base; variation between worlds comes only
// from the seed (waypoint placement, link noise, sensor noise).
const GeoPoint kFleetBase{43.6084298, -85.8110359, 0};

VirtualDroneDefinition MakeTenant(int index, const GeoPoint& waypoint,
                                  double dwell_s) {
  VirtualDroneDefinition def;
  def.id = "vd-" + std::to_string(index);
  def.owner = "tenant-" + std::to_string(index);
  def.waypoints = {WaypointSpec{waypoint, 60}};
  def.max_duration_s = dwell_s + 10;
  def.energy_allotted_j = 45000;
  def.waypoint_devices = {"camera", "gps", "flight-control"};
  return def;
}

}  // namespace

WorldResult RunFleetWorld(const FleetWorldConfig& config,
                          const WorldContext& ctx) {
  WorldResult result;
  result.index = ctx.index;
  result.seed = ctx.seed;

  SimClock clock;

  // Tracing is strictly per world: the recorder lives on this stack frame
  // (or is caller-owned for single-world bench runs), shares nothing with
  // sibling worlds, and its export rides back on the WorldResult — so
  // traced fleets stay thread-count invariant.
  std::unique_ptr<TraceRecorder> owned_trace;
  TraceRecorder* trace = config.trace;
  if (trace == nullptr && config.trace_categories != 0) {
    owned_trace = std::make_unique<TraceRecorder>(config.trace_categories,
                                                  config.trace_capacity);
    trace = owned_trace.get();
  }
  if (trace != nullptr) {
    trace->BindClock(&clock);
    AttachClockTrace(&clock, trace);
  }

  AnDroneOptions options;
  options.base = kFleetBase;
  options.seed = ctx.seed;
  options.use_sensor_bus = config.sensor_bus;
  options.memory_budget_mb = config.memory_budget_mb;
  options.trace = trace;
  options.sensor_faults = config.sensor_faults;
  AnDroneSystem system(&clock, options);
  if (!system.Boot().ok()) {
    return result;
  }
  if (config.batch_telemetry) {
    TelemetryBatchConfig batch;
    batch.flush_bytes = config.batch_flush_bytes;
    batch.flush_after = Millis(config.batch_flush_ms);
    system.proxy().EnableTelemetryBatching(batch);
  }

  // Tenant waypoints scatter around the base, drawn from a world-private
  // stream so two worlds with different seeds fly different routes.
  Rng placement(SplitMix64(ctx.seed ^ 0x57a9c0ffee));
  std::vector<VirtualDroneInstance*> tenants;
  std::vector<PlannerJob> jobs;
  int tenants_rejected = 0;
  for (int i = 0; i < config.tenants; ++i) {
    double north = placement.Uniform(-config.waypoint_spread_m,
                                     config.waypoint_spread_m);
    double east = placement.Uniform(-config.waypoint_spread_m,
                                    config.waypoint_spread_m);
    GeoPoint waypoint = FromNed(kFleetBase, NedPoint{north, east, -15});
    auto deployed =
        system.Deploy(MakeTenant(i, waypoint, config.dwell_s),
                      WhitelistTemplate::kStandard);
    if (!deployed.ok()) {
      if (config.tolerate_deploy_rejection) {
        // Memory-pressure scenarios assert on this split (paper Figure 12):
        // the admission rejection is the datum, not a world failure.
        ++tenants_rejected;
        continue;
      }
      return result;
    }
    tenants.push_back(*deployed);
    PlannerJob job;
    job.vdrone_id = i;
    job.vdrone_ref = "vd-" + std::to_string(i);
    job.waypoint = waypoint;
    job.service_energy_j = 170.0 * config.dwell_s;
    job.service_time_s = config.dwell_s;
    jobs.push_back(job);
  }

  // Crash-loop chaos: a bystander payload container crashed on schedule,
  // supervised (backoff restarts, give-up) by a world-owned supervisor.
  // Isolation means the flight must not notice.
  std::unique_ptr<ContainerSupervisor> chaos_supervisor;
  if (config.crash_loop.enabled()) {
    auto payload = system.runtime().CreateContainer(
        "chaos-payload", ContainerKind::kVirtualDrone, system.base_image());
    if (!payload.ok() ||
        !system.runtime().StartContainer((*payload)->id()).ok()) {
      return result;
    }
    SupervisorPolicy policy;
    policy.max_consecutive_restarts = config.crash_loop.max_restarts;
    chaos_supervisor = std::make_unique<ContainerSupervisor>(
        &clock, &system.runtime(), policy, SplitMix64(ctx.seed ^ 0xc4a5));
    ContainerId payload_id = (*payload)->id();
    chaos_supervisor->Watch(payload_id);
    for (int k = 0; k < config.crash_loop.count; ++k) {
      SimDuration at = SecondsF(config.crash_loop.start_s +
                                k * config.crash_loop.period_s);
      clock.ScheduleAfter(at, [&system, payload_id] {
        // A crash only lands on a running life; between backoff and restart
        // the container is already down and the scheduled crash is a no-op.
        (void)system.runtime().CrashContainer(payload_id);
      });
    }
  }

  // Planner downlink: telemetry fanned to the planner endpoint is encoded
  // into MAVProxy's reused wire scratch, VPN-encapsulated, and shipped over
  // a seeded link channel — the §6.5 ground path, per world. The scenario's
  // link profile picks the regime; a fault plan decorates it with scripted
  // outage/burst-loss/latency windows.
  std::unique_ptr<LinkModel> link = MakeLinkModel(config.downlink_profile);
  std::unique_ptr<FaultyLinkModel> faulty_link;
  LinkModel* downlink_model = link.get();
  if (config.net_faults != nullptr) {
    faulty_link = std::make_unique<FaultyLinkModel>(
        link.get(), config.net_faults, &clock, LinkDirection::kForward);
    downlink_model = faulty_link.get();
  }
  NetworkChannel downlink(&clock, downlink_model,
                          SplitMix64(ctx.seed + 0x11e7));
  VpnTunnel tunnel_tx(&downlink, 42);
  VpnTunnel tunnel_rx(&downlink, 42);
  if (trace != nullptr) {
    downlink.SetTrace(trace);
    tunnel_tx.SetTrace(trace);
    tunnel_rx.SetTrace(trace);
  }
  uint64_t frames_down = 0;
  uint64_t bytes_down = 0;
  tunnel_rx.SetReceiver([&](const std::vector<uint8_t>& bytes) {
    ++frames_down;
    bytes_down += bytes.size();
  });
  system.proxy().SetPlannerWireSink(
      [&](const std::vector<uint8_t>& bytes) { tunnel_tx.Send(bytes); });

  // Cooperative fleet cancellation: a once-per-sim-second clock event polls
  // the shared flag and aborts the flight (RTL + resumable saves) when the
  // fleet budget expires or an operator cancels.
  std::function<void()> poll_cancel = [&] {
    if (ctx.ShouldCancel()) {
      system.RequestAbort("fleet cancelled");
      return;
    }
    clock.ScheduleAfter(Seconds(1), poll_cancel);
  };
  clock.ScheduleAfter(Seconds(1), poll_cancel);

  FlightExecutionReport flight_report;
  bool flight_ok = true;
  if (!jobs.empty()) {
    EnergyModel energy;
    PlannerConfig pc;
    pc.depot = kFleetBase;
    pc.fleet_size = 1;
    pc.annealing_iterations = config.annealing_iterations;
    FlightPlanner planner(energy, pc);
    auto plan = planner.Plan(jobs);
    if (!plan.ok() || plan->routes.empty()) {
      return result;
    }

    auto flight = system.ExecuteRoute(plan->routes[0], jobs);
    if (flight.ok()) {
      flight_report = std::move(*flight);
    } else {
      // A flight abort (safety cutoff under sensor chaos, battery floor,
      // mission timeout) is a scenario outcome, not an infrastructure
      // failure: the world still drains, exports counters/metrics/trace,
      // and reports completed = false — triage needs the faulted world's
      // trace to diff against its nominal twin.
      flight_ok = false;
    }
  } else {
    // Every tenant was rejected at admission (memory-pressure scenarios
    // with tolerate_deploy_rejection): no route to fly, but the world still
    // completes — the admitted/rejected split is its result. Run a few
    // simulated seconds so scheduled chaos (crash loops) plays out.
    system.RunClockUntil([] { return false; }, Seconds(30));
  }
  // Drain the downlink: flush any residual telemetry batch and run one more
  // simulated second so in-flight datagrams reach the receiver before the
  // counters and latency histogram are read.
  system.proxy().FlushTelemetryBatch();
  system.RunClockUntil([] { return false; }, Seconds(1));

  result.completed = flight_ok && !system.abort_requested();
  result.events_run = clock.events_run();
  result.counters["waypoints_visited"] =
      static_cast<double>(flight_report.waypoints_visited);
  result.counters["flight_time_s"] = flight_report.flight_time_s;
  result.counters["battery_used_j"] = flight_report.battery_used_j;
  result.counters["tenants_admitted"] = static_cast<double>(tenants.size());
  result.counters["tenants_rejected"] = static_cast<double>(tenants_rejected);
  result.counters["downlink_frames"] = static_cast<double>(frames_down);
  result.counters["downlink_bytes"] = static_cast<double>(bytes_down);
  result.counters["downlink_lost"] = static_cast<double>(downlink.lost());
  result.counters["downlink_flushes"] =
      static_cast<double>(system.proxy().wire_flushes());
  result.counters["wire_frames"] =
      static_cast<double>(system.proxy().wire_frames());
  result.histograms["downlink_latency_us"] = downlink.latency_us();

  // Structured metrics snapshot (DESIGN.md §11): scraped once at the world
  // boundary, merged fleet-wide in index order by FleetExecutor.
  {
    BinderDriver* binder = system.runtime().binder();
    MetricsRegistry metrics;
    metrics.Add("world.events_run", static_cast<double>(clock.events_run()));
    metrics.Add("binder.txns",
                static_cast<double>(binder->transaction_count()));
    metrics.Add("binder.txns_fast_path",
                static_cast<double>(binder->fast_path_transactions()));
    metrics.Add("binder.txns_translated",
                static_cast<double>(binder->translated_transactions()));
    metrics.Add("mav.wire_frames",
                static_cast<double>(system.proxy().wire_frames()));
    metrics.Add("mav.wire_flushes",
                static_cast<double>(system.proxy().wire_flushes()));
    metrics.Add("net.downlink_frames", static_cast<double>(frames_down));
    metrics.Add("net.downlink_bytes", static_cast<double>(bytes_down));
    metrics.Add("net.downlink_lost", static_cast<double>(downlink.lost()));
    metrics.Add("rt.fast_loops",
                static_cast<double>(system.flight().fast_loop_count()));
    metrics.Add("rt.deadline_misses",
                static_cast<double>(system.flight().missed_deadlines()));
    metrics.Set("container.memory_mb", system.runtime().MemoryUsageMb());
    metrics.Hist("downlink_latency_us").Merge(downlink.latency_us());
    if (trace != nullptr) {
      metrics.Add("trace.recorded", static_cast<double>(trace->recorded()));
      metrics.Add("trace.dropped", static_cast<double>(trace->dropped()));
    }
    metrics.Add("fleet.tenants_admitted", static_cast<double>(tenants.size()));
    metrics.Add("fleet.tenants_rejected",
                static_cast<double>(tenants_rejected));
    if (faulty_link != nullptr) {
      metrics.Add("net.outage_losses",
                  static_cast<double>(faulty_link->counters().outage_losses));
      metrics.Add("net.burst_losses",
                  static_cast<double>(faulty_link->counters().burst_losses));
      metrics.Add(
          "net.inflated_samples",
          static_cast<double>(faulty_link->counters().inflated_samples));
    }
    if (const SensorFaultInjector* inj = system.sensor_fault_injector()) {
      metrics.Add("sensor.dropouts",
                  static_cast<double>(inj->counters().dropouts));
      metrics.Add("sensor.stuck_reads",
                  static_cast<double>(inj->counters().stuck_reads));
      metrics.Add("sensor.corrupted_reads",
                  static_cast<double>(inj->counters().corrupted_reads));
    }
    {
      const auto& episodes = system.flight().safety().episodes();
      int cutoffs = 0;
      int deepest = 0;
      for (const SafetyEpisode& episode : episodes) {
        deepest = std::max(deepest, static_cast<int>(episode.deepest));
        if (episode.deepest == SafetyStage::kCutoff) {
          ++cutoffs;
        }
      }
      metrics.Add("safety.episodes", static_cast<double>(episodes.size()));
      metrics.Add("safety.cutoffs", static_cast<double>(cutoffs));
      metrics.Add("safety.deepest_stage", static_cast<double>(deepest));
    }
    if (chaos_supervisor != nullptr) {
      chaos_supervisor->ExportMetrics(metrics);
    }
    result.metrics = metrics.Snapshot();
  }
  // A caller-owned recorder is exported by the caller; only a world-owned
  // recorder's export rides back on the result.
  if (owned_trace != nullptr) {
    result.trace_text = owned_trace->ExportText();
  }

  // The determinism digest covers the physical flight (every logged attitude
  // sample) and the downlink latency distribution: if either diverges across
  // thread counts, fleet digests split. The flight digest is also exported
  // on its own — it must be invariant to transport-level choices like
  // telemetry batching, which legitimately change the full digest.
  result.flight_digest = FlightLogDigest(system.flight().flight_log());
  uint64_t digest = result.flight_digest;
  digest = Fnv1a64Value(downlink.latency_us().Digest(), digest);
  digest = Fnv1a64Value(frames_down, digest);
  digest = Fnv1a64Value(bytes_down, digest);
  result.digest = digest;
  return result;
}

WorldFn MakeFleetWorld(const FleetWorldConfig& config) {
  return [config](const WorldContext& ctx) {
    return RunFleetWorld(config, ctx);
  };
}

}  // namespace androne
