#include "src/exec/fleet_world.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/binder/parcel.h"
#include "src/cloud/energy_model.h"
#include "src/cloud/flight_planner.h"
#include "src/container/supervisor.h"
#include "src/core/drone.h"
#include "src/exec/world_template.h"
#include "src/flight/flight_log.h"
#include "src/net/channel.h"
#include "src/net/link_model.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/replay/replay_log.h"
#include "src/snapshot/checkpoint.h"
#include "src/util/arena.h"
#include "src/util/bytes.h"
#include "src/util/fault_plan.h"
#include "src/util/logging.h"
#include "src/util/time_governor.h"

namespace androne {

namespace {

// All worlds launch from the same base; variation between worlds comes only
// from the seed (waypoint placement, link noise, sensor noise).
const GeoPoint kFleetBase{43.6084298, -85.8110359, 0};

VirtualDroneDefinition MakeTenant(int index, const GeoPoint& waypoint,
                                  double dwell_s) {
  VirtualDroneDefinition def;
  def.id = "vd-" + std::to_string(index);
  def.owner = "tenant-" + std::to_string(index);
  def.waypoints = {WaypointSpec{waypoint, 60}};
  def.max_duration_s = dwell_s + 10;
  def.energy_allotted_j = 45000;
  def.waypoint_devices = {"camera", "gps", "flight-control"};
  return def;
}

// The boot seed every template-family member boots with (DESIGN.md §14).
// A run-stable constant, deliberately NOT derived from the per-world seed
// or the fingerprint: boot-time RNG draws (warmup sensor noise) must be
// identical for every member so the post-boot state is family-wide shared;
// per-world divergence starts at ReseedStreams(world_seed) at the boundary.
constexpr uint64_t kCanonicalBootSeed = 0x5eedb007'0a11ce5dull;

// Wall-clock nanoseconds since an arbitrary epoch (provisioning telemetry
// only — never folded into anything deterministic).
uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Sensor warmup horizon: Boot runs the clock this long before the mission
// boundary, so only fault windows that can overlap [0, 2 s) shape the
// template's post-boot state.
constexpr SimTime kWarmupHorizon = Seconds(2);

// Keys the template cache: ONLY config knobs that act before the
// post-boot/pre-deploy boundary fold in. Everything that acts after the
// boundary (tenants, dwell, planner effort, batching, downlink profile,
// net faults, crash schedules) deliberately does not split the cache —
// that sharing is what lets a whole campaign boot a handful of templates.
uint64_t TemplateFingerprint(const FleetWorldConfig& config) {
  uint64_t fp = kFnv1a64Offset;
  fp = Fnv1a64Value(config.sensor_bus, fp);
  fp = Fnv1a64Value(config.memory_budget_mb, fp);
  fp = Fnv1a64Value(config.trace_categories, fp);
  fp = Fnv1a64Value(config.trace_capacity, fp);
  fp = Fnv1a64Value(config.sensor_faults != nullptr, fp);
  if (config.sensor_faults != nullptr) {
    // Only windows that can touch the warmup horizon shape boot state; two
    // plans that differ purely after the boundary share a template.
    for (const FaultWindowSpec& w : config.sensor_faults->schedule().windows()) {
      if (w.start >= kWarmupHorizon || w.end <= 0) {
        continue;
      }
      fp = Fnv1a64Value(w.kind, fp);
      fp = Fnv1a64Value(w.scope, fp);
      fp = Fnv1a64Value(w.start, fp);
      fp = Fnv1a64Value(w.end, fp);
      fp = Fnv1a64Value(w.p0, fp);
      fp = Fnv1a64Value(w.p1, fp);
      fp = Fnv1a64Value(w.d0, fp);
    }
  }
  return fp;
}

// Binds a checkpoint to the (config, seed) world that wrote it: every config
// knob that shapes deterministic construction folds into the fingerprint, so
// restoring into a differently-configured world fails at the header.
uint64_t ConfigFingerprint(const FleetWorldConfig& config) {
  uint64_t fp = kFnv1a64Offset;
  fp = Fnv1a64Value(config.tenants, fp);
  fp = Fnv1a64Value(config.dwell_s, fp);
  fp = Fnv1a64Value(config.waypoint_spread_m, fp);
  fp = Fnv1a64Value(config.annealing_iterations, fp);
  fp = Fnv1a64Value(config.sensor_bus, fp);
  fp = Fnv1a64Value(config.batch_telemetry, fp);
  fp = Fnv1a64Value(config.batch_flush_bytes, fp);
  fp = Fnv1a64Value(config.batch_flush_ms, fp);
  fp = Fnv1a64Value(config.memory_budget_mb, fp);
  fp = Fnv1a64Value(config.trace_categories, fp);
  fp = Fnv1a64Value(static_cast<int>(config.downlink_profile), fp);
  fp = Fnv1a64Value(config.net_faults != nullptr, fp);
  fp = Fnv1a64Value(config.sensor_faults != nullptr, fp);
  fp = Fnv1a64Value(config.crash_loop.count, fp);
  fp = Fnv1a64Value(config.crash_loop.start_s, fp);
  fp = Fnv1a64Value(config.crash_loop.period_s, fp);
  fp = Fnv1a64Value(config.crash_loop.max_restarts, fp);
  fp = Fnv1a64Value(config.tolerate_deploy_rejection, fp);
  fp = Fnv1a64Value(config.crash_at_s.size(), fp);
  for (double at : config.crash_at_s) {
    fp = Fnv1a64Value(at, fp);
  }
  fp = Fnv1a64Value(config.tenant_placements.size(), fp);
  for (const TenantPlacement& placement : config.tenant_placements) {
    fp = Fnv1a64Value(placement.north_m, fp);
    fp = Fnv1a64Value(placement.east_m, fp);
    fp = Fnv1a64Value(placement.dwell_s, fp);
  }
  return fp;
}

// One life of a fleet world: deterministic construction (identical for a
// fresh run and for a restore target), the mission flight, and the result
// scrape. The recovery loop in RunFleetWorld builds one attempt per life —
// a crash tears the whole attempt down, exactly like a process death.
class WorldAttempt {
 public:
  WorldAttempt(const FleetWorldConfig& config, const WorldContext& ctx,
               int crashes_consumed)
      : config_(config),
        ctx_(ctx),
        crashes_consumed_(crashes_consumed),
        fingerprint_(ConfigFingerprint(config)),
        clock_(ctx.arena) {}

  // Deterministic construction: trace wiring, boot (cold or cloned from a
  // world template), deploys, chaos payload, downlink, cancel poll,
  // scheduled crash events. Identical for every attempt at the same
  // (config, seed) — restore overwrites dynamic state on top of this. A
  // failure here is infrastructure, not scenario.
  Status Build() {
    const uint64_t boot_start_ns = WallNowNs();
    trace_ = config_.trace;
    if (trace_ == nullptr && config_.trace_categories != 0) {
      owned_trace_ = std::make_unique<TraceRecorder>(
          config_.trace_categories, config_.trace_capacity, ctx_.arena);
      trace_ = owned_trace_.get();
    }
    if (trace_ != nullptr) {
      trace_->BindClock(&clock_);
      AttachClockTrace(&clock_, trace_);
    }

    // Template resolution (DESIGN.md §14). A caller-owned recorder
    // (config_.trace) accumulates events across worlds, so those worlds are
    // never template-shareable — they always cold-boot.
    WorldTemplateCache* templates =
        config_.trace == nullptr ? config_.templates : nullptr;
    std::shared_ptr<const WorldTemplate> tpl;
    bool builder = false;
    uint64_t template_fp = 0;
    if (templates != nullptr) {
      template_fp = TemplateFingerprint(config_);
      tpl = templates->Acquire(template_fp, &builder);
      cloned_ = tpl != nullptr;
    }

    AnDroneOptions options;
    options.base = kFleetBase;
    options.seed = ctx_.seed;
    // Every world (cold, builder, or clone) boots from the canonical boot
    // seed and is re-seeded with its own seed at the post-boot boundary —
    // that single fork point is what makes a clone digest-identical to a
    // cold boot. Clones skip the warmup the template blob already contains.
    options.boot_seed = kCanonicalBootSeed;
    options.boot_warmup = !cloned_;
    options.use_sensor_bus = config_.sensor_bus;
    options.memory_budget_mb = config_.memory_budget_mb;
    options.trace = trace_;
    options.sensor_faults = config_.sensor_faults;
    system_ = std::make_unique<AnDroneSystem>(&clock_, options);
    {
      Status booted = system_->Boot();
      if (!booted.ok()) {
        if (builder) {
          templates->AbandonBuild(template_fp);  // Re-elect a waiter.
        }
        return booted;
      }
    }
    if (cloned_) {
      Status restored = RestoreTemplate(*tpl);
      if (!restored.ok()) {
        return restored;
      }
    } else if (builder) {
      auto built = std::make_shared<WorldTemplate>();
      built->fingerprint = template_fp;
      built->boot_seed = kCanonicalBootSeed;
      built->blob = SaveTemplateBlob(template_fp);
      built->sim_time = clock_.now();
      built->events_run = clock_.events_run();
      built->boot_ns = WallNowNs() - boot_start_ns;
      built_template_ = true;
      templates->Publish(std::move(built));
    }
    // The fork point: from here on, every RNG draw comes from the world's
    // own seed. Runs on ALL paths (including template-less cold boots) so
    // the three ways to reach this line are byte-equivalent.
    system_->ReseedStreams(ctx_.seed);

    if (config_.batch_telemetry) {
      TelemetryBatchConfig batch;
      batch.flush_bytes = config_.batch_flush_bytes;
      batch.flush_after = Millis(config_.batch_flush_ms);
      system_->proxy().EnableTelemetryBatching(batch);
    }

    // Tenant waypoints scatter around the base, drawn from a world-private
    // stream so two worlds with different seeds fly different routes —
    // unless the config pins explicit placements (cohort flights serve the
    // waypoints the tenants actually ordered).
    const bool explicit_placements = !config_.tenant_placements.empty();
    if (explicit_placements &&
        config_.tenant_placements.size() !=
            static_cast<size_t>(config_.tenants)) {
      return InvalidArgumentError(
          "tenant_placements size must equal the tenant count");
    }
    Rng placement(SplitMix64(ctx_.seed ^ 0x57a9c0ffee));
    for (int i = 0; i < config_.tenants; ++i) {
      double north;
      double east;
      double dwell = config_.dwell_s;
      if (explicit_placements) {
        const TenantPlacement& p =
            config_.tenant_placements[static_cast<size_t>(i)];
        north = p.north_m;
        east = p.east_m;
        dwell = p.dwell_s;
      } else {
        north = placement.Uniform(-config_.waypoint_spread_m,
                                  config_.waypoint_spread_m);
        east = placement.Uniform(-config_.waypoint_spread_m,
                                 config_.waypoint_spread_m);
      }
      GeoPoint waypoint = FromNed(kFleetBase, NedPoint{north, east, -15});
      auto deployed = system_->Deploy(MakeTenant(i, waypoint, dwell),
                                      WhitelistTemplate::kStandard);
      if (!deployed.ok()) {
        if (config_.tolerate_deploy_rejection) {
          // Memory-pressure scenarios assert on this split (paper Figure
          // 12): the admission rejection is the datum, not a world failure.
          ++tenants_rejected_;
          continue;
        }
        return deployed.status();
      }
      tenants_.push_back(*deployed);
      PlannerJob job;
      job.vdrone_id = i;
      job.vdrone_ref = "vd-" + std::to_string(i);
      job.waypoint = waypoint;
      job.service_energy_j = 170.0 * dwell;
      job.service_time_s = dwell;
      jobs_.push_back(job);
    }

    // Crash-loop chaos: a bystander payload container crashed on schedule,
    // supervised (backoff restarts, give-up) by a world-owned supervisor.
    // Isolation means the flight must not notice.
    if (config_.crash_loop.enabled()) {
      auto payload = system_->runtime().CreateContainer(
          "chaos-payload", ContainerKind::kVirtualDrone, system_->base_image());
      RETURN_IF_ERROR(payload.status());
      RETURN_IF_ERROR(system_->runtime().StartContainer((*payload)->id()));
      SupervisorPolicy policy;
      policy.max_consecutive_restarts = config_.crash_loop.max_restarts;
      chaos_supervisor_ = std::make_unique<ContainerSupervisor>(
          &clock_, &system_->runtime(), policy, SplitMix64(ctx_.seed ^ 0xc4a5));
      chaos_payload_ = (*payload)->id();
      chaos_supervisor_->Watch(chaos_payload_);
      chaos_events_.resize(static_cast<size_t>(config_.crash_loop.count), 0);
      for (int k = 0; k < config_.crash_loop.count; ++k) {
        SimDuration at = SecondsF(config_.crash_loop.start_s +
                                  k * config_.crash_loop.period_s);
        chaos_events_[static_cast<size_t>(k)] = clock_.ScheduleAfter(at, [this] {
          // A crash only lands on a running life; between backoff and
          // restart the container is already down and the scheduled crash
          // is a no-op.
          (void)system_->runtime().CrashContainer(chaos_payload_);
        });
      }
    }

    // Planner downlink: telemetry fanned to the planner endpoint is encoded
    // into MAVProxy's reused wire scratch, VPN-encapsulated, and shipped over
    // a seeded link channel — the §6.5 ground path, per world. The scenario's
    // link profile picks the regime; a fault plan decorates it with scripted
    // outage/burst-loss/latency windows.
    link_ = MakeLinkModel(config_.downlink_profile);
    LinkModel* downlink_model = link_.get();
    if (config_.net_faults != nullptr) {
      faulty_link_ = std::make_unique<FaultyLinkModel>(
          link_.get(), config_.net_faults, &clock_, LinkDirection::kForward);
      downlink_model = faulty_link_.get();
    }
    downlink_ = std::make_unique<NetworkChannel>(
        &clock_, downlink_model, SplitMix64(ctx_.seed + 0x11e7), ctx_.arena);
    tunnel_tx_ = std::make_unique<VpnTunnel>(downlink_.get(), 42);
    tunnel_rx_ = std::make_unique<VpnTunnel>(downlink_.get(), 42);
    if (trace_ != nullptr) {
      downlink_->SetTrace(trace_);
      tunnel_tx_->SetTrace(trace_);
      tunnel_rx_->SetTrace(trace_);
    }
    tunnel_rx_->SetReceiver([this](const std::vector<uint8_t>& bytes) {
      ++frames_down_;
      bytes_down_ += bytes.size();
    });
    system_->proxy().SetPlannerWireSink(
        [this](const std::vector<uint8_t>& bytes) { tunnel_tx_->Send(bytes); });

    // Cooperative fleet cancellation: a once-per-sim-second clock event
    // polls the shared flag and aborts the flight (RTL + resumable saves)
    // when the fleet budget expires or an operator cancels.
    poll_event_ = clock_.ScheduleAfter(Seconds(1), [this] { PollCancel(); });

    // The crash fault family: each scheduled sim-time kills this world.
    // ScheduleAt clamps to now, so a crash time inside the boot warmup
    // lands at the first mission pulse.
    ArmCrashEvents();

    // Record/replay attachment (DESIGN.md §15). Hooks draw no randomness,
    // so attaching after the reseed boundary keeps all three boot paths
    // byte-equivalent. Replay parses and validates the log up front — a
    // missing/mismatched/corrupt log fails the build, never mid-flight.
    if (config_.replay_from != nullptr) {
      auto parsed = config_.replay_from->Parsed(ctx_.seed, fingerprint_);
      if (!parsed.ok()) {
        return parsed.status();
      }
      replay_log_ = std::move(*parsed);
      system_->flight().SetPlaneSource([this]() -> const FlightPlaneSample* {
        if (replay_cursor_ >= replay_log_->ticks().size()) {
          return nullptr;
        }
        return &replay_log_->ticks()[replay_cursor_++];
      });
    }
    if (config_.record_into != nullptr) {
      recorder_ = std::make_unique<ReplayLogWriter>(ctx_.seed, fingerprint_);
      system_->flight().SetPlaneRecorder(
          [this](const FlightPlaneSample& sample) {
            recorder_->Append(sample);
          });
    }

    boot_ns_ = WallNowNs() - boot_start_ns;
    return OkStatus();
  }

  // Fork-and-explore (DESIGN.md §15): overlays a decision-point checkpoint
  // on the freshly built world, then (for divergent branches) re-seeds
  // every RNG stream so the continuation explores a different future.
  // reseed == 0 is the control branch: the original streams continue and
  // the tail must reproduce the recorded run bit-identically.
  Status ForkFrom(const std::string& blob, uint64_t reseed) {
    RETURN_IF_ERROR(RestoreFromBlob(blob));
    if (reseed != 0) {
      system_->ReseedStreams(reseed);
    }
    return OkStatus();
  }

  // Restores the latest checkpoint on top of the freshly built world:
  // header validation, component state in save order, clock rewind, timer
  // re-arm, then the save→restore→save byte fixed-point self-check.
  Status RestoreFromBlob(const std::string& blob) {
    SnapshotReader r(blob);
    CheckpointHeader header;
    RETURN_IF_ERROR(header.Load(r, ctx_.seed, fingerprint_));
    RETURN_IF_ERROR(RestoreWorld(r));
    clock_.ResetForRestore(header.sim_time, saved_events_run_);
    TimerRearmer rearmer;
    RegisterWorldTimers(rearmer);
    RETURN_IF_ERROR(rearmer.Replay(r));
    if (r.remaining() != 0) {
      return InvalidArgumentError(
          "checkpoint has " + std::to_string(r.remaining()) +
          " trailing bytes after the timer table");
    }
    have_checkpoint_ = true;
    last_checkpoint_time_ = header.sim_time;
    last_checkpoint_phase_ = system_->mission_progress().phase;
    fixed_point_ok_ = (SaveCheckpointBlob() == blob);
    // ResetForRestore dropped the crash events Build armed; re-arm the
    // not-yet-consumed remainder on the restored timeline. (They are never
    // part of the snapshot itself — see ArmCrashEvents.)
    ArmCrashEvents();
    return OkStatus();
  }

  // Serializes the post-boot/pre-deploy boundary: header (canonical boot
  // seed + template fingerprint), the trace ring (warmup events included,
  // so a traced clone exports the identical text), the executed-event
  // count, the full system, and the armed boot timers. Captured exactly
  // once per family, by the elected builder, before any per-world wiring.
  std::string SaveTemplateBlob(uint64_t template_fp) {
    SnapshotWriter w;
    TimerRegistry timers;
    CheckpointHeader header;
    header.seed = kCanonicalBootSeed;
    header.world_fingerprint = template_fp;
    header.sim_time = clock_.now();
    header.Save(w);
    w.Bool(trace_ != nullptr);
    if (trace_ != nullptr) {
      trace_->SaveState(w);
    }
    w.U64(clock_.events_run());
    system_->SaveState(w, timers);
    timers.Persist(w);
    return w.Take();
  }

  // Overlays the template blob on a structure-only boot (boot_warmup was
  // false): component state, clock rewind to the capture point, timer
  // re-arm. No fixed-point self-check and no have_checkpoint_ — this is
  // provisioning, not mission recovery; MaybeCheckpoint still captures a
  // first mission checkpoint as usual.
  Status RestoreTemplate(const WorldTemplate& tpl) {
    SnapshotReader r(tpl.blob);
    CheckpointHeader header;
    RETURN_IF_ERROR(header.Load(r, tpl.boot_seed, tpl.fingerprint));
    bool traced = false;
    RETURN_IF_ERROR(r.Bool(&traced));
    if (traced != (trace_ != nullptr)) {
      return InvalidArgumentError("template trace presence mismatch");
    }
    if (trace_ != nullptr) {
      RETURN_IF_ERROR(trace_->RestoreState(r));
    }
    uint64_t events_run = 0;
    RETURN_IF_ERROR(r.U64(&events_run));
    RETURN_IF_ERROR(system_->RestoreState(r));
    // Drops the structure-only boot's pending events; Replay re-creates
    // the armed boot timers from the template's timer table.
    clock_.ResetForRestore(header.sim_time, events_run);
    TimerRearmer rearmer;
    system_->RegisterTimers(rearmer);
    RETURN_IF_ERROR(rearmer.Replay(r));
    if (r.remaining() != 0) {
      return InvalidArgumentError(
          "template blob has " + std::to_string(r.remaining()) +
          " trailing bytes after the timer table");
    }
    return OkStatus();
  }

  // Plans and flies the route (fresh or resumed), then drains the downlink.
  // Returns CANCELLED exactly when a scheduled crash landed mid-mission;
  // any other non-OK status is an infrastructure failure.
  Status Fly(bool resumed, CheckpointStore* store) {
    const uint64_t fly_start_ns = WallNowNs();
    Status status = FlyImpl(resumed, store);
    fly_ns_ = WallNowNs() - fly_start_ns;
    return status;
  }

  Status FlyImpl(bool resumed, CheckpointStore* store) {
    if (config_.speed > 0) {
      TimeGovernor::Options pace;
      pace.speed = config_.speed;
      governor_ = std::make_unique<TimeGovernor>(pace);
      governor_->Start(clock_.now());
    }
    system_->SetMissionPulse([this, store] {
      if (crashed_) {
        return false;  // The world process dies here.
      }
      if (governor_ != nullptr) {
        governor_->Pace(clock_.now());
      }
      // A replaying world never checkpoints: the skipped continuous layer
      // (physics internals, estimator filter state, sensor RNG streams)
      // is deliberately stale, so a blob captured here could not restore.
      if (replay_log_ == nullptr) {
        MaybeCheckpoint(store);
      }
      return true;
    });
    if (!jobs_.empty()) {
      PlannedRoute route;
      if (replay_log_ != nullptr && replay_log_->have_plan()) {
        // Replay skips the planner's annealing entirely — the recorded
        // route is the one the original run derived (and planning is a
        // pure function of (config, seed), so re-deriving it would only
        // burn the CPU the fast path exists to save).
        route = replay_log_->plan();
      } else {
        EnergyModel energy;
        PlannerConfig pc;
        pc.depot = kFleetBase;
        pc.fleet_size = 1;
        pc.annealing_iterations = config_.annealing_iterations;
        FlightPlanner planner(energy, pc);
        auto plan = planner.Plan(jobs_);
        if (!plan.ok()) {
          return plan.status();
        }
        if (plan->routes.empty()) {
          return InternalError("fleet world planner produced no route");
        }
        route = plan->routes[0];
      }
      if (recorder_ != nullptr) {
        recorder_->SetPlan(route);
      }
      auto flight = resumed ? system_->ResumeRoute(route, jobs_)
                            : system_->ExecuteRoute(route, jobs_);
      if (flight.ok()) {
        flight_report_ = std::move(*flight);
      } else if (flight.status().code() == StatusCode::kCancelled &&
                 crashed_) {
        return flight.status();  // Crash landed; the recovery loop takes over.
      } else {
        // A flight abort (safety cutoff under sensor chaos, battery floor,
        // mission timeout) is a scenario outcome, not an infrastructure
        // failure: the world still drains, exports counters/metrics/trace,
        // and reports completed = false — triage needs the faulted world's
        // trace to diff against its nominal twin.
        flight_ok_ = false;
      }
    } else {
      // Every tenant was rejected at admission (memory-pressure scenarios
      // with tolerate_deploy_rejection): no route to fly, but the world
      // still completes — the admitted/rejected split is its result. Run a
      // few simulated seconds so scheduled chaos (crash loops) plays out.
      system_->RunClockUntil([] { return false; }, Seconds(30));
    }
    // Drain the downlink: flush any residual telemetry batch and run one
    // more simulated second so in-flight datagrams reach the receiver
    // before the counters and latency histogram are read.
    system_->proxy().FlushTelemetryBatch();
    system_->RunClockUntil([] { return false; }, Seconds(1));
    // Replay: the skipped sensor reads never consulted the fault injector,
    // so its tallies are installed from the recording run's footer before
    // the metrics scrape — sensor.* (and the metrics digest) then match.
    if (replay_log_ != nullptr && replay_log_->footer().have_sensor_counters) {
      if (SensorFaultInjector* inj = system_->mutable_sensor_fault_injector()) {
        inj->RestoreCounters(replay_log_->footer().sensor_counters);
      }
    }
    return OkStatus();
  }

  // Scrapes the world boundary into |result|: counters, the structured
  // metrics snapshot, the trace export, and the determinism digests.
  void Finish(WorldResult& result) {
    result.completed = flight_ok_ && !system_->abort_requested();
    result.events_run = clock_.events_run();
    result.counters["waypoints_visited"] =
        static_cast<double>(flight_report_.waypoints_visited);
    result.counters["flight_time_s"] = flight_report_.flight_time_s;
    result.counters["battery_used_j"] = flight_report_.battery_used_j;
    result.counters["tenants_admitted"] = static_cast<double>(tenants_.size());
    result.counters["tenants_rejected"] =
        static_cast<double>(tenants_rejected_);
    result.counters["downlink_frames"] = static_cast<double>(frames_down_);
    result.counters["downlink_bytes"] = static_cast<double>(bytes_down_);
    result.counters["downlink_lost"] = static_cast<double>(downlink_->lost());
    result.counters["downlink_flushes"] =
        static_cast<double>(system_->proxy().wire_flushes());
    result.counters["wire_frames"] =
        static_cast<double>(system_->proxy().wire_frames());
    result.histograms["downlink_latency_us"] = downlink_->latency_us();

    // Structured metrics snapshot (DESIGN.md §11): scraped once at the
    // world boundary, merged fleet-wide in index order by FleetExecutor.
    {
      BinderDriver* binder = system_->runtime().binder();
      MetricsRegistry metrics;
      metrics.Add("world.events_run", static_cast<double>(clock_.events_run()));
      metrics.Add("binder.txns",
                  static_cast<double>(binder->transaction_count()));
      metrics.Add("binder.txns_fast_path",
                  static_cast<double>(binder->fast_path_transactions()));
      metrics.Add("binder.txns_translated",
                  static_cast<double>(binder->translated_transactions()));
      metrics.Add("mav.wire_frames",
                  static_cast<double>(system_->proxy().wire_frames()));
      metrics.Add("mav.wire_flushes",
                  static_cast<double>(system_->proxy().wire_flushes()));
      metrics.Add("net.downlink_frames", static_cast<double>(frames_down_));
      metrics.Add("net.downlink_bytes", static_cast<double>(bytes_down_));
      metrics.Add("net.downlink_lost", static_cast<double>(downlink_->lost()));
      metrics.Add("rt.fast_loops",
                  static_cast<double>(system_->flight().fast_loop_count()));
      metrics.Add("rt.deadline_misses",
                  static_cast<double>(system_->flight().missed_deadlines()));
      metrics.Set("container.memory_mb", system_->runtime().MemoryUsageMb());
      metrics.Hist("downlink_latency_us").Merge(downlink_->latency_us());
      if (trace_ != nullptr) {
        metrics.Add("trace.recorded", static_cast<double>(trace_->recorded()));
        metrics.Add("trace.dropped", static_cast<double>(trace_->dropped()));
      }
      metrics.Add("fleet.tenants_admitted",
                  static_cast<double>(tenants_.size()));
      metrics.Add("fleet.tenants_rejected",
                  static_cast<double>(tenants_rejected_));
      if (faulty_link_ != nullptr) {
        metrics.Add("net.outage_losses",
                    static_cast<double>(faulty_link_->counters().outage_losses));
        metrics.Add("net.burst_losses",
                    static_cast<double>(faulty_link_->counters().burst_losses));
        metrics.Add(
            "net.inflated_samples",
            static_cast<double>(faulty_link_->counters().inflated_samples));
      }
      if (const SensorFaultInjector* inj = system_->sensor_fault_injector()) {
        metrics.Add("sensor.dropouts",
                    static_cast<double>(inj->counters().dropouts));
        metrics.Add("sensor.stuck_reads",
                    static_cast<double>(inj->counters().stuck_reads));
        metrics.Add("sensor.corrupted_reads",
                    static_cast<double>(inj->counters().corrupted_reads));
      }
      {
        const auto& episodes = system_->flight().safety().episodes();
        int cutoffs = 0;
        int deepest = 0;
        for (const SafetyEpisode& episode : episodes) {
          deepest = std::max(deepest, static_cast<int>(episode.deepest));
          if (episode.deepest == SafetyStage::kCutoff) {
            ++cutoffs;
          }
        }
        metrics.Add("safety.episodes", static_cast<double>(episodes.size()));
        metrics.Add("safety.cutoffs", static_cast<double>(cutoffs));
        metrics.Add("safety.deepest_stage", static_cast<double>(deepest));
      }
      if (chaos_supervisor_ != nullptr) {
        chaos_supervisor_->ExportMetrics(metrics);
      }
      if (config_.provision_metrics) {
        // Opt-in only: wall-clock timings and arena placement vary run to
        // run, and per-world metrics must stay deterministic by default
        // (the cross-thread-count digest tests compare them verbatim).
        metrics.Add(cloned_ ? "world.clone_ns" : "world.boot_ns",
                    static_cast<double>(boot_ns_));
        if (ctx_.arena != nullptr) {
          metrics.Set("arena.bytes_reserved",
                      static_cast<double>(ctx_.arena->bytes_reserved()));
          metrics.Set("arena.chunks",
                      static_cast<double>(ctx_.arena->chunks()));
        }
      }
      result.metrics = metrics.Snapshot();
    }
    // A caller-owned recorder is exported by the caller; only a world-owned
    // recorder's export rides back on the result.
    if (owned_trace_ != nullptr) {
      result.trace_text = owned_trace_->ExportText();
    }

    // The determinism digest covers the physical flight (every logged
    // attitude sample) and the downlink latency distribution: if either
    // diverges across thread counts, fleet digests split. The flight digest
    // is also exported on its own — it must be invariant to transport-level
    // choices like telemetry batching, which legitimately change the full
    // digest.
    result.flight_digest = FlightLogDigest(system_->flight().flight_log());
    uint64_t digest = result.flight_digest;
    digest = Fnv1a64Value(downlink_->latency_us().Digest(), digest);
    digest = Fnv1a64Value(frames_down_, digest);
    digest = Fnv1a64Value(bytes_down_, digest);
    result.digest = digest;
  }

  // Replay-engine epilogue, after Finish has scraped the result: seal and
  // publish the recorded log, verify a replay against the recorded footer,
  // and surface governor pacing — all into the Replay side struct (never
  // counters/metrics/digests; see WorldResult::Replay).
  void FinalizeReplay(WorldResult& result) {
    const uint64_t trace_hash =
        Fnv1a64(result.trace_text.data(), result.trace_text.size());
    if (replay_log_ != nullptr) {
      const ReplayFooter& footer = replay_log_->footer();
      result.replay.replayed = true;
      result.replay.log_bytes = replay_log_->byte_size();
      result.replay.ticks = system_->flight().replay_ticks();
      result.replay.underruns = system_->flight().replay_underruns();
      result.replay.digest_match =
          result.digest == footer.digest &&
          result.flight_digest == footer.flight_digest &&
          result.metrics.Digest() == footer.metrics_digest &&
          trace_hash == footer.trace_hash &&
          result.completed == footer.completed;
    }
    if (recorder_ != nullptr) {
      ReplayFooter footer;
      if (const SensorFaultInjector* inj = system_->sensor_fault_injector()) {
        footer.have_sensor_counters = true;
        footer.sensor_counters = inj->counters();
      }
      footer.digest = result.digest;
      footer.flight_digest = result.flight_digest;
      footer.metrics_digest = result.metrics.Digest();
      footer.trace_hash = trace_hash;
      footer.completed = result.completed;
      std::string bytes = recorder_->Finalize(footer);
      result.replay.recorded = true;
      result.replay.log_bytes = bytes.size();
      result.replay.ticks = recorder_->tick_count();
      config_.record_into->Put(ctx_.seed, std::move(bytes));
    }
    if (governor_ != nullptr) {
      result.replay.governor_slept_us = governor_->slept_us();
      result.replay.governor_sleeps = governor_->sleeps();
    }
  }

  // First crash index this life consumed, plus one — the next attempt's
  // crash cursor.
  int next_crash_cursor() const { return crash_fired_index_ + 1; }
  bool fixed_point_ok() const { return fixed_point_ok_; }
  bool cloned() const { return cloned_; }
  bool built_template() const { return built_template_; }
  uint64_t boot_ns() const { return boot_ns_; }
  uint64_t fly_ns() const { return fly_ns_; }

 private:
  void PollCancel() {
    if (ctx_.ShouldCancel()) {
      system_->RequestAbort("fleet cancelled");
      return;
    }
    poll_event_ = clock_.ScheduleAfter(Seconds(1), [this] { PollCancel(); });
  }

  // The crash schedule is config, not world state: crash events are never
  // persisted in checkpoints and already-consumed crashes are never armed
  // again. The surviving timeline therefore dispatches zero crash events —
  // which is what keeps a recovered world's events_run (and the sampled
  // clock trace) bit-identical to the uninterrupted run's.
  void ArmCrashEvents() {
    crash_events_.assign(config_.crash_at_s.size(), 0);
    for (size_t k = static_cast<size_t>(crashes_consumed_);
         k < config_.crash_at_s.size(); ++k) {
      crash_events_[k] =
          clock_.ScheduleAt(SecondsF(config_.crash_at_s[k]), [this, k] {
            OnCrashEvent(static_cast<int>(k));
          });
    }
  }

  void OnCrashEvent(int k) {
    crashed_ = true;
    crash_fired_index_ = std::max(crash_fired_index_, k);
  }

  void MaybeCheckpoint(CheckpointStore* store) {
    if (store == nullptr || !config_.checkpoint.enabled()) {
      return;
    }
    const MissionProgress& progress = system_->mission_progress();
    bool due = !have_checkpoint_;  // Always capture a first checkpoint.
    if (!due && config_.checkpoint.at_phase_boundaries &&
        progress.phase != last_checkpoint_phase_) {
      due = true;
    }
    if (!due && config_.checkpoint.period_s > 0 &&
        clock_.now() >=
            last_checkpoint_time_ + SecondsF(config_.checkpoint.period_s)) {
      due = true;
    }
    if (!due) {
      return;
    }
    (void)store->Put(clock_.now(), SaveCheckpointBlob());
    have_checkpoint_ = true;
    last_checkpoint_time_ = clock_.now();
    last_checkpoint_phase_ = progress.phase;
  }

  // Serializes the complete world: header, world-level state, every
  // component in a fixed order, then the timer table. Pure reads — taking a
  // checkpoint never perturbs the world, which is what lets checkpoint
  // cadence vary without moving the digest.
  std::string SaveCheckpointBlob() {
    SnapshotWriter w;
    TimerRegistry timers;
    CheckpointHeader header;
    header.seed = ctx_.seed;
    header.world_fingerprint = fingerprint_;
    header.sim_time = clock_.now();
    header.Save(w);
    SaveWorld(w, timers);
    timers.Persist(w);
    return w.Take();
  }

  void SaveWorld(SnapshotWriter& w, TimerRegistry& timers) {
    w.Section("WRLD");
    w.U64(clock_.events_run());
    w.U64(frames_down_);
    w.U64(bytes_down_);
    SimTime when = 0;
    uint64_t seq = 0;
    bool poll_pending = clock_.PendingInfo(poll_event_, &when, &seq);
    w.Bool(poll_pending);
    if (poll_pending) {
      timers.Add("world.poll", when, seq);
    }
    w.U64(chaos_events_.size());
    for (size_t k = 0; k < chaos_events_.size(); ++k) {
      bool pending = clock_.PendingInfo(chaos_events_[k], &when, &seq);
      w.Bool(pending);
      if (pending) {
        timers.Add("world.chaosloop." + std::to_string(k), when, seq);
      }
    }
    w.Bool(chaos_supervisor_ != nullptr);
    if (chaos_supervisor_ != nullptr) {
      chaos_supervisor_->SaveState(w, timers);
    }
    w.Bool(faulty_link_ != nullptr);
    if (faulty_link_ != nullptr) {
      const FaultCounters& c = faulty_link_->counters();
      w.U64(c.outage_losses);
      w.U64(c.burst_losses);
      w.U64(c.inflated_samples);
    }
    downlink_->SaveState(w, timers, "net.down");
    tunnel_tx_->SaveState(w);
    tunnel_rx_->SaveState(w);
    w.Bool(trace_ != nullptr);
    if (trace_ != nullptr) {
      trace_->SaveState(w);
    }
    system_->SaveState(w, timers);
  }

  Status RestoreWorld(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("WRLD"));
    RETURN_IF_ERROR(r.U64(&saved_events_run_));
    RETURN_IF_ERROR(r.U64(&frames_down_));
    RETURN_IF_ERROR(r.U64(&bytes_down_));
    bool pending = false;
    RETURN_IF_ERROR(r.Bool(&pending));  // Poll re-armed via the timer table.
    uint64_t count = 0;
    RETURN_IF_ERROR(r.U64(&count));
    if (count != chaos_events_.size()) {
      return InvalidArgumentError(
          "checkpoint has " + std::to_string(count) +
          " chaos-loop events, restoring world has " +
          std::to_string(chaos_events_.size()));
    }
    for (size_t k = 0; k < chaos_events_.size(); ++k) {
      RETURN_IF_ERROR(r.Bool(&pending));
      if (!pending) {
        chaos_events_[k] = 0;
      }
    }
    bool present = false;
    RETURN_IF_ERROR(r.Bool(&present));
    if (present != (chaos_supervisor_ != nullptr)) {
      return InvalidArgumentError(
          "checkpoint chaos-supervisor presence mismatch");
    }
    if (chaos_supervisor_ != nullptr) {
      RETURN_IF_ERROR(chaos_supervisor_->RestoreState(r));
    }
    RETURN_IF_ERROR(r.Bool(&present));
    if (present != (faulty_link_ != nullptr)) {
      return InvalidArgumentError("checkpoint fault-plan presence mismatch");
    }
    if (faulty_link_ != nullptr) {
      FaultCounters c;
      RETURN_IF_ERROR(r.U64(&c.outage_losses));
      RETURN_IF_ERROR(r.U64(&c.burst_losses));
      RETURN_IF_ERROR(r.U64(&c.inflated_samples));
      faulty_link_->RestoreCounters(c);
    }
    RETURN_IF_ERROR(downlink_->RestoreState(r));
    RETURN_IF_ERROR(tunnel_tx_->RestoreState(r));
    RETURN_IF_ERROR(tunnel_rx_->RestoreState(r));
    RETURN_IF_ERROR(r.Bool(&present));
    if (present != (trace_ != nullptr)) {
      return InvalidArgumentError("checkpoint trace presence mismatch");
    }
    if (trace_ != nullptr) {
      RETURN_IF_ERROR(trace_->RestoreState(r));
    }
    return system_->RestoreState(r);
  }

  void RegisterWorldTimers(TimerRearmer& rearmer) {
    rearmer.Register("world.poll", [this](SimTime at) {
      poll_event_ = clock_.ScheduleAt(at, [this] { PollCancel(); });
    });
    for (size_t k = 0; k < chaos_events_.size(); ++k) {
      rearmer.Register("world.chaosloop." + std::to_string(k),
                       [this, k](SimTime at) {
        chaos_events_[k] = clock_.ScheduleAt(at, [this] {
          (void)system_->runtime().CrashContainer(chaos_payload_);
        });
      });
    }
    if (chaos_supervisor_ != nullptr) {
      chaos_supervisor_->RegisterTimers(rearmer);
    }
    downlink_->RegisterTimers(rearmer, "net.down");
    system_->RegisterTimers(rearmer);
  }

  const FleetWorldConfig& config_;
  const WorldContext& ctx_;
  const int crashes_consumed_;
  const uint64_t fingerprint_;

  SimClock clock_;
  std::unique_ptr<TraceRecorder> owned_trace_;
  TraceRecorder* trace_ = nullptr;
  std::unique_ptr<AnDroneSystem> system_;
  std::vector<VirtualDroneInstance*> tenants_;
  std::vector<PlannerJob> jobs_;
  int tenants_rejected_ = 0;
  std::unique_ptr<ContainerSupervisor> chaos_supervisor_;
  ContainerId chaos_payload_ = 0;
  std::vector<EventId> chaos_events_;
  std::unique_ptr<LinkModel> link_;
  std::unique_ptr<FaultyLinkModel> faulty_link_;
  std::unique_ptr<NetworkChannel> downlink_;
  std::unique_ptr<VpnTunnel> tunnel_tx_;
  std::unique_ptr<VpnTunnel> tunnel_rx_;
  uint64_t frames_down_ = 0;
  uint64_t bytes_down_ = 0;
  EventId poll_event_ = 0;
  std::vector<EventId> crash_events_;

  bool crashed_ = false;
  int crash_fired_index_ = -1;
  uint64_t saved_events_run_ = 0;

  bool have_checkpoint_ = false;
  SimTime last_checkpoint_time_ = 0;
  MissionProgress::Phase last_checkpoint_phase_ = MissionProgress::Phase::kIdle;
  bool fixed_point_ok_ = true;

  FlightExecutionReport flight_report_;
  bool flight_ok_ = true;

  // Record/replay engine (DESIGN.md §15). The parsed log is shared with
  // the store's cache (and any sibling replays of the same seed).
  std::shared_ptr<const ReplayLog> replay_log_;
  size_t replay_cursor_ = 0;
  std::unique_ptr<ReplayLogWriter> recorder_;
  std::unique_ptr<TimeGovernor> governor_;

  // Provisioning telemetry (side-struct data; never digested).
  bool cloned_ = false;
  bool built_template_ = false;
  uint64_t boot_ns_ = 0;
  uint64_t fly_ns_ = 0;
};

// Routes the current thread's parcel scratch storage into the world's
// worker arena for the world's lifetime. Restoring to nullptr on exit also
// flushes the thread's freelist, so no recycled parcel capacity can outlive
// the arena (RunFleetWorld is callable off-pool with a stack-local arena).
class ScratchArenaGuard {
 public:
  explicit ScratchArenaGuard(Arena* arena) { Parcel::SetScratchArena(arena); }
  ~ScratchArenaGuard() { Parcel::SetScratchArena(nullptr); }
  ScratchArenaGuard(const ScratchArenaGuard&) = delete;
  ScratchArenaGuard& operator=(const ScratchArenaGuard&) = delete;
};

}  // namespace

WorldResult RunFleetWorld(const FleetWorldConfig& config,
                          const WorldContext& ctx) {
  WorldResult result;
  result.index = ctx.index;
  result.seed = ctx.seed;
  ScratchArenaGuard scratch(ctx.arena);

  // The replay engine and the crash fault family are mutually exclusive: a
  // recovery loop re-runs ticks from the last checkpoint, which would
  // duplicate recorded samples (record) or desynchronize the tick cursor
  // (replay). Reject the combination loudly instead of corrupting a log.
  if ((config.record_into != nullptr || config.replay_from != nullptr ||
       config.fork_blob != nullptr) &&
      !config.crash_at_s.empty()) {
    ALOG(kError, "fleet")
        << "world " << ctx.index
        << ": record/replay/fork cannot be combined with crash_at_s";
    result.infra_failure = true;
    return result;
  }

  // Checkpoints and the restore budget outlive individual attempts — a
  // crash kills the world, not its persisted state. A caller-owned sink
  // (fork-and-explore harvesting decision points) substitutes for the
  // run-local store when configured.
  CheckpointStore local_store;
  CheckpointStore& store =
      config.checkpoint_sink != nullptr ? *config.checkpoint_sink : local_store;
  CheckpointStore* store_ptr = config.checkpoint.enabled() ? &store : nullptr;
  RestoreSupervisor restore_supervisor(config.restore,
                                       SplitMix64(ctx.seed ^ 0x5e5c0ffe));
  int crashes_consumed = 0;

  for (;;) {
    WorldAttempt attempt(config, ctx, crashes_consumed);
    if (!attempt.Build().ok()) {
      result.infra_failure = true;
      return result;
    }
    bool resumed = false;
    if (config.fork_blob != nullptr) {
      if (!attempt.ForkFrom(*config.fork_blob, config.fork_reseed).ok()) {
        result.infra_failure = true;
        return result;
      }
      resumed = true;
    } else if (crashes_consumed > 0 && store.count() > 0) {
      auto blob = store.Latest();
      if (!blob.ok() || !attempt.RestoreFromBlob(*blob).ok()) {
        result.infra_failure = true;
        return result;
      }
      resumed = true;
      ++result.recovery.restores;
      result.recovery.fixed_point_ok =
          result.recovery.fixed_point_ok && attempt.fixed_point_ok();
    } else if (crashes_consumed > 0) {
      // Crashed before the first checkpoint: the only recovery is to re-fly
      // from boot. Determinism makes that exact, just slower.
      ++result.recovery.replays_from_boot;
    }
    Status flight = attempt.Fly(resumed, store_ptr);
    // Provisioning rollup across attempts (a recovery loop boots several
    // lives; their wall costs sum). Side-struct only — see Provision.
    result.provision.cloned = result.provision.cloned || attempt.cloned();
    result.provision.built_template =
        result.provision.built_template || attempt.built_template();
    result.provision.boot_ns += attempt.boot_ns();
    result.provision.fly_ns += attempt.fly_ns();
    if (flight.code() == StatusCode::kCancelled) {
      ++result.recovery.crashes;
      crashes_consumed = attempt.next_crash_cursor();
      SimTime checkpoint_time = store.count() > 0 ? store.latest_time() : -1;
      if (!restore_supervisor.BeginRestore(checkpoint_time)) {
        // Restore budget spent: the world stays down. That is a scenario
        // outcome (completed = false), not an infrastructure failure — the
        // crashed attempt's counters/metrics/trace still export for triage.
        result.recovery.gave_up = true;
        attempt.Finish(result);
        attempt.FinalizeReplay(result);
        result.completed = false;
        break;
      }
      restore_supervisor.FinishRestore();
      continue;
    }
    if (!flight.ok()) {
      result.infra_failure = true;
      return result;
    }
    attempt.Finish(result);
    attempt.FinalizeReplay(result);
    break;
  }
  result.recovery.checkpoints_saved = store.count();
  result.recovery.checkpoint_bytes = static_cast<uint64_t>(store.latest_bytes());
  if (ctx.arena != nullptr) {
    result.provision.arena_bytes_reserved = ctx.arena->bytes_reserved();
    result.provision.arena_chunks = ctx.arena->chunks();
  }
  return result;
}

WorldFn MakeFleetWorld(const FleetWorldConfig& config) {
  return [config](const WorldContext& ctx) {
    return RunFleetWorld(config, ctx);
  };
}

}  // namespace androne
