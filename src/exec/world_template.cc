#include "src/exec/world_template.h"

#include <utility>

namespace androne {

std::shared_ptr<const WorldTemplate> WorldTemplateCache::Acquire(
    uint64_t fingerprint, bool* builder) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(fingerprint);
    if (it == entries_.end()) {
      entries_[fingerprint];  // Reserve: null template = build in progress.
      ++misses_;
      *builder = true;
      return nullptr;
    }
    if (it->second.tpl != nullptr) {
      ++hits_;
      *builder = false;
      return it->second.tpl;
    }
    cv_.wait(lock);  // A builder is cold-booting this family; wait for it.
  }
}

void WorldTemplateCache::Publish(std::shared_ptr<const WorldTemplate> tpl) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[tpl->fingerprint].tpl = std::move(tpl);
  }
  cv_.notify_all();
}

void WorldTemplateCache::AbandonBuild(uint64_t fingerprint) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end() && it->second.tpl == nullptr) {
      entries_.erase(it);
    }
  }
  cv_.notify_all();
}

uint64_t WorldTemplateCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t WorldTemplateCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t WorldTemplateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t published = 0;
  for (const auto& [fp, entry] : entries_) {
    published += entry.tpl != nullptr ? 1 : 0;
  }
  return published;
}

}  // namespace androne
