#include "src/exec/fleet_executor.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include <memory>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/util/arena.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace androne {

FleetExecutor::FleetExecutor(FleetOptions options)
    : options_(std::move(options)) {}

uint64_t FleetExecutor::WorldSeed(uint64_t base_seed, int index) {
  // SplitMix64 decorrelates adjacent indices; the +1 keeps index 0 from
  // collapsing onto the raw base seed.
  return SplitMix64(base_seed + static_cast<uint64_t>(index) + 1);
}

FleetReport FleetExecutor::Run(int num_worlds, const WorldFn& fn) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const bool budgeted = options_.wall_budget_ms > 0;
  const Clock::time_point deadline =
      start + std::chrono::milliseconds(budgeted ? options_.wall_budget_ms : 0);

  cancel_.store(false, std::memory_order_relaxed);

  FleetReport report;
  report.worlds.resize(static_cast<size_t>(num_worlds));
  std::atomic<int> retried{0};

  {
    // One arena per worker, not per world: a worker runs its worlds
    // serially, so Reset() between worlds recycles the same warm slabs
    // for every world that lands on that worker (shard-per-worker
    // placement). Declared before the pool so the arenas strictly outlive
    // every worker thread.
    std::vector<std::unique_ptr<Arena>> arenas;
    ThreadPool pool(options_.threads);
    arenas.reserve(static_cast<size_t>(pool.size()));
    for (int i = 0; i < pool.size(); ++i) {
      arenas.push_back(std::make_unique<Arena>());
    }
    for (int i = 0; i < num_worlds; ++i) {
      pool.Submit([this, i, &fn, &report, &retried, &arenas, budgeted,
                   deadline] {
        WorldContext ctx;
        ctx.index = i;
        ctx.seed = WorldSeed(options_.base_seed, i);
        ctx.cancelled = &cancel_;
        const int worker = ThreadPool::CurrentWorkerIndex();
        if (worker >= 0 && worker < static_cast<int>(arenas.size())) {
          ctx.arena = arenas[static_cast<size_t>(worker)].get();
          // The previous world on this worker is fully torn down (tasks on
          // one worker are serial); reclaim its arena space for this one.
          ctx.arena->Reset();
        }
        WorldResult& out = report.worlds[static_cast<size_t>(i)];
        if (budgeted && std::chrono::steady_clock::now() >= deadline) {
          cancel_.store(true, std::memory_order_relaxed);
        }
        if (ctx.ShouldCancel()) {
          // Budget already spent: record the skip without running the world.
          out.index = i;
          out.seed = ctx.seed;
          out.completed = false;
          out.skipped = true;
          return;
        }
        out = fn(ctx);
        if (out.infra_failure && !ctx.ShouldCancel()) {
          // Infrastructure failures (the world never came up — boot, deploy
          // machinery, planner) are not scenario outcomes: give the world
          // one more chance after a short wall-clock breather. Worlds are
          // deterministic in (config, seed), so a retry that succeeds
          // produces exactly the result the first attempt should have.
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
          retried.fetch_add(1, std::memory_order_relaxed);
          if (ctx.arena != nullptr) {
            ctx.arena->Reset();  // The failed attempt's world is gone.
          }
          out = fn(ctx);
        }
        out.index = i;
        // Worlds that report their own seed (scenario sweeps override the
        // index-derived default) keep it; plain worlds get the context seed.
        if (out.seed == 0) {
          out.seed = ctx.seed;
        }
      });
    }
    pool.Wait();
  }

  // Merge in world-index order: the fold over maps and the fleet digest are
  // then independent of which worker finished which world first.
  uint64_t digest = kFnv1a64Offset;
  for (const WorldResult& world : report.worlds) {
    if (!world.completed) {
      ++report.cancelled;
      if (world.skipped) {
        ++report.skipped;
      }
      continue;
    }
    ++report.completed;
    report.events_run += world.events_run;
    if (world.provision.cloned) {
      ++report.worlds_cloned;
    }
    if (world.provision.built_template) {
      ++report.templates_built;
    }
    report.boot_seconds += static_cast<double>(world.provision.boot_ns) * 1e-9;
    report.fly_seconds += static_cast<double>(world.provision.fly_ns) * 1e-9;
    for (const auto& [name, value] : world.counters) {
      report.counters[name] += value;
    }
    for (const auto& [name, hist] : world.histograms) {
      report.histograms[name].Merge(hist);
    }
    report.metrics.Merge(world.metrics);
    digest = Fnv1a64Value(world.index, digest);
    digest = Fnv1a64Value(world.digest, digest);
  }
  report.fleet_digest = digest;
  report.retried = retried.load(std::memory_order_relaxed);
  if (report.retried > 0) {
    // Like worlds_skipped below: a metrics snapshot alone must reveal that
    // some worlds needed a second attempt.
    report.metrics.counters["fleet.worlds_retried"] +=
        static_cast<double>(report.retried);
  }
  if (report.skipped > 0) {
    // Surface the skip count inside the merged metrics too, so a snapshot
    // alone (without the report struct) still reveals silently-dropped
    // worlds.
    report.metrics.counters["fleet.worlds_skipped"] +=
        static_cast<double>(report.skipped);
  }
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return report;
}

}  // namespace androne
