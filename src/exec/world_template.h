// Boot-once/fork-many world templates (DESIGN.md §14).
//
// Cold-booting a fleet world spends ~96% of its startup inside the 2 s
// sensor/estimator warmup, and every one of N worlds used to pay it. A
// WorldTemplate amortizes that: the first world of a config family
// cold-boots once, captures a PR 7 checkpoint at the post-boot/pre-mission
// boundary, and publishes it; every later world of the family "clones" by
// booting the deterministic structure *without* warmup and overlaying the
// template blob, then re-seeds its per-world RNG streams at the boundary.
//
// Correctness rests on two invariants:
//   1. Every member world boots with one global canonical boot seed (a
//      run-stable constant, NOT the per-world seed), so post-boot state is
//      byte-identical whether it was reached by warmup or by restore.
//   2. AnDroneSystem::ReseedStreams(world_seed) runs at the boundary on
//      *both* paths, so per-world divergence (waypoints, link noise,
//      mission-time sensor noise) starts at exactly the same point.
// A cloned world is therefore digest-identical to a cold-booted world at
// the same seed — asserted in tests/exec_test.cc and gated in ci.sh.
//
// The fingerprint keys only boot-relevant config: knobs that act after the
// boundary (tenants, dwell, net faults, crash schedule, batching) do not
// split the cache, which is what lets a 1000-scenario campaign share a
// handful of templates. Sensor-fault plans fold in only the windows that
// can touch the warmup horizon.
#ifndef SRC_EXEC_WORLD_TEMPLATE_H_
#define SRC_EXEC_WORLD_TEMPLATE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/time.h"

namespace androne {

struct WorldTemplate {
  uint64_t fingerprint = 0;  // TemplateFingerprint of the config family.
  uint64_t boot_seed = 0;    // Canonical boot seed every member world uses.
  std::string blob;          // Checkpoint at the post-boot boundary.
  SimTime sim_time = 0;      // Clock time the blob was captured at.
  uint64_t events_run = 0;   // Executed-event count at capture.
  uint64_t boot_ns = 0;      // Wall cost of the cold boot that built this.
};

// Thread-safe template store shared by every world of a fleet (and, via
// CampaignRunner, every scenario of a campaign). The build protocol is
// blocking: the first caller per fingerprint is elected builder and cold
// boots; concurrent callers for the same fingerprint wait for the publish
// instead of booting redundantly. That makes hit/miss totals deterministic
// — exactly one miss per fingerprint per cache — at any thread count.
class WorldTemplateCache {
 public:
  // Returns the published template for |fingerprint|, or nullptr with
  // *builder = true when this caller was elected to build it. A builder
  // MUST later call Publish() or AbandonBuild(fingerprint) — waiters block
  // until one of the two happens.
  std::shared_ptr<const WorldTemplate> Acquire(uint64_t fingerprint,
                                               bool* builder);

  // Publishes a built template and wakes waiters.
  void Publish(std::shared_ptr<const WorldTemplate> tpl);

  // Abandons an elected build (cold boot failed): the entry is erased and
  // one waiter is re-elected builder on its next Acquire loop.
  void AbandonBuild(uint64_t fingerprint);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;  // Published templates.

 private:
  struct Entry {
    std::shared_ptr<const WorldTemplate> tpl;  // null while building
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace androne

#endif  // SRC_EXEC_WORLD_TEMPLATE_H_
