// Simulated unidirectional datagram channel over a link model, plus the
// per-container VPN tunnel AnDrone wraps all remote access in (paper §4):
// flight-controller protocols were never designed for the open Internet, so
// every container's traffic is tunneled and encrypted.
#ifndef SRC_NET_CHANNEL_H_
#define SRC_NET_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/link_model.h"
#include "src/snapshot/snapshot.h"
#include "src/util/histogram.h"
#include "src/util/sim_clock.h"

namespace androne {

class TraceRecorder;

class NetworkChannel {
 public:
  using Receiver = std::function<void(const std::vector<uint8_t>&)>;
  // In-flight datagrams are held by shared ownership: the delivery closure
  // captures a shared_ptr instead of a payload copy (std::function requires
  // copyable captures, and the sim-clock event queue may copy events during
  // heap maintenance — a by-value payload would be deep-copied there).
  using SharedPayload = std::shared_ptr<const std::vector<uint8_t>>;

  // |arena| (optional, borrowed) backs the in-flight datagram registry, so
  // per-send map nodes come from the owning world's arena (DESIGN.md §14).
  // Payload buffers stay on the recycled BufferPool — they are shared with
  // delivery closures that can outlive a world teardown ordering.
  NetworkChannel(SimClock* clock, const LinkModel* link, uint64_t seed,
                 Arena* arena = nullptr);

  void SetReceiver(Receiver receiver) { receiver_ = std::move(receiver); }

  // Sends one datagram; it is delivered to the receiver after a sampled
  // latency, or silently dropped on sampled loss. The buffer is moved into
  // shared ownership — the receiver observes the sender's bytes with no
  // further copies.
  void Send(std::vector<uint8_t> payload);

  // Zero-copy form for fan-out senders: the same shared buffer may be handed
  // to many channels (broadcast) without duplicating it per link. (Named
  // rather than overloaded: a braced payload like Send({0}) would otherwise
  // be ambiguous against shared_ptr's nullptr constructor.)
  void SendShared(SharedPayload payload);

  // Copies |size| bytes into a pooled buffer and sends it: senders that
  // reuse a scratch buffer (VPN encapsulation, telemetry batching) pay no
  // heap allocation per datagram once the pool is warm. Delivered buffers
  // return to the pool when the last shared reference drops; the pool is
  // held by shared_ptr so in-flight datagrams stay safe if the channel is
  // destroyed first.
  void SendCopy(const uint8_t* data, size_t size);

  // Attaches the net trace category: deliveries record an instant
  // ("net.delivered", arg = one-way latency in us), sampled losses record
  // "net.lost", and receiver-less arrivals record "net.drop_no_receiver".
  // Pass nullptr to detach.
  void SetTrace(TraceRecorder* trace);

  uint64_t sent() const { return sent_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t lost() const { return lost_; }
  // Datagrams that survived the link but arrived with no receiver attached
  // (receiver never set, or torn down mid-flight). Counted as drops instead
  // of invoking an empty std::function.
  uint64_t dropped_no_receiver() const { return dropped_no_receiver_; }
  // One-way latency of delivered datagrams, microseconds.
  const Histogram& latency_us() const { return latency_us_; }
  size_t inflight() const { return inflight_.size(); }

  // --- Checkpoint/restore (DESIGN.md §13) ---
  // In-flight datagrams persist with their payload bytes and armed delivery
  // deadlines under keys "<prefix>.<id>"; the receiver is re-wired by the
  // restoring world.
  void SaveState(SnapshotWriter& w, TimerRegistry& timers,
                 const std::string& prefix) const;
  Status RestoreState(SnapshotReader& r);
  // Registers one re-arm handler per restored in-flight datagram. Call
  // after RestoreState, before TimerRearmer::Replay, with the same prefix
  // the save used.
  void RegisterTimers(TimerRearmer& rearmer, const std::string& prefix);

 private:
  struct BufferPool {
    std::vector<std::unique_ptr<std::vector<uint8_t>>> free;
  };
  // One scheduled-but-undelivered datagram, held in a registry (keyed by a
  // monotone id) so checkpoints can enumerate the in-flight set.
  struct Inflight {
    SharedPayload payload;
    SimDuration latency = 0;
    EventId event = 0;
  };

  void Deliver(uint64_t id);

  SimClock* clock_;
  const LinkModel* link_;
  Rng rng_;
  Receiver receiver_;
  std::shared_ptr<BufferPool> pool_ = std::make_shared<BufferPool>();
  std::map<uint64_t, Inflight, std::less<uint64_t>,
           ArenaAllocator<std::pair<const uint64_t, Inflight>>>
      inflight_;
  uint64_t next_inflight_id_ = 0;
  uint64_t sent_ = 0;
  uint64_t delivered_ = 0;
  uint64_t lost_ = 0;
  uint64_t dropped_no_receiver_ = 0;
  Histogram latency_us_{10, 8};
  TraceRecorder* trace_ = nullptr;
  uint32_t delivered_name_ = 0;
  uint32_t lost_name_ = 0;
  uint32_t drop_name_ = 0;
};

// A bidirectional pair of channels between two parties over one link model.
// The reverse direction's RNG stream is derived with a SplitMix64 mix so the
// two directions are statistically independent even for adjacent seeds.
struct DuplexChannel {
  DuplexChannel(SimClock* clock, const LinkModel* link, uint64_t seed)
      : DuplexChannel(clock, link, link, seed) {}

  // Separate per-direction link models, e.g. two FaultyLinkModel decorators
  // sharing one FaultPlan to script an asymmetric partition.
  DuplexChannel(SimClock* clock, const LinkModel* forward,
                const LinkModel* reverse, uint64_t seed)
      : a_to_b(clock, forward, seed),
        b_to_a(clock, reverse, SplitMix64(seed)) {}

  NetworkChannel a_to_b;
  NetworkChannel b_to_a;
};

// Per-container VPN tunnel: encapsulates payloads with an authenticated
// header and adds crypto/encap latency. Receivers reject datagrams whose
// tunnel id does not match (cross-tenant traffic cannot be injected).
class VpnTunnel {
 public:
  // |tunnel_id| is bound to the container the tunnel belongs to.
  VpnTunnel(NetworkChannel* underlying, uint32_t tunnel_id);

  using Receiver = std::function<void(const std::vector<uint8_t>&)>;
  void SetReceiver(Receiver receiver);

  void Send(const std::vector<uint8_t>& payload);

  uint64_t rejected_datagrams() const { return rejected_; }

  // Checkpoint/restore: only the rejection counter is dynamic state (the
  // scratch buffers are transient and the receiver is re-wired on restore).
  void SaveState(SnapshotWriter& w) const {
    w.Section("VPN ");
    w.U64(rejected_);
  }
  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("VPN "));
    return r.U64(&rejected_);
  }

  // Attaches the net trace category: encapsulations record an instant
  // ("vpn.encap", arg = encapsulated bytes), successful decapsulations
  // record "vpn.decap" (arg = payload bytes), and rejected datagrams
  // record "vpn.reject". Pass nullptr to detach.
  void SetTrace(TraceRecorder* trace);

 private:
  NetworkChannel* underlying_;
  uint32_t tunnel_id_;
  Receiver receiver_;
  std::vector<uint8_t> decap_scratch_;
  std::vector<uint8_t> encap_scratch_;
  uint64_t rejected_ = 0;
  TraceRecorder* trace_ = nullptr;
  uint32_t encap_name_ = 0;
  uint32_t decap_name_ = 0;
  uint32_t reject_name_ = 0;
};

}  // namespace androne

#endif  // SRC_NET_CHANNEL_H_
