#include "src/net/channel.h"

#include <utility>

namespace androne {

NetworkChannel::NetworkChannel(SimClock* clock, const LinkModel* link,
                               uint64_t seed)
    : clock_(clock), link_(link), rng_(seed) {}

void NetworkChannel::Send(std::vector<uint8_t> payload) {
  SendShared(std::make_shared<const std::vector<uint8_t>>(std::move(payload)));
}

void NetworkChannel::SendShared(SharedPayload payload) {
  ++sent_;
  if (link_->SampleLoss(rng_)) {
    ++lost_;
    return;
  }
  SimDuration latency = link_->SampleLatency(rng_);
  clock_->ScheduleAfter(latency,
                        [this, latency, payload = std::move(payload)] {
    if (!receiver_) {
      // No receiver (never set or torn down): count the datagram as dropped
      // rather than invoking an empty std::function.
      ++dropped_no_receiver_;
      return;
    }
    ++delivered_;
    latency_us_.Record(ToMicros(latency));
    receiver_(*payload);
  });
}

VpnTunnel::VpnTunnel(NetworkChannel* underlying, uint32_t tunnel_id)
    : underlying_(underlying), tunnel_id_(tunnel_id) {}

void VpnTunnel::SetReceiver(Receiver receiver) {
  receiver_ = std::move(receiver);
  underlying_->SetReceiver([this](const std::vector<uint8_t>& datagram) {
    if (datagram.size() < 4) {
      ++rejected_;
      return;
    }
    uint32_t id = static_cast<uint32_t>(datagram[0]) |
                  (static_cast<uint32_t>(datagram[1]) << 8) |
                  (static_cast<uint32_t>(datagram[2]) << 16) |
                  (static_cast<uint32_t>(datagram[3]) << 24);
    if (id != tunnel_id_) {
      ++rejected_;  // Authenticated-decapsulation failure.
      return;
    }
    if (receiver_) {
      // Decapsulate into a reused scratch buffer: steady-state tunnel
      // delivery allocates nothing once the buffer has grown to the MTU.
      decap_scratch_.assign(datagram.begin() + 4, datagram.end());
      receiver_(decap_scratch_);
    }
  });
}

void VpnTunnel::Send(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> encapsulated;
  encapsulated.reserve(payload.size() + 4);
  encapsulated.push_back(static_cast<uint8_t>(tunnel_id_ & 0xFF));
  encapsulated.push_back(static_cast<uint8_t>((tunnel_id_ >> 8) & 0xFF));
  encapsulated.push_back(static_cast<uint8_t>((tunnel_id_ >> 16) & 0xFF));
  encapsulated.push_back(static_cast<uint8_t>((tunnel_id_ >> 24) & 0xFF));
  encapsulated.insert(encapsulated.end(), payload.begin(), payload.end());
  underlying_->Send(std::move(encapsulated));
}

}  // namespace androne
