#include "src/net/channel.h"

#include <string>
#include <utility>

#include "src/obs/trace.h"
#include "src/snapshot/state_io.h"

namespace androne {

namespace {
// Pooled datagram buffers kept per channel; enough for every in-flight
// datagram on realistic link latencies without hoarding memory.
constexpr size_t kBufferPoolCap = 32;
}  // namespace

NetworkChannel::NetworkChannel(SimClock* clock, const LinkModel* link,
                               uint64_t seed, Arena* arena)
    : clock_(clock),
      link_(link),
      rng_(seed),
      inflight_(ArenaAllocator<std::pair<const uint64_t, Inflight>>(arena)) {}

void NetworkChannel::Send(std::vector<uint8_t> payload) {
  SendShared(std::make_shared<const std::vector<uint8_t>>(std::move(payload)));
}

void NetworkChannel::SendShared(SharedPayload payload) {
  ++sent_;
  if (link_->SampleLoss(rng_)) {
    ++lost_;
    if (trace_ != nullptr && trace_->enabled(kTraceNet)) {
      trace_->Instant(kTraceNet, lost_name_);
    }
    return;
  }
  SimDuration latency = link_->SampleLatency(rng_);
  // In-flight datagrams live in a registry keyed by a persistent monotone id
  // (not the transient EventId) so checkpoints can enumerate and re-arm them.
  const uint64_t id = next_inflight_id_++;
  Inflight& entry = inflight_[id];
  entry.payload = std::move(payload);
  entry.latency = latency;
  entry.event = clock_->ScheduleAfter(latency, [this, id] { Deliver(id); });
}

void NetworkChannel::Deliver(uint64_t id) {
  auto it = inflight_.find(id);
  if (it == inflight_.end()) {
    return;
  }
  SharedPayload payload = std::move(it->second.payload);
  SimDuration latency = it->second.latency;
  inflight_.erase(it);
  if (!receiver_) {
    // No receiver (never set or torn down): count the datagram as dropped
    // rather than invoking an empty std::function.
    ++dropped_no_receiver_;
    if (trace_ != nullptr && trace_->enabled(kTraceNet)) {
      trace_->Instant(kTraceNet, drop_name_);
    }
    return;
  }
  ++delivered_;
  latency_us_.Record(ToMicros(latency));
  if (trace_ != nullptr && trace_->enabled(kTraceNet)) {
    trace_->Instant(kTraceNet, delivered_name_, -1, ToMicros(latency));
  }
  receiver_(*payload);
}

void NetworkChannel::SaveState(SnapshotWriter& w, TimerRegistry& timers,
                               const std::string& prefix) const {
  w.Section("CHAN");
  SaveRng(w, rng_);
  w.U64(next_inflight_id_);
  w.U64(sent_);
  w.U64(delivered_);
  w.U64(lost_);
  w.U64(dropped_no_receiver_);
  SaveHistogram(w, latency_us_);
  w.U64(inflight_.size());
  for (const auto& [id, entry] : inflight_) {
    w.U64(id);
    w.I64(entry.latency);
    w.Bytes(entry.payload->data(), entry.payload->size());
    SimTime when = 0;
    uint64_t seq = 0;
    if (clock_->PendingInfo(entry.event, &when, &seq)) {
      timers.Add(prefix + "." + std::to_string(id), when, seq);
    }
  }
}

Status NetworkChannel::RestoreState(SnapshotReader& r) {
  RETURN_IF_ERROR(r.Section("CHAN"));
  RETURN_IF_ERROR(RestoreRng(r, rng_));
  RETURN_IF_ERROR(r.U64(&next_inflight_id_));
  RETURN_IF_ERROR(r.U64(&sent_));
  RETURN_IF_ERROR(r.U64(&delivered_));
  RETURN_IF_ERROR(r.U64(&lost_));
  RETURN_IF_ERROR(r.U64(&dropped_no_receiver_));
  RETURN_IF_ERROR(RestoreHistogram(r, latency_us_));
  uint64_t count = 0;
  RETURN_IF_ERROR(r.U64(&count));
  inflight_.clear();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    RETURN_IF_ERROR(r.U64(&id));
    Inflight entry;
    RETURN_IF_ERROR(r.I64(&entry.latency));
    std::vector<uint8_t> bytes;
    RETURN_IF_ERROR(r.BytesInto(&bytes));
    entry.payload =
        std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    entry.event = 0;  // Re-armed via RegisterTimers.
    inflight_.emplace(id, std::move(entry));
  }
  return OkStatus();
}

void NetworkChannel::RegisterTimers(TimerRearmer& rearmer,
                                    const std::string& prefix) {
  for (const auto& [id, entry] : inflight_) {
    const uint64_t captured = id;
    rearmer.Register(prefix + "." + std::to_string(id),
                     [this, captured](SimTime when) {
      inflight_[captured].event =
          clock_->ScheduleAt(when, [this, captured] { Deliver(captured); });
    });
  }
}

void NetworkChannel::SetTrace(TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    delivered_name_ = trace_->InternName("net.delivered");
    lost_name_ = trace_->InternName("net.lost");
    drop_name_ = trace_->InternName("net.drop_no_receiver");
  }
}

void NetworkChannel::SendCopy(const uint8_t* data, size_t size) {
  std::unique_ptr<std::vector<uint8_t>> buffer;
  if (!pool_->free.empty()) {
    buffer = std::move(pool_->free.back());
    pool_->free.pop_back();
  } else {
    buffer = std::make_unique<std::vector<uint8_t>>();
  }
  buffer->assign(data, data + size);
  // The shared payload's deleter recycles the buffer instead of freeing it.
  // A weak_ptr breaks the cycle if the channel (and its pool) die while the
  // datagram is still in flight.
  std::weak_ptr<BufferPool> weak_pool = pool_;
  SharedPayload payload(buffer.release(),
                        [weak_pool](const std::vector<uint8_t>* p) {
    auto owned = std::unique_ptr<std::vector<uint8_t>>(
        const_cast<std::vector<uint8_t>*>(p));
    std::shared_ptr<BufferPool> pool = weak_pool.lock();
    if (pool != nullptr && pool->free.size() < kBufferPoolCap) {
      pool->free.push_back(std::move(owned));
    }
  });
  SendShared(std::move(payload));
}

VpnTunnel::VpnTunnel(NetworkChannel* underlying, uint32_t tunnel_id)
    : underlying_(underlying), tunnel_id_(tunnel_id) {}

void VpnTunnel::SetReceiver(Receiver receiver) {
  receiver_ = std::move(receiver);
  underlying_->SetReceiver([this](const std::vector<uint8_t>& datagram) {
    if (datagram.size() < 4) {
      ++rejected_;
      if (trace_ != nullptr && trace_->enabled(kTraceNet)) {
        trace_->Instant(kTraceNet, reject_name_);
      }
      return;
    }
    uint32_t id = static_cast<uint32_t>(datagram[0]) |
                  (static_cast<uint32_t>(datagram[1]) << 8) |
                  (static_cast<uint32_t>(datagram[2]) << 16) |
                  (static_cast<uint32_t>(datagram[3]) << 24);
    if (id != tunnel_id_) {
      ++rejected_;  // Authenticated-decapsulation failure.
      if (trace_ != nullptr && trace_->enabled(kTraceNet)) {
        trace_->Instant(kTraceNet, reject_name_);
      }
      return;
    }
    if (receiver_) {
      // Decapsulate into a reused scratch buffer: steady-state tunnel
      // delivery allocates nothing once the buffer has grown to the MTU.
      decap_scratch_.assign(datagram.begin() + 4, datagram.end());
      if (trace_ != nullptr && trace_->enabled(kTraceNet)) {
        trace_->Instant(kTraceNet, decap_name_, -1,
                        static_cast<int64_t>(decap_scratch_.size()));
      }
      receiver_(decap_scratch_);
    }
  });
}

void VpnTunnel::Send(const std::vector<uint8_t>& payload) {
  // Encapsulate into a reused scratch, then hand off through the channel's
  // buffer pool: steady-state tunnel sends allocate nothing.
  encap_scratch_.clear();
  encap_scratch_.reserve(payload.size() + 4);
  encap_scratch_.push_back(static_cast<uint8_t>(tunnel_id_ & 0xFF));
  encap_scratch_.push_back(static_cast<uint8_t>((tunnel_id_ >> 8) & 0xFF));
  encap_scratch_.push_back(static_cast<uint8_t>((tunnel_id_ >> 16) & 0xFF));
  encap_scratch_.push_back(static_cast<uint8_t>((tunnel_id_ >> 24) & 0xFF));
  encap_scratch_.insert(encap_scratch_.end(), payload.begin(), payload.end());
  if (trace_ != nullptr && trace_->enabled(kTraceNet)) {
    trace_->Instant(kTraceNet, encap_name_, -1,
                    static_cast<int64_t>(encap_scratch_.size()));
  }
  underlying_->SendCopy(encap_scratch_.data(), encap_scratch_.size());
}

void VpnTunnel::SetTrace(TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    encap_name_ = trace_->InternName("vpn.encap");
    decap_name_ = trace_->InternName("vpn.decap");
    reject_name_ = trace_->InternName("vpn.reject");
  }
}

}  // namespace androne
