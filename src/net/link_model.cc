#include "src/net/link_model.h"

#include <algorithm>

namespace androne {

SimDuration CellularLteModel::SampleLatency(Rng& rng) const {
  double ms = rng.Gaussian(kBaseMeanMs, kBaseStddevMs);
  ms = std::max(35.0, ms);  // Physical floor: radio + core network.
  if (rng.Bernoulli(kSpikeProbability)) {
    // Handover or HARQ retransmission burst.
    ms = std::max(ms, rng.Uniform(kSpikeMinMs, kSpikeMaxMs));
  }
  return static_cast<SimDuration>(ms * 1e6);
}

bool CellularLteModel::SampleLoss(Rng& rng) const {
  return rng.Bernoulli(kLossProbability);
}

SimDuration RfRemoteModel::SampleLatency(Rng& rng) const {
  // Frame-timing quantization across vendor protocols: 8-85 ms.
  double ms = rng.Uniform(8.0, 85.0);
  return static_cast<SimDuration>(ms * 1e6);
}

bool RfRemoteModel::SampleLoss(Rng& rng) const {
  return rng.Bernoulli(1e-6);
}

SimDuration WiredModel::SampleLatency(Rng& rng) const {
  double ms = std::max(0.2, rng.Gaussian(1.0, 0.2));
  return static_cast<SimDuration>(ms * 1e6);
}

const char* LinkProfileName(LinkProfile profile) {
  switch (profile) {
    case LinkProfile::kCellularLte:
      return "lte";
    case LinkProfile::kRfRemote:
      return "rf";
    case LinkProfile::kWired:
      return "wired";
  }
  return "unknown";
}

StatusOr<LinkProfile> LinkProfileFromName(const std::string& name) {
  if (name == "lte") {
    return LinkProfile::kCellularLte;
  }
  if (name == "rf") {
    return LinkProfile::kRfRemote;
  }
  if (name == "wired") {
    return LinkProfile::kWired;
  }
  return InvalidArgumentError("unknown link profile \"" + name +
                              "\" (expected one of: lte, rf, wired)");
}

std::unique_ptr<LinkModel> MakeLinkModel(LinkProfile profile) {
  switch (profile) {
    case LinkProfile::kRfRemote:
      return std::make_unique<RfRemoteModel>();
    case LinkProfile::kWired:
      return std::make_unique<WiredModel>();
    case LinkProfile::kCellularLte:
      break;
  }
  return std::make_unique<CellularLteModel>();
}

}  // namespace androne
