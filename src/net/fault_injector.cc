#include "src/net/fault_injector.h"

namespace androne {

const char* LinkDirectionName(LinkDirection dir) {
  switch (dir) {
    case LinkDirection::kForward:
      return "forward";
    case LinkDirection::kReverse:
      return "reverse";
    case LinkDirection::kBoth:
      return "both";
  }
  return "unknown";
}

void FaultPlan::AddOutage(SimTime start, SimDuration duration,
                          LinkDirection dir) {
  FaultWindow w;
  w.kind = FaultKind::kOutage;
  w.start = start;
  w.end = start + duration;
  w.direction = dir;
  windows_.push_back(w);
}

void FaultPlan::AddBurstLoss(SimTime start, SimDuration duration,
                             double loss_probability, LinkDirection dir) {
  FaultWindow w;
  w.kind = FaultKind::kBurstLoss;
  w.start = start;
  w.end = start + duration;
  w.direction = dir;
  w.loss_probability = loss_probability;
  windows_.push_back(w);
}

void FaultPlan::AddLatencyInflation(SimTime start, SimDuration duration,
                                    double multiplier, SimDuration extra,
                                    LinkDirection dir) {
  FaultWindow w;
  w.kind = FaultKind::kLatency;
  w.start = start;
  w.end = start + duration;
  w.direction = dir;
  w.latency_multiplier = multiplier;
  w.extra_latency = extra;
  windows_.push_back(w);
}

bool FaultPlan::InOutage(SimTime t, LinkDirection dir) const {
  for (const FaultWindow& w : windows_) {
    if (w.kind == FaultKind::kOutage && w.Covers(t, dir)) {
      return true;
    }
  }
  return false;
}

double FaultPlan::BurstLossProbability(SimTime t, LinkDirection dir) const {
  // Overlapping windows act as independent droppers: survive all of them.
  double survive = 1.0;
  for (const FaultWindow& w : windows_) {
    if (w.kind == FaultKind::kBurstLoss && w.Covers(t, dir)) {
      survive *= 1.0 - w.loss_probability;
    }
  }
  return 1.0 - survive;
}

SimDuration FaultPlan::InflateLatency(SimTime t, LinkDirection dir,
                                      SimDuration latency) const {
  for (const FaultWindow& w : windows_) {
    if (w.kind == FaultKind::kLatency && w.Covers(t, dir)) {
      latency = static_cast<SimDuration>(static_cast<double>(latency) *
                                         w.latency_multiplier) +
                w.extra_latency;
    }
  }
  return latency;
}

SimDuration FaultyLinkModel::SampleLatency(Rng& rng) const {
  SimDuration latency = base_->SampleLatency(rng);
  SimDuration inflated =
      plan_->InflateLatency(clock_->now(), direction_, latency);
  if (inflated != latency) {
    ++counters_.inflated_samples;
  }
  return inflated;
}

bool FaultyLinkModel::SampleLoss(Rng& rng) const {
  SimTime now = clock_->now();
  if (plan_->InOutage(now, direction_)) {
    ++counters_.outage_losses;
    return true;
  }
  double burst = plan_->BurstLossProbability(now, direction_);
  if (burst > 0 && rng.Bernoulli(burst)) {
    ++counters_.burst_losses;
    return true;
  }
  return base_->SampleLoss(rng);
}

}  // namespace androne
