#include "src/net/fault_injector.h"

namespace androne {

const char* LinkDirectionName(LinkDirection dir) {
  switch (dir) {
    case LinkDirection::kForward:
      return "forward";
    case LinkDirection::kReverse:
      return "reverse";
    case LinkDirection::kBoth:
      return "both";
  }
  return "unknown";
}

Status FaultPlan::AddOutage(SimTime start, SimDuration duration,
                            LinkDirection dir) {
  FaultWindowSpec w;
  w.kind = static_cast<int>(FaultKind::kOutage);
  w.scope = static_cast<int>(dir);
  w.start = start;
  w.end = start + duration;
  return AddWindow(w);
}

Status FaultPlan::AddBurstLoss(SimTime start, SimDuration duration,
                               double loss_probability, LinkDirection dir) {
  FaultWindowSpec w;
  w.kind = static_cast<int>(FaultKind::kBurstLoss);
  w.scope = static_cast<int>(dir);
  w.start = start;
  w.end = start + duration;
  w.p0 = loss_probability;
  return AddWindow(w);
}

Status FaultPlan::AddLatencyInflation(SimTime start, SimDuration duration,
                                      double multiplier, SimDuration extra,
                                      LinkDirection dir) {
  FaultWindowSpec w;
  w.kind = static_cast<int>(FaultKind::kLatency);
  w.scope = static_cast<int>(dir);
  w.start = start;
  w.end = start + duration;
  w.p0 = multiplier;
  w.d0 = extra;
  return AddWindow(w);
}

Status FaultPlan::AddWindow(const FaultWindowSpec& window) {
  RETURN_IF_ERROR(FaultSchedule::ValidateWindow(window, kMaxFaultKind,
                                                kMaxLinkDirection));
  switch (static_cast<FaultKind>(window.kind)) {
    case FaultKind::kOutage:
      break;
    case FaultKind::kBurstLoss:
      if (window.p0 < 0 || window.p0 > 1) {
        return InvalidArgumentError(
            "burst-loss window: probability outside [0, 1]");
      }
      break;
    case FaultKind::kLatency:
      if (window.p0 < 0) {
        return InvalidArgumentError(
            "latency window: negative latency multiplier");
      }
      break;
  }
  schedule_.Add(window);
  return OkStatus();
}

bool FaultPlan::InOutage(SimTime t, LinkDirection dir) const {
  return schedule_.AnyActive(t, static_cast<int>(FaultKind::kOutage),
                             static_cast<int>(dir));
}

double FaultPlan::BurstLossProbability(SimTime t, LinkDirection dir) const {
  // Overlapping windows act as independent droppers: survive all of them.
  double survive = 1.0;
  schedule_.ForEachActive(t, static_cast<int>(FaultKind::kBurstLoss),
                          static_cast<int>(dir),
                          [&survive](const FaultWindowSpec& w) {
                            survive *= 1.0 - w.p0;
                          });
  return 1.0 - survive;
}

SimDuration FaultPlan::InflateLatency(SimTime t, LinkDirection dir,
                                      SimDuration latency) const {
  schedule_.ForEachActive(
      t, static_cast<int>(FaultKind::kLatency), static_cast<int>(dir),
      [&latency](const FaultWindowSpec& w) {
        latency = static_cast<SimDuration>(static_cast<double>(latency) *
                                           w.p0) +
                  w.d0;
      });
  return latency;
}

SimDuration FaultyLinkModel::SampleLatency(Rng& rng) const {
  SimDuration latency = base_->SampleLatency(rng);
  SimDuration inflated =
      plan_->InflateLatency(clock_->now(), direction_, latency);
  if (inflated != latency) {
    ++counters_.inflated_samples;
  }
  return inflated;
}

bool FaultyLinkModel::SampleLoss(Rng& rng) const {
  SimTime now = clock_->now();
  if (plan_->InOutage(now, direction_)) {
    ++counters_.outage_losses;
    return true;
  }
  double burst = plan_->BurstLossProbability(now, direction_);
  if (burst > 0 && rng.Bernoulli(burst)) {
    ++counters_.burst_losses;
    return true;
  }
  return base_->SampleLoss(rng);
}

}  // namespace androne
