// Deterministic, sim-clock-driven network fault injection. A FaultPlan is a
// scripted schedule of fault windows — total outages, burst loss, latency
// inflation, asymmetric partitions — and a FaultyLinkModel decorates any
// LinkModel with that plan, so the same chaos scenario replays bit-identically
// under a fixed seed. This is the substrate for the link-loss failsafe and
// chaos tests: the paper's whole premise (§6.5) is that virtual drones stay
// safe over a lossy LTE link, which the seed models only on the happy path.
//
// The window machinery is the shared util/fault_plan FaultSchedule, the same
// substrate the sensor fault layer (src/hw/sensor_faults.h) builds on, so one
// chaos script can compose network and sensor fault windows on one time base.
#ifndef SRC_NET_FAULT_INJECTOR_H_
#define SRC_NET_FAULT_INJECTOR_H_

#include <string>

#include "src/net/link_model.h"
#include "src/util/fault_plan.h"
#include "src/util/sim_clock.h"

namespace androne {

// Which direction of a duplex link a fault window applies to. A plain
// NetworkChannel is always kForward; DuplexChannel's reverse channel is
// kReverse. kBoth windows hit either direction (symmetric fault).
enum class LinkDirection { kForward = 0, kReverse = 1, kBoth = kFaultScopeAll };

const char* LinkDirectionName(LinkDirection dir);

enum class FaultKind {
  kOutage,     // Every packet in the window is lost.
  kBurstLoss,  // Packets are lost with an elevated probability.
  kLatency,    // Sampled latency is scaled and/or inflated by a constant.
};

inline constexpr int kMaxFaultKind = static_cast<int>(FaultKind::kLatency);
inline constexpr int kMaxLinkDirection =
    static_cast<int>(LinkDirection::kReverse);

// A scripted fault schedule. Build it once before the scenario runs; the
// decorated links consult it on every send. Windows may overlap (all
// matching windows apply: loss probabilities are combined, latency effects
// compose). Window parameters map onto the generic spec as
// p0 = loss probability / latency multiplier, d0 = extra latency.
//
// Every builder validates the window (FaultSchedule::ValidateWindow plus
// kind-specific parameter ranges) and rejects malformed input with a
// descriptive Status instead of silently scheduling nonsense; on error the
// plan is unchanged.
class FaultPlan {
 public:
  // Total blackout of [start, start+duration) in |dir|.
  Status AddOutage(SimTime start, SimDuration duration,
                   LinkDirection dir = LinkDirection::kBoth);

  // Elevated random loss in the window; probability in [0, 1].
  Status AddBurstLoss(SimTime start, SimDuration duration,
                      double loss_probability,
                      LinkDirection dir = LinkDirection::kBoth);

  // Latency inflation: sampled latency * multiplier + extra (both >= 0).
  Status AddLatencyInflation(SimTime start, SimDuration duration,
                             double multiplier, SimDuration extra,
                             LinkDirection dir = LinkDirection::kBoth);

  // One-sided blackout — models an asymmetric partition where traffic flows
  // one way only (e.g. uplink delivered, acks lost).
  Status AddPartition(SimTime start, SimDuration duration, LinkDirection dir) {
    return AddOutage(start, duration, dir);
  }

  // Generic validated append — the manifest-loading path (fault windows
  // deserialized by util/fault_plan_io land here).
  Status AddWindow(const FaultWindowSpec& window);

  const FaultSchedule& schedule() const { return schedule_; }

  // True if any outage window covers (t, dir).
  bool InOutage(SimTime t, LinkDirection dir) const;

  // Probability that a packet sent at (t, dir) is dropped by burst-loss
  // windows (combined across overlapping windows; outages excluded).
  double BurstLossProbability(SimTime t, LinkDirection dir) const;

  // Applies every covering latency window to |latency|.
  SimDuration InflateLatency(SimTime t, LinkDirection dir,
                             SimDuration latency) const;

 private:
  FaultSchedule schedule_;
};

// Per-link fault counters, split by cause so tests and benches can attribute
// every lost packet.
struct FaultCounters {
  uint64_t outage_losses = 0;
  uint64_t burst_losses = 0;
  uint64_t inflated_samples = 0;
};

// Decorator: any LinkModel plus a FaultPlan. The plan and base model are
// borrowed and must outlive the decorator; several decorated links (e.g. the
// two directions of a duplex channel) may share one plan.
class FaultyLinkModel : public LinkModel {
 public:
  FaultyLinkModel(const LinkModel* base, const FaultPlan* plan,
                  const SimClock* clock,
                  LinkDirection direction = LinkDirection::kForward)
      : base_(base), plan_(plan), clock_(clock), direction_(direction) {}

  std::string name() const override {
    return base_->name() + "+faults(" + LinkDirectionName(direction_) + ")";
  }
  SimDuration SampleLatency(Rng& rng) const override;
  bool SampleLoss(Rng& rng) const override;

  const FaultCounters& counters() const { return counters_; }
  // Checkpoint hook: the counters are the decorator's only dynamic state
  // (the plan and base model are config).
  void RestoreCounters(const FaultCounters& counters) { counters_ = counters; }

 private:
  const LinkModel* base_;
  const FaultPlan* plan_;
  const SimClock* clock_;
  LinkDirection direction_;
  // SampleLoss/SampleLatency are const across the LinkModel interface; the
  // counters are observability only.
  mutable FaultCounters counters_;
};

}  // namespace androne

#endif  // SRC_NET_FAULT_INJECTOR_H_
