// Stochastic network link models. The paper's §6.5 measures MAVLink command
// latency over a T-Mobile LTE connection (avg 70 ms, max 356 ms, stddev
// 7.2 ms, 6 losses over ~150 k commands) and cites hobby-drone RF remote
// latencies of 8–85 ms. These models reproduce those regimes so the network
// benchmark and the end-to-end flight simulation exercise realistic paths.
#ifndef SRC_NET_LINK_MODEL_H_
#define SRC_NET_LINK_MODEL_H_

#include <memory>
#include <string>

#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace androne {

class LinkModel {
 public:
  virtual ~LinkModel() = default;

  virtual std::string name() const = 0;
  // One-way latency for a packet sent now.
  virtual SimDuration SampleLatency(Rng& rng) const = 0;
  // True if the packet is lost.
  virtual bool SampleLoss(Rng& rng) const = 0;
};

// Cellular LTE (drone <-> cloud): ~70 ms baseline RTT contribution with
// tight jitter, rare handover/retransmission spikes up to ~350 ms, and a
// ~4e-5 loss rate.
class CellularLteModel : public LinkModel {
 public:
  std::string name() const override { return "cellular-lte"; }
  SimDuration SampleLatency(Rng& rng) const override;
  bool SampleLoss(Rng& rng) const override;

  // Calibration (documented against §6.5).
  static constexpr double kBaseMeanMs = 69.7;
  static constexpr double kBaseStddevMs = 6.2;
  static constexpr double kSpikeProbability = 2.5e-4;
  static constexpr double kSpikeMinMs = 120.0;
  static constexpr double kSpikeMaxMs = 355.0;
  static constexpr double kLossProbability = 4e-5;
};

// Hobby-grade RF remote control link: 8–85 ms depending on protocol frame
// timing, effectively lossless at close range.
class RfRemoteModel : public LinkModel {
 public:
  std::string name() const override { return "rf-remote"; }
  SimDuration SampleLatency(Rng& rng) const override;
  bool SampleLoss(Rng& rng) const override;
};

// Wired LAN (ground-station testbed): ~1 ms, lossless.
class WiredModel : public LinkModel {
 public:
  std::string name() const override { return "wired"; }
  SimDuration SampleLatency(Rng& rng) const override;
  bool SampleLoss(Rng& rng) const override { (void)rng; return false; }
};

// Named link profile — the scenario DSL's network-condition axis
// (FlyNetSim-style: the link regime is a first-class sweep dimension, not
// an implementation detail of one bench).
enum class LinkProfile { kCellularLte = 0, kRfRemote = 1, kWired = 2 };

const char* LinkProfileName(LinkProfile profile);
// Case-sensitive inverse of LinkProfileName; error on unknown names.
StatusOr<LinkProfile> LinkProfileFromName(const std::string& name);

// Fresh model instance for the profile (models are stateless samplers).
std::unique_ptr<LinkModel> MakeLinkModel(LinkProfile profile);

}  // namespace androne

#endif  // SRC_NET_LINK_MODEL_H_
