#include "src/rt/disk_queue.h"

#include <utility>

namespace androne {

DiskQueue::DiskQueue(SimClock* clock, SimDuration service_time_per_op)
    : clock_(clock), service_time_(service_time_per_op) {}

void DiskQueue::Submit(DoneCallback done, double service_scale) {
  queue_.push_back(Op{std::move(done), service_scale});
  if (!busy_) {
    StartNext();
  }
}

void DiskQueue::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Op op = std::move(queue_.front());
  queue_.pop_front();
  auto service =
      static_cast<SimDuration>(static_cast<double>(service_time_) * op.service_scale);
  clock_->ScheduleAfter(service, [this, done = std::move(op.done)]() mutable {
    ++completed_ops_;
    done();
    StartNext();
  });
}

}  // namespace androne
