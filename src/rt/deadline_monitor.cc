#include "src/rt/deadline_monitor.h"

#include "src/obs/trace.h"

namespace androne {

void DeadlineMonitor::SetTrace(TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    miss_name_ = trace_->InternName("rt.deadline_miss");
    storm_name_ = trace_->InternName("rt.deadline_storm");
  }
}

void DeadlineMonitor::Record(SimTime now, bool missed) {
  while (!misses_.empty() && misses_.front() <= now - window_) {
    misses_.pop_front();
  }
  if (missed) {
    misses_.push_back(now);
    ++total_misses_;
    if (trace_ != nullptr && trace_->enabled(kTraceRt)) {
      trace_->Instant(kTraceRt, miss_name_, -1, misses_in_window());
    }
  }
  const bool storming = tripped();
  if (storming != storm_traced_) {
    if (storming && trace_ != nullptr && trace_->enabled(kTraceRt)) {
      trace_->Instant(kTraceRt, storm_name_, -1, misses_in_window());
    }
    storm_traced_ = storming;
  }
}

}  // namespace androne
