#include "src/rt/deadline_monitor.h"

namespace androne {

void DeadlineMonitor::Record(SimTime now, bool missed) {
  while (!misses_.empty() && misses_.front() <= now - window_) {
    misses_.pop_front();
  }
  if (missed) {
    misses_.push_back(now);
    ++total_misses_;
  }
}

}  // namespace androne
