// Sliding-window deadline-miss monitor for periodic real-time tasks.
//
// The flight controller's 400 Hz fast loop tolerates isolated deadline
// misses (motors hold their last output for one tick), but a *storm* of
// misses means the complex stack has lost its real-time guarantee — the
// Simplex trigger condition. The monitor counts misses inside a sliding
// time window and trips when the count crosses a threshold; it recovers on
// its own as old misses age out of the window.
#ifndef SRC_RT_DEADLINE_MONITOR_H_
#define SRC_RT_DEADLINE_MONITOR_H_

#include <cstdint>
#include <deque>

#include "src/snapshot/snapshot.h"
#include "src/util/time.h"

namespace androne {

class TraceRecorder;

class DeadlineMonitor {
 public:
  DeadlineMonitor(SimDuration window, int threshold)
      : window_(window), threshold_(threshold) {}

  // Attaches the rt trace category: each miss records an instant event
  // (arg = misses currently in the window) and each trip edge records a
  // storm event. Pass nullptr to detach.
  void SetTrace(TraceRecorder* trace);

  // Records one loop iteration's outcome at |now|. Call every tick — hits
  // advance the window even when nothing missed.
  void Record(SimTime now, bool missed);

  int misses_in_window() const { return static_cast<int>(misses_.size()); }
  bool tripped() const { return misses_in_window() >= threshold_; }
  uint64_t total_misses() const { return total_misses_; }

  // Checkpoint/restore: the sliding window, lifetime count, and the storm
  // edge-detector latch (window/threshold are config).
  void SaveState(SnapshotWriter& w) const {
    w.U64(misses_.size());
    for (SimTime t : misses_) {
      w.I64(t);
    }
    w.U64(total_misses_);
    w.Bool(storm_traced_);
  }
  Status RestoreState(SnapshotReader& r) {
    uint64_t n = 0;
    RETURN_IF_ERROR(r.U64(&n));
    misses_.clear();
    for (uint64_t i = 0; i < n; ++i) {
      SimTime t = 0;
      RETURN_IF_ERROR(r.I64(&t));
      misses_.push_back(t);
    }
    RETURN_IF_ERROR(r.U64(&total_misses_));
    return r.Bool(&storm_traced_);
  }

 private:
  SimDuration window_;
  int threshold_;
  std::deque<SimTime> misses_;
  uint64_t total_misses_ = 0;
  TraceRecorder* trace_ = nullptr;
  uint32_t miss_name_ = 0;
  uint32_t storm_name_ = 0;
  bool storm_traced_ = false;  // Edge-detect so a storm traces once.
};

}  // namespace androne

#endif  // SRC_RT_DEADLINE_MONITOR_H_
