#include "src/rt/fluid_resource.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace androne {

namespace {
// Work below this is considered complete (guards float drift).
constexpr double kWorkEpsilon = 1e-9;
}  // namespace

FluidResource::FluidResource(SimClock* clock, double capacity)
    : clock_(clock), capacity_(capacity) {}

FluidResource::JobId FluidResource::Submit(double work, double demand,
                                           DoneCallback done) {
  JobId id = next_id_++;
  if (work <= kWorkEpsilon) {
    clock_->ScheduleAfter(0, std::move(done));
    return id;
  }
  demand = std::max(demand, 1e-12);
  jobs_[id] = Job{work, demand, 0.0, std::move(done)};
  Reallocate();
  return id;
}

void FluidResource::Cancel(JobId id) {
  if (jobs_.erase(id) > 0) {
    Reallocate();
  }
}

double FluidResource::RateOf(JobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? 0.0 : it->second.rate;
}

void FluidResource::Reallocate() {
  // 1. Drain progress accrued at the previous allocation.
  double elapsed_s = ToSecondsF(clock_->now() - last_update_);
  if (elapsed_s > 0) {
    for (auto& [id, job] : jobs_) {
      job.remaining_work =
          std::max(0.0, job.remaining_work - job.rate * elapsed_s);
    }
  }
  last_update_ = clock_->now();

  // 2. Max-min fair allocation (water-filling): satisfy small demands fully,
  // split the rest evenly.
  std::vector<Job*> by_demand;
  by_demand.reserve(jobs_.size());
  for (auto& [id, job] : jobs_) {
    by_demand.push_back(&job);
  }
  std::sort(by_demand.begin(), by_demand.end(),
            [](const Job* a, const Job* b) { return a->demand < b->demand; });
  double left = capacity_;
  size_t remaining = by_demand.size();
  for (Job* job : by_demand) {
    double fair_share = left / static_cast<double>(remaining);
    job->rate = std::min(job->demand, fair_share);
    left -= job->rate;
    --remaining;
  }

  // 3. Re-arm the next completion event.
  if (pending_event_ != 0) {
    clock_->Cancel(pending_event_);
    pending_event_ = 0;
  }
  double next_completion_s = -1.0;
  for (const auto& [id, job] : jobs_) {
    if (job.rate <= 0) {
      continue;
    }
    double t = job.remaining_work / job.rate;
    if (next_completion_s < 0 || t < next_completion_s) {
      next_completion_s = t;
    }
  }
  if (next_completion_s >= 0) {
    // Round up to whole nanoseconds so the event fires at-or-after true
    // completion; firing early would leave un-drainable residual work.
    auto delay = static_cast<SimDuration>(std::ceil(next_completion_s * 1e9));
    pending_event_ =
        clock_->ScheduleAfter(delay, [this] { OnCompletionEvent(); });
  }
}

void FluidResource::OnCompletionEvent() {
  pending_event_ = 0;
  // Drain progress to now, then fire callbacks for every finished job.
  double elapsed_s = ToSecondsF(clock_->now() - last_update_);
  for (auto& [id, job] : jobs_) {
    job.remaining_work =
        std::max(0.0, job.remaining_work - job.rate * elapsed_s);
  }
  last_update_ = clock_->now();

  std::vector<DoneCallback> finished;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    // A job is done when its residual is below what it processes in ~2 ns
    // (guards against float drift across reallocation boundaries).
    double epsilon = std::max(kWorkEpsilon, it->second.rate * 2e-9);
    if (it->second.remaining_work <= epsilon) {
      finished.push_back(std::move(it->second.done));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  Reallocate();
  for (auto& cb : finished) {
    cb();
  }
}

}  // namespace androne
