// Fluid-flow shared resource model with max-min fair (water-filling)
// allocation. Models CPU time and memory bandwidth sharing among the
// workloads of concurrently running virtual drones (paper §6.1, Figure 10):
// each job demands up to |demand| units of a resource with fixed capacity;
// when total demand exceeds capacity, allocation is max-min fair, the
// behaviour of the Linux CFS scheduler and of a saturated memory controller.
#ifndef SRC_RT_FLUID_RESOURCE_H_
#define SRC_RT_FLUID_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/util/sim_clock.h"

namespace androne {

class FluidResource {
 public:
  using JobId = uint64_t;
  using DoneCallback = std::function<void()>;

  FluidResource(SimClock* clock, double capacity);

  // Starts a job that must process |work| units, drawing at most |demand|
  // units/second. |done| fires on the SimClock when the work completes.
  JobId Submit(double work, double demand, DoneCallback done);

  // Cancels a running job (its callback never fires).
  void Cancel(JobId id);

  // Instantaneous allocation for a job (0 if finished/unknown).
  double RateOf(JobId id) const;

  double capacity() const { return capacity_; }
  size_t active_jobs() const { return jobs_.size(); }

 private:
  struct Job {
    double remaining_work;
    double demand;
    double rate = 0.0;
    DoneCallback done;
  };

  // Drains progress since |last_update_|, recomputes the max-min fair
  // allocation, and re-arms the next-completion event.
  void Reallocate();
  void OnCompletionEvent();

  SimClock* clock_;
  double capacity_;
  JobId next_id_ = 1;
  std::map<JobId, Job> jobs_;
  SimTime last_update_ = 0;
  EventId pending_event_ = 0;
};

}  // namespace androne

#endif  // SRC_RT_FLUID_RESOURCE_H_
