#include "src/rt/passmark.h"

#include <vector>

#include "src/rt/disk_queue.h"
#include "src/rt/fluid_resource.h"
#include "src/util/sim_clock.h"

namespace androne {

namespace {

// Runs the multithreaded CPU test in every instance concurrently; returns
// the mean per-instance completion time (instances are symmetric).
double RunCpuTest(const PassmarkConfig& config) {
  SimClock clock;
  FluidResource cpus(&clock, kMachineCpus);
  double overhead = config.stock ? 0.0 : kContainerOverhead;
  if (!config.stock && config.model == PreemptionModel::kPreemptRt) {
    overhead += kRtCpuOverheadPerInstance * config.instances;
  }
  double total_work = kCpuTestWorkSeconds * (1.0 + overhead);
  std::vector<double> finish(static_cast<size_t>(config.instances), 0.0);
  for (int i = 0; i < config.instances; ++i) {
    cpus.Submit(total_work, /*demand=*/kMachineCpus,
                [&clock, &finish, i] { finish[static_cast<size_t>(i)] = ToSecondsF(clock.now()); });
  }
  clock.RunAll();
  double sum = 0;
  for (double f : finish) {
    sum += f;
  }
  return sum / config.instances;
}

// Each instance performs kDiskTestOps of (CPU phase -> synchronous storage
// op). Streams interleave on the shared CPU pool and single disk queue.
double RunDiskTest(const PassmarkConfig& config) {
  SimClock clock;
  FluidResource cpus(&clock, kMachineCpus);
  DiskQueue disk(&clock, SecondsF(kDiskServiceSeconds));
  const bool rt = !config.stock && config.model == PreemptionModel::kPreemptRt;
  const double cpu_overhead = config.stock ? 0.0 : kContainerOverhead;

  struct Stream {
    int ops_left = kDiskTestOps;
    double finish_s = 0.0;
  };
  std::vector<Stream> streams(static_cast<size_t>(config.instances));

  // Per-stream state machine: CPU phase, then disk op, repeat.
  std::function<void(size_t)> start_cpu_phase = [&](size_t s) {
    cpus.Submit(kDiskCpuPhaseSeconds * (1.0 + cpu_overhead), /*demand=*/1.0,
                [&, s] {
                  // Threaded-IRQ overhead shows up when the device is
                  // already busy (contended case).
                  double scale = (rt && disk.busy())
                                     ? 1.0 + kRtDiskContendedOverhead
                                     : 1.0;
                  disk.Submit(
                      [&, s] {
                        Stream& stream = streams[s];
                        if (--stream.ops_left > 0) {
                          start_cpu_phase(s);
                        } else {
                          stream.finish_s = ToSecondsF(clock.now());
                        }
                      },
                      scale);
                });
  };
  for (size_t s = 0; s < streams.size(); ++s) {
    start_cpu_phase(s);
  }
  clock.RunAll();
  double sum = 0;
  for (const Stream& stream : streams) {
    sum += stream.finish_s;
  }
  return sum / config.instances;
}

// Memory bandwidth streaming test: every instance demands a fixed fraction
// of total bandwidth; the controller divides max-min fairly when saturated.
double RunMemTest(const PassmarkConfig& config) {
  SimClock clock;
  const bool rt = !config.stock && config.model == PreemptionModel::kPreemptRt;
  double total_demand = kMemDemandFraction * config.instances;
  double capacity = 1.0;
  if (rt && total_demand > capacity) {
    // Preemptible reclaim/copy paths give up bandwidth under saturation.
    capacity = kRtMemSaturatedCapacity;
  }
  FluidResource bandwidth(&clock, capacity);
  double overhead = config.stock ? 0.0 : kContainerOverhead;
  double work = kMemTestWork * (1.0 + overhead);
  std::vector<double> finish(static_cast<size_t>(config.instances), 0.0);
  for (int i = 0; i < config.instances; ++i) {
    bandwidth.Submit(work, kMemDemandFraction, [&clock, &finish, i] {
      finish[static_cast<size_t>(i)] = ToSecondsF(clock.now());
    });
  }
  clock.RunAll();
  double sum = 0;
  for (double f : finish) {
    sum += f;
  }
  return sum / config.instances;
}

}  // namespace

PassmarkScores RunPassmark(const PassmarkConfig& config) {
  PassmarkScores scores;
  scores.cpu_seconds = RunCpuTest(config);
  scores.disk_seconds = RunDiskTest(config);
  scores.memory_seconds = RunMemTest(config);
  return scores;
}

}  // namespace androne
