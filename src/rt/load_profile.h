// Workload load descriptors for the simulated kernel. The paper's evaluation
// loads the system with PassMark instances, iperf network traffic, and the
// `stress` generator; each maps to a LoadProfile that parameterizes the
// kernel latency model and the shared-resource contention models.
#ifndef SRC_RT_LOAD_PROFILE_H_
#define SRC_RT_LOAD_PROFILE_H_

namespace androne {

// Aggregate load on the simulated drone computer. Values are rates/fractions
// of the whole machine, not per-task.
struct LoadProfile {
  // Fraction of total CPU capacity demanded by runnable tasks [0, 1].
  double cpu_demand = 0.0;
  // Hardware interrupt rate (network RX/TX, storage completions), per sec.
  double irq_rate_hz = 100.0;
  // Filesystem/storage operations per second.
  double io_ops_per_sec = 0.0;
  // Memory subsystem pressure [0, 1]: page churn, reclaim, thrash.
  double vm_pressure = 0.0;

  // Combines two concurrent loads (saturating at full machine utilization).
  LoadProfile operator+(const LoadProfile& other) const;
};

// Preset profiles matching the paper's §6.2 scenarios.

// Otherwise-idle system: background daemons only.
LoadProfile IdleLoad();

// One PassMark instance: multithreaded CPU + disk + memory benchmark.
LoadProfile PassmarkLoad();

// iperf network throughput test over Gigabit Ethernet: IRQ-heavy.
LoadProfile IperfLoad();

// `stress` with 4 cpu + 2 io + 2 vm + 2 hdd worker processes.
LoadProfile StressLoad();

}  // namespace androne

#endif  // SRC_RT_LOAD_PROFILE_H_
