// PassMark PerformanceTest analog (paper §6.1, Figure 10). Runs the CPU,
// disk, and memory sub-benchmarks in 1..N concurrent virtual drones on the
// simulated 4-core machine and reports per-instance completion times. The
// paper normalizes against a single instance on stock Android Things; the
// fig10 bench does the same.
//
// Machine/benchmark model constants (documented calibration):
//  * 4 CPUs; PassMark's CPU test is multithreaded and saturates all cores,
//    so N instances share max-min fairly -> ~linear slowdown.
//  * The disk test alternates a CPU phase with a synchronous storage op of
//    twice the CPU phase's length; the single-queue microSD serializes
//    concurrent streams -> ~2x slowdown at 3 instances.
//  * The memory test demands ~0.6 of total memory bandwidth -> 3 instances
//    saturate the controller at 1.8x demand -> ~1.8x slowdown.
//  * Containerization (cgroup accounting, bridged networking) costs ~1.2%.
//  * PREEMPT_RT costs extra only under contention: threaded interrupts add
//    ~10% per storage op when the device queue is backed up, lock preemption
//    costs ~1.5%/instance of CPU, and reclaim preemption cuts usable memory
//    bandwidth ~20% when saturated — reproducing the paper's 2.2x/2.3x
//    disk/memory RT results at 3 virtual drones.
#ifndef SRC_RT_PASSMARK_H_
#define SRC_RT_PASSMARK_H_

#include "src/rt/kernel_model.h"

namespace androne {

struct PassmarkConfig {
  int instances = 1;  // Number of virtual drones running PassMark.
  PreemptionModel model = PreemptionModel::kPreemptRt;
  // Stock Android Things: no containers, no PREEMPT/PREEMPT_RT patches.
  bool stock = false;
};

// Per-instance completion time of each sub-benchmark, in simulated seconds.
struct PassmarkScores {
  double cpu_seconds = 0.0;
  double disk_seconds = 0.0;
  double memory_seconds = 0.0;
};

PassmarkScores RunPassmark(const PassmarkConfig& config);

// Machine model constants, exposed for tests and the ablation bench.
inline constexpr int kMachineCpus = 4;
inline constexpr double kCpuTestWorkSeconds = 40.0;     // CPU-seconds of work.
inline constexpr int kDiskTestOps = 200;
inline constexpr double kDiskServiceSeconds = 0.005;    // Per storage op.
inline constexpr double kDiskCpuPhaseSeconds = 0.0025;  // CPU phase per op.
inline constexpr double kMemTestWork = 6.0;             // Bandwidth-seconds.
inline constexpr double kMemDemandFraction = 0.6;       // Of total bandwidth.
inline constexpr double kContainerOverhead = 0.012;
inline constexpr double kRtCpuOverheadPerInstance = 0.015;
inline constexpr double kRtDiskContendedOverhead = 0.105;
inline constexpr double kRtMemSaturatedCapacity = 0.8;

}  // namespace androne

#endif  // SRC_RT_PASSMARK_H_
