#include "src/rt/cyclictest.h"

namespace androne {

CyclictestResult RunCyclictest(PreemptionModel model, const LoadProfile& load,
                               const CyclictestOptions& options) {
  WakeLatencySampler sampler(model, load, options.seed);
  CyclictestResult result;
  result.loops = options.loops;
  for (uint64_t i = 0; i < options.loops; ++i) {
    int64_t latency_us = sampler.SampleWholeUs();
    result.histogram.Record(latency_us);
    if (static_cast<double>(latency_us) > kArdupilotFastLoopBudgetUs) {
      ++result.missed_fast_loop_deadlines;
    }
  }
  return result;
}

}  // namespace androne
