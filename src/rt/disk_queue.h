// FIFO storage-device queue model. The Raspberry Pi's microSD card is a
// single-queue device: concurrent virtual drones' I/O serializes behind one
// another, which is what produces the sub-linear (~2x at 3 instances) disk
// slowdown in the paper's Figure 10.
#ifndef SRC_RT_DISK_QUEUE_H_
#define SRC_RT_DISK_QUEUE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/util/sim_clock.h"

namespace androne {

class DiskQueue {
 public:
  using DoneCallback = std::function<void()>;

  DiskQueue(SimClock* clock, SimDuration service_time_per_op);

  // Enqueues one operation; |done| fires after queueing delay + service.
  // |service_scale| stretches this op's service time (e.g. threaded-IRQ
  // overhead on PREEMPT_RT kernels).
  void Submit(DoneCallback done, double service_scale = 1.0);

  // True if the device is serving or has queued operations.
  bool busy() const { return busy_; }
  size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  uint64_t completed_ops() const { return completed_ops_; }

 private:
  struct Op {
    DoneCallback done;
    double service_scale;
  };

  void StartNext();

  SimClock* clock_;
  SimDuration service_time_;
  std::deque<Op> queue_;
  bool busy_ = false;
  uint64_t completed_ops_ = 0;
};

}  // namespace androne

#endif  // SRC_RT_DISK_QUEUE_H_
