// Simulated Linux kernel preemption/latency model.
//
// The paper builds AnDrone on a PREEMPT_RT-patched kernel and evaluates wake
// latency with cyclictest under three loads (§6.2, Figure 11). Real hardware
// is unavailable here, so this module models the *mechanisms* that produce
// those latencies: scheduler wake overhead, collisions with non-preemptible
// kernel sections (interrupt-disabled regions, inline softirq processing),
// and rare long outliers (softirq storms, SMI-like events). PREEMPT_RT makes
// almost all kernel code preemptible, which in this model shrinks both the
// probability and the length of non-preemptible sections by orders of
// magnitude — reproducing the paper's ~100x gap in worst-case latency.
//
// Model constants are calibrated against the paper's reported numbers
// (PREEMPT idle/PassMark/stress: avg 17/44/162 us, max 1307/14513/17819 us;
// PREEMPT_RT: avg 10/12/16 us, max 103/382/340 us).
#ifndef SRC_RT_KERNEL_MODEL_H_
#define SRC_RT_KERNEL_MODEL_H_

#include <cstdint>

#include "src/rt/load_profile.h"
#include "src/util/rng.h"

namespace androne {

// Kernel preemption configuration (paper §6.1): PREEMPT is the Navio2
// default ("minimally accepted real-time support"); PREEMPT_RT is the
// AnDrone default, making the kernel almost fully preemptible.
enum class PreemptionModel { kPreempt, kPreemptRt };

const char* PreemptionModelName(PreemptionModel model);

// Derived sampling parameters for one (kernel, load) combination.
struct LatencyModelParams {
  double base_us = 0.0;          // Mean scheduler wake overhead.
  double jitter_us = 0.0;        // Gaussian jitter around the base.
  double section_occupancy = 0.0;  // P(wake lands in a non-preemptible section).
  double section_mean_us = 0.0;  // Mean remaining section length (exponential).
  double section_cap_us = 0.0;   // Hard bound on a section's residual
                                 // (spinlock critical sections are bounded).
  double tail_probability = 0.0;   // P(rare long outlier event).
  double tail_max_us = 0.0;      // Outlier magnitude scale.
};

LatencyModelParams DeriveLatencyParams(PreemptionModel model,
                                       const LoadProfile& load);

// Draws wake-to-run latencies for a maximum-priority SCHED_FIFO task (the
// way AnDrone runs ArduPilot and cyclictest) under a stationary load.
class WakeLatencySampler {
 public:
  WakeLatencySampler(PreemptionModel model, const LoadProfile& load,
                     uint64_t seed);

  // One wake latency in microseconds (fractional).
  double SampleUs();

  // Same, rounded up to whole microseconds as cyclictest reports.
  int64_t SampleWholeUs();

  const LatencyModelParams& params() const { return params_; }

  // Checkpoint access: the latency stream is world state — a restored world
  // must draw the same wake latencies.
  Rng& checkpoint_rng() { return rng_; }

 private:
  LatencyModelParams params_;
  Rng rng_;
};

// ArduPilot's fast loop runs at 400 Hz; a latency above this budget misses
// the loop deadline (paper §6.2).
inline constexpr double kArdupilotFastLoopBudgetUs = 2500.0;

}  // namespace androne

#endif  // SRC_RT_KERNEL_MODEL_H_
