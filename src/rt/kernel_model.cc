#include "src/rt/kernel_model.h"

#include <algorithm>
#include <cmath>

namespace androne {

const char* PreemptionModelName(PreemptionModel model) {
  switch (model) {
    case PreemptionModel::kPreempt:
      return "PREEMPT";
    case PreemptionModel::kPreemptRt:
      return "PREEMPT_RT";
  }
  return "UNKNOWN";
}

LatencyModelParams DeriveLatencyParams(PreemptionModel model,
                                       const LoadProfile& load) {
  const double c = std::clamp(load.cpu_demand, 0.0, 1.0);
  const double i = load.irq_rate_hz / 1000.0;  // kHz.
  const double io = load.io_ops_per_sec;
  const double v = std::clamp(load.vm_pressure, 0.0, 1.0);

  LatencyModelParams p;
  if (model == PreemptionModel::kPreempt) {
    // Wake overhead grows with run-queue depth and IRQ servicing.
    p.base_us = 15.0 + 5.0 * c + 0.1 * i;
    p.jitter_us = 2.0 + 2.0 * c;
    // Non-preemptible occupancy: irq-off regions scale with storage sync
    // traffic and reclaim activity (stress's io/vm workers are the paper's
    // worst case).
    p.section_occupancy =
        std::min(0.6, 0.02 + 0.05 * c + std::min(0.25, io / 10000.0) + 0.12 * v);
    p.section_mean_us = 18.0 + 1.2 * i + 90.0 * v + io / 25.0;
    p.section_cap_us = 12.0 * p.section_mean_us;  // Long irq-off bursts.
    // Rare outliers: inline softirq storms under heavy network interrupts.
    p.tail_probability = 6e-7;
    p.tail_max_us = 1300.0 + i * (250.0 + 450.0 * v);
  } else {
    // PREEMPT_RT: threaded IRQs and sleeping spinlocks leave only short raw
    // spinlock sections non-preemptible.
    p.base_us = 9.0 + 2.5 * c + 0.08 * i;
    p.jitter_us = 1.0 + 1.0 * c;
    p.section_occupancy = 0.005 + 0.01 * c + 0.02 * v;
    p.section_mean_us = 10.0 + 0.5 * i + 20.0 * v;
    p.section_cap_us = 3.5 * p.section_mean_us + 50.0;  // Bounded spinlocks.
    p.tail_probability = 8e-7;
    p.tail_max_us = 90.0 + i * (8.0 + 6.0 * v);
  }
  return p;
}

WakeLatencySampler::WakeLatencySampler(PreemptionModel model,
                                       const LoadProfile& load, uint64_t seed)
    : params_(DeriveLatencyParams(model, load)), rng_(seed) {}

double WakeLatencySampler::SampleUs() {
  double latency = rng_.Gaussian(params_.base_us, params_.jitter_us);
  latency = std::max(2.0, latency);
  if (rng_.Bernoulli(params_.section_occupancy)) {
    // Remaining length of the section the wake landed in. Sections are
    // memoryless (exponential) but physically bounded, so the residual is
    // a capped exponential.
    latency += std::min(rng_.Exponential(params_.section_mean_us),
                        params_.section_cap_us);
  }
  if (rng_.Bernoulli(params_.tail_probability)) {
    // An outlier event (softirq storm) dominates whatever else happened in
    // that wake rather than stacking on it.
    latency = std::max(latency,
                       rng_.Uniform(0.5, 1.0) * params_.tail_max_us +
                           params_.base_us);
  }
  return latency;
}

int64_t WakeLatencySampler::SampleWholeUs() {
  return static_cast<int64_t>(std::ceil(SampleUs()));
}

}  // namespace androne
