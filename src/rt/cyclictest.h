// cyclictest analog (paper §6.2): a maximum-RT-priority task with locked
// memory wakes on a periodic timer and records wake-to-run latency.
#ifndef SRC_RT_CYCLICTEST_H_
#define SRC_RT_CYCLICTEST_H_

#include <cstdint>

#include "src/rt/kernel_model.h"
#include "src/rt/load_profile.h"
#include "src/util/histogram.h"

namespace androne {

struct CyclictestOptions {
  uint64_t loops = 100'000'000;  // The paper runs 100 M loops.
  uint64_t seed = 1;
};

struct CyclictestResult {
  Histogram histogram{10, 8};   // Latency in whole microseconds.
  uint64_t loops = 0;
  // Wakes whose latency exceeded ArduPilot's 2500 us fast-loop budget.
  uint64_t missed_fast_loop_deadlines = 0;
};

// Runs cyclictest under a stationary background load.
CyclictestResult RunCyclictest(PreemptionModel model, const LoadProfile& load,
                               const CyclictestOptions& options);

}  // namespace androne

#endif  // SRC_RT_CYCLICTEST_H_
