#include "src/rt/load_profile.h"

#include <algorithm>

namespace androne {

LoadProfile LoadProfile::operator+(const LoadProfile& other) const {
  return LoadProfile{
      .cpu_demand = std::min(1.0, cpu_demand + other.cpu_demand),
      .irq_rate_hz = irq_rate_hz + other.irq_rate_hz,
      .io_ops_per_sec = io_ops_per_sec + other.io_ops_per_sec,
      .vm_pressure = std::min(1.0, vm_pressure + other.vm_pressure),
  };
}

LoadProfile IdleLoad() {
  return LoadProfile{
      .cpu_demand = 0.02,
      .irq_rate_hz = 150.0,  // Timer ticks, background wakeups.
      .io_ops_per_sec = 5.0,
      .vm_pressure = 0.0,
  };
}

LoadProfile PassmarkLoad() {
  return LoadProfile{
      .cpu_demand = 0.95,  // Multithreaded CPU test saturates all cores.
      .irq_rate_hz = 600.0,
      .io_ops_per_sec = 900.0,  // Disk benchmark phase.
      .vm_pressure = 0.45,      // Memory benchmark phase.
  };
}

LoadProfile IperfLoad() {
  return LoadProfile{
      .cpu_demand = 0.25,
      // Gigabit line rate at ~1500 B frames with NAPI coalescing.
      .irq_rate_hz = 18000.0,
      .io_ops_per_sec = 0.0,
      .vm_pressure = 0.05,
  };
}

LoadProfile StressLoad() {
  // stress -c 4 -i 2 -m 2 -d 2: saturates CPU, hammers sync()/disk, and
  // churns anonymous memory, the paper's deliberately-worst-case load.
  return LoadProfile{
      .cpu_demand = 1.0,
      .irq_rate_hz = 4000.0,
      .io_ops_per_sec = 2500.0,
      .vm_pressure = 0.9,
  };
}

}  // namespace androne
