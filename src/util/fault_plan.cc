#include "src/util/fault_plan.h"

#include <algorithm>

namespace androne {

bool FaultSchedule::AnyActive(SimTime t, int kind, int scope) const {
  return FirstActive(t, kind, scope) != nullptr;
}

const FaultWindowSpec* FaultSchedule::FirstActive(SimTime t, int kind,
                                                  int scope) const {
  for (const FaultWindowSpec& w : windows_) {
    if (w.kind == kind && WindowCovers(w, t, scope)) {
      return &w;
    }
  }
  return nullptr;
}

SimTime FaultSchedule::last_end() const {
  SimTime end = 0;
  for (const FaultWindowSpec& w : windows_) {
    end = std::max(end, w.end);
  }
  return end;
}

}  // namespace androne
