#include "src/util/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace androne {

Status FaultSchedule::ValidateWindow(const FaultWindowSpec& window,
                                     int max_kind, int max_scope) {
  if (window.kind < 0 || window.kind > max_kind) {
    return InvalidArgumentError("fault window: unknown kind " +
                                std::to_string(window.kind));
  }
  if (window.scope != kFaultScopeAll &&
      (window.scope < 0 || window.scope > max_scope)) {
    return InvalidArgumentError("fault window: scope " +
                                std::to_string(window.scope) +
                                " out of range [0, " +
                                std::to_string(max_scope) + "]");
  }
  if (window.start < 0) {
    return InvalidArgumentError("fault window: negative start time");
  }
  if (window.end < window.start) {
    return InvalidArgumentError(
        "fault window: inverted window (end before start)");
  }
  if (window.d0 < 0) {
    return InvalidArgumentError("fault window: negative extra duration");
  }
  if (!std::isfinite(window.p0) || !std::isfinite(window.p1)) {
    return InvalidArgumentError("fault window: non-finite parameter");
  }
  return OkStatus();
}

Status FaultSchedule::Validate(int max_kind, int max_scope) const {
  for (size_t i = 0; i < windows_.size(); ++i) {
    Status status = ValidateWindow(windows_[i], max_kind, max_scope);
    if (!status.ok()) {
      return Status(status.code(),
                    "window " + std::to_string(i) + ": " + status.message());
    }
  }
  return OkStatus();
}

bool FaultSchedule::AnyActive(SimTime t, int kind, int scope) const {
  return FirstActive(t, kind, scope) != nullptr;
}

const FaultWindowSpec* FaultSchedule::FirstActive(SimTime t, int kind,
                                                  int scope) const {
  for (const FaultWindowSpec& w : windows_) {
    if (w.kind == kind && WindowCovers(w, t, scope)) {
      return &w;
    }
  }
  return nullptr;
}

SimTime FaultSchedule::last_end() const {
  SimTime end = 0;
  for (const FaultWindowSpec& w : windows_) {
    end = std::max(end, w.end);
  }
  return end;
}

}  // namespace androne
