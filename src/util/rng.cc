#include "src/util/rng.h"

#include <cmath>

namespace androne {

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  for (auto& s : state_) {
    s = SplitMix64(seed);
    seed += 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextU64Below(uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * m;
  has_spare_gaussian_ = true;
  return u * m;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace androne
