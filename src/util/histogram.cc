#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/bytes.h"

namespace androne {

Histogram::Histogram(int buckets_per_decade, int decades)
    : buckets_per_decade_(buckets_per_decade),
      buckets_(static_cast<size_t>(buckets_per_decade) * decades + 1, 0) {}

size_t Histogram::BucketFor(int64_t value) const {
  if (value < 1) {
    return 0;
  }
  double idx = std::log10(static_cast<double>(value)) * buckets_per_decade_;
  size_t bucket = static_cast<size_t>(idx) + 1;
  return std::min(bucket, buckets_.size() - 1);
}

int64_t Histogram::BucketUpperBound(size_t index) const {
  if (index == 0) {
    return 1;
  }
  return static_cast<int64_t>(
      std::ceil(std::pow(10.0, static_cast<double>(index) /
                                   buckets_per_decade_)));
}

void Histogram::Record(int64_t value) { Record(value, 1); }

void Histogram::Record(int64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value) *
             static_cast<double>(count);
  buckets_[BucketFor(value)] += count;
}

double Histogram::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  double n = static_cast<double>(count_);
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

int64_t Histogram::Percentile(double fraction) const {
  if (count_ == 0) {
    return 0;
  }
  fraction = std::clamp(fraction, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(count_)));
  target = std::max<uint64_t>(target, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min<int64_t>(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::vector<std::pair<int64_t, uint64_t>> Histogram::NonEmptyBuckets() const {
  std::vector<std::pair<int64_t, uint64_t>> out;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > 0) {
      out.emplace_back(BucketUpperBound(i), buckets_[i]);
    }
  }
  return out;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (buckets_per_decade_ == other.buckets_per_decade_ &&
      buckets_.size() == other.buckets_.size()) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    return;
  }
  // Layout mismatch: degrade gracefully by re-recording bucket summaries.
  for (const auto& [upper, n] : other.NonEmptyBuckets()) {
    Record(upper, n);
  }
}

uint64_t Histogram::Digest() const {
  uint64_t h = Fnv1a64Value(count_);
  h = Fnv1a64Value(min_, h);
  h = Fnv1a64Value(max_, h);
  h = Fnv1a64Value(sum_, h);
  h = Fnv1a64Value(sum_sq_, h);
  h = Fnv1a64(buckets_.data(), buckets_.size() * sizeof(uint64_t), h);
  return h;
}

std::string Histogram::ToString(const std::string& unit) const {
  char line[160];
  std::snprintf(line, sizeof(line),
                "samples=%llu min=%lld%s mean=%.1f%s p99=%lld%s max=%lld%s",
                static_cast<unsigned long long>(count_),
                static_cast<long long>(min()), unit.c_str(), mean(),
                unit.c_str(), static_cast<long long>(Percentile(0.99)),
                unit.c_str(), static_cast<long long>(max()), unit.c_str());
  return line;
}

}  // namespace androne
