// Shared scripted-fault vocabulary. Both chaos layers — network faults
// (src/net/fault_injector.h) and sensor faults (src/hw/sensor_faults.h) —
// express their schedules as FaultWindowSpec lists inside a FaultSchedule,
// so one chaos script composes windows across layers with the same time
// base, overlap semantics, and replay determinism. Each layer keeps its own
// typed facade (AddOutage, AddGpsJump, ...) that maps onto the generic
// (kind, scope, params) triple here.
#ifndef SRC_UTIL_FAULT_PLAN_H_
#define SRC_UTIL_FAULT_PLAN_H_

#include <vector>

#include "src/util/status.h"
#include "src/util/time.h"

namespace androne {

// Matches every scope; used for symmetric/global fault windows.
inline constexpr int kFaultScopeAll = -1;

// One scripted fault window. |kind| and |scope| are layer-defined small
// integers (the net layer uses FaultKind/LinkDirection, the hw layer uses
// SensorFaultKind/SensorChannel); |p0|, |p1|, |d0| carry kind-specific
// parameters (a loss probability, a jump magnitude, an extra latency, ...).
struct FaultWindowSpec {
  int kind = 0;
  int scope = kFaultScopeAll;
  SimTime start = 0;
  SimTime end = 0;  // Exclusive.
  double p0 = 0.0;
  double p1 = 0.0;
  SimDuration d0 = 0;
};

// A scripted fault schedule: an append-only list of windows consulted on
// every send/read. Windows may overlap; layers define how overlapping
// effects compose. Append during a run is allowed (tests script faults
// reactively); removal is not.
class FaultSchedule {
 public:
  void Add(const FaultWindowSpec& window) { windows_.push_back(window); }

  // Structural validation of one window against the owning layer's
  // vocabulary ranges: rejects unknown kinds, out-of-range scopes, negative
  // start times, inverted windows (end < start; zero-duration windows are
  // legal and cover nothing), negative extra durations, and non-finite
  // parameters. Layers route both their typed builders and manifest loading
  // through this, so a malformed window is a descriptive error at build
  // time instead of silent nonsense at replay time.
  static Status ValidateWindow(const FaultWindowSpec& window, int max_kind,
                               int max_scope);

  // ValidateWindow over every window already in the schedule.
  Status Validate(int max_kind, int max_scope) const;

  const std::vector<FaultWindowSpec>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }

  // True if any window of |kind| covers (t, scope).
  bool AnyActive(SimTime t, int kind, int scope) const;

  // Earliest-added active window of |kind| at (t, scope); nullptr if none.
  const FaultWindowSpec* FirstActive(SimTime t, int kind, int scope) const;

  // Applies |fn| to every active window of |kind| at (t, scope), in
  // insertion order.
  template <typename Fn>
  void ForEachActive(SimTime t, int kind, int scope, Fn&& fn) const {
    for (const FaultWindowSpec& w : windows_) {
      if (w.kind == kind && WindowCovers(w, t, scope)) {
        fn(w);
      }
    }
  }

  // End of the latest-ending window (0 for an empty schedule); chaos
  // scripts use it to run the scenario out.
  SimTime last_end() const;

  static bool WindowCovers(const FaultWindowSpec& w, SimTime t, int scope) {
    return t >= w.start && t < w.end &&
           (w.scope == kFaultScopeAll || w.scope == scope);
  }

 private:
  std::vector<FaultWindowSpec> windows_;
};

}  // namespace androne

#endif  // SRC_UTIL_FAULT_PLAN_H_
