#include "src/util/sim_clock.h"

#include <algorithm>
#include <utility>

namespace androne {

namespace {

EventId PackId(uint32_t slot, uint32_t generation) {
  return (static_cast<EventId>(slot) << 32) | generation;
}

}  // namespace

EventId SimClock::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) {
    when = now_;
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  uint32_t generation = slots_[slot].generation;
  heap_.push_back(Event{when, next_seq_++, slot, generation, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return PackId(slot, generation);
}

EventId SimClock::ScheduleAfter(SimDuration delay, Callback cb) {
  return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

void SimClock::RetireSlot(uint32_t slot) {
  // Generation 0 is skipped on wrap so no EventId is ever 0 and a stale
  // 32-bit id cannot collide with a freshly reset stamp.
  if (++slots_[slot].generation == 0) {
    slots_[slot].generation = 1;
  }
  free_slots_.push_back(slot);
}

bool SimClock::Cancel(EventId id) {
  uint32_t slot = static_cast<uint32_t>(id >> 32);
  uint32_t generation = static_cast<uint32_t>(id);
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return false;  // Already ran, already cancelled, or never existed.
  }
  RetireSlot(slot);
  --live_count_;
  ++cancelled_pending_;
  MaybeCompact();
  return true;
}

SimClock::Event SimClock::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

void SimClock::MaybeCompact() {
  if (heap_.size() < kCompactionMinEntries ||
      cancelled_pending_ * 2 <= heap_.size()) {
    return;
  }
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Event& ev) { return !IsLive(ev); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_pending_ = 0;
  ++compactions_;
}

bool SimClock::PopAndRunLive() {
  if (live_count_ == 0) {
    // Only tombstones remain (if anything); shed them all at once.
    heap_.clear();
    cancelled_pending_ = 0;
    return false;
  }
  while (!heap_.empty()) {
    Event ev = PopTop();
    if (!IsLive(ev)) {
      --cancelled_pending_;
      continue;  // Tombstone of a cancelled event.
    }
    RetireSlot(ev.slot);
    --live_count_;
    now_ = ev.when;
    ++events_run_;
    if (dispatch_hook_) {
      dispatch_hook_(now_);
    }
    ev.cb();
    return true;
  }
  return false;
}

bool SimClock::RunNext() { return PopAndRunLive(); }

bool SimClock::PendingInfo(EventId id, SimTime* when, uint64_t* seq) const {
  uint32_t slot = static_cast<uint32_t>(id >> 32);
  uint32_t generation = static_cast<uint32_t>(id);
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return false;
  }
  for (const Event& ev : heap_) {
    if (ev.slot == slot && ev.generation == generation) {
      *when = ev.when;
      *seq = ev.seq;
      return true;
    }
  }
  return false;
}

void SimClock::ResetForRestore(SimTime now, uint64_t events_run) {
  for (const Event& ev : heap_) {
    if (IsLive(ev)) {
      RetireSlot(ev.slot);
    }
  }
  heap_.clear();
  live_count_ = 0;
  cancelled_pending_ = 0;
  now_ = now;
  events_run_ = events_run;
}

void SimClock::RunUntil(SimTime until) {
  for (;;) {
    // Skim tombstones first: a cancelled entry ahead of |until| must not let
    // PopAndRunLive reach past the deadline to the next live event.
    while (!heap_.empty() && !IsLive(heap_.front())) {
      PopTop();
      --cancelled_pending_;
    }
    if (heap_.empty() || heap_.front().when > until) {
      break;
    }
    PopAndRunLive();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void SimClock::RunAll(uint64_t max_events) {
  uint64_t ran = 0;
  while (live_count_ > 0 && ran < max_events) {
    if (PopAndRunLive()) {
      ++ran;
    }
  }
  if (live_count_ == 0 && !heap_.empty()) {
    heap_.clear();  // Shed any trailing tombstones.
    cancelled_pending_ = 0;
  }
}

}  // namespace androne
