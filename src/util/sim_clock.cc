#include "src/util/sim_clock.h"

#include <utility>

namespace androne {

EventId SimClock::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) {
    when = now_;
  }
  EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(cb)});
  live_.insert(id);
  return id;
}

EventId SimClock::ScheduleAfter(SimDuration delay, Callback cb) {
  return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

bool SimClock::Cancel(EventId id) { return live_.erase(id) > 0; }

void SimClock::PopAndRun() {
  Event ev = queue_.top();
  queue_.pop();
  if (live_.erase(ev.id) == 0) {
    return;  // Cancelled; skip silently.
  }
  now_ = ev.when;
  ev.cb();
}

bool SimClock::RunNext() {
  while (!queue_.empty()) {
    bool is_live = live_.count(queue_.top().id) > 0;
    PopAndRun();
    if (is_live) {
      return true;
    }
  }
  return false;
}

void SimClock::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    PopAndRun();
  }
  if (now_ < until) {
    now_ = until;
  }
}

void SimClock::RunAll(uint64_t max_events) {
  uint64_t ran = 0;
  while (!queue_.empty() && ran < max_events) {
    PopAndRun();
    ++ran;
  }
}

}  // namespace androne
