#include "src/util/fault_plan_io.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/util/json.h"

namespace androne {

namespace {

StatusOr<int> NameToIndex(const std::vector<std::string>& names,
                          const std::string& name, const std::string& what) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      return static_cast<int>(i);
    }
  }
  std::string known;
  for (const std::string& n : names) {
    known += known.empty() ? n : ", " + n;
  }
  return InvalidArgumentError("unknown " + what + " \"" + name +
                              "\" (expected one of: " + known + ")");
}

}  // namespace

StatusOr<double> ParseManifestNumber(const std::string& text,
                                     const std::string& what) {
  if (text.empty()) {
    return InvalidArgumentError(what + ": empty number");
  }
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return InvalidArgumentError(what + ": \"" + text + "\" is not a number");
  }
  if (!std::isfinite(value)) {
    return InvalidArgumentError(what + ": \"" + text + "\" is not finite");
  }
  return value;
}

StatusOr<std::unique_ptr<XmlElement>> FaultWindowToXml(
    const FaultWindowSpec& window, const FaultVocabulary& vocabulary) {
  RETURN_IF_ERROR(FaultSchedule::ValidateWindow(window, vocabulary.max_kind(),
                                                vocabulary.max_scope()));
  auto element = std::make_unique<XmlElement>();
  element->name = vocabulary.element;
  element->attributes["kind"] =
      vocabulary.kinds[static_cast<size_t>(window.kind)];
  element->attributes[vocabulary.scope_attr] =
      window.scope == kFaultScopeAll
          ? vocabulary.all_scope_name
          : vocabulary.scopes[static_cast<size_t>(window.scope)];
  element->attributes["start_s"] =
      FormatNumberCompact(ToSecondsF(window.start));
  element->attributes["dur_s"] =
      FormatNumberCompact(ToSecondsF(window.end - window.start));
  if (window.p0 != 0) {
    element->attributes["p0"] = FormatNumberCompact(window.p0);
  }
  if (window.p1 != 0) {
    element->attributes["p1"] = FormatNumberCompact(window.p1);
  }
  if (window.d0 != 0) {
    element->attributes["d0_ms"] =
        FormatNumberCompact(static_cast<double>(ToMillis(window.d0)));
  }
  return element;
}

StatusOr<FaultWindowSpec> FaultWindowFromXml(
    const XmlElement& element, const FaultVocabulary& vocabulary,
    const std::vector<std::string>& extra_allowed) {
  const std::string where = "<" + element.name + ">";
  for (const auto& [key, value] : element.attributes) {
    (void)value;
    if (key == "kind" || key == vocabulary.scope_attr || key == "start_s" ||
        key == "dur_s" || key == "p0" || key == "p1" || key == "d0_ms") {
      continue;
    }
    if (std::find(extra_allowed.begin(), extra_allowed.end(), key) !=
        extra_allowed.end()) {
      continue;
    }
    return InvalidArgumentError(where + ": unknown attribute \"" + key +
                                "\"");
  }

  FaultWindowSpec window;
  const std::string kind = element.Attr("kind");
  if (kind.empty()) {
    return InvalidArgumentError(where + ": missing kind attribute");
  }
  ASSIGN_OR_RETURN(window.kind,
                   NameToIndex(vocabulary.kinds, kind, where + " kind"));

  const std::string scope =
      element.Attr(vocabulary.scope_attr, vocabulary.all_scope_name);
  if (scope == vocabulary.all_scope_name) {
    window.scope = kFaultScopeAll;
  } else {
    ASSIGN_OR_RETURN(
        window.scope,
        NameToIndex(vocabulary.scopes, scope,
                    where + " " + vocabulary.scope_attr));
  }

  ASSIGN_OR_RETURN(double start_s, ParseManifestNumber(
                                       element.Attr("start_s", "0"),
                                       where + " start_s"));
  ASSIGN_OR_RETURN(double dur_s, ParseManifestNumber(element.Attr("dur_s", "0"),
                                                     where + " dur_s"));
  if (std::isnan(dur_s) || dur_s < 0) {
    return InvalidArgumentError(where + ": negative duration");
  }
  window.start = SecondsF(start_s);
  window.end = SecondsF(start_s + dur_s);
  ASSIGN_OR_RETURN(window.p0,
                   ParseManifestNumber(element.Attr("p0", "0"), where + " p0"));
  ASSIGN_OR_RETURN(window.p1,
                   ParseManifestNumber(element.Attr("p1", "0"), where + " p1"));
  ASSIGN_OR_RETURN(double d0_ms, ParseManifestNumber(element.Attr("d0_ms", "0"),
                                                     where + " d0_ms"));
  if (d0_ms < 0) {
    return InvalidArgumentError(where + ": negative d0_ms");
  }
  window.d0 = Millis(static_cast<int64_t>(d0_ms));

  RETURN_IF_ERROR(FaultSchedule::ValidateWindow(window, vocabulary.max_kind(),
                                                vocabulary.max_scope()));
  return window;
}

}  // namespace androne
