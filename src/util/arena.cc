#include "src/util/arena.h"

#include <cstdlib>

namespace androne {
namespace {

size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

Arena::~Arena() { Release(); }

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  if (align == 0) align = 1;

  // Try the active chunk, then any later retained chunk (Reset keeps
  // chunks mapped; a new generation walks forward through them).
  while (active_ < chunks_.size()) {
    Chunk& chunk = chunks_[active_];
    size_t aligned = AlignUp(offset_, align);
    if (aligned + bytes <= chunk.size) {
      offset_ = aligned + bytes;
      bytes_used_ += bytes;
      return chunk.data + aligned;
    }
    ++active_;
    offset_ = 0;
  }

  // Need a fresh chunk. Oversized requests get a dedicated slab so a
  // single large ring never forces every later chunk to that size.
  size_t size = bytes + align > chunk_bytes_ ? bytes + align : chunk_bytes_;
  char* data = static_cast<char*>(::operator new(size));
  chunks_.push_back(Chunk{data, size});
  bytes_reserved_ += size;
  active_ = chunks_.size() - 1;

  size_t aligned = AlignUp(reinterpret_cast<uintptr_t>(data), align) -
                   reinterpret_cast<uintptr_t>(data);
  offset_ = aligned + bytes;
  bytes_used_ += bytes;
  return data + aligned;
}

void Arena::Reset() {
  active_ = 0;
  offset_ = 0;
  bytes_used_ = 0;
  ++resets_;
}

void Arena::Release() {
  for (Chunk& chunk : chunks_) ::operator delete(chunk.data);
  chunks_.clear();
  active_ = 0;
  offset_ = 0;
  bytes_reserved_ = 0;
  bytes_used_ = 0;
}

}  // namespace androne
