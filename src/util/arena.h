// Per-world bump-pointer arena (DESIGN.md §14).
//
// A world's hot path (SimClock event slots, channel in-flight maps, the
// trace ring, parcel scratch) allocates from one Arena owned by the worker
// that runs the world. Allocation is a pointer bump inside chunked slabs;
// individual frees are no-ops; the world teardown calls Reset(), which
// rewinds every chunk but keeps the memory mapped, so the *next* world on
// the same worker reuses the slabs without touching the global allocator.
//
// The arena is single-threaded by contract: exactly one world uses it at a
// time, and the fleet executor hands each worker its own arena. Nothing
// here is locked.
#ifndef ANDRONE_UTIL_ARENA_H_
#define ANDRONE_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace androne {

class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 256 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `bytes` of storage aligned to `align` (a power of two).
  // Never returns nullptr; grows by whole chunks. Requests larger than
  // the chunk size get a dedicated chunk.
  void* Allocate(size_t bytes, size_t align);

  // Rewinds all chunks without unmapping them. Everything previously
  // allocated is invalidated; bytes_reserved() is unchanged, so the next
  // user bump-allocates into already-warm slabs.
  void Reset();

  // Frees every chunk (used by tests; the executor keeps arenas warm).
  void Release();

  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t bytes_used() const { return bytes_used_; }
  size_t chunks() const { return chunks_.size(); }
  size_t resets() const { return resets_; }

 private:
  struct Chunk {
    char* data;
    size_t size;
  };

  std::vector<Chunk> chunks_;
  size_t active_ = 0;  // chunk currently being bumped
  size_t offset_ = 0;  // cursor within the active chunk
  size_t chunk_bytes_;
  size_t bytes_reserved_ = 0;
  size_t bytes_used_ = 0;
  size_t resets_ = 0;
};

// STL-compatible handle onto an Arena. A null arena falls back to the
// global allocator, so container types can be arena-parameterized
// unconditionally and only pay the arena semantics when one is attached.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() : arena_(nullptr) {}
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T* p, size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena storage is reclaimed wholesale by Arena::Reset().
  }

  Arena* arena() const { return arena_; }

 private:
  Arena* arena_;
};

template <typename A, typename B>
bool operator==(const ArenaAllocator<A>& a, const ArenaAllocator<B>& b) {
  return a.arena() == b.arena();
}
template <typename A, typename B>
bool operator!=(const ArenaAllocator<A>& a, const ArenaAllocator<B>& b) {
  return !(a == b);
}

}  // namespace androne

#endif  // ANDRONE_UTIL_ARENA_H_
