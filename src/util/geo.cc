#include "src/util/geo.h"

#include <cmath>
#include <cstdio>

namespace androne {

std::string GeoPoint::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.7f, %.7f, %.1fm)", latitude_deg,
                longitude_deg, altitude_m);
  return buf;
}

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  double lat1 = a.latitude_deg * kDegToRad;
  double lat2 = b.latitude_deg * kDegToRad;
  double dlat = (b.latitude_deg - a.latitude_deg) * kDegToRad;
  double dlon = (b.longitude_deg - a.longitude_deg) * kDegToRad;
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                 std::sin(dlon / 2);
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

double Distance3dMeters(const GeoPoint& a, const GeoPoint& b) {
  double ground = HaversineMeters(a, b);
  double dalt = b.altitude_m - a.altitude_m;
  return std::sqrt(ground * ground + dalt * dalt);
}

double BearingDeg(const GeoPoint& from, const GeoPoint& to) {
  double lat1 = from.latitude_deg * kDegToRad;
  double lat2 = to.latitude_deg * kDegToRad;
  double dlon = (to.longitude_deg - from.longitude_deg) * kDegToRad;
  double y = std::sin(dlon) * std::cos(lat2);
  double x = std::cos(lat1) * std::sin(lat2) -
             std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = std::atan2(y, x) * kRadToDeg;
  if (bearing < 0) {
    bearing += 360.0;
  }
  return bearing;
}

NedPoint ToNed(const GeoPoint& origin, const GeoPoint& p) {
  double dlat = (p.latitude_deg - origin.latitude_deg) * kDegToRad;
  double dlon = (p.longitude_deg - origin.longitude_deg) * kDegToRad;
  double coslat = std::cos(origin.latitude_deg * kDegToRad);
  return NedPoint{
      .north_m = dlat * kEarthRadiusM,
      .east_m = dlon * kEarthRadiusM * coslat,
      .down_m = -(p.altitude_m - origin.altitude_m),
  };
}

GeoPoint FromNed(const GeoPoint& origin, const NedPoint& ned) {
  double coslat = std::cos(origin.latitude_deg * kDegToRad);
  return GeoPoint{
      .latitude_deg =
          origin.latitude_deg + (ned.north_m / kEarthRadiusM) * kRadToDeg,
      .longitude_deg = origin.longitude_deg +
                       (ned.east_m / (kEarthRadiusM * coslat)) * kRadToDeg,
      .altitude_m = origin.altitude_m - ned.down_m,
  };
}

GeoPoint MoveToward(const GeoPoint& from, const GeoPoint& to,
                    double distance_m) {
  double total = Distance3dMeters(from, to);
  if (total <= distance_m || total <= 1e-9) {
    return to;
  }
  double f = distance_m / total;
  return GeoPoint{
      .latitude_deg =
          from.latitude_deg + f * (to.latitude_deg - from.latitude_deg),
      .longitude_deg =
          from.longitude_deg + f * (to.longitude_deg - from.longitude_deg),
      .altitude_m = from.altitude_m + f * (to.altitude_m - from.altitude_m),
  };
}

}  // namespace androne
