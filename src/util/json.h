// A self-contained JSON value model, parser, and serializer. AnDrone virtual
// drone definitions (paper §3, Figure 2) are JSON documents, so the core
// library carries its own parser rather than depending on a third-party one.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/util/status.h"

namespace androne {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
// std::map keeps key order deterministic for serialization and tests.
using JsonObject = std::map<std::string, JsonValue>;

enum class JsonType { kNull, kBool, kNumber, kString, kArray, kObject };

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}      // NOLINT: implicit
  JsonValue(bool b) : value_(b) {}                    // NOLINT: implicit
  JsonValue(double d) : value_(d) {}                  // NOLINT: implicit
  JsonValue(int i) : value_(static_cast<double>(i)) {}          // NOLINT
  JsonValue(int64_t i) : value_(static_cast<double>(i)) {}      // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}          // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}            // NOLINT
  JsonValue(JsonArray a) : value_(std::move(a)) {}              // NOLINT
  JsonValue(JsonObject o) : value_(std::move(o)) {}             // NOLINT

  JsonType type() const;

  bool is_null() const { return type() == JsonType::kNull; }
  bool is_bool() const { return type() == JsonType::kBool; }
  bool is_number() const { return type() == JsonType::kNumber; }
  bool is_string() const { return type() == JsonType::kString; }
  bool is_array() const { return type() == JsonType::kArray; }
  bool is_object() const { return type() == JsonType::kObject; }

  // Typed accessors; abort on type mismatch (check type first).
  bool AsBool() const { return std::get<bool>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  int64_t AsInt() const { return static_cast<int64_t>(std::get<double>(value_)); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const JsonArray& AsArray() const { return std::get<JsonArray>(value_); }
  JsonArray& AsArray() { return std::get<JsonArray>(value_); }
  const JsonObject& AsObject() const { return std::get<JsonObject>(value_); }
  JsonObject& AsObject() { return std::get<JsonObject>(value_); }

  // Object lookup: returns nullptr when this is not an object or the key is
  // absent, letting callers chain lookups without pre-checks.
  const JsonValue* Find(const std::string& key) const;

  // Convenience typed lookups with defaults for optional fields.
  double GetNumberOr(const std::string& key, double fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  std::string GetStringOr(const std::string& key, std::string fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;

  // Compact single-line serialization.
  std::string Dump() const;
  // Pretty-printed with 2-space indentation.
  std::string DumpPretty() const;

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.value_ == b.value_;
  }

 private:
  void DumpTo(std::string& out, int indent, bool pretty) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

// Parses a complete JSON document. Trailing garbage is an error.
StatusOr<JsonValue> ParseJson(const std::string& text);

// Escapes a string per JSON rules (used by the serializer; exposed for tests).
std::string JsonEscape(const std::string& s);

// The serializer's number form: integers print without a decimal point, and
// everything else uses the shortest representation that parses back to the
// exact double. Shared by the scenario-manifest dumper, whose byte-stable
// round-trip contract needs one canonical number spelling.
std::string FormatNumberCompact(double d);

}  // namespace androne

#endif  // SRC_UTIL_JSON_H_
