#include "src/util/xml.h"

#include <cctype>

namespace androne {

std::string XmlElement::Attr(const std::string& key,
                             std::string fallback) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? fallback : it->second;
}

const XmlElement* XmlElement::FirstChild(const std::string& tag) const {
  for (const auto& child : children) {
    if (child->name == tag) {
      return child.get();
    }
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::Children(
    const std::string& tag) const {
  std::vector<const XmlElement*> out;
  for (const auto& child : children) {
    if (child->name == tag) {
      out.push_back(child.get());
    }
  }
  return out;
}

namespace {

std::string EscapeXml(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

class XmlParser {
 public:
  explicit XmlParser(const std::string& text) : text_(text) {}

  StatusOr<std::unique_ptr<XmlElement>> Parse() {
    SkipMisc();
    auto root = std::make_unique<XmlElement>();
    RETURN_IF_ERROR(ParseElement(*root, 0));
    SkipMisc();
    if (pos_ != text_.size()) {
      return Status(StatusCode::kInvalidArgument,
                    "XML: trailing content after root element");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return InvalidArgumentError("XML parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments, and the <?xml ...?> declaration.
  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (text_.compare(pos_, 4, "<!--") == 0) {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = (end == std::string::npos) ? text_.size() : end + 3;
        continue;
      }
      if (text_.compare(pos_, 2, "<?") == 0) {
        size_t end = text_.find("?>", pos_ + 2);
        pos_ = (end == std::string::npos) ? text_.size() : end + 2;
        continue;
      }
      return;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_' || c == '.' || c == ':';
  }

  Status ParseName(std::string& out) {
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected name");
    }
    out = text_.substr(start, pos_ - start);
    return OkStatus();
  }

  Status DecodeEntities(const std::string& in, std::string& out) const {
    out.clear();
    for (size_t i = 0; i < in.size();) {
      if (in[i] != '&') {
        out += in[i++];
        continue;
      }
      size_t semi = in.find(';', i);
      if (semi == std::string::npos) {
        return InvalidArgumentError("XML: unterminated entity");
      }
      std::string ent = in.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "amp") {
        out += '&';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else {
        return InvalidArgumentError("XML: unknown entity &" + ent + ";");
      }
      i = semi + 1;
    }
    return OkStatus();
  }

  Status ParseAttributes(XmlElement& el) {
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Error("unterminated tag");
      }
      char c = text_[pos_];
      if (c == '>' || c == '/') {
        return OkStatus();
      }
      std::string name;
      RETURN_IF_ERROR(ParseName(name));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Error("expected '=' after attribute name");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = text_[pos_++];
      size_t end = text_.find(quote, pos_);
      if (end == std::string::npos) {
        return Error("unterminated attribute value");
      }
      std::string raw = text_.substr(pos_, end - pos_);
      pos_ = end + 1;
      std::string decoded;
      RETURN_IF_ERROR(DecodeEntities(raw, decoded));
      el.attributes[name] = decoded;
    }
  }

  Status ParseElement(XmlElement& el, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Error("expected '<'");
    }
    ++pos_;
    RETURN_IF_ERROR(ParseName(el.name));
    RETURN_IF_ERROR(ParseAttributes(el));
    if (text_.compare(pos_, 2, "/>") == 0) {
      pos_ += 2;
      return OkStatus();
    }
    if (text_[pos_] != '>') {
      return Error("expected '>'");
    }
    ++pos_;
    // Content loop: text, child elements, comments, until </name>.
    std::string raw_text;
    for (;;) {
      if (pos_ >= text_.size()) {
        return Error("unterminated element <" + el.name + ">");
      }
      if (text_[pos_] == '<') {
        if (text_.compare(pos_, 4, "<!--") == 0) {
          size_t end = text_.find("-->", pos_ + 4);
          if (end == std::string::npos) {
            return Error("unterminated comment");
          }
          pos_ = end + 3;
          continue;
        }
        if (text_.compare(pos_, 2, "</") == 0) {
          pos_ += 2;
          std::string close;
          RETURN_IF_ERROR(ParseName(close));
          if (close != el.name) {
            return Error("mismatched close tag </" + close + "> for <" +
                         el.name + ">");
          }
          SkipWhitespace();
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return Error("expected '>' in close tag");
          }
          ++pos_;
          RETURN_IF_ERROR(DecodeEntities(raw_text, el.text));
          // Trim surrounding whitespace from text content.
          size_t b = el.text.find_first_not_of(" \t\r\n");
          size_t e = el.text.find_last_not_of(" \t\r\n");
          el.text = (b == std::string::npos) ? "" : el.text.substr(b, e - b + 1);
          return OkStatus();
        }
        auto child = std::make_unique<XmlElement>();
        RETURN_IF_ERROR(ParseElement(*child, depth + 1));
        el.children.push_back(std::move(child));
      } else {
        raw_text += text_[pos_++];
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string XmlElement::Dump(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name;
  for (const auto& [key, value] : attributes) {
    out += " " + key + "=\"" + EscapeXml(value) + "\"";
  }
  if (children.empty() && text.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!children.empty()) {
    out += "\n";
    for (const auto& child : children) {
      out += child->Dump(indent + 1);
    }
    if (!text.empty()) {
      out += pad + "  " + EscapeXml(text) + "\n";
    }
    out += pad + "</" + name + ">\n";
  } else {
    out += EscapeXml(text) + "</" + name + ">\n";
  }
  return out;
}

StatusOr<std::unique_ptr<XmlElement>> ParseXml(const std::string& text) {
  return XmlParser(text).Parse();
}

}  // namespace androne
