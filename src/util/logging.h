// Minimal leveled stream logger. Subsystems tag messages so flight logs can
// be separated from, e.g., Binder traffic. Tests can install a capture sink.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace androne {

enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

const char* LogLevelName(LogLevel level);

// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

// Redirects log output. Passing nullptr restores the default stderr sink.
using LogSink = std::function<void(LogLevel, const std::string& tag,
                                   const std::string& message)>;
void SetLogSink(LogSink sink);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* tag);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* tag_;
  std::ostringstream stream_;
};

// Swallows the stream when the message is below the minimum level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

// Usage: ALOG(kInfo, "vdc") << "virtual drone " << id << " started";
#define ALOG(level, tag)                                        \
  if (::androne::LogLevel::level < ::androne::GetMinLogLevel()) \
    ;                                                           \
  else                                                          \
    ::androne::internal::LogMessage(::androne::LogLevel::level, tag).stream()

}  // namespace androne

#endif  // SRC_UTIL_LOGGING_H_
