#include "src/util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace androne {

JsonType JsonValue::type() const {
  switch (value_.index()) {
    case 0:
      return JsonType::kNull;
    case 1:
      return JsonType::kBool;
    case 2:
      return JsonType::kNumber;
    case 3:
      return JsonType::kString;
    case 4:
      return JsonType::kArray;
    case 5:
      return JsonType::kObject;
  }
  return JsonType::kNull;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  const JsonObject& obj = AsObject();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

double JsonValue::GetNumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsDouble() : fallback;
}

int64_t JsonValue::GetIntOr(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsInt() : fallback;
}

std::string JsonValue::GetStringOr(const std::string& key,
                                   std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

bool JsonValue::GetBoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  // Shortest representation that round-trips exactly.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) {
      break;
    }
  }
  out += buf;
}

void Indent(std::string& out, int n) { out.append(static_cast<size_t>(n) * 2, ' '); }

}  // namespace

std::string FormatNumberCompact(double d) {
  std::string out;
  AppendNumber(out, d);
  return out;
}

void JsonValue::DumpTo(std::string& out, int indent, bool pretty) const {
  switch (type()) {
    case JsonType::kNull:
      out += "null";
      return;
    case JsonType::kBool:
      out += AsBool() ? "true" : "false";
      return;
    case JsonType::kNumber:
      AppendNumber(out, AsDouble());
      return;
    case JsonType::kString:
      out += '"';
      out += JsonEscape(AsString());
      out += '"';
      return;
    case JsonType::kArray: {
      const JsonArray& arr = AsArray();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      bool first = true;
      for (const JsonValue& v : arr) {
        if (!first) {
          out += ',';
        }
        first = false;
        if (pretty) {
          out += '\n';
          Indent(out, indent + 1);
        }
        v.DumpTo(out, indent + 1, pretty);
      }
      if (pretty) {
        out += '\n';
        Indent(out, indent);
      }
      out += ']';
      return;
    }
    case JsonType::kObject: {
      const JsonObject& obj = AsObject();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, v] : obj) {
        if (!first) {
          out += ',';
        }
        first = false;
        if (pretty) {
          out += '\n';
          Indent(out, indent + 1);
        }
        out += '"';
        out += JsonEscape(key);
        out += pretty ? "\": " : "\":";
        v.DumpTo(out, indent + 1, pretty);
      }
      if (pretty) {
        out += '\n';
        Indent(out, indent);
      }
      out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(out, 0, /*pretty=*/false);
  return out;
}

std::string JsonValue::DumpPretty() const {
  std::string out;
  DumpTo(out, 0, /*pretty=*/true);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    RETURN_IF_ERROR(ParseValue(value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return OkStatus();
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        RETURN_IF_ERROR(ParseString(s));
        out = JsonValue(std::move(s));
        return OkStatus();
      }
      case 't':
        return ParseLiteral("true", JsonValue(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue(nullptr), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* lit, JsonValue value, JsonValue& out) {
    size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) != 0) {
      return Error(std::string("invalid literal, expected ") + lit);
    }
    pos_ += len;
    out = std::move(value);
    return OkStatus();
  }

  Status ParseNumber(JsonValue& out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid value");
    }
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error("invalid number '" + token + "'");
    }
    out = JsonValue(d);
    return OkStatus();
  }

  Status ParseHex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    out = v;
    return OkStatus();
  }

  static void AppendUtf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseString(std::string& out) {
    RETURN_IF_ERROR(Expect('"'));
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return OkStatus();
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Error("truncated escape");
        }
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            unsigned cp = 0;
            RETURN_IF_ERROR(ParseHex4(cp));
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // Surrogate pair.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired surrogate");
              }
              pos_ += 2;
              unsigned lo = 0;
              RETURN_IF_ERROR(ParseHex4(lo));
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            AppendUtf8(out, cp);
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    RETURN_IF_ERROR(Expect('['));
    JsonArray arr;
    SkipWhitespace();
    if (Consume(']')) {
      out = JsonValue(std::move(arr));
      return OkStatus();
    }
    while (true) {
      JsonValue v;
      RETURN_IF_ERROR(ParseValue(v, depth + 1));
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(']')) {
        out = JsonValue(std::move(arr));
        return OkStatus();
      }
      RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    RETURN_IF_ERROR(Expect('{'));
    JsonObject obj;
    SkipWhitespace();
    if (Consume('}')) {
      out = JsonValue(std::move(obj));
      return OkStatus();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      RETURN_IF_ERROR(ParseString(key));
      SkipWhitespace();
      RETURN_IF_ERROR(Expect(':'));
      JsonValue v;
      RETURN_IF_ERROR(ParseValue(v, depth + 1));
      obj[std::move(key)] = std::move(v);
      SkipWhitespace();
      if (Consume('}')) {
        out = JsonValue(std::move(obj));
        return OkStatus();
      }
      RETURN_IF_ERROR(Expect(','));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace androne
