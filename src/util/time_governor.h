// Paces simulated time against the wall clock. The simulator's default is
// unthrottled — worlds run as fast as the hardware allows — but an external
// consumer (a human watching a mission, the future socket bridge to a real
// ground-control client) needs sim time to track wall time at a chosen
// ratio. A TimeGovernor anchors a sim timestamp to a wall timestamp at
// Start() and, on every Pace(sim_now) call, sleeps until the wall clock has
// earned the elapsed sim time at the configured speed.
//
// speed semantics: sim seconds advanced per wall second. 1.0 is real time,
// 2.0 runs twice as fast as real time, 0.5 at half speed. 0 (the default)
// disables pacing entirely — Pace() never sleeps. The governor only ever
// delays the caller; it never alters the SimClock, so digests, traces, and
// metrics are bit-identical at every speed (tested in util_test).
//
// The wall clock and sleeper are injectable so tests run instantly and
// deterministically; production uses steady_clock + sleep_for.
#ifndef SRC_UTIL_TIME_GOVERNOR_H_
#define SRC_UTIL_TIME_GOVERNOR_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/util/time.h"

namespace androne {

class TimeGovernor {
 public:
  struct Options {
    // Sim seconds per wall second; <= 0 disables pacing.
    double speed = 0.0;
    // Test seams. Defaults (when null): monotonic wall clock in
    // microseconds, and a real sleep.
    std::function<int64_t()> wall_now_us;
    std::function<void(int64_t)> sleep_us;
  };

  TimeGovernor() : TimeGovernor(Options{}) {}
  explicit TimeGovernor(Options options);

  bool enabled() const { return options_.speed > 0; }
  double speed() const { return options_.speed; }

  // Anchors |sim_now| (SimClock nanoseconds) to the current wall time.
  // Called once when the paced region begins; calling again re-anchors,
  // which forgives any accumulated debt (used after a restore, where the
  // recovered sim time must not be charged against the wall).
  void Start(SimTime sim_now);

  // Blocks until wall time has caught up with |sim_now| at the configured
  // speed. A no-op when pacing is disabled or Start() has not been called.
  // Never busy-waits: one sleep for the full remaining debt.
  void Pace(SimTime sim_now);

  // Bookkeeping for benches and the replay report. Wall time spent asleep
  // and the number of Pace() calls that actually slept.
  int64_t slept_us() const { return slept_us_; }
  int64_t sleeps() const { return sleeps_; }

 private:
  Options options_;
  bool started_ = false;
  SimTime sim_anchor_ = 0;
  int64_t wall_anchor_us_ = 0;
  int64_t slept_us_ = 0;
  int64_t sleeps_ = 0;
};

// Parses a --speed flag value ("0", "1", "0.5", "8"): sim seconds per wall
// second, 0 meaning unthrottled. Rejects negatives, NaN, and trailing junk
// with a descriptive error so CLI surfaces agree on the message.
bool ParseSpeed(const char* text, double* out_speed, std::string* error);

}  // namespace androne

#endif  // SRC_UTIL_TIME_GOVERNOR_H_
