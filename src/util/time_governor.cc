#include "src/util/time_governor.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>

namespace androne {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealSleepUs(int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

TimeGovernor::TimeGovernor(Options options) : options_(std::move(options)) {
  if (!options_.wall_now_us) {
    options_.wall_now_us = SteadyNowUs;
  }
  if (!options_.sleep_us) {
    options_.sleep_us = RealSleepUs;
  }
}

void TimeGovernor::Start(SimTime sim_now) {
  if (!enabled()) {
    return;
  }
  started_ = true;
  sim_anchor_ = sim_now;
  wall_anchor_us_ = options_.wall_now_us();
}

void TimeGovernor::Pace(SimTime sim_now) {
  if (!enabled() || !started_ || sim_now <= sim_anchor_) {
    return;
  }
  // Wall microseconds the sim has earned since the anchor, at |speed| sim
  // seconds per wall second.
  const double sim_elapsed_us =
      static_cast<double>(sim_now - sim_anchor_) / 1000.0;
  const int64_t due_us =
      wall_anchor_us_ + static_cast<int64_t>(sim_elapsed_us / options_.speed);
  const int64_t now_us = options_.wall_now_us();
  if (now_us >= due_us) {
    return;  // Wall clock is ahead (or on time): run free.
  }
  const int64_t debt_us = due_us - now_us;
  options_.sleep_us(debt_us);
  slept_us_ += debt_us;
  ++sleeps_;
}

bool ParseSpeed(const char* text, double* out_speed, std::string* error) {
  if (text == nullptr || *text == '\0') {
    if (error) *error = "--speed needs a value (sim seconds per wall second)";
    return false;
  }
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    if (error) *error = std::string("--speed \"") + text + "\" is not a number";
    return false;
  }
  if (std::isnan(value) || std::isinf(value) || value < 0) {
    if (error) {
      *error = std::string("--speed \"") + text +
               "\" must be finite and >= 0 (0 = unthrottled)";
    }
    return false;
  }
  *out_speed = value;
  return true;
}

}  // namespace androne
