#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace androne {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }

Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(StatusCode::kPermissionDenied, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status AbortedError(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

namespace internal {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace androne
