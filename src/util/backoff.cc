#include "src/util/backoff.h"

#include <algorithm>
#include <cmath>

namespace androne {

SimDuration BackoffPolicy::DelayFor(int attempt, Rng& rng) const {
  double delay = static_cast<double>(base) *
                 std::pow(multiplier, std::max(0, attempt));
  delay = std::min(delay, static_cast<double>(max));
  if (jitter_fraction > 0) {
    delay *= rng.Uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
  }
  return std::max<SimDuration>(Micros(1), static_cast<SimDuration>(delay));
}

}  // namespace androne
