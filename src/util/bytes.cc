#include "src/util/bytes.h"

namespace androne {

void ByteWriter::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xFF));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  PutU16(static_cast<uint16_t>(v & 0xFFFF));
  PutU16(static_cast<uint16_t>(v >> 16));
}

void ByteWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v & 0xFFFFFFFFULL));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void ByteWriter::PutFloat(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutBytes(const uint8_t* data, size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

void ByteWriter::PutFixedString(const std::string& s, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    PutU8(i < s.size() ? static_cast<uint8_t>(s[i]) : 0);
  }
}

bool ByteReader::Take(void* out, size_t n) {
  if (failed_ || pos_ + n > size_) {
    failed_ = true;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::GetU8(uint8_t& v) { return Take(&v, 1); }
bool ByteReader::GetI8(int8_t& v) { return Take(&v, 1); }

bool ByteReader::GetU16(uint16_t& v) {
  uint8_t b[2];
  if (!Take(b, 2)) {
    return false;
  }
  v = static_cast<uint16_t>(b[0] | (b[1] << 8));
  return true;
}

bool ByteReader::GetI16(int16_t& v) {
  uint16_t u;
  if (!GetU16(u)) {
    return false;
  }
  v = static_cast<int16_t>(u);
  return true;
}

bool ByteReader::GetU32(uint32_t& v) {
  uint8_t b[4];
  if (!Take(b, 4)) {
    return false;
  }
  v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
      (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

bool ByteReader::GetI32(int32_t& v) {
  uint32_t u;
  if (!GetU32(u)) {
    return false;
  }
  v = static_cast<int32_t>(u);
  return true;
}

bool ByteReader::GetU64(uint64_t& v) {
  uint32_t lo, hi;
  if (!GetU32(lo) || !GetU32(hi)) {
    return false;
  }
  v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool ByteReader::GetI64(int64_t& v) {
  uint64_t u;
  if (!GetU64(u)) {
    return false;
  }
  v = static_cast<int64_t>(u);
  return true;
}

bool ByteReader::GetFloat(float& v) {
  uint32_t bits;
  if (!GetU32(bits)) {
    return false;
  }
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool ByteReader::GetDouble(double& v) {
  uint64_t bits;
  if (!GetU64(bits)) {
    return false;
  }
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool ByteReader::GetBytes(uint8_t* out, size_t n) { return Take(out, n); }

bool ByteReader::GetBlob(std::string& out, size_t n) {
  std::vector<uint8_t> buf(n);
  if (!Take(buf.data(), n)) {
    return false;
  }
  out.assign(reinterpret_cast<const char*>(buf.data()), n);
  return true;
}

bool ByteReader::GetFixedString(std::string& out, size_t n) {
  std::vector<uint8_t> buf(n);
  if (!Take(buf.data(), n)) {
    return false;
  }
  size_t len = 0;
  while (len < n && buf[len] != 0) {
    ++len;
  }
  out.assign(reinterpret_cast<const char*>(buf.data()), len);
  return true;
}

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kPrime;
  }
  return hash;
}

}  // namespace androne
