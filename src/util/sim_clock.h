// SimClock: the deterministic discrete-event engine at the heart of the
// AnDrone simulation substrates. The real-time kernel scheduler, the flight
// physics, and the network link models all schedule callbacks on one shared
// SimClock so an entire multi-virtual-drone flight is reproducible and runs
// orders of magnitude faster than wall-clock time.
#ifndef SRC_UTIL_SIM_CLOCK_H_
#define SRC_UTIL_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/util/time.h"

namespace androne {

// Identifies a scheduled event so it can be cancelled.
using EventId = uint64_t;

class SimClock {
 public:
  using Callback = std::function<void()>;

  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  SimTime now() const { return now_; }

  // Schedules |cb| to run at absolute simulated time |when| (clamped to now).
  EventId ScheduleAt(SimTime when, Callback cb);

  // Schedules |cb| to run |delay| after the current simulated time.
  EventId ScheduleAfter(SimDuration delay, Callback cb);

  // Cancels a pending event. Returns false if it already ran or is unknown.
  bool Cancel(EventId id);

  // Runs the single earliest pending event, advancing the clock to its
  // deadline. Returns false if no events are pending.
  bool RunNext();

  // Runs all events with deadline <= |until|, then advances the clock to
  // |until| even if the queue drains early.
  void RunUntil(SimTime until);

  // Runs the simulation forward by |duration|.
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Drains every pending event (events may schedule more events). The
  // |max_events| guard protects against runaway self-rescheduling loops.
  void RunAll(uint64_t max_events = 100'000'000);

  bool empty() const { return live_.empty(); }
  size_t pending_events() const { return live_.size(); }

 private:
  struct Event {
    SimTime when;
    EventId id;  // Tie-break on insertion order for FIFO among equal times.
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  // Pops and runs the earliest non-cancelled event. Precondition: !empty().
  void PopAndRun();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Ids scheduled but not yet run or cancelled. Cancellation is lazy: the
  // queue entry stays until popped, but its id is removed from live_.
  std::unordered_set<EventId> live_;
};

}  // namespace androne

#endif  // SRC_UTIL_SIM_CLOCK_H_
