// SimClock: the deterministic discrete-event engine at the heart of the
// AnDrone simulation substrates. The real-time kernel scheduler, the flight
// physics, and the network link models all schedule callbacks on one shared
// SimClock so an entire multi-virtual-drone flight is reproducible and runs
// orders of magnitude faster than wall-clock time.
//
// Hot-path design: cancellation is O(1) against a slot table of generation
// stamps instead of a per-event hash set. An EventId packs (slot, generation);
// a heap entry whose generation no longer matches its slot is a tombstone and
// is skipped when popped. When tombstones outnumber live events the heap is
// compacted in place, so a workload that schedules-and-cancels (retry timers,
// watchdogs) costs no hash allocations and no unbounded heap growth.
#ifndef SRC_UTIL_SIM_CLOCK_H_
#define SRC_UTIL_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/arena.h"
#include "src/util/time.h"

namespace androne {

// Identifies a scheduled event so it can be cancelled. Packs a slot index in
// the high 32 bits and that slot's generation stamp in the low 32; never 0,
// so 0 remains usable as a "no event" sentinel by callers.
using EventId = uint64_t;

class SimClock {
 public:
  using Callback = std::function<void()>;

  // |arena| (optional, borrowed) backs the event heap, slot table, and
  // free-slot stack, so a fleet worker's worlds never touch the global
  // allocator for clock bookkeeping (DESIGN.md §14). Closure captures
  // larger than std::function's inline buffer still heap-allocate.
  explicit SimClock(Arena* arena = nullptr)
      : heap_(ArenaAllocator<Event>(arena)),
        slots_(ArenaAllocator<Slot>(arena)),
        free_slots_(ArenaAllocator<uint32_t>(arena)) {}
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  SimTime now() const { return now_; }

  // Schedules |cb| to run at absolute simulated time |when| (clamped to now).
  EventId ScheduleAt(SimTime when, Callback cb);

  // Schedules |cb| to run |delay| after the current simulated time.
  EventId ScheduleAfter(SimDuration delay, Callback cb);

  // Cancels a pending event. Returns false if it already ran or is unknown.
  bool Cancel(EventId id);

  // Runs the single earliest pending event, advancing the clock to its
  // deadline. Returns false if no events are pending.
  bool RunNext();

  // Runs all events with deadline <= |until|, then advances the clock to
  // |until| even if the queue drains early.
  void RunUntil(SimTime until);

  // Runs the simulation forward by |duration|.
  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  // Drains every pending event (events may schedule more events). The
  // |max_events| guard counts executed (non-cancelled) events and protects
  // against runaway self-rescheduling loops.
  void RunAll(uint64_t max_events = 100'000'000);

  // Optional observer invoked after the clock advances to each executed
  // event's deadline, just before the callback runs. Null (the default)
  // costs a single branch per dispatch; the obs layer's AttachClockTrace
  // installs a sampled counter here. The hook must not mutate the clock.
  using DispatchHook = std::function<void(SimTime when)>;
  void SetDispatchHook(DispatchHook hook) { dispatch_hook_ = std::move(hook); }

  bool empty() const { return live_count_ == 0; }
  size_t pending_events() const { return live_count_; }

  // Cancelled events still occupying heap entries (tombstones awaiting a pop
  // or the next compaction). Bounded: compaction keeps this under
  // max(live, kCompactionMinEntries).
  size_t cancelled_pending() const { return cancelled_pending_; }

  // Total events executed (excludes cancelled) — the fleet benches report
  // aggregate events/sec from this.
  uint64_t events_run() const { return events_run_; }

  // Times the heap was compacted to shed tombstones.
  uint64_t compactions() const { return compactions_; }

  // --- Checkpoint/restore support (DESIGN.md §13) ---

  // Looks up a still-pending event: fills its absolute deadline and FIFO
  // sequence stamp and returns true, or returns false when the event
  // already ran or was cancelled. Save paths use this to persist each
  // armed timer's (deadline, order) so restore can re-schedule them in the
  // original relative dispatch order. O(heap) — checkpoint-time only.
  bool PendingInfo(EventId id, SimTime* when, uint64_t* seq) const;

  // Restore entry point: drops every pending event (their closures belong
  // to the pre-restore world), rewinds/advances the clock to |now| and
  // overwrites the executed-event counter. Slot generations are NOT reset,
  // so stale EventIds held by the caller read as already-run. Components
  // re-arm their own timers afterwards.
  void ResetForRestore(SimTime now, uint64_t events_run);

 private:
  struct Slot {
    uint32_t generation = 1;  // Bumped on run/cancel; stale entries mismatch.
  };
  struct Event {
    SimTime when;
    uint64_t seq;  // Tie-break on insertion order for FIFO among equal times.
    uint32_t slot;
    uint32_t generation;
    Callback cb;
  };
  // std::push_heap/pop_heap comparator: max-heap on "later", so the earliest
  // (or FIFO-first among equals) event surfaces at front.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Below this size compaction is not worth the make_heap; tombstones are
  // shed by pops instead.
  static constexpr size_t kCompactionMinEntries = 64;

  bool IsLive(const Event& ev) const {
    return slots_[ev.slot].generation == ev.generation;
  }
  // Retires |slot| (run or cancelled): bumps the generation so heap entries
  // stamped with the old one read as tombstones, and recycles the slot.
  void RetireSlot(uint32_t slot);
  // Pops the front heap entry, returning it by move.
  Event PopTop();
  // Drops tombstoned entries and re-heapifies. Called when cancelled
  // tombstones exceed half the heap.
  void MaybeCompact();
  // Pops and runs the earliest live event, discarding any tombstones on the
  // way. Returns false if the heap held only tombstones.
  bool PopAndRunLive();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  DispatchHook dispatch_hook_;
  std::vector<Event, ArenaAllocator<Event>> heap_;
  std::vector<Slot, ArenaAllocator<Slot>> slots_;
  std::vector<uint32_t, ArenaAllocator<uint32_t>> free_slots_;
  size_t live_count_ = 0;
  size_t cancelled_pending_ = 0;
  uint64_t events_run_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace androne

#endif  // SRC_UTIL_SIM_CLOCK_H_
