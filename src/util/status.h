// Status and StatusOr: the error-reporting vocabulary used across the AnDrone
// codebase. Modeled on the absl/gRPC canonical error space so call sites read
// familiarly: functions that can fail return Status (or StatusOr<T> when they
// also produce a value) instead of throwing.
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace androne {

enum class StatusCode {
  kOk = 0,
  kCancelled,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kResourceExhausted,
  kOutOfRange,
  kUnavailable,
  kDeadlineExceeded,
  kAborted,
  kUnimplemented,
  kInternal,
};

// Human-readable name for a StatusCode ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error result. Copyable, cheap when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such container".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors mirroring the canonical error space.
Status OkStatus();
Status CancelledError(std::string message);
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status AbortedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

// Holds either a value of type T or an error Status. Access to value() when
// !ok() aborts, so callers must check first (or use value_or semantics via
// the optional accessor).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT: implicit
  StatusOr(T value)                                        // NOLINT: implicit
      : status_(OkStatus()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::CheckOk() const {
  if (!status_.ok()) {
    internal::DieOnBadStatusAccess(status_);
  }
}

// Propagates errors up the call stack:
//   RETURN_IF_ERROR(DoThing());
#define RETURN_IF_ERROR(expr)                     \
  do {                                            \
    ::androne::Status _status = (expr);           \
    if (!_status.ok()) {                          \
      return _status;                             \
    }                                             \
  } while (0)

// Unwraps a StatusOr into a local or propagates the error:
//   ASSIGN_OR_RETURN(auto image, store.Get(name));
#define ASSIGN_OR_RETURN(lhs, expr)               \
  ASSIGN_OR_RETURN_IMPL_(                         \
      ANDRONE_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)    \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = std::move(tmp).value()

#define ANDRONE_STATUS_CONCAT_INNER_(a, b) a##b
#define ANDRONE_STATUS_CONCAT_(a, b) ANDRONE_STATUS_CONCAT_INNER_(a, b)

}  // namespace androne

#endif  // SRC_UTIL_STATUS_H_
