// Little-endian byte stream codecs, used by the MAVLink wire protocol
// implementation and container image serialization.
#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace androne {

// FNV-1a 64-bit hash. Chainable: pass a previous digest as |seed| to extend
// it over more data. Used for the determinism digests (flight logs,
// histograms, fleet results) — stable across platforms, not cryptographic.
inline constexpr uint64_t kFnv1a64Offset = 14695981039346656037ULL;
uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = kFnv1a64Offset);

// Convenience: hashes a trivially-copyable value's bytes into |seed|.
template <typename T>
uint64_t Fnv1a64Value(const T& value, uint64_t seed = kFnv1a64Offset) {
  return Fnv1a64(&value, sizeof(value), seed);
}

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutI8(int8_t v) { PutU8(static_cast<uint8_t>(v)); }
  void PutU16(uint16_t v);
  void PutI16(int16_t v) { PutU16(static_cast<uint16_t>(v)); }
  void PutU32(uint32_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutFloat(float v);
  void PutDouble(double v);
  void PutBytes(const uint8_t* data, size_t n);
  // Writes exactly |n| bytes: the string truncated or zero-padded.
  void PutFixedString(const std::string& s, size_t n);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : data_(v.data()), size_(v.size()) {}

  // All getters return false (and leave the output untouched) on underflow;
  // once a read fails the reader is poisoned and further reads also fail.
  bool GetU8(uint8_t& v);
  bool GetI8(int8_t& v);
  bool GetU16(uint16_t& v);
  bool GetI16(int16_t& v);
  bool GetU32(uint32_t& v);
  bool GetI32(int32_t& v);
  bool GetU64(uint64_t& v);
  bool GetI64(int64_t& v);
  bool GetFloat(float& v);
  bool GetDouble(double& v);
  bool GetBytes(uint8_t* out, size_t n);
  // Reads |n| bytes and strips trailing NULs.
  bool GetFixedString(std::string& out, size_t n);
  // Reads exactly |n| bytes, preserving embedded/trailing NULs.
  bool GetBlob(std::string& out, size_t n);

  size_t remaining() const { return failed_ ? 0 : size_ - pos_; }
  bool failed() const { return failed_; }

 private:
  bool Take(void* out, size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace androne

#endif  // SRC_UTIL_BYTES_H_
