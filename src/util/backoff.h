// Bounded exponential backoff with jitter, shared by every retry path in the
// stack (reliable MAVLink command delivery, container crash supervision).
// Delays are computed on the simulated timeline so retry schedules replay
// deterministically under a fixed seed.
#ifndef SRC_UTIL_BACKOFF_H_
#define SRC_UTIL_BACKOFF_H_

#include "src/util/rng.h"
#include "src/util/time.h"

namespace androne {

struct BackoffPolicy {
  SimDuration base = Millis(250);   // Delay before the first retry.
  double multiplier = 2.0;          // Growth per attempt.
  SimDuration max = Seconds(8);     // Cap on the exponential term.
  // Uniform jitter as a fraction of the computed delay: the actual delay is
  // drawn from [delay * (1 - jitter), delay * (1 + jitter)]. Zero disables
  // jitter (fully deterministic schedules).
  double jitter_fraction = 0.0;

  // Delay before retry number |attempt| (0-based: attempt 0 is the first
  // retry). Never returns less than 1 us so callers can always schedule.
  SimDuration DelayFor(int attempt, Rng& rng) const;
};

}  // namespace androne

#endif  // SRC_UTIL_BACKOFF_H_
