// A minimal XML subset parser for AnDrone app manifests (paper §5). Supports
// elements, attributes, text content, comments, self-closing tags, and the
// five predefined entities. No namespaces, DTDs, or processing instructions —
// the manifest format doesn't use them.
#ifndef SRC_UTIL_XML_H_
#define SRC_UTIL_XML_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace androne {

struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;  // Concatenated text content directly inside this element.

  // Attribute lookup with default.
  std::string Attr(const std::string& key, std::string fallback = "") const;

  // First child element with the given tag name, or nullptr.
  const XmlElement* FirstChild(const std::string& tag) const;

  // All child elements with the given tag name.
  std::vector<const XmlElement*> Children(const std::string& tag) const;

  // Serializes back to XML (pretty, 2-space indent).
  std::string Dump(int indent = 0) const;
};

// Parses one XML document and returns its root element.
StatusOr<std::unique_ptr<XmlElement>> ParseXml(const std::string& text);

}  // namespace androne

#endif  // SRC_UTIL_XML_H_
