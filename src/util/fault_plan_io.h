// Fault-plan serialization to and from scenario manifests. The generic
// FaultWindowSpec carries layer-defined small integers for |kind| and
// |scope|; manifests spell both as names ("outage", "gps_jump", "forward",
// "baro"). A FaultVocabulary supplies the name tables and attribute
// spelling for one layer (the net and sensor chaos layers each publish
// one), and the helpers here translate windows in both directions with
// validating, descriptive errors — never aborts — so a hand-written
// manifest that misspells a kind fails loading, not replay.
#ifndef SRC_UTIL_FAULT_PLAN_IO_H_
#define SRC_UTIL_FAULT_PLAN_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/util/fault_plan.h"
#include "src/util/status.h"
#include "src/util/xml.h"

namespace androne {

// One chaos layer's window-naming scheme. |kinds| and |scopes| are indexed
// by the layer's enum values (kind i prints as kinds[i]); kFaultScopeAll
// prints as |all_scope_name|. |scope_attr| is the manifest attribute the
// scope is spelled in ("dir" for link directions, "channel" for sensors).
struct FaultVocabulary {
  std::string element;  // Manifest element name ("net_fault", "sensor_fault").
  std::vector<std::string> kinds;
  std::vector<std::string> scopes;
  std::string scope_attr;
  std::string all_scope_name;

  int max_kind() const { return static_cast<int>(kinds.size()) - 1; }
  int max_scope() const { return static_cast<int>(scopes.size()) - 1; }
};

// Serializes |window| as a manifest element: times in seconds, the extra
// duration |d0| in milliseconds, and zero-valued optional parameters
// (p0/p1/d0) omitted. The output is canonical — FaultWindowFromXml followed
// by FaultWindowToXml reproduces it byte-for-byte.
StatusOr<std::unique_ptr<XmlElement>> FaultWindowToXml(
    const FaultWindowSpec& window, const FaultVocabulary& vocabulary);

// Parses one manifest element back into a window. Unknown attributes,
// unknown kind/scope names, non-numeric fields, and windows rejected by
// FaultSchedule::ValidateWindow all return descriptive errors. Extra
// attributes in |extra_allowed| are tolerated (the scenario generator rides
// jitter amplitudes on the same elements).
StatusOr<FaultWindowSpec> FaultWindowFromXml(
    const XmlElement& element, const FaultVocabulary& vocabulary,
    const std::vector<std::string>& extra_allowed = {});

// Strict double parsing for manifest attributes: the full string must be a
// finite number. Exposed for the scenario loader's scalar fields.
StatusOr<double> ParseManifestNumber(const std::string& text,
                                     const std::string& what);

}  // namespace androne

#endif  // SRC_UTIL_FAULT_PLAN_IO_H_
