// Latency histogram with logarithmic buckets, mirroring how cyclictest
// results are reported in the paper's Figure 11 (log-log sample-count vs
// latency plot). Also used by the network benchmarks.
#ifndef SRC_UTIL_HISTOGRAM_H_
#define SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace androne {

class Histogram {
 public:
  // Buckets are log-spaced with |buckets_per_decade| per factor-of-10 over
  // [1, 10^decades). Values below 1 land in bucket 0.
  explicit Histogram(int buckets_per_decade = 10, int decades = 8);

  void Record(int64_t value);
  void Record(int64_t value, uint64_t count);

  uint64_t total_count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double stddev() const;

  // Value at or below which |fraction| of samples fall (0 <= fraction <= 1).
  // Returns an upper bucket boundary, so it is conservative.
  int64_t Percentile(double fraction) const;

  // (bucket_upper_bound, count) pairs for non-empty buckets, ascending.
  std::vector<std::pair<int64_t, uint64_t>> NonEmptyBuckets() const;

  // Folds |other| into this histogram. Exact (bucket-by-bucket) when both
  // share a bucket layout; otherwise each of |other|'s non-empty buckets is
  // re-recorded at its upper bound. The fleet executor's merge stage uses
  // this to aggregate per-world histograms.
  void Merge(const Histogram& other);

  // Order-sensitive FNV-1a digest of the full bucket state plus the summary
  // moments. Two histograms with identical recorded streams digest equal;
  // used by the fleet determinism checks.
  uint64_t Digest() const;

  // Multi-line summary: count/min/mean/max/p99 plus a bucket table.
  std::string ToString(const std::string& unit = "") const;

  // Checkpoint support: the full accumulator state. The moment sums are
  // restored bit-exactly (they are order-dependent double accumulations, so
  // recomputing them from buckets would not reproduce Digest()).
  struct State {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    int64_t min = 0;
    int64_t max = 0;
  };
  State SaveState() const {
    return State{buckets_, count_, sum_, sum_sq_, min_, max_};
  }
  void RestoreState(const State& st) {
    buckets_ = st.buckets;
    count_ = st.count;
    sum_ = st.sum;
    sum_sq_ = st.sum_sq;
    min_ = st.min;
    max_ = st.max;
  }

 private:
  size_t BucketFor(int64_t value) const;
  int64_t BucketUpperBound(size_t index) const;

  int buckets_per_decade_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace androne

#endif  // SRC_UTIL_HISTOGRAM_H_
