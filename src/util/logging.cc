#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace androne {

namespace {

std::mutex g_log_mutex;
// Read on every ALOG statement (including the ~hundreds of thousands per
// world that the level filter suppresses), so it must not take the sink
// mutex: a relaxed atomic load keeps the disabled-log fast path to a few
// instructions.
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};
LogSink g_sink;  // Empty -> default stderr sink.

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel GetMinLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_sink = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* tag)
    : level_(level), tag_(tag) {}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_sink) {
    g_sink(level_, tag_, stream_.str());
    return;
  }
  std::fprintf(stderr, "%s/%s: %s\n", LogLevelName(level_), tag_,
               stream_.str().c_str());
}

}  // namespace internal

}  // namespace androne
