#include "src/util/logging.h"

#include <cstdio>
#include <mutex>
#include <utility>

namespace androne {

namespace {

std::mutex g_log_mutex;
LogLevel g_min_level = LogLevel::kInfo;
LogSink g_sink;  // Empty -> default stderr sink.

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

void SetMinLogLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_min_level = level;
}

LogLevel GetMinLogLevel() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  return g_min_level;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_sink = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* tag)
    : level_(level), tag_(tag) {}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (g_sink) {
    g_sink(level_, tag_, stream_.str());
    return;
  }
  std::fprintf(stderr, "%s/%s: %s\n", LogLevelName(level_), tag_,
               stream_.str().c_str());
}

}  // namespace internal

}  // namespace androne
