// Simulated-time vocabulary. All AnDrone subsystems run on one deterministic
// simulated timeline measured in integer nanoseconds since simulation start.
#ifndef SRC_UTIL_TIME_H_
#define SRC_UTIL_TIME_H_

#include <cstdint>

namespace androne {

// A point on the simulated timeline, in nanoseconds since simulation start.
using SimTime = int64_t;
// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration Nanos(int64_t n) { return n; }
constexpr SimDuration Micros(int64_t us) { return us * 1000; }
constexpr SimDuration Millis(int64_t ms) { return ms * 1000 * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000 * 1000; }

// Fractional-second construction, e.g. SecondsF(0.0025) for a 400 Hz period.
constexpr SimDuration SecondsF(double s) {
  return static_cast<SimDuration>(s * 1e9);
}

constexpr double ToSecondsF(SimDuration d) { return static_cast<double>(d) / 1e9; }
constexpr int64_t ToMicros(SimDuration d) { return d / 1000; }
constexpr int64_t ToMillis(SimDuration d) { return d / (1000 * 1000); }

}  // namespace androne

#endif  // SRC_UTIL_TIME_H_
