// Geodesy helpers. Virtual drone waypoints and geofences are specified as
// latitude/longitude/altitude (paper §3); flight control operates on local
// NED (north-east-down) coordinates around a home position.
#ifndef SRC_UTIL_GEO_H_
#define SRC_UTIL_GEO_H_

#include <string>

namespace androne {

// WGS-84 mean Earth radius, meters — sufficient for the sub-kilometer
// geofences AnDrone uses.
inline constexpr double kEarthRadiusM = 6371000.0;
inline constexpr double kDegToRad = 0.017453292519943295;
inline constexpr double kRadToDeg = 57.29577951308232;

// A geodetic position. Altitude is meters above the home/takeoff plane.
struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
  double altitude_m = 0.0;

  std::string ToString() const;

  friend bool operator==(const GeoPoint& a, const GeoPoint& b) = default;
};

// A position in the local north-east-down frame, meters.
struct NedPoint {
  double north_m = 0.0;
  double east_m = 0.0;
  double down_m = 0.0;

  friend bool operator==(const NedPoint& a, const NedPoint& b) = default;
};

// Great-circle ground distance in meters (haversine), ignoring altitude.
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

// Full 3-D separation: sqrt(ground^2 + dAlt^2).
double Distance3dMeters(const GeoPoint& a, const GeoPoint& b);

// Initial great-circle bearing from |from| to |to|, degrees in [0, 360).
double BearingDeg(const GeoPoint& from, const GeoPoint& to);

// Converts |p| to NED coordinates relative to |origin| (small-angle local
// tangent plane approximation; fine for <10 km extents).
NedPoint ToNed(const GeoPoint& origin, const GeoPoint& p);

// Inverse of ToNed.
GeoPoint FromNed(const GeoPoint& origin, const NedPoint& ned);

// Moves from |from| toward |to| by |distance_m| along the ground track,
// interpolating altitude proportionally. If |distance_m| exceeds the
// separation, returns |to|.
GeoPoint MoveToward(const GeoPoint& from, const GeoPoint& to,
                    double distance_m);

}  // namespace androne

#endif  // SRC_UTIL_GEO_H_
