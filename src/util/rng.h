// Deterministic random number generation for the simulation substrates.
// Every stochastic model (network jitter, scheduler noise, sensor noise)
// draws from an explicitly seeded Rng so experiments replay bit-identically.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>

namespace androne {

// One round of SplitMix64: a bijective 64-bit finalizer. Use it to derive
// statistically independent seeds from related ones (e.g. per-direction
// streams of a duplex channel) — small additive tweaks like `seed + k` keep
// the streams correlated through the seeder.
uint64_t SplitMix64(uint64_t x);

// xoshiro256++ with a splitmix64 seeder: fast, high quality, reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t NextU64();

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextU64Below(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Marsaglia polar method.
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  // Log-normal parameterized by the *underlying* normal's mu/sigma.
  double LogNormal(double mu, double sigma);

  // Exponential with the given mean (mean = 1/lambda).
  double Exponential(double mean);

  // Returns true with probability p.
  bool Bernoulli(double p);

  // Fork a derived, independent stream (used to give each subsystem its own
  // stream without coupling draw order across subsystems).
  Rng Fork();

  // Checkpoint support: the complete generator state — the xoshiro words
  // plus the Marsaglia spare-gaussian latch (without it a restored stream
  // would emit one extra/missing normal draw and diverge).
  struct State {
    uint64_t s[4];
    bool has_spare_gaussian;
    double spare_gaussian;
  };
  State SaveState() const {
    return State{{state_[0], state_[1], state_[2], state_[3]},
                 has_spare_gaussian_, spare_gaussian_};
  }
  void RestoreState(const State& st) {
    for (int i = 0; i < 4; ++i) {
      state_[i] = st.s[i];
    }
    has_spare_gaussian_ = st.has_spare_gaussian;
    spare_gaussian_ = st.spare_gaussian;
  }

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace androne

#endif  // SRC_UTIL_RNG_H_
