// Deterministic structured tracing (DESIGN.md §11). A TraceRecorder is a
// per-world, fixed-capacity ring buffer of binary TraceEvents stamped with
// simulated time. Recording is gated by a category bitmask so a disabled
// category costs one branch at the call site and nothing else; recording
// never touches simulation state, so a traced world flies the bit-identical
// flight of an untraced one (the determinism tests assert this).
//
// Exporters: ExportText() is a compact line-per-event format that is
// byte-stable across runs and executor thread counts (the trace-golden and
// determinism harnesses diff it); ExportChromeJson() emits the Chrome
// trace_event JSON array format loadable in chrome://tracing or Perfetto.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/snapshot/snapshot.h"
#include "src/util/sim_clock.h"

namespace androne {

// Trace category bits, one per instrumented layer. A recorder's mask is the
// OR of the categories it keeps; everything else is dropped at the gate.
inline constexpr uint32_t kTraceClock = 1u << 0;      // SimClock dispatch.
inline constexpr uint32_t kTraceRt = 1u << 1;         // Deadline misses/storms.
inline constexpr uint32_t kTraceBinder = 1u << 2;     // Binder transactions.
inline constexpr uint32_t kTraceMavlink = 1u << 3;    // Frame encode + flush.
inline constexpr uint32_t kTraceNet = 1u << 4;        // Channel + VPN.
inline constexpr uint32_t kTraceContainer = 1u << 5;  // Lifecycle transitions.
inline constexpr uint32_t kTraceFlight = 1u << 6;     // Safety supervisor.
inline constexpr uint32_t kTraceAll =
    kTraceClock | kTraceRt | kTraceBinder | kTraceMavlink | kTraceNet |
    kTraceContainer | kTraceFlight;

// Short lowercase name of a single category bit ("clock", "binder", ...);
// "?" for an unknown bit.
const char* TraceCategoryName(uint32_t category_bit);

// Parses a comma-separated category list ("binder,net", "all", "") into a
// mask. Unknown names are ignored; empty input is 0 (tracing off).
uint32_t ParseTraceCategories(std::string_view spec);

enum class TraceEventKind : uint8_t {
  kInstant = 0,  // A point event.
  kBegin,        // Span open (nests).
  kEnd,          // Span close.
  kCounter,      // A sampled counter value in |arg|.
};

struct TraceEvent {
  SimTime ts = 0;          // Simulated time, nanoseconds.
  uint32_t category = 0;   // Exactly one category bit.
  uint32_t name_id = 0;    // Interned name (TraceRecorder::InternName).
  TraceEventKind kind = TraceEventKind::kInstant;
  int32_t container = -1;  // Tenant/container id; -1 when not applicable.
  int64_t arg = 0;         // Counter value or kind-specific detail.
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 14;

  // |arena| (optional, borrowed) backs the event ring, so per-world
  // recorders in a fleet draw from their worker's arena (DESIGN.md §14).
  explicit TraceRecorder(uint32_t categories = kTraceAll,
                         size_t capacity = kDefaultCapacity,
                         Arena* arena = nullptr);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Timestamps come from |clock|; events recorded with no clock bound are
  // stamped 0 (unit tests exercise the buffer without a clock).
  void BindClock(const SimClock* clock) { clock_ = clock; }

  bool enabled(uint32_t category) const {
    return (categories_ & category) != 0;
  }
  uint32_t categories() const { return categories_; }
  void set_categories(uint32_t mask) { categories_ = mask; }

  // Interns |name| and returns its id, stable for the recorder's lifetime.
  // Instrumentation points intern once (at wiring time) and record by id.
  uint32_t InternName(std::string_view name);
  const std::string& NameOf(uint32_t name_id) const;
  size_t interned_names() const { return names_.size(); }

  // Core record call; drops the event unless |category| is enabled. The
  // convenience wrappers below fix the kind.
  void Record(uint32_t category, TraceEventKind kind, uint32_t name_id,
              int32_t container = -1, int64_t arg = 0);
  void Instant(uint32_t category, uint32_t name_id, int32_t container = -1,
               int64_t arg = 0) {
    Record(category, TraceEventKind::kInstant, name_id, container, arg);
  }
  void Begin(uint32_t category, uint32_t name_id, int32_t container = -1,
             int64_t arg = 0) {
    Record(category, TraceEventKind::kBegin, name_id, container, arg);
  }
  void End(uint32_t category, uint32_t name_id, int32_t container = -1,
           int64_t arg = 0) {
    Record(category, TraceEventKind::kEnd, name_id, container, arg);
  }
  void Counter(uint32_t category, uint32_t name_id, int64_t value,
               int32_t container = -1) {
    Record(category, TraceEventKind::kCounter, name_id, container, value);
  }

  // --- Accounting ---
  size_t capacity() const { return capacity_; }
  size_t size() const { return ring_.size(); }
  // Total events accepted (post-mask), including ones later overwritten.
  uint64_t recorded() const { return recorded_; }
  // Oldest events overwritten after the ring wrapped.
  uint64_t dropped() const { return recorded_ - ring_.size(); }
  bool wrapped() const { return recorded_ > ring_.size(); }

  // Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;

  // Deterministic text export: a header line with the accounting counters,
  // then one fixed-format line per event. Byte-stable for identical event
  // streams (the golden/determinism tests rely on this).
  std::string ExportText() const;

  // Chrome trace_event JSON ({"traceEvents": [...]}) for chrome://tracing
  // or Perfetto. Container ids map to tids so each tenant gets a row.
  std::string ExportChromeJson() const;

  // Drops buffered events and accounting; interned names are kept (cached
  // ids held by instrumentation stay valid).
  void Clear();

  // --- Checkpoint support (DESIGN.md §13) ---
  // Persists/overwrites the ring contents, accounting, and the interned
  // name table. Restore requires that the recorder's boot-time interning
  // produced a prefix of the saved table in the same order (true when the
  // restored world re-ran the identical wiring path); a mismatch means the
  // checkpoint came from differently-instrumented code and is an error.
  void SaveState(SnapshotWriter& w) const;
  Status RestoreState(SnapshotReader& r);

 private:
  const SimClock* clock_ = nullptr;
  uint32_t categories_;
  size_t capacity_;
  std::vector<TraceEvent, ArenaAllocator<TraceEvent>> ring_;
  size_t head_ = 0;  // Next overwrite position once the ring is full.
  uint64_t recorded_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> name_ids_;
};

// Wires a sampled SimClock dispatch counter into |trace| (category
// kTraceClock): every |sample_every| executed events, one counter event
// carrying the cumulative dispatch count is recorded. Replaces any dispatch
// hook already installed on the clock. No-op if |trace| is null or the
// clock category is masked off.
void AttachClockTrace(SimClock* clock, TraceRecorder* trace,
                      uint64_t sample_every = 256);

}  // namespace androne

#endif  // SRC_OBS_TRACE_H_
