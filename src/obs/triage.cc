#include "src/obs/triage.h"

#include <algorithm>
#include <sstream>

namespace androne {

DivergencePoint FirstDivergentLine(const std::string& a,
                                   const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  DivergencePoint point;
  int line = 0;
  while (true) {
    ++line;
    bool has_a = static_cast<bool>(std::getline(sa, la));
    bool has_b = static_cast<bool>(std::getline(sb, lb));
    if (!has_a && !has_b) {
      return point;  // line == 0: identical.
    }
    if (!has_a || !has_b || la != lb) {
      point.line = line;
      point.a = has_a ? la : "<eof>";
      point.b = has_b ? lb : "<eof>";
      return point;
    }
  }
}

std::string DescribeDivergence(const std::string& a, const std::string& b,
                               const std::string& label_a,
                               const std::string& label_b) {
  DivergencePoint point = FirstDivergentLine(a, b);
  if (point.identical()) {
    return "texts are identical";
  }
  std::ostringstream out;
  out << "first divergence at line " << point.line << ":\n  " << label_a
      << ": " << point.a << "\n  " << label_b << ": " << point.b;
  return out.str();
}

std::string FailureBucketKey(const std::string& family,
                             std::vector<std::string> failed_assertions) {
  std::sort(failed_assertions.begin(), failed_assertions.end());
  std::string key = family;
  if (failed_assertions.empty()) {
    key += "|<no-assertion>";
    return key;
  }
  for (const std::string& assertion : failed_assertions) {
    key += "|";
    key += assertion;
  }
  return key;
}

}  // namespace androne
