// Per-world metrics registry (DESIGN.md §11): named counters, gauges, and
// histograms scraped at world boundaries and merged across a fleet in
// world-index order — the same discipline as FleetExecutor's histogram
// merge, so merged snapshots are thread-count invariant. Snapshots export
// to a deterministic text form (diffed by the determinism harness) and
// carry an FNV digest for cheap equality checks.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/histogram.h"

namespace androne {

// A point-in-time copy of a registry. std::map keys keep every export and
// digest ordering deterministic.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Folds |other| into this snapshot: counters sum, gauges take |other|'s
  // value (the later world in index order wins), histograms merge
  // bucket-by-bucket. Merging in world-index order makes the result
  // independent of completion order.
  void Merge(const MetricsSnapshot& other);

  // Deterministic text export: one "kind name value" line per metric,
  // sorted by kind then name; histograms export count/min/mean/max/p99.
  std::string ToText() const;

  // Order-sensitive FNV digest over the full snapshot. Equal metric streams
  // digest equal; the determinism harness compares digests first and falls
  // back to a text diff for the error message.
  uint64_t Digest() const;
};

class MetricsRegistry {
 public:
  // Adds |delta| to the named counter (created at 0).
  void Add(const std::string& name, double delta = 1);
  // Sets the named gauge.
  void Set(const std::string& name, double value);
  // Named histogram with the default log-bucket layout; created on first
  // use. Callers may Record() into it or Merge() an existing histogram.
  Histogram& Hist(const std::string& name);
  // Same, but a first use creates the histogram with the given layout —
  // e.g. more decades for values that outrange the default [1, 1e8) span.
  // An existing histogram's layout is left untouched, so every recorder of
  // a shared name must ask for the same layout or the merge loses buckets.
  Histogram& Hist(const std::string& name, int buckets_per_decade,
                  int decades);

  MetricsSnapshot Snapshot() const;
  void Clear();

  // Merges per-world snapshots in vector (= world-index) order.
  static MetricsSnapshot MergeIndexOrder(
      const std::vector<MetricsSnapshot>& worlds);

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace androne

#endif  // SRC_OBS_METRICS_H_
