#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "src/util/bytes.h"

namespace androne {

namespace {

// Integral values print as integers so counter exports are stable and
// readable; everything else uses enough digits to round-trip.
void AppendValue(std::string& out, double v) {
  char buf[48];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] = value;
  }
  for (const auto& [name, hist] : other.histograms) {
    // First sight of a name copies the source (keeping its bucket layout —
    // a default-constructed destination would clamp wider histograms);
    // later merges of the shared layout are bucket-exact.
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, hist);
    } else {
      it->second.Merge(hist);
    }
  }
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "counter ";
    out += name;
    out += " ";
    AppendValue(out, value);
    out += "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "gauge ";
    out += name;
    out += " ";
    AppendValue(out, value);
    out += "\n";
  }
  for (const auto& [name, hist] : histograms) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "hist %s count=%llu min=%lld mean=%.6f max=%lld p99=%lld\n",
                  name.c_str(),
                  static_cast<unsigned long long>(hist.total_count()),
                  static_cast<long long>(hist.min()), hist.mean(),
                  static_cast<long long>(hist.max()),
                  static_cast<long long>(hist.Percentile(0.99)));
    out += buf;
  }
  return out;
}

uint64_t MetricsSnapshot::Digest() const {
  uint64_t digest = kFnv1a64Offset;
  for (const auto& [name, value] : counters) {
    digest = Fnv1a64(name.data(), name.size(), digest);
    digest = Fnv1a64Value(value, digest);
  }
  for (const auto& [name, value] : gauges) {
    digest = Fnv1a64(name.data(), name.size(), digest);
    digest = Fnv1a64Value(value, digest);
  }
  for (const auto& [name, hist] : histograms) {
    digest = Fnv1a64(name.data(), name.size(), digest);
    digest = Fnv1a64Value(hist.Digest(), digest);
  }
  return digest;
}

void MetricsRegistry::Add(const std::string& name, double delta) {
  counters_[name] += delta;
}

void MetricsRegistry::Set(const std::string& name, double value) {
  gauges_[name] = value;
}

Histogram& MetricsRegistry::Hist(const std::string& name) {
  return histograms_[name];
}

Histogram& MetricsRegistry::Hist(const std::string& name,
                                 int buckets_per_decade, int decades) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(buckets_per_decade, decades))
             .first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.counters = counters_;
  snapshot.gauges = gauges_;
  snapshot.histograms = histograms_;
  return snapshot;
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsSnapshot MetricsRegistry::MergeIndexOrder(
    const std::vector<MetricsSnapshot>& worlds) {
  MetricsSnapshot merged;
  for (const MetricsSnapshot& world : worlds) {
    merged.Merge(world);
  }
  return merged;
}

}  // namespace androne
