#include "src/obs/trace.h"

#include <cstdio>

#include "src/util/json.h"

namespace androne {

namespace {

struct CategoryName {
  uint32_t bit;
  const char* name;
};

constexpr CategoryName kCategoryNames[] = {
    {kTraceClock, "clock"},     {kTraceRt, "rt"},
    {kTraceBinder, "binder"},   {kTraceMavlink, "mavlink"},
    {kTraceNet, "net"},         {kTraceContainer, "container"},
    {kTraceFlight, "flight"},
};

char KindLetter(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kInstant:
      return 'I';
    case TraceEventKind::kBegin:
      return 'B';
    case TraceEventKind::kEnd:
      return 'E';
    case TraceEventKind::kCounter:
      return 'C';
  }
  return '?';
}

const char* ChromePhase(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kInstant:
      return "i";
    case TraceEventKind::kBegin:
      return "B";
    case TraceEventKind::kEnd:
      return "E";
    case TraceEventKind::kCounter:
      return "C";
  }
  return "i";
}

}  // namespace

const char* TraceCategoryName(uint32_t category_bit) {
  for (const CategoryName& entry : kCategoryNames) {
    if (entry.bit == category_bit) {
      return entry.name;
    }
  }
  return "?";
}

uint32_t ParseTraceCategories(std::string_view spec) {
  uint32_t mask = 0;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = spec.size();
    }
    std::string_view token = spec.substr(pos, comma - pos);
    if (token == "all") {
      mask |= kTraceAll;
    } else {
      for (const CategoryName& entry : kCategoryNames) {
        if (token == entry.name) {
          mask |= entry.bit;
          break;
        }
      }
    }
    pos = comma + 1;
  }
  return mask;
}

TraceRecorder::TraceRecorder(uint32_t categories, size_t capacity,
                             Arena* arena)
    : categories_(categories),
      capacity_(capacity == 0 ? 1 : capacity),
      ring_(ArenaAllocator<TraceEvent>(arena)) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
  // Id 0 is reserved as "unnamed" so a zero-initialized name id is safe.
  names_.push_back("?");
}

uint32_t TraceRecorder::InternName(std::string_view name) {
  auto it = name_ids_.find(std::string(name));
  if (it != name_ids_.end()) {
    return it->second;
  }
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

const std::string& TraceRecorder::NameOf(uint32_t name_id) const {
  return names_[name_id < names_.size() ? name_id : 0];
}

void TraceRecorder::Record(uint32_t category, TraceEventKind kind,
                           uint32_t name_id, int32_t container, int64_t arg) {
  if (!enabled(category)) {
    return;
  }
  TraceEvent ev;
  ev.ts = clock_ != nullptr ? clock_->now() : 0;
  ev.category = category;
  ev.name_id = name_id;
  ev.kind = kind;
  ev.container = container;
  ev.arg = arg;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[head_] = ev;
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string TraceRecorder::ExportText() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "# trace events=%zu recorded=%llu dropped=%llu "
                "categories=0x%02x\n",
                ring_.size(), static_cast<unsigned long long>(recorded_),
                static_cast<unsigned long long>(dropped()), categories_);
  out += line;
  for (const TraceEvent& ev : Events()) {
    std::snprintf(line, sizeof(line),
                  "%012lld %-9s %c %-24s container=%d arg=%lld\n",
                  static_cast<long long>(ev.ts),
                  TraceCategoryName(ev.category), KindLetter(ev.kind),
                  NameOf(ev.name_id).c_str(), ev.container,
                  static_cast<long long>(ev.arg));
    out += line;
  }
  return out;
}

std::string TraceRecorder::ExportChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  char buf[128];
  for (const TraceEvent& ev : Events()) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(NameOf(ev.name_id));
    out += "\",\"cat\":\"";
    out += TraceCategoryName(ev.category);
    out += "\",\"ph\":\"";
    out += ChromePhase(ev.kind);
    out += "\",\"pid\":0,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%d", ev.container);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"ts\":%lld.%03lld",
                  static_cast<long long>(ev.ts / 1000),
                  static_cast<long long>(ev.ts % 1000));
    out += buf;
    if (ev.kind == TraceEventKind::kInstant) {
      out += ",\"s\":\"t\"";
    }
    if (ev.kind == TraceEventKind::kCounter) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%lld}",
                    static_cast<long long>(ev.arg));
      out += buf;
    } else if (ev.arg != 0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"arg\":%lld}",
                    static_cast<long long>(ev.arg));
      out += buf;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

void TraceRecorder::Clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

void TraceRecorder::SaveState(SnapshotWriter& w) const {
  w.Section("TRCE");
  w.U32(categories_);
  w.U64(capacity_);
  w.U64(recorded_);
  w.U64(head_);
  w.U64(ring_.size());
  for (const TraceEvent& ev : ring_) {
    w.I64(ev.ts);
    w.U32(ev.category);
    w.U32(ev.name_id);
    w.U8(static_cast<uint8_t>(ev.kind));
    w.U32(static_cast<uint32_t>(ev.container));
    w.I64(ev.arg);
  }
  // Skip the reserved "?" entry at id 0 — the constructor recreates it.
  w.U64(names_.size() - 1);
  for (size_t i = 1; i < names_.size(); ++i) {
    w.Str(names_[i]);
  }
}

Status TraceRecorder::RestoreState(SnapshotReader& r) {
  RETURN_IF_ERROR(r.Section("TRCE"));
  uint32_t categories;
  uint64_t capacity;
  RETURN_IF_ERROR(r.U32(&categories));
  RETURN_IF_ERROR(r.U64(&capacity));
  if (categories != categories_ || capacity != capacity_) {
    return InvalidArgumentError(
        "trace checkpoint was recorded with a different category mask or "
        "ring capacity than this recorder");
  }
  RETURN_IF_ERROR(r.U64(&recorded_));
  uint64_t head;
  uint64_t size;
  RETURN_IF_ERROR(r.U64(&head));
  RETURN_IF_ERROR(r.U64(&size));
  head_ = head;
  ring_.resize(size);
  for (TraceEvent& ev : ring_) {
    uint8_t kind;
    uint32_t container;
    RETURN_IF_ERROR(r.I64(&ev.ts));
    RETURN_IF_ERROR(r.U32(&ev.category));
    RETURN_IF_ERROR(r.U32(&ev.name_id));
    RETURN_IF_ERROR(r.U8(&kind));
    RETURN_IF_ERROR(r.U32(&container));
    RETURN_IF_ERROR(r.I64(&ev.arg));
    ev.kind = static_cast<TraceEventKind>(kind);
    ev.container = static_cast<int32_t>(container);
  }
  uint64_t name_count;
  RETURN_IF_ERROR(r.U64(&name_count));
  for (uint64_t i = 0; i < name_count; ++i) {
    std::string name;
    RETURN_IF_ERROR(r.Str(&name));
    if (i + 1 < names_.size()) {
      // Instrumentation already re-interned this id during the restored
      // world's wiring; the orders must agree or every cached id is wrong.
      if (names_[i + 1] != name) {
        return InvalidArgumentError(
            "trace checkpoint name table diverges from this world's "
            "instrumentation at id " + std::to_string(i + 1) + ": saved '" +
            name + "' vs live '" + names_[i + 1] + "'");
      }
    } else {
      InternName(name);
    }
  }
  return OkStatus();
}

void AttachClockTrace(SimClock* clock, TraceRecorder* trace,
                      uint64_t sample_every) {
  if (clock == nullptr || trace == nullptr || !trace->enabled(kTraceClock)) {
    return;
  }
  if (sample_every == 0) {
    sample_every = 1;
  }
  uint32_t name = trace->InternName("clock.dispatch");
  // The hook reads the clock's own dispatch counter rather than keeping a
  // private one: the count then survives checkpoint/restore (events_run is
  // part of the snapshot), so a recovered world's sampled counter events
  // land at the same dispatch numbers as the uninterrupted run's. The hook
  // never touches the event being dispatched, so tracing cannot perturb
  // the run.
  const SimClock* counted = clock;
  clock->SetDispatchHook([trace, name, sample_every, counted](SimTime) {
    uint64_t count = counted->events_run();
    if (count % sample_every == 0) {
      trace->Counter(kTraceClock, name, static_cast<int64_t>(count));
    }
  });
}

}  // namespace androne
