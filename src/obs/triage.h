// Failure-triage text helpers (DESIGN.md §12). The obs layer's byte-stable
// exports (TraceRecorder::ExportText, MetricsSnapshot::ToText) make "where
// did two runs diverge?" a line diff; these helpers turn that diff into the
// two artifacts campaign triage and the determinism harness key on:
//
//  - FirstDivergentLine: the 1-based line where two exports first differ
//    (0 when identical). Against a trace export that line IS the first
//    divergent trace event, since ExportText is one event per line.
//  - DescribeDivergence: a human-readable two-line excerpt of that
//    divergence for failure messages.
//  - FailureBucketKey: the canonical bucket id a failing scenario lands in
//    — scenario family + failed-assertion signature — so one root cause
//    collapses to one bucket no matter how many sweep instances hit it.
#ifndef SRC_OBS_TRIAGE_H_
#define SRC_OBS_TRIAGE_H_

#include <string>
#include <vector>

namespace androne {

// One side of the first differing line between two texts.
struct DivergencePoint {
  int line = 0;  // 1-based line number; 0 means the texts are identical.
  std::string a;  // The line in text A ("<eof>" if A ended first).
  std::string b;  // The line in text B ("<eof>" if B ended first).

  bool identical() const { return line == 0; }
};

// First line where |a| and |b| differ, comparing line by line.
DivergencePoint FirstDivergentLine(const std::string& a, const std::string& b);

// Failure-message rendering of FirstDivergentLine. |label_a|/|label_b| name
// the two sides (e.g. "golden"/"actual", "faulted"/"nominal").
std::string DescribeDivergence(const std::string& a, const std::string& b,
                               const std::string& label_a = "A",
                               const std::string& label_b = "B");

// Canonical bucket key for a failed scenario: the scenario family (template
// name — instance decorations like "#3" or "/t4" already stripped by the
// caller) joined with the sorted failed-assertion signatures. Deterministic:
// the assertion list is copied and sorted, so evaluation order is
// irrelevant. An empty |failed_assertions| yields "<family>|<no-assertion>"
// (the scenario failed without tripping an assertion, e.g. world skipped).
std::string FailureBucketKey(const std::string& family,
                             std::vector<std::string> failed_assertions);

}  // namespace androne

#endif  // SRC_OBS_TRIAGE_H_
