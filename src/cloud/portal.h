// AnDrone web portal (paper §2, Figure 1): users order virtual drones by
// picking waypoints, a time window, apps from the app store, and app
// arguments. The portal validates arguments against each app's AnDrone
// manifest, merges the apps' device requirements into the definition,
// applies the geofence size policy, prices the order with energy-based
// billing, and registers the resulting virtual drone in the VDR.
#ifndef SRC_CLOUD_PORTAL_H_
#define SRC_CLOUD_PORTAL_H_

#include <string>
#include <vector>

#include "src/cloud/billing.h"
#include "src/cloud/energy_model.h"
#include "src/cloud/vdr.h"
#include "src/core/definition.h"
#include "src/core/manifest.h"
#include "src/util/time.h"

namespace androne {

struct PortalConfig {
  double default_geofence_radius_m = 100.0;
  double max_geofence_radius_m = 500.0;
  double max_duration_s = 1800.0;
};

struct OrderRequest {
  std::string user;
  std::vector<WaypointSpec> waypoints;
  double max_duration_s = 600;
  double max_billing_dollars = 0.25;  // Bounds the energy allotment.
  std::vector<std::string> apps;      // App-store package names.
  JsonValue app_args;                 // { package: { name: value } }.
  // Advanced (direct-access) users can request devices beyond what their
  // apps' manifests declare.
  std::vector<std::string> extra_waypoint_devices;
  std::vector<std::string> extra_continuous_devices;
  double geofence_radius_m = 0;  // 0 = provider default.
};

struct OrderConfirmation {
  std::string vdrone_id;
  VirtualDroneDefinition definition;
  BillingEstimate estimate;
};

// Tenant-visible record of an onboard safety event: the paper's promise is
// that the provider stays in control of the physical drone; this is how a
// tenant learns *why* their virtual drone stopped obeying for a while.
struct OverrideNotice {
  SimTime at = 0;
  std::string vdrone_id;  // Empty = all tenants on the physical drone.
  std::string reason;     // e.g. "Safety override: level-hold (sensor)".
};

class Portal {
 public:
  Portal(AppStore* app_store, VirtualDroneRepository* vdr,
         const EnergyModel& energy_model, const Billing& billing,
         PortalConfig config = PortalConfig());

  // Validates and registers an order; the definition lands in the VDR
  // ready for the flight planner to schedule.
  StatusOr<OrderConfirmation> OrderVirtualDrone(const OrderRequest& request);

  // Drone-type listing shown during ordering (static catalog).
  std::vector<std::string> AvailableDroneTypes() const;

  // Records a safety-override (or release) event reported up the telemetry
  // path; |vdrone_id| may be empty when the event affects every tenant on
  // the physical drone.
  void PostOverrideNotice(SimTime at, const std::string& vdrone_id,
                          const std::string& reason);
  const std::vector<OverrideNotice>& override_notices() const {
    return override_notices_;
  }
  // Notices addressed to |vdrone_id| (including drone-wide ones).
  std::vector<OverrideNotice> NoticesFor(const std::string& vdrone_id) const;

 private:
  AppStore* app_store_;
  VirtualDroneRepository* vdr_;
  EnergyModel energy_model_;
  Billing billing_;
  PortalConfig config_;
  int next_order_ = 1;
  std::vector<OverrideNotice> override_notices_;
};

}  // namespace androne

#endif  // SRC_CLOUD_PORTAL_H_
