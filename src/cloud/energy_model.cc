#include "src/cloud/energy_model.h"

#include <cmath>

namespace androne {

namespace {
constexpr double kGravity = 9.80665;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

EnergyModel::EnergyModel(const EnergyModelParams& params) : params_(params) {}

double EnergyModel::HoverPowerW(double payload_kg) const {
  double mass = params_.frame_mass_kg + payload_kg;
  double thrust = mass * kGravity;
  double disc_area = kPi * params_.rotor_radius_m * params_.rotor_radius_m;
  double ideal = std::pow(thrust, 1.5) /
                 std::sqrt(2.0 * params_.air_density * disc_area *
                           params_.rotor_count);
  return ideal / params_.drivetrain_efficiency;
}

double EnergyModel::TravelPowerW(double speed_ms, double payload_kg) const {
  return HoverPowerW(payload_kg) *
         (1.0 + params_.travel_power_factor * speed_ms);
}

double EnergyModel::TravelEnergyJ(double distance_m, double speed_ms,
                                  double payload_kg) const {
  if (speed_ms <= 0) {
    return 0;
  }
  return TravelPowerW(speed_ms, payload_kg) * (distance_m / speed_ms);
}

double EnergyModel::HoverEnergyJ(double seconds, double payload_kg) const {
  return HoverPowerW(payload_kg) * seconds;
}

double EnergyModel::LegEnergyJ(const GeoPoint& from, const GeoPoint& to,
                               double speed_ms) const {
  return TravelEnergyJ(Distance3dMeters(from, to), speed_ms);
}

}  // namespace androne
