#include "src/cloud/portal.h"

#include <algorithm>

#include "src/services/permissions.h"

namespace androne {

namespace {

void AddUnique(std::vector<std::string>& list, const std::string& value) {
  if (std::find(list.begin(), list.end(), value) == list.end()) {
    list.push_back(value);
  }
}

}  // namespace

Portal::Portal(AppStore* app_store, VirtualDroneRepository* vdr,
               const EnergyModel& energy_model, const Billing& billing,
               PortalConfig config)
    : app_store_(app_store), vdr_(vdr), energy_model_(energy_model),
      billing_(billing), config_(config) {}

void Portal::PostOverrideNotice(SimTime at, const std::string& vdrone_id,
                                const std::string& reason) {
  override_notices_.push_back(OverrideNotice{at, vdrone_id, reason});
}

std::vector<OverrideNotice> Portal::NoticesFor(
    const std::string& vdrone_id) const {
  std::vector<OverrideNotice> out;
  for (const OverrideNotice& notice : override_notices_) {
    if (notice.vdrone_id.empty() || notice.vdrone_id == vdrone_id) {
      out.push_back(notice);
    }
  }
  return out;
}

std::vector<std::string> Portal::AvailableDroneTypes() const {
  return {"quad-video (camera, gimbal)", "quad-survey (camera, sensors)",
          "quad-sensor (environmental sensor suite)"};
}

StatusOr<OrderConfirmation> Portal::OrderVirtualDrone(
    const OrderRequest& request) {
  if (request.waypoints.empty()) {
    return InvalidArgumentError("an order needs at least one waypoint");
  }
  if (request.max_duration_s <= 0 ||
      request.max_duration_s > config_.max_duration_s) {
    return InvalidArgumentError("max-duration outside the provider's limits");
  }

  VirtualDroneDefinition def;
  def.owner = request.user;
  def.waypoints = request.waypoints;
  // Geofence size: user-requested up to the provider maximum, with a
  // default (paper §2).
  double radius = request.geofence_radius_m > 0
                      ? request.geofence_radius_m
                      : config_.default_geofence_radius_m;
  if (radius > config_.max_geofence_radius_m) {
    return InvalidArgumentError("requested geofence exceeds provider maximum");
  }
  for (WaypointSpec& wp : def.waypoints) {
    if (wp.max_radius_m <= 0) {
      wp.max_radius_m = radius;
    }
    wp.max_radius_m = std::min(wp.max_radius_m, config_.max_geofence_radius_m);
  }
  def.max_duration_s = request.max_duration_s;
  def.energy_allotted_j =
      billing_.MaxEnergyForCharge(request.max_billing_dollars);
  if (def.energy_allotted_j <= 0) {
    return InvalidArgumentError("maximum billing charge buys no energy");
  }

  // Merge device requirements from each app's manifest; validate arguments.
  JsonObject all_args;
  if (request.app_args.is_object()) {
    all_args = request.app_args.AsObject();
  }
  for (const std::string& package : request.apps) {
    ASSIGN_OR_RETURN(AppPackage app, app_store_->Fetch(package));
    ASSIGN_OR_RETURN(AndroneManifest manifest,
                     AndroneManifest::Parse(app.manifest_xml));
    JsonValue args_for_app(JsonObject{});
    auto it = all_args.find(package);
    if (it != all_args.end()) {
      args_for_app = it->second;
    }
    RETURN_IF_ERROR(manifest.ValidateArgs(args_for_app));
    for (const ManifestPermission& perm : manifest.permissions) {
      if (perm.scope == PermissionScope::kContinuous) {
        AddUnique(def.continuous_devices, perm.device);
      } else {
        AddUnique(def.waypoint_devices, perm.device);
      }
    }
    def.apps.push_back(package);
  }
  for (const std::string& device : request.extra_waypoint_devices) {
    AddUnique(def.waypoint_devices, device);
  }
  for (const std::string& device : request.extra_continuous_devices) {
    AddUnique(def.continuous_devices, device);
  }
  def.app_args = JsonValue(all_args);

  def.id = "vd-" + std::to_string(next_order_++);
  RETURN_IF_ERROR(def.Validate());

  OrderConfirmation confirmation;
  confirmation.vdrone_id = def.id;
  confirmation.definition = def;
  confirmation.estimate = billing_.Estimate(def.energy_allotted_j,
                                            energy_model_.HoverPowerW());

  StoredVirtualDrone stored;
  stored.definition_json = def.ToJson();
  stored.resumable = false;
  vdr_->Save(def.id, std::move(stored));
  return confirmation;
}

}  // namespace androne
