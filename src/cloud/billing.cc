#include "src/cloud/billing.h"

namespace androne {

BillingEstimate Billing::Estimate(double energy_j,
                                  double hover_power_w) const {
  BillingEstimate estimate;
  estimate.energy_j = energy_j;
  estimate.flight_time_estimate_s =
      hover_power_w > 0 ? energy_j / hover_power_w : 0;
  estimate.energy_cost = energy_j / 1e6 * policy_.dollars_per_megajoule;
  estimate.total_cost = estimate.energy_cost;
  return estimate;
}

double Billing::CostForEnergy(double energy_j) const {
  return energy_j / 1e6 * policy_.dollars_per_megajoule;
}

double Billing::MaxEnergyForCharge(double max_dollars) const {
  if (policy_.dollars_per_megajoule <= 0) {
    return 0;
  }
  return max_dollars / policy_.dollars_per_megajoule * 1e6;
}

}  // namespace androne
