#include "src/cloud/flight_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace androne {

std::string FlightPlan::ToString() const {
  std::string out = "FlightPlan (makespan " +
                    std::to_string(static_cast<int>(makespan_s)) + " s, " +
                    (feasible ? "feasible" : "INFEASIBLE") + ")\n";
  for (const PlannedRoute& route : routes) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  drone %d: %zu stops, %.0f kJ, %.0f s\n", route.drone,
                  route.stops.size(), route.total_energy_j / 1000.0,
                  route.total_time_s);
    out += line;
  }
  return out;
}

StatusOr<double> FlightPlan::EtaSecondsFor(const std::vector<PlannerJob>& jobs,
                                           const std::string& vdrone_ref,
                                           int waypoint_index) const {
  for (const PlannedRoute& route : routes) {
    for (const PlannedStop& stop : route.stops) {
      const PlannerJob& job = jobs[stop.job_index];
      if (job.vdrone_ref == vdrone_ref &&
          job.waypoint_index == waypoint_index) {
        return stop.arrival_time_s;
      }
    }
  }
  return NotFoundError("no stop serves " + vdrone_ref + " waypoint " +
                       std::to_string(waypoint_index));
}

double FlightPlanner::RouteEnergyJ(const std::vector<PlannerJob>& jobs,
                                   const std::vector<size_t>& order) const {
  if (order.empty()) {
    return 0;
  }
  double energy = 0;
  GeoPoint at = config_.depot;
  for (size_t idx : order) {
    const PlannerJob& job = jobs[idx];
    energy += model_.LegEnergyJ(at, job.waypoint, config_.cruise_speed_ms);
    energy += job.service_energy_j;
    at = job.waypoint;
  }
  energy += model_.LegEnergyJ(at, config_.depot, config_.cruise_speed_ms);
  return energy;
}

double FlightPlanner::RouteTimeS(const std::vector<PlannerJob>& jobs,
                                 const std::vector<size_t>& order) const {
  if (order.empty()) {
    return 0;
  }
  double time = 0;
  GeoPoint at = config_.depot;
  for (size_t idx : order) {
    const PlannerJob& job = jobs[idx];
    time += Distance3dMeters(at, job.waypoint) / config_.cruise_speed_ms;
    time += job.service_time_s;
    at = job.waypoint;
  }
  time += Distance3dMeters(at, config_.depot) / config_.cruise_speed_ms;
  return time;
}

int FlightPlanner::CountConstraintViolations(
    const std::vector<PlannerJob>& jobs,
    const std::vector<std::vector<size_t>>& routes) {
  int violations = 0;
  // Ordered tenants must keep all ordered jobs on one route, in index order.
  std::map<int, size_t> ordered_route;  // vdrone -> first route seen.
  for (size_t r = 0; r < routes.size(); ++r) {
    std::map<int, int> last_index;  // vdrone -> last ordered index seen.
    for (size_t idx : routes[r]) {
      const PlannerJob& job = jobs[idx];
      if (!job.ordered) {
        continue;
      }
      auto [it, inserted] = ordered_route.emplace(job.vdrone_id, r);
      if (!inserted && it->second != r) {
        ++violations;  // Split across routes.
      }
      auto last = last_index.find(job.vdrone_id);
      if (last != last_index.end() && job.waypoint_index < last->second) {
        ++violations;  // Out of order.
      }
      last_index[job.vdrone_id] = job.waypoint_index;
    }
  }
  // Grouped tenants must be contiguous within their route.
  for (const auto& route : routes) {
    std::map<int, std::pair<size_t, size_t>> span;  // vdrone -> [first,last].
    for (size_t pos = 0; pos < route.size(); ++pos) {
      const PlannerJob& job = jobs[route[pos]];
      if (!job.grouped) {
        continue;
      }
      auto [it, inserted] = span.emplace(job.vdrone_id,
                                         std::make_pair(pos, pos));
      if (!inserted) {
        it->second.second = pos;
      }
    }
    for (const auto& [vdrone, range] : span) {
      for (size_t pos = range.first; pos <= range.second; ++pos) {
        if (jobs[route[pos]].vdrone_id != vdrone) {
          ++violations;  // An interloper inside the group.
        }
      }
    }
  }
  return violations;
}

FlightPlan FlightPlanner::Materialize(
    const std::vector<PlannerJob>& jobs,
    const std::vector<std::vector<size_t>>& routes) const {
  FlightPlan plan;
  plan.constraint_violations = CountConstraintViolations(jobs, routes);
  double usable = config_.battery_capacity_j *
                  (1.0 - config_.energy_reserve_fraction);
  int drone = 0;
  for (const auto& order : routes) {
    PlannedRoute route;
    route.drone = drone++;
    double energy = 0;
    double time = 0;
    GeoPoint at = config_.depot;
    for (size_t idx : order) {
      const PlannerJob& job = jobs[idx];
      energy += model_.LegEnergyJ(at, job.waypoint, config_.cruise_speed_ms);
      time += Distance3dMeters(at, job.waypoint) / config_.cruise_speed_ms;
      route.stops.push_back(PlannedStop{idx, energy, time});
      energy += job.service_energy_j;
      time += job.service_time_s;
      at = job.waypoint;
    }
    energy += model_.LegEnergyJ(at, config_.depot, config_.cruise_speed_ms);
    time += Distance3dMeters(at, config_.depot) / config_.cruise_speed_ms;
    route.total_energy_j = energy;
    route.total_time_s = time;
    route.feasible = energy <= usable;
    plan.feasible = plan.feasible && route.feasible;
    plan.makespan_s = std::max(plan.makespan_s, time);
    plan.routes.push_back(std::move(route));
  }
  return plan;
}

double FlightPlanner::Cost(const FlightPlan& plan) const {
  double usable = config_.battery_capacity_j *
                  (1.0 - config_.energy_reserve_fraction);
  double cost = plan.makespan_s;
  // Ordering/grouping breaches are hard constraints: dominate travel time.
  cost += 5000.0 * plan.constraint_violations;
  // Soft total-time term keeps non-bottleneck routes short too.
  for (const PlannedRoute& route : plan.routes) {
    cost += 0.05 * route.total_time_s;
    if (route.total_energy_j > usable) {
      // Heavy penalty per joule over budget.
      cost += 10.0 + (route.total_energy_j - usable) * 0.01;
    }
  }
  return cost;
}

StatusOr<FlightPlan> FlightPlanner::Plan(
    const std::vector<PlannerJob>& jobs) const {
  if (config_.fleet_size <= 0) {
    return InvalidArgumentError("fleet size must be positive");
  }
  double usable = config_.battery_capacity_j *
                  (1.0 - config_.energy_reserve_fraction);
  // Single-job feasibility: depot -> wp -> service -> depot must fit.
  for (size_t i = 0; i < jobs.size(); ++i) {
    double solo = RouteEnergyJ(jobs, {i});
    if (solo > usable) {
      return FailedPreconditionError(
          "waypoint for virtual drone " + std::to_string(jobs[i].vdrone_id) +
          " cannot be served within one battery (" + std::to_string(solo) +
          " J needed, " + std::to_string(usable) + " J usable)");
    }
  }

  size_t n = jobs.size();
  std::vector<std::vector<size_t>> routes(
      static_cast<size_t>(config_.fleet_size));
  if (n == 0) {
    return Materialize(jobs, routes);
  }

  // Greedy seed: keep each virtual drone's jobs together (in waypoint
  // order) and deal the blocks round-robin over the fleet — a feasible
  // start for the ordering/grouping extension and a reasonable one for the
  // unconstrained case.
  Rng rng(config_.seed);
  std::vector<size_t> by_tenant(n);
  for (size_t i = 0; i < n; ++i) {
    by_tenant[i] = i;
  }
  std::stable_sort(by_tenant.begin(), by_tenant.end(),
                   [&jobs](size_t a, size_t b) {
                     if (jobs[a].vdrone_id != jobs[b].vdrone_id) {
                       return jobs[a].vdrone_id < jobs[b].vdrone_id;
                     }
                     return jobs[a].waypoint_index < jobs[b].waypoint_index;
                   });
  size_t route_cursor = 0;
  for (size_t i = 0; i < n;) {
    size_t j = i;
    while (j < n &&
           jobs[by_tenant[j]].vdrone_id == jobs[by_tenant[i]].vdrone_id) {
      routes[route_cursor].push_back(by_tenant[j]);
      ++j;
    }
    i = j;
    route_cursor = (route_cursor + 1) % routes.size();
  }

  FlightPlan best = Materialize(jobs, routes);
  double best_cost = Cost(best);
  auto current = routes;
  double current_cost = best_cost;

  double temperature = std::max(60.0, best.makespan_s * 0.3);
  const double cooling =
      std::pow(0.001 / temperature,
               1.0 / std::max(1, config_.annealing_iterations));

  for (int iter = 0; iter < config_.annealing_iterations; ++iter) {
    auto candidate = current;
    // Moves: relocate a job, swap two jobs, or reverse a segment.
    int move = static_cast<int>(rng.NextU64Below(3));
    size_t r1 = rng.NextU64Below(candidate.size());
    size_t r2 = rng.NextU64Below(candidate.size());
    if (move == 0) {
      // Relocate a random job from r1 to a random slot in r2.
      if (candidate[r1].empty()) {
        continue;
      }
      size_t from = rng.NextU64Below(candidate[r1].size());
      size_t job = candidate[r1][from];
      candidate[r1].erase(candidate[r1].begin() + static_cast<long>(from));
      size_t to = rng.NextU64Below(candidate[r2].size() + 1);
      candidate[r2].insert(candidate[r2].begin() + static_cast<long>(to), job);
    } else if (move == 1) {
      if (candidate[r1].empty() || candidate[r2].empty()) {
        continue;
      }
      size_t a = rng.NextU64Below(candidate[r1].size());
      size_t b = rng.NextU64Below(candidate[r2].size());
      std::swap(candidate[r1][a], candidate[r2][b]);
    } else {
      if (candidate[r1].size() < 2) {
        continue;
      }
      size_t a = rng.NextU64Below(candidate[r1].size());
      size_t b = rng.NextU64Below(candidate[r1].size());
      if (a > b) {
        std::swap(a, b);
      }
      std::reverse(candidate[r1].begin() + static_cast<long>(a),
                   candidate[r1].begin() + static_cast<long>(b) + 1);
    }

    FlightPlan plan = Materialize(jobs, candidate);
    double cost = Cost(plan);
    double delta = cost - current_cost;
    if (delta < 0 || rng.NextDouble() < std::exp(-delta / temperature)) {
      current = std::move(candidate);
      current_cost = cost;
      if (cost < best_cost) {
        best = std::move(plan);
        best_cost = cost;
      }
    }
    temperature *= cooling;
  }

  if (!best.feasible) {
    return ResourceExhaustedError(
        "no feasible plan within the fleet's battery capacity; " +
        best.ToString());
  }
  if (best.constraint_violations > 0) {
    return FailedPreconditionError(
        "no plan satisfying the ordering/grouping constraints was found (" +
        std::to_string(best.constraint_violations) + " violations remain)");
  }
  return best;
}

}  // namespace androne
