// Energy-based billing (paper §2): drone usage is billed like an energy
// utility because energy is the drone's critical resource; storage and
// network are billed like ordinary cloud resources. The user's maximum
// billing charge bounds the energy their virtual drone may consume.
#ifndef SRC_CLOUD_BILLING_H_
#define SRC_CLOUD_BILLING_H_

namespace androne {

struct BillingPolicy {
  double dollars_per_megajoule = 2.50;   // Flight energy.
  double dollars_per_gb_stored = 0.10;   // Cloud storage, per month.
  double dollars_per_gb_network = 0.05;  // Cellular transfer.
};

struct BillingEstimate {
  double energy_j = 0;
  double flight_time_estimate_s = 0;
  double energy_cost = 0;
  double total_cost = 0;
};

class Billing {
 public:
  explicit Billing(const BillingPolicy& policy = BillingPolicy())
      : policy_(policy) {}

  // Estimate for |energy_j| of flight energy at |hover_power_w| (gives the
  // flight-time estimate users see when ordering).
  BillingEstimate Estimate(double energy_j, double hover_power_w) const;

  // Inverse: the maximum energy a user's maximum charge buys.
  double MaxEnergyForCharge(double max_dollars) const;

  // Settlement charge for |energy_j| of flight energy actually consumed —
  // the control plane bills this at order completion (the estimate above
  // is the pre-flight bound the user authorized).
  double CostForEnergy(double energy_j) const;

  const BillingPolicy& policy() const { return policy_; }

 private:
  BillingPolicy policy_;
};

}  // namespace androne

#endif  // SRC_CLOUD_BILLING_H_
