// Device-conflict analysis for flight planning (paper §5: the flight
// planner reads app manifests/definitions "so it can avoid device access
// conflicts among virtual drones"). Two tenants wanting the same device
// *continuously* on one flight will spend their overlaps suspended (the
// §2 privacy default), so the planner surfaces those pairs — the operator
// can place them on different flights or accept the suspensions.
#ifndef SRC_CLOUD_CONFLICTS_H_
#define SRC_CLOUD_CONFLICTS_H_

#include <string>
#include <vector>

#include "src/core/definition.h"

namespace androne {

struct DeviceConflict {
  std::string vdrone_a;
  std::string vdrone_b;
  std::string device;
  std::string ToString() const {
    return vdrone_a + " and " + vdrone_b +
           " both need continuous access to '" + device + "'";
  }
};

// Pairs of virtual drones whose continuous-device sets intersect. Waypoint
// devices never conflict: tenancies are serialized by construction, and
// flight control is waypoint-only by the definition rules.
std::vector<DeviceConflict> FindContinuousDeviceConflicts(
    const std::vector<VirtualDroneDefinition>& definitions);

// True when placing all |definitions| on one flight needs no suspensions
// beyond the §2 privacy default at waypoints.
bool ConflictFree(const std::vector<VirtualDroneDefinition>& definitions);

}  // namespace androne

#endif  // SRC_CLOUD_CONFLICTS_H_
