// Flight planner (paper §4): assigns virtual drone waypoints to physical
// drone flights using the Dorling-et-al drone-delivery VRP formulation —
// waypoints play the role of delivery locations, the energy cost at each is
// adjusted by the energy allotted to the virtual drone there, and the fleet
// size is constrained. Solved with simulated annealing.
//
// Faithful limitation (paper §4): by default waypoints are treated
// independently — a user cannot prescribe visit order, and one tenant's
// waypoints may be interleaved with another's on the same route.
//
// Extension (the paper's stated future work): per-job ordering and grouping
// constraints. A job with `ordered` must be visited after lower-indexed
// ordered jobs of the same virtual drone (and on the same route); `grouped`
// additionally forbids other tenants' stops between that virtual drone's
// stops. The annealer treats violations as hard penalties, and Plan()
// rejects any result that still violates a constraint.
#ifndef SRC_CLOUD_FLIGHT_PLANNER_H_
#define SRC_CLOUD_FLIGHT_PLANNER_H_

#include <string>
#include <vector>

#include "src/cloud/energy_model.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace androne {

// One waypoint visit requested by a virtual drone.
struct PlannerJob {
  int vdrone_id = 0;            // Numeric id used in planner diagnostics.
  std::string vdrone_ref;       // Definition id ("vd-3") for the executor.
  int waypoint_index = 0;       // Index within that vdrone's definition.
  GeoPoint waypoint;
  double service_energy_j = 0;  // Energy allotted to the tenant here.
  double service_time_s = 0;    // Expected dwell time.
  // Extension flags (see header comment). Both default off, matching the
  // paper's published algorithm.
  bool ordered = false;  // Visit this tenant's waypoints in index order.
  bool grouped = false;  // No other tenant's stop between this tenant's.
};

struct PlannerConfig {
  GeoPoint depot;               // Launch/return base.
  int fleet_size = 1;
  double battery_capacity_j = 199800.0;
  double cruise_speed_ms = 6.0;
  // Reserve fraction held back for winds/contingency.
  double energy_reserve_fraction = 0.15;
  uint64_t seed = 1;
  int annealing_iterations = 20000;
};

struct PlannedStop {
  size_t job_index;             // Into the submitted job list.
  double arrival_energy_j = 0;  // Cumulative energy at arrival.
  double arrival_time_s = 0;
};

struct PlannedRoute {
  int drone = 0;
  std::vector<PlannedStop> stops;
  double total_energy_j = 0;    // Travel + service + return leg.
  double total_time_s = 0;
  bool feasible = true;         // Within battery capacity (minus reserve).
};

struct FlightPlan {
  std::vector<PlannedRoute> routes;
  double makespan_s = 0;        // Longest route duration.
  bool feasible = true;
  int constraint_violations = 0;  // Ordering/grouping breaches (0 in plans
                                  // returned by Plan()).
  std::string ToString() const;

  // Estimated arrival time (seconds after takeoff) at the stop serving
  // |vdrone_ref|'s waypoint |waypoint_index| — the "estimated operating
  // window" the portal shows users ahead of the flight (paper §2).
  StatusOr<double> EtaSecondsFor(const std::vector<PlannerJob>& jobs,
                                 const std::string& vdrone_ref,
                                 int waypoint_index) const;
};

class FlightPlanner {
 public:
  FlightPlanner(const EnergyModel& model, const PlannerConfig& config)
      : model_(model), config_(config) {}

  // Plans routes over |jobs|. Fails if any single job cannot fit a battery.
  StatusOr<FlightPlan> Plan(const std::vector<PlannerJob>& jobs) const;

  // Energy cost of a route visiting |order| (indices into |jobs|),
  // including depot->...->depot travel and per-stop service energy.
  double RouteEnergyJ(const std::vector<PlannerJob>& jobs,
                      const std::vector<size_t>& order) const;
  double RouteTimeS(const std::vector<PlannerJob>& jobs,
                    const std::vector<size_t>& order) const;

  // Counts ordering/grouping violations across a set of per-drone routes.
  static int CountConstraintViolations(
      const std::vector<PlannerJob>& jobs,
      const std::vector<std::vector<size_t>>& routes);

 private:
  // Builds a FlightPlan from per-drone job orderings, computing energies
  // and feasibility.
  FlightPlan Materialize(const std::vector<PlannerJob>& jobs,
                         const std::vector<std::vector<size_t>>& routes) const;

  double Cost(const FlightPlan& plan) const;

  EnergyModel model_;
  PlannerConfig config_;
};

}  // namespace androne

#endif  // SRC_CLOUD_FLIGHT_PLANNER_H_
