#include "src/cloud/vdr.h"

namespace androne {

void VirtualDroneRepository::Save(const std::string& vdrone_id,
                                  StoredVirtualDrone drone) {
  drones_[vdrone_id] = std::move(drone);
}

StatusOr<StoredVirtualDrone> VirtualDroneRepository::Load(
    const std::string& vdrone_id) const {
  auto it = drones_.find(vdrone_id);
  if (it == drones_.end()) {
    return NotFoundError("no virtual drone '" + vdrone_id + "' in the VDR");
  }
  return it->second;
}

Status VirtualDroneRepository::Remove(const std::string& vdrone_id) {
  if (drones_.erase(vdrone_id) == 0) {
    return NotFoundError("no virtual drone '" + vdrone_id + "' in the VDR");
  }
  return OkStatus();
}

std::vector<std::string> VirtualDroneRepository::List() const {
  std::vector<std::string> ids;
  ids.reserve(drones_.size());
  for (const auto& [id, drone] : drones_) {
    ids.push_back(id);
  }
  return ids;
}

bool VirtualDroneRepository::Contains(const std::string& vdrone_id) const {
  return drones_.count(vdrone_id) > 0;
}

uint64_t VirtualDroneRepository::StorageBytes() const {
  uint64_t total = 0;
  for (const auto& [id, drone] : drones_) {
    total += drone.definition_json.size() + drone.image.size();
  }
  return total;
}

void CloudStorage::Put(const std::string& user, const std::string& path,
                       std::string content) {
  files_[user][path] = std::move(content);
}

StatusOr<std::string> CloudStorage::Get(const std::string& user,
                                        const std::string& path) const {
  auto user_it = files_.find(user);
  if (user_it == files_.end()) {
    return NotFoundError("no files for user '" + user + "'");
  }
  auto file_it = user_it->second.find(path);
  if (file_it == user_it->second.end()) {
    return NotFoundError("no file '" + path + "' for user '" + user + "'");
  }
  return file_it->second;
}

std::vector<std::string> CloudStorage::ListUserFiles(
    const std::string& user) const {
  std::vector<std::string> paths;
  auto it = files_.find(user);
  if (it == files_.end()) {
    return paths;
  }
  paths.reserve(it->second.size());
  for (const auto& [path, content] : it->second) {
    paths.push_back(path);
  }
  return paths;
}

Status AppStore::Publish(AppPackage package) {
  if (package.package_name.empty()) {
    return InvalidArgumentError("app package needs a name");
  }
  packages_[package.package_name] = std::move(package);
  return OkStatus();
}

StatusOr<AppPackage> AppStore::Fetch(const std::string& package_name) const {
  auto it = packages_.find(package_name);
  if (it == packages_.end()) {
    return NotFoundError("no app '" + package_name + "' in the store");
  }
  return it->second;
}

std::vector<std::string> AppStore::List() const {
  std::vector<std::string> names;
  names.reserve(packages_.size());
  for (const auto& [name, package] : packages_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace androne
