// Cloud-side ground-control endpoint: the transport half of the flight
// planner's connection to the drone (paper §4.2). It beacons heartbeats at
// the GCS rate so the drone's link watchdog can detect loss of the cloud
// link, sends COMMAND_LONGs through a ReliableCommandSender (ack-tracked
// retransmission over the lossy cellular link), and tracks the downlink
// telemetry it sees (mode, position, drone heartbeats).
#ifndef SRC_CLOUD_GROUND_CONTROL_H_
#define SRC_CLOUD_GROUND_CONTROL_H_

#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "src/mavlink/reliable.h"
#include "src/util/sim_clock.h"

namespace androne {

struct GroundControlConfig {
  double heartbeat_hz = 1.0;
  RetryConfig retry;
  uint8_t sysid = 255;  // GCS convention.
};

// One STATUSTEXT as seen on the downlink (safety overrides, failsafes,
// mode chatter) — the portal surfaces these to tenants.
struct ReceivedStatusText {
  SimTime at = 0;
  uint8_t severity = 0;
  std::string text;
};

class GroundControl {
 public:
  using FrameSink = std::function<void(const MavlinkFrame&)>;
  using StatusTextCallback =
      std::function<void(uint8_t severity, const std::string& text)>;

  GroundControl(SimClock* clock, GroundControlConfig config, uint64_t seed);

  // Frames toward the drone (the uplink side of the cellular/RF channel).
  void SetUplink(FrameSink sink);
  void SetCompletionCallback(ReliableCommandSender::CompletionCallback cb) {
    sender_.SetCompletionCallback(std::move(cb));
  }

  // Starts the heartbeat beacon; idempotent.
  void Start();
  void Stop() { running_ = false; }

  // Ack-tracked command delivery (retransmits until acked or given up).
  void SendCommand(const CommandLong& cmd);
  // Fire-and-forget messages (SET_MODE and targets have no MAVLink ack;
  // callers re-send them as needed).
  void SendMode(CopterMode mode);
  void SendPositionTarget(double lat_deg, double lon_deg, double alt_m);
  void SendFrame(const MavlinkFrame& frame);

  // Feed every frame arriving from the drone here; COMMAND_ACKs resolve
  // pending commands, telemetry updates the tracked state.
  void HandleDownlinkFrame(const MavlinkFrame& frame);

  // --- Introspection ---
  const ReliableCommandSender& sender() const { return sender_; }
  uint64_t heartbeats_sent() const { return heartbeats_sent_; }
  uint64_t drone_heartbeats() const { return drone_heartbeats_; }
  std::optional<CopterMode> drone_mode() const { return drone_mode_; }
  const std::optional<GlobalPositionInt>& drone_position() const {
    return drone_position_;
  }
  // Recent downlink STATUSTEXTs, oldest first (bounded buffer).
  const std::deque<ReceivedStatusText>& status_texts() const {
    return status_texts_;
  }
  // Fires on every downlink STATUSTEXT (the portal hooks this to turn
  // safety-override texts into tenant-visible notices).
  void SetStatusTextCallback(StatusTextCallback cb) {
    status_text_callback_ = std::move(cb);
  }
  // Latest SYS_STATUS sensor bitmasks (0 before the first report).
  uint32_t sensors_present() const { return sensors_present_; }
  uint32_t sensors_health() const { return sensors_health_; }

 private:
  void BeaconTick();

  SimClock* clock_;
  GroundControlConfig config_;
  FrameSink uplink_;
  ReliableCommandSender sender_;
  bool running_ = false;
  uint8_t tx_seq_ = 0;
  uint64_t heartbeats_sent_ = 0;
  uint64_t drone_heartbeats_ = 0;
  std::optional<CopterMode> drone_mode_;
  std::optional<GlobalPositionInt> drone_position_;
  std::deque<ReceivedStatusText> status_texts_;
  StatusTextCallback status_text_callback_;
  uint32_t sensors_present_ = 0;
  uint32_t sensors_health_ = 0;
};

}  // namespace androne

#endif  // SRC_CLOUD_GROUND_CONTROL_H_
