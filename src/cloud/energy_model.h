// Multirotor energy consumption model after Dorling et al., "Vehicle
// Routing Problems for Drone Delivery" (IEEE TSMC 2017) — the model the
// paper's flight planner is built on (§4). Hover power derives from
// momentum theory:
//     P = eta^-1 * ((W + m) g)^(3/2) / sqrt(2 rho zeta n)
// with W the frame mass, m payload, rho air density, zeta rotor disc area,
// n rotor count, and eta the motor+prop electrical efficiency. Calibrated
// to the prototype airframe (~1.6 kg, 9.5" props, ~170 W hover).
#ifndef SRC_CLOUD_ENERGY_MODEL_H_
#define SRC_CLOUD_ENERGY_MODEL_H_

#include "src/util/geo.h"

namespace androne {

struct EnergyModelParams {
  double frame_mass_kg = 1.6;
  double rotor_count = 4;
  double rotor_radius_m = 0.121;    // 9.5" propeller.
  double air_density = 1.204;       // kg/m^3 at 20 C.
  double drivetrain_efficiency = 0.55;
  // Travel overhead relative to hover (tilt + parasitic drag), per (m/s).
  double travel_power_factor = 0.012;
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyModelParams& params = EnergyModelParams());

  // Electrical hover power with |payload_kg| of extra mass, watts.
  double HoverPowerW(double payload_kg = 0.0) const;

  // Power at steady forward speed (hover + speed-dependent overhead).
  double TravelPowerW(double speed_ms, double payload_kg = 0.0) const;

  // Energy to fly |distance_m| at |speed_ms|, joules.
  double TravelEnergyJ(double distance_m, double speed_ms,
                       double payload_kg = 0.0) const;

  // Energy to hover for |seconds|, joules.
  double HoverEnergyJ(double seconds, double payload_kg = 0.0) const;

  // Energy between two waypoints at cruise speed.
  double LegEnergyJ(const GeoPoint& from, const GeoPoint& to,
                    double speed_ms) const;

  const EnergyModelParams& params() const { return params_; }

 private:
  EnergyModelParams params_;
};

}  // namespace androne

#endif  // SRC_CLOUD_ENERGY_MODEL_H_
