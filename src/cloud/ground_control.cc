#include "src/cloud/ground_control.h"

namespace androne {

namespace {
// Bound on the retained STATUSTEXT history — telemetry, not a flight log.
constexpr size_t kMaxStatusTexts = 64;
}  // namespace

GroundControl::GroundControl(SimClock* clock, GroundControlConfig config,
                             uint64_t seed)
    : clock_(clock), config_(config),
      sender_(clock, config.retry, seed) {
  sender_.set_sysid(config_.sysid);
}

void GroundControl::SetUplink(FrameSink sink) {
  uplink_ = std::move(sink);
  sender_.SetSendSink([this](const MavlinkFrame& frame) {
    if (uplink_) {
      uplink_(frame);
    }
  });
}

void GroundControl::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  BeaconTick();
}

void GroundControl::BeaconTick() {
  if (!running_) {
    return;
  }
  Heartbeat hb;
  hb.type = 6;       // MAV_TYPE_GCS.
  hb.autopilot = 8;  // MAV_AUTOPILOT_INVALID, as GCSs send.
  hb.system_status = static_cast<uint8_t>(MavState::kActive);
  SendFrame(PackMessage(MavMessage{hb}));
  ++heartbeats_sent_;
  clock_->ScheduleAfter(SecondsF(1.0 / config_.heartbeat_hz),
                        [this] { BeaconTick(); });
}

void GroundControl::SendCommand(const CommandLong& cmd) {
  sender_.SendCommand(cmd);
}

void GroundControl::SendMode(CopterMode mode) {
  SetMode sm;
  sm.custom_mode = static_cast<uint32_t>(mode);
  SendFrame(PackMessage(MavMessage{sm}));
}

void GroundControl::SendPositionTarget(double lat_deg, double lon_deg,
                                       double alt_m) {
  SetPositionTargetGlobalInt sp;
  sp.lat_int = static_cast<int32_t>(lat_deg * 1e7);
  sp.lon_int = static_cast<int32_t>(lon_deg * 1e7);
  sp.alt = static_cast<float>(alt_m);
  SendFrame(PackMessage(MavMessage{sp}));
}

void GroundControl::SendFrame(const MavlinkFrame& frame) {
  MavlinkFrame out = frame;
  out.seq = tx_seq_++;
  out.sysid = config_.sysid;
  if (uplink_) {
    uplink_(out);
  }
}

void GroundControl::HandleDownlinkFrame(const MavlinkFrame& frame) {
  sender_.HandleFrame(frame);
  auto message = UnpackMessage(frame);
  if (!message.ok()) {
    return;
  }
  if (const auto* hb = std::get_if<Heartbeat>(&*message)) {
    ++drone_heartbeats_;
    drone_mode_ = static_cast<CopterMode>(hb->custom_mode);
    return;
  }
  if (const auto* gpi = std::get_if<GlobalPositionInt>(&*message)) {
    drone_position_ = *gpi;
    return;
  }
  if (const auto* ss = std::get_if<SysStatus>(&*message)) {
    sensors_present_ = ss->sensors_present;
    sensors_health_ = ss->sensors_health;
    return;
  }
  if (const auto* st = std::get_if<StatusText>(&*message)) {
    status_texts_.push_back(
        ReceivedStatusText{clock_->now(), st->severity, st->text});
    if (status_texts_.size() > kMaxStatusTexts) {
      status_texts_.pop_front();
    }
    if (status_text_callback_) {
      status_text_callback_(st->severity, st->text);
    }
  }
}

}  // namespace androne
