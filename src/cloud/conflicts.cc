#include "src/cloud/conflicts.h"

#include <algorithm>

namespace androne {

std::vector<DeviceConflict> FindContinuousDeviceConflicts(
    const std::vector<VirtualDroneDefinition>& definitions) {
  std::vector<DeviceConflict> conflicts;
  for (size_t a = 0; a < definitions.size(); ++a) {
    for (size_t b = a + 1; b < definitions.size(); ++b) {
      for (const std::string& device : definitions[a].continuous_devices) {
        if (definitions[b].WantsDeviceContinuously(device)) {
          conflicts.push_back(DeviceConflict{definitions[a].id,
                                             definitions[b].id, device});
        }
      }
    }
  }
  return conflicts;
}

bool ConflictFree(const std::vector<VirtualDroneDefinition>& definitions) {
  return FindContinuousDeviceConflicts(definitions).empty();
}

}  // namespace androne
