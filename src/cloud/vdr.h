// Cloud-side stores (paper §4, Figure 3):
//  * Virtual Drone Repository (VDR): preconfigured/suspended virtual drones
//    (definition JSON + exported container image) for later reuse, resume,
//    or redeployment on different physical hardware.
//  * CloudStorage: per-user flight artifacts (files apps marked for the
//    user), retrieved on demand after the flight.
//  * AppStore: published AnDrone app packages with their manifests.
#ifndef SRC_CLOUD_VDR_H_
#define SRC_CLOUD_VDR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace androne {

struct StoredVirtualDrone {
  std::string definition_json;
  std::vector<uint8_t> image;  // ImageStore::Export bytes; may be empty for
                               // never-flown definitions.
  bool resumable = false;      // Saved mid-task (needs the image to resume).
  // VDC progress snapshot (waypoints served, allotments used) so a resumed
  // virtual drone continues where it left off on another flight.
  std::string progress_json;
};

class VirtualDroneRepository {
 public:
  // Saves (or overwrites) a virtual drone under its id.
  void Save(const std::string& vdrone_id, StoredVirtualDrone drone);

  StatusOr<StoredVirtualDrone> Load(const std::string& vdrone_id) const;
  Status Remove(const std::string& vdrone_id);
  std::vector<std::string> List() const;
  bool Contains(const std::string& vdrone_id) const;

  // Total bytes held (definitions + images): the quantity kept small by the
  // diff-only image design.
  uint64_t StorageBytes() const;

 private:
  std::map<std::string, StoredVirtualDrone> drones_;
};

class CloudStorage {
 public:
  void Put(const std::string& user, const std::string& path,
           std::string content);
  StatusOr<std::string> Get(const std::string& user,
                            const std::string& path) const;
  std::vector<std::string> ListUserFiles(const std::string& user) const;

 private:
  std::map<std::string, std::map<std::string, std::string>> files_;
};

struct AppPackage {
  std::string package_name;  // e.g. "com.example.survey".
  std::string manifest_xml;  // AnDrone manifest (paper §5).
  std::string apk_blob;      // Opaque app payload installed into images.
};

class AppStore {
 public:
  Status Publish(AppPackage package);
  StatusOr<AppPackage> Fetch(const std::string& package_name) const;
  std::vector<std::string> List() const;

 private:
  std::map<std::string, AppPackage> packages_;
};

}  // namespace androne

#endif  // SRC_CLOUD_VDR_H_
