#include "src/flight/flight_log.h"

#include <algorithm>
#include <cmath>

#include "src/util/bytes.h"

namespace androne {

namespace {
double WrapDeg(double deg) {
  while (deg > 180) {
    deg -= 360;
  }
  while (deg < -180) {
    deg += 360;
  }
  return deg;
}
}  // namespace

AedResult AnalyzeAttitudeDivergence(const FlightLog& log, double threshold_deg,
                                    SimDuration max_span) {
  AedResult result;
  constexpr double kRadToDegLocal = 57.29577951308232;
  SimTime span_start = -1;
  for (const FlightLogEntry& e : log.entries()) {
    double droll = WrapDeg((e.est_roll_rad - e.true_roll_rad) * kRadToDegLocal);
    double dpitch =
        WrapDeg((e.est_pitch_rad - e.true_pitch_rad) * kRadToDegLocal);
    double dyaw = WrapDeg((e.est_yaw_rad - e.true_yaw_rad) * kRadToDegLocal);
    double divergence =
        std::max({std::fabs(droll), std::fabs(dpitch), std::fabs(dyaw)});
    result.worst_divergence_deg =
        std::max(result.worst_divergence_deg, divergence);
    if (divergence > threshold_deg) {
      if (span_start < 0) {
        span_start = e.time;
      }
      result.worst_span = std::max(result.worst_span, e.time - span_start);
    } else {
      span_start = -1;
    }
  }
  result.unstable = result.worst_span > max_span;
  return result;
}

uint64_t FlightLogDigest(const FlightLog& log) {
  // Hash field-by-field rather than memcpy'ing the struct: padding bytes are
  // indeterminate and would make the digest non-reproducible.
  uint64_t h = Fnv1a64Value(log.entries().size());
  for (const FlightLogEntry& e : log.entries()) {
    h = Fnv1a64Value(e.time, h);
    h = Fnv1a64Value(e.est_roll_rad, h);
    h = Fnv1a64Value(e.est_pitch_rad, h);
    h = Fnv1a64Value(e.est_yaw_rad, h);
    h = Fnv1a64Value(e.true_roll_rad, h);
    h = Fnv1a64Value(e.true_pitch_rad, h);
    h = Fnv1a64Value(e.true_yaw_rad, h);
    h = Fnv1a64Value(e.altitude_m, h);
    h = Fnv1a64Value(e.mode, h);
    h = Fnv1a64Value(static_cast<uint8_t>(e.armed), h);
  }
  return h;
}

}  // namespace androne
