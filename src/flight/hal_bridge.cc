#include "src/flight/hal_bridge.h"

namespace androne {

StatusOr<std::unique_ptr<BinderHalBridge>> BinderHalBridge::Create(
    BinderProc* hal_proc) {
  ASSIGN_OR_RETURN(BinderHandle sensors,
                   SmGetService(hal_proc, kSensorServiceName));
  ASSIGN_OR_RETURN(BinderHandle location,
                   SmGetService(hal_proc, kLocationServiceName));
  return std::unique_ptr<BinderHalBridge>(
      new BinderHalBridge(hal_proc, sensors, location));
}

StatusOr<ImuSample> BinderHalBridge::ReadImu() {
  Parcel req;
  ASSIGN_OR_RETURN(Parcel reply, proc_->Transact(sensors_, kSensorReadImu, req));
  ImuSample sample;
  for (double& g : sample.gyro_rads) {
    ASSIGN_OR_RETURN(g, reply.ReadDouble());
  }
  for (double& a : sample.accel_mss) {
    ASSIGN_OR_RETURN(a, reply.ReadDouble());
  }
  ASSIGN_OR_RETURN(sample.timestamp, reply.ReadInt64());
  return sample;
}

StatusOr<double> BinderHalBridge::ReadBaroAltitude() {
  Parcel req;
  ASSIGN_OR_RETURN(Parcel reply,
                   proc_->Transact(sensors_, kSensorReadBaro, req));
  return reply.ReadDouble();
}

StatusOr<double> BinderHalBridge::ReadMagHeading() {
  Parcel req;
  ASSIGN_OR_RETURN(Parcel reply, proc_->Transact(sensors_, kSensorReadMag, req));
  return reply.ReadDouble();
}

StatusOr<GpsFix> BinderHalBridge::ReadGps() {
  Parcel req;
  ASSIGN_OR_RETURN(Parcel reply, proc_->Transact(location_, kLocGetLast, req));
  GpsFix fix;
  ASSIGN_OR_RETURN(fix.position.latitude_deg, reply.ReadDouble());
  ASSIGN_OR_RETURN(fix.position.longitude_deg, reply.ReadDouble());
  ASSIGN_OR_RETURN(fix.position.altitude_m, reply.ReadDouble());
  ASSIGN_OR_RETURN(fix.velocity_ms.north_m, reply.ReadDouble());
  ASSIGN_OR_RETURN(fix.velocity_ms.east_m, reply.ReadDouble());
  ASSIGN_OR_RETURN(fix.velocity_ms.down_m, reply.ReadDouble());
  ASSIGN_OR_RETURN(fix.has_fix, reply.ReadBool());
  ASSIGN_OR_RETURN(fix.satellites, reply.ReadInt32());
  ASSIGN_OR_RETURN(fix.timestamp, reply.ReadInt64());
  return fix;
}

}  // namespace androne
