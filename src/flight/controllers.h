// The PID cascade: position P -> velocity PID -> attitude P -> rate PID ->
// motor mixer, the classic multicopter control structure ArduPilot uses.
#ifndef SRC_FLIGHT_CONTROLLERS_H_
#define SRC_FLIGHT_CONTROLLERS_H_

#include <array>

#include "src/hw/motors.h"
#include "src/snapshot/snapshot.h"
#include "src/util/time.h"

namespace androne {

class PidLoop {
 public:
  PidLoop(double kp, double ki, double kd, double integrator_limit)
      : kp_(kp), ki_(ki), kd_(kd), integrator_limit_(integrator_limit) {}

  double Update(double error, SimDuration dt);
  void Reset();

  // Checkpoint/restore: dynamic state only (gains are config).
  void SaveState(SnapshotWriter& w) const {
    w.F64(integrator_);
    w.F64(last_error_);
    w.Bool(has_last_);
  }
  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.F64(&integrator_));
    RETURN_IF_ERROR(r.F64(&last_error_));
    return r.Bool(&has_last_);
  }

 private:
  double kp_, ki_, kd_;
  double integrator_limit_;
  double integrator_ = 0;
  double last_error_ = 0;
  bool has_last_ = false;
};

// Desired attitude + collective thrust produced by the outer loops.
struct AttitudeTarget {
  double roll_rad = 0;
  double pitch_rad = 0;
  double yaw_rad = 0;
  double thrust = 0;  // Normalized collective [0, 1].
};

// Inner loops: attitude P feeding body-rate PIDs, then the quad-X mixer.
class AttitudeController {
 public:
  AttitudeController();

  // Computes motor throttles for the target given current attitude/rates.
  std::array<double, kNumMotors> Update(const AttitudeTarget& target,
                                        double roll, double pitch, double yaw,
                                        double p, double q, double r,
                                        SimDuration dt);
  void Reset();

  void SaveState(SnapshotWriter& w) const {
    roll_rate_pid_.SaveState(w);
    pitch_rate_pid_.SaveState(w);
    yaw_rate_pid_.SaveState(w);
  }
  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(roll_rate_pid_.RestoreState(r));
    RETURN_IF_ERROR(pitch_rate_pid_.RestoreState(r));
    return yaw_rate_pid_.RestoreState(r);
  }

 private:
  PidLoop roll_rate_pid_;
  PidLoop pitch_rate_pid_;
  PidLoop yaw_rate_pid_;
};

// Outer loops: horizontal position/velocity and altitude control producing
// an AttitudeTarget. Limits encode the paper's "disallow overly aggressive
// maneuvers" restriction (max tilt / climb / speed).
struct PositionControllerLimits {
  double max_tilt_rad = 0.30;
  double max_speed_ms = 6.0;
  double max_climb_ms = 2.5;
  double max_descent_ms = 1.5;
};

class PositionController {
 public:
  PositionController(double hover_throttle,
                     const PositionControllerLimits& limits);

  // NED position/velocity control toward target (meters, local frame).
  // |yaw| is the current heading used to rotate into body tilt.
  AttitudeTarget Update(double n, double e, double d, double vn, double ve,
                        double vd, double tn, double te, double td,
                        double yaw, double target_yaw, SimDuration dt);

  // Velocity-only control (guided velocity mode / manual override).
  AttitudeTarget UpdateVelocity(double vn, double ve, double vd,
                                double target_vn, double target_ve,
                                double target_vd, double yaw,
                                double target_yaw, SimDuration dt);

  void Reset();
  void set_max_speed(double ms) { limits_.max_speed_ms = ms; }
  const PositionControllerLimits& limits() const { return limits_; }

  // max_speed is mutable at runtime (DO_CHANGE_SPEED / WPNAV_SPEED), so the
  // whole limit block travels with the dynamic state.
  void SaveState(SnapshotWriter& w) const {
    w.F64(limits_.max_tilt_rad);
    w.F64(limits_.max_speed_ms);
    w.F64(limits_.max_climb_ms);
    w.F64(limits_.max_descent_ms);
    vel_n_pid_.SaveState(w);
    vel_e_pid_.SaveState(w);
    vel_d_pid_.SaveState(w);
  }
  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.F64(&limits_.max_tilt_rad));
    RETURN_IF_ERROR(r.F64(&limits_.max_speed_ms));
    RETURN_IF_ERROR(r.F64(&limits_.max_climb_ms));
    RETURN_IF_ERROR(r.F64(&limits_.max_descent_ms));
    RETURN_IF_ERROR(vel_n_pid_.RestoreState(r));
    RETURN_IF_ERROR(vel_e_pid_.RestoreState(r));
    return vel_d_pid_.RestoreState(r);
  }

 private:
  double hover_throttle_;
  PositionControllerLimits limits_;
  PidLoop vel_n_pid_;
  PidLoop vel_e_pid_;
  PidLoop vel_d_pid_;
};

}  // namespace androne

#endif  // SRC_FLIGHT_CONTROLLERS_H_
