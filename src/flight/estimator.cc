#include "src/flight/estimator.h"

#include <algorithm>
#include <cmath>

namespace androne {

namespace {
constexpr double kGravity = 9.80665;
// Complementary-filter blend weights per update.
constexpr double kAccelBlend = 0.02;
constexpr double kMagBlend = 0.05;
constexpr double kBaroBlend = 0.2;

double WrapAngle(double a) {
  while (a > M_PI) {
    a -= 2 * M_PI;
  }
  while (a < -M_PI) {
    a += 2 * M_PI;
  }
  return a;
}
}  // namespace

void Estimator::UpdateImu(const ImuSample& sample, SimDuration dt) {
  double dts = ToSecondsF(dt);
  // Propagate attitude with gyro rates.
  attitude_.roll_rad += sample.gyro_rads[0] * dts;
  attitude_.pitch_rad += sample.gyro_rads[1] * dts;
  attitude_.yaw_rad += sample.gyro_rads[2] * dts;

  // Level correction from the accelerometer when near 1 g (not maneuvering
  // hard): roll from -a_y, pitch from a_x.
  double ax = sample.accel_mss[0];
  double ay = sample.accel_mss[1];
  double az = sample.accel_mss[2];
  double g_meas = std::sqrt(ax * ax + ay * ay + az * az);
  if (g_meas > 0.8 * kGravity && g_meas < 1.2 * kGravity) {
    double roll_acc = std::asin(std::clamp(-ay / kGravity, -1.0, 1.0));
    double pitch_acc = std::asin(std::clamp(ax / kGravity, -1.0, 1.0));
    attitude_.roll_rad += kAccelBlend * WrapAngle(roll_acc - attitude_.roll_rad);
    attitude_.pitch_rad +=
        kAccelBlend * WrapAngle(pitch_acc - attitude_.pitch_rad);
  }
}

void Estimator::UpdateMag(double heading_rad) {
  attitude_.yaw_rad += kMagBlend * WrapAngle(heading_rad - attitude_.yaw_rad);
}

void Estimator::UpdateBaro(double altitude_m) {
  if (!have_baro_) {
    baro_alt_m_ = altitude_m;
    have_baro_ = true;
  } else {
    baro_alt_m_ += kBaroBlend * (altitude_m - baro_alt_m_);
  }
  position_.position.altitude_m = baro_alt_m_;
}

void Estimator::UpdateGps(const GpsFix& fix) {
  if (!fix.has_fix) {
    return;
  }
  // Horizontal position from GPS; altitude stays baro-driven (GPS vertical
  // noise is much larger).
  position_.position.latitude_deg = fix.position.latitude_deg;
  position_.position.longitude_deg = fix.position.longitude_deg;
  if (!have_baro_) {
    position_.position.altitude_m = fix.position.altitude_m;
  }
  position_.velocity_ms = fix.velocity_ms;
  position_.valid = true;
  last_fix_time_ = fix.timestamp;
}

}  // namespace androne
