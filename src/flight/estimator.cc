#include "src/flight/estimator.h"

#include <algorithm>
#include <cmath>

namespace androne {

namespace {
constexpr double kGravity = 9.80665;
// Complementary-filter blend weights per update.
constexpr double kAccelBlend = 0.02;
constexpr double kMagBlend = 0.05;
constexpr double kBaroBlend = 0.2;
// Stronger accel leveling while the gyro is excluded: the accelerometer is
// then the only attitude reference, so trade noise for convergence.
constexpr double kAccelBlendGyroOut = 0.15;

// Health state machine thresholds.
constexpr int kSuspectAfter = 2;
constexpr int kExcludeAfter = 4;

// Innovation gates. GPS opens with time since the last accepted fix so a
// recovered receiver (or a drone that genuinely moved during an outage) can
// re-enter the blend; the per-sample gates for baro/mag open with
// consecutive rejects for the same reason.
constexpr double kGpsGateBaseM = 15.0;
constexpr double kGpsGateGrowthMps = 5.0;
constexpr double kGpsGateMaxM = 200.0;
constexpr double kBaroGateBaseM = 2.0;
constexpr double kBaroGateGrowthM = 0.05;  // Per consecutive reject.
constexpr double kBaroGateMaxM = 30.0;
constexpr double kMagGateBaseRad = 0.8;
constexpr double kMagGateGrowthRad = 0.02;  // Per consecutive reject.
// Any physically implausible body rate for this airframe.
constexpr double kMaxPlausibleRateRads = 35.0;
// Consecutive bit-identical IMU samples before declaring the sensor stuck.
constexpr int kStuckImuAfter = 8;
// GPS silence before position dead-reckons on the last accepted velocity.
constexpr SimDuration kDeadReckonAfter = Millis(400);
// Dead-reckoned velocity decays toward zero (fraction per second) — without
// corrections, trusting stale velocity forever walks the estimate away.
constexpr double kDeadReckonDecayPerS = 0.5;

double WrapAngle(double a) {
  while (a > M_PI) {
    a -= 2 * M_PI;
  }
  while (a < -M_PI) {
    a += 2 * M_PI;
  }
  return a;
}

// A latched sensor repeats the whole sample, timestamp included; a live
// sensor's timestamp always advances even if the values coincide.
bool SameReading(const ImuSample& a, const ImuSample& b) {
  return a.gyro_rads == b.gyro_rads && a.accel_mss == b.accel_mss &&
         a.timestamp == b.timestamp;
}
}  // namespace

const char* EstimatorSensorName(EstimatorSensor sensor) {
  switch (sensor) {
    case EstimatorSensor::kImu:
      return "imu";
    case EstimatorSensor::kBaro:
      return "baro";
    case EstimatorSensor::kMag:
      return "mag";
    case EstimatorSensor::kGps:
      return "gps";
  }
  return "unknown";
}

const char* SensorHealthName(SensorHealth health) {
  switch (health) {
    case SensorHealth::kHealthy:
      return "healthy";
    case SensorHealth::kSuspect:
      return "suspect";
    case SensorHealth::kExcluded:
      return "excluded";
  }
  return "unknown";
}

void Estimator::Accept(EstimatorSensor sensor, SimTime at) {
  SensorHealthState& s = state(sensor);
  ++s.accepted;
  s.consecutive_rejects = 0;
  s.health = SensorHealth::kHealthy;
  s.last_accept = at;
}

void Estimator::Reject(EstimatorSensor sensor) {
  SensorHealthState& s = state(sensor);
  ++s.rejected;
  ++s.consecutive_rejects;
  if (s.consecutive_rejects >= kExcludeAfter) {
    s.health = SensorHealth::kExcluded;
  } else if (s.consecutive_rejects >= kSuspectAfter) {
    s.health = SensorHealth::kSuspect;
  }
}

bool Estimator::any_excluded() const {
  for (const SensorHealthState& s : health_) {
    if (s.health == SensorHealth::kExcluded) {
      return true;
    }
  }
  return false;
}

void Estimator::UpdateImu(const ImuSample& sample, SimDuration dt) {
  double dts = ToSecondsF(dt);
  last_gyro_ = sample.gyro_rads;

  // Stuck detection: sensor noise never repeats bit-for-bit, a latched
  // sensor always does.
  if (have_imu_ && SameReading(sample, prev_imu_)) {
    ++identical_imu_count_;
  } else {
    identical_imu_count_ = 0;
  }
  prev_imu_ = sample;
  have_imu_ = true;

  double max_rate = std::max({std::abs(sample.gyro_rads[0]),
                              std::abs(sample.gyro_rads[1]),
                              std::abs(sample.gyro_rads[2])});
  bool stuck = identical_imu_count_ >= kStuckImuAfter;
  bool implausible = max_rate > kMaxPlausibleRateRads;
  bool gyro_usable = !stuck && !implausible;
  if (gyro_usable) {
    Accept(EstimatorSensor::kImu, sample.timestamp);
    // Propagate attitude with gyro rates.
    attitude_.roll_rad += sample.gyro_rads[0] * dts;
    attitude_.pitch_rad += sample.gyro_rads[1] * dts;
    attitude_.yaw_rad += sample.gyro_rads[2] * dts;
  } else {
    Reject(EstimatorSensor::kImu);
  }

  // Level correction from the accelerometer when near 1 g (not maneuvering
  // hard): roll from -a_y, pitch from a_x. With the gyro excluded this is
  // the only attitude reference, so blend harder. A stuck IMU freezes the
  // accelerometer too, in which case the repeated correction pulls toward
  // the latched (near-level hover) attitude — a safe attractor.
  double accel_blend = stuck || state(EstimatorSensor::kImu).health ==
                                    SensorHealth::kExcluded
                           ? kAccelBlendGyroOut
                           : kAccelBlend;
  double ax = sample.accel_mss[0];
  double ay = sample.accel_mss[1];
  double az = sample.accel_mss[2];
  double g_meas = std::sqrt(ax * ax + ay * ay + az * az);
  if (g_meas > 0.8 * kGravity && g_meas < 1.2 * kGravity) {
    double roll_acc = std::asin(std::clamp(-ay / kGravity, -1.0, 1.0));
    double pitch_acc = std::asin(std::clamp(ax / kGravity, -1.0, 1.0));
    attitude_.roll_rad +=
        accel_blend * WrapAngle(roll_acc - attitude_.roll_rad);
    attitude_.pitch_rad +=
        accel_blend * WrapAngle(pitch_acc - attitude_.pitch_rad);
  }

  // Dead-reckon position on the last accepted velocity while GPS is stale
  // (dropped out or gated away). Decay the velocity: without corrections,
  // yesterday's velocity is a worsening guess.
  if (position_.valid && last_fix_time_ >= 0 &&
      sample.timestamp - last_fix_time_ > kDeadReckonAfter) {
    dead_reckoning_ = true;
    NedPoint step{position_.velocity_ms.north_m * dts,
                  position_.velocity_ms.east_m * dts, 0.0};
    double altitude = position_.position.altitude_m;
    position_.position = FromNed(position_.position, step);
    position_.position.altitude_m = altitude;  // Altitude stays baro-driven.
    double decay = std::max(0.0, 1.0 - kDeadReckonDecayPerS * dts);
    position_.velocity_ms.north_m *= decay;
    position_.velocity_ms.east_m *= decay;
  } else {
    dead_reckoning_ = false;
  }
}

void Estimator::UpdateMag(double heading_rad) {
  double innovation = WrapAngle(heading_rad - attitude_.yaw_rad);
  SensorHealthState& s = state(EstimatorSensor::kMag);
  double gate = kMagGateBaseRad + kMagGateGrowthRad * s.consecutive_rejects;
  if (s.accepted > 0 && std::abs(innovation) > std::min(gate, M_PI)) {
    Reject(EstimatorSensor::kMag);
    return;
  }
  Accept(EstimatorSensor::kMag, last_fix_time_);
  attitude_.yaw_rad += kMagBlend * innovation;
}

void Estimator::UpdateBaro(double altitude_m) {
  SensorHealthState& s = state(EstimatorSensor::kBaro);
  if (have_baro_) {
    double innovation = altitude_m - baro_alt_m_;
    double gate = std::min(
        kBaroGateBaseM + kBaroGateGrowthM * s.consecutive_rejects,
        kBaroGateMaxM);
    if (std::abs(innovation) > gate) {
      Reject(EstimatorSensor::kBaro);
      return;
    }
    baro_alt_m_ += kBaroBlend * innovation;
  } else {
    baro_alt_m_ = altitude_m;
    have_baro_ = true;
  }
  Accept(EstimatorSensor::kBaro, last_fix_time_);
  position_.position.altitude_m = baro_alt_m_;
}

void Estimator::UpdateGps(const GpsFix& fix) {
  if (!fix.has_fix) {
    return;
  }
  SensorHealthState& s = state(EstimatorSensor::kGps);
  if (s.accepted > 0) {
    double innovation = HaversineMeters(fix.position, position_.position);
    double since_accept_s =
        s.last_accept >= 0
            ? ToSecondsF(std::max<SimDuration>(0, fix.timestamp -
                                                      s.last_accept))
            : 0.0;
    double gate = std::min(kGpsGateBaseM + kGpsGateGrowthMps * since_accept_s,
                           kGpsGateMaxM);
    if (innovation > gate) {
      // Withhold the correction: position freezes (or dead-reckons) and
      // last_fix_time_ goes stale, which is exactly the controller's
      // GPS-glitch signal.
      Reject(EstimatorSensor::kGps);
      return;
    }
  }
  Accept(EstimatorSensor::kGps, fix.timestamp);
  // Horizontal position from GPS; altitude stays baro-driven (GPS vertical
  // noise is much larger).
  position_.position.latitude_deg = fix.position.latitude_deg;
  position_.position.longitude_deg = fix.position.longitude_deg;
  if (!have_baro_) {
    position_.position.altitude_m = fix.position.altitude_m;
  }
  position_.velocity_ms = fix.velocity_ms;
  position_.valid = true;
  last_fix_time_ = fix.timestamp;
}

}  // namespace androne
