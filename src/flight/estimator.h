// Attitude & position estimator: a complementary filter over IMU/mag for
// attitude and GPS/baro blending for position — the estimation layer whose
// divergence from truth the paper's DroneKit AED analyzer checks (§6.2).
#ifndef SRC_FLIGHT_ESTIMATOR_H_
#define SRC_FLIGHT_ESTIMATOR_H_

#include "src/hw/sensors.h"
#include "src/util/geo.h"
#include "src/util/time.h"

namespace androne {

struct AttitudeEstimate {
  double roll_rad = 0;
  double pitch_rad = 0;
  double yaw_rad = 0;
};

struct PositionEstimate {
  GeoPoint position;
  NedPoint velocity_ms;
  bool valid = false;
};

class Estimator {
 public:
  explicit Estimator(const GeoPoint& home) : home_(home) {
    position_.position = home;
  }

  // High-rate update from the IMU (gyro integration + accel leveling).
  void UpdateImu(const ImuSample& sample, SimDuration dt);

  // Lower-rate corrections.
  void UpdateMag(double heading_rad);
  void UpdateBaro(double altitude_m);
  void UpdateGps(const GpsFix& fix);

  const AttitudeEstimate& attitude() const { return attitude_; }
  const PositionEstimate& position() const { return position_; }
  // Timestamp of the last valid GPS fix (-1 before the first); lets the
  // controller detect GPS glitches and fall back to attitude-only hold.
  SimTime last_fix_time() const { return last_fix_time_; }

 private:
  GeoPoint home_;
  AttitudeEstimate attitude_;
  PositionEstimate position_;
  double baro_alt_m_ = 0;
  bool have_baro_ = false;
  SimTime last_fix_time_ = -1;
};

}  // namespace androne

#endif  // SRC_FLIGHT_ESTIMATOR_H_
