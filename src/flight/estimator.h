// Attitude & position estimator: a complementary filter over IMU/mag for
// attitude and GPS/baro blending for position — the estimation layer whose
// divergence from truth the paper's DroneKit AED analyzer checks (§6.2).
//
// Hardened against lying sensors: every correction passes an innovation gate
// before it is blended, each sensor carries a health state machine
// (healthy → suspect → excluded on consecutive rejects, back to healthy on
// an accepted read), and when GPS goes quiet or gets excluded the position
// estimate dead-reckons on the last accepted velocity. The safety supervisor
// reads the health states to decide when the complex stack can no longer be
// trusted.
#ifndef SRC_FLIGHT_ESTIMATOR_H_
#define SRC_FLIGHT_ESTIMATOR_H_

#include <array>

#include "src/hw/sensor_io.h"
#include "src/hw/sensors.h"
#include "src/snapshot/snapshot.h"
#include "src/util/geo.h"
#include "src/util/time.h"

namespace androne {

struct AttitudeEstimate {
  double roll_rad = 0;
  double pitch_rad = 0;
  double yaw_rad = 0;
};

struct PositionEstimate {
  GeoPoint position;
  NedPoint velocity_ms;
  bool valid = false;
};

enum class EstimatorSensor { kImu = 0, kBaro = 1, kMag = 2, kGps = 3 };
inline constexpr int kNumEstimatorSensors = 4;

const char* EstimatorSensorName(EstimatorSensor sensor);

enum class SensorHealth {
  kHealthy = 0,
  kSuspect = 1,   // Recent rejects; corrections withheld, watching.
  kExcluded = 2,  // Persistent rejects; sensor out of the blend.
};

const char* SensorHealthName(SensorHealth health);

struct SensorHealthState {
  SensorHealth health = SensorHealth::kHealthy;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  int consecutive_rejects = 0;
  SimTime last_accept = -1;
};

class Estimator {
 public:
  explicit Estimator(const GeoPoint& home) : home_(home) {
    position_.position = home;
  }

  // High-rate update from the IMU (gyro integration + accel leveling), plus
  // dead-reckoning of position when GPS corrections have gone stale.
  void UpdateImu(const ImuSample& sample, SimDuration dt);

  // Lower-rate corrections.
  void UpdateMag(double heading_rad);
  void UpdateBaro(double altitude_m);
  void UpdateGps(const GpsFix& fix);

  const AttitudeEstimate& attitude() const { return attitude_; }
  const PositionEstimate& position() const { return position_; }
  // Timestamp of the last *accepted* GPS fix (-1 before the first); lets the
  // controller detect GPS glitches and fall back to attitude-only hold. A
  // fix rejected by the innovation gate does not advance this, so gated-out
  // GPS surfaces as staleness to the controller — one degraded path, not
  // two.
  SimTime last_fix_time() const { return last_fix_time_; }

  const SensorHealthState& health(EstimatorSensor sensor) const {
    return health_[static_cast<int>(sensor)];
  }
  bool any_excluded() const;
  // True while position is propagated from velocity instead of GPS.
  bool dead_reckoning() const { return dead_reckoning_; }
  // Latest measured body rates (rad/s), even if the sample was rejected —
  // the safety supervisor monitors raw measurements, not blended state.
  const std::array<double, 3>& last_gyro() const { return last_gyro_; }

  // Replay fast path (DESIGN.md §15): installs the externally-consumed
  // outputs recorded by a reference run, skipping the filter math entirely.
  // Only the consumed surface is written — attitude, position/velocity,
  // fix staleness, per-sensor health verdicts, raw rates, dead-reckoning —
  // so a replayed estimator answers every live query (safety supervisor,
  // mode logic, telemetry, fence) exactly as the recording run did. The
  // internal filter state (baro latch, stuck-IMU detector, accept/reject
  // tallies) is deliberately left stale: a replaying world never
  // checkpoints and never resumes live filtering mid-replay.
  void InstallReplayOutputs(
      const AttitudeEstimate& attitude, const PositionEstimate& position,
      SimTime last_fix_time,
      const std::array<SensorHealth, kNumEstimatorSensors>& health,
      const std::array<double, 3>& gyro, bool dead_reckoning) {
    attitude_ = attitude;
    position_ = position;
    last_fix_time_ = last_fix_time;
    for (int i = 0; i < kNumEstimatorSensors; ++i) {
      health_[static_cast<size_t>(i)].health = health[static_cast<size_t>(i)];
    }
    last_gyro_ = gyro;
    dead_reckoning_ = dead_reckoning;
  }

  // Checkpoint/restore (DESIGN.md §13): every blended/latched value, the
  // per-sensor health machines, and the stuck-IMU detector travel together
  // so a restored estimator continues the exact same filter trajectory.
  void SaveState(SnapshotWriter& w) const {
    w.Section("ESTM");
    w.F64(attitude_.roll_rad);
    w.F64(attitude_.pitch_rad);
    w.F64(attitude_.yaw_rad);
    SaveGeoPoint(w, position_.position);
    SaveNedPoint(w, position_.velocity_ms);
    w.Bool(position_.valid);
    w.F64(baro_alt_m_);
    w.Bool(have_baro_);
    w.I64(last_fix_time_);
    for (const SensorHealthState& h : health_) {
      w.U32(static_cast<uint32_t>(h.health));
      w.U64(h.accepted);
      w.U64(h.rejected);
      w.I64(h.consecutive_rejects);
      w.I64(h.last_accept);
    }
    for (double g : last_gyro_) {
      w.F64(g);
    }
    SaveImuSample(w, prev_imu_);
    w.Bool(have_imu_);
    w.I64(identical_imu_count_);
    w.Bool(dead_reckoning_);
  }

  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("ESTM"));
    RETURN_IF_ERROR(r.F64(&attitude_.roll_rad));
    RETURN_IF_ERROR(r.F64(&attitude_.pitch_rad));
    RETURN_IF_ERROR(r.F64(&attitude_.yaw_rad));
    RETURN_IF_ERROR(RestoreGeoPoint(r, position_.position));
    RETURN_IF_ERROR(RestoreNedPoint(r, position_.velocity_ms));
    RETURN_IF_ERROR(r.Bool(&position_.valid));
    RETURN_IF_ERROR(r.F64(&baro_alt_m_));
    RETURN_IF_ERROR(r.Bool(&have_baro_));
    RETURN_IF_ERROR(r.I64(&last_fix_time_));
    for (SensorHealthState& h : health_) {
      uint32_t health = 0;
      RETURN_IF_ERROR(r.U32(&health));
      h.health = static_cast<SensorHealth>(health);
      RETURN_IF_ERROR(r.U64(&h.accepted));
      RETURN_IF_ERROR(r.U64(&h.rejected));
      int64_t rejects = 0;
      RETURN_IF_ERROR(r.I64(&rejects));
      h.consecutive_rejects = static_cast<int>(rejects);
      RETURN_IF_ERROR(r.I64(&h.last_accept));
    }
    for (double& g : last_gyro_) {
      RETURN_IF_ERROR(r.F64(&g));
    }
    RETURN_IF_ERROR(RestoreImuSample(r, prev_imu_));
    RETURN_IF_ERROR(r.Bool(&have_imu_));
    int64_t identical = 0;
    RETURN_IF_ERROR(r.I64(&identical));
    identical_imu_count_ = static_cast<int>(identical);
    return r.Bool(&dead_reckoning_);
  }

 private:
  SensorHealthState& state(EstimatorSensor sensor) {
    return health_[static_cast<int>(sensor)];
  }
  void Accept(EstimatorSensor sensor, SimTime at);
  // Records a gated-out reading; suspect after |kSuspectAfter| consecutive
  // rejects, excluded after |kExcludeAfter|.
  void Reject(EstimatorSensor sensor);

  GeoPoint home_;
  AttitudeEstimate attitude_;
  PositionEstimate position_;
  double baro_alt_m_ = 0;
  bool have_baro_ = false;
  SimTime last_fix_time_ = -1;

  std::array<SensorHealthState, kNumEstimatorSensors> health_;
  std::array<double, 3> last_gyro_ = {0, 0, 0};
  // Stuck-IMU detector: consecutive bit-identical samples. Real samples
  // carry fresh Gaussian noise, so exact repeats only happen when a fault
  // latches the sensor.
  ImuSample prev_imu_;
  bool have_imu_ = false;
  int identical_imu_count_ = 0;
  bool dead_reckoning_ = false;
};

}  // namespace androne

#endif  // SRC_FLIGHT_ESTIMATOR_H_
