// Attitude & position estimator: a complementary filter over IMU/mag for
// attitude and GPS/baro blending for position — the estimation layer whose
// divergence from truth the paper's DroneKit AED analyzer checks (§6.2).
//
// Hardened against lying sensors: every correction passes an innovation gate
// before it is blended, each sensor carries a health state machine
// (healthy → suspect → excluded on consecutive rejects, back to healthy on
// an accepted read), and when GPS goes quiet or gets excluded the position
// estimate dead-reckons on the last accepted velocity. The safety supervisor
// reads the health states to decide when the complex stack can no longer be
// trusted.
#ifndef SRC_FLIGHT_ESTIMATOR_H_
#define SRC_FLIGHT_ESTIMATOR_H_

#include <array>

#include "src/hw/sensors.h"
#include "src/util/geo.h"
#include "src/util/time.h"

namespace androne {

struct AttitudeEstimate {
  double roll_rad = 0;
  double pitch_rad = 0;
  double yaw_rad = 0;
};

struct PositionEstimate {
  GeoPoint position;
  NedPoint velocity_ms;
  bool valid = false;
};

enum class EstimatorSensor { kImu = 0, kBaro = 1, kMag = 2, kGps = 3 };
inline constexpr int kNumEstimatorSensors = 4;

const char* EstimatorSensorName(EstimatorSensor sensor);

enum class SensorHealth {
  kHealthy = 0,
  kSuspect = 1,   // Recent rejects; corrections withheld, watching.
  kExcluded = 2,  // Persistent rejects; sensor out of the blend.
};

const char* SensorHealthName(SensorHealth health);

struct SensorHealthState {
  SensorHealth health = SensorHealth::kHealthy;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  int consecutive_rejects = 0;
  SimTime last_accept = -1;
};

class Estimator {
 public:
  explicit Estimator(const GeoPoint& home) : home_(home) {
    position_.position = home;
  }

  // High-rate update from the IMU (gyro integration + accel leveling), plus
  // dead-reckoning of position when GPS corrections have gone stale.
  void UpdateImu(const ImuSample& sample, SimDuration dt);

  // Lower-rate corrections.
  void UpdateMag(double heading_rad);
  void UpdateBaro(double altitude_m);
  void UpdateGps(const GpsFix& fix);

  const AttitudeEstimate& attitude() const { return attitude_; }
  const PositionEstimate& position() const { return position_; }
  // Timestamp of the last *accepted* GPS fix (-1 before the first); lets the
  // controller detect GPS glitches and fall back to attitude-only hold. A
  // fix rejected by the innovation gate does not advance this, so gated-out
  // GPS surfaces as staleness to the controller — one degraded path, not
  // two.
  SimTime last_fix_time() const { return last_fix_time_; }

  const SensorHealthState& health(EstimatorSensor sensor) const {
    return health_[static_cast<int>(sensor)];
  }
  bool any_excluded() const;
  // True while position is propagated from velocity instead of GPS.
  bool dead_reckoning() const { return dead_reckoning_; }
  // Latest measured body rates (rad/s), even if the sample was rejected —
  // the safety supervisor monitors raw measurements, not blended state.
  const std::array<double, 3>& last_gyro() const { return last_gyro_; }

 private:
  SensorHealthState& state(EstimatorSensor sensor) {
    return health_[static_cast<int>(sensor)];
  }
  void Accept(EstimatorSensor sensor, SimTime at);
  // Records a gated-out reading; suspect after |kSuspectAfter| consecutive
  // rejects, excluded after |kExcludeAfter|.
  void Reject(EstimatorSensor sensor);

  GeoPoint home_;
  AttitudeEstimate attitude_;
  PositionEstimate position_;
  double baro_alt_m_ = 0;
  bool have_baro_ = false;
  SimTime last_fix_time_ = -1;

  std::array<SensorHealthState, kNumEstimatorSensors> health_;
  std::array<double, 3> last_gyro_ = {0, 0, 0};
  // Stuck-IMU detector: consecutive bit-identical samples. Real samples
  // carry fresh Gaussian noise, so exact repeats only happen when a fault
  // latches the sensor.
  ImuSample prev_imu_;
  bool have_imu_ = false;
  int identical_imu_count_ = 0;
  bool dead_reckoning_ = false;
};

}  // namespace androne

#endif  // SRC_FLIGHT_ESTIMATOR_H_
