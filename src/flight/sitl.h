// SITL convenience harness: a complete simulated drone (physics + sensors +
// flight controller) on one SimClock, with ground-station-style helpers for
// tests, examples, and the §6.6 multi-waypoint flight simulation.
#ifndef SRC_FLIGHT_SITL_H_
#define SRC_FLIGHT_SITL_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/flight/flight_controller.h"

namespace androne {

class SitlDrone {
 public:
  SitlDrone(SimClock* clock, const GeoPoint& home, uint64_t seed = 1);

  FlightController& controller() { return controller_; }
  QuadPhysics& physics() { return physics_; }
  MotorSet& motors() { return motors_; }
  Battery& battery() { return battery_; }
  SimClock& clock() { return *clock_; }
  // Sensor access for failure-injection tests (e.g. GPS outages).
  GpsReceiver& gps() { return gps_; }
  // Scripted sensor faults: append windows to the plan (mid-run is fine);
  // every controller sensor read goes through the injector.
  SensorFaultPlan& sensor_faults() { return sensor_fault_plan_; }
  const SensorFaultInjector& sensor_fault_injector() const {
    return sensor_fault_injector_;
  }

  // --- Ground-station helpers: inject MAVLink as a GCS would ---
  void SetModeCmd(CopterMode mode);
  void ArmCmd();
  void DisarmCmd(bool force = false);
  void TakeoffCmd(double altitude_m);
  void GotoCmd(const GeoPoint& target);
  void VelocityCmd(double vn, double ve, double vd);
  void LandCmd();
  void RtlCmd();

  // Advances simulated time until |predicate| holds or |timeout| elapses;
  // returns whether the predicate was met. Checks every 100 simulated ms.
  bool RunUntil(const std::function<bool()>& predicate, SimDuration timeout);

  // Distance from the drone's true position to |target|, meters.
  double DistanceTo(const GeoPoint& target) const;

  // All STATUSTEXT messages emitted by the controller.
  const std::vector<std::string>& status_texts() const {
    return status_texts_;
  }

 private:
  void InjectMessage(const MavMessage& message);

  SimClock* clock_;
  QuadPhysics physics_;
  MotorSet motors_;
  GpsReceiver gps_;
  Imu imu_;
  Barometer baro_;
  Magnetometer mag_;
  DirectSensorSource sensors_;
  SensorFaultPlan sensor_fault_plan_;
  SensorFaultInjector sensor_fault_injector_;
  FaultySensorSource faulty_sensors_;
  Battery battery_;
  FlightController controller_;
  std::vector<std::string> status_texts_;
};

}  // namespace androne

#endif  // SRC_FLIGHT_SITL_H_
