// Simplex safety supervisor: a minimal, independently-verifiable recovery
// controller beside the complex flight stack (PAPERS.md: container-based
// DoS-resilient UAV control). The envelope monitor watches attitude/rate/
// altitude/radius limits, estimator sensor health, and fast-loop deadline
// misses; when the envelope is violated persistently it takes the motors
// away from the complex controller and walks a fixed recovery ladder:
//
//   kNominal -> kLevelHold -> kDescend -> kCutoff
//
// kLevelHold (level attitude, hover thrust, hold yaw) gives the complex
// stack a grace window to come back inside the envelope — with hysteresis,
// so a single clean tick doesn't hand control straight back. If the
// violation persists, kDescend commits to a controlled descent (no
// un-escalation: a stack that failed level-and-hold doesn't get a second
// chance mid-fall), and kCutoff kills the motors on touchdown. Reasons are
// latched per episode so the tenant can be told *why* the drone was
// overridden long after the trigger cleared.
#ifndef SRC_FLIGHT_SAFETY_SUPERVISOR_H_
#define SRC_FLIGHT_SAFETY_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/flight/controllers.h"
#include "src/rt/deadline_monitor.h"
#include "src/util/sim_clock.h"

namespace androne {

enum class SafetyStage { kNominal = 0, kLevelHold, kDescend, kCutoff };

const char* SafetyStageName(SafetyStage stage);

// Envelope-violation reason bits (latched per episode, reported upstream).
inline constexpr uint32_t kSafetyReasonAttitude = 1u << 0;
inline constexpr uint32_t kSafetyReasonRate = 1u << 1;
inline constexpr uint32_t kSafetyReasonAltitude = 1u << 2;
inline constexpr uint32_t kSafetyReasonGeofence = 1u << 3;
inline constexpr uint32_t kSafetyReasonSensorFault = 1u << 4;
inline constexpr uint32_t kSafetyReasonDeadlineMisses = 1u << 5;

// "attitude+sensor" style summary for STATUSTEXT and the portal.
std::string SafetyReasonsToString(uint32_t reasons);

struct SafetyEnvelope {
  bool enabled = true;
  // Hard flight-envelope limits, deliberately far outside anything the
  // complex stack commands in nominal flight (its attitude targets cap at
  // 0.30 rad) so the supervisor never fights a healthy controller.
  double max_tilt_rad = 0.80;
  double max_rate_rads = 6.0;
  double max_altitude_m = 150.0;
  double max_radius_m = 0.0;  // Horizontal distance from home; 0 disables.
  // Deadline-miss storm detector: misses within the sliding window before
  // the real-time guarantee is considered lost. 40/s at 400 Hz is a 10%
  // miss rate — two orders of magnitude above the healthy PREEMPT ceiling.
  int deadline_miss_threshold = 40;
  SimDuration deadline_miss_window = Seconds(1);
  // Hysteresis: a violation must persist before the override engages, and
  // the envelope must stay clean before control is handed back.
  SimDuration trip_after = Millis(50);
  SimDuration clear_after = Seconds(2);
  // How long level-hold tolerates a persistent *hard* violation (attitude/
  // rate/altitude/geofence breach, deadline storm, degraded IMU) before
  // committing to a descent. Soft violations — a position sensor excluded
  // while attitude flight is intact — hold indefinitely.
  SimDuration level_hold_grace = Seconds(4);
  // Descent thrust as a fraction of hover (slightly under-hover sinks the
  // airframe at drag-limited speed).
  double descent_throttle_scale = 0.96;
  // Below this altitude in kDescend the motors are cut outright.
  double cutoff_altitude_m = 0.4;
};

// One tick's view of the vehicle, fed by the flight controller. Attitude is
// the estimate (what the complex stack believes); rates are raw gyro
// measurements (the supervisor watches measurements, not blended state).
struct SafetyInputs {
  double roll_rad = 0;
  double pitch_rad = 0;
  double yaw_rad = 0;
  double roll_rate_rads = 0;
  double pitch_rate_rads = 0;
  double yaw_rate_rads = 0;
  double altitude_m = 0;
  double horizontal_from_home_m = 0;
  bool sensors_degraded = false;  // Any estimator sensor excluded.
  // Attitude estimation itself is suspect (IMU stuck/excluded): the
  // recovery controller must not chase the attitude estimate.
  bool imu_degraded = false;
  bool airborne = false;
  bool armed = false;
};

struct SafetyVerdict {
  bool overriding = false;
  bool cut_motors = false;
  // With a lying IMU the attitude loop would track a frozen estimate and
  // slowly flip the airframe; damp body rates to zero instead (the minimal
  // controller that needs no attitude estimate at all).
  bool rate_only = false;
  AttitudeTarget target;  // Valid when overriding && !cut_motors.
};

// One override episode, from first engagement to release.
struct SafetyEpisode {
  SimTime entered = 0;
  SimTime released = -1;  // -1 while the override is active.
  uint32_t reasons = 0;   // Union over the episode.
  SafetyStage deepest = SafetyStage::kLevelHold;
};

class SafetySupervisor {
 public:
  // Fired on every stage transition with the stage entered and the
  // episode's latched reasons.
  using StageCallback = std::function<void(SafetyStage, uint32_t)>;

  SafetySupervisor(const SimClock* clock, const SafetyEnvelope& envelope,
                   double hover_throttle)
      : clock_(clock),
        envelope_(envelope),
        hover_throttle_(hover_throttle),
        deadline_monitor_(envelope.deadline_miss_window,
                          envelope.deadline_miss_threshold) {}

  void SetStageCallback(StageCallback callback) {
    stage_callback_ = std::move(callback);
  }

  // Attaches the flight trace category: every stage transition records an
  // instant event ("safety.stage", arg = the stage entered), and the inner
  // deadline monitor records its rt-category miss/storm events. Survives
  // Configure(). Pass nullptr to detach.
  void SetTrace(TraceRecorder* trace);

  // Replaces the envelope (tests tighten it mid-run). Resets the deadline
  // monitor; the stage machine keeps its state.
  void Configure(const SafetyEnvelope& envelope);

  // Feed every fast-loop tick's deadline outcome, including missed ones —
  // the supervisor is exactly the component that must keep observing while
  // the complex stack is stalled.
  void RecordDeadline(bool missed);

  // Advances the stage machine one control tick and returns who flies.
  SafetyVerdict Tick(const SafetyInputs& inputs, SimDuration dt);

  SafetyStage stage() const { return stage_; }
  bool overriding() const { return stage_ != SafetyStage::kNominal; }
  // Reason bits violated on the most recent tick.
  uint32_t active_reasons() const { return active_reasons_; }
  // Union of reasons across the current (or last) episode.
  uint32_t latched_reasons() const {
    return episodes_.empty() ? 0 : episodes_.back().reasons;
  }
  const std::vector<SafetyEpisode>& episodes() const { return episodes_; }
  const SafetyEnvelope& envelope() const { return envelope_; }
  const DeadlineMonitor& deadline_monitor() const { return deadline_monitor_; }

  // Checkpoint/restore: the stage machine, hysteresis timers, episode
  // history, and the inner deadline monitor. The trace attachment and
  // callbacks are rewired by the restoring world, not persisted.
  void SaveState(SnapshotWriter& w) const {
    w.Section("SAFE");
    w.U32(static_cast<uint32_t>(stage_));
    w.U32(active_reasons_);
    w.F64(hold_yaw_);
    w.I64(first_bad_);
    w.I64(first_good_);
    w.I64(first_hard_);
    w.I64(stage_entered_);
    w.U64(episodes_.size());
    for (const SafetyEpisode& e : episodes_) {
      w.I64(e.entered);
      w.I64(e.released);
      w.U32(e.reasons);
      w.U32(static_cast<uint32_t>(e.deepest));
    }
    deadline_monitor_.SaveState(w);
  }
  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("SAFE"));
    uint32_t stage = 0;
    RETURN_IF_ERROR(r.U32(&stage));
    stage_ = static_cast<SafetyStage>(stage);
    RETURN_IF_ERROR(r.U32(&active_reasons_));
    RETURN_IF_ERROR(r.F64(&hold_yaw_));
    RETURN_IF_ERROR(r.I64(&first_bad_));
    RETURN_IF_ERROR(r.I64(&first_good_));
    RETURN_IF_ERROR(r.I64(&first_hard_));
    RETURN_IF_ERROR(r.I64(&stage_entered_));
    uint64_t n = 0;
    RETURN_IF_ERROR(r.U64(&n));
    episodes_.clear();
    for (uint64_t i = 0; i < n; ++i) {
      SafetyEpisode e;
      RETURN_IF_ERROR(r.I64(&e.entered));
      RETURN_IF_ERROR(r.I64(&e.released));
      RETURN_IF_ERROR(r.U32(&e.reasons));
      uint32_t deepest = 0;
      RETURN_IF_ERROR(r.U32(&deepest));
      e.deepest = static_cast<SafetyStage>(deepest);
      episodes_.push_back(e);
    }
    return deadline_monitor_.RestoreState(r);
  }

 private:
  uint32_t EvaluateEnvelope(const SafetyInputs& inputs) const;
  void EnterStage(SafetyStage stage);

  const SimClock* clock_;
  SafetyEnvelope envelope_;
  double hover_throttle_;
  DeadlineMonitor deadline_monitor_;
  StageCallback stage_callback_;

  SafetyStage stage_ = SafetyStage::kNominal;
  uint32_t active_reasons_ = 0;
  double hold_yaw_ = 0;
  SimTime first_bad_ = -1;   // Violation onset while nominal.
  SimTime first_good_ = -1;  // Clean-envelope onset while overriding.
  SimTime first_hard_ = -1;  // Hard-violation onset while in level-hold.
  SimTime stage_entered_ = 0;
  std::vector<SafetyEpisode> episodes_;
  TraceRecorder* trace_ = nullptr;
  uint32_t stage_name_ = 0;
};

}  // namespace androne

#endif  // SRC_FLIGHT_SAFETY_SUPERVISOR_H_
