#include "src/flight/safety_supervisor.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"

namespace androne {

const char* SafetyStageName(SafetyStage stage) {
  switch (stage) {
    case SafetyStage::kNominal:
      return "nominal";
    case SafetyStage::kLevelHold:
      return "level-hold";
    case SafetyStage::kDescend:
      return "descend";
    case SafetyStage::kCutoff:
      return "cutoff";
  }
  return "unknown";
}

std::string SafetyReasonsToString(uint32_t reasons) {
  static constexpr struct {
    uint32_t bit;
    const char* name;
  } kNames[] = {
      {kSafetyReasonAttitude, "attitude"},
      {kSafetyReasonRate, "rate"},
      {kSafetyReasonAltitude, "altitude"},
      {kSafetyReasonGeofence, "geofence"},
      {kSafetyReasonSensorFault, "sensor"},
      {kSafetyReasonDeadlineMisses, "deadline"},
  };
  std::string out;
  for (const auto& entry : kNames) {
    if ((reasons & entry.bit) != 0) {
      if (!out.empty()) {
        out += '+';
      }
      out += entry.name;
    }
  }
  return out.empty() ? "none" : out;
}

void SafetySupervisor::Configure(const SafetyEnvelope& envelope) {
  envelope_ = envelope;
  deadline_monitor_ = DeadlineMonitor(envelope.deadline_miss_window,
                                      envelope.deadline_miss_threshold);
  // Configure rebuilds the monitor; re-propagate the trace attachment.
  deadline_monitor_.SetTrace(trace_);
}

void SafetySupervisor::SetTrace(TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) {
    stage_name_ = trace_->InternName("safety.stage");
  }
  deadline_monitor_.SetTrace(trace);
}

void SafetySupervisor::RecordDeadline(bool missed) {
  deadline_monitor_.Record(clock_->now(), missed);
}

uint32_t SafetySupervisor::EvaluateEnvelope(const SafetyInputs& in) const {
  // The envelope only binds in flight: on the ground the complex stack may
  // do whatever it likes, and a disarmed vehicle has nothing to override.
  if (!envelope_.enabled || !in.armed || !in.airborne) {
    return 0;
  }
  uint32_t reasons = 0;
  if (std::max(std::abs(in.roll_rad), std::abs(in.pitch_rad)) >
      envelope_.max_tilt_rad) {
    reasons |= kSafetyReasonAttitude;
  }
  if (std::max({std::abs(in.roll_rate_rads), std::abs(in.pitch_rate_rads),
                std::abs(in.yaw_rate_rads)}) > envelope_.max_rate_rads) {
    reasons |= kSafetyReasonRate;
  }
  if (in.altitude_m > envelope_.max_altitude_m) {
    reasons |= kSafetyReasonAltitude;
  }
  if (envelope_.max_radius_m > 0 &&
      in.horizontal_from_home_m > envelope_.max_radius_m) {
    reasons |= kSafetyReasonGeofence;
  }
  if (in.sensors_degraded) {
    reasons |= kSafetyReasonSensorFault;
  }
  if (deadline_monitor_.tripped()) {
    reasons |= kSafetyReasonDeadlineMisses;
  }
  return reasons;
}

void SafetySupervisor::EnterStage(SafetyStage stage) {
  stage_ = stage;
  stage_entered_ = clock_->now();
  if (trace_ != nullptr && trace_->enabled(kTraceFlight)) {
    trace_->Instant(kTraceFlight, stage_name_, -1,
                    static_cast<int64_t>(stage));
  }
  if (!episodes_.empty() && episodes_.back().released < 0 &&
      static_cast<int>(stage) >
          static_cast<int>(episodes_.back().deepest)) {
    episodes_.back().deepest = stage;
  }
  if (stage_callback_) {
    stage_callback_(stage, latched_reasons());
  }
}

SafetyVerdict SafetySupervisor::Tick(const SafetyInputs& in, SimDuration dt) {
  (void)dt;
  SimTime now = clock_->now();
  active_reasons_ = EvaluateEnvelope(in);
  if (!episodes_.empty() && episodes_.back().released < 0) {
    episodes_.back().reasons |= active_reasons_;
  }

  switch (stage_) {
    case SafetyStage::kNominal:
      if (active_reasons_ != 0) {
        if (first_bad_ < 0) {
          first_bad_ = now;
        }
        if (now - first_bad_ >= envelope_.trip_after) {
          hold_yaw_ = in.yaw_rad;
          first_good_ = -1;
          SafetyEpisode episode;
          episode.entered = now;
          episode.reasons = active_reasons_;
          episodes_.push_back(episode);
          EnterStage(SafetyStage::kLevelHold);
        }
      } else {
        first_bad_ = -1;
      }
      break;

    case SafetyStage::kLevelHold: {
      if (active_reasons_ == 0) {
        first_hard_ = -1;
        if (first_good_ < 0) {
          first_good_ = now;
        }
        if (now - first_good_ >= envelope_.clear_after) {
          episodes_.back().released = now;
          first_bad_ = -1;
          first_good_ = -1;
          EnterStage(SafetyStage::kNominal);
        }
      } else {
        first_good_ = -1;
        // Only *hard* violations escalate to a descent: an actual envelope
        // breach, a lost real-time guarantee, or an attitude source that
        // cannot be trusted. A degraded position sensor alone (GPS glitch)
        // is flown out in level-hold indefinitely — descending a drone
        // that is flying fine on its remaining sensors is strictly worse.
        bool hard = (active_reasons_ & ~kSafetyReasonSensorFault) != 0 ||
                    in.imu_degraded;
        if (!hard) {
          first_hard_ = -1;
        } else {
          if (first_hard_ < 0) {
            first_hard_ = now;
          }
          if (now - first_hard_ >= envelope_.level_hold_grace) {
            EnterStage(SafetyStage::kDescend);
          }
        }
      }
      break;
    }

    case SafetyStage::kDescend:
      // Committed: no un-escalation mid-descent.
      if (!in.airborne || in.altitude_m <= envelope_.cutoff_altitude_m) {
        EnterStage(SafetyStage::kCutoff);
      }
      break;

    case SafetyStage::kCutoff:
      if (!in.armed && !in.airborne) {
        episodes_.back().released = now;
        first_bad_ = -1;
        first_good_ = -1;
        EnterStage(SafetyStage::kNominal);
      }
      break;
  }

  SafetyVerdict verdict;
  if (stage_ == SafetyStage::kNominal) {
    return verdict;
  }
  verdict.overriding = true;
  if (stage_ == SafetyStage::kCutoff) {
    verdict.cut_motors = true;
    return verdict;
  }
  // The recovery controller: wings-level, hold yaw, hover (or slightly
  // under-hover for the descent). Deliberately no position loops — they
  // depend on the estimator state the override may not trust. With the IMU
  // itself degraded even the attitude estimate is a lie (a stuck sensor
  // freezes it mid-maneuver); fall back to damping raw body rates to zero,
  // which needs no estimate at all.
  verdict.rate_only = in.imu_degraded;
  verdict.target.roll_rad = 0;
  verdict.target.pitch_rad = 0;
  verdict.target.yaw_rad = hold_yaw_;
  verdict.target.thrust = stage_ == SafetyStage::kDescend
                              ? hover_throttle_ * envelope_.descent_throttle_scale
                              : hover_throttle_;
  return verdict;
}

}  // namespace androne
