// ArduPilot-Copter-analog flight controller (paper §4.3, §6). Runs a 400 Hz
// fast loop on the simulated clock: read sensors (through the SensorSource
// seam), update the estimator, run the mode-specific control cascade, and
// write motor outputs; the same tick advances the physics, closing the SITL
// loop. Speaks MAVLink for all external control.
//
// AnDrone-specific: an optional WakeLatencySampler injects the simulated
// kernel's wake latency into every fast-loop tick — a latency above the
// 2500 us budget misses that control cycle (paper §6.2) — and the geofence
// recovery sequence follows the paper's augmented behaviour: notify, guide
// the drone back inside, then hold in LOITER (instead of ArduPilot's
// default failsafe landing) so the multi-tenant flight can continue.
#ifndef SRC_FLIGHT_FLIGHT_CONTROLLER_H_
#define SRC_FLIGHT_FLIGHT_CONTROLLER_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/flight/controllers.h"
#include "src/flight/estimator.h"
#include "src/flight/flight_log.h"
#include "src/flight/quad_physics.h"
#include "src/flight/safety_supervisor.h"
#include "src/flight/sensor_source.h"
#include "src/hw/power.h"
#include "src/mavlink/messages.h"
#include "src/mavlink/reliable.h"
#include "src/rt/kernel_model.h"
#include "src/snapshot/snapshot.h"
#include "src/util/sim_clock.h"

namespace androne {

struct GeofenceConfig {
  bool enabled = false;
  GeoPoint center;
  double radius_m = 100.0;
  double max_altitude_m = 60.0;
};

struct FlightControllerConfig {
  GeoPoint home;
  uint8_t sysid = 1;
  double fast_loop_hz = 400.0;
  double heartbeat_hz = 1.0;
  double attitude_telemetry_hz = 10.0;
  double position_telemetry_hz = 5.0;
  double log_hz = 25.0;
  // Battery failsafe: below this remaining fraction the controller forces
  // RTL so the flight always ends at base (0 disables).
  double battery_failsafe_fraction = 0.15;
  // Simplex safety supervisor envelope (enabled by default; limits sit far
  // outside nominal flight, see SafetyEnvelope).
  SafetyEnvelope safety;
};

// One fast-loop tick's worth of continuous-flight-plane state (DESIGN.md
// §15): everything the discrete control/safety/telemetry layer consumes
// from the sensor→estimator→physics pipeline. Recording this per tick and
// re-installing it at replay lets the controller skip sensor synthesis,
// estimator filtering, the attitude cascade, and the physics integration —
// the expensive continuous math — while the discrete layer (mode logic,
// failsafes, fence, safety supervisor, MAVLink, flight log) re-executes
// live and lands on bit-identical digests.
struct FlightPlaneSample {
  // Injected kernel wake latency for this tick; < 0 means the recording
  // run had no latency source attached.
  double wake_latency_us = -1;
  // Estimator outputs, as visible after this tick's sensor reads.
  AttitudeEstimate est_attitude;
  PositionEstimate est_position;
  SimTime est_last_fix_time = -1;
  std::array<uint8_t, kNumEstimatorSensors> est_health{};
  std::array<double, 3> est_gyro{};
  bool est_dead_reckoning = false;
  // Physics ground truth after this tick's integration step.
  DroneGroundTruth truth;
};

class FlightController {
 public:
  using Sender = std::function<void(const MavlinkFrame&)>;
  using FenceCallback = std::function<void()>;
  // Record/replay seams (DESIGN.md §15). The recorder is called once at
  // the end of every fast-loop tick; it stays active during replay so
  // record-during-replay reproduces the log byte-for-byte (the fixed-point
  // property the replay tests pin). The source supplies the next recorded
  // sample at the start of each tick; returning nullptr (log exhausted)
  // counts an underrun and falls back to the live pipeline for that tick.
  using PlaneRecorder = std::function<void(const FlightPlaneSample&)>;
  using PlaneSource = std::function<const FlightPlaneSample*()>;

  FlightController(SimClock* clock, QuadPhysics* physics, MotorSet* motors,
                   SensorSource* sensors, Battery* battery,
                   FlightControllerConfig config);

  // Schedules the fast loop and telemetry; idempotent.
  void Start();
  void Stop();

  // Feeds one inbound MAVLink frame (from MAVProxy).
  void HandleFrame(const MavlinkFrame& frame);
  // Outbound telemetry/acks sink.
  void SetSender(Sender sender) { sender_ = std::move(sender); }

  // Kernel wake-latency injection (Fig. 11 coupling); may be nullptr.
  void SetLatencySampler(WakeLatencySampler* sampler);
  // Arbitrary per-tick wake-latency source in microseconds (tests script
  // deadline-miss storms with this); overrides any sampler.
  void SetLatencySource(std::function<double()> source) {
    latency_source_ = std::move(source);
  }

  void SetPlaneRecorder(PlaneRecorder recorder) {
    plane_recorder_ = std::move(recorder);
  }
  void SetPlaneSource(PlaneSource source) {
    plane_source_ = std::move(source);
  }

  // Battery *gauge* seam: what the controller believes about the battery
  // (the sensor-fault layer sags it); truth keeps draining independently.
  void SetBatteryGauge(std::function<double()> gauge) {
    battery_gauge_ = std::move(gauge);
  }

  // Fired when the safety supervisor takes / returns control (wired to
  // mavproxy so virtual drone commands are suspended during an override).
  void SetSafetyCallbacks(std::function<void()> on_override,
                          std::function<void()> on_release) {
    on_safety_override_ = std::move(on_override);
    on_safety_release_ = std::move(on_release);
  }

  void SetGeofence(const GeofenceConfig& fence);
  void SetFenceCallbacks(FenceCallback on_breach, FenceCallback on_recovered);

  // An AUTO-mode mission (list of waypoints at relative altitudes).
  void SetMission(std::vector<GeoPoint> waypoints);

  // MAV_CMD_DO_DIGICAM_CONTROL handler: real autopilots forward the shutter
  // trigger to the camera component; AnDrone wires this to the device
  // container's CameraService.
  void SetCameraTrigger(std::function<Status()> trigger) {
    camera_trigger_ = std::move(trigger);
  }

  // MAV_CMD_DO_MOUNT_CONTROL handler: (pitch, roll, yaw) in degrees.
  void SetMountControl(
      std::function<Status(double, double, double)> mount_control) {
    mount_control_ = std::move(mount_control);
  }

  // --- Introspection ---
  CopterMode mode() const { return mode_; }
  bool armed() const { return armed_; }
  bool airborne() const { return physics_->truth().airborne; }
  GeoPoint position_estimate() const {
    return estimator_.position().position;
  }
  const Estimator& estimator() const { return estimator_; }
  const FlightLog& flight_log() const { return log_; }
  const GeofenceConfig& geofence() const { return fence_; }
  bool fence_recovering() const { return fence_recovering_; }
  uint64_t fast_loop_count() const { return fast_loops_; }
  uint64_t missed_deadlines() const { return missed_deadlines_; }
  // Ticks driven from a recorded plane sample / ticks where the source ran
  // dry and the live pipeline filled in.
  uint64_t replay_ticks() const { return replay_ticks_; }
  uint64_t replay_underruns() const { return replay_underruns_; }
  // COMMAND_LONG retransmissions recognized and suppressed (the cached ack
  // is re-sent instead of re-executing the command).
  uint64_t duplicate_commands() const {
    return deduper_.duplicates_suppressed();
  }
  bool battery_failsafe_triggered() const {
    return battery_failsafe_triggered_;
  }
  // True while position control is suspended for a GPS glitch.
  bool gps_glitch() const { return gps_glitch_; }
  const SafetySupervisor& safety() const { return safety_; }
  SafetySupervisor& safety() { return safety_; }
  double parameter(const std::string& name, double fallback) const;

  // --- Checkpoint/restore (DESIGN.md §13) ---
  // Serializes every field that influences future control decisions plus
  // the four periodic loops' armed deadlines (keys fc.fast / fc.heartbeat /
  // fc.attitude / fc.position). Callbacks (sender, fence, safety, camera)
  // are re-wired by the restoring world, not persisted.
  void SaveState(SnapshotWriter& w, TimerRegistry& timers) const;
  Status RestoreState(SnapshotReader& r);
  // Registers the loop re-arm handlers on |rearmer|; the restoring world
  // calls this after RestoreState and before TimerRearmer::Replay.
  void RegisterTimers(TimerRearmer& rearmer);

 private:
  void FastLoop();
  void RunControl(SimDuration dt, bool replaying);
  void CheckFence();
  AttitudeTarget ComputeModeTarget(SimDuration dt);
  void Send(const MavMessage& message);
  void SendAck(MavCmd command, MavResult result);
  void SendStatusText(MavSeverity severity, const std::string& text);
  void HandleCommandLong(const CommandLong& cmd);
  void HandleSetMode(const SetMode& sm);
  void HandleSetPositionTarget(const SetPositionTargetGlobalInt& sp);
  void HandleRcOverride(const RcChannelsOverride& rc);
  void HandleParamSet(const ParamSet& ps);
  MavResult SwitchMode(CopterMode mode);
  SafetyVerdict SafetyTick(SimDuration dt);
  std::array<double, kNumMotors> OverrideOutput(const SafetyVerdict& verdict,
                                                SimDuration dt);
  void OnSafetyStage(SafetyStage stage, uint32_t reasons);
  double SensedBatteryFraction() const;
  NedPoint EstimatedNed() const;
  void StartTelemetry();
  void HeartbeatTick();
  void AttitudeTick();
  void PositionTick();

  SimClock* clock_;
  QuadPhysics* physics_;
  MotorSet* motors_;
  SensorSource* sensors_;
  Battery* battery_;
  FlightControllerConfig config_;
  std::function<double()> latency_source_;
  std::function<double()> battery_gauge_;
  PlaneRecorder plane_recorder_;
  PlaneSource plane_source_;
  uint64_t replay_ticks_ = 0;
  uint64_t replay_underruns_ = 0;

  Estimator estimator_;
  CommandDeduper deduper_;
  AttitudeController attitude_ctrl_;
  PositionController position_ctrl_;
  SafetySupervisor safety_;
  FlightLog log_;
  Sender sender_;
  std::function<void()> on_safety_override_;
  std::function<void()> on_safety_release_;

  bool running_ = false;
  bool armed_ = false;
  CopterMode mode_ = CopterMode::kStabilize;

  // Guided-mode targets (NED around home).
  std::optional<NedPoint> guided_target_;
  std::optional<NedPoint> guided_velocity_;
  double target_yaw_ = 0;
  // Loiter/land hold point.
  NedPoint hold_target_{};
  // AUTO mission.
  std::vector<GeoPoint> mission_;
  size_t mission_index_ = 0;
  // RTL phase: 0 climb/return, 1 land.
  int rtl_phase_ = 0;

  // RC override (0 = released).
  RcChannelsOverride rc_{};
  bool rc_active_ = false;

  GeofenceConfig fence_;
  bool fence_recovering_ = false;
  NedPoint fence_recovery_target_{};
  FenceCallback on_fence_breach_;
  FenceCallback on_fence_recovered_;

  std::map<std::string, double> params_;
  bool battery_failsafe_triggered_ = false;
  bool gps_glitch_ = false;
  std::function<Status()> camera_trigger_;
  std::function<Status(double, double, double)> mount_control_;
  std::array<double, kNumMotors> last_output_{0, 0, 0, 0};
  uint64_t fast_loops_ = 0;
  uint64_t missed_deadlines_ = 0;
  uint8_t tx_seq_ = 0;
  // Armed loop timers, retained so checkpoints can persist their deadlines
  // (0 = not scheduled).
  EventId fast_loop_event_ = 0;
  EventId heartbeat_event_ = 0;
  EventId attitude_event_ = 0;
  EventId position_event_ = 0;
  // Sensor read scheduling (GPS 5 Hz, baro 25 Hz, mag 25 Hz).
  SimTime last_gps_read_ = -Seconds(1);
  SimTime last_slow_read_ = -Seconds(1);
  SimTime last_fence_check_ = 0;
};

}  // namespace androne

#endif  // SRC_FLIGHT_FLIGHT_CONTROLLER_H_
