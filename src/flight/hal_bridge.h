// Binder HAL bridge (paper §4.3): the flight container runs native Linux,
// not Android, yet must read GPS and sensors owned by the device container.
// This bridge implements the SensorSource seam over Binder transactions to
// the shared device services — including the native LocationManagerService
// interface the paper had to add because the NDK exposes sensors but not
// GPS. The flight container installs a minimal context manager so the
// device container's PUBLISH_TO_ALL_NS reaches it, and the device services
// treat it as a trusted container (no per-app ActivityManager exists there).
#ifndef SRC_FLIGHT_HAL_BRIDGE_H_
#define SRC_FLIGHT_HAL_BRIDGE_H_

#include <memory>

#include "src/binder/service_manager.h"
#include "src/flight/sensor_source.h"
#include "src/services/device_services.h"

namespace androne {

class BinderHalBridge : public SensorSource {
 public:
  // |hal_proc| is a process inside the flight container whose namespace
  // already has the shared device services published into it.
  static StatusOr<std::unique_ptr<BinderHalBridge>> Create(
      BinderProc* hal_proc);

  StatusOr<ImuSample> ReadImu() override;
  StatusOr<double> ReadBaroAltitude() override;
  StatusOr<double> ReadMagHeading() override;
  StatusOr<GpsFix> ReadGps() override;

 private:
  BinderHalBridge(BinderProc* proc, BinderHandle sensors, BinderHandle location)
      : proc_(proc), sensors_(sensors), location_(location) {}

  BinderProc* proc_;
  BinderHandle sensors_;
  BinderHandle location_;
};

}  // namespace androne

#endif  // SRC_FLIGHT_HAL_BRIDGE_H_
