#include "src/flight/controllers.h"

#include <algorithm>
#include <cmath>

namespace androne {

namespace {

double Clamp(double v, double limit) { return std::clamp(v, -limit, limit); }

double WrapAngle(double a) {
  while (a > M_PI) {
    a -= 2 * M_PI;
  }
  while (a < -M_PI) {
    a += 2 * M_PI;
  }
  return a;
}

// Attitude angle error -> rate setpoint gain.
constexpr double kAngleP = 5.0;
constexpr double kMaxRate = 3.5;  // rad/s.

// Position error -> velocity setpoint gain.
constexpr double kPosP = 0.9;
constexpr double kAltP = 1.2;

}  // namespace

double PidLoop::Update(double error, SimDuration dt) {
  double dts = ToSecondsF(dt);
  integrator_ = Clamp(integrator_ + error * dts, integrator_limit_);
  double derivative = 0;
  if (has_last_ && dts > 0) {
    derivative = (error - last_error_) / dts;
  }
  last_error_ = error;
  has_last_ = true;
  return kp_ * error + ki_ * integrator_ + kd_ * derivative;
}

void PidLoop::Reset() {
  integrator_ = 0;
  last_error_ = 0;
  has_last_ = false;
}

AttitudeController::AttitudeController()
    : roll_rate_pid_(0.10, 0.05, 0.0015, 0.5),
      pitch_rate_pid_(0.10, 0.05, 0.0015, 0.5),
      yaw_rate_pid_(0.20, 0.02, 0.0, 0.5) {}

std::array<double, kNumMotors> AttitudeController::Update(
    const AttitudeTarget& target, double roll, double pitch, double yaw,
    double p, double q, double r, SimDuration dt) {
  // Angle error -> rate setpoints.
  double p_sp = Clamp(kAngleP * WrapAngle(target.roll_rad - roll), kMaxRate);
  double q_sp = Clamp(kAngleP * WrapAngle(target.pitch_rad - pitch), kMaxRate);
  double r_sp = Clamp(kAngleP * WrapAngle(target.yaw_rad - yaw), kMaxRate);

  // Rate errors -> mixer inputs.
  double roll_mix = Clamp(roll_rate_pid_.Update(p_sp - p, dt), 0.4);
  double pitch_mix = Clamp(pitch_rate_pid_.Update(q_sp - q, dt), 0.4);
  double yaw_mix = Clamp(yaw_rate_pid_.Update(r_sp - r, dt), 0.2);

  double base = std::clamp(target.thrust, 0.0, 1.0);
  // Quad-X mixer (0 front-right CCW, 1 back-left CCW, 2 front-left CW,
  // 3 back-right CW); positive roll_mix rolls right (left motors up).
  std::array<double, kNumMotors> out{
      base - roll_mix - pitch_mix + yaw_mix,  // 0 front-right.
      base + roll_mix + pitch_mix + yaw_mix,  // 1 back-left.
      base + roll_mix - pitch_mix - yaw_mix,  // 2 front-left.
      base - roll_mix + pitch_mix - yaw_mix,  // 3 back-right.
  };
  for (double& t : out) {
    t = std::clamp(t, 0.0, 1.0);
  }
  return out;
}

void AttitudeController::Reset() {
  roll_rate_pid_.Reset();
  pitch_rate_pid_.Reset();
  yaw_rate_pid_.Reset();
}

PositionController::PositionController(
    double hover_throttle, const PositionControllerLimits& limits)
    : hover_throttle_(hover_throttle), limits_(limits),
      vel_n_pid_(0.16, 0.02, 0.01, 1.0),
      vel_e_pid_(0.16, 0.02, 0.01, 1.0),
      vel_d_pid_(0.22, 0.10, 0.0, 0.8) {}

AttitudeTarget PositionController::Update(double n, double e, double d,
                                          double vn, double ve, double vd,
                                          double tn, double te, double td,
                                          double yaw, double target_yaw,
                                          SimDuration dt) {
  // Position error -> velocity setpoint (speed-limited).
  double vn_sp = kPosP * (tn - n);
  double ve_sp = kPosP * (te - e);
  double speed = std::hypot(vn_sp, ve_sp);
  if (speed > limits_.max_speed_ms) {
    vn_sp *= limits_.max_speed_ms / speed;
    ve_sp *= limits_.max_speed_ms / speed;
  }
  double vd_sp =
      std::clamp(kAltP * (td - d), -limits_.max_climb_ms,
                 limits_.max_descent_ms);  // Down positive: climb negative.
  return UpdateVelocity(vn, ve, vd, vn_sp, ve_sp, vd_sp, yaw, target_yaw, dt);
}

AttitudeTarget PositionController::UpdateVelocity(
    double vn, double ve, double vd, double target_vn, double target_ve,
    double target_vd, double yaw, double target_yaw, SimDuration dt) {
  // Clamp requested velocities to the configured envelope.
  double speed = std::hypot(target_vn, target_ve);
  if (speed > limits_.max_speed_ms) {
    target_vn *= limits_.max_speed_ms / speed;
    target_ve *= limits_.max_speed_ms / speed;
  }
  target_vd = std::clamp(target_vd, -limits_.max_climb_ms,
                         limits_.max_descent_ms);

  // Velocity error -> NED acceleration demand -> tilt.
  double an = vel_n_pid_.Update(target_vn - vn, dt);
  double ae = vel_e_pid_.Update(target_ve - ve, dt);
  double ad = vel_d_pid_.Update(target_vd - vd, dt);

  // Rotate the horizontal demand into the body frame. The physics tilts
  // thrust opposite pitch: pitch down (negative) moves forward (north at
  // yaw 0), roll right (positive) moves east.
  double cy = std::cos(yaw), sy = std::sin(yaw);
  double a_fwd = an * cy + ae * sy;
  double a_rgt = -an * sy + ae * cy;

  AttitudeTarget target;
  target.pitch_rad = Clamp(-a_fwd, limits_.max_tilt_rad);
  target.roll_rad = Clamp(a_rgt, limits_.max_tilt_rad);
  target.yaw_rad = target_yaw;
  // Collective: hover feed-forward minus down-acceleration demand (positive
  // ad means accelerate downward -> reduce thrust).
  target.thrust = std::clamp(hover_throttle_ - ad, 0.05, 0.95);
  return target;
}

void PositionController::Reset() {
  vel_n_pid_.Reset();
  vel_e_pid_.Reset();
  vel_d_pid_.Reset();
}

}  // namespace androne
