// Quadcopter rigid-body dynamics: the SITL-equivalent physics backing the
// whole reproduction (the paper flies a DJI F450 frame with four MN2213
// motors and 9.5" props; §6.6 replaces the airframe with ArduPilot's SITL
// simulator, which this model stands in for). NED axes, ZYX Euler angles,
// explicit Euler integration at the 400 Hz control rate.
#ifndef SRC_FLIGHT_QUAD_PHYSICS_H_
#define SRC_FLIGHT_QUAD_PHYSICS_H_

#include <array>

#include "src/hw/ground_truth.h"
#include "src/hw/motors.h"
#include "src/hw/sensor_io.h"
#include "src/snapshot/snapshot.h"
#include "src/util/geo.h"
#include "src/util/time.h"

namespace androne {

struct QuadParams {
  double mass_kg = 1.6;            // Frame + SBC + battery.
  double max_thrust_per_motor_n = 8.0;
  double arm_moment_m = 0.159;     // l/sqrt(2) for the 450 mm frame.
  double yaw_torque_coeff = 0.016; // N*m of reaction torque per N of thrust.
  double inertia_xx = 0.012;       // kg*m^2.
  double inertia_yy = 0.012;
  double inertia_zz = 0.022;
  double linear_drag = 0.35;       // N per (m/s).
  double angular_drag = 0.04;      // N*m per (rad/s).
  // Electrical rotor power: P = idle + k * thrust^1.5 per motor
  // (momentum theory), calibrated so hover draws ~170 W, matching the
  // >100 W class consumer quad the paper references.
  double motor_idle_power_w = 2.0;
  double rotor_power_coeff = 5.2;
};

class QuadPhysics {
 public:
  QuadPhysics(const GeoPoint& home, const QuadParams& params = QuadParams());

  // Advances the simulation by |dt| using the current motor throttles.
  void Step(SimDuration dt, const MotorSet& motors);

  // Ground-truth view consumed by the sensor device models.
  const DroneGroundTruth& truth() const { return truth_; }
  DroneGroundTruth* mutable_truth() { return &truth_; }

  const GeoPoint& home() const { return home_; }
  // Position in the local NED frame around home.
  NedPoint ned_position() const { return ned_; }
  double total_rotor_power_w() const { return truth_.rotor_power_w; }

  // Hover throttle for this airframe (used by controllers as feed-forward).
  double hover_throttle() const;

  // Checkpoint/restore: the full rigid-body state plus the derived ground
  // truth (params/home are config).
  void SaveState(SnapshotWriter& w) const {
    w.Section("PHYS");
    SaveNedPoint(w, ned_);
    SaveNedPoint(w, vel_);
    w.F64(roll_);
    w.F64(pitch_);
    w.F64(yaw_);
    w.F64(p_);
    w.F64(q_);
    w.F64(r_);
    SaveGeoPoint(w, truth_.position);
    SaveNedPoint(w, truth_.velocity_ms);
    w.F64(truth_.roll_rad);
    w.F64(truth_.pitch_rad);
    w.F64(truth_.yaw_rad);
    w.F64(truth_.roll_rate_rads);
    w.F64(truth_.pitch_rate_rads);
    w.F64(truth_.yaw_rate_rads);
    w.F64(truth_.accel_up_mss);
    w.F64(truth_.rotor_power_w);
    w.Bool(truth_.airborne);
  }
  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("PHYS"));
    RETURN_IF_ERROR(RestoreNedPoint(r, ned_));
    RETURN_IF_ERROR(RestoreNedPoint(r, vel_));
    RETURN_IF_ERROR(r.F64(&roll_));
    RETURN_IF_ERROR(r.F64(&pitch_));
    RETURN_IF_ERROR(r.F64(&yaw_));
    RETURN_IF_ERROR(r.F64(&p_));
    RETURN_IF_ERROR(r.F64(&q_));
    RETURN_IF_ERROR(r.F64(&r_));
    RETURN_IF_ERROR(RestoreGeoPoint(r, truth_.position));
    RETURN_IF_ERROR(RestoreNedPoint(r, truth_.velocity_ms));
    RETURN_IF_ERROR(r.F64(&truth_.roll_rad));
    RETURN_IF_ERROR(r.F64(&truth_.pitch_rad));
    RETURN_IF_ERROR(r.F64(&truth_.yaw_rad));
    RETURN_IF_ERROR(r.F64(&truth_.roll_rate_rads));
    RETURN_IF_ERROR(r.F64(&truth_.pitch_rate_rads));
    RETURN_IF_ERROR(r.F64(&truth_.yaw_rate_rads));
    RETURN_IF_ERROR(r.F64(&truth_.accel_up_mss));
    RETURN_IF_ERROR(r.F64(&truth_.rotor_power_w));
    return r.Bool(&truth_.airborne);
  }

 private:
  void UpdateGroundTruth();

  QuadParams params_;
  GeoPoint home_;
  NedPoint ned_;                      // Position, m (down negative = up).
  NedPoint vel_;                      // Velocity, m/s.
  double roll_ = 0, pitch_ = 0, yaw_ = 0;
  double p_ = 0, q_ = 0, r_ = 0;      // Body rates, rad/s.
  DroneGroundTruth truth_;
};

}  // namespace androne

#endif  // SRC_FLIGHT_QUAD_PHYSICS_H_
