// Sensor access seam for the flight controller. On AnDrone the flight
// container has no direct device access — it reads sensors through a
// Binder HAL bridge into the device container (paper §4.3). For unit tests
// and standalone SITL runs a direct in-process source is provided.
#ifndef SRC_FLIGHT_SENSOR_SOURCE_H_
#define SRC_FLIGHT_SENSOR_SOURCE_H_

#include "src/hw/sensors.h"
#include "src/util/status.h"

namespace androne {

class SensorSource {
 public:
  virtual ~SensorSource() = default;
  virtual StatusOr<ImuSample> ReadImu() = 0;
  virtual StatusOr<double> ReadBaroAltitude() = 0;
  virtual StatusOr<double> ReadMagHeading() = 0;
  virtual StatusOr<GpsFix> ReadGps() = 0;
};

// Reads hardware models directly (standalone SITL / tests).
class DirectSensorSource : public SensorSource {
 public:
  DirectSensorSource(GpsReceiver* gps, Imu* imu, Barometer* baro,
                     Magnetometer* mag, ContainerId opener)
      : gps_(gps), imu_(imu), baro_(baro), mag_(mag), opener_(opener) {}

  StatusOr<ImuSample> ReadImu() override { return imu_->ReadSample(opener_); }
  StatusOr<double> ReadBaroAltitude() override {
    return baro_->ReadAltitudeM(opener_);
  }
  StatusOr<double> ReadMagHeading() override {
    return mag_->ReadHeadingRad(opener_);
  }
  StatusOr<GpsFix> ReadGps() override { return gps_->ReadFix(opener_); }

 private:
  GpsReceiver* gps_;
  Imu* imu_;
  Barometer* baro_;
  Magnetometer* mag_;
  ContainerId opener_;
};

}  // namespace androne

#endif  // SRC_FLIGHT_SENSOR_SOURCE_H_
