// Sensor access seam for the flight controller. On AnDrone the flight
// container has no direct device access — it reads sensors through a
// Binder HAL bridge into the device container (paper §4.3). For unit tests
// and standalone SITL runs a direct in-process source is provided.
#ifndef SRC_FLIGHT_SENSOR_SOURCE_H_
#define SRC_FLIGHT_SENSOR_SOURCE_H_

#include "src/hw/sensor_bus.h"
#include "src/hw/sensor_faults.h"
#include "src/hw/sensors.h"
#include "src/util/status.h"

namespace androne {

class SensorSource {
 public:
  virtual ~SensorSource() = default;
  virtual StatusOr<ImuSample> ReadImu() = 0;
  virtual StatusOr<double> ReadBaroAltitude() = 0;
  virtual StatusOr<double> ReadMagHeading() = 0;
  virtual StatusOr<GpsFix> ReadGps() = 0;
};

// Reads hardware models directly (standalone SITL / tests).
class DirectSensorSource : public SensorSource {
 public:
  DirectSensorSource(GpsReceiver* gps, Imu* imu, Barometer* baro,
                     Magnetometer* mag, ContainerId opener)
      : gps_(gps), imu_(imu), baro_(baro), mag_(mag), opener_(opener) {}

  StatusOr<ImuSample> ReadImu() override { return imu_->ReadSample(opener_); }
  StatusOr<double> ReadBaroAltitude() override {
    return baro_->ReadAltitudeM(opener_);
  }
  StatusOr<double> ReadMagHeading() override {
    return mag_->ReadHeadingRad(opener_);
  }
  StatusOr<GpsFix> ReadGps() override { return gps_->ReadFix(opener_); }

 private:
  GpsReceiver* gps_;
  Imu* imu_;
  Barometer* baro_;
  Magnetometer* mag_;
  ContainerId opener_;
};

// Reads the device container's SensorHub snapshot — the data-path fast
// path: the hub samples each sensor once at its native cadence and the
// flight stack reads the published snapshot by reference, with no binder
// transaction or parcel decode per read. Composes under FaultySensorSource
// like any other source, so fault injection is unchanged.
class BusSensorSource : public SensorSource {
 public:
  explicit BusSensorSource(SensorHub* hub) : hub_(hub) {}

  StatusOr<ImuSample> ReadImu() override { return hub_->Sample().imu; }
  StatusOr<double> ReadBaroAltitude() override {
    return hub_->Sample().baro_altitude_m;
  }
  StatusOr<double> ReadMagHeading() override {
    return hub_->Sample().mag_heading_rad;
  }
  StatusOr<GpsFix> ReadGps() override { return hub_->Sample().gps; }

 private:
  SensorHub* hub_;
};

// Decorates any SensorSource with a scripted SensorFaultInjector. Dropout
// windows surface as UNAVAILABLE — the same shape as a real HAL read
// failing — so the flight stack exercises its degraded paths, not a
// special-cased fault API.
class FaultySensorSource : public SensorSource {
 public:
  FaultySensorSource(SensorSource* base, SensorFaultInjector* injector)
      : base_(base), injector_(injector) {}

  StatusOr<ImuSample> ReadImu() override {
    StatusOr<ImuSample> sample = base_->ReadImu();
    if (sample.ok() && !injector_->ApplyImu(&*sample)) {
      return UnavailableError("imu dropout");
    }
    return sample;
  }

  StatusOr<double> ReadBaroAltitude() override {
    StatusOr<double> altitude = base_->ReadBaroAltitude();
    if (altitude.ok() && !injector_->ApplyBaro(&*altitude)) {
      return UnavailableError("baro dropout");
    }
    return altitude;
  }

  StatusOr<double> ReadMagHeading() override {
    StatusOr<double> heading = base_->ReadMagHeading();
    if (heading.ok() && !injector_->ApplyMag(&*heading)) {
      return UnavailableError("mag dropout");
    }
    return heading;
  }

  StatusOr<GpsFix> ReadGps() override {
    StatusOr<GpsFix> fix = base_->ReadGps();
    if (fix.ok() && !injector_->ApplyGps(&*fix)) {
      return UnavailableError("gps dropout");
    }
    return fix;
  }

 private:
  SensorSource* base_;
  SensorFaultInjector* injector_;
};

}  // namespace androne

#endif  // SRC_FLIGHT_SENSOR_SOURCE_H_
