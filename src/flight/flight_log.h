// Flight log + the Attitude Estimate Divergence (AED) analyzer the paper
// uses (via DroneKit Log Analyzer, §6.2) to show AnDrone does not destabilize
// the drone: instability is flagged when the estimated attitude diverges
// from the true attitude by more than 5 degrees for longer than 0.5 s.
#ifndef SRC_FLIGHT_FLIGHT_LOG_H_
#define SRC_FLIGHT_FLIGHT_LOG_H_

#include <cstdint>
#include <vector>

#include "src/snapshot/snapshot.h"
#include "src/util/time.h"

namespace androne {

struct FlightLogEntry {
  SimTime time = 0;
  double est_roll_rad = 0, est_pitch_rad = 0, est_yaw_rad = 0;
  double true_roll_rad = 0, true_pitch_rad = 0, true_yaw_rad = 0;
  double altitude_m = 0;
  uint32_t mode = 0;
  bool armed = false;
};

class FlightLog {
 public:
  void Record(const FlightLogEntry& entry) { entries_.push_back(entry); }
  const std::vector<FlightLogEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  // Checkpoint/restore: the digest is an order-sensitive fold over every
  // entry, so the full log must travel with the world snapshot for the
  // recovery-equivalence guarantee to hold.
  void SaveState(SnapshotWriter& w) const {
    w.Section("FLOG");
    w.U64(entries_.size());
    for (const FlightLogEntry& e : entries_) {
      w.I64(e.time);
      w.F64(e.est_roll_rad);
      w.F64(e.est_pitch_rad);
      w.F64(e.est_yaw_rad);
      w.F64(e.true_roll_rad);
      w.F64(e.true_pitch_rad);
      w.F64(e.true_yaw_rad);
      w.F64(e.altitude_m);
      w.U32(e.mode);
      w.Bool(e.armed);
    }
  }
  Status RestoreState(SnapshotReader& r) {
    RETURN_IF_ERROR(r.Section("FLOG"));
    uint64_t n = 0;
    RETURN_IF_ERROR(r.U64(&n));
    entries_.clear();
    entries_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      FlightLogEntry e;
      RETURN_IF_ERROR(r.I64(&e.time));
      RETURN_IF_ERROR(r.F64(&e.est_roll_rad));
      RETURN_IF_ERROR(r.F64(&e.est_pitch_rad));
      RETURN_IF_ERROR(r.F64(&e.est_yaw_rad));
      RETURN_IF_ERROR(r.F64(&e.true_roll_rad));
      RETURN_IF_ERROR(r.F64(&e.true_pitch_rad));
      RETURN_IF_ERROR(r.F64(&e.true_yaw_rad));
      RETURN_IF_ERROR(r.F64(&e.altitude_m));
      RETURN_IF_ERROR(r.U32(&e.mode));
      RETURN_IF_ERROR(r.Bool(&e.armed));
      entries_.push_back(e);
    }
    return OkStatus();
  }

 private:
  std::vector<FlightLogEntry> entries_;
};

struct AedResult {
  bool unstable = false;
  // Longest continuous span with divergence > threshold, on any axis.
  SimDuration worst_span = 0;
  double worst_divergence_deg = 0;
};

// The AED analyzer: divergence > |threshold_deg| sustained longer than
// |max_span| indicates instability.
AedResult AnalyzeAttitudeDivergence(const FlightLog& log,
                                    double threshold_deg = 5.0,
                                    SimDuration max_span = Millis(500));

// Order-sensitive FNV-1a digest over every logged field of every entry.
// Bit-identical flights digest equal; the fleet executor's determinism
// contract (same world seed => same digest, any thread count) checks this.
uint64_t FlightLogDigest(const FlightLog& log);

}  // namespace androne

#endif  // SRC_FLIGHT_FLIGHT_LOG_H_
