// Flight log + the Attitude Estimate Divergence (AED) analyzer the paper
// uses (via DroneKit Log Analyzer, §6.2) to show AnDrone does not destabilize
// the drone: instability is flagged when the estimated attitude diverges
// from the true attitude by more than 5 degrees for longer than 0.5 s.
#ifndef SRC_FLIGHT_FLIGHT_LOG_H_
#define SRC_FLIGHT_FLIGHT_LOG_H_

#include <cstdint>
#include <vector>

#include "src/util/time.h"

namespace androne {

struct FlightLogEntry {
  SimTime time = 0;
  double est_roll_rad = 0, est_pitch_rad = 0, est_yaw_rad = 0;
  double true_roll_rad = 0, true_pitch_rad = 0, true_yaw_rad = 0;
  double altitude_m = 0;
  uint32_t mode = 0;
  bool armed = false;
};

class FlightLog {
 public:
  void Record(const FlightLogEntry& entry) { entries_.push_back(entry); }
  const std::vector<FlightLogEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

 private:
  std::vector<FlightLogEntry> entries_;
};

struct AedResult {
  bool unstable = false;
  // Longest continuous span with divergence > threshold, on any axis.
  SimDuration worst_span = 0;
  double worst_divergence_deg = 0;
};

// The AED analyzer: divergence > |threshold_deg| sustained longer than
// |max_span| indicates instability.
AedResult AnalyzeAttitudeDivergence(const FlightLog& log,
                                    double threshold_deg = 5.0,
                                    SimDuration max_span = Millis(500));

// Order-sensitive FNV-1a digest over every logged field of every entry.
// Bit-identical flights digest equal; the fleet executor's determinism
// contract (same world seed => same digest, any thread count) checks this.
uint64_t FlightLogDigest(const FlightLog& log);

}  // namespace androne

#endif  // SRC_FLIGHT_FLIGHT_LOG_H_
