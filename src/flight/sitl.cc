#include "src/flight/sitl.h"

namespace androne {

namespace {
// The SITL harness acts as the host (container 0) for device opens.
constexpr ContainerId kSitlOpener = 0;
}  // namespace

SitlDrone::SitlDrone(SimClock* clock, const GeoPoint& home, uint64_t seed)
    : clock_(clock), physics_(home), motors_(),
      gps_(clock, physics_.mutable_truth(), seed + 1),
      imu_(clock, physics_.mutable_truth(), seed + 2),
      baro_(clock, physics_.mutable_truth(), seed + 3),
      mag_(clock, physics_.mutable_truth(), seed + 4),
      sensors_(&gps_, &imu_, &baro_, &mag_, kSitlOpener),
      sensor_fault_injector_(&sensor_fault_plan_, clock, seed + 5),
      faulty_sensors_(&sensors_, &sensor_fault_injector_), battery_(),
      controller_(clock, &physics_, &motors_, &faulty_sensors_, &battery_,
                  FlightControllerConfig{.home = home}) {
  // The controller's battery gauge reads through the fault layer too, so a
  // scripted sag fools the failsafe without touching the real charge.
  controller_.SetBatteryGauge([this] {
    return sensor_fault_injector_.ApplyBatteryFraction(
        battery_.fraction_remaining());
  });
  (void)motors_.Open(kSitlOpener);
  (void)gps_.Open(kSitlOpener);
  (void)imu_.Open(kSitlOpener);
  (void)baro_.Open(kSitlOpener);
  (void)mag_.Open(kSitlOpener);
  controller_.SetSender([this](const MavlinkFrame& frame) {
    auto message = UnpackMessage(frame);
    if (message.ok() && std::holds_alternative<StatusText>(*message)) {
      status_texts_.push_back(std::get<StatusText>(*message).text);
    }
  });
  controller_.Start();
}

void SitlDrone::InjectMessage(const MavMessage& message) {
  controller_.HandleFrame(PackMessage(message));
}

void SitlDrone::SetModeCmd(CopterMode mode) {
  SetMode sm;
  sm.custom_mode = static_cast<uint32_t>(mode);
  InjectMessage(MavMessage{sm});
}

void SitlDrone::ArmCmd() {
  CommandLong cmd;
  cmd.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
  cmd.param1 = 1.0f;
  InjectMessage(MavMessage{cmd});
}

void SitlDrone::DisarmCmd(bool force) {
  CommandLong cmd;
  cmd.command = static_cast<uint16_t>(MavCmd::kComponentArmDisarm);
  cmd.param1 = 0.0f;
  cmd.param2 = force ? 21196.0f : 0.0f;
  InjectMessage(MavMessage{cmd});
}

void SitlDrone::TakeoffCmd(double altitude_m) {
  CommandLong cmd;
  cmd.command = static_cast<uint16_t>(MavCmd::kNavTakeoff);
  cmd.param7 = static_cast<float>(altitude_m);
  InjectMessage(MavMessage{cmd});
}

void SitlDrone::GotoCmd(const GeoPoint& target) {
  SetPositionTargetGlobalInt sp;
  sp.lat_int = static_cast<int32_t>(target.latitude_deg * 1e7);
  sp.lon_int = static_cast<int32_t>(target.longitude_deg * 1e7);
  sp.alt = static_cast<float>(target.altitude_m);
  sp.type_mask = 0x0FF8;  // Use position only.
  InjectMessage(MavMessage{sp});
}

void SitlDrone::VelocityCmd(double vn, double ve, double vd) {
  SetPositionTargetGlobalInt sp;
  sp.type_mask = 0x0FC7;  // Use velocity only.
  sp.vx = static_cast<float>(vn);
  sp.vy = static_cast<float>(ve);
  sp.vz = static_cast<float>(vd);
  InjectMessage(MavMessage{sp});
}

void SitlDrone::LandCmd() {
  CommandLong cmd;
  cmd.command = static_cast<uint16_t>(MavCmd::kNavLand);
  InjectMessage(MavMessage{cmd});
}

void SitlDrone::RtlCmd() {
  CommandLong cmd;
  cmd.command = static_cast<uint16_t>(MavCmd::kNavReturnToLaunch);
  InjectMessage(MavMessage{cmd});
}

bool SitlDrone::RunUntil(const std::function<bool()>& predicate,
                         SimDuration timeout) {
  SimTime deadline = clock_->now() + timeout;
  while (clock_->now() < deadline) {
    if (predicate()) {
      return true;
    }
    clock_->RunUntil(clock_->now() + Millis(100));
  }
  return predicate();
}

double SitlDrone::DistanceTo(const GeoPoint& target) const {
  return Distance3dMeters(physics_.truth().position, target);
}

}  // namespace androne
